package disk

import (
	"errors"
	"testing"
	"testing/quick"

	"uvm/internal/param"
	"uvm/internal/sim"
)

func newTestDisk(nblocks int64) (*Disk, *sim.Clock, *sim.Stats) {
	clock := sim.NewClock()
	stats := sim.NewStats()
	return New(clock, sim.DefaultCosts(), stats, nblocks), clock, stats
}

func page(fill byte) []byte {
	b := make([]byte, param.PageSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestReadWriteRoundTrip(t *testing.T) {
	d, _, _ := newTestDisk(64)
	want := page(0xab)
	if err := d.WritePages(10, [][]byte{want}); err != nil {
		t.Fatal(err)
	}
	got := page(0)
	if err := d.ReadPages(10, [][]byte{got}); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 0xab {
			t.Fatalf("byte %d = %#x after round trip", i, got[i])
		}
	}
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	d, _, _ := newTestDisk(8)
	buf := page(0xff)
	if err := d.ReadPages(3, [][]byte{buf}); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want zero", i, b)
		}
	}
}

func TestMultiPageTransfer(t *testing.T) {
	d, _, stats := newTestDisk(64)
	data := [][]byte{page(1), page(2), page(3), page(4)}
	if err := d.WritePages(4, data); err != nil {
		t.Fatal(err)
	}
	bufs := [][]byte{page(0), page(0), page(0), page(0)}
	if err := d.ReadPages(4, bufs); err != nil {
		t.Fatal(err)
	}
	for i, buf := range bufs {
		if buf[0] != byte(i+1) {
			t.Fatalf("block %d has fill %#x", i, buf[0])
		}
	}
	if got := stats.Get(sim.CtrDiskPagesRead); got != 4 {
		t.Fatalf("pages read counter = %d", got)
	}
	if got := stats.Get(sim.CtrDiskWrites); got != 1 {
		t.Fatalf("one multi-page write should be one I/O, counter = %d", got)
	}
}

func TestOutOfRange(t *testing.T) {
	d, _, _ := newTestDisk(4)
	if err := d.ReadPages(4, [][]byte{page(0)}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read past end: %v", err)
	}
	if err := d.WritePages(-1, [][]byte{page(0)}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative block: %v", err)
	}
	if err := d.WritePages(3, [][]byte{page(0), page(0)}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("extent past end: %v", err)
	}
}

func TestSeekAccounting(t *testing.T) {
	d, clock, stats := newTestDisk(128)
	costs := sim.DefaultCosts()

	// First access: command overhead + seek + one page.
	if err := d.WritePages(0, [][]byte{page(1)}); err != nil {
		t.Fatal(err)
	}
	want := costs.DiskOp + costs.DiskSeek + costs.DiskPageIO
	if got := clock.Now(); got != want {
		t.Fatalf("first I/O charged %v, want %v", got, want)
	}
	// Sequential follow-up: command overhead but no seek.
	if err := d.WritePages(1, [][]byte{page(2)}); err != nil {
		t.Fatal(err)
	}
	want += costs.DiskOp + costs.DiskPageIO
	if got := clock.Now(); got != want {
		t.Fatalf("sequential I/O charged seek: %v, want %v", got, want)
	}
	// Discontiguous: seek again.
	if err := d.WritePages(100, [][]byte{page(3)}); err != nil {
		t.Fatal(err)
	}
	want += costs.DiskOp + costs.DiskSeek + costs.DiskPageIO
	if got := clock.Now(); got != want {
		t.Fatalf("discontiguous I/O missing seek: %v, want %v", got, want)
	}
	if got := stats.Get(sim.CtrDiskSeeks); got != 2 {
		t.Fatalf("seek count = %d, want 2", got)
	}
}

func TestClusteredWriteCheaperThanSinglePages(t *testing.T) {
	// The core of Figure 5: one 64-page I/O must be far cheaper than 64
	// scattered one-page I/Os.
	dc, clockC, _ := newTestDisk(4096)
	cluster := make([][]byte, 64)
	for i := range cluster {
		cluster[i] = page(byte(i))
	}
	if err := dc.WritePages(0, cluster); err != nil {
		t.Fatal(err)
	}

	ds, clockS, _ := newTestDisk(4096)
	for i := 0; i < 64; i++ {
		// Scattered slots, as BSD VM's per-page pageout produces.
		if err := ds.WritePages(int64(i*7), [][]byte{page(byte(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if clockC.Now()*10 > clockS.Now() {
		t.Fatalf("clustered write (%v) should be >10x cheaper than scattered (%v)",
			clockC.Now(), clockS.Now())
	}
}

func TestAlloc(t *testing.T) {
	d, _, _ := newTestDisk(16)
	a, err := d.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if a == b || b < a+4 {
		t.Fatalf("overlapping extents: %d %d", a, b)
	}
	if _, err := d.Alloc(16); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-allocation: %v", err)
	}
	if _, err := d.Alloc(0); err == nil {
		t.Fatal("zero-size extent must fail")
	}
}

func TestFailureInjection(t *testing.T) {
	d, _, _ := newTestDisk(8)
	boom := errors.New("media error")
	d.FailRead = func(block int64) error {
		if block == 5 {
			return boom
		}
		return nil
	}
	if err := d.ReadPages(4, [][]byte{page(0)}); err != nil {
		t.Fatalf("unexpected error on healthy block: %v", err)
	}
	if err := d.ReadPages(5, [][]byte{page(0)}); !errors.Is(err, boom) {
		t.Fatalf("injected error not surfaced: %v", err)
	}
	d.FailWrite = func(block int64) error { return boom }
	if err := d.WritePages(0, [][]byte{page(0)}); !errors.Is(err, boom) {
		t.Fatalf("injected write error not surfaced: %v", err)
	}
}

func TestBadBufferSize(t *testing.T) {
	d, _, _ := newTestDisk(8)
	if err := d.ReadPages(0, [][]byte{make([]byte, 100)}); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := d.WritePages(0, [][]byte{make([]byte, param.PageSize+1)}); err == nil {
		t.Fatal("long buffer accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	d, _, _ := newTestDisk(256)
	prop := func(blockRaw uint8, fill byte) bool {
		block := int64(blockRaw)
		in := page(fill)
		if err := d.WritePages(block, [][]byte{in}); err != nil {
			return false
		}
		out := page(^fill)
		if err := d.ReadPages(block, [][]byte{out}); err != nil {
			return false
		}
		for i := range out {
			if out[i] != fill {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeferredTransfersChargeNoTime(t *testing.T) {
	d, clock, stats := newTestDisk(16)
	want := page(0x3c)
	if err := d.WritePagesDeferred(5, [][]byte{want}); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != 0 {
		t.Fatalf("deferred write charged %v", clock.Now())
	}
	got := page(0)
	if err := d.ReadPagesDeferred(5, [][]byte{got}); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != 0 {
		t.Fatalf("deferred read charged %v", clock.Now())
	}
	if got[0] != 0x3c {
		t.Fatalf("deferred round trip lost data: %#x", got[0])
	}
	if stats.Get("disk.writes.deferred") != 1 || stats.Get("disk.reads.deferred") != 1 {
		t.Fatal("deferred counters not maintained")
	}
	// Range and size validation still applies.
	if err := d.WritePagesDeferred(16, [][]byte{want}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("deferred write past end: %v", err)
	}
	if err := d.ReadPagesDeferred(-1, [][]byte{got}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("deferred read before start: %v", err)
	}
	if err := d.ReadPagesDeferred(0, [][]byte{make([]byte, 7)}); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := d.WritePagesDeferred(0, [][]byte{make([]byte, 7)}); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestDeferredFailureInjection(t *testing.T) {
	d, _, _ := newTestDisk(8)
	boom := errors.New("deferred media error")
	d.FailWrite = func(int64) error { return boom }
	if err := d.WritePagesDeferred(0, [][]byte{page(0)}); !errors.Is(err, boom) {
		t.Fatalf("deferred write error not surfaced: %v", err)
	}
	d.FailRead = func(int64) error { return boom }
	if err := d.ReadPagesDeferred(0, [][]byte{page(0)}); !errors.Is(err, boom) {
		t.Fatalf("deferred read error not surfaced: %v", err)
	}
}
