package disk

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Live window resizing (the control plane's lever on the async write
// engine). The gate hook holds writes in a known in-flight state so the
// shrink happens at an orchestrated moment rather than whenever the
// scheduler allows — completions from the old, larger window must be
// accepted and drained, and the new bound must gate the next admission.

func TestAsyncWriterShrinkWhileInFlight(t *testing.T) {
	d, _, _ := newTestDisk(256)
	w := NewAsyncWriter(d, 4)

	release := make(chan struct{})
	var held atomic.Int32
	heldFull := make(chan struct{})
	w.SetTestGate(func() {
		if held.Add(1) == 4 {
			close(heldFull) // all four old-window writes are on the wire
		}
		<-release
	})

	done := make(chan error, 8)
	for i := 0; i < 4; i++ {
		w.Submit(int64(i*8), [][]byte{page(byte(i))}, func(err error) { done <- err })
	}
	<-heldFull

	// Shrink under the four in-flight writes: the old window's writes
	// must survive the resize and drain normally.
	w.SetWindow(1)
	if got := w.Window(); got != 1 {
		t.Fatalf("Window after shrink = %d, want 1", got)
	}
	if got := w.InFlight(); got != 4 {
		t.Fatalf("in flight after shrink = %d, want 4 (old window's writes)", got)
	}

	// A fifth submission must wait for the in-flight count to fall under
	// the new bound, not sneak into an old slot.
	var admitted atomic.Bool
	fifthUp := make(chan struct{})
	go func() {
		close(fifthUp)
		w.Submit(200, [][]byte{page(0xee)}, func(err error) { done <- err })
		admitted.Store(true)
	}()
	<-fifthUp
	if admitted.Load() {
		t.Fatal("fifth submit admitted while 4 writes exceed the shrunken window")
	}

	close(release) // old writes complete; the fifth is admitted in turn
	for i := 0; i < 5; i++ {
		if err := <-done; err != nil {
			t.Fatalf("completion %d: %v", i, err)
		}
	}
	w.Drain()
	if got := w.InFlight(); got != 0 {
		t.Fatalf("in flight after drain = %d", got)
	}
	if !admitted.Load() {
		t.Fatal("fifth submit never admitted after the old window drained")
	}
}

func TestAsyncWriterGrowUnblocksSubmitter(t *testing.T) {
	d, _, _ := newTestDisk(256)
	w := NewAsyncWriter(d, 1)

	release := make(chan struct{})
	heldOne := make(chan struct{})
	var once sync.Once
	w.SetTestGate(func() {
		once.Do(func() { close(heldOne) })
		<-release
	})

	done := make(chan error, 2)
	w.Submit(0, [][]byte{page(1)}, func(err error) { done <- err })
	<-heldOne

	// The second submit blocks on the 1-wide window; growing the window
	// must admit it without waiting for the first completion.
	unblocked := make(chan struct{})
	go func() {
		w.Submit(8, [][]byte{page(2)}, func(err error) { done <- err })
		close(unblocked)
	}()
	w.SetWindow(2)
	<-unblocked

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("completion %d: %v", i, err)
		}
	}
	w.Drain()
}

// TestAsyncWriterResizeStress hammers Submit from many goroutines while
// another goroutine resizes the window across its whole range; run under
// -race in CI. Every callback must fire exactly once and Drain must
// settle to zero.
func TestAsyncWriterResizeStress(t *testing.T) {
	d, _, _ := newTestDisk(4096)
	w := NewAsyncWriter(d, 4)

	const (
		submitters = 8
		perG       = 50
	)
	var completions atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		n := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			w.SetWindow(n%8 + 1)
			n++
		}
	}()
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				start := int64((g*perG + i) % 4000)
				w.Submit(start, [][]byte{page(byte(i))}, func(err error) {
					if err != nil {
						t.Errorf("write failed: %v", err)
					}
					completions.Add(1)
				})
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	w.Drain()
	if got := completions.Load(); got != submitters*perG {
		t.Fatalf("completions = %d, want %d", got, submitters*perG)
	}
	if got := w.InFlight(); got != 0 {
		t.Fatalf("in flight after drain = %d", got)
	}
}
