package disk

import (
	"errors"
	"fmt"
	"sync"
)

// Declarative fault injection.
//
// The FailRead/FailWrite hooks below (on Disk) let a test fail one block
// with an arbitrary error, but they force every fault scenario to be
// coded as a closure at the call site. The fault plan generalises them
// into data: a list of rules, each naming a fault class (read error,
// write error, torn cluster write, whole-device death) and when it
// triggers (a specific block, or the Nth matching command), installable
// from vmapi.MachineConfig so the experiment matrix can run the same
// workload under systematically varied fault schedules.
//
// Semantics are physical. A command that faults at block k has already
// moved the first k pages: those pages are durable (writes) or filled
// (reads), the head sits after them, and only k pages are charged and
// counted — see the transfer admission logic in disk.go. A torn cluster
// write is the write-error special case the async pipelines care most
// about: the first TornPages pages land and the rest of the cluster
// fails. Device death is sticky: once triggered, every later command on
// the disk fails with ErrDeviceDead without touching the medium.

// ErrInjected is the error reported by injected read/write/torn faults.
var ErrInjected = errors.New("disk: injected I/O error")

// ErrDeviceDead is reported by every command on a disk whose device-death
// fault has triggered (and by Disk.Kill).
var ErrDeviceDead = errors.New("disk: device is dead")

// FaultKind is the class of an injected fault.
type FaultKind uint8

const (
	// FaultReadError fails a read command at the matching block.
	FaultReadError FaultKind = iota
	// FaultWriteError fails a write command at the matching block.
	FaultWriteError
	// FaultTornWrite tears a write command: the first TornPages pages
	// land on the medium, the rest of the command fails.
	FaultTornWrite
	// FaultDeviceDeath kills the whole device at the matching command;
	// it and every later command fail with ErrDeviceDead.
	FaultDeviceDeath
)

// String names the fault kind for reports.
func (k FaultKind) String() string {
	switch k {
	case FaultReadError:
		return "read-error"
	case FaultWriteError:
		return "write-error"
	case FaultTornWrite:
		return "torn-write"
	case FaultDeviceDeath:
		return "device-death"
	}
	return fmt.Sprintf("fault-kind-%d", uint8(k))
}

// BlockAny makes a rule match every command of its direction regardless
// of the blocks it touches.
const BlockAny int64 = -1

// FaultRule is one declarative trigger. A rule matches a command when the
// command's direction fits the rule's Kind (reads for FaultReadError,
// writes for FaultTornWrite/FaultWriteError, either for
// FaultDeviceDeath) and the command's block range contains Block (or
// Block is BlockAny). The first AfterOps matching commands pass
// untouched; then the rule fires on every match until it has fired Count
// times (Count 0 = forever).
type FaultRule struct {
	Kind     FaultKind
	Block    int64 // block that triggers the rule; BlockAny = any command
	AfterOps int64 // matching commands to let through before firing
	Count    int64 // times to fire; 0 = every match forever
	// TornPages is how many pages of a torn write land (FaultTornWrite
	// only). Clamped to the command length minus one, so a torn write
	// always fails at least its last page.
	TornPages int
}

// FaultPlan is an installable schedule of fault rules for one Disk.
// Rules are evaluated in order per command; the first one that fires
// decides the command's fate. A FaultPlan must not be shared between
// disks (its trigger counters are per-device state).
type FaultPlan struct {
	//uvm:lock faultplan
	mu    sync.Mutex
	rules []FaultRule
	seen  []int64 // matching commands observed, per rule
	fired []int64 // times fired, per rule
}

// NewFaultPlan builds a plan from rules (evaluated in order).
func NewFaultPlan(rules ...FaultRule) *FaultPlan {
	return &FaultPlan{
		rules: append([]FaultRule(nil), rules...),
		seen:  make([]int64, len(rules)),
		fired: make([]int64, len(rules)),
	}
}

// Fired returns how many times rule i has fired (test/report helper).
func (p *FaultPlan) Fired(i int) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired[i]
}

// admit decides the fate of one command of n blocks at start: how many
// pages transfer before the fault (n = the whole command, no fault), the
// error to report, and whether the device dies. Called by the disk with
// d.mu held.
func (p *FaultPlan) admit(start int64, n int, write bool) (k int, die bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.rules {
		r := &p.rules[i]
		switch r.Kind {
		case FaultReadError:
			if write {
				continue
			}
		case FaultWriteError, FaultTornWrite:
			if !write {
				continue
			}
		case FaultDeviceDeath:
			// matches either direction
		default:
			continue
		}
		if r.Block != BlockAny && (r.Block < start || r.Block >= start+int64(n)) {
			continue
		}
		p.seen[i]++
		if p.seen[i] <= r.AfterOps {
			continue
		}
		if r.Count > 0 && p.fired[i] >= r.Count {
			continue
		}
		p.fired[i]++
		switch r.Kind {
		case FaultReadError, FaultWriteError:
			if r.Block != BlockAny {
				return int(r.Block - start), false, ErrInjected
			}
			return 0, false, ErrInjected
		case FaultTornWrite:
			k := r.TornPages
			if k >= n {
				k = n - 1
			}
			if k < 0 {
				k = 0
			}
			return k, false, ErrInjected
		case FaultDeviceDeath:
			return 0, true, ErrDeviceDead
		}
	}
	return n, false, nil
}
