package disk

import "sync"

// This file is the generalised asynchronous write engine shared by every
// paging backend: a bounded in-flight window of page-run writes to one
// disk, with completions delivered by callback. It started life inside
// internal/swap (the pagedaemon's async cluster pageout, PR 3) and was
// hoisted here so the object writeback pipeline — msync, aobj pageout,
// vnode recycling — can push vnode pages through the filesystem disk with
// exactly the same machinery that pushes anonymous clusters to swap.
//
// The model is unchanged from the swap original. A writer admits at most
// its window's worth of writes at once; a submitter that finds the window
// full blocks until a completion opens a slot — the natural backpressure
// that keeps a fast producer (an msync sweep, the pagedaemon's scan) from
// burying a slow disk. Writes through one writer are serialised by an I/O
// mutex (one head per disk), but the data transfer runs off the
// submitter's goroutine and is charged as deferred I/O, so the submitter's
// simulated clock never pays for an overlapped write. Completions for
// different submissions may run concurrently and in any order; each
// callback runs exactly once, off the submitter's goroutine.
//
// The window is a live setting, not a fixed capacity: SetWindow may
// grow or shrink it while writes are on the wire (the control plane's
// feedback loop resizes it from observed completion latency). Admission
// is therefore a condvar-gated counter rather than a channel semaphore.
// Shrinking never cancels anything — writes admitted under the old,
// larger window complete and deliver their callbacks normally; the new
// bound only gates future admissions, which wait until completions bring
// the in-flight count under it.

// DefaultAIOWindow is the in-flight write window used when a writer is
// created with a non-positive window.
const DefaultAIOWindow = 4

// AsyncWriter is a bounded in-flight window of asynchronous page writes
// to one Disk.
type AsyncWriter struct {
	d *Disk

	// io serialises the transfers of overlapped writes: one head per
	// disk, so concurrent submissions still queue at the device.
	//uvm:lock diskhead
	io sync.Mutex

	//uvm:lock diskaio
	mu       sync.Mutex
	cond     *sync.Cond
	window   int // admission bound; live, see SetWindow
	admitted int // writes holding a window slot (released before done)
	inFlight int // writes submitted whose done callback has not returned

	// gate, when non-nil, runs on each write's I/O goroutine after the
	// write has been admitted and before its transfer starts. Test hook:
	// the live-resize race tests use it to hold a known number of writes
	// in flight while the window shrinks. Must be set before Submit.
	gate func()
}

// SetTestGate installs fn to run on each write's I/O goroutine after
// admission and before the transfer. Test hook only: the live-resize
// race tests in this package and in internal/swap use it to hold a known
// number of writes in flight while the window is resized. Must be set
// before the writes it should gate are submitted; nil removes it.
func (w *AsyncWriter) SetTestGate(fn func()) { w.gate = fn }

// NewAsyncWriter creates a writer for d admitting window concurrent
// writes (DefaultAIOWindow if window <= 0).
func NewAsyncWriter(d *Disk, window int) *AsyncWriter {
	if window <= 0 {
		window = DefaultAIOWindow
	}
	w := &AsyncWriter{d: d, window: window}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Window returns the writer's current in-flight admission bound.
func (w *AsyncWriter) Window() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.window
}

// SetWindow changes the in-flight admission bound, effective
// immediately (n <= 0 restores DefaultAIOWindow). Growing wakes blocked
// submitters; shrinking lets every write admitted under the old bound
// complete and drain normally while new submissions wait for the
// in-flight count to fall under the new bound. Safe to call at any time,
// concurrently with Submit and completions.
func (w *AsyncWriter) SetWindow(n int) {
	if n <= 0 {
		n = DefaultAIOWindow
	}
	w.mu.Lock()
	w.window = n
	w.cond.Broadcast()
	w.mu.Unlock()
}

// InFlight returns the number of writes submitted but not yet completed
// (their done callback has not returned).
func (w *AsyncWriter) InFlight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inFlight
}

// Submit queues an asynchronous write of len(bufs) consecutive blocks
// starting at start, returning as soon as the window has admitted it and
// blocking only while the window is full. done is invoked exactly once,
// from another goroutine, with the write's result; the caller must treat
// the buffers as owned by the I/O until then.
func (w *AsyncWriter) Submit(start int64, bufs [][]byte, done func(error)) {
	w.mu.Lock()
	for w.admitted >= w.window {
		w.cond.Wait()
	}
	w.admitted++
	w.inFlight++
	w.mu.Unlock()

	go func() {
		if gate := w.gate; gate != nil {
			gate()
		}
		w.io.Lock()
		err := w.d.WritePagesDeferred(start, bufs)
		w.io.Unlock()
		// Release the window slot before running the callback, so a slow
		// completion (or one that submits follow-on work) never blocks
		// the next admission — matching the original channel-semaphore
		// ordering.
		w.mu.Lock()
		w.admitted--
		w.cond.Broadcast()
		w.mu.Unlock()
		done(err)
		w.mu.Lock()
		w.inFlight--
		if w.inFlight == 0 {
			w.cond.Broadcast()
		}
		w.mu.Unlock()
	}()
}

// Drain blocks until every write submitted so far has completed (its
// done callback has returned). Used by shutdown paths that must
// guarantee no completion callback is still running.
func (w *AsyncWriter) Drain() {
	w.mu.Lock()
	for w.inFlight > 0 {
		w.cond.Wait()
	}
	w.mu.Unlock()
}
