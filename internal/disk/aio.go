package disk

import "sync"

// This file is the generalised asynchronous write engine shared by every
// paging backend: a bounded in-flight window of page-run writes to one
// disk, with completions delivered by callback. It started life inside
// internal/swap (the pagedaemon's async cluster pageout, PR 3) and was
// hoisted here so the object writeback pipeline — msync, aobj pageout,
// vnode recycling — can push vnode pages through the filesystem disk with
// exactly the same machinery that pushes anonymous clusters to swap.
//
// The model is unchanged from the swap original. A writer admits at most
// its window's worth of writes at once; a submitter that finds the window
// full blocks until a completion opens a slot — the natural backpressure
// that keeps a fast producer (an msync sweep, the pagedaemon's scan) from
// burying a slow disk. Writes through one writer are serialised by an I/O
// mutex (one head per disk), but the data transfer runs off the
// submitter's goroutine and is charged as deferred I/O, so the submitter's
// simulated clock never pays for an overlapped write. Completions for
// different submissions may run concurrently and in any order; each
// callback runs exactly once, off the submitter's goroutine.

// DefaultAIOWindow is the in-flight write window used when a writer is
// created with a non-positive window.
const DefaultAIOWindow = 4

// AsyncWriter is a bounded in-flight window of asynchronous page writes
// to one Disk.
type AsyncWriter struct {
	d *Disk

	// io serialises the transfers of overlapped writes: one head per
	// disk, so concurrent submissions still queue at the device.
	io sync.Mutex

	mu       sync.Mutex
	cond     *sync.Cond
	sem      chan struct{}
	inFlight int
}

// NewAsyncWriter creates a writer for d admitting window concurrent
// writes (DefaultAIOWindow if window <= 0).
func NewAsyncWriter(d *Disk, window int) *AsyncWriter {
	if window <= 0 {
		window = DefaultAIOWindow
	}
	w := &AsyncWriter{d: d, sem: make(chan struct{}, window)}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Window returns the writer's in-flight capacity.
func (w *AsyncWriter) Window() int { return cap(w.sem) }

// InFlight returns the number of writes submitted but not yet completed
// (their done callback has not returned).
func (w *AsyncWriter) InFlight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.inFlight
}

// Submit queues an asynchronous write of len(bufs) consecutive blocks
// starting at start, returning as soon as the window has admitted it and
// blocking only while the window is full. done is invoked exactly once,
// from another goroutine, with the write's result; the caller must treat
// the buffers as owned by the I/O until then.
func (w *AsyncWriter) Submit(start int64, bufs [][]byte, done func(error)) {
	w.sem <- struct{}{} // claim a window slot; blocks while the window is full
	w.mu.Lock()
	w.inFlight++
	w.mu.Unlock()

	go func() {
		w.io.Lock()
		err := w.d.WritePagesDeferred(start, bufs)
		w.io.Unlock()
		<-w.sem
		done(err)
		w.mu.Lock()
		w.inFlight--
		if w.inFlight == 0 {
			w.cond.Broadcast()
		}
		w.mu.Unlock()
	}()
}

// Drain blocks until every write submitted so far has completed (its
// done callback has returned). Used by shutdown paths that must
// guarantee no completion callback is still running.
func (w *AsyncWriter) Drain() {
	w.mu.Lock()
	for w.inFlight > 0 {
		w.cond.Wait()
	}
	w.mu.Unlock()
}
