package disk

import (
	"errors"
	"math"
	"testing"

	"uvm/internal/sim"
)

func pages(n int, fill byte) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = page(fill)
	}
	return out
}

// TestMidClusterErrorAccounting is the accounting regression: a command
// that fails at block k must charge only the k transferred pages, count
// only them, and leave the head at the failure point — the old code
// charged and counted the full command before even looking at the fail
// hooks.
func TestMidClusterErrorAccounting(t *testing.T) {
	d, clock, stats := newTestDisk(64)
	costs := sim.DefaultCosts()
	d.SetFaultPlan(NewFaultPlan(
		FaultRule{Kind: FaultWriteError, Block: 13},
	))

	// 8-page write at block 10 fails at block 13: 3 pages transfer.
	if err := d.WritePages(10, pages(8, 0x5a)); !errors.Is(err, ErrInjected) {
		t.Fatalf("mid-cluster fault not surfaced: %v", err)
	}
	want := costs.DiskOp + costs.DiskSeek + 3*costs.DiskPageIO
	if got := clock.Now(); got != want {
		t.Fatalf("failed command charged %v, want %v (3 pages, not 8)", got, want)
	}
	if got := stats.Get(sim.CtrDiskPagesWrite); got != 3 {
		t.Fatalf("pages-written counter = %d, want 3", got)
	}
	if got := stats.Get("disk.errors"); got != 1 {
		t.Fatalf("error counter = %d, want 1", got)
	}

	// The pages before the fault are durable, the rest never landed.
	d.SetFaultPlan(nil)
	bufs := pages(8, 0)
	if err := d.ReadPages(10, bufs); err != nil {
		t.Fatal(err)
	}
	for i, buf := range bufs {
		want := byte(0)
		if i < 3 {
			want = 0x5a
		}
		if buf[0] != want {
			t.Fatalf("block %d holds %#x, want %#x", 10+i, buf[0], want)
		}
	}

	// Head stopped after the 3 transferred pages: a follow-up command at
	// block 13 is sequential (no seek charged).
	d2, clock2, _ := newTestDisk(64)
	d2.SetFaultPlan(NewFaultPlan(FaultRule{Kind: FaultWriteError, Block: 13}))
	if err := d2.WritePages(10, pages(8, 1)); !errors.Is(err, ErrInjected) {
		t.Fatal(err)
	}
	d2.SetFaultPlan(nil)
	before := clock2.Now()
	if err := d2.WritePages(13, pages(1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := clock2.Now() - before; got != costs.DiskOp+costs.DiskPageIO {
		t.Fatalf("head not at failure point: follow-up charged %v", got)
	}
}

// TestLegacyHookAccounting checks the same only-transferred-pages rule
// for the pre-plan FailRead/FailWrite closures.
func TestLegacyHookAccounting(t *testing.T) {
	d, clock, stats := newTestDisk(64)
	costs := sim.DefaultCosts()
	boom := errors.New("media error")
	d.FailRead = func(block int64) error {
		if block == 6 {
			return boom
		}
		return nil
	}
	if err := d.ReadPages(4, pages(4, 0)); !errors.Is(err, boom) {
		t.Fatalf("hook error not surfaced: %v", err)
	}
	if got := clock.Now(); got != costs.DiskOp+costs.DiskSeek+2*costs.DiskPageIO {
		t.Fatalf("failed read charged %v (2 pages transferred before block 6)", got)
	}
	if got := stats.Get(sim.CtrDiskPagesRead); got != 2 {
		t.Fatalf("pages-read counter = %d, want 2", got)
	}
}

// TestBufferValidationBeforeAccounting: a malformed request must not
// move the head, charge time, or bump counters — no command was issued.
func TestBufferValidationBeforeAccounting(t *testing.T) {
	d, clock, stats := newTestDisk(8)
	bufs := [][]byte{page(0), make([]byte, 7), page(0)}
	if err := d.WritePages(0, bufs); err == nil {
		t.Fatal("bad buffer accepted")
	}
	if clock.Now() != 0 {
		t.Fatalf("invalid command charged %v", clock.Now())
	}
	if stats.Get(sim.CtrDiskWrites) != 0 || stats.Get(sim.CtrDiskPagesWrite) != 0 {
		t.Fatal("invalid command counted")
	}
}

// TestTornWrite: the first TornPages pages of a torn cluster land, the
// rest fail, and the tear always loses at least the last page.
func TestTornWrite(t *testing.T) {
	d, _, _ := newTestDisk(64)
	d.SetFaultPlan(NewFaultPlan(
		FaultRule{Kind: FaultTornWrite, Block: BlockAny, TornPages: 2, Count: 1},
	))
	if err := d.WritePages(0, pages(5, 0x77)); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write not surfaced: %v", err)
	}
	bufs := pages(5, 0)
	if err := d.ReadPages(0, bufs); err != nil {
		t.Fatal(err)
	}
	for i, buf := range bufs {
		landed := buf[0] == 0x77
		if landed != (i < 2) {
			t.Fatalf("block %d landed=%v, want %v", i, landed, i < 2)
		}
	}

	// TornPages >= command length still fails the last page.
	d2, _, _ := newTestDisk(8)
	d2.SetFaultPlan(NewFaultPlan(
		FaultRule{Kind: FaultTornWrite, Block: BlockAny, TornPages: 99},
	))
	if err := d2.WritePages(0, pages(3, 1)); !errors.Is(err, ErrInjected) {
		t.Fatal("oversized tear must still fail")
	}
	buf := page(0)
	d2.SetFaultPlan(nil)
	if err := d2.ReadPages(2, [][]byte{buf}); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 {
		t.Fatal("torn write landed its last page")
	}
}

// TestAfterOpsAndCount: a rule skips its first AfterOps matching
// commands and stops after Count firings.
func TestAfterOpsAndCount(t *testing.T) {
	d, _, _ := newTestDisk(8)
	plan := NewFaultPlan(
		FaultRule{Kind: FaultReadError, Block: BlockAny, AfterOps: 2, Count: 2},
	)
	d.SetFaultPlan(plan)
	var errs int
	for i := 0; i < 6; i++ {
		if err := d.ReadPages(0, pages(1, 0)); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("wrong error: %v", err)
			}
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("rule fired %d times, want 2 (after 2 clean ops)", errs)
	}
	if plan.Fired(0) != 2 {
		t.Fatalf("Fired = %d", plan.Fired(0))
	}
}

// TestDeviceDeath: death is sticky, charges nothing, and Dead() reports
// it to allocators.
func TestDeviceDeath(t *testing.T) {
	d, clock, stats := newTestDisk(8)
	d.SetFaultPlan(NewFaultPlan(
		FaultRule{Kind: FaultDeviceDeath, Block: BlockAny, AfterOps: 1},
	))
	if err := d.WritePages(0, pages(1, 1)); err != nil {
		t.Fatalf("first command should pass: %v", err)
	}
	if d.Dead() {
		t.Fatal("device dead before the death rule fired")
	}
	if err := d.ReadPages(0, pages(1, 0)); !errors.Is(err, ErrDeviceDead) {
		t.Fatalf("death not surfaced: %v", err)
	}
	if !d.Dead() {
		t.Fatal("Dead() false after death")
	}
	before := clock.Now()
	for i := 0; i < 3; i++ {
		if err := d.WritePagesDeferred(0, pages(1, 1)); !errors.Is(err, ErrDeviceDead) {
			t.Fatalf("dead device accepted a command: %v", err)
		}
	}
	if clock.Now() != before {
		t.Fatal("dead device charged time")
	}
	if got := stats.Get("disk.deaths"); got != 1 {
		t.Fatalf("death counter = %d", got)
	}

	// Kill() is the immediate form.
	d2, _, _ := newTestDisk(8)
	d2.Kill()
	if err := d2.ReadPages(0, pages(1, 0)); !errors.Is(err, ErrDeviceDead) {
		t.Fatalf("killed device still alive: %v", err)
	}
}

// TestCheckRangeOverflow: adversarial start/n combinations whose sum
// wraps int64 must be rejected, not wrapped into a "valid" range.
func TestCheckRangeOverflow(t *testing.T) {
	d, _, _ := newTestDisk(8)
	for _, tc := range []struct{ start, n int64 }{
		{math.MaxInt64, 1},
		{math.MaxInt64 - 1, 2},
		{1, math.MaxInt64},
		{math.MaxInt64, math.MaxInt64},
		{math.MinInt64, 1},
		{0, math.MinInt64},
	} {
		if err := d.checkRange(tc.start, tc.n); !errors.Is(err, ErrOutOfRange) {
			t.Fatalf("checkRange(%d, %d) = %v, want ErrOutOfRange", tc.start, tc.n, err)
		}
	}
	if err := d.checkRange(0, 8); err != nil {
		t.Fatalf("full-device range rejected: %v", err)
	}
}

// TestFaultKindString keeps the report labels stable.
func TestFaultKindString(t *testing.T) {
	want := map[FaultKind]string{
		FaultReadError:   "read-error",
		FaultWriteError:  "write-error",
		FaultTornWrite:   "torn-write",
		FaultDeviceDeath: "device-death",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// TestPlanRulesEvaluatedInOrder: the first firing rule decides the
// command's fate even when a later rule also matches.
func TestPlanRulesEvaluatedInOrder(t *testing.T) {
	d, _, _ := newTestDisk(16)
	d.SetFaultPlan(NewFaultPlan(
		FaultRule{Kind: FaultTornWrite, Block: BlockAny, TornPages: 1, Count: 1},
		FaultRule{Kind: FaultDeviceDeath, Block: BlockAny},
	))
	if err := d.WritePages(0, pages(3, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("first rule should win: %v", err)
	}
	if d.Dead() {
		t.Fatal("second rule fired on the same command")
	}
}

// TestBlockSpecificReadFault: a rule naming a block inside the command
// fails it exactly at that block; the earlier pages land in the buffers.
func TestBlockSpecificReadFault(t *testing.T) {
	d, _, _ := newTestDisk(16)
	if err := d.WritePages(0, pages(6, 0x42)); err != nil {
		t.Fatal(err)
	}
	d.SetFaultPlan(NewFaultPlan(FaultRule{Kind: FaultReadError, Block: 4}))
	bufs := pages(6, 0xee)
	if err := d.ReadPages(0, bufs); !errors.Is(err, ErrInjected) {
		t.Fatalf("block fault not surfaced: %v", err)
	}
	for i, buf := range bufs {
		filled := buf[0] == 0x42
		if filled != (i < 4) {
			t.Fatalf("buffer %d filled=%v, want %v", i, filled, i < 4)
		}
	}
}
