// Package disk models a late-1990s fixed disk at page granularity.
//
// The model is deliberately simple — a positioning (seek + rotational)
// cost for every discontiguous access and a media-rate cost per 4 KB page
// transferred — because that is the only disk behaviour the paper's
// results depend on: BSD VM pays one positioning cost per page written
// (it pages out one page per I/O), while UVM's clustered pageout pays one
// positioning cost per 64-page cluster (Figure 5), and Figure 2's knee is
// driven purely by whether a file access goes to memory or to the disk at
// all.
//
// Blocks are page-sized. Data is stored for real, so swap round-trips and
// file reads are verified byte-for-byte by the test suite.
package disk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"uvm/internal/param"
	"uvm/internal/sim"
)

// ErrOutOfRange is returned for I/O beyond the end of the device.
var ErrOutOfRange = errors.New("disk: block out of range")

// ErrNoSpace is returned when an extent allocation cannot be satisfied.
var ErrNoSpace = errors.New("disk: no space")

// Disk is a simulated page-granular block device.
type Disk struct {
	clock *sim.Clock
	costs *sim.Costs
	stats *sim.Stats

	//uvm:lock disk
	mu      sync.Mutex
	nblocks int64
	blocks  map[int64][]byte // lazily allocated; absent block reads as zeros
	head    int64            // block the head sits after (sequential detection)
	nextfit int64            // bump pointer for Alloc

	// plan, when non-nil, is the declarative fault schedule consulted
	// before every command (see faultplan.go). Installed by SetFaultPlan.
	plan *FaultPlan
	// dead is set once a device-death fault triggers (or Kill is
	// called); every later command fails with ErrDeviceDead. Read
	// lock-free by allocators deciding whether the device is worth
	// landing on.
	dead atomic.Bool

	// FailRead and FailWrite, when non-nil, are consulted for every
	// block a command would transfer and may inject an I/O error. They
	// predate the declarative FaultPlan and remain for tests that need
	// an arbitrary closure; a command stops at the first failing block,
	// exactly like a plan-injected error.
	FailRead  func(block int64) error
	FailWrite func(block int64) error
}

// New creates a disk with nblocks page-sized blocks.
func New(clock *sim.Clock, costs *sim.Costs, stats *sim.Stats, nblocks int64) *Disk {
	if nblocks <= 0 {
		panic("disk: non-positive size")
	}
	return &Disk{
		clock:   clock,
		costs:   costs,
		stats:   stats,
		nblocks: nblocks,
		blocks:  make(map[int64][]byte),
		head:    -1,
	}
}

// Blocks returns the device size in blocks.
func (d *Disk) Blocks() int64 { return d.nblocks }

// Alloc reserves a contiguous extent of n blocks and returns its first
// block. This is a simple bump allocator: the simulated filesystem lays
// files out contiguously, which is the behaviour FFS approximates for the
// small files the experiments use.
func (d *Disk) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("disk: bad extent size %d", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.nextfit+n > d.nblocks {
		return 0, ErrNoSpace
	}
	start := d.nextfit
	d.nextfit += n
	return start, nil
}

// SetFaultPlan installs (or clears, with nil) the disk's declarative
// fault schedule. Install before I/O starts; a plan must not be shared
// between disks.
func (d *Disk) SetFaultPlan(p *FaultPlan) {
	d.mu.Lock()
	d.plan = p
	d.mu.Unlock()
}

// Dead reports whether the device has died (a device-death fault
// triggered, or Kill was called). Lock-free: allocators poll it to stop
// landing new work on a dead device.
func (d *Disk) Dead() bool { return d.dead.Load() }

// Kill marks the device dead immediately, as a device-death fault rule
// would: every later command fails with ErrDeviceDead. Test/experiment
// helper for death scenarios that are awkward to express as an Nth-op
// rule.
func (d *Disk) Kill() { d.dead.Store(true) }

// validateBufs checks every buffer is exactly one page long. Runs before
// any accounting: a malformed request never moves the head or charges
// time, because no command was ever issued to the device.
func validateBufs(bufs [][]byte) error {
	for i, buf := range bufs {
		if len(buf) != param.PageSize {
			return fmt.Errorf("disk: buffer %d has size %d", i, len(buf))
		}
	}
	return nil
}

// admit decides how many of a command's n pages transfer before a fault
// stops it: n with no fault, fewer (with the fault's error) otherwise.
// Consults the death flag, the declarative plan, then the legacy
// FailRead/FailWrite hook — whichever trips earliest in the block run
// wins. Caller holds d.mu.
func (d *Disk) admit(start int64, n int, write bool) (int, error) {
	if d.dead.Load() {
		return 0, ErrDeviceDead
	}
	k, err := n, error(nil)
	if d.plan != nil {
		var die bool
		k, die, err = d.plan.admit(start, n, write)
		if die {
			d.dead.Store(true)
			d.stats.Inc("disk.deaths")
		}
	}
	hook := d.FailRead
	if write {
		hook = d.FailWrite
	}
	if hook != nil {
		for i := 0; i < k; i++ {
			if herr := hook(start + int64(i)); herr != nil {
				return i, herr
			}
		}
	}
	return k, err
}

// ReadPages transfers len(bufs) consecutive blocks starting at start into
// the supplied page buffers. Each buffer must be param.PageSize long.
//
// Fault semantics: a command that faults at block k has read the first k
// pages into their buffers; only those k pages are charged and counted,
// and the head stops after them.
func (d *Disk) ReadPages(start int64, bufs [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(start, int64(len(bufs))); err != nil {
		return err
	}
	if err := validateBufs(bufs); err != nil {
		return err
	}
	k, err := d.admit(start, len(bufs), false)
	if err != nil && errors.Is(err, ErrDeviceDead) && k == 0 {
		// Dead controller: the command never reaches the medium.
		d.stats.Inc("disk.errors")
		return err
	}
	d.charge(start, k)
	d.stats.Inc(sim.CtrDiskReads)
	d.stats.Add(sim.CtrDiskPagesRead, int64(k))
	d.readBlocks(start, bufs[:k])
	if err != nil {
		d.stats.Inc("disk.errors")
	}
	return err
}

// WritePages transfers len(data) consecutive blocks starting at start from
// the supplied page buffers.
//
// Fault semantics mirror ReadPages: the first k pages of a command that
// faults at block k are durable on the medium (this is what a torn
// cluster write looks like), only they are charged and counted, and the
// head stops after them.
func (d *Disk) WritePages(start int64, data [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(start, int64(len(data))); err != nil {
		return err
	}
	if err := validateBufs(data); err != nil {
		return err
	}
	k, err := d.admit(start, len(data), true)
	if err != nil && errors.Is(err, ErrDeviceDead) && k == 0 {
		d.stats.Inc("disk.errors")
		return err
	}
	d.charge(start, k)
	d.stats.Inc(sim.CtrDiskWrites)
	d.stats.Add(sim.CtrDiskPagesWrite, int64(k))
	d.writeBlocks(start, data[:k])
	if err != nil {
		d.stats.Inc("disk.errors")
	}
	return err
}

// ReadPagesDeferred reads like ReadPages but charges no time to the
// calling context: it models an asynchronous read-ahead issued on the
// caller's behalf, whose latency is overlapped with the caller's
// execution. Deferred reads are counted separately in the stats.
func (d *Disk) ReadPagesDeferred(start int64, bufs [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(start, int64(len(bufs))); err != nil {
		return err
	}
	if err := validateBufs(bufs); err != nil {
		return err
	}
	k, err := d.admit(start, len(bufs), false)
	if err != nil && errors.Is(err, ErrDeviceDead) && k == 0 {
		d.stats.Inc("disk.errors")
		return err
	}
	d.stats.Inc("disk.reads.deferred")
	d.chargeDeferred(start, k)
	d.readBlocks(start, bufs[:k])
	if err != nil {
		d.stats.Inc("disk.errors")
	}
	return err
}

// WritePagesDeferred stores data like WritePages but charges no time to
// the calling context: the transfer is performed "later" by the syncer /
// buffer-cache flush, whose background time the simulation does not
// model. Deferred writes are counted separately in the stats.
func (d *Disk) WritePagesDeferred(start int64, data [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(start, int64(len(data))); err != nil {
		return err
	}
	if err := validateBufs(data); err != nil {
		return err
	}
	k, err := d.admit(start, len(data), true)
	if err != nil && errors.Is(err, ErrDeviceDead) && k == 0 {
		d.stats.Inc("disk.errors")
		return err
	}
	d.stats.Inc(sim.CtrDiskWritesDeferred)
	d.chargeDeferred(start, k)
	d.writeBlocks(start, data[:k])
	if err != nil {
		d.stats.Inc("disk.errors")
	}
	return err
}

// readBlocks copies the first len(bufs) blocks at start into their
// buffers (absent blocks read as zeros). Caller holds d.mu and has
// already validated, charged and counted the transfer.
func (d *Disk) readBlocks(start int64, bufs [][]byte) {
	for i, buf := range bufs {
		if src, ok := d.blocks[start+int64(i)]; ok {
			copy(buf, src)
		} else {
			for j := range buf {
				buf[j] = 0
			}
		}
	}
}

// writeBlocks stores the first len(data) blocks at start. Caller holds
// d.mu and has already validated, charged and counted the transfer.
func (d *Disk) writeBlocks(start int64, data [][]byte) {
	for i, src := range data {
		blk := start + int64(i)
		dst, ok := d.blocks[blk]
		if !ok {
			dst = make([]byte, param.PageSize)
			d.blocks[blk] = dst
		}
		copy(dst, src)
	}
}

// checkRange rejects I/O outside [0, nblocks). The bound is checked
// without computing start+n, which can wrap on adversarial inputs (a
// fault plan probing with huge block numbers must hit ErrOutOfRange, not
// a wrapped-around "valid" range).
func (d *Disk) checkRange(start, n int64) error {
	if start < 0 || n < 0 || n > d.nblocks || start > d.nblocks-n {
		return ErrOutOfRange
	}
	return nil
}

// charge accounts the time for one I/O command touching n blocks at
// start: a fixed per-command cost (controller overhead plus rotational
// latency — paid even for back-to-back sequential single-page commands,
// which is why unclustered pageout is slow), a positioning cost unless the
// head already sits there, and the media transfer rate per page.
func (d *Disk) charge(start int64, n int) {
	d.clock.Advance(d.costs.DiskOp)
	if d.head != start {
		d.clock.Advance(d.costs.DiskSeek)
		d.stats.Inc(sim.CtrDiskSeeks)
	}
	d.clock.ChargeN(n, d.costs.DiskPageIO)
	d.head = start + int64(n)
}

// chargeDeferred accounts a deferred I/O command's device-busy time in
// the disk.deferred_ns ledger instead of the caller's clock (the command
// overlaps the caller's execution, but the disk is still occupied — the
// ledger is what makes clustering's fewer-commands win measurable for
// overlapped writeback). The head model is untouched: deferred commands
// are reordered by the syncer, so they do not perturb the synchronous
// cost sequence.
func (d *Disk) chargeDeferred(start int64, n int) {
	busy := d.costs.DiskOp + d.costs.DiskSeek + time.Duration(n)*d.costs.DiskPageIO
	d.stats.Add(sim.CtrDiskDeferredNs, int64(busy))
}
