// Package disk models a late-1990s fixed disk at page granularity.
//
// The model is deliberately simple — a positioning (seek + rotational)
// cost for every discontiguous access and a media-rate cost per 4 KB page
// transferred — because that is the only disk behaviour the paper's
// results depend on: BSD VM pays one positioning cost per page written
// (it pages out one page per I/O), while UVM's clustered pageout pays one
// positioning cost per 64-page cluster (Figure 5), and Figure 2's knee is
// driven purely by whether a file access goes to memory or to the disk at
// all.
//
// Blocks are page-sized. Data is stored for real, so swap round-trips and
// file reads are verified byte-for-byte by the test suite.
package disk

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"uvm/internal/param"
	"uvm/internal/sim"
)

// ErrOutOfRange is returned for I/O beyond the end of the device.
var ErrOutOfRange = errors.New("disk: block out of range")

// ErrNoSpace is returned when an extent allocation cannot be satisfied.
var ErrNoSpace = errors.New("disk: no space")

// Disk is a simulated page-granular block device.
type Disk struct {
	clock *sim.Clock
	costs *sim.Costs
	stats *sim.Stats

	mu      sync.Mutex
	nblocks int64
	blocks  map[int64][]byte // lazily allocated; absent block reads as zeros
	head    int64            // block the head sits after (sequential detection)
	nextfit int64            // bump pointer for Alloc

	// FailRead and FailWrite, when non-nil, are consulted before every
	// transfer and may inject an I/O error for a given block. Used by the
	// failure-injection tests.
	FailRead  func(block int64) error
	FailWrite func(block int64) error
}

// New creates a disk with nblocks page-sized blocks.
func New(clock *sim.Clock, costs *sim.Costs, stats *sim.Stats, nblocks int64) *Disk {
	if nblocks <= 0 {
		panic("disk: non-positive size")
	}
	return &Disk{
		clock:   clock,
		costs:   costs,
		stats:   stats,
		nblocks: nblocks,
		blocks:  make(map[int64][]byte),
		head:    -1,
	}
}

// Blocks returns the device size in blocks.
func (d *Disk) Blocks() int64 { return d.nblocks }

// Alloc reserves a contiguous extent of n blocks and returns its first
// block. This is a simple bump allocator: the simulated filesystem lays
// files out contiguously, which is the behaviour FFS approximates for the
// small files the experiments use.
func (d *Disk) Alloc(n int64) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("disk: bad extent size %d", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.nextfit+n > d.nblocks {
		return 0, ErrNoSpace
	}
	start := d.nextfit
	d.nextfit += n
	return start, nil
}

// ReadPages transfers len(bufs) consecutive blocks starting at start into
// the supplied page buffers. Each buffer must be param.PageSize long.
func (d *Disk) ReadPages(start int64, bufs [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(start, int64(len(bufs))); err != nil {
		return err
	}
	d.charge(start, len(bufs))
	d.stats.Inc(sim.CtrDiskReads)
	d.stats.Add(sim.CtrDiskPagesRead, int64(len(bufs)))
	for i, buf := range bufs {
		if len(buf) != param.PageSize {
			return fmt.Errorf("disk: buffer %d has size %d", i, len(buf))
		}
		blk := start + int64(i)
		if d.FailRead != nil {
			if err := d.FailRead(blk); err != nil {
				return err
			}
		}
		if src, ok := d.blocks[blk]; ok {
			copy(buf, src)
		} else {
			for j := range buf {
				buf[j] = 0
			}
		}
	}
	return nil
}

// WritePages transfers len(data) consecutive blocks starting at start from
// the supplied page buffers.
func (d *Disk) WritePages(start int64, data [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(start, int64(len(data))); err != nil {
		return err
	}
	d.charge(start, len(data))
	d.stats.Inc(sim.CtrDiskWrites)
	d.stats.Add(sim.CtrDiskPagesWrite, int64(len(data)))
	for i, src := range data {
		if len(src) != param.PageSize {
			return fmt.Errorf("disk: buffer %d has size %d", i, len(src))
		}
		blk := start + int64(i)
		if d.FailWrite != nil {
			if err := d.FailWrite(blk); err != nil {
				return err
			}
		}
		dst, ok := d.blocks[blk]
		if !ok {
			dst = make([]byte, param.PageSize)
			d.blocks[blk] = dst
		}
		copy(dst, src)
	}
	return nil
}

// ReadPagesDeferred reads like ReadPages but charges no time to the
// calling context: it models an asynchronous read-ahead issued on the
// caller's behalf, whose latency is overlapped with the caller's
// execution. Deferred reads are counted separately in the stats.
func (d *Disk) ReadPagesDeferred(start int64, bufs [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(start, int64(len(bufs))); err != nil {
		return err
	}
	d.stats.Inc("disk.reads.deferred")
	d.chargeDeferred(start, len(bufs))
	for i, buf := range bufs {
		if len(buf) != param.PageSize {
			return fmt.Errorf("disk: buffer %d has size %d", i, len(buf))
		}
		blk := start + int64(i)
		if d.FailRead != nil {
			if err := d.FailRead(blk); err != nil {
				return err
			}
		}
		if src, ok := d.blocks[blk]; ok {
			copy(buf, src)
		} else {
			for j := range buf {
				buf[j] = 0
			}
		}
	}
	return nil
}

// WritePagesDeferred stores data like WritePages but charges no time to
// the calling context: the transfer is performed "later" by the syncer /
// buffer-cache flush, whose background time the simulation does not
// model. Deferred writes are counted separately in the stats.
func (d *Disk) WritePagesDeferred(start int64, data [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkRange(start, int64(len(data))); err != nil {
		return err
	}
	d.stats.Inc("disk.writes.deferred")
	d.chargeDeferred(start, len(data))
	for i, src := range data {
		if len(src) != param.PageSize {
			return fmt.Errorf("disk: buffer %d has size %d", i, len(src))
		}
		blk := start + int64(i)
		if d.FailWrite != nil {
			if err := d.FailWrite(blk); err != nil {
				return err
			}
		}
		dst, ok := d.blocks[blk]
		if !ok {
			dst = make([]byte, param.PageSize)
			d.blocks[blk] = dst
		}
		copy(dst, src)
	}
	return nil
}

func (d *Disk) checkRange(start, n int64) error {
	if start < 0 || n < 0 || start+n > d.nblocks {
		return ErrOutOfRange
	}
	return nil
}

// charge accounts the time for one I/O command touching n blocks at
// start: a fixed per-command cost (controller overhead plus rotational
// latency — paid even for back-to-back sequential single-page commands,
// which is why unclustered pageout is slow), a positioning cost unless the
// head already sits there, and the media transfer rate per page.
func (d *Disk) charge(start int64, n int) {
	d.clock.Advance(d.costs.DiskOp)
	if d.head != start {
		d.clock.Advance(d.costs.DiskSeek)
		d.stats.Inc(sim.CtrDiskSeeks)
	}
	d.clock.ChargeN(n, d.costs.DiskPageIO)
	d.head = start + int64(n)
}

// chargeDeferred accounts a deferred I/O command's device-busy time in
// the disk.deferred_ns ledger instead of the caller's clock (the command
// overlaps the caller's execution, but the disk is still occupied — the
// ledger is what makes clustering's fewer-commands win measurable for
// overlapped writeback). The head model is untouched: deferred commands
// are reordered by the syncer, so they do not perturb the synchronous
// cost sequence.
func (d *Disk) chargeDeferred(start int64, n int) {
	busy := d.costs.DiskOp + d.costs.DiskSeek + time.Duration(n)*d.costs.DiskPageIO
	d.stats.Add(sim.CtrDiskDeferredNs, int64(busy))
}
