package analysis

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"
)

// Unit-checker mode: `go vet -vettool=uvmlint ./...` invokes the tool
// once per package with the path of a vet.cfg JSON file. go vet drives
// the full dependency graph (standard library included, as facts-only
// units), hands each unit the export data and vetx facts of its direct
// imports, and expects the unit's own facts written to VetxOutput.

// vetConfig mirrors the subset of cmd/go's vet config the checker needs.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	Standard                  map[string]bool
	ModulePath                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker analyses the package described by cfgFile and returns
// the process exit code (0 clean, 2 diagnostics).
func RunUnitchecker(cfgFile string, stderr io.Writer) int {
	cfg, err := readVetConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "uvmlint: %v\n", err)
		return 1
	}

	// Only analyse this module's non-test package variants; everything
	// else (stdlib units, test binaries, external-test packages) gets an
	// empty facts file so downstream units load cleanly.
	if !analysableImportPath(cfg.ImportPath, cfg.ModulePath) {
		if err := writeFacts(cfg.VetxOutput, &PackageFacts{}); err != nil {
			fmt.Fprintf(stderr, "uvmlint: %v\n", err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// go vet folds a package's internal test files into the same
		// compilation unit. The suite audits report-feeding production
		// code; tests may freely range maps and read the wall clock, so
		// they are excluded here just as `go list` excludes them from
		// the standalone runner's file set.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "uvmlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// go vet gives us export data for every import, so the gc importer
	// serves module and stdlib packages alike.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, info, err := check(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "uvmlint: %v\n", err)
		return 1
	}

	factCache := make(map[string]*PackageFacts)
	target := &Target{
		Path:      cfg.ImportPath,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Facts: func(path string) *PackageFacts {
			if pf, ok := factCache[path]; ok {
				return pf
			}
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			file, ok := cfg.PackageVetx[path]
			if !ok {
				return nil
			}
			pf, err := readFacts(file)
			if err != nil {
				pf = nil
			}
			factCache[path] = pf
			return pf
		},
	}

	diags, facts, err := RunSuite(target, Suite())
	if err != nil {
		fmt.Fprintf(stderr, "uvmlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if err := writeFacts(cfg.VetxOutput, facts); err != nil {
		fmt.Fprintf(stderr, "uvmlint: %v\n", err)
		return 1
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	return 2
}

// analysableImportPath reports whether the unit is one of this module's
// regular (non-test-variant) packages.
func analysableImportPath(importPath, modulePath string) bool {
	if modulePath == "" || (importPath != modulePath && !strings.HasPrefix(importPath, modulePath+"/")) {
		return false
	}
	// "p [p.test]" in-test variants, "p.test" binaries, "p_test" external
	// test packages.
	if strings.Contains(importPath, " [") ||
		strings.HasSuffix(importPath, ".test") ||
		strings.HasSuffix(importPath, "_test") {
		return false
	}
	return true
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return &cfg, nil
}

func writeFacts(path string, facts *PackageFacts) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(facts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readFacts(path string) (*PackageFacts, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var facts PackageFacts
	if err := gob.NewDecoder(f).Decode(&facts); err != nil {
		return nil, err
	}
	return &facts, nil
}
