package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //uvm: annotation grammar (documented in docs/analysis.md):
//
//	//uvm:lock <level>          on a mutex-bearing struct field
//	//uvm:completion            on a completion-callback func/method
//	//uvm:lockorder-ok <why>    waive a lockorder finding on this line
//	//uvm:completion-ok <why>   waive a completioncallback finding
//	//uvm:wallclock <why>       waive a simdet wall-clock finding
//	//uvm:maporder-ok <why>     waive a simdet map-iteration finding
//	//uvm:rand-ok <why>         waive a simdet math/rand finding
//	//uvm:counter-ok <why>      waive a counterhandle finding
//
// Waivers apply to findings on the same source line as the comment, or
// on the line directly below a standalone comment line.

// waiverKinds maps the waiver directive name to itself; used to reject
// unknown //uvm: directives.
var waiverKinds = map[string]bool{
	"lockorder-ok":  true,
	"completion-ok": true,
	"wallclock":     true,
	"maporder-ok":   true,
	"rand-ok":       true,
	"counter-ok":    true,
}

// A fieldLevel is one //uvm:lock annotation.
type fieldLevel struct {
	Level string
	Pos   token.Pos
}

// Directives holds every //uvm: annotation scanned from one package.
type Directives struct {
	// FieldLevels maps "TypeName.FieldName" to its declared lock level.
	FieldLevels map[string]fieldLevel
	// Completions holds the func keys ("Recv.Name" or "Name") of
	// annotated completion entry points.
	Completions map[string]token.Pos
	// waivers maps waiver kind -> filename -> set of covered lines.
	waivers map[string]map[string]map[int]bool
	// Bad records malformed or unknown //uvm: directives.
	Bad []Diagnostic
}

// Waived reports whether a waiver of the given kind covers pos.
func (d *Directives) Waived(kind string, pos token.Position) bool {
	byFile := d.waivers[kind]
	if byFile == nil {
		return false
	}
	lines := byFile[pos.Filename]
	return lines[pos.Line]
}

// ScanDirectives extracts every //uvm: directive from files.
func ScanDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		FieldLevels: make(map[string]fieldLevel),
		Completions: make(map[string]token.Pos),
		waivers:     make(map[string]map[string]map[int]bool),
	}
	for _, f := range files {
		d.scanFile(fset, f)
	}
	return d
}

func (d *Directives) scanFile(fset *token.FileSet, f *ast.File) {
	// Waivers: any comment line anywhere in the file. A standalone
	// comment covers itself and the next line; a trailing comment covers
	// its own line.
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			name, _, ok := parseDirective(c.Text)
			if !ok || !waiverKinds[name] {
				continue
			}
			p := fset.Position(c.Pos())
			d.addWaiver(name, p.Filename, p.Line)
			d.addWaiver(name, p.Filename, p.Line+1)
		}
	}

	for _, decl := range f.Decls {
		switch decl := decl.(type) {
		case *ast.FuncDecl:
			if hasDirective(decl.Doc, "completion") {
				d.Completions[funcDeclKey(decl)] = decl.Pos()
			}
		case *ast.GenDecl:
			if decl.Tok != token.TYPE {
				continue
			}
			for _, spec := range decl.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				d.scanStruct(fset, ts.Name.Name, st)
			}
		}
	}
}

func (d *Directives) scanStruct(fset *token.FileSet, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		level, pos, ok := fieldLockDirective(field)
		if !ok {
			continue
		}
		if !KnownLevel(level) {
			d.Bad = append(d.Bad, Diagnostic{
				Analyzer: "lockorder",
				Pos:      fset.Position(pos),
				Message:  "//uvm:lock names unknown level " + quoteArg(level) + " (see internal/analysis/levels.go)",
			})
			continue
		}
		for _, name := range fieldNames(field) {
			d.FieldLevels[typeName+"."+name] = fieldLevel{Level: level, Pos: pos}
		}
	}
}

// fieldLockDirective extracts a //uvm:lock directive from a struct
// field's doc or trailing comment.
func fieldLockDirective(field *ast.Field) (level string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if name, arg, isDir := parseDirective(c.Text); isDir && name == "lock" {
				return arg, c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

// fieldNames returns the declared names of field, synthesising the type
// name for embedded fields (an embedded sync.Mutex is field "Mutex").
func fieldNames(field *ast.Field) []string {
	if len(field.Names) > 0 {
		names := make([]string, len(field.Names))
		for i, n := range field.Names {
			names[i] = n.Name
		}
		return names
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return []string{t.Name}
	case *ast.SelectorExpr:
		return []string{t.Sel.Name}
	}
	return nil
}

func (d *Directives) addWaiver(kind, file string, line int) {
	byFile := d.waivers[kind]
	if byFile == nil {
		byFile = make(map[string]map[int]bool)
		d.waivers[kind] = byFile
	}
	lines := byFile[file]
	if lines == nil {
		lines = make(map[int]bool)
		byFile[file] = lines
	}
	lines[line] = true
}

// parseDirective splits a `//uvm:name arg...` comment into its name and
// argument. The directive must start the comment with no space after
// `//`, mirroring go:build / go:generate.
func parseDirective(text string) (name, arg string, ok bool) {
	const prefix = "//uvm:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		return rest[:i], strings.TrimSpace(rest[i+1:]), true
	}
	return rest, "", true
}

// hasDirective reports whether cg contains `//uvm:<name>`.
func hasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if n, _, ok := parseDirective(c.Text); ok && n == name {
			return true
		}
	}
	return false
}

// funcDeclKey is the summary key of a func declaration: "Recv.Name" for
// methods (pointer receivers stripped), plain "Name" otherwise.
func funcDeclKey(decl *ast.FuncDecl) string {
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		t := decl.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		// Strip type parameters on generic receivers.
		if idx, ok := t.(*ast.IndexExpr); ok {
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + decl.Name.Name
		}
	}
	return decl.Name.Name
}

// quoteArg quotes a possibly-empty directive argument for a message.
func quoteArg(s string) string {
	if s == "" {
		return `""`
	}
	return `"` + s + `"`
}
