package analysis

import "strings"

// Package targeting. Analyzers key off the import-path suffix under the
// module so the same tables work for the real tree ("uvm/internal/...")
// and for test fixtures ("uvm/internal/..." under testdata/src).

// lockCorePackages are the concurrency-bearing packages where every
// mutex field must carry a //uvm:lock annotation and the lockorder and
// completioncallback analyzers enforce the hierarchy.
var lockCorePackages = []string{
	"internal/uvm",
	"internal/phys",
	"internal/pmap",
	"internal/swap",
	"internal/vfs",
	"internal/disk",
	"internal/sysv",
	"internal/bsdvm",
	"internal/control",
}

// simdetPackages feed the paper reports: wall-clock reads, math/rand
// and map-iteration order in these packages change report bytes or I/O
// ordering.
var simdetPackages = []string{
	"internal/sim",
	"internal/experiments",
	"internal/uvm",
	"internal/bsdvm",
	"internal/swap",
	"internal/vfs",
	"internal/disk",
}

// counterPackages are the hot-path packages where the cached
// sim.Counter handle is the established idiom for per-operation counts.
var counterPackages = []string{
	"internal/uvm",
	"internal/phys",
	"internal/pmap",
	"internal/swap",
	"internal/vfs",
	"internal/disk",
	"internal/bsdvm",
}

// pkgInSet reports whether path ends in one of the listed suffixes.
func pkgInSet(path string, set []string) bool {
	for _, s := range set {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
