package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named check. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the suite reads like a standard
// multichecker even though it is self-contained.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the vet style: pos: message [analyzer].
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one type-checked package, its //uvm: directives and the
// facts of its (module-local) imports through the analyzers.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Dirs holds the package's scanned //uvm: directives.
	Dirs *Directives
	// Facts resolves the exported facts of an imported module package
	// (nil for stdlib or unanalyzed imports).
	Facts func(pkgPath string) *PackageFacts
	// OwnFacts is the current package's facts (annotations + function
	// lock summaries), computed by the suite before any analyzer runs.
	OwnFacts *PackageFacts

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a waiver directive of kind
// waiverKind covers that line. Pass an empty waiverKind for findings
// that cannot be waived.
func (p *Pass) Reportf(pos token.Pos, waiverKind string, format string, args ...any) {
	position := p.Fset.Position(pos)
	if waiverKind != "" && p.Dirs.Waived(waiverKind, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suite returns the uvmlint analyzers in their canonical order.
func Suite() []*Analyzer {
	return []*Analyzer{
		LockOrderAnalyzer,
		CompletionAnalyzer,
		SimDetAnalyzer,
		CounterHandleAnalyzer,
	}
}

// Target is one loaded, type-checked package ready for analysis.
type Target struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts resolves previously computed facts for imported module
	// packages; may be nil when the package has no module-local imports.
	Facts func(pkgPath string) *PackageFacts
}

// RunSuite scans t's directives, computes its exported facts, runs the
// given analyzers and returns the surviving diagnostics (sorted by
// position) together with the facts for downstream packages. A nil
// analyzers slice runs the full Suite.
func RunSuite(t *Target, analyzers []*Analyzer) ([]Diagnostic, *PackageFacts, error) {
	if analyzers == nil {
		analyzers = Suite()
	}
	dirs := ScanDirectives(t.Fset, t.Files)
	facts := ComputeFacts(t, dirs)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.TypesInfo,
			Dirs:      dirs,
			Facts:     t.Facts,
			OwnFacts:  facts,
			diags:     &diags,
		}
		if pass.Facts == nil {
			pass.Facts = func(string) *PackageFacts { return nil }
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, t.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return dedupe(diags), facts, nil
}

// dedupe drops exact repeats (the lockorder walker intentionally visits
// loop bodies twice to catch iteration-carried violations).
func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	seen := make(map[Diagnostic]bool, len(diags))
	for _, d := range diags {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}
