package analysis

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture loads the named fixture packages from testdata/src, runs
// the given analyzers over each in dependency order (threading facts so
// cross-package summaries work) and returns every diagnostic.
func runFixture(t *testing.T, pkgPaths []string, analyzers []*Analyzer, overlay func(string, []byte) []byte) []Diagnostic {
	t.Helper()
	res, err := LoadFixture("testdata", pkgPaths, overlay)
	if err != nil {
		t.Fatalf("load fixture %v: %v", pkgPaths, err)
	}
	var all []Diagnostic
	for _, tgt := range res.Targets {
		diags, facts, err := RunSuite(tgt, analyzers)
		if err != nil {
			t.Fatalf("run suite on %s: %v", tgt.Path, err)
		}
		res.Facts[tgt.Path] = facts
		all = append(all, diags...)
	}
	return all
}

// expectation is one `// want` comment in a fixture file.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("//\\s*want\\s+`([^`]+)`")

// parseWants scans the fixture packages' sources for `// want `regex“
// comments.
func parseWants(t *testing.T, pkgPaths []string) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgPaths {
		dir := filepath.Join("testdata", "src", filepath.FromSlash(pkg))
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("fixture dir %s: %v", dir, err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			full := filepath.Join(dir, e.Name())
			src, err := os.ReadFile(full)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(bytes.NewReader(src))
			for line := 1; sc.Scan(); line++ {
				for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", full, line, m[1], err)
					}
					wants = append(wants, &expectation{file: full, line: line, re: re})
				}
			}
		}
	}
	return wants
}

// checkWants matches diagnostics against the fixtures' want comments:
// every want must be hit, and every diagnostic must be wanted.
func checkWants(t *testing.T, pkgPaths []string, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkgPaths)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// stripWaiver returns an overlay that disables one waiver directive
// while keeping every line number intact, so the waived diagnostic
// reappears at a known position.
func stripWaiver(kind string) func(string, []byte) []byte {
	return func(_ string, src []byte) []byte {
		return bytes.ReplaceAll(src, []byte("//uvm:"+kind), []byte("// off:"+kind))
	}
}

// hasDiag reports whether some diagnostic in a file whose path ends in
// fileSuffix contains substr.
func hasDiag(diags []Diagnostic, fileSuffix, substr string) bool {
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, fileSuffix) && strings.Contains(d.Message, substr) {
			return true
		}
	}
	return false
}

func TestLockOrderFixture(t *testing.T) {
	pkgs := []string{"lock/internal/uvm"}
	diags := runFixture(t, pkgs, []*Analyzer{LockOrderAnalyzer}, nil)
	checkWants(t, pkgs, diags)
}

func TestLockOrderMutation(t *testing.T) {
	pkgs := []string{"lock/internal/uvm"}
	diags := runFixture(t, pkgs, []*Analyzer{LockOrderAnalyzer}, stripWaiver("lockorder-ok"))
	if !hasDiag(diags, "lock.go", "acquiring m.mu(map) while holding o.mu(object)") {
		t.Errorf("stripping the lockorder-ok waiver did not resurface the inversion; got %v", diags)
	}
}

func TestCompletionFixture(t *testing.T) {
	pkgs := []string{"comp/internal/uvm"}
	diags := runFixture(t, pkgs, []*Analyzer{CompletionAnalyzer}, nil)
	checkWants(t, pkgs, diags)
}

func TestCompletionMutation(t *testing.T) {
	pkgs := []string{"comp/internal/uvm"}
	diags := runFixture(t, pkgs, []*Analyzer{CompletionAnalyzer}, stripWaiver("completion-ok"))
	if !hasDiag(diags, "comp.go", "reachable from completion callback flight.waivedDone") {
		t.Errorf("stripping the completion-ok waiver did not resurface the finding; got %v", diags)
	}
}

func TestSimDetFixture(t *testing.T) {
	pkgs := []string{"det/internal/uvm"}
	diags := runFixture(t, pkgs, []*Analyzer{SimDetAnalyzer}, nil)
	checkWants(t, pkgs, diags)
}

func TestSimDetMutation(t *testing.T) {
	pkgs := []string{"det/internal/uvm"}
	diags := runFixture(t, pkgs, []*Analyzer{SimDetAnalyzer}, stripWaiver("maporder-ok"))
	if !hasDiag(diags, "det.go", "range over a map") || len(diags) != 5 {
		t.Errorf("stripping the maporder-ok waiver should add exactly one map-range finding; got %v", diags)
	}
}

func TestCounterHandleFixture(t *testing.T) {
	pkgs := []string{"ctr/internal/uvm"}
	diags := runFixture(t, pkgs, []*Analyzer{CounterHandleAnalyzer}, nil)
	checkWants(t, pkgs, diags)
}

func TestCounterHandleMutation(t *testing.T) {
	pkgs := []string{"ctr/internal/uvm"}
	diags := runFixture(t, pkgs, []*Analyzer{CounterHandleAnalyzer}, stripWaiver("counter-ok"))
	if !hasDiag(diags, "ctr.go", "string-keyed sim.Stats.Add inside a loop") {
		t.Errorf("stripping the counter-ok waiver did not resurface the finding; got %v", diags)
	}
}

// TestSuiteCleanOverRealTree is the fence the tentpole demands: the
// full analyzer suite must produce zero diagnostics over the module
// itself — every true positive fixed, every accepted exception waived
// with a reason.
func TestSuiteCleanOverRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	res, err := LoadPackages("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, tgt := range res.Targets {
		diags, facts, err := RunSuite(tgt, nil)
		if err != nil {
			t.Fatalf("run suite on %s: %v", tgt.Path, err)
		}
		res.Facts[tgt.Path] = facts
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
