package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// FuncFact is the modular lock summary of one function: every level it
// may blockingly acquire, directly or through static callees, and
// whether it may block on a condition variable. Summaries are
// transitively closed, so an importer only ever needs the facts of its
// direct imports.
type FuncFact struct {
	Acquires []string
	Waits    bool
}

// PackageFacts is what one analyzed package exports to its importers:
// the declared levels of its annotated lock fields and the lock
// summaries of its functions. Facts are carried in memory by the
// standalone driver and serialized as the vetx facts file by the go vet
// unitchecker mode.
type PackageFacts struct {
	// Fields maps "TypeName.FieldName" to the field's declared level.
	Fields map[string]string
	// Funcs maps "RecvType.Name" / "Name" to the function's summary.
	Funcs map[string]FuncFact
	// Completions holds the func keys annotated //uvm:completion.
	Completions []string
}

// ComputeFacts builds t's exported facts: annotation levels straight
// from the directives, and function summaries by a fixpoint over the
// package-local static call graph seeded with direct acquisitions and
// imported summaries.
func ComputeFacts(t *Target, dirs *Directives) *PackageFacts {
	facts := &PackageFacts{
		Fields: make(map[string]string),
		Funcs:  make(map[string]FuncFact),
	}
	for key, fl := range dirs.FieldLevels {
		facts.Fields[key] = fl.Level
	}
	for key := range dirs.Completions {
		facts.Completions = append(facts.Completions, key)
	}
	sort.Strings(facts.Completions)

	res := &resolver{
		info:  t.TypesInfo,
		pkg:   t.Pkg,
		dirs:  dirs,
		facts: t.Facts,
	}

	// Seed: per-function direct acquisitions + resolved cross-package
	// callee summaries + unresolved same-package callee keys.
	type seed struct {
		acquires map[string]bool
		waits    bool
		callees  map[string]bool // same-package callee keys
	}
	seeds := make(map[string]*seed)
	for _, f := range t.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &seed{acquires: make(map[string]bool), callees: make(map[string]bool)}
			// A blocking Lock preceded (in source order) by an Unlock of
			// the same lock expression is a re-acquisition of a lock the
			// caller handed in — the drop-and-reacquire hand-off of the
			// *Locked helpers (waitObjPageIdle, FS.recycleLocked). It is
			// not a new acquired-while-held edge for callers, so it stays
			// out of the summary.
			released := make(map[string]bool)
			inspectNoFuncLit(fd.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				if site, ok := res.lockCall(call); ok {
					switch site.method {
					case "Lock", "RLock":
						if site.level != "" && !released[site.expr] {
							s.acquires[site.level] = true
						}
					case "Unlock", "RUnlock":
						released[site.expr] = true
					case "Wait":
						if site.recvType == "Cond" {
							s.waits = true
						}
					}
					return
				}
				pkgPath, key, ok := res.calleeKey(call)
				if !ok {
					return
				}
				if pkgPath == t.Pkg.Path() {
					s.callees[key] = true
				} else if imp := t.factsFor(pkgPath); imp != nil {
					if ff, ok := imp.Funcs[key]; ok {
						for _, l := range ff.Acquires {
							s.acquires[l] = true
						}
						s.waits = s.waits || ff.Waits
					}
				}
			})
			seeds[funcDeclKey(fd)] = s
		}
	}

	// Fixpoint: propagate same-package callee summaries until stable.
	for changed := true; changed; {
		changed = false
		for _, s := range seeds {
			for callee := range s.callees {
				cs, ok := seeds[callee]
				if !ok {
					continue
				}
				for l := range cs.acquires {
					if !s.acquires[l] {
						s.acquires[l] = true
						changed = true
					}
				}
				if cs.waits && !s.waits {
					s.waits = true
					changed = true
				}
			}
		}
	}

	for key, s := range seeds {
		levels := make([]string, 0, len(s.acquires))
		for l := range s.acquires {
			levels = append(levels, l)
		}
		sort.Strings(levels)
		facts.Funcs[key] = FuncFact{Acquires: levels, Waits: s.waits}
	}
	return facts
}

// factsFor resolves imported facts, tolerating a nil Facts func.
func (t *Target) factsFor(pkgPath string) *PackageFacts {
	if t.Facts == nil {
		return nil
	}
	return t.Facts(pkgPath)
}

// inspectNoFuncLit walks n calling fn on every node, without descending
// into function literals: a closure's acquisitions happen when the
// closure runs, not when its enclosing function does.
func inspectNoFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false
		}
		if node != nil {
			fn(node)
		}
		return true
	})
}

// resolver maps lock-method call sites back to annotated struct fields
// and call sites to function summary keys.
type resolver struct {
	info  *types.Info
	pkg   *types.Package
	dirs  *Directives
	facts func(string) *PackageFacts
}

// lockSite is one classified sync.Mutex / sync.RWMutex / sync.Cond
// method call.
type lockSite struct {
	method   string // Lock, RLock, TryLock, TryRLock, Unlock, RUnlock, Wait, ...
	recvType string // Mutex, RWMutex, Cond
	level    string // declared level of the receiver field ("" if unknown)
	fieldKey string // "TypeName.FieldName" ("" if not a struct field)
	expr     string // printed receiver expression, the lock's identity
}

// blocking reports whether the call is a blocking acquisition.
func (s *lockSite) blocking() bool { return s.method == "Lock" || s.method == "RLock" }

// try reports whether the call is a non-blocking acquisition attempt.
func (s *lockSite) try() bool { return s.method == "TryLock" || s.method == "TryRLock" }

// release reports whether the call releases the lock.
func (s *lockSite) release() bool { return s.method == "Unlock" || s.method == "RUnlock" }

// lockCall classifies call if its callee is a method of sync.Mutex,
// sync.RWMutex or sync.Cond.
func (r *resolver) lockCall(call *ast.CallExpr) (*lockSite, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	s := r.info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return nil, false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, false
	}
	named, ok := derefNamed(recv.Type())
	if !ok {
		return nil, false
	}
	recvName := named.Obj().Name()
	if recvName != "Mutex" && recvName != "RWMutex" && recvName != "Cond" {
		return nil, false
	}
	site := &lockSite{
		method:   fn.Name(),
		recvType: recvName,
		expr:     types.ExprString(sel.X),
	}

	// Resolve the lock back to a struct field. Two shapes:
	//   x.mu.Lock()  — sel.X is itself a field selector;
	//   x.Lock()     — the mutex is embedded, the field path is in the
	//                  method selection's index chain.
	if idx := s.Index(); len(idx) > 1 {
		if owner, field, ok := fieldChain(s.Recv(), idx[:len(idx)-1]); ok {
			r.fillLevel(site, owner, field)
		}
		return site, true
	}
	if fieldSel, ok := sel.X.(*ast.SelectorExpr); ok {
		if fs := r.info.Selections[fieldSel]; fs != nil && fs.Kind() == types.FieldVal {
			if owner, field, ok := fieldChain(fs.Recv(), fs.Index()); ok {
				r.fillLevel(site, owner, field)
			}
		}
	}
	return site, true
}

func (r *resolver) fillLevel(site *lockSite, owner *types.Named, field *types.Var) {
	site.fieldKey = owner.Obj().Name() + "." + field.Name()
	ownerPkg := field.Pkg()
	if ownerPkg == nil {
		return
	}
	if ownerPkg == r.pkg {
		if fl, ok := r.dirs.FieldLevels[site.fieldKey]; ok {
			site.level = fl.Level
		}
		return
	}
	if r.facts != nil {
		if pf := r.facts(ownerPkg.Path()); pf != nil {
			site.level = pf.Fields[site.fieldKey]
		}
	}
}

// calleeKey resolves a statically-dispatched call to (package path,
// summary key). Interface calls and calls through function values are
// not resolvable and report ok=false.
func (r *resolver) calleeKey(call *ast.CallExpr) (pkgPath, key string, ok bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, ok := r.info.Uses[fun].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return "", "", false
		}
		return fn.Pkg().Path(), funcObjKey(fn), true
	case *ast.SelectorExpr:
		if s := r.info.Selections[fun]; s != nil {
			fn, ok := s.Obj().(*types.Func)
			if !ok || fn.Pkg() == nil {
				return "", "", false
			}
			// Interface method: dynamic dispatch, no static summary.
			if isInterfaceRecv(fn) {
				return "", "", false
			}
			return fn.Pkg().Path(), funcObjKey(fn), true
		}
		// Package-qualified call: pkg.Fn(...).
		if fn, ok := r.info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if isInterfaceRecv(fn) {
				return "", "", false
			}
			return fn.Pkg().Path(), funcObjKey(fn), true
		}
	}
	return "", "", false
}

func isInterfaceRecv(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return types.IsInterface(recv.Type())
}

// funcObjKey is the summary key of a *types.Func, matching funcDeclKey.
func funcObjKey(fn *types.Func) string {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return fn.Name()
	}
	if named, ok := derefNamed(recv.Type()); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// fieldChain walks a selection index path through start's struct fields
// and returns the final field together with the named struct type that
// declares it.
func fieldChain(start types.Type, path []int) (*types.Named, *types.Var, bool) {
	cur := start
	var owner *types.Named
	var field *types.Var
	for _, fi := range path {
		named, _ := derefNamed(cur)
		st, ok := derefStruct(cur)
		if !ok || fi >= st.NumFields() {
			return nil, nil, false
		}
		owner, field = named, st.Field(fi)
		cur = field.Type()
	}
	if owner == nil || field == nil {
		return nil, nil, false
	}
	return owner, field, true
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if alias, ok := t.(*types.Alias); ok {
		t = types.Unalias(alias)
	}
	named, ok := t.(*types.Named)
	return named, ok
}

func derefStruct(t types.Type) (*types.Struct, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}
