// Package analysis is uvmlint: a static-analysis suite that enforces
// the concurrency and determinism invariants this codebase otherwise
// keeps only in prose (the lock-hierarchy note atop internal/uvm/system.go,
// the completion-callback rules, the "no wall clock in report paths"
// discipline, the cached sim.Counter idiom).
//
// The suite is self-contained — it deliberately re-implements the small
// slice of golang.org/x/tools/go/analysis it needs (Analyzer, Pass,
// Diagnostic, an analysistest-style fixture runner and a go-vet
// unitchecker driver) so the module keeps its zero-dependency build.
//
// Four analyzers:
//
//   - lockorder: every mutex-bearing struct field in the concurrency
//     core carries a machine-readable level tag (//uvm:lock <level>);
//     the analyzer walks each function body building the static
//     acquired-while-held set and flags any blocking Lock/RLock that
//     goes up or sideways in the declared hierarchy. TryLock
//     acquisitions are exempt but recorded as held, and a blocking
//     Lock on a *different* same-level lock inside the failure branch
//     of a TryLock is flagged as TryLock-protocol misuse.
//
//   - completioncallback: functions annotated //uvm:completion (the
//     swap/disk AIO and object-writeback completion bodies) and
//     everything statically reachable from them must never blockingly
//     acquire system/map/vnobj/object/amap/anon locks and must not
//     block on condition variables.
//
//   - simdet: in the packages that feed the paper reports, wall-clock
//     reads (time.Now and friends), math/rand, and range over a map
//     are flagged — each with an explicit waiver directive for the few
//     sites that are nondeterministic on purpose.
//
//   - counterhandle: string-keyed sim.Stats lookups (Add/Inc/Counter)
//     inside loops are flagged where the cached sim.Counter handle is
//     the established idiom.
//
// The annotation grammar is documented in docs/analysis.md. The driver
// is cmd/uvmlint, runnable standalone (uvmlint ./...) or as a go vet
// tool (go vet -vettool=$(which uvmlint) ./...).
package analysis
