package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// SimDetAnalyzer guards sim-clock determinism in the packages that feed
// the paper reports: wall-clock reads (time.Now and friends) are flagged
// unless waived with //uvm:wallclock <reason> (the traffic driver's
// latency histogram times wall clock on purpose), math/rand is flagged
// unless waived with //uvm:rand-ok (workloads must use the seeded
// sim.RNG), and iterating a Go map — whose order is randomised per run —
// is flagged unless waived with //uvm:maporder-ok, because map order
// leaking into I/O submission or report strings is exactly the class of
// nondeterminism the PR-5 Msync bug shipped.
var SimDetAnalyzer = &Analyzer{
	Name: "simdet",
	Doc:  "no wall clock, math/rand or map-iteration order in report-feeding packages",
	Run:  runSimDet,
}

// wallClockFuncs are the package-level time functions that read or
// schedule against the host's wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

func runSimDet(pass *Pass) error {
	if !pkgInSet(pass.Pkg.Path(), simdetPackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "rand-ok",
					"import of %s in a report-feeding package: use the seeded sim.RNG so runs stay reproducible", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := wallClockCall(pass.TypesInfo, n); ok {
					pass.Reportf(n.Pos(), "wallclock",
						"time.%s reads the wall clock in a report-feeding package: use the sim clock (sim.Clock.Now/Since)", name)
				}
			case *ast.RangeStmt:
				if isMapType(pass.TypesInfo.TypeOf(n.X)) {
					pass.Reportf(n.Pos(), "maporder-ok",
						"range over a map in a report-feeding package: iteration order is randomised per run — iterate a sorted snapshot instead")
				}
			}
			return true
		})
	}
	return nil
}

// wallClockCall reports whether call invokes one of the std time
// package's wall-clock functions.
func wallClockCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if info.Selections[sel] != nil {
		return "", false // a method: sim.Clock.Now is fine
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return "", false
	}
	if !wallClockFuncs[fn.Name()] {
		return "", false
	}
	return fn.Name(), true
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
