// Package uvm is the completioncallback fixture: an annotated
// completion entry point whose callees acquire a forbidden-level lock
// and wait on a condvar, plus a waived acquisition the mutation test
// un-waives.
package uvm

import "sync"

type uobject struct {
	//uvm:lock object
	mu sync.Mutex
}

type flight struct {
	//uvm:lock flight
	mu sync.Mutex

	o *uobject
}

// runDone is the I/O completion callback for a writeback flight.
//
//uvm:completion
func (f *flight) runDone() {
	f.mu.Lock()
	f.finish()
	f.mu.Unlock()
}

// finish is only called from runDone, so it inherits the completion
// restriction transitively.
func (f *flight) finish() {
	f.o.mu.Lock() // want `reachable from completion callback flight\.runDone`
	f.o.mu.Unlock()
}

type waiter struct {
	//uvm:lock wbcond
	mu sync.Mutex
	cv *sync.Cond
}

// condDone blocks on a condvar from a completion context.
//
//uvm:completion
func (w *waiter) condDone() {
	w.cv.Wait() // want `must never wait on a condvar`
}

// waivedDone documents a justified exception; the mutation test strips
// the waiver and expects the diagnostic back.
//
//uvm:completion
func (f *flight) waivedDone() {
	//uvm:completion-ok fixture: the object is quiescent once its last flight completes
	f.o.mu.Lock()
	f.o.mu.Unlock()
}
