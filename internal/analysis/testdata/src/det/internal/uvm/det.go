// Package uvm is the simdet fixture: wall-clock reads and map-order
// iteration in a report-feeding package, with waived variants the
// mutation test un-waives.
package uvm

import "time"

// wall reads the host clock where the sim clock is required.
func wall() time.Duration {
	t0 := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

// waivedWall measures host time on purpose and says so.
func waivedWall() time.Time {
	//uvm:wallclock fixture: real elapsed time is the metric here
	return time.Now()
}

// mapRange lets Go's randomised map order leak into its result order.
func mapRange(m map[int]int) []int {
	var out []int
	for k := range m { // want `range over a map in a report-feeding package`
		out = append(out, k)
	}
	return out
}

// waivedRange is order-independent and says so; the mutation test
// strips the waiver and expects the diagnostic back.
func waivedRange(m map[int]int) int {
	n := 0
	//uvm:maporder-ok fixture: summing is order-independent
	for k := range m {
		n += k
	}
	return n
}
