package uvm

import "math/rand" // want `import of math/rand in a report-feeding package`

// roll draws from the global, wall-seeded source instead of sim.RNG.
func roll() int { return rand.Intn(6) }
