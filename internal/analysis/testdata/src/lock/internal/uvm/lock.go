// Package uvm is the lockorder fixture: a small declared hierarchy with
// an in-order path, an inversion, a missing annotation, a TryLock
// fallback that blocks on a peer, and a waived site the mutation test
// un-waives.
package uvm

import "sync"

type vmMap struct {
	//uvm:lock map
	mu sync.Mutex
}

type uobject struct {
	//uvm:lock object
	mu sync.Mutex
}

type bare struct {
	mu sync.Mutex // want `mutex field bare\.mu has no //uvm:lock level annotation`
}

// inOrder acquires map then object: down the hierarchy, fine.
func inOrder(m *vmMap, o *uobject) {
	m.mu.Lock()
	o.mu.Lock()
	o.mu.Unlock()
	m.mu.Unlock()
}

// inverted acquires the map lock while holding an object lock: up the
// declared hierarchy.
func inverted(m *vmMap, o *uobject) {
	o.mu.Lock()
	m.mu.Lock() // want `acquiring m\.mu\(map\) while holding o\.mu\(object\) goes up the declared hierarchy`
	m.mu.Unlock()
	o.mu.Unlock()
}

// tryFallback blocks on a same-level peer inside the failed-TryLock
// branch — the deadlock the TryLock was there to avoid.
func tryFallback(a, b *uobject) {
	if !a.mu.TryLock() {
		b.mu.Lock() // want `blocking Lock of b\.mu\(object\) inside the failed-TryLock branch of a\.mu\(object\)`
		b.mu.Unlock()
		return
	}
	a.mu.Unlock()
}

// waived is the same inversion with a recorded justification; the
// mutation test strips the waiver and expects the diagnostic back.
func waived(m *vmMap, o *uobject) {
	o.mu.Lock()
	//uvm:lockorder-ok fixture: boot-time only, no concurrent map users yet
	m.mu.Lock()
	m.mu.Unlock()
	o.mu.Unlock()
}
