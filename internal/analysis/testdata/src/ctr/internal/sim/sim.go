// Package sim is a minimal stand-in for the real sim package: just
// enough surface for the counterhandle fixture to type-check.
package sim

// Stats mimics the string-keyed counter registry.
type Stats struct{}

// Inc bumps the named counter by one.
func (s *Stats) Inc(name string) {}

// Add bumps the named counter by delta.
func (s *Stats) Add(name string, delta int64) {}

// Counter resolves a cached handle for the named counter.
func (s *Stats) Counter(name string) Counter { return Counter{} }

// Counter is a pre-resolved handle; its methods skip the name lookup.
type Counter struct{}

// Inc bumps the counter by one.
func (c Counter) Inc() {}

// Add bumps the counter by delta.
func (c Counter) Add(delta int64) {}
