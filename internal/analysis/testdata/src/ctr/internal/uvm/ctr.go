// Package uvm is the counterhandle fixture: string-keyed Stats traffic
// inside loops versus the cached-handle idiom, plus a waived cold loop
// the mutation test un-waives.
package uvm

import "ctr/internal/sim"

type system struct {
	stats *sim.Stats
	ops   sim.Counter
}

// hotLoop pays the string lookup every iteration; the cached handle
// beside it is the idiom.
func (s *system) hotLoop(n int) {
	for i := 0; i < n; i++ {
		s.stats.Inc("uvm.fixture.ops") // want `string-keyed sim\.Stats\.Inc inside a loop`
		s.ops.Inc()
	}
}

// resolveInLoop re-resolves a handle per iteration, which is the same
// lookup in disguise.
func (s *system) resolveInLoop(n int) {
	for i := 0; i < n; i++ {
		s.stats.Counter("uvm.fixture.ops").Add(2) // want `string-keyed sim\.Stats\.Counter inside a loop`
	}
}

// waivedLoop is a cold path with a recorded justification; the mutation
// test strips the waiver and expects the diagnostic back.
func (s *system) waivedLoop(n int) {
	for i := 0; i < n; i++ {
		//uvm:counter-ok fixture: boot-time loop, runs once
		s.stats.Add("uvm.fixture.cold", 1)
	}
}

// outside is not in a loop: a one-off lookup is fine.
func (s *system) outside() {
	s.stats.Inc("uvm.fixture.boot")
}
