package analysis

import (
	"go/ast"
	"sort"
)

// CompletionAnalyzer enforces the completion-callback locking rules
// documented atop internal/uvm/system.go: a function annotated
// //uvm:completion runs on an I/O goroutine holding (at most) the
// anon/object locks handed over with the in-flight cluster, so neither
// it nor anything it statically reaches may blockingly acquire a
// system, map, vnobj, object, amap or anon lock, and it must never
// block on a condition variable. Findings are waived with
// //uvm:completion-ok <reason>.
var CompletionAnalyzer = &Analyzer{
	Name: "completioncallback",
	Doc:  "completion callbacks must only take locks strictly below the anon level and never block on condvars",
	Run:  runCompletion,
}

func runCompletion(pass *Pass) error {
	if !pkgInSet(pass.Pkg.Path(), lockCorePackages) || len(pass.Dirs.Completions) == 0 {
		return nil
	}
	res := &resolver{info: pass.TypesInfo, pkg: pass.Pkg, dirs: pass.Dirs, facts: pass.Facts}

	// Same-package call graph over declared functions.
	decls := make(map[string]*ast.FuncDecl)
	callees := make(map[string][]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := funcDeclKey(fd)
			decls[key] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkgPath, ck, ok := res.calleeKey(call); ok && pkgPath == pass.Pkg.Path() {
					callees[key] = append(callees[key], ck)
				}
				return true
			})
		}
	}

	// Reachability from the annotated entry points, tracking one sample
	// path for the diagnostics.
	via := make(map[string]string) // reached key -> entry it is reached from
	var frontier []string
	entries := make([]string, 0, len(pass.Dirs.Completions))
	for key := range pass.Dirs.Completions {
		entries = append(entries, key)
	}
	sort.Strings(entries)
	for _, key := range entries {
		via[key] = key
		frontier = append(frontier, key)
	}
	for len(frontier) > 0 {
		key := frontier[0]
		frontier = frontier[1:]
		for _, ck := range callees[key] {
			if _, seen := via[ck]; !seen {
				via[ck] = via[key]
				frontier = append(frontier, ck)
			}
		}
	}

	for _, key := range sortedKeys(via) {
		fd, ok := decls[key]
		if !ok {
			continue
		}
		entry := via[key]
		// Closures defined inside a completion-reachable function are
		// scanned too: completion bodies routinely delegate to small
		// inline helpers.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if site, ok := res.lockCall(call); ok {
				switch {
				case site.blocking() && site.level != "" && completionForbidden[site.level]:
					pass.Reportf(call.Pos(), "completion-ok",
						"%s acquires %s(%s) but is reachable from completion callback %s: completions may only take locks below the anon level",
						key, site.expr, site.level, entry)
				case site.recvType == "Cond" && site.method == "Wait":
					pass.Reportf(call.Pos(), "completion-ok",
						"%s blocks on %s.Wait() but is reachable from completion callback %s: completions must never wait on a condvar",
						key, site.expr, entry)
				}
				return false
			}
			// Cross-package call: consult the callee's exported summary.
			pkgPath, ck, ok := res.calleeKey(call)
			if !ok || pkgPath == pass.Pkg.Path() {
				return true
			}
			pf := pass.Facts(pkgPath)
			if pf == nil {
				return true
			}
			ff, ok := pf.Funcs[ck]
			if !ok {
				return true
			}
			var bad []string
			for _, level := range ff.Acquires {
				if completionForbidden[level] {
					bad = append(bad, level)
				}
			}
			if len(bad) > 0 {
				pass.Reportf(call.Pos(), "completion-ok",
					"call to %s (acquires %s) in code reachable from completion callback %s: completions may only take locks below the anon level",
					ck, levelList(bad), entry)
			}
			if ff.Waits {
				pass.Reportf(call.Pos(), "completion-ok",
					"call to %s (may wait on a condvar) in code reachable from completion callback %s",
					ck, entry)
			}
			return true
		})
	}
	return nil
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
