package analysis

// Levels is the declared lock hierarchy, highest (outermost) first. It
// is the machine-readable form of the ordering documented atop
// internal/uvm/system.go — map -> object -> amap -> anon -> page
// identity -> leaf — with the leaf tier split into its documented
// sub-levels (pmap above pv bucket, magazine above queue shard, the
// async-writer head above its window bookkeeping, and so on).
//
// A blocking acquisition is legal only if its level sits strictly below
// every level already held; TryLock acquisitions are exempt from the
// check (they cannot contribute a blocking edge to a cycle) but the
// acquired lock still counts as held afterwards.
//
// docs/analysis.md lists these same names; scripts/check-docs.sh fails
// if the two sets drift apart.
var Levels = []string{
	"system",    // process tables, bsdvm's big kernel lock
	"shmreg",    // sysv.Registry.mu — held across segment attach/detach
	"shmseg",    // uvm shmSegment.mu — held across the target map lock
	"map",       // vmMap.mu — the per-address-space map lock
	"vnobj",     // System.vnObjMu — vnode<->object identity
	"object",    // uobject.mu
	"amap",      // amap.mu (including the hybrid amap's chunk state)
	"anon",      // anon.mu
	"flight",    // vnFlight.mu — held across finishPageout's page work
	"pageident", // phys.Page.mu — per-frame identity (owner/off)
	"wbcond",    // writeback condvar, batch and flight bookkeeping
	"daemon",    // the pagedaemon's condvar mutex
	"pmap",      // Pmap.mu — one address space's page table
	"pvbucket",  // MMU reverse-map bucket locks (strict leaves within pmap)
	"magazine",  // phys per-CPU free-page magazines
	"pageq",     // phys page-queue shards
	"swapreg",   // Swap.mu — device registry (AddDevice only)
	"swap",      // swap allocator shard locks
	"swapaio",   // swap-wide async-write window bookkeeping
	"vfs",       // FS.mu — vnode cache and file table
	"vfsaw",     // FS.awMu — filesystem async-writer creation
	"diskhead",  // disk.AsyncWriter.io — one transfer head per disk
	"diskaio",   // disk.AsyncWriter.mu — window admission/completion state
	"disk",      // Disk.mu — the device itself
	"faultplan", // disk.FaultPlan.mu — fault-rule schedule state
	"control",   // control.Plane.mu — the feedback control plane
	"leaf",      // terminal: nothing is ever acquired while held
}

// levelRank maps a level name to its position in Levels (0 = outermost).
var levelRank = func() map[string]int {
	m := make(map[string]int, len(Levels))
	for i, l := range Levels {
		m[l] = i
	}
	return m
}()

// KnownLevel reports whether name is a declared lock level.
func KnownLevel(name string) bool {
	_, ok := levelRank[name]
	return ok
}

// rankOf returns the hierarchy position of level (smaller = outermost).
func rankOf(level string) int { return levelRank[level] }

// completionForbidden are the levels a completion callback may never
// blockingly acquire: it runs holding (at most) anon/object locks handed
// over with the I/O, so anything at or above anon would invert the
// hierarchy against a concurrent fault.
var completionForbidden = map[string]bool{
	"system": true,
	"shmreg": true,
	"shmseg": true,
	"map":    true,
	"vnobj":  true,
	"object": true,
	"amap":   true,
	"anon":   true,
}
