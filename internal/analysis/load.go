package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The loader type-checks packages with nothing but the standard
// library: module packages are parsed and checked from source (the
// analyzers need syntax for the //uvm: directives), their standard
// library imports are satisfied from the build cache's export data via
// `go list -export` and the stdlib gc importer.

// LoadResult is a set of type-checked module packages in dependency
// order, pre-wired so that RunSuite facts computed for earlier packages
// are visible to later ones through Target.Facts.
type LoadResult struct {
	Fset    *token.FileSet
	Targets []*Target
	// Facts is filled by the caller as it runs the suite over Targets
	// in order; each Target.Facts reads it.
	Facts map[string]*PackageFacts
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Imports    []string
}

// LoadPackages loads patterns (e.g. "./...") from dir.
func LoadPackages(dir string, patterns []string) (*LoadResult, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,GoFiles,Imports"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	stdExports := make(map[string]string)
	var mod []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		if p.Standard {
			if p.Export != "" {
				stdExports[p.ImportPath] = p.Export
			}
			continue
		}
		pkg := p
		mod = append(mod, &pkg)
	}

	fset := token.NewFileSet()
	res := &LoadResult{Fset: fset, Facts: make(map[string]*PackageFacts)}
	checked := make(map[string]*types.Package)
	std := stdImporter(fset, stdExports)

	byPath := make(map[string]*listedPackage, len(mod))
	for _, p := range mod {
		byPath[p.ImportPath] = p
	}
	order, err := topoOrder(mod, byPath)
	if err != nil {
		return nil, err
	}

	for _, p := range order {
		var files []*ast.File
		for _, name := range p.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(p.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
			}
			files = append(files, f)
		}
		pkg, info, err := check(fset, p.ImportPath, files, &mixedImporter{std: std, mod: checked})
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		checked[p.ImportPath] = pkg
		facts := res.Facts
		res.Targets = append(res.Targets, &Target{
			Path:      p.ImportPath,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Facts:     func(path string) *PackageFacts { return facts[path] },
		})
	}
	return res, nil
}

// LoadFixture loads fixture packages from srcRoot/src/<importpath>,
// resolving fixture-to-fixture imports under the same root and
// everything else from the standard library. overlay, if non-nil, may
// rewrite each file's source before parsing (the mutation-verification
// tests strip waiver directives with it).
func LoadFixture(srcRoot string, pkgPaths []string, overlay func(filename string, src []byte) []byte) (*LoadResult, error) {
	fset := token.NewFileSet()
	res := &LoadResult{Fset: fset, Facts: make(map[string]*PackageFacts)}

	// Parse the requested fixtures plus any fixture packages they
	// import, then topologically order them.
	parsed := make(map[string][]*ast.File)
	var stdNeeded []string
	var parsePkg func(path string) error
	parsePkg = func(path string) error {
		if _, ok := parsed[path]; ok {
			return nil
		}
		dir := filepath.Join(srcRoot, "src", filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("fixture %s: %v", path, err)
		}
		var files []*ast.File
		var names []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			full := filepath.Join(dir, name)
			src, err := os.ReadFile(full)
			if err != nil {
				return err
			}
			if overlay != nil {
				src = overlay(full, src)
			}
			f, err := parser.ParseFile(fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return fmt.Errorf("fixture %s: %v", path, err)
			}
			files = append(files, f)
		}
		parsed[path] = files
		for _, f := range files {
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if fixtureDir := filepath.Join(srcRoot, "src", filepath.FromSlash(ipath)); dirExists(fixtureDir) {
					if err := parsePkg(ipath); err != nil {
						return err
					}
				} else {
					stdNeeded = append(stdNeeded, ipath)
				}
			}
		}
		return nil
	}
	for _, path := range pkgPaths {
		if err := parsePkg(path); err != nil {
			return nil, err
		}
	}

	stdExports, err := stdExportData(stdNeeded)
	if err != nil {
		return nil, err
	}
	std := stdImporter(fset, stdExports)
	checked := make(map[string]*types.Package)

	// Topo order over the fixture-to-fixture import edges.
	var order []string
	visited := make(map[string]int) // 0 new, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch visited[path] {
		case 1:
			return fmt.Errorf("fixture import cycle at %s", path)
		case 2:
			return nil
		}
		visited[path] = 1
		for _, f := range parsed[path] {
			for _, imp := range f.Imports {
				ipath, _ := strconv.Unquote(imp.Path.Value)
				if _, ok := parsed[ipath]; ok {
					if err := visit(ipath); err != nil {
						return err
					}
				}
			}
		}
		visited[path] = 2
		order = append(order, path)
		return nil
	}
	var all []string
	for path := range parsed {
		all = append(all, path)
	}
	sort.Strings(all)
	for _, path := range all {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	for _, path := range order {
		files := parsed[path]
		pkg, info, err := check(fset, path, files, &mixedImporter{std: std, mod: checked})
		if err != nil {
			return nil, fmt.Errorf("fixture %s: %v", path, err)
		}
		checked[path] = pkg
		facts := res.Facts
		res.Targets = append(res.Targets, &Target{
			Path:      path,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Facts:     func(p string) *PackageFacts { return facts[p] },
		})
	}
	return res, nil
}

// stdExportData resolves export-data files for the given stdlib import
// paths (and their dependencies) via one `go list -export` run.
func stdExportData(paths []string) (map[string]string, error) {
	exports := make(map[string]string)
	if len(paths) == 0 {
		return exports, nil
	}
	sort.Strings(paths)
	paths = dedupeStrings(paths)
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export,Standard"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export %v: %v\n%s", paths, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewCheckInfo returns a types.Info with the maps the analyzers need.
func NewCheckInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := NewCheckInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// stdImporter builds a gc-export-data importer over the given
// path->file map.
func stdImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// mixedImporter serves module packages from the already-checked set and
// everything else from the stdlib export-data importer.
type mixedImporter struct {
	std types.Importer
	mod map[string]*types.Package
}

// Import resolves module-local packages from the checked set and
// everything else from the stdlib export data.
func (m *mixedImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.mod[path]; ok {
		return pkg, nil
	}
	return m.std.Import(path)
}

func topoOrder(pkgs []*listedPackage, byPath map[string]*listedPackage) ([]*listedPackage, error) {
	var order []*listedPackage
	state := make(map[string]int)
	var visit func(p *listedPackage) error
	visit = func(p *listedPackage) error {
		switch state[p.ImportPath] {
		case 1:
			return fmt.Errorf("import cycle at %s", p.ImportPath)
		case 2:
			return nil
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
		return nil
	}
	sorted := append([]*listedPackage(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func dirExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

func dedupeStrings(s []string) []string {
	out := s[:0]
	var last string
	for i, v := range s {
		if i == 0 || v != last {
			out = append(out, v)
		}
		last = v
	}
	return out
}
