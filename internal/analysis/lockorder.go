package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockOrderAnalyzer enforces the declared lock hierarchy (Levels): in
// the concurrency-core packages every sync.Mutex / sync.RWMutex struct
// field must carry a //uvm:lock annotation, and every blocking Lock /
// RLock must acquire a level strictly below everything already held.
// TryLock acquisitions are exempt from the order check (they cannot
// contribute a blocking edge to a deadlock cycle) but count as held
// afterwards; a blocking Lock on a same-level *peer* inside the failure
// branch of a TryLock is flagged as protocol misuse. Findings are
// waived with //uvm:lockorder-ok <reason>.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "check blocking lock acquisitions against the declared lock hierarchy",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) error {
	// Malformed //uvm: annotations surface here regardless of package.
	for _, bad := range pass.Dirs.Bad {
		*pass.diags = append(*pass.diags, Diagnostic{
			Analyzer: pass.Analyzer.Name,
			Pos:      bad.Pos,
			Message:  bad.Message,
		})
	}

	core := pkgInSet(pass.Pkg.Path(), lockCorePackages)
	if core {
		checkAnnotationCoverage(pass)
	}

	res := &resolver{info: pass.TypesInfo, pkg: pass.Pkg, dirs: pass.Dirs, facts: pass.Facts}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &lockWalker{pass: pass, res: res}
			w.block(fd.Body)
			// Closures get their own walk with an empty held set: they
			// run later (goroutines, callbacks), not under the locks
			// visible at their creation site.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					lw := &lockWalker{pass: pass, res: res}
					lw.block(lit.Body)
					return false
				}
				return true
			})
		}
	}
	return nil
}

// checkAnnotationCoverage requires a //uvm:lock level on every mutex
// struct field declared by a named type of a core package.
func checkAnnotationCoverage(pass *Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if !isMutexType(field.Type()) {
				continue
			}
			key := name + "." + field.Name()
			if _, ok := pass.Dirs.FieldLevels[key]; ok {
				continue
			}
			pass.Reportf(field.Pos(), "lockorder-ok",
				"mutex field %s has no //uvm:lock level annotation", key)
		}
	}
}

func isMutexType(t types.Type) bool {
	named, ok := derefNamed(t)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	n := named.Obj().Name()
	return n == "Mutex" || n == "RWMutex"
}

// heldLock is one lock the walker believes is held at the current
// program point.
type heldLock struct {
	level string
	rank  int
	expr  string
}

// lockWalker tracks the acquired-while-held set through one function
// body, in source order, branch-sensitively:
//
//   - branches are walked with copies of the held set; after the
//     branch, a lock released in any non-terminating branch is treated
//     as released (under-approximating "held" keeps false positives
//     down — the declared hierarchy is checked where locks are
//     *visibly* held);
//   - loop bodies are walked twice so a lock carried across an
//     iteration is checked against the next iteration's acquisitions
//     (duplicates are deduped);
//   - `if !x.TryLock() { ... }` is recognised as the counted-lock
//     idiom: the body runs without x held, a blocking Lock of a
//     same-level peer inside it is flagged, and x counts as held after
//     the statement whichever way the branch went.
type lockWalker struct {
	pass *Pass
	res  *resolver
	held []heldLock
}

func (w *lockWalker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
		// Nothing after a return is reachable on this path; clearing the
		// held set keeps locks handed out across a return (the fault
		// path's release closures) from polluting the second loop-body
		// pass.
		w.held = nil
	case *ast.IfStmt:
		w.ifStmt(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		// Twice: catch locks carried into the next iteration.
		w.block(s.Body)
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.block(s.Body)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.block(s.Body)
		w.block(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.branches(caseBodies(s.Body))
	case *ast.TypeSwitchStmt:
		w.branches(caseBodies(s.Body))
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		w.branches(bodies)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.GoStmt:
		// The goroutine starts with its own empty held set; its body (a
		// FuncLit) is walked separately by runLockOrder.
	case *ast.DeferStmt:
		// defer x.Unlock() keeps x held to the end of the function —
		// exactly what not touching the held set models. Other deferred
		// calls are ignored.
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

// branches walks each body with a copy of the held set and afterwards
// treats a lock released in any non-terminating branch as released.
func (w *lockWalker) branches(bodies [][]ast.Stmt) {
	base := cloneHeld(w.held)
	after := cloneHeld(base)
	for _, body := range bodies {
		w.held = cloneHeld(base)
		for _, s := range body {
			w.stmt(s)
		}
		if !terminates(body) {
			after = intersectHeld(after, w.held)
		}
	}
	w.held = after
}

func (w *lockWalker) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		w.stmt(s.Init)
	}

	// if !x.TryLock() { ... }: counted-lock / TryLock-fallback idiom.
	if site := w.notTryLockCond(s.Cond); site != nil {
		w.checkTryFallback(site, s.Body)
		base := cloneHeld(w.held)
		w.block(s.Body)
		w.held = base
		if s.Else != nil {
			w.stmt(s.Else)
			w.held = base
		}
		// Whichever way the branch went, x is held afterwards.
		w.acquire(site, true)
		return
	}

	// if x.TryLock() { ... held inside ... } else { ... not held ... }
	if site := w.tryLockCond(s.Cond); site != nil {
		base := cloneHeld(w.held)
		w.acquire(site, true)
		w.block(s.Body)
		held := w.held
		w.held = cloneHeld(base)
		if s.Else != nil {
			w.stmt(s.Else)
		}
		elseHeld := w.held
		// Fall-through: if the failure path terminates, the lock is
		// still held; otherwise be conservative and drop it.
		if s.Else == nil && terminates(s.Body.List) {
			w.held = base
		} else if terminates(s.Body.List) {
			w.held = elseHeld
		} else {
			w.held = intersectHeld(held, elseHeld)
		}
		return
	}

	w.expr(s.Cond)
	var bodies [][]ast.Stmt
	bodies = append(bodies, s.Body.List)
	if s.Else != nil {
		bodies = append(bodies, []ast.Stmt{s.Else})
	} else {
		bodies = append(bodies, nil)
	}
	w.branches(bodies)
}

// tryLockCond matches `x.TryLock()` (possibly parenthesised).
func (w *lockWalker) tryLockCond(cond ast.Expr) *lockSite {
	cond = ast.Unparen(cond)
	call, ok := cond.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if site, ok := w.res.lockCall(call); ok && site.try() {
		return site
	}
	return nil
}

// notTryLockCond matches `!x.TryLock()`.
func (w *lockWalker) notTryLockCond(cond ast.Expr) *lockSite {
	cond = ast.Unparen(cond)
	un, ok := cond.(*ast.UnaryExpr)
	if !ok || un.Op.String() != "!" {
		return nil
	}
	return w.tryLockCond(un.X)
}

// checkTryFallback flags a blocking Lock of a *different* lock at the
// same level inside the failure branch of a TryLock: the fallback may
// retry the lock it just failed to get, but blocking on a peer while
// the protocol is mid-backoff re-creates the deadlock TryLock exists to
// avoid.
func (w *lockWalker) checkTryFallback(tried *lockSite, body *ast.BlockStmt) {
	if tried.level == "" {
		return
	}
	inspectNoFuncLit(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		site, ok := w.res.lockCall(call)
		if !ok || !site.blocking() || site.level != tried.level {
			return
		}
		if site.expr == tried.expr {
			return // retrying the same lock blockingly is the idiom
		}
		w.pass.Reportf(call.Pos(), "lockorder-ok",
			"blocking %s of %s(%s) inside the failed-TryLock branch of %s(%s): the fallback must not block on a same-level peer",
			site.method, site.expr, site.level, tried.expr, tried.level)
	})
}

// expr walks e in evaluation-ish order handling lock calls, summary
// checks and nothing inside function literals.
func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if site, ok := w.res.lockCall(call); ok {
			switch {
			case site.blocking():
				w.checkAcquire(site, call)
				w.acquire(site, false)
			case site.release():
				w.release(site)
			}
			// Bare TryLock in expression position (result assigned or
			// discarded): the structured `if` forms are handled in
			// ifStmt; here the held outcome is unknowable, so skip.
			return false
		}
		w.checkCallSummary(call)
		return true
	})
}

// checkAcquire flags a blocking acquisition at or above a held level.
func (w *lockWalker) checkAcquire(site *lockSite, call *ast.CallExpr) {
	if site.level == "" {
		return
	}
	rank := rankOf(site.level)
	for _, h := range w.held {
		if h.expr == site.expr && h.level == site.level {
			continue // upgrade/downgrade patterns on the same lock
		}
		if rank <= h.rank {
			w.pass.Reportf(call.Pos(), "lockorder-ok",
				"acquiring %s(%s) while holding %s(%s) goes %s the declared hierarchy",
				site.expr, site.level, h.expr, h.level, upOrSideways(rank, h.rank))
			return
		}
	}
}

// checkCallSummary flags calls whose transitive lock summary acquires
// at or above a held level.
func (w *lockWalker) checkCallSummary(call *ast.CallExpr) {
	if len(w.held) == 0 {
		return
	}
	pkgPath, key, ok := w.res.calleeKey(call)
	if !ok {
		return
	}
	var ff FuncFact
	if pkgPath == w.pass.Pkg.Path() {
		f, ok := w.pass.OwnFacts.Funcs[key]
		if !ok {
			return
		}
		ff = f
	} else {
		pf := w.pass.Facts(pkgPath)
		if pf == nil {
			return
		}
		f, ok := pf.Funcs[key]
		if !ok {
			return
		}
		ff = f
	}
	for _, level := range ff.Acquires {
		rank := rankOf(level)
		for _, h := range w.held {
			if rank <= h.rank {
				w.pass.Reportf(call.Pos(), "lockorder-ok",
					"call to %s may blockingly acquire a %s lock while holding %s(%s), %s the declared hierarchy",
					key, level, h.expr, h.level, upOrSideways(rank, h.rank))
				return
			}
		}
	}
}

func (w *lockWalker) acquire(site *lockSite, try bool) {
	if site.level == "" {
		return
	}
	for _, h := range w.held {
		if h.expr == site.expr && h.level == site.level {
			return
		}
	}
	w.held = append(w.held, heldLock{level: site.level, rank: rankOf(site.level), expr: site.expr})
	_ = try
}

func (w *lockWalker) release(site *lockSite) {
	for i, h := range w.held {
		if h.expr == site.expr {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

func cloneHeld(h []heldLock) []heldLock {
	return append([]heldLock(nil), h...)
}

// intersectHeld keeps the locks present in both sets.
func intersectHeld(a, b []heldLock) []heldLock {
	var out []heldLock
	for _, x := range a {
		for _, y := range b {
			if x.expr == y.expr && x.level == y.level {
				out = append(out, x)
				break
			}
		}
	}
	return out
}

// terminates reports whether a statement list always transfers control
// out (return, panic, continue, break, goto, os.Exit-style is not
// modelled).
func terminates(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	switch last := body[len(body)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var bodies [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			bodies = append(bodies, cc.Body)
		}
	}
	return bodies
}

func upOrSideways(acquired, held int) string {
	if acquired == held {
		return "sideways in"
	}
	return "up"
}

// levelList renders levels for messages.
func levelList(levels []string) string { return strings.Join(levels, ", ") }
