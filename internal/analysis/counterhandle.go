package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CounterHandleAnalyzer flags string-keyed sim.Stats counter traffic
// (Add, Inc, Counter) inside loops in the hot-path packages: every such
// call re-resolves the counter name through the Stats sync.Map, and the
// established idiom — a sim.Counter handle cached at subsystem
// construction — exists precisely so per-operation paths do not pay
// that lookup. Findings are waived with //uvm:counter-ok <reason>.
var CounterHandleAnalyzer = &Analyzer{
	Name: "counterhandle",
	Doc:  "hot loops must use cached sim.Counter handles, not string-keyed Stats lookups",
	Run:  runCounterHandle,
}

func runCounterHandle(pass *Pass) error {
	if !pkgInSet(pass.Pkg.Path(), counterPackages) {
		return nil
	}
	for _, f := range pass.Files {
		var loopDepth int
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Init != nil {
					ast.Inspect(n.Init, visit)
				}
				if n.Cond != nil {
					ast.Inspect(n.Cond, visit)
				}
				loopDepth++
				ast.Inspect(n.Body, visit)
				if n.Post != nil {
					ast.Inspect(n.Post, visit)
				}
				loopDepth--
				return false
			case *ast.RangeStmt:
				ast.Inspect(n.X, visit)
				loopDepth++
				ast.Inspect(n.Body, visit)
				loopDepth--
				return false
			case *ast.CallExpr:
				if loopDepth == 0 {
					return true
				}
				if method, ok := statsCall(pass.TypesInfo, n); ok {
					pass.Reportf(n.Pos(), "counter-ok",
						"string-keyed sim.Stats.%s inside a loop: cache a sim.Counter handle at construction instead of re-resolving the name per iteration", method)
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	return nil
}

// statsCall reports whether call is a string-keyed method on
// uvm/internal/sim.Stats.
func statsCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/sim") {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	named, ok := derefNamed(recv.Type())
	if !ok || named.Obj().Name() != "Stats" {
		return "", false
	}
	switch fn.Name() {
	case "Add", "Inc", "Counter":
		return fn.Name(), true
	}
	return "", false
}
