package pmap

import (
	"testing"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
)

type fixture struct {
	mmu *MMU
	mem *phys.Mem
}

func newFixture(npages int) *fixture {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	stats := sim.NewStats()
	return &fixture{
		mmu: NewMMU(clock, costs, stats),
		mem: phys.NewMem(clock, costs, stats, npages),
	}
}

func (f *fixture) page(t *testing.T) *phys.Page {
	t.Helper()
	p, err := f.mem.Alloc(nil, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const va0 = param.VAddr(0x1000)

func TestEnterExtract(t *testing.T) {
	f := newFixture(4)
	pm := f.mmu.NewPmap("p1")
	pg := f.page(t)
	pm.Enter(va0, pg, param.ProtRW, false)

	pte, ok := pm.Extract(va0)
	if !ok || pte.Page != pg || pte.Prot != param.ProtRW || pte.Wired {
		t.Fatalf("Extract = %+v, %v", pte, ok)
	}
	// Sub-page address resolves to the same translation.
	if pte2, ok := pm.Extract(va0 + 123); !ok || pte2.Page != pg {
		t.Fatal("unaligned extract failed")
	}
	if _, ok := pm.Extract(va0 + param.PageSize); ok {
		t.Fatal("phantom translation")
	}
	if pm.ResidentCount() != 1 {
		t.Fatalf("resident = %d", pm.ResidentCount())
	}
	if f.mmu.PageMappings(pg) != 1 {
		t.Fatalf("pv count = %d", f.mmu.PageMappings(pg))
	}
}

func TestEnterUnalignedPanics(t *testing.T) {
	f := newFixture(2)
	pm := f.mmu.NewPmap("p")
	pg := f.page(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	pm.Enter(va0+1, pg, param.ProtRead, false)
}

func TestReplaceTranslation(t *testing.T) {
	f := newFixture(4)
	pm := f.mmu.NewPmap("p")
	a, b := f.page(t), f.page(t)
	pm.Enter(va0, a, param.ProtRead, false)
	pm.Enter(va0, b, param.ProtRW, false)
	pte, _ := pm.Extract(va0)
	if pte.Page != b || pte.Prot != param.ProtRW {
		t.Fatalf("replacement failed: %+v", pte)
	}
	if f.mmu.PageMappings(a) != 0 {
		t.Fatal("stale pv entry on replaced page")
	}
	if f.mmu.PageMappings(b) != 1 {
		t.Fatal("missing pv entry on new page")
	}
	if pm.ResidentCount() != 1 {
		t.Fatalf("resident = %d after replace", pm.ResidentCount())
	}
}

func TestRemoveRange(t *testing.T) {
	f := newFixture(8)
	pm := f.mmu.NewPmap("p")
	var pages []*phys.Page
	for i := 0; i < 4; i++ {
		pg := f.page(t)
		pm.Enter(va0+param.VAddr(i*param.PageSize), pg, param.ProtRead, false)
		pages = append(pages, pg)
	}
	// Remove the middle two.
	pm.Remove(va0+param.PageSize, va0+3*param.PageSize)
	if pm.ResidentCount() != 2 {
		t.Fatalf("resident = %d", pm.ResidentCount())
	}
	if _, ok := pm.Lookup(va0); !ok {
		t.Fatal("first page lost")
	}
	if _, ok := pm.Lookup(va0 + param.PageSize); ok {
		t.Fatal("middle page survived")
	}
	if f.mmu.PageMappings(pages[1]) != 0 || f.mmu.PageMappings(pages[2]) != 0 {
		t.Fatal("pv entries survived removal")
	}
}

func TestProtectNarrows(t *testing.T) {
	f := newFixture(2)
	pm := f.mmu.NewPmap("p")
	pg := f.page(t)
	pm.Enter(va0, pg, param.ProtRW, false)
	pm.Protect(va0, va0+param.PageSize, param.ProtRead)
	pte, _ := pm.Lookup(va0)
	if pte.Prot != param.ProtRead {
		t.Fatalf("prot = %v, want r--", pte.Prot)
	}
	// Protect never widens: narrowing to RW from R keeps R.
	pm.Protect(va0, va0+param.PageSize, param.ProtRW)
	pte, _ = pm.Lookup(va0)
	if pte.Prot != param.ProtRead {
		t.Fatalf("protect widened: %v", pte.Prot)
	}
	// ProtNone removes.
	pm.Protect(va0, va0+param.PageSize, param.ProtNone)
	if _, ok := pm.Lookup(va0); ok {
		t.Fatal("ProtNone did not remove")
	}
}

func TestPageProtectAllSpaces(t *testing.T) {
	// The COW primitive: one physical page mapped by two pmaps gets
	// write-protected everywhere in one call.
	f := newFixture(2)
	p1 := f.mmu.NewPmap("parent")
	p2 := f.mmu.NewPmap("child")
	pg := f.page(t)
	p1.Enter(va0, pg, param.ProtRW, false)
	p2.Enter(va0+0x5000, pg, param.ProtRW, false)

	f.mmu.PageProtect(pg, param.ProtRead)
	a, _ := p1.Lookup(va0)
	b, _ := p2.Lookup(va0 + 0x5000)
	if a.Prot != param.ProtRead || b.Prot != param.ProtRead {
		t.Fatalf("page protect missed a space: %v %v", a.Prot, b.Prot)
	}

	f.mmu.PageProtect(pg, param.ProtNone)
	if p1.ResidentCount() != 0 || p2.ResidentCount() != 0 {
		t.Fatal("ProtNone left mappings behind")
	}
	if f.mmu.PageMappings(pg) != 0 {
		t.Fatal("pv list not emptied")
	}
}

func TestWiring(t *testing.T) {
	f := newFixture(2)
	pm := f.mmu.NewPmap("p")
	pg := f.page(t)
	pm.Enter(va0, pg, param.ProtRW, true)
	if pm.WiredCount() != 1 {
		t.Fatalf("wired = %d", pm.WiredCount())
	}
	pm.ChangeWiring(va0, false)
	if pm.WiredCount() != 0 {
		t.Fatalf("unwire failed: %d", pm.WiredCount())
	}
	pm.ChangeWiring(va0, true)
	pm.ChangeWiring(va0, true) // idempotent
	if pm.WiredCount() != 1 {
		t.Fatalf("double wire counted twice: %d", pm.WiredCount())
	}
	// Replacing a wired translation with an unwired one drops the count.
	pm.Enter(va0, pg, param.ProtRW, false)
	if pm.WiredCount() != 0 {
		t.Fatalf("replace did not unwire: %d", pm.WiredCount())
	}
}

func TestPTPageAccounting(t *testing.T) {
	f := newFixture(8)
	pm := f.mmu.NewPmap("p")
	allocs, frees := 0, 0
	pm.OnPTAlloc = func() { allocs++ }
	pm.OnPTFree = func() { frees++ }

	// Two pages in the same 4MB region: one PT page.
	a, b := f.page(t), f.page(t)
	pm.Enter(0x1000, a, param.ProtRead, false)
	pm.Enter(0x2000, b, param.ProtRead, false)
	if pm.PTPages() != 1 || allocs != 1 {
		t.Fatalf("PT pages = %d, allocs = %d", pm.PTPages(), allocs)
	}
	// A page in a different region: second PT page.
	c := f.page(t)
	pm.Enter(0x40000000, c, param.ProtRead, false)
	if pm.PTPages() != 2 || allocs != 2 {
		t.Fatalf("PT pages = %d, allocs = %d", pm.PTPages(), allocs)
	}
	// Removing one of two pages in the region keeps the PT page.
	pm.Remove(0x1000, 0x2000)
	if pm.PTPages() != 2 || frees != 0 {
		t.Fatalf("PT page freed early: %d frees=%d", pm.PTPages(), frees)
	}
	pm.Remove(0x2000, 0x3000)
	if pm.PTPages() != 1 || frees != 1 {
		t.Fatalf("PT page not freed: %d frees=%d", pm.PTPages(), frees)
	}
}

func TestRemoveAll(t *testing.T) {
	f := newFixture(8)
	pm := f.mmu.NewPmap("p")
	for i := 0; i < 5; i++ {
		pm.Enter(va0+param.VAddr(i)*param.PageSize, f.page(t), param.ProtRW, i == 0)
	}
	pm.RemoveAll()
	if pm.ResidentCount() != 0 || pm.WiredCount() != 0 || pm.PTPages() != 0 {
		t.Fatalf("teardown incomplete: res=%d wired=%d pt=%d",
			pm.ResidentCount(), pm.WiredCount(), pm.PTPages())
	}
}

func TestSharedPageAcrossSpaces(t *testing.T) {
	f := newFixture(2)
	p1 := f.mmu.NewPmap("a")
	p2 := f.mmu.NewPmap("b")
	pg := f.page(t)
	p1.Enter(va0, pg, param.ProtRW, false)
	p2.Enter(va0, pg, param.ProtRead, false)
	if f.mmu.PageMappings(pg) != 2 {
		t.Fatalf("pv count = %d", f.mmu.PageMappings(pg))
	}
	p1.Remove(va0, va0+param.PageSize)
	if f.mmu.PageMappings(pg) != 1 {
		t.Fatalf("pv count after one removal = %d", f.mmu.PageMappings(pg))
	}
	pte, ok := p2.Lookup(va0)
	if !ok || pte.Page != pg {
		t.Fatal("other space's mapping disturbed")
	}
}

func TestPageReferenced(t *testing.T) {
	f := newFixture(2)
	pg := f.page(t)
	pg.Referenced.Store(true)
	if !f.mmu.PageReferenced(pg) {
		t.Fatal("reference bit not seen")
	}
	if f.mmu.PageReferenced(pg) {
		t.Fatal("reference bit not cleared")
	}
}
