package pmap

import (
	"testing"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
)

// TestRemoveBatchMatchesRemove pins RemoveBatch to Remove's semantics:
// the same window torn down either way yields identical page tables, pv
// lists, wired counts, PT-page accounting — and identical simulated
// time, since the batch charges the per-translation PmapRemove cost for
// exactly the translations it removes.
func TestRemoveBatchMatchesRemove(t *testing.T) {
	type fix struct {
		f   *fixture
		pm  *Pmap
		pgs []*phys.Page
	}
	mk := func(name string) fix {
		f := newFixture(8)
		pm := f.mmu.NewPmap(name)
		var pgs []*phys.Page
		for i := 0; i < 4; i++ {
			pgs = append(pgs, f.page(t))
		}
		pm.Enter(0x1000, pgs[0], param.ProtRW, true)
		pm.Enter(0x2000, pgs[1], param.ProtRead, false)
		pm.Enter(0x5000, pgs[2], param.ProtRW, false) // gap at 0x3000-0x4000
		pm.Enter(0x40000000, pgs[3], param.ProtRW, true)
		return fix{f: f, pm: pm, pgs: pgs}
	}

	for _, window := range []struct {
		name       string
		start, end param.VAddr
	}{
		{"partial", 0x1000, 0x3000},
		{"with-gap", 0x1000, 0x6000},
		{"everything", 0, 0x50000000},
		{"empty", 0x8000, 0x9000},
		{"unaligned-start", 0x1080, 0x3000},
	} {
		t.Run(window.name, func(t *testing.T) {
			loop, batch := mk("loop"), mk("batch")
			loop.pm.Remove(window.start, window.end)
			batch.pm.RemoveBatch(window.start, window.end)

			if loop.pm.ResidentCount() != batch.pm.ResidentCount() ||
				loop.pm.WiredCount() != batch.pm.WiredCount() ||
				loop.pm.PTPages() != batch.pm.PTPages() {
				t.Fatalf("bookkeeping diverged: loop res=%d wired=%d pt=%d, batch res=%d wired=%d pt=%d",
					loop.pm.ResidentCount(), loop.pm.WiredCount(), loop.pm.PTPages(),
					batch.pm.ResidentCount(), batch.pm.WiredCount(), batch.pm.PTPages())
			}
			for i := range loop.pgs {
				if loop.f.mmu.PageMappings(loop.pgs[i]) != batch.f.mmu.PageMappings(batch.pgs[i]) {
					t.Fatalf("page %d: pv count %d (loop) vs %d (batch)", i,
						loop.f.mmu.PageMappings(loop.pgs[i]), batch.f.mmu.PageMappings(batch.pgs[i]))
				}
			}
			for _, va := range []param.VAddr{0x1000, 0x2000, 0x5000, 0x40000000} {
				lp, lok := loop.pm.Lookup(va)
				bp, bok := batch.pm.Lookup(va)
				if lok != bok || (lok && (lp.Prot != bp.Prot || lp.Wired != bp.Wired)) {
					t.Fatalf("va %#x: loop %+v/%v vs batch %+v/%v", va, lp, lok, bp, bok)
				}
			}
			// Sim-time parity: the loop and the batch must charge the
			// same time for the same teardown.
			if lt, bt := loop.f.mmu.clock.Now(), batch.f.mmu.clock.Now(); lt != bt {
				t.Fatalf("simulated time diverged: loop %v vs batch %v", lt, bt)
			}
			checkInverse(t, batch.f.mmu, []*Pmap{batch.pm})
		})
	}
}

// TestRemoveBatchCounters verifies the batch teardown is visible in the
// pmap.pv.batch.remove* stats.
func TestRemoveBatchCounters(t *testing.T) {
	f := newFixture(4)
	pm := f.mmu.NewPmap("ctr")
	for i := 0; i < 3; i++ {
		pm.Enter(param.VAddr(0x1000+i*0x1000), f.page(t), param.ProtRW, false)
	}
	pm.RemoveBatch(0x1000, 0x4000)
	if got := f.mmu.stats.Get(sim.CtrPVBatchRemoves); got != 1 {
		t.Errorf("batch removes counter = %d, want 1", got)
	}
	if got := f.mmu.stats.Get(sim.CtrPVBatchRemovePages); got != 3 {
		t.Errorf("batch remove pages counter = %d, want 3", got)
	}
	// An empty window is not counted as a batch.
	pm.RemoveBatch(0x1000, 0x4000)
	if got := f.mmu.stats.Get(sim.CtrPVBatchRemoves); got != 1 {
		t.Errorf("empty batch counted: removes = %d, want 1", got)
	}
}
