// Package pmap is the machine-dependent layer of the simulated kernel: a
// software MMU. It implements the Mach-style pmap API that both BSD VM and
// UVM program — the paper stresses (§2, §10) that UVM deliberately reuses
// BSD VM's pmap layer unchanged, so in this reproduction there is exactly
// one pmap implementation and both machine-independent VM systems drive
// it.
//
// A pmap holds the translations for one address space. The MMU keeps a
// reverse map (pv list) from each physical page to every translation that
// maps it, which is what makes pmap_page_protect — write-protecting or
// removing all mappings of a page for copy-on-write and pageout — possible.
//
// # The sharded reverse map
//
// The pv table is shared by every address space on the machine, so a
// single mutex around it would serialise all faults system-wide — the
// exact serialisation point the fine-grained VM locking was built to
// avoid. It is therefore sharded: pvShards buckets, each its own mutex
// plus page→pv-list map, a page hashing to the bucket of its physical
// frame number. Page-level operations (Enter, Remove, PageProtect, pv
// walks) lock only the one bucket their page hashes to, so faults in
// different address spaces — which overwhelmingly touch different frames
// — proceed without contending.
//
// Locking: a pmap's own mutex (p.mu, guarding its page table) nests
// ABOVE pv bucket locks — Enter/Remove update the page table and the
// reverse map under p.mu so the two stay mutually inverse at every
// instant. At most one bucket is ever held at a time (batch operations
// visit their buckets one after another in ascending index), and bucket
// locks are leaves: nothing is acquired under them. PageProtect snapshots
// a page's pv list under its bucket and releases the bucket before
// touching any pmap, so it never holds a bucket and a pmap mutex
// together in the reverse order.
//
// Bucket lock traffic is counted in the pmap.pv.* stats (acquisitions
// and contended acquisitions); experiments.Scaling reports the ratio as
// fault-path pv contention.
//
// The simulated processor is i386-like: each 4 MB-aligned region of a
// pmap's virtual address space that contains at least one mapping needs a
// page-table page, which is wired kernel memory. Whose bookkeeping records
// that wired memory is one of the Table 1 differences between the two VM
// systems, so the pmap reports page-table page allocation through a hook.
package pmap

import (
	"fmt"
	"sort"
	"sync"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
)

// ptRegionShift selects the i386 page-table granularity: one page-table
// page maps 4 MB (1024 PTEs of 4 KB).
const ptRegionShift = 22

// pvShards is the number of reverse-map buckets. 64 comfortably exceeds
// any plausible host core count, so two concurrent faults on different
// frames almost never share a bucket; being a power of two keeps the
// frame-number hash a mask.
const pvShards = 64

// PTE is one translation: virtual page -> physical frame with a hardware
// protection. Wired marks translations that must not be torn down by
// pageout (the pmap-level wired attribute).
type PTE struct {
	Page  *phys.Page
	Prot  param.Prot
	Wired bool
}

// BatchEntry is one translation for Pmap.EnterBatch.
type BatchEntry struct {
	VA    param.VAddr
	Page  *phys.Page
	Prot  param.Prot
	Wired bool
}

type pv struct {
	pm *Pmap
	va param.VAddr
}

// pvBucket is one shard of the reverse map: the pv lists of every page
// whose frame number hashes here, under the bucket's own mutex.
type pvBucket struct {
	//uvm:lock pvbucket
	mu  sync.Mutex
	rev map[*phys.Page][]pv
}

// removeLocked drops the (pm, va) entry from pg's pv list. Caller holds
// the bucket's mutex.
func (b *pvBucket) removeLocked(pg *phys.Page, pm *Pmap, va param.VAddr) {
	list := b.rev[pg]
	for i, e := range list {
		if e.pm == pm && e.va == va {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(b.rev, pg)
	} else {
		b.rev[pg] = list
	}
}

// MMU is the machine: it owns the sharded reverse (pv) table shared by
// all pmaps.
type MMU struct {
	clock *sim.Clock
	costs *sim.Costs
	stats *sim.Stats

	// shards is the number of live buckets (a power of two ≤ pvShards).
	// Set once at boot — before any translation exists — by SetPVShards;
	// 1 degrades the table to the classic single-mutex layout, kept as
	// the measured contrast for BenchmarkPVContention.
	shards  int
	buckets [pvShards]pvBucket

	// Cached counter cells: the fault path bumps these on every bucket
	// acquisition, so the name lookup is paid once here.
	ctrAcquires     sim.Counter
	ctrContended    sim.Counter
	ctrBatches      sim.Counter
	ctrBatchPages   sim.Counter
	ctrRmBatches    sim.Counter
	ctrRmBatchPages sim.Counter
}

// NewMMU creates the machine's MMU.
func NewMMU(clock *sim.Clock, costs *sim.Costs, stats *sim.Stats) *MMU {
	m := &MMU{
		clock:           clock,
		costs:           costs,
		stats:           stats,
		shards:          pvShards,
		ctrAcquires:     stats.Counter(sim.CtrPVAcquires),
		ctrContended:    stats.Counter(sim.CtrPVContended),
		ctrBatches:      stats.Counter(sim.CtrPVBatches),
		ctrBatchPages:   stats.Counter(sim.CtrPVBatchPages),
		ctrRmBatches:    stats.Counter(sim.CtrPVBatchRemoves),
		ctrRmBatchPages: stats.Counter(sim.CtrPVBatchRemovePages),
	}
	for i := range m.buckets {
		m.buckets[i].rev = make(map[*phys.Page][]pv)
	}
	return m
}

// SetPVShards restricts the reverse map to n buckets (rounded down to a
// power of two, clamped to [1, 64]). It exists so benchmarks and
// experiments can compare the sharded table against the single-mutex
// layout (n=1); production boots keep the default. Must be called before
// any translation is entered — it panics if mappings already exist.
func (m *MMU) SetPVShards(n int) {
	for i := range m.buckets {
		m.buckets[i].mu.Lock()
		populated := len(m.buckets[i].rev) > 0
		m.buckets[i].mu.Unlock()
		if populated {
			panic("pmap: SetPVShards after mappings exist")
		}
	}
	if n < 1 {
		n = 1
	}
	if n > pvShards {
		n = pvShards
	}
	for n&(n-1) != 0 {
		n &= n - 1 // round down to a power of two
	}
	m.shards = n
}

// bucketIndex hashes a page to its reverse-map bucket: the physical frame
// number masked by the live shard count, so adjacent frames land in
// different buckets.
func (m *MMU) bucketIndex(pg *phys.Page) int {
	return int(uint64(pg.PA)>>param.PageShift) & (m.shards - 1)
}

func (m *MMU) bucketOf(pg *phys.Page) *pvBucket { return &m.buckets[m.bucketIndex(pg)] }

// lockBucket acquires b counting the acquisition, and whether it had to
// wait, in the pmap.pv.* stats.
func (m *MMU) lockBucket(b *pvBucket) {
	if !b.mu.TryLock() {
		m.ctrContended.Inc()
		b.mu.Lock()
	}
	m.ctrAcquires.Inc()
}

// Pmap is the translation state for one address space.
type Pmap struct {
	mmu  *MMU
	name string

	//uvm:lock pmap
	mu        sync.Mutex
	pt        map[param.VAddr]PTE
	ptRegions map[param.VAddr]int // 4MB region base -> live PTE count
	wired     int

	// OnPTAlloc/OnPTFree fire when a page-table page is allocated or
	// freed for this pmap. BSD VM points these at kernel-map wiring (which
	// fragments kernel map entries); UVM records the wired state here in
	// the pmap only (paper §3.2).
	OnPTAlloc func()
	OnPTFree  func()
}

// NewPmap creates an empty address-space pmap.
func (m *MMU) NewPmap(name string) *Pmap {
	return &Pmap{
		mmu:       m,
		name:      name,
		pt:        make(map[param.VAddr]PTE),
		ptRegions: make(map[param.VAddr]int),
	}
}

// String names the pmap's address space in panics and test failures.
func (p *Pmap) String() string { return fmt.Sprintf("pmap(%s)", p.name) }

// applyPTLocked updates the page table for one translation — PTE write,
// page-table region refcount, wired accounting — and reports the
// reverse-map delta the caller must apply: the replaced page whose pv
// entry must go (nil if none) and whether pg needs a new pv entry.
// Caller holds p.mu; both Enter and EnterBatch funnel through here so
// their bookkeeping cannot drift apart.
func (p *Pmap) applyPTLocked(va param.VAddr, pg *phys.Page, prot param.Prot, wired bool) (removeOld *phys.Page, add bool) {
	old, had := p.pt[va]
	p.pt[va] = PTE{Page: pg, Prot: prot, Wired: wired}
	if !had {
		p.ptRegionRefLocked(va, +1)
	}
	if had && old.Wired {
		p.wired--
	}
	if wired {
		p.wired++
	}
	if had && old.Page != pg {
		removeOld = old.Page
	}
	return removeOld, !had || old.Page != pg
}

// Enter establishes (or replaces) the translation for va. The page gains a
// pv entry so page-level operations can find this mapping.
func (p *Pmap) Enter(va param.VAddr, pg *phys.Page, prot param.Prot, wired bool) {
	if !param.PageAligned(va) {
		panic("pmap: unaligned Enter")
	}
	p.mmu.clock.Advance(p.mmu.costs.PmapEnter)

	p.mu.Lock()
	removeOld, add := p.applyPTLocked(va, pg, prot, wired)
	if removeOld != nil {
		b := p.mmu.bucketOf(removeOld)
		p.mmu.lockBucket(b)
		b.removeLocked(removeOld, p, va)
		b.mu.Unlock()
	}
	if add {
		b := p.mmu.bucketOf(pg)
		p.mmu.lockBucket(b)
		b.rev[pg] = append(b.rev[pg], pv{p, va})
		b.mu.Unlock()
	}
	p.mu.Unlock()
}

// EnterBatch establishes every translation in entries, exactly as the
// equivalent sequence of Enter calls would, but takes the pmap mutex once
// and each affected pv bucket once for the whole batch instead of once
// per page. The batched fault-ahead path uses it to amortise lock traffic
// across the advice window. VAs must be page-aligned; the per-entry
// PmapEnter cost is charged as usual, so a batch costs the same simulated
// time as the loop it replaces.
func (p *Pmap) EnterBatch(entries []BatchEntry) {
	if len(entries) == 0 {
		return
	}
	for _, be := range entries {
		if !param.PageAligned(be.VA) {
			panic("pmap: unaligned EnterBatch")
		}
	}
	p.mmu.clock.ChargeN(len(entries), p.mmu.costs.PmapEnter)
	p.mmu.ctrBatches.Inc()
	p.mmu.ctrBatchPages.Add(int64(len(entries)))

	// pvOp is one reverse-map edit; ops are grouped by bucket so each
	// bucket is locked once, and applied in append order within a bucket
	// so a remove-then-add pair for one VA lands in sequence.
	type pvOp struct {
		pg  *phys.Page
		va  param.VAddr
		add bool
	}
	var ops [pvShards][]pvOp

	p.mu.Lock()
	for _, be := range entries {
		removeOld, add := p.applyPTLocked(be.VA, be.Page, be.Prot, be.Wired)
		if removeOld != nil {
			i := p.mmu.bucketIndex(removeOld)
			ops[i] = append(ops[i], pvOp{pg: removeOld, va: be.VA})
		}
		if add {
			i := p.mmu.bucketIndex(be.Page)
			ops[i] = append(ops[i], pvOp{pg: be.Page, va: be.VA, add: true})
		}
	}
	// Ascending bucket order, one bucket held at a time, still under
	// p.mu so the batch is atomic against Remove/PageProtect on this
	// pmap.
	for i := range ops {
		if len(ops[i]) == 0 {
			continue
		}
		b := &p.mmu.buckets[i]
		p.mmu.lockBucket(b)
		for _, op := range ops[i] {
			if op.add {
				b.rev[op.pg] = append(b.rev[op.pg], pv{p, op.va})
			} else {
				b.removeLocked(op.pg, p, op.va)
			}
		}
		b.mu.Unlock()
	}
	p.mu.Unlock()
}

// Remove tears down all translations in [start, end).
func (p *Pmap) Remove(start, end param.VAddr) {
	for va := param.Trunc(start); va < end; va += param.PageSize {
		p.removeOne(va)
	}
}

// RemoveBatch tears down every translation in [start, end) exactly as the
// equivalent sequence of Remove calls would, but takes the pmap mutex
// once and each affected pv bucket once for the whole window instead of
// once per page — the teardown mirror of EnterBatch, used by UVM's
// two-phase unmap and address-space exit. The per-translation PmapRemove
// cost is charged as usual, so a batch costs the same simulated time as
// the loop it replaces.
func (p *Pmap) RemoveBatch(start, end param.VAddr) {
	start = param.Trunc(start)

	p.mu.Lock()
	// Collect the mapped VAs of the window: for a window smaller than
	// the page table, walk the VA range directly (already sorted); for
	// a huge or whole-space window (RemoveAll), scan the table instead
	// of stepping through an astronomically sparse range, and sort so
	// the pv edits land in the same order the Remove loop produced.
	var vas []param.VAddr
	if span := uint64(end-start) >> param.PageShift; end > start && span < uint64(len(p.pt)) {
		vas = make([]param.VAddr, 0, span)
		for va := start; va < end; va += param.PageSize {
			if _, ok := p.pt[va]; ok {
				vas = append(vas, va)
			}
		}
	} else {
		vas = make([]param.VAddr, 0, len(p.pt))
		for va := range p.pt {
			if va >= start && va < end {
				vas = append(vas, va)
			}
		}
		sort.Slice(vas, func(i, j int) bool { return vas[i] < vas[j] })
	}
	if len(vas) == 0 {
		p.mu.Unlock()
		return
	}

	type pvOp struct {
		pg *phys.Page
		va param.VAddr
	}
	var ops [pvShards][]pvOp
	for _, va := range vas {
		pte := p.pt[va]
		delete(p.pt, va)
		p.ptRegionRefLocked(va, -1)
		if pte.Wired {
			p.wired--
		}
		i := p.mmu.bucketIndex(pte.Page)
		ops[i] = append(ops[i], pvOp{pg: pte.Page, va: va})
	}
	// Ascending bucket order, one bucket held at a time, still under
	// p.mu so the batch is atomic against Enter/PageProtect on this pmap
	// (same discipline as EnterBatch).
	for i := range ops {
		if len(ops[i]) == 0 {
			continue
		}
		b := &p.mmu.buckets[i]
		p.mmu.lockBucket(b)
		for _, op := range ops[i] {
			b.removeLocked(op.pg, p, op.va)
		}
		b.mu.Unlock()
	}
	p.mu.Unlock()

	p.mmu.clock.ChargeN(len(vas), p.mmu.costs.PmapRemove)
	p.mmu.ctrRmBatches.Inc()
	p.mmu.ctrRmBatchPages.Add(int64(len(vas)))
}

func (p *Pmap) removeOne(va param.VAddr) { p.removeIf(va, nil) }

// removeIf tears down va's translation. With only non-nil the teardown
// happens just when the translation still maps that page: PageProtect
// works from a pv snapshot taken under the bucket lock, and a
// translation replaced after the snapshot must not be collateral damage.
func (p *Pmap) removeIf(va param.VAddr, only *phys.Page) {
	p.mu.Lock()
	pte, ok := p.pt[va]
	if !ok || (only != nil && pte.Page != only) {
		p.mu.Unlock()
		return
	}
	delete(p.pt, va)
	p.ptRegionRefLocked(va, -1)
	if pte.Wired {
		p.wired--
	}
	b := p.mmu.bucketOf(pte.Page)
	p.mmu.lockBucket(b)
	b.removeLocked(pte.Page, p, va)
	b.mu.Unlock()
	p.mu.Unlock()

	p.mmu.clock.Advance(p.mmu.costs.PmapRemove)
}

// Protect narrows the hardware protection of every translation in
// [start, end) to prot. With ProtNone the translations are removed
// (matching pmap_protect semantics on the i386), batched — the pmap
// mutex and each pv bucket taken once for the window.
func (p *Pmap) Protect(start, end param.VAddr, prot param.Prot) {
	if prot == param.ProtNone {
		p.RemoveBatch(start, end)
		return
	}
	for va := param.Trunc(start); va < end; va += param.PageSize {
		p.mu.Lock()
		if pte, ok := p.pt[va]; ok {
			p.mmu.clock.Advance(p.mmu.costs.PmapProtect)
			pte.Prot &= prot
			p.pt[va] = pte
		}
		p.mu.Unlock()
	}
}

// Extract returns the translation for va, if any. It charges the cost of a
// software page-table walk.
func (p *Pmap) Extract(va param.VAddr) (PTE, bool) {
	p.mmu.clock.Advance(p.mmu.costs.PmapExtract)
	p.mu.Lock()
	defer p.mu.Unlock()
	pte, ok := p.pt[param.Trunc(va)]
	return pte, ok
}

// Lookup is Extract without the cost charge, for assertions and tests.
func (p *Pmap) Lookup(va param.VAddr) (PTE, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pte, ok := p.pt[param.Trunc(va)]
	return pte, ok
}

// ChangeWiring flips the pmap-level wired attribute of va's translation.
func (p *Pmap) ChangeWiring(va param.VAddr, wired bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pte, ok := p.pt[param.Trunc(va)]
	if !ok {
		return
	}
	if pte.Wired != wired {
		if wired {
			p.wired++
		} else {
			p.wired--
		}
		pte.Wired = wired
		p.pt[param.Trunc(va)] = pte
	}
}

// ResidentCount returns the number of valid translations.
func (p *Pmap) ResidentCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pt)
}

// WiredCount returns the number of wired translations.
func (p *Pmap) WiredCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wired
}

// PTPages returns the number of page-table pages currently allocated.
func (p *Pmap) PTPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ptRegions)
}

// ptRegionRefLocked adjusts the PTE count of va's 4 MB region, firing the
// allocation/free hooks at the 0<->1 transitions. Caller holds p.mu.
func (p *Pmap) ptRegionRefLocked(va param.VAddr, delta int) {
	region := va >> ptRegionShift << ptRegionShift
	n := p.ptRegions[region] + delta
	switch {
	case n < 0:
		panic("pmap: page-table region refcount underflow")
	case n == 0:
		delete(p.ptRegions, region)
		if p.OnPTFree != nil {
			p.OnPTFree()
		}
	default:
		if p.ptRegions[region] == 0 && p.OnPTAlloc != nil {
			p.OnPTAlloc()
		}
		p.ptRegions[region] = n
	}
}

// RemoveAll tears down every translation (address-space teardown). It is
// a whole-space RemoveBatch: the pmap mutex and each affected pv bucket
// are taken once for the entire space.
func (p *Pmap) RemoveAll() {
	p.RemoveBatch(0, ^param.VAddr(0))
}

// PageProtect narrows the protection of every mapping of pg, in every
// pmap, to prot. ProtNone removes all mappings. This is the pmap primitive
// behind copy-on-write write-protection at fork and behind pageout. Only
// pg's own pv bucket is locked (to snapshot the mapping list), so
// PageProtect calls on pages in different buckets do not contend.
func (m *MMU) PageProtect(pg *phys.Page, prot param.Prot) {
	b := m.bucketOf(pg)
	m.lockBucket(b)
	entries := append([]pv(nil), b.rev[pg]...)
	b.mu.Unlock()

	if prot == param.ProtNone {
		for _, e := range entries {
			e.pm.removeIf(e.va, pg)
		}
		return
	}
	for _, e := range entries {
		e.pm.mu.Lock()
		if pte, ok := e.pm.pt[e.va]; ok && pte.Page == pg {
			m.clock.Advance(m.costs.PmapProtect)
			pte.Prot &= prot
			e.pm.pt[e.va] = pte
		}
		e.pm.mu.Unlock()
	}
}

// PageMappings returns how many translations currently map pg.
func (m *MMU) PageMappings(pg *phys.Page) int {
	b := m.bucketOf(pg)
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.rev[pg])
}

// PageReferenced gathers and clears the simulated reference bit for pg.
// (On real hardware this scans PTE reference bits via the pv list.)
func (m *MMU) PageReferenced(pg *phys.Page) bool {
	return pg.Referenced.Swap(false)
}
