// Package pmap is the machine-dependent layer of the simulated kernel: a
// software MMU. It implements the Mach-style pmap API that both BSD VM and
// UVM program — the paper stresses (§2, §10) that UVM deliberately reuses
// BSD VM's pmap layer unchanged, so in this reproduction there is exactly
// one pmap implementation and both machine-independent VM systems drive
// it.
//
// A pmap holds the translations for one address space. The MMU keeps a
// reverse map (pv list) from each physical page to every translation that
// maps it, which is what makes pmap_page_protect — write-protecting or
// removing all mappings of a page for copy-on-write and pageout — possible.
//
// The simulated processor is i386-like: each 4 MB-aligned region of a
// pmap's virtual address space that contains at least one mapping needs a
// page-table page, which is wired kernel memory. Whose bookkeeping records
// that wired memory is one of the Table 1 differences between the two VM
// systems, so the pmap reports page-table page allocation through a hook.
package pmap

import (
	"fmt"
	"sync"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
)

// ptRegionShift selects the i386 page-table granularity: one page-table
// page maps 4 MB (1024 PTEs of 4 KB).
const ptRegionShift = 22

// PTE is one translation: virtual page -> physical frame with a hardware
// protection. Wired marks translations that must not be torn down by
// pageout (the pmap-level wired attribute).
type PTE struct {
	Page  *phys.Page
	Prot  param.Prot
	Wired bool
}

type pv struct {
	pm *Pmap
	va param.VAddr
}

// MMU is the machine: it owns the reverse (pv) table shared by all pmaps.
type MMU struct {
	clock *sim.Clock
	costs *sim.Costs
	stats *sim.Stats

	mu  sync.Mutex
	rev map[*phys.Page][]pv
}

// NewMMU creates the machine's MMU.
func NewMMU(clock *sim.Clock, costs *sim.Costs, stats *sim.Stats) *MMU {
	return &MMU{clock: clock, costs: costs, stats: stats, rev: make(map[*phys.Page][]pv)}
}

// Pmap is the translation state for one address space.
type Pmap struct {
	mmu  *MMU
	name string

	mu        sync.Mutex
	pt        map[param.VAddr]PTE
	ptRegions map[param.VAddr]int // 4MB region base -> live PTE count
	wired     int

	// OnPTAlloc/OnPTFree fire when a page-table page is allocated or
	// freed for this pmap. BSD VM points these at kernel-map wiring (which
	// fragments kernel map entries); UVM records the wired state here in
	// the pmap only (paper §3.2).
	OnPTAlloc func()
	OnPTFree  func()
}

// NewPmap creates an empty address-space pmap.
func (m *MMU) NewPmap(name string) *Pmap {
	return &Pmap{
		mmu:       m,
		name:      name,
		pt:        make(map[param.VAddr]PTE),
		ptRegions: make(map[param.VAddr]int),
	}
}

func (p *Pmap) String() string { return fmt.Sprintf("pmap(%s)", p.name) }

// Enter establishes (or replaces) the translation for va. The page gains a
// pv entry so page-level operations can find this mapping.
func (p *Pmap) Enter(va param.VAddr, pg *phys.Page, prot param.Prot, wired bool) {
	if !param.PageAligned(va) {
		panic("pmap: unaligned Enter")
	}
	p.mmu.clock.Advance(p.mmu.costs.PmapEnter)

	p.mu.Lock()
	old, had := p.pt[va]
	p.pt[va] = PTE{Page: pg, Prot: prot, Wired: wired}
	if !had {
		p.ptRegionRefLocked(va, +1)
	}
	if had && old.Wired {
		p.wired--
	}
	if wired {
		p.wired++
	}
	p.mu.Unlock()

	p.mmu.mu.Lock()
	if had && old.Page != pg {
		p.mmu.removePVLocked(old.Page, p, va)
	}
	if !had || old.Page != pg {
		p.mmu.rev[pg] = append(p.mmu.rev[pg], pv{p, va})
	}
	p.mmu.mu.Unlock()
}

// Remove tears down all translations in [start, end).
func (p *Pmap) Remove(start, end param.VAddr) {
	for va := param.Trunc(start); va < end; va += param.PageSize {
		p.removeOne(va)
	}
}

func (p *Pmap) removeOne(va param.VAddr) {
	p.mu.Lock()
	pte, ok := p.pt[va]
	if !ok {
		p.mu.Unlock()
		return
	}
	delete(p.pt, va)
	p.ptRegionRefLocked(va, -1)
	if pte.Wired {
		p.wired--
	}
	p.mu.Unlock()

	p.mmu.clock.Advance(p.mmu.costs.PmapRemove)
	p.mmu.mu.Lock()
	p.mmu.removePVLocked(pte.Page, p, va)
	p.mmu.mu.Unlock()
}

// Protect narrows the hardware protection of every translation in
// [start, end) to prot. With ProtNone the translations are removed
// (matching pmap_protect semantics on the i386).
func (p *Pmap) Protect(start, end param.VAddr, prot param.Prot) {
	if prot == param.ProtNone {
		p.Remove(start, end)
		return
	}
	for va := param.Trunc(start); va < end; va += param.PageSize {
		p.mu.Lock()
		if pte, ok := p.pt[va]; ok {
			p.mmu.clock.Advance(p.mmu.costs.PmapProtect)
			pte.Prot &= prot
			p.pt[va] = pte
		}
		p.mu.Unlock()
	}
}

// Extract returns the translation for va, if any. It charges the cost of a
// software page-table walk.
func (p *Pmap) Extract(va param.VAddr) (PTE, bool) {
	p.mmu.clock.Advance(p.mmu.costs.PmapExtract)
	p.mu.Lock()
	defer p.mu.Unlock()
	pte, ok := p.pt[param.Trunc(va)]
	return pte, ok
}

// Lookup is Extract without the cost charge, for assertions and tests.
func (p *Pmap) Lookup(va param.VAddr) (PTE, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pte, ok := p.pt[param.Trunc(va)]
	return pte, ok
}

// ChangeWiring flips the pmap-level wired attribute of va's translation.
func (p *Pmap) ChangeWiring(va param.VAddr, wired bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pte, ok := p.pt[param.Trunc(va)]
	if !ok {
		return
	}
	if pte.Wired != wired {
		if wired {
			p.wired++
		} else {
			p.wired--
		}
		pte.Wired = wired
		p.pt[param.Trunc(va)] = pte
	}
}

// ResidentCount returns the number of valid translations.
func (p *Pmap) ResidentCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pt)
}

// WiredCount returns the number of wired translations.
func (p *Pmap) WiredCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wired
}

// PTPages returns the number of page-table pages currently allocated.
func (p *Pmap) PTPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.ptRegions)
}

// ptRegionRefLocked adjusts the PTE count of va's 4 MB region, firing the
// allocation/free hooks at the 0<->1 transitions. Caller holds p.mu.
func (p *Pmap) ptRegionRefLocked(va param.VAddr, delta int) {
	region := va >> ptRegionShift << ptRegionShift
	n := p.ptRegions[region] + delta
	switch {
	case n < 0:
		panic("pmap: page-table region refcount underflow")
	case n == 0:
		delete(p.ptRegions, region)
		if p.OnPTFree != nil {
			p.OnPTFree()
		}
	default:
		if p.ptRegions[region] == 0 && p.OnPTAlloc != nil {
			p.OnPTAlloc()
		}
		p.ptRegions[region] = n
	}
}

// RemoveAll tears down every translation (address-space teardown).
func (p *Pmap) RemoveAll() {
	p.mu.Lock()
	vas := make([]param.VAddr, 0, len(p.pt))
	for va := range p.pt {
		vas = append(vas, va)
	}
	p.mu.Unlock()
	for _, va := range vas {
		p.removeOne(va)
	}
}

func (m *MMU) removePVLocked(pg *phys.Page, pm *Pmap, va param.VAddr) {
	list := m.rev[pg]
	for i, e := range list {
		if e.pm == pm && e.va == va {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(m.rev, pg)
	} else {
		m.rev[pg] = list
	}
}

// PageProtect narrows the protection of every mapping of pg, in every
// pmap, to prot. ProtNone removes all mappings. This is the pmap primitive
// behind copy-on-write write-protection at fork and behind pageout.
func (m *MMU) PageProtect(pg *phys.Page, prot param.Prot) {
	m.mu.Lock()
	entries := append([]pv(nil), m.rev[pg]...)
	m.mu.Unlock()

	if prot == param.ProtNone {
		for _, e := range entries {
			e.pm.removeOne(e.va)
		}
		return
	}
	for _, e := range entries {
		e.pm.mu.Lock()
		if pte, ok := e.pm.pt[e.va]; ok && pte.Page == pg {
			m.clock.Advance(m.costs.PmapProtect)
			pte.Prot &= prot
			e.pm.pt[e.va] = pte
		}
		e.pm.mu.Unlock()
	}
}

// PageMappings returns how many translations currently map pg.
func (m *MMU) PageMappings(pg *phys.Page) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.rev[pg])
}

// PageReferenced gathers and clears the simulated reference bit for pg.
// (On real hardware this scans PTE reference bits via the pv list.)
func (m *MMU) PageReferenced(pg *phys.Page) bool {
	return pg.Referenced.Swap(false)
}
