package pmap

// The pv-inverse property difftest: after any interleaving of Enter,
// EnterBatch, Remove, RemoveBatch, RemoveAll, ChangeWiring and PageProtect across
// several pmaps, the sharded reverse map and every pmap's page table
// must be exact mutual inverses — every PTE has exactly one pv entry and
// every pv entry points back at a live PTE for its page — and each
// pmap's wired count must equal the number of wired PTEs it holds.
//
// TestPVInverseDeterministic drives one goroutine from a fixed seed so a
// failure replays exactly; TestPVInverseConcurrent drives racing workers
// (run under -race in CI) whose pmap/pv updates are atomic under the
// pmap mutex, so the inverse holds at join no matter the interleaving.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"uvm/internal/param"
	"uvm/internal/phys"
)

type pvKey struct {
	pm *Pmap
	va param.VAddr
}

// checkInverse asserts that the pv table and the page tables of pmaps are
// mutual inverses. It takes the same locks the pmap layer does, so it is
// safe to call while the fixture is quiescent (no concurrent mutators).
func checkInverse(t *testing.T, mmu *MMU, pmaps []*Pmap) {
	t.Helper()

	// Forward direction: every PTE, and the wired bookkeeping with it.
	want := make(map[pvKey]*phys.Page)
	for _, pm := range pmaps {
		pm.mu.Lock()
		wired := 0
		for va, pte := range pm.pt {
			want[pvKey{pm, va}] = pte.Page
			if pte.Wired {
				wired++
			}
		}
		if pm.wired != wired {
			t.Errorf("%v: wired count %d, but %d wired PTEs", pm, pm.wired, wired)
		}
		pm.mu.Unlock()
	}

	// Reverse direction: every pv entry, checking bucket placement and
	// duplicates along the way.
	got := make(map[pvKey]*phys.Page)
	for i := range mmu.buckets {
		b := &mmu.buckets[i]
		b.mu.Lock()
		for pg, list := range b.rev {
			if mmu.bucketIndex(pg) != i {
				t.Errorf("page PA=%#x filed in bucket %d, hashes to %d", pg.PA, i, mmu.bucketIndex(pg))
			}
			if len(list) == 0 {
				t.Errorf("page PA=%#x retains an empty pv list", pg.PA)
			}
			for _, e := range list {
				k := pvKey{e.pm, e.va}
				if _, dup := got[k]; dup {
					t.Errorf("duplicate pv entry for %v va=%#x", e.pm, e.va)
				}
				got[k] = pg
			}
		}
		b.mu.Unlock()
	}

	for k, pg := range want {
		if got[k] != pg {
			t.Errorf("PTE %v va=%#x -> PA=%#x has pv entry for %v", k.pm, k.va, pg.PA, pvPA(got[k]))
		}
	}
	for k, pg := range got {
		if want[k] != pg {
			t.Errorf("pv entry %v va=%#x -> PA=%#x has no matching PTE", k.pm, k.va, pg.PA)
		}
	}
}

func pvPA(pg *phys.Page) any {
	if pg == nil {
		return "nothing"
	}
	return fmt.Sprintf("PA=%#x", pg.PA)
}

// pvFuzzer drives one pmap with random operations against a shared page
// pool. VAs are confined to the pmap's own window so two fuzzers never
// fight over one (pmap, va) pair — pv updates are atomic per pmap, but
// "last writer wins on the same VA" is not a property worth racing for.
// Pages ARE shared across fuzzers, so PageProtect from one worker tears
// mappings out of another worker's pmap concurrently with its own
// enters.
type pvFuzzer struct {
	mmu   *MMU
	pm    *Pmap
	pages []*phys.Page
	base  param.VAddr
	nva   int
	rng   *rand.Rand
}

func (f *pvFuzzer) va(i int) param.VAddr { return f.base + param.VAddr(i)*param.PageSize }

func (f *pvFuzzer) step() {
	switch f.rng.Intn(100) {
	case 0: // rare: full teardown
		f.pm.RemoveAll()
	default:
		switch f.rng.Intn(5) {
		case 0: // single enter, sometimes wired, sometimes replacing
			f.pm.Enter(f.va(f.rng.Intn(f.nva)), f.pages[f.rng.Intn(len(f.pages))],
				param.ProtRW, f.rng.Intn(4) == 0)
		case 1: // batch enter over a random window
			n := 1 + f.rng.Intn(8)
			start := f.rng.Intn(f.nva)
			batch := make([]BatchEntry, 0, n)
			for i := 0; i < n; i++ {
				batch = append(batch, BatchEntry{
					VA:    f.va((start + i) % f.nva),
					Page:  f.pages[f.rng.Intn(len(f.pages))],
					Prot:  param.ProtRW,
					Wired: f.rng.Intn(8) == 0,
				})
			}
			f.pm.EnterBatch(batch)
		case 2: // range removal, per-page or batched
			start := f.rng.Intn(f.nva)
			end := start + 1 + f.rng.Intn(6)
			if f.rng.Intn(2) == 0 {
				f.pm.Remove(f.va(start), f.va(end))
			} else {
				f.pm.RemoveBatch(f.va(start), f.va(end))
			}
		case 3: // page-level protect / teardown across all pmaps
			pg := f.pages[f.rng.Intn(len(f.pages))]
			switch f.rng.Intn(3) {
			case 0:
				f.mmu.PageProtect(pg, param.ProtNone)
			case 1:
				f.mmu.PageProtect(pg, param.ProtRead)
			default:
				f.mmu.PageMappings(pg)
			}
		case 4: // wiring flips
			f.pm.ChangeWiring(f.va(f.rng.Intn(f.nva)), f.rng.Intn(2) == 0)
		}
	}
}

func pvFuzzFixture(t *testing.T, shards, npmaps, npages int, seed int64) (*fixture, []*pvFuzzer) {
	t.Helper()
	f := newFixture(npages + 8)
	f.mmu.SetPVShards(shards)
	pages := make([]*phys.Page, npages)
	for i := range pages {
		pages[i] = f.page(t)
	}
	fuzzers := make([]*pvFuzzer, npmaps)
	for i := range fuzzers {
		fuzzers[i] = &pvFuzzer{
			mmu:   f.mmu,
			pm:    f.mmu.NewPmap(fmt.Sprintf("fuzz%d", i)),
			pages: pages,
			// Disjoint 4 MB-aligned windows: region accounting (PT pages)
			// stays per-fuzzer and (pmap, va) pairs never collide.
			base: param.VAddr(0x1000_0000 + i<<ptRegionShift),
			nva:  16,
			rng:  rand.New(rand.NewSource(seed + int64(i))),
		}
	}
	return f, fuzzers
}

func pvPmaps(fuzzers []*pvFuzzer) []*Pmap {
	pms := make([]*Pmap, len(fuzzers))
	for i, fz := range fuzzers {
		pms[i] = fz.pm
	}
	return pms
}

func TestPVInverseDeterministic(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			f, fuzzers := pvFuzzFixture(t, shards, 4, 32, 0x5eed)
			for step := 0; step < 4000; step++ {
				fuzzers[step%len(fuzzers)].step()
				if step%500 == 499 {
					checkInverse(t, f.mmu, pvPmaps(fuzzers))
				}
			}
			checkInverse(t, f.mmu, pvPmaps(fuzzers))
		})
	}
}

func TestPVInverseConcurrent(t *testing.T) {
	for _, shards := range []int{1, 64} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			f, fuzzers := pvFuzzFixture(t, shards, 8, 32, 0xc0ffee)
			var wg sync.WaitGroup
			for _, fz := range fuzzers {
				wg.Add(1)
				go func(fz *pvFuzzer) {
					defer wg.Done()
					for step := 0; step < 3000; step++ {
						fz.step()
					}
				}(fz)
			}
			wg.Wait()
			checkInverse(t, f.mmu, pvPmaps(fuzzers))
		})
	}
}

// TestEnterBatchMatchesEnter pins EnterBatch to Enter's semantics: the
// same sequence applied either way yields identical page tables, pv
// lists, wired counts and PT-page accounting — including replacement of
// an existing translation and wired/unwired transitions within one
// batch.
func TestEnterBatchMatchesEnter(t *testing.T) {
	seq := func(pgs []*phys.Page) []BatchEntry {
		return []BatchEntry{
			{VA: 0x1000, Page: pgs[0], Prot: param.ProtRW, Wired: true},
			{VA: 0x2000, Page: pgs[1], Prot: param.ProtRead},
			{VA: 0x1000, Page: pgs[2], Prot: param.ProtRead},            // replace, unwire
			{VA: 0x40000000, Page: pgs[3], Prot: param.ProtRW},          // second PT region
			{VA: 0x2000, Page: pgs[1], Prot: param.ProtRW, Wired: true}, // same page re-enter
		}
	}

	single := newFixture(8)
	batched := newFixture(8)
	var spgs, bpgs []*phys.Page
	for i := 0; i < 4; i++ {
		spgs = append(spgs, single.page(t))
		bpgs = append(bpgs, batched.page(t))
	}
	spm := single.mmu.NewPmap("single")
	bpm := batched.mmu.NewPmap("batched")
	for _, be := range seq(spgs) {
		spm.Enter(be.VA, be.Page, be.Prot, be.Wired)
	}
	bpm.EnterBatch(seq(bpgs))

	if spm.ResidentCount() != bpm.ResidentCount() ||
		spm.WiredCount() != bpm.WiredCount() ||
		spm.PTPages() != bpm.PTPages() {
		t.Fatalf("bookkeeping diverged: single res=%d wired=%d pt=%d, batched res=%d wired=%d pt=%d",
			spm.ResidentCount(), spm.WiredCount(), spm.PTPages(),
			bpm.ResidentCount(), bpm.WiredCount(), bpm.PTPages())
	}
	for i := range spgs {
		if single.mmu.PageMappings(spgs[i]) != batched.mmu.PageMappings(bpgs[i]) {
			t.Fatalf("page %d: pv count %d (single) vs %d (batched)",
				i, single.mmu.PageMappings(spgs[i]), batched.mmu.PageMappings(bpgs[i]))
		}
	}
	for _, va := range []param.VAddr{0x1000, 0x2000, 0x40000000} {
		sp, sok := spm.Lookup(va)
		bp, bok := bpm.Lookup(va)
		if sok != bok || sp.Prot != bp.Prot || sp.Wired != bp.Wired {
			t.Fatalf("va %#x: single %+v/%v vs batched %+v/%v", va, sp, sok, bp, bok)
		}
	}
	checkInverse(t, batched.mmu, []*Pmap{bpm})
}

// TestEnterBatchUnalignedPanics pins the batch path's alignment guard:
// the panic fires before any entry lands.
func TestEnterBatchUnalignedPanics(t *testing.T) {
	f := newFixture(2)
	pm := f.mmu.NewPmap("p")
	pg := f.page(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
		if pm.ResidentCount() != 0 {
			t.Error("partial batch applied before the alignment panic")
		}
	}()
	pm.EnterBatch([]BatchEntry{
		{VA: 0x1000, Page: pg, Prot: param.ProtRead},
		{VA: 0x2001, Page: pg, Prot: param.ProtRead},
	})
}
