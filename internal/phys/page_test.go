package phys

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"uvm/internal/param"
	"uvm/internal/sim"
)

func newTestMem(npages int) *Mem {
	return NewMem(sim.NewClock(), sim.DefaultCosts(), sim.NewStats(), npages)
}

func TestBootLayout(t *testing.T) {
	m := newTestMem(16)
	if m.TotalPages() != 16 || m.FreePages() != 16 {
		t.Fatalf("boot: total=%d free=%d", m.TotalPages(), m.FreePages())
	}
}

func TestAllocFreeCycle(t *testing.T) {
	m := newTestMem(4)
	var pages []*Page
	for i := 0; i < 4; i++ {
		p, err := m.Alloc("owner", param.PageToOff(i), false)
		if err != nil {
			t.Fatal(err)
		}
		if p.Owner() != "owner" || p.Off() != param.PageToOff(i) {
			t.Fatalf("identity not set: %v", p)
		}
		pages = append(pages, p)
	}
	if _, err := m.Alloc(nil, 0, false); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("exhaustion: %v", err)
	}
	for _, p := range pages {
		m.Free(p)
	}
	if m.FreePages() != 4 {
		t.Fatalf("free list = %d after freeing all", m.FreePages())
	}
	// Distinct PAs.
	if pages[0].PA == pages[1].PA {
		t.Fatal("duplicate physical addresses")
	}
}

func TestZeroFillAlloc(t *testing.T) {
	m := newTestMem(2)
	p, _ := m.Alloc(nil, 0, false)
	for i := range p.Data {
		p.Data[i] = 0xee
	}
	m.Free(p)
	p2, _ := m.Alloc(nil, 0, true)
	for i, b := range p2.Data {
		if b != 0 {
			t.Fatalf("zero-fill alloc byte %d = %#x", i, b)
		}
	}
}

func TestDirtyFreeListReuse(t *testing.T) {
	// A non-zeroed allocation may see stale data — like real hardware.
	// What matters is that Free clears identity, not data.
	m := newTestMem(1)
	p, _ := m.Alloc("a", 0, false)
	p.Data[0] = 0x77
	m.Free(p)
	q, _ := m.Alloc(nil, 0, false)
	if q.Owner() != nil {
		t.Fatal("owner survived free")
	}
}

func TestCopyData(t *testing.T) {
	m := newTestMem(2)
	src, _ := m.Alloc(nil, 0, true)
	dst, _ := m.Alloc(nil, 0, false)
	for i := range src.Data {
		src.Data[i] = byte(i)
	}
	m.CopyData(dst, src)
	for i := range dst.Data {
		if dst.Data[i] != byte(i) {
			t.Fatalf("copy mismatch at %d", i)
		}
	}
}

func TestQueueTransitions(t *testing.T) {
	m := newTestMem(4)
	p, _ := m.Alloc(nil, 0, false)
	if p.Queue() != QueueNone {
		t.Fatalf("fresh page on queue %d", p.Queue())
	}
	m.Activate(p)
	if p.Queue() != QueueActive || m.ActivePages() != 1 {
		t.Fatal("activate failed")
	}
	m.Deactivate(p)
	if p.Queue() != QueueInactive || m.InactivePages() != 1 || m.ActivePages() != 0 {
		t.Fatal("deactivate failed")
	}
	m.Activate(p) // inactive -> active again
	if p.Queue() != QueueActive || m.InactivePages() != 0 {
		t.Fatal("re-activate failed")
	}
	m.Dequeue(p)
	if p.Queue() != QueueNone || m.ActivePages() != 0 {
		t.Fatal("dequeue failed")
	}
	m.Free(p)
	if p.Queue() != QueueFree {
		t.Fatal("freed page not on free queue")
	}
}

func TestFreePanicsOnWiredOrLoaned(t *testing.T) {
	m := newTestMem(2)
	p, _ := m.Alloc(nil, 0, false)
	p.WireCount.Store(1)
	mustPanic(t, func() { m.Free(p) })
	p.WireCount.Store(0)
	p.LoanCount.Store(1)
	mustPanic(t, func() { m.Free(p) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestScanInactiveOrderAndSkips(t *testing.T) {
	m := newTestMem(8)
	var order []*Page
	for i := 0; i < 5; i++ {
		p, _ := m.Alloc(nil, param.PageToOff(i), false)
		m.Deactivate(p)
		order = append(order, p)
	}
	order[1].Busy.Store(true)
	order[2].WireCount.Store(1)
	order[3].LoanCount.Store(1)

	var scanned []*Page
	m.ScanInactive(10, func(p *Page) bool {
		scanned = append(scanned, p)
		return true
	})
	if len(scanned) != 2 || scanned[0] != order[0] || scanned[1] != order[4] {
		t.Fatalf("scan skipped wrong pages: %v", scanned)
	}

	// Early termination.
	n := 0
	m.ScanInactive(10, func(p *Page) bool { n++; return false })
	if n != 1 {
		t.Fatalf("scan did not stop on false: %d", n)
	}
}

func TestRefillInactiveSecondChance(t *testing.T) {
	m := newTestMem(8)
	ref, _ := m.Alloc(nil, 0, false)
	ref.Referenced.Store(true)
	m.Activate(ref)
	old, _ := m.Alloc(nil, param.PageSize, false)
	m.Activate(old)

	moved := m.RefillInactive(2)
	if moved != 1 {
		t.Fatalf("moved %d, want 1 (referenced page gets a second chance)", moved)
	}
	if old.Queue() != QueueInactive {
		t.Fatal("unreferenced page should have moved")
	}
	if ref.Queue() != QueueActive || ref.Referenced.Load() {
		t.Fatal("referenced page should stay active with bit cleared")
	}
	// Second pass: the reference bit was cleared, so it moves now.
	if m.RefillInactive(2) != 1 || ref.Queue() != QueueInactive {
		t.Fatal("second refill pass should move the page")
	}
}

func TestRefillSkipsWired(t *testing.T) {
	m := newTestMem(4)
	p, _ := m.Alloc(nil, 0, false)
	p.WireCount.Store(1)
	m.Activate(p)
	if got := m.RefillInactive(1); got != 0 {
		t.Fatalf("wired page moved to inactive: %d", got)
	}
}

func TestQueueCountInvariant(t *testing.T) {
	// Property: free + active + inactive + unqueued == total, under any
	// sequence of operations.
	m := newTestMem(32)
	rng := sim.NewRNG(123)
	var live []*Page
	for step := 0; step < 2000; step++ {
		switch rng.Intn(5) {
		case 0:
			if p, err := m.Alloc(nil, 0, false); err == nil {
				live = append(live, p)
			}
		case 1:
			if len(live) > 0 {
				i := rng.Intn(len(live))
				p := live[i]
				live = append(live[:i], live[i+1:]...)
				m.Dequeue(p)
				m.Free(p)
			}
		case 2:
			if len(live) > 0 {
				m.Activate(live[rng.Intn(len(live))])
			}
		case 3:
			if len(live) > 0 {
				m.Deactivate(live[rng.Intn(len(live))])
			}
		case 4:
			m.RefillInactive(rng.Intn(4))
		}
		unqueued := 0
		for _, p := range live {
			if p.Queue() == QueueNone {
				unqueued++
			}
		}
		sum := m.FreePages() + m.ActivePages() + m.InactivePages() + unqueued
		if sum != m.TotalPages() {
			t.Fatalf("step %d: page accounting broken: %d != %d",
				step, sum, m.TotalPages())
		}
	}
}

func TestShardedLRUOrderMatchesGlobal(t *testing.T) {
	// The queues are sharded, but ScanInactive and RefillInactive must
	// visit pages in the same global LRU order a single queue would
	// produce: deactivation order, regardless of which shard each frame
	// landed in.
	m := newTestMem(64)
	var order []*Page
	for i := 0; i < 40; i++ {
		p, err := m.Alloc(nil, param.PageToOff(i), false)
		if err != nil {
			t.Fatal(err)
		}
		m.Deactivate(p)
		order = append(order, p)
	}
	var scanned []*Page
	m.ScanInactive(40, func(p *Page) bool {
		scanned = append(scanned, p)
		return true
	})
	if len(scanned) != 40 {
		t.Fatalf("scanned %d, want 40", len(scanned))
	}
	for i, p := range scanned {
		if p != order[i] {
			t.Fatalf("scan order diverged from deactivation order at %d", i)
		}
	}

	// Refill pops the *active* queue in the same global order.
	m2 := newTestMem(64)
	var activeOrder []*Page
	for i := 0; i < 20; i++ {
		p, _ := m2.Alloc(nil, param.PageToOff(i), false)
		m2.Activate(p)
		activeOrder = append(activeOrder, p)
	}
	m2.RefillInactive(20)
	var afterRefill []*Page
	m2.ScanInactive(20, func(p *Page) bool {
		afterRefill = append(afterRefill, p)
		return true
	})
	for i, p := range afterRefill {
		if p != activeOrder[i] {
			t.Fatalf("refill order diverged from activation order at %d", i)
		}
	}
}

func TestConcurrentQueueTraffic(t *testing.T) {
	// Hammer the sharded queues from many goroutines: allocation, queue
	// transitions and frees on disjoint page sets must not race (-race)
	// and the global accounting must balance at the end.
	m := newTestMem(256)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(w) + 99)
			var live []*Page
			for step := 0; step < 500; step++ {
				switch rng.Intn(4) {
				case 0:
					if p, err := m.Alloc(w, 0, false); err == nil {
						live = append(live, p)
					}
				case 1:
					if len(live) > 0 {
						i := rng.Intn(len(live))
						p := live[i]
						live = append(live[:i], live[i+1:]...)
						m.Dequeue(p)
						m.Free(p)
					}
				case 2:
					if len(live) > 0 {
						m.Activate(live[rng.Intn(len(live))])
					}
				case 3:
					if len(live) > 0 {
						m.Deactivate(live[rng.Intn(len(live))])
					}
				}
			}
			for _, p := range live {
				m.Dequeue(p)
				m.Free(p)
			}
		}(w)
	}
	wg.Wait()
	if m.FreePages() != m.TotalPages() {
		t.Fatalf("leaked frames: free %d != total %d", m.FreePages(), m.TotalPages())
	}
	if m.ActivePages() != 0 || m.InactivePages() != 0 {
		t.Fatalf("queues not empty: active %d inactive %d", m.ActivePages(), m.InactivePages())
	}
}

func TestPageDataDistinct(t *testing.T) {
	// Frames must never share underlying data storage.
	m := newTestMem(8)
	prop := func(fill byte) bool {
		a, err1 := m.Alloc(nil, 0, true)
		b, err2 := m.Alloc(nil, 0, true)
		if err1 != nil || err2 != nil {
			return false
		}
		a.Data[0] = fill
		ok := b.Data[0] == 0 || fill == 0
		m.Free(a)
		m.Free(b)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLowWaterWakeFires(t *testing.T) {
	m := newTestMem(16)
	var fired atomic.Int32
	m.SetLowWater(8, func() { fired.Add(1) })
	var pages []*Page
	// Draining down to (but not below) the mark must stay silent: the
	// callback fires when free < low, i.e. from the 9th allocation on.
	for i := 0; i < 8; i++ {
		p, err := m.Alloc(nil, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	if fired.Load() != 0 {
		t.Fatalf("wake fired %d times above the mark", fired.Load())
	}
	p, err := m.Alloc(nil, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	pages = append(pages, p)
	if fired.Load() == 0 {
		t.Fatal("wake did not fire below the low-water mark")
	}
	// Freeing back above the mark silences it again.
	for _, p := range pages {
		m.Free(p)
	}
	n := fired.Load()
	q, err := m.Alloc(nil, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	m.Free(q)
	if fired.Load() != n {
		t.Fatal("wake fired with plenty of memory free")
	}
}

func TestFreeCountTracksAllocFree(t *testing.T) {
	m := newTestMem(32)
	var pages []*Page
	for i := 0; i < 20; i++ {
		p, err := m.Alloc(nil, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
		if got := m.FreePages(); got != 32-i-1 {
			t.Fatalf("after %d allocs: free=%d", i+1, got)
		}
	}
	for i, p := range pages {
		m.Free(p)
		if got := m.FreePages(); got != 12+i+1 {
			t.Fatalf("after %d frees: free=%d", i+1, got)
		}
	}
	// The lock-free counter must agree with the actual lists.
	if m.FreePages() != m.FreeListLen() {
		t.Fatalf("counter %d != free lists %d", m.FreePages(), m.FreeListLen())
	}
}
