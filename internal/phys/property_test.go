package phys

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"uvm/internal/sim"
)

// Model-checked property tests for the per-CPU free-page caches: random
// Alloc/Free/activate/deactivate/reap sequences across k simulated CPUs
// are checked, after every operation, against a reference model the
// implementation cannot satisfy by accident. The invariants:
//
//  1. no frame is ever handed out twice while allocated (no
//     double-alloc), and allocation only fails when the model says the
//     machine is truly out of frames;
//  2. the lock-free free counter is exact at every step: FreePages ==
//     total - live, wherever the free frames sit;
//  3. the global pool's free lists and the magazines always PARTITION
//     the free set — every non-live frame appears in exactly one of
//     them, exactly once, and no live frame appears in either.
//
// The deterministic variant replays a fixed-seed op stream on one
// goroutine so a failure is a repeatable counterexample; the concurrent
// variant runs allocator/reaper workers under -race with a shared frame
// registry. FuzzAllocFree drives the same model from an arbitrary byte
// stream so `go test -fuzz` can search for new counterexamples, and
// TestAllocPropertyCatchesDoubleFree mutation-checks the checker itself
// against a seeded double-free.

// checkAllocInvariants verifies invariants 2 and 3 on a quiescent Mem
// against the set of live (allocated) frames. It returns an error
// instead of failing the test so the mutation test can assert that a
// seeded bug is actually detected.
func checkAllocInvariants(m *Mem, live map[*Page]bool) error {
	wantFree := m.total - len(live)
	if got := m.FreePages(); got != wantFree {
		return fmt.Errorf("free counter drift: FreePages=%d, model wants %d (total %d - live %d)",
			got, wantFree, m.total, len(live))
	}

	// Collect every frame reachable from a free structure, counting
	// multiplicity: shard free lists first, then the magazines.
	seen := make(map[*Page]int)
	poolN := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for p := sh.free.head; p != nil; p = p.next {
			seen[p]++
			poolN++
			if p.queue != QueueFree {
				sh.mu.Unlock()
				return fmt.Errorf("frame %v on shard %d free list with queue=%d, want QueueFree", p.PA, i, p.queue)
			}
		}
		sh.mu.Unlock()
	}
	cachedN := 0
	for ci, c := range m.caches {
		c.mu.Lock()
		for _, p := range c.pages {
			seen[p]++
			cachedN++
			if p.queue != QueueNone {
				c.mu.Unlock()
				return fmt.Errorf("frame %v in magazine %d with queue=%d, want QueueNone", p.PA, ci, p.queue)
			}
		}
		c.mu.Unlock()
	}

	if poolN+cachedN != wantFree {
		return fmt.Errorf("free set size: pool %d + magazines %d = %d, model wants %d",
			poolN, cachedN, poolN+cachedN, wantFree)
	}
	for p, n := range seen {
		if n > 1 {
			return fmt.Errorf("frame %v appears %d times in the free structures (double-free)", p.PA, n)
		}
		if live[p] {
			return fmt.Errorf("frame %v is both live and free", p.PA)
		}
	}
	// Every non-live frame must have been seen exactly once.
	for i := range m.frames {
		p := &m.frames[i]
		if !live[p] && seen[p] == 0 {
			return fmt.Errorf("frame %v is neither live nor in any free structure (leaked)", p.PA)
		}
	}
	return nil
}

// propMem boots a small machine with k magazines. Sized so the op
// streams exercise refill, drain, steal and exhaustion, not just the
// warm fast path.
func propMem(k, batch, npages int) *Mem {
	m := NewMem(sim.NewClock(), sim.DefaultCosts(), sim.NewStats(), npages)
	m.SetAllocCaches(k, batch)
	return m
}

// propStep applies one modelled operation chosen by op/arg to m,
// maintaining the live set and an ordered slice for deterministic victim
// selection. It reports invariant-1 violations via t.
func propStep(t testing.TB, m *Mem, op, arg int, live map[*Page]bool, order *[]*Page) {
	t.Helper()
	k := m.AllocCaches()
	switch op {
	case 0, 1, 2: // alloc on CPU arg (weighted: allocation dominates)
		pg, err := m.AllocCPU(arg%k, nil, 0, false)
		if err != nil {
			if len(live) != m.total {
				t.Fatalf("AllocCPU failed with %d of %d frames live: %v", len(live), m.total, err)
			}
			return
		}
		if live[pg] {
			t.Fatalf("frame %v double-allocated", pg.PA)
		}
		live[pg] = true
		*order = append(*order, pg)
	case 3, 4: // free a victim on CPU arg
		if len(*order) == 0 {
			return
		}
		i := arg % len(*order)
		pg := (*order)[i]
		(*order)[i] = (*order)[len(*order)-1]
		*order = (*order)[:len(*order)-1]
		delete(live, pg)
		m.FreeCPU(arg%k, pg)
	case 5: // queue traffic on a live page, so frees detach from queues
		if len(*order) == 0 {
			return
		}
		pg := (*order)[arg%len(*order)]
		if arg%2 == 0 {
			m.Activate(pg)
		} else {
			m.Deactivate(pg)
		}
	case 6: // reap every magazine back into the pool
		m.ReapCaches()
	}
}

// TestAllocPropertyDeterministic replays a fixed-seed op stream across 4
// simulated CPUs, checking the full invariant set after every step.
func TestAllocPropertyDeterministic(t *testing.T) {
	const (
		cpus   = 4
		batch  = 8
		npages = 96 // < cpus*2*batch+pool, so exhaustion and steal happen
		ops    = 6000
	)
	m := propMem(cpus, batch, npages)
	rng := sim.NewRNG(0xa110c)
	live := make(map[*Page]bool)
	var order []*Page
	for i := 0; i < ops; i++ {
		propStep(t, m, rng.Intn(7), rng.Intn(1<<30), live, &order)
		if err := checkAllocInvariants(m, live); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// Drain to empty and re-check: everything must come home.
	for _, pg := range order {
		m.FreeCPU(0, pg)
	}
	if err := checkAllocInvariants(m, map[*Page]bool{}); err != nil {
		t.Fatalf("after final drain: %v", err)
	}
	if got := m.FreePages(); got != npages {
		t.Fatalf("FreePages=%d after freeing everything, want %d", got, npages)
	}
	st := m.stats
	if st.Get(sim.CtrAllocRefills) == 0 || st.Get(sim.CtrAllocDrains) == 0 || st.Get(sim.CtrAllocReaps) == 0 {
		t.Errorf("op stream did not exercise the cache machinery: refills=%d drains=%d reaps=%d",
			st.Get(sim.CtrAllocRefills), st.Get(sim.CtrAllocDrains), st.Get(sim.CtrAllocReaps))
	}
	if st.Get(sim.CtrAllocHits) == 0 {
		t.Errorf("no magazine hits recorded over %d ops", ops)
	}
}

// TestAllocPropertyConcurrent runs the same op mix from 8 racing workers
// (each pinned to its own CPU slot, as real faulting goroutines hash to
// magazines) plus a reaper, under a shared registry that catches any
// frame handed to two owners at once. Exact counter equality is only
// checkable at quiescent points; the registry and the race detector
// carry the load mid-flight.
func TestAllocPropertyConcurrent(t *testing.T) {
	const (
		workers = 8
		batch   = 8
		npages  = 160 // keeps the pool under pressure: steal + ErrNoMemory paths run
		ops     = 4000
	)
	m := propMem(workers, batch, npages)
	var owner sync.Map // *Page -> worker id
	var failures atomic.Int32
	stop := make(chan struct{})
	var reaps sync.WaitGroup
	reaps.Add(1)
	go func() {
		defer reaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.ReapCaches()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(0xbeef + id))
			var mine []*Page
			for i := 0; i < ops; i++ {
				if rng.Intn(3) != 0 || len(mine) == 0 {
					pg, err := m.AllocCPU(id, nil, 0, false)
					if err != nil {
						continue // pool genuinely under pressure
					}
					if prev, loaded := owner.LoadOrStore(pg, id); loaded {
						t.Errorf("frame %v allocated to worker %d while owned by %v", pg.PA, id, prev)
						failures.Add(1)
						return
					}
					mine = append(mine, pg)
				} else {
					i := rng.Intn(len(mine))
					pg := mine[i]
					mine[i] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					owner.Delete(pg)
					m.FreeCPU(id, pg)
				}
			}
			for _, pg := range mine {
				owner.Delete(pg)
				m.FreeCPU(id, pg)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reaps.Wait()
	if failures.Load() > 0 {
		return
	}
	if err := checkAllocInvariants(m, map[*Page]bool{}); err != nil {
		t.Fatalf("quiescent check after concurrent run: %v", err)
	}
	if got := m.FreePages(); got != npages {
		t.Fatalf("FreePages=%d at quiescence, want %d", got, npages)
	}
}

// TestAllocPropertyCatchesDoubleFree mutation-checks the checker: a
// seeded double-free — the canonical allocator corruption — must be
// reported, both in the magazine layout and in the single-pool layout.
// If this test fails, the property suite has lost its teeth.
func TestAllocPropertyCatchesDoubleFree(t *testing.T) {
	for _, caches := range []int{4, 0} {
		t.Run(fmt.Sprintf("caches-%d", caches), func(t *testing.T) {
			m := NewMem(sim.NewClock(), sim.DefaultCosts(), sim.NewStats(), 64)
			if caches > 0 {
				m.SetAllocCaches(caches, 8)
			}
			live := make(map[*Page]bool)
			var pages []*Page
			for i := 0; i < 8; i++ {
				pg, err := m.AllocCPU(i, nil, 0, false)
				if err != nil {
					t.Fatal(err)
				}
				live[pg] = true
				pages = append(pages, pg)
			}
			victim := pages[3]
			delete(live, victim)
			m.FreeCPU(1, victim)
			if err := checkAllocInvariants(m, live); err != nil {
				t.Fatalf("healthy state flagged: %v", err)
			}
			m.FreeCPU(2, victim) // the seeded bug
			if err := checkAllocInvariants(m, live); err == nil {
				t.Fatal("checker did not detect a double-freed frame")
			} else {
				t.Logf("detected as expected: %v", err)
			}
		})
	}
}

// FuzzAllocFree drives the modelled op stream from an arbitrary byte
// slice: two bytes per op (opcode, argument), full invariant check after
// every step. The seed corpus covers each op kind; `go test -fuzz` mines
// for counterexamples.
func FuzzAllocFree(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 3, 0, 6, 0})
	f.Add([]byte{0, 1, 0, 2, 5, 1, 5, 2, 4, 9})
	f.Add([]byte{2, 7, 2, 8, 2, 9, 3, 3, 6, 0, 1, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			cpus   = 3
			batch  = 4
			npages = 40
		)
		m := propMem(cpus, batch, npages)
		live := make(map[*Page]bool)
		var order []*Page
		for i := 0; i+1 < len(data) && i < 512; i += 2 {
			propStep(t, m, int(data[i])%7, int(data[i+1]), live, &order)
			if err := checkAllocInvariants(m, live); err != nil {
				t.Fatalf("op %d (%d,%d): %v", i/2, data[i]%7, data[i+1], err)
			}
		}
	})
}
