package phys

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"uvm/internal/sim"
)

// Gate-orchestrated tests for the refill/use window in AllocCPU: after a
// magazine is refilled the magazine lock is dropped before the retry
// that pops a frame, so a concurrent ReapCaches (or a sibling's raid)
// can take the refilled frames back in between. The allocation must
// absorb that interference and retry, never hand out a reaped frame, and
// never spin forever once the interference stops. The SetAllocGate hook
// makes the interleaving deterministic instead of hoping a stress loop
// lands in a window that is nanoseconds wide.

// TestAllocGateReapBetweenRefillAndUse forces the worst case on a single
// goroutine: every refill is immediately undone by a full magazine reap,
// three times in a row, before the allocator is allowed to keep its
// frames. The retry loop must re-refill each time and succeed on the
// fourth attempt with the allocator none the wiser.
func TestAllocGateReapBetweenRefillAndUse(t *testing.T) {
	const (
		npages = 64
		batch  = 4
		reaps  = 3
	)
	m := NewMem(sim.NewClock(), sim.DefaultCosts(), sim.NewStats(), npages)
	m.SetAllocCaches(2, batch)
	var gateRuns atomic.Int32
	m.SetAllocGate(func() {
		if gateRuns.Add(1) <= reaps {
			if n := m.ReapCaches(); n == 0 {
				t.Errorf("gate run %d: nothing to reap — the gate did not fire between refill and use", gateRuns.Load())
			}
		}
	})

	pg, err := m.AllocCPU(0, nil, 0, false)
	if err != nil {
		t.Fatalf("AllocCPU with reap interference: %v", err)
	}
	m.SetAllocGate(nil)

	// The gate fires once per refilled-but-empty retry: reaps forced
	// retries plus the final successful pass.
	if got := gateRuns.Load(); got != reaps+1 {
		t.Errorf("gate ran %d times, want %d (one per refill)", got, reaps+1)
	}
	st := m.stats
	if got := st.Get(sim.CtrAllocReaps); got != reaps {
		t.Errorf("phys.alloc.reaps = %d, want %d", got, reaps)
	}
	if got := st.Get(sim.CtrAllocRefills); got != reaps+1 {
		t.Errorf("phys.alloc.refills = %d, want %d", got, reaps+1)
	}
	if got := st.Get(sim.CtrAllocHits); got != 1 {
		t.Errorf("phys.alloc.hits = %d, want 1", got)
	}
	// The interference must not have corrupted the free accounting: one
	// frame live, everything else in exactly one free structure.
	if err := checkAllocInvariants(m, map[*Page]bool{pg: true}); err != nil {
		t.Fatal(err)
	}
	m.FreeCPU(0, pg)
	if err := checkAllocInvariants(m, map[*Page]bool{}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocGateExhaustionStaysNoMemory pins down the failure contract
// under interference: when the machine is truly out of frames, reap
// pressure in the refill window must surface as ErrNoMemory, not a hang
// or a phantom frame.
func TestAllocGateExhaustionStaysNoMemory(t *testing.T) {
	const npages = 16
	m := NewMem(sim.NewClock(), sim.DefaultCosts(), sim.NewStats(), npages)
	m.SetAllocCaches(2, 4)
	live := make([]*Page, 0, npages)
	for {
		pg, err := m.AllocCPU(0, nil, 0, false)
		if err != nil {
			if !errors.Is(err, ErrNoMemory) {
				t.Fatalf("exhaustion returned %v, want ErrNoMemory", err)
			}
			break
		}
		live = append(live, pg)
	}
	if len(live) != npages {
		t.Fatalf("allocated %d frames before exhaustion, want %d", len(live), npages)
	}
	if _, err := m.AllocCPU(1, nil, 0, false); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("second slot got %v, want ErrNoMemory", err)
	}
	for _, pg := range live {
		m.FreeCPU(0, pg)
	}
	if err := checkAllocInvariants(m, map[*Page]bool{}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocGateConcurrentReapRace runs 4 allocating workers whose every
// refill window yields to the scheduler while a dedicated reaper
// continuously flushes the magazines — maximum pressure on the
// refill/use race, under -race in CI. Workers must always either get a
// frame or a truthful ErrNoMemory, and the free set must be intact at
// quiescence.
func TestAllocGateConcurrentReapRace(t *testing.T) {
	const (
		workers = 4
		npages  = 48
		ops     = 500
	)
	m := NewMem(sim.NewClock(), sim.DefaultCosts(), sim.NewStats(), npages)
	m.SetAllocCaches(workers, 4)
	// Yield in every 8th refill window: enough scheduling points for the
	// reaper to land inside the window, without grinding the run to a
	// crawl under the race detector on small hosts.
	var gateN atomic.Int32
	m.SetAllocGate(func() {
		if gateN.Add(1)%8 == 0 {
			runtime.Gosched()
		}
	})

	stop := make(chan struct{})
	var reaps sync.WaitGroup
	reaps.Add(1)
	go func() {
		defer reaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.ReapCaches()
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := sim.NewRNG(0x6a7e + uint64(id)*7919)
			var mine []*Page
			for i := 0; i < ops; i++ {
				if rng.Intn(2) == 0 && len(mine) > 0 {
					j := rng.Intn(len(mine))
					pg := mine[j]
					mine[j] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					m.FreeCPU(id, pg)
					continue
				}
				pg, err := m.AllocCPU(id, nil, 0, false)
				if err != nil {
					continue
				}
				mine = append(mine, pg)
			}
			for _, pg := range mine {
				m.FreeCPU(id, pg)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reaps.Wait()
	m.SetAllocGate(nil)

	if err := checkAllocInvariants(m, map[*Page]bool{}); err != nil {
		t.Fatal(err)
	}
	if got := m.FreePages(); got != npages {
		t.Fatalf("FreePages=%d at quiescence, want %d", got, npages)
	}
}
