package phys

// Per-CPU free-page caches ("magazines"): the allocator fast path that
// removes the global free pool from the fault path entirely.
//
// With caches enabled, each allocating goroutine hashes to one of a
// small fixed set of magazines — private stacks of free frames guarded
// by their own mutexes — and allocation/free traffic stays on that
// magazine. An empty magazine refills with a batch of frames taken from
// the global pool in one acquisition; an over-full one drains a batch
// back. Because independent goroutines hash to different magazines, the
// common case takes one uncontended lock, and the global queue shards
// see only 1/batch of the allocation traffic.
//
// The global pool remains the sole watermark authority: the lock-free
// free counter counts every free frame wherever it sits (pool or
// magazine), Alloc still fires the low-water doorbell from the same
// place, and the pagedaemon's wakeup/condvar protocol is unchanged. When
// the pool runs dry the allocator raids sibling magazines (TryLock only,
// so magazine-to-magazine acquisition can never form a blocking cycle),
// and reclaim can reap every magazine back into the pool when a round
// cannot otherwise reach low water — so frames parked in an idle
// goroutine's magazine are never out of reach.
//
// Lock order within phys: a magazine lock nests above the queue-shard
// locks (refill, drain and reap take shard locks while holding the
// magazine), and sibling magazines are only ever TryLocked. Shard locks
// remain leaves.
//
// Magazine selection is an affinity hint, not a correctness input: the
// goroutine hash spreads concurrent allocators across magazines the way
// per-CPU caches spread across processors, but any goroutine may use any
// magazine at any time (see cpuSlot). Single-threaded runs that need
// byte-determinism run with caches disabled (AllocCaches=0), which keeps
// the exact single-pool allocation order.

import (
	"sync"
	"unsafe"

	"uvm/internal/param"
)

// defaultAllocBatch is the refill/drain transfer size when
// SetAllocCaches is given batch <= 0: large enough to amortise the
// global-pool acquisition over many fast-path allocations, small enough
// that an idle magazine strands at most 2×batch frames.
const defaultAllocBatch = 16

// allocCache is one magazine: a private LIFO of free frames. LIFO keeps
// the hot end cache-warm, exactly like a CPU-local page cache.
type allocCache struct {
	//uvm:lock magazine
	mu    sync.Mutex
	pages []*Page
}

// SetAllocCaches configures the per-CPU free-page caches: n magazines
// with refill/drain batches of batch pages (batch <= 0 selects the
// default). n <= 0 disables the caches, restoring the exact single-pool
// allocation layout — the byte-deterministic configuration the paper
// experiments run with. Must be called at boot, before any allocation
// runs concurrently; magazines start empty and fill lazily on first use.
func (m *Mem) SetAllocCaches(n, batch int) {
	if n <= 0 {
		m.caches = nil
		return
	}
	if batch <= 0 {
		batch = defaultAllocBatch
	}
	m.caches = make([]*allocCache, n)
	for i := range m.caches {
		m.caches[i] = &allocCache{pages: make([]*Page, 0, 2*batch)}
	}
	m.allocBatch = batch
}

// AllocCaches returns the number of configured magazines (0 when the
// per-CPU caches are disabled and allocation runs on the global pool).
func (m *Mem) AllocCaches() int { return len(m.caches) }

// CachedFreePages counts the free frames currently parked in magazines.
// Together with FreeListLen it partitions FreePages when the system is
// quiescent; the property tests assert exactly that.
func (m *Mem) CachedFreePages() int {
	n := 0
	for _, c := range m.caches {
		c.mu.Lock()
		n += len(c.pages)
		c.mu.Unlock()
	}
	return n
}

// SetAllocGate installs a test hook that runs inside AllocCPU between a
// magazine refill and the use of the refilled frames, with no phys locks
// held. The allocator-vs-reap race tests use it to reap (or raid) the
// magazine in that window; the allocation must absorb the interference
// and retry. Pass nil to remove. Must not be set while allocations run.
func (m *Mem) SetAllocGate(fn func()) { m.allocGate = fn }

// cpuSlot returns a goroutine-affine index in [0, n): the address of a
// stack local, mixed through SplitMix64's finaliser. Distinct goroutines
// live on distinct stacks, so concurrent allocators spread across
// magazines; a goroutine whose stack moves simply migrates to another
// magazine, which affects locality, never correctness.
func cpuSlot(n int) int {
	var marker byte
	h := uint64(uintptr(unsafe.Pointer(&marker)))
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	return int(h % uint64(n))
}

// lockCache acquires a magazine, counting the acquisition — and whether
// it had to wait — in the phys.alloc.* stats.
func (m *Mem) lockCache(c *allocCache) {
	if !c.mu.TryLock() {
		m.ctrAllocContended.Inc()
		c.mu.Lock()
	}
	m.ctrAllocAcquires.Inc()
}

// lockShardAlloc acquires a queue shard on the allocation path with the
// same counting. (The free path's detach acquisition is queue
// bookkeeping, not allocator traffic, and is deliberately not counted.)
func (m *Mem) lockShardAlloc(sh *memShard) {
	if !sh.mu.TryLock() {
		m.ctrAllocContended.Inc()
		sh.mu.Lock()
	}
	m.ctrAllocAcquires.Inc()
}

// AllocCPU is Alloc pinned to the magazine of a specific CPU slot (the
// slot is taken mod the configured cache count). Alloc routes here with
// a goroutine-affine slot; tests drive k simulated CPUs explicitly. With
// caches disabled it is exactly Alloc.
func (m *Mem) AllocCPU(cpu int, owner any, off param.PageOff, zero bool) (*Page, error) {
	if len(m.caches) == 0 {
		return m.Alloc(owner, off, zero)
	}
	c := m.caches[uint(cpu)%uint(len(m.caches))]
	var p *Page
	for {
		m.lockCache(c)
		if n := len(c.pages); n > 0 {
			p = c.pages[n-1]
			c.pages = c.pages[:n-1]
			m.ctrAllocHits.Inc()
			c.mu.Unlock()
			break
		}
		refilled := m.refillLocked(c)
		if refilled == 0 {
			// Pool dry: raid sibling magazines before giving up, so frames
			// parked with idle goroutines do not fake an out-of-memory.
			refilled = m.stealLocked(c)
		}
		c.mu.Unlock()
		if refilled == 0 {
			return nil, ErrNoMemory
		}
		// Between the refill and the retry the magazine is unlocked: a
		// reap (or a sibling's raid) may take the frames back. The retry
		// loop absorbs that; the gate lets tests force the interleaving.
		if gate := m.allocGate; gate != nil {
			gate()
		}
	}
	m.finishAlloc(p, owner, off, zero)
	return p, nil
}

// refillLocked moves up to one batch of frames from the global pool into
// c, which the caller holds locked. It rotates the starting shard like
// Alloc so concurrent refills do not convoy on shard 0. Returns the
// number of frames obtained.
func (m *Mem) refillLocked(c *allocCache) int {
	want := m.allocBatch
	start := int(m.allocCursor.Add(1) - 1)
	got := 0
	for i := 0; i < numShards && got < want; i++ {
		sh := &m.shards[(start+i)%numShards]
		m.lockShardAlloc(sh)
		for got < want {
			p := sh.free.popHead()
			if p == nil {
				break
			}
			p.queue = QueueNone
			c.pages = append(c.pages, p)
			got++
		}
		sh.mu.Unlock()
	}
	if got > 0 {
		m.ctrAllocRefills.Inc()
	}
	return got
}

// stealLocked raids sibling magazines for up to one batch of frames.
// The caller holds c's lock; siblings are TryLocked only, so two
// goroutines raiding each other cannot deadlock — a busy sibling is
// skipped, and a fruitless raid surfaces as ErrNoMemory, which sends
// the caller to reclaim (whose reap will flush every magazine).
func (m *Mem) stealLocked(c *allocCache) int {
	want := m.allocBatch
	got := 0
	for _, sib := range m.caches {
		if sib == c || got >= want {
			continue
		}
		if !sib.mu.TryLock() {
			continue
		}
		for n := len(sib.pages); n > 0 && got < want; n = len(sib.pages) {
			c.pages = append(c.pages, sib.pages[n-1])
			sib.pages = sib.pages[:n-1]
			got++
		}
		sib.mu.Unlock()
	}
	if got > 0 {
		m.ctrAllocSteals.Inc()
	}
	return got
}

// FreeCPU is Free pinned to the magazine of a specific CPU slot: the
// frame is parked in that magazine after a batch is drained back to the
// pool if it is over-full. Free routes here with a goroutine-affine
// slot; tests drive k simulated CPUs explicitly. With caches disabled
// it is exactly Free.
func (m *Mem) FreeCPU(cpu int, p *Page) {
	if len(m.caches) == 0 {
		m.Free(p)
		return
	}
	m.freePrep(p)
	sh := m.shardOf(p)
	sh.mu.Lock()
	sh.detachLocked(p)
	sh.mu.Unlock()
	c := m.caches[uint(cpu)%uint(len(m.caches))]
	c.mu.Lock()
	if len(c.pages) >= 2*m.allocBatch {
		m.drainLocked(c, m.allocBatch)
	}
	c.pages = append(c.pages, p)
	c.mu.Unlock()
	m.freeCnt.Add(1)
}

// drainLocked returns n frames from c (held locked by the caller) to
// their home shards' free lists, grouped so each shard is locked at most
// once per drain.
func (m *Mem) drainLocked(c *allocCache, n int) {
	if n > len(c.pages) {
		n = len(c.pages)
	}
	if n == 0 {
		return
	}
	// Drain the cold (oldest) end, keeping the hot end in the magazine.
	victims := make([]*Page, n)
	copy(victims, c.pages[:n])
	c.pages = append(c.pages[:0], c.pages[n:]...)
	m.ctrAllocDrains.Inc()
	for sh := 0; sh < numShards; sh++ {
		locked := false
		for _, p := range victims {
			if int(p.home) != sh {
				continue
			}
			if !locked {
				m.shards[sh].mu.Lock()
				locked = true
			}
			p.queue = QueueFree
			m.shards[sh].free.pushTail(p)
		}
		if locked {
			m.shards[sh].mu.Unlock()
		}
	}
}

// ReapCaches flushes every magazine back into the global free lists and
// returns the number of frames moved. Reclaim calls it when a round
// cannot otherwise reach low water: the reaped frames were already
// counted free (the watermark never lied), but after the reap they are
// reachable from the global pool instead of parked with idle goroutines.
// Safe to call at any time from any goroutine; magazines are locked one
// at a time.
func (m *Mem) ReapCaches() int {
	moved := 0
	for _, c := range m.caches {
		c.mu.Lock()
		n := len(c.pages)
		m.drainLocked(c, n)
		moved += n
		c.mu.Unlock()
	}
	if moved > 0 {
		m.ctrAllocReaps.Inc()
	}
	return moved
}

// finishAlloc applies the common post-allocation protocol to a frame
// just taken off a free structure: charge the cost, maintain the
// lock-free free counter and fire the low-water doorbell, stamp the
// owner, and reset the state bits. Shared by Alloc and AllocCPU so the
// watermark protocol is identical on both paths.
func (m *Mem) finishAlloc(p *Page, owner any, off param.PageOff, zero bool) {
	if free := m.freeCnt.Add(-1); free < m.lowWater.Load() {
		if wake, ok := m.lowWake.Load().(func()); ok {
			wake()
		}
	}
	m.clock.Advance(m.costs.PageAlloc)
	p.SetOwner(owner, off)
	p.Dirty.Store(false)
	p.Referenced.Store(false)
	p.Busy.Store(false)
	p.WireCount.Store(0)
	p.LoanCount.Store(0)
	if zero {
		m.Zero(p)
	}
}
