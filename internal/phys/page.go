// Package phys models physical memory: the vm_page array, the free list,
// and the active/inactive page queues that the pagedaemons of both VM
// systems scan.
//
// Unlike a pure counter model, every frame carries a real 4 KB data
// buffer. Copy-on-write, page loanout, swap round-trips and file I/O are
// all verified against actual bytes by the test suites of the higher
// layers.
package phys

import (
	"errors"
	"fmt"
	"sync"

	"uvm/internal/param"
	"uvm/internal/sim"
)

// ErrNoMemory is returned by Alloc when the free list is empty. Callers
// (the fault handlers) react by waking their pagedaemon and retrying.
var ErrNoMemory = errors.New("phys: out of physical memory")

// QueueKind identifies which paging queue a page is on.
type QueueKind uint8

const (
	QueueNone QueueKind = iota
	QueueFree
	QueueActive
	QueueInactive
	QueueWired // not a real queue: wired pages are off all queues
)

// Page is one physical page frame (a vm_page structure).
type Page struct {
	PA   param.PAddr
	Data []byte // always param.PageSize bytes

	// Identity: which higher-level entity owns this frame. Exactly one of
	// these is meaningful for an allocated page; both are nil for a free
	// page. The concrete types belong to the VM system that allocated the
	// page (a memory object or an anon).
	Owner any
	Off   param.PageOff // page-aligned offset within Owner

	// State bits maintained by the VM systems and the pmap layer.
	Dirty      bool
	Referenced bool
	Busy       bool // page is being paged in/out
	WireCount  int
	LoanCount  int // UVM page loanout: >0 means read-only shared loan

	queue      QueueKind
	prev, next *Page
}

// Wired reports whether the page is wired (must stay resident).
func (p *Page) Wired() bool { return p.WireCount > 0 }

// Loaned reports whether the page is currently loaned out.
func (p *Page) Loaned() bool { return p.LoanCount > 0 }

// Queue returns the queue the page is currently on.
func (p *Page) Queue() QueueKind { return p.queue }

func (p *Page) String() string {
	return fmt.Sprintf("page(pa=%#x owner=%T off=%#x q=%d wire=%d loan=%d dirty=%v)",
		p.PA, p.Owner, p.Off, p.queue, p.WireCount, p.LoanCount, p.Dirty)
}

// pageList is an intrusive doubly-linked list of pages.
type pageList struct {
	head, tail *Page
	n          int
}

func (l *pageList) pushTail(p *Page) {
	p.prev, p.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = p
	} else {
		l.head = p
	}
	l.tail = p
	l.n++
}

func (l *pageList) remove(p *Page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		l.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		l.tail = p.prev
	}
	p.prev, p.next = nil, nil
	l.n--
}

func (l *pageList) popHead() *Page {
	p := l.head
	if p != nil {
		l.remove(p)
	}
	return p
}

// Mem is the physical memory of the simulated machine.
type Mem struct {
	clock *sim.Clock
	costs *sim.Costs
	stats *sim.Stats

	mu       sync.Mutex
	total    int
	frames   []Page
	free     pageList
	active   pageList
	inactive pageList
}

// NewMem boots a machine with npages page frames. All frame data buffers
// are carved from one arena allocation.
func NewMem(clock *sim.Clock, costs *sim.Costs, stats *sim.Stats, npages int) *Mem {
	if npages <= 0 {
		panic("phys: non-positive memory size")
	}
	m := &Mem{clock: clock, costs: costs, stats: stats, total: npages}
	arena := make([]byte, npages*param.PageSize)
	m.frames = make([]Page, npages)
	for i := range m.frames {
		p := &m.frames[i]
		p.PA = param.PAddr(i) << param.PageShift
		p.Data = arena[i*param.PageSize : (i+1)*param.PageSize : (i+1)*param.PageSize]
		p.queue = QueueFree
		m.free.pushTail(p)
	}
	return m
}

// TotalPages returns the amount of physical memory in pages.
func (m *Mem) TotalPages() int { return m.total }

// FreePages returns the current size of the free list.
func (m *Mem) FreePages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.free.n
}

// ActivePages and InactivePages return the queue depths.
func (m *Mem) ActivePages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active.n
}

func (m *Mem) InactivePages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inactive.n
}

// Alloc takes a frame off the free list. If zero is set the frame is
// zero-filled (and the zeroing cost charged); otherwise its previous
// contents are undefined, exactly like a real free-list page.
func (m *Mem) Alloc(owner any, off param.PageOff, zero bool) (*Page, error) {
	m.mu.Lock()
	p := m.free.popHead()
	m.mu.Unlock()
	if p == nil {
		return nil, ErrNoMemory
	}
	m.clock.Advance(m.costs.PageAlloc)
	p.queue = QueueNone
	p.Owner = owner
	p.Off = off
	p.Dirty = false
	p.Referenced = false
	p.Busy = false
	p.WireCount = 0
	p.LoanCount = 0
	if zero {
		m.Zero(p)
	}
	return p, nil
}

// Free returns a frame to the free list. The caller must have removed all
// mappings and queue membership is cleared here.
func (m *Mem) Free(p *Page) {
	if p.WireCount > 0 {
		panic("phys: freeing wired page " + p.String())
	}
	if p.LoanCount > 0 {
		panic("phys: freeing loaned page " + p.String())
	}
	m.clock.Advance(m.costs.PageFree)
	m.mu.Lock()
	m.detachLocked(p)
	p.Owner = nil
	p.Off = 0
	p.Dirty = false
	p.queue = QueueFree
	m.free.pushTail(p)
	m.mu.Unlock()
}

// Zero clears a frame's data, charging the zeroing cost.
func (m *Mem) Zero(p *Page) {
	m.clock.Advance(m.costs.PageZero)
	m.stats.Inc(sim.CtrPagesZeroed)
	for i := range p.Data {
		p.Data[i] = 0
	}
}

// CopyData copies src's data into dst, charging the 4 KB copy cost.
func (m *Mem) CopyData(dst, src *Page) {
	m.clock.Advance(m.costs.PageCopy)
	m.stats.Inc(sim.CtrPagesCopied)
	copy(dst.Data, src.Data)
}

// Activate puts the page on the active queue (most recently used end).
func (m *Mem) Activate(p *Page) {
	m.mu.Lock()
	m.detachLocked(p)
	p.queue = QueueActive
	m.active.pushTail(p)
	m.mu.Unlock()
}

// Deactivate moves the page to the inactive queue, making it a pageout
// candidate.
func (m *Mem) Deactivate(p *Page) {
	m.mu.Lock()
	m.detachLocked(p)
	p.queue = QueueInactive
	m.inactive.pushTail(p)
	m.mu.Unlock()
}

// Dequeue removes the page from whatever paging queue it is on (used when
// wiring a page or starting pageout on it).
func (m *Mem) Dequeue(p *Page) {
	m.mu.Lock()
	m.detachLocked(p)
	p.queue = QueueNone
	m.mu.Unlock()
}

func (m *Mem) detachLocked(p *Page) {
	switch p.queue {
	case QueueFree:
		m.free.remove(p)
	case QueueActive:
		m.active.remove(p)
	case QueueInactive:
		m.inactive.remove(p)
	}
	p.queue = QueueNone
}

// ScanInactive calls fn on up to max pages from the head (least recently
// used end) of the inactive queue. fn runs without the memory lock held so
// it may call back into Mem; the scan snapshots candidates first, skipping
// busy, wired and loaned pages. This is the pagedaemon's entry point.
func (m *Mem) ScanInactive(max int, fn func(*Page) bool) {
	m.mu.Lock()
	var cand []*Page
	for p := m.inactive.head; p != nil && len(cand) < max; p = p.next {
		if p.Busy || p.WireCount > 0 || p.LoanCount > 0 {
			continue
		}
		cand = append(cand, p)
	}
	m.mu.Unlock()
	for _, p := range cand {
		if !fn(p) {
			return
		}
	}
}

// RefillInactive moves up to n pages from the head of the active queue to
// the inactive queue (the clock-hand "page aging" step both pagedaemons
// perform when the inactive queue runs short). Referenced pages get a
// second chance: their reference bit is cleared and they return to the
// active tail.
func (m *Mem) RefillInactive(n int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	moved := 0
	scanned := 0
	limit := m.active.n
	for moved < n && scanned < limit {
		p := m.active.popHead()
		if p == nil {
			break
		}
		scanned++
		if p.WireCount > 0 {
			p.queue = QueueNone
			continue
		}
		if p.Referenced {
			p.Referenced = false
			p.queue = QueueActive
			m.active.pushTail(p)
			continue
		}
		p.queue = QueueInactive
		m.inactive.pushTail(p)
		moved++
	}
	return moved
}
