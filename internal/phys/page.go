// Package phys models physical memory: the vm_page array, the free list,
// and the active/inactive page queues that the pagedaemons of both VM
// systems scan.
//
// Unlike a pure counter model, every frame carries a real 4 KB data
// buffer. Copy-on-write, page loanout, swap round-trips and file I/O are
// all verified against actual bytes by the test suites of the higher
// layers.
//
// Concurrency: the queues are sharded — each frame has a home shard
// (by frame number) holding its free/active/inactive list membership
// under a per-shard mutex, so page allocation and LRU queue traffic from
// independent faulting goroutines does not serialise on one lock. A
// global monotonic sequence number is stamped on every queue insertion,
// and the pagedaemon entry points (ScanInactive, RefillInactive) merge
// the shards in sequence order — the observable LRU order is therefore
// identical to a single global queue, which keeps single-threaded
// simulations deterministic and bit-for-bit comparable across runs.
//
// Allocation has two layouts. With the per-CPU free-page caches off
// (the default, and the byte-deterministic configuration the paper
// experiments run with) Alloc and Free work directly on the sharded
// free lists — the single global pool. With SetAllocCaches, allocating
// goroutines are spread across private magazines of free frames that
// refill from and drain to that pool in batches (see alloccache.go), so
// the pool stops being a machine-wide serialisation point; the pool is
// still where every frame ultimately lives and the only layer reclaim
// has to understand.
//
// Either way, the free-page count is a lock-free atomic maintained by
// the allocation paths; it counts every free frame — pooled or parked
// in a magazine — so watermark checks never touch the shard locks and
// never miss cached frames. SetLowWater registers a wakeup callback
// fired from allocation whenever the count drops below the low-water
// mark; this is how the asynchronous pagedaemon is woken ahead of
// actual exhaustion.
//
// Page state bits (Dirty, Referenced, Busy, WireCount, LoanCount) are
// atomics: they are read lock-free by queue scans while being written
// under the owning VM structure's lock. Page *identity* (Owner, Off) is
// guarded by a small per-page mutex so the pagedaemon can safely chase a
// page's owner while loan-break and teardown paths re-home or orphan the
// frame.
package phys

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"uvm/internal/param"
	"uvm/internal/sim"
)

// ErrNoMemory is returned by Alloc when the free list is empty. Callers
// (the fault handlers) react by waking their pagedaemon and retrying.
var ErrNoMemory = errors.New("phys: out of physical memory")

// QueueKind identifies which paging queue a page is on.
type QueueKind uint8

const (
	QueueNone QueueKind = iota
	QueueFree
	QueueActive
	QueueInactive
	QueueWired // not a real queue: wired pages are off all queues
)

// numShards is the page-queue shard count. A small power of two: enough
// to spread queue traffic from concurrently faulting goroutines, few
// enough that merge scans stay cheap.
const numShards = 16

// Page is one physical page frame (a vm_page structure).
type Page struct {
	PA   param.PAddr
	Data []byte // always param.PageSize bytes

	// Identity: which higher-level entity owns this frame. Exactly one of
	// these is meaningful for an allocated page; both are zero for a free
	// page. The concrete types belong to the VM system that allocated the
	// page (a memory object or an anon). Guarded by mu, because loan
	// orphaning and loan-break change a page's owner while other paths
	// (the pagedaemon, loan teardown) are inspecting it.
	//uvm:lock pageident
	mu    sync.Mutex
	owner any
	off   param.PageOff

	// State bits maintained by the VM systems and the pmap layer.
	// Atomics: written under the owning structure's lock, read lock-free
	// by queue scans and assertions.
	Dirty      atomic.Bool
	Referenced atomic.Bool
	Busy       atomic.Bool // page is being paged in/out
	WireCount  atomic.Int32
	LoanCount  atomic.Int32 // UVM page loanout: >0 means read-only shared loan

	home       uint8  // queue shard this frame always lives in
	seq        uint64 // global LRU stamp of the last queue insertion
	queue      QueueKind
	prev, next *Page
}

// Owner returns the structure that currently owns this frame (nil for a
// free or orphaned frame).
func (p *Page) Owner() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.owner
}

// Off returns the page-aligned offset of this frame within its owner.
func (p *Page) Off() param.PageOff {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.off
}

// SetOwner re-homes the frame to a new owner (or orphans it with nil).
func (p *Page) SetOwner(owner any, off param.PageOff) {
	p.mu.Lock()
	p.owner = owner
	p.off = off
	p.mu.Unlock()
}

// WithIdentity runs fn with the page identity lock held, passing the
// current owner. fn may call SetOwnerLocked-style updates via the
// returned owner reference only; it must not take other page locks.
// This is the primitive behind race-free loan teardown: "drop my loan
// and free the frame if the owner has also gone" must be one atomic
// decision.
func (p *Page) WithIdentity(fn func(owner any)) {
	p.mu.Lock()
	fn(p.owner)
	p.mu.Unlock()
}

// Orphan clears the owner. It must only be called from within a
// WithIdentity callback (which holds the identity lock); the borrowers
// of a loaned frame keep the data alive until the last loan drops.
func (p *Page) Orphan() { p.owner = nil }

// Wired reports whether the page is wired (must stay resident).
func (p *Page) Wired() bool { return p.WireCount.Load() > 0 }

// Loaned reports whether the page is currently loaned out.
func (p *Page) Loaned() bool { return p.LoanCount.Load() > 0 }

// Queue returns the queue the page is currently on.
func (p *Page) Queue() QueueKind { return p.queue }

// String renders the page's identity and state for debug output.
func (p *Page) String() string {
	return fmt.Sprintf("page(pa=%#x owner=%T off=%#x q=%d wire=%d loan=%d dirty=%v)",
		p.PA, p.Owner(), p.Off(), p.queue, p.WireCount.Load(), p.LoanCount.Load(), p.Dirty.Load())
}

// pageList is an intrusive doubly-linked list of pages.
type pageList struct {
	head, tail *Page
	n          int
}

func (l *pageList) pushTail(p *Page) {
	p.prev, p.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = p
	} else {
		l.head = p
	}
	l.tail = p
	l.n++
}

func (l *pageList) remove(p *Page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		l.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		l.tail = p.prev
	}
	p.prev, p.next = nil, nil
	l.n--
}

func (l *pageList) popHead() *Page {
	p := l.head
	if p != nil {
		l.remove(p)
	}
	return p
}

// memShard is one slice of the page queues: every frame belongs to
// exactly one shard, and all of that frame's queue membership is
// guarded by the shard's mutex.
type memShard struct {
	//uvm:lock pageq
	mu       sync.Mutex
	free     pageList
	active   pageList
	inactive pageList
}

// Mem is the physical memory of the simulated machine.
type Mem struct {
	clock *sim.Clock
	costs *sim.Costs
	stats *sim.Stats

	total  int
	frames []Page
	shards [numShards]memShard

	seqCtr      atomic.Uint64 // global LRU stamp source
	allocCursor atomic.Uint64 // round-robin shard hint for Alloc

	freeCnt  atomic.Int64 // lock-free count of free frames, pooled or cached
	lowWater atomic.Int64 // free-page threshold that fires lowWake
	lowWake  atomic.Value // func(): pagedaemon doorbell, must not block

	// Per-CPU free-page caches (alloccache.go). Empty caches = disabled:
	// allocation runs on the global pool exactly as before the magazines
	// existed. allocGate is the refill-to-use test hook.
	caches     []*allocCache
	allocBatch int
	allocGate  func()

	// Cached stat handles for the allocation path (phys.alloc.*): hot
	// enough that the name lookup per bump would show up.
	ctrAllocAcquires  sim.Counter
	ctrAllocContended sim.Counter
	ctrAllocHits      sim.Counter
	ctrAllocRefills   sim.Counter
	ctrAllocDrains    sim.Counter
	ctrAllocSteals    sim.Counter
	ctrAllocReaps     sim.Counter
}

// NewMem boots a machine with npages page frames. All frame data buffers
// are carved from one arena allocation.
func NewMem(clock *sim.Clock, costs *sim.Costs, stats *sim.Stats, npages int) *Mem {
	if npages <= 0 {
		panic("phys: non-positive memory size")
	}
	m := &Mem{clock: clock, costs: costs, stats: stats, total: npages}
	m.ctrAllocAcquires = stats.Counter(sim.CtrAllocAcquires)
	m.ctrAllocContended = stats.Counter(sim.CtrAllocContended)
	m.ctrAllocHits = stats.Counter(sim.CtrAllocHits)
	m.ctrAllocRefills = stats.Counter(sim.CtrAllocRefills)
	m.ctrAllocDrains = stats.Counter(sim.CtrAllocDrains)
	m.ctrAllocSteals = stats.Counter(sim.CtrAllocSteals)
	m.ctrAllocReaps = stats.Counter(sim.CtrAllocReaps)
	arena := make([]byte, npages*param.PageSize)
	m.frames = make([]Page, npages)
	for i := range m.frames {
		p := &m.frames[i]
		p.PA = param.PAddr(i) << param.PageShift
		p.Data = arena[i*param.PageSize : (i+1)*param.PageSize : (i+1)*param.PageSize]
		p.home = uint8(i % numShards)
		p.queue = QueueFree
		m.shards[p.home].free.pushTail(p)
	}
	m.freeCnt.Store(int64(npages))
	return m
}

// SetLowWater registers a low-water mark and a wakeup callback: whenever
// an allocation leaves fewer than pages frames free, wake is called from
// Alloc (with no queue locks held). wake must be cheap and non-blocking —
// the pagedaemon's doorbell is a non-blocking channel send. Passing 0
// disables the watermark.
func (m *Mem) SetLowWater(pages int, wake func()) {
	m.lowWater.Store(int64(pages))
	if wake != nil {
		m.lowWake.Store(wake)
	}
}

func (m *Mem) shardOf(p *Page) *memShard { return &m.shards[p.home] }

// TotalPages returns the amount of physical memory in pages.
func (m *Mem) TotalPages() int { return m.total }

// FreePages returns the current number of free frames, wherever they
// sit — the global pool plus every per-CPU magazine. It reads the
// lock-free counter, so watermark polls never contend with allocators.
func (m *Mem) FreePages() int { return int(m.freeCnt.Load()) }

// ActivePages and InactivePages return the queue depths.
func (m *Mem) ActivePages() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += sh.active.n
		sh.mu.Unlock()
	}
	return n
}

// InactivePages counts the pages currently on the inactive queues.
func (m *Mem) InactivePages() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += sh.inactive.n
		sh.mu.Unlock()
	}
	return n
}

// BusyPages sweeps every frame and returns the ones with Busy set. With
// the system quiescent (no faults running, pipelines drained, Shutdown
// complete) the answer must be empty: a Busy page at that point is a
// leaked claim from an error path that forgot to release it. The
// fault-injection suite and the experiment matrix assert exactly that at
// end of run.
func (m *Mem) BusyPages() []*Page {
	var busy []*Page
	for i := range m.frames {
		if m.frames[i].Busy.Load() {
			busy = append(busy, &m.frames[i])
		}
	}
	return busy
}

// ForEachFrame visits every physical frame in PA order until fn returns
// false. It takes no locks — the visitor sees each frame's atomics
// (owner, state bits) at whatever instant it reaches them, like
// BusyPages — so it suits lazy sweeps that re-verify under the owner
// lock before acting (the syncer's dirty-page trickle).
func (m *Mem) ForEachFrame(fn func(*Page) bool) {
	for i := range m.frames {
		if !fn(&m.frames[i]) {
			return
		}
	}
}

// Alloc takes a free frame. If zero is set the frame is zero-filled
// (and the zeroing cost charged); otherwise its previous contents are
// undefined, exactly like a real free-list page.
//
// With the per-CPU caches enabled the frame comes from the calling
// goroutine's magazine (AllocCPU with a goroutine-affine slot) and the
// global pool is only touched on a refill. Without them the pool is the
// allocator: allocation rotates across the queue shards so concurrent
// allocators rarely meet on one lock, and a shard whose free list is
// empty falls through to the next.
func (m *Mem) Alloc(owner any, off param.PageOff, zero bool) (*Page, error) {
	if len(m.caches) > 0 {
		return m.AllocCPU(cpuSlot(len(m.caches)), owner, off, zero)
	}
	start := int(m.allocCursor.Add(1) - 1)
	var p *Page
	for i := 0; i < numShards; i++ {
		sh := &m.shards[(start+i)%numShards]
		m.lockShardAlloc(sh)
		p = sh.free.popHead()
		if p != nil {
			p.queue = QueueNone
			sh.mu.Unlock()
			break
		}
		sh.mu.Unlock()
	}
	if p == nil {
		return nil, ErrNoMemory
	}
	m.finishAlloc(p, owner, off, zero)
	return p, nil
}

// Free returns a frame to the free set: its home free list, or — with
// the per-CPU caches on — the freeing goroutine's magazine, which drains
// to the pool in batches. The caller must have removed all mappings;
// queue membership is cleared here either way.
func (m *Mem) Free(p *Page) {
	if n := len(m.caches); n > 0 {
		m.FreeCPU(cpuSlot(n), p)
		return
	}
	m.freePrep(p)
	sh := m.shardOf(p)
	sh.mu.Lock()
	sh.detachLocked(p)
	p.queue = QueueFree
	sh.free.pushTail(p)
	sh.mu.Unlock()
	m.freeCnt.Add(1)
}

// freePrep is the part of freeing shared by every layout: the
// wired/loaned panics, the cost, and clearing identity and dirt.
func (m *Mem) freePrep(p *Page) {
	if p.WireCount.Load() > 0 {
		panic("phys: freeing wired page " + p.String())
	}
	if p.LoanCount.Load() > 0 {
		panic("phys: freeing loaned page " + p.String())
	}
	m.clock.Advance(m.costs.PageFree)
	p.SetOwner(nil, 0)
	p.Dirty.Store(false)
}

// Zero clears a frame's data, charging the zeroing cost.
func (m *Mem) Zero(p *Page) {
	m.clock.Advance(m.costs.PageZero)
	m.stats.Inc(sim.CtrPagesZeroed)
	for i := range p.Data {
		p.Data[i] = 0
	}
}

// CopyData copies src's data into dst, charging the 4 KB copy cost.
func (m *Mem) CopyData(dst, src *Page) {
	m.clock.Advance(m.costs.PageCopy)
	m.stats.Inc(sim.CtrPagesCopied)
	copy(dst.Data, src.Data)
}

// Activate puts the page on the active queue (most recently used end).
func (m *Mem) Activate(p *Page) {
	seq := m.seqCtr.Add(1)
	sh := m.shardOf(p)
	sh.mu.Lock()
	sh.detachLocked(p)
	p.queue = QueueActive
	p.seq = seq
	sh.active.pushTail(p)
	sh.mu.Unlock()
}

// ActivateIfInactive gives a page a second chance — but only if it is
// still on the inactive queue. The pagedaemon works from a lock-free
// snapshot; by the time it decides a page deserves reactivation the
// frame may have been freed (or reallocated and even wired) by its
// owner, and blindly activating it would pull a free frame off the free
// list forever. Reports whether the page was moved.
func (m *Mem) ActivateIfInactive(p *Page) bool {
	seq := m.seqCtr.Add(1)
	sh := m.shardOf(p)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if p.queue != QueueInactive {
		return false
	}
	sh.inactive.remove(p)
	p.queue = QueueActive
	p.seq = seq
	sh.active.pushTail(p)
	return true
}

// Deactivate moves the page to the inactive queue, making it a pageout
// candidate.
func (m *Mem) Deactivate(p *Page) {
	seq := m.seqCtr.Add(1)
	sh := m.shardOf(p)
	sh.mu.Lock()
	sh.detachLocked(p)
	p.queue = QueueInactive
	p.seq = seq
	sh.inactive.pushTail(p)
	sh.mu.Unlock()
}

// Dequeue removes the page from whatever paging queue it is on (used when
// wiring a page or starting pageout on it).
func (m *Mem) Dequeue(p *Page) {
	sh := m.shardOf(p)
	sh.mu.Lock()
	sh.detachLocked(p)
	sh.mu.Unlock()
}

func (sh *memShard) detachLocked(p *Page) {
	switch p.queue {
	case QueueFree:
		sh.free.remove(p)
	case QueueActive:
		sh.active.remove(p)
	case QueueInactive:
		sh.inactive.remove(p)
	}
	p.queue = QueueNone
}

// NumQueueShards returns the page-queue shard count. Reclaim workers use
// it to carve the inactive queue into disjoint shard ranges for
// ScanInactiveRange.
func NumQueueShards() int { return numShards }

// ScanInactive calls fn on up to max pages in global LRU order from the
// inactive queue. fn runs without any queue lock held so it may call back
// into Mem; the scan snapshots candidates first, skipping busy, wired and
// loaned pages. This is the pagedaemon's entry point. The shards are
// merged by sequence stamp, so the visit order matches what a single
// global inactive queue would produce.
func (m *Mem) ScanInactive(max int, fn func(*Page) bool) {
	m.ScanInactiveRange(0, numShards, max, fn)
}

// ScanInactiveRange is ScanInactive restricted to queue shards
// [loShard, hiShard): it visits up to max inactive pages homed in those
// shards, merged to the LRU order of the covered subset. Parallel reclaim
// workers each scan a disjoint range, so they never hand one another the
// same page; with the full range it is exactly ScanInactive.
func (m *Mem) ScanInactiveRange(loShard, hiShard, max int, fn func(*Page) bool) {
	if loShard < 0 {
		loShard = 0
	}
	if hiShard > numShards {
		hiShard = numShards
	}
	// The LRU stamp is copied out while the shard lock is held: p.seq is
	// re-stamped (under other shard locks) whenever a page moves queues,
	// so the sort below must not touch the live field.
	type candidate struct {
		p   *Page
		seq uint64
	}
	var cand []candidate
	for i := loShard; i < hiShard; i++ {
		sh := &m.shards[i]
		sh.mu.Lock()
		cnt := 0
		for p := sh.inactive.head; p != nil && cnt < max; p = p.next {
			if p.Busy.Load() || p.WireCount.Load() > 0 || p.LoanCount.Load() > 0 {
				continue
			}
			cand = append(cand, candidate{p, p.seq})
			cnt++
		}
		sh.mu.Unlock()
	}
	// Merge to global LRU order (insertion sort: candidate sets are
	// small and mostly sorted per shard); keep the first max.
	for i := 1; i < len(cand); i++ {
		c := cand[i]
		j := i - 1
		for j >= 0 && cand[j].seq > c.seq {
			cand[j+1] = cand[j]
			j--
		}
		cand[j+1] = c
	}
	if len(cand) > max {
		cand = cand[:max]
	}
	for _, c := range cand {
		if !fn(c.p) {
			return
		}
	}
}

// RefillInactive moves up to n pages from the global LRU head of the
// active queue to the inactive queue (the clock-hand "page aging" step
// both pagedaemons perform when the inactive queue runs short).
// Referenced pages get a second chance: their reference bit is cleared
// and they return to the active tail. All shards are locked for the
// duration so the merge sees a consistent ordering.
func (m *Mem) RefillInactive(n int) int {
	for i := range m.shards {
		m.shards[i].mu.Lock()
	}
	defer func() {
		for i := range m.shards {
			m.shards[i].mu.Unlock()
		}
	}()

	limit := 0
	for i := range m.shards {
		limit += m.shards[i].active.n
	}
	moved := 0
	scanned := 0
	for moved < n && scanned < limit {
		// Pop the globally least recently used active page.
		var sh *memShard
		for i := range m.shards {
			c := &m.shards[i]
			if c.active.head == nil {
				continue
			}
			if sh == nil || c.active.head.seq < sh.active.head.seq {
				sh = c
			}
		}
		if sh == nil {
			break
		}
		p := sh.active.popHead()
		scanned++
		if p.WireCount.Load() > 0 {
			p.queue = QueueNone
			continue
		}
		if p.Referenced.Load() {
			p.Referenced.Store(false)
			p.queue = QueueActive
			p.seq = m.seqCtr.Add(1)
			sh.active.pushTail(p)
			continue
		}
		p.queue = QueueInactive
		p.seq = m.seqCtr.Add(1)
		sh.inactive.pushTail(p)
		moved++
	}
	return moved
}

// FreeListLen counts the global pool's free lists directly (debug
// helper). Frames parked in per-CPU magazines are not included; see
// CachedFreePages for those.
func (m *Mem) FreeListLen() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += sh.free.n
		sh.mu.Unlock()
	}
	return n
}
