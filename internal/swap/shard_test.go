package swap

import (
	"sync"
	"testing"

	"uvm/internal/disk"
	"uvm/internal/sim"
)

// Tests for the sharded allocator: shard sizing, cluster containment,
// and a -race stress of concurrent alloc/free from many goroutines (the
// asynchronous pagedaemon plus direct-reclaim fallback pattern).

func TestShardCountScalesWithDeviceSize(t *testing.T) {
	cases := []struct {
		slots int64
		want  int
	}{
		{8, 1},      // tiny test devices stay single-shard (deterministic)
		{1024, 1},   // still too small to split
		{2048, 2},   // the first size worth splitting
		{8192, 8},   // capped at maxShardsPerDevice
		{32768, 8},  // a 128 MB partition
		{100000, 8}, // shard cap holds for any size
	}
	for _, c := range cases {
		s, _ := newTestSwap(c.slots)
		if got := s.Shards(); got != c.want {
			t.Errorf("%d slots: %d shards, want %d", c.slots, got, c.want)
		}
	}
}

func TestShardedDeviceStillFillsCompletely(t *testing.T) {
	// Every slot must be reachable even though allocation rotates shards.
	const slots = 2048 // 2 shards
	s, _ := newTestSwap(slots)
	if s.Shards() != 2 {
		t.Fatalf("want a sharded device, got %d shards", s.Shards())
	}
	seen := make(map[int64]bool)
	for i := 0; i < slots; i++ {
		slot, err := s.Alloc()
		if err != nil {
			t.Fatalf("alloc %d of %d: %v", i, slots, err)
		}
		if seen[slot] {
			t.Fatalf("slot %d handed out twice", slot)
		}
		seen[slot] = true
	}
	if _, err := s.Alloc(); err == nil {
		t.Fatal("allocated beyond capacity")
	}
	if s.SlotsInUse() != slots {
		t.Fatalf("in use = %d, want %d", s.SlotsInUse(), slots)
	}
}

func TestClusterNeverSpansShards(t *testing.T) {
	const slots = 4096 // 4 shards of 1024
	s, _ := newTestSwap(slots)
	if s.Shards() != 4 {
		t.Fatalf("want 4 shards, got %d", s.Shards())
	}
	shardSize := int64(slots / 4)
	for i := 0; i < 40; i++ {
		start, err := s.AllocContig(64)
		if err != nil {
			t.Fatal(err)
		}
		if start/shardSize != (start+63)/shardSize {
			t.Fatalf("cluster [%d,%d] crosses the shard boundary at %d",
				start, start+63, (start/shardSize+1)*shardSize)
		}
	}
}

func TestShardedMultiDevicePriorityStillHolds(t *testing.T) {
	// Priority order must survive sharding: the preferred device fills
	// before any allocation touches the other one.
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	stats := sim.NewStats()
	d0 := disk.New(clock, costs, stats, 2048)
	s := New(clock, costs, stats, d0)
	s.AddDevice(disk.New(clock, costs, stats, 2048), 10)
	for i := 0; i < 2048; i++ {
		slot, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if slot >= 2048 {
			t.Fatalf("allocation %d spilled to the low-priority device early (slot %d)", i, slot)
		}
	}
	spill, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if spill < 2048 {
		t.Fatalf("expected spill to device 1, got slot %d", spill)
	}
}

// TestConcurrentAllocFreeStress drives the allocator the way concurrent
// reclaim does: many goroutines mixing single-slot allocs, cluster
// allocs and frees. Run with -race. At the end the accounting must be
// exact and every slot freeable.
func TestConcurrentAllocFreeStress(t *testing.T) {
	const (
		slots   = 16384 // 8 shards
		workers = 8
		rounds  = 400
	)
	s, stats := newTestSwap(slots)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := sim.NewRNG(seed + 1)
			type held struct {
				slot int64
				n    int
			}
			var mine []held
			for r := 0; r < rounds; r++ {
				switch {
				case rng.Intn(3) == 0 && len(mine) > 0:
					// Free a random holding.
					i := rng.Intn(len(mine))
					s.FreeRange(mine[i].slot, mine[i].n)
					mine[i] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				case rng.Intn(2) == 0:
					if slot, err := s.Alloc(); err == nil {
						mine = append(mine, held{slot, 1})
					}
				default:
					n := 1 + rng.Intn(64)
					if slot, err := s.AllocContig(n); err == nil {
						mine = append(mine, held{slot, n})
					}
				}
			}
			for _, h := range mine {
				s.FreeRange(h.slot, h.n)
			}
		}(uint64(w))
	}
	wg.Wait()
	if got := s.SlotsInUse(); got != 0 {
		t.Fatalf("slots leaked: %d still in use", got)
	}
	if live := stats.Get(sim.CtrSwapSlotsLive); live != 0 {
		t.Fatalf("live-slot counter drifted: %d", live)
	}
	for i := int64(0); i < slots; i++ {
		if s.InUse(i) {
			t.Fatalf("slot %d still marked in use after all frees", i)
		}
	}
	// The whole space is allocatable again.
	if _, err := s.AllocContig(64); err != nil {
		t.Fatalf("allocator wedged after stress: %v", err)
	}
}
