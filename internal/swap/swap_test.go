package swap

import (
	"errors"
	"testing"

	"uvm/internal/disk"
	"uvm/internal/param"
	"uvm/internal/sim"
)

func newTestSwap(nslots int64) (*Swap, *sim.Stats) {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	stats := sim.NewStats()
	dev := disk.New(clock, costs, stats, nslots)
	return New(clock, costs, stats, dev), stats
}

func TestAllocFree(t *testing.T) {
	s, stats := newTestSwap(8)
	a, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("duplicate slot")
	}
	if s.SlotsInUse() != 2 || stats.Get(sim.CtrSwapSlotsLive) != 2 {
		t.Fatalf("in use = %d", s.SlotsInUse())
	}
	s.Free(a)
	s.Free(b)
	if s.SlotsInUse() != 0 || stats.Get(sim.CtrSwapSlotsLive) != 0 {
		t.Fatalf("in use after free = %d", s.SlotsInUse())
	}
}

func TestExhaustion(t *testing.T) {
	s, _ := newTestSwap(3)
	for i := 0; i < 3; i++ {
		if _, err := s.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Alloc(); !errors.Is(err, ErrNoSwap) {
		t.Fatalf("exhaustion: %v", err)
	}
}

func TestAllocContig(t *testing.T) {
	s, _ := newTestSwap(64)
	start, err := s.AllocContig(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 16; i++ {
		if !s.InUse(start + i) {
			t.Fatalf("slot %d not marked", start+i)
		}
	}
	if s.SlotsInUse() != 16 {
		t.Fatalf("in use = %d", s.SlotsInUse())
	}
}

func TestAllocContigFindsHoleAfterFragmentation(t *testing.T) {
	s, _ := newTestSwap(16)
	// Allocate all, then free a contiguous hole in the middle.
	if _, err := s.AllocContig(16); err != nil {
		t.Fatal(err)
	}
	s.FreeRange(4, 8)
	start, err := s.AllocContig(8)
	if err != nil {
		t.Fatal(err)
	}
	if start != 4 {
		t.Fatalf("cluster landed at %d, want 4", start)
	}
	// No room for even one more.
	if _, err := s.Alloc(); !errors.Is(err, ErrNoSwap) {
		t.Fatalf("expected full: %v", err)
	}
}

func TestAllocContigTooFragmented(t *testing.T) {
	s, _ := newTestSwap(16)
	if _, err := s.AllocContig(16); err != nil {
		t.Fatal(err)
	}
	// Free every other slot: 8 free but no run of 2.
	for i := int64(0); i < 16; i += 2 {
		s.Free(i)
	}
	if _, err := s.AllocContig(2); !errors.Is(err, ErrNoSwap) {
		t.Fatalf("fragmented partition satisfied a contiguous request: %v", err)
	}
	// Singles still work.
	if _, err := s.Alloc(); err != nil {
		t.Fatal(err)
	}
}

func TestWraparound(t *testing.T) {
	s, _ := newTestSwap(8)
	a, _ := s.AllocContig(6) // hint now at 6
	s.FreeRange(a, 6)
	// A 4-slot request from hint 6 must wrap to the start.
	start, err := s.AllocContig(4)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("wraparound allocation at %d, want 0", start)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	s, _ := newTestSwap(4)
	slot, _ := s.Alloc()
	s.Free(slot)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double free")
		}
	}()
	s.Free(slot)
}

func TestFreeNoSlotIsNoop(t *testing.T) {
	s, _ := newTestSwap(4)
	s.Free(NoSlot) // must not panic
	if s.SlotsInUse() != 0 {
		t.Fatal("NoSlot free changed accounting")
	}
}

func TestSlotIORoundTrip(t *testing.T) {
	s, stats := newTestSwap(8)
	slot, _ := s.Alloc()
	out := make([]byte, param.PageSize)
	for i := range out {
		out[i] = byte(i * 3)
	}
	if err := s.WriteSlot(slot, out); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, param.PageSize)
	if err := s.ReadSlot(slot, in); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != byte(i*3) {
			t.Fatalf("byte %d corrupted through swap", i)
		}
	}
	if stats.Get(sim.CtrSwapIOs) != 2 {
		t.Fatalf("swap I/O count = %d", stats.Get(sim.CtrSwapIOs))
	}
}

func TestClusterIOIsOneOperation(t *testing.T) {
	s, stats := newTestSwap(128)
	start, err := s.AllocContig(64)
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([][]byte, 64)
	for i := range bufs {
		bufs[i] = make([]byte, param.PageSize)
		bufs[i][0] = byte(i)
	}
	if err := s.WriteCluster(start, bufs); err != nil {
		t.Fatal(err)
	}
	if got := stats.Get(sim.CtrDiskWrites); got != 1 {
		t.Fatalf("cluster write issued %d disk I/Os, want 1", got)
	}
	// Verify contents slot by slot.
	in := make([]byte, param.PageSize)
	for i := int64(0); i < 64; i++ {
		if err := s.ReadSlot(start+i, in); err != nil {
			t.Fatal(err)
		}
		if in[0] != byte(i) {
			t.Fatalf("slot %d holds %#x", i, in[0])
		}
	}
}

func TestReassignmentPattern(t *testing.T) {
	// The UVM pagedaemon pattern: pages hold scattered slots; allocate a
	// fresh contiguous run, free the old slots, write once.
	s, _ := newTestSwap(64)
	var old []int64
	for i := 0; i < 8; i++ {
		slot, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		old = append(old, slot)
		// Burn a slot between allocations so the old ones are scattered.
		if i < 7 {
			burn, _ := s.Alloc()
			defer s.Free(burn)
		}
	}
	start, err := s.AllocContig(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, slot := range old {
		s.Free(slot)
	}
	if s.SlotsInUse() != 8+7 {
		t.Fatalf("in use = %d, want 15 (8 new + 7 burned)", s.SlotsInUse())
	}
	for i := int64(0); i < 8; i++ {
		if !s.InUse(start + i) {
			t.Fatal("reassigned cluster not held")
		}
	}
}

func TestBadClusterSize(t *testing.T) {
	s, _ := newTestSwap(4)
	if _, err := s.AllocContig(0); err == nil {
		t.Fatal("zero-size cluster accepted")
	}
	if _, err := s.AllocContig(-1); err == nil {
		t.Fatal("negative cluster accepted")
	}
}
