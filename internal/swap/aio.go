package swap

import (
	"fmt"
	"sync"

	"uvm/internal/disk"
	"uvm/internal/sim"
)

// This file is the asynchronous half of the swap I/O path: a bounded
// per-device in-flight window of cluster writes whose completions are
// delivered by callback. The pagedaemon uses it to overlap its next
// inactive-queue scan with pageout I/O still on the wire (the "async
// cluster I/O" follow-on to the paper's clustered pageout): it submits a
// cluster with WriteClusterAsync and keeps scanning; the completion
// callback releases the cluster's pages.
//
// The window/backpressure machinery itself lives in disk.AsyncWriter —
// the generalised engine shared with the vfs writeback path — and each
// swap device owns one writer. This file keeps the swap-wide
// bookkeeping: the configured window, the aggregate in-flight count that
// DrainAsync waits on, and the swap.aio.* stats.

// DefaultAIOWindow is the per-device in-flight cluster-write window used
// when SetAIOWindow was never called (or asked for 0).
const DefaultAIOWindow = disk.DefaultAIOWindow

// aio is the Swap-wide async-write bookkeeping: the configured window and
// the in-flight count Drain waits on.
type aio struct {
	//uvm:lock swapaio
	mu       sync.Mutex
	cond     *sync.Cond
	window   int
	inFlight int
}

func (a *aio) init() {
	a.cond = sync.NewCond(&a.mu)
	a.window = DefaultAIOWindow
}

// SetAIOWindow sets the per-device in-flight window for asynchronous
// cluster writes; n <= 0 restores the default. The change is live: every
// existing device writer is resized immediately — writes admitted under
// an old, larger window complete and drain normally, new submissions
// wait for the in-flight count to fall under the new bound — and devices
// configured after the call use the new window too. Safe to call at any
// time, concurrently with WriteClusterAsync (the control plane resizes
// the window from observed completion latency).
func (s *Swap) SetAIOWindow(n int) {
	if n <= 0 {
		n = DefaultAIOWindow
	}
	s.aio.mu.Lock()
	s.aio.window = n
	var writers []*disk.AsyncWriter
	for _, d := range s.devs.Load().devices {
		if d.writer != nil {
			writers = append(writers, d.writer)
		}
	}
	s.aio.mu.Unlock()
	// Resize outside aio.mu: the writer's own mutex is a leaf and the
	// resize never blocks.
	for _, w := range writers {
		w.SetWindow(n)
	}
}

// AIOWindow returns the configured per-device in-flight window
// (test/debug helper).
func (s *Swap) AIOWindow() int {
	s.aio.mu.Lock()
	defer s.aio.mu.Unlock()
	return s.aio.window
}

// AIOInFlight returns the number of asynchronous cluster writes currently
// submitted but not yet completed (test/debug helper).
func (s *Swap) AIOInFlight() int {
	s.aio.mu.Lock()
	defer s.aio.mu.Unlock()
	return s.aio.inFlight
}

// ensureWriter returns d's async writer, creating it with the current
// window on first use.
func (s *Swap) ensureWriter(d *device) *disk.AsyncWriter {
	s.aio.mu.Lock()
	defer s.aio.mu.Unlock()
	if d.writer == nil {
		d.writer = disk.NewAsyncWriter(d.dev, s.aio.window)
	}
	return d.writer
}

// WriteClusterAsync submits a contiguous cluster write and returns as
// soon as the target device has admitted it to its in-flight window,
// blocking only while the window is full. done is invoked exactly once,
// from another goroutine, with the write's result; the caller must treat
// the buffers as owned by the I/O until then. Malformed requests (a run
// that escapes its device) are reported synchronously and done is never
// called.
func (s *Swap) WriteClusterAsync(start int64, bufs [][]byte, done func(error)) error {
	d := s.deviceFor(start)
	if start-d.base+int64(len(bufs)) > d.size {
		return fmt.Errorf("swap: cluster at %d spans devices", start)
	}
	w := s.ensureWriter(d)

	// The swap-wide in-flight count rises at submission (before the
	// window gate, so DrainAsync started concurrently cannot miss us) and
	// falls after done returns.
	s.aio.mu.Lock()
	s.aio.inFlight++
	inFlight := s.aio.inFlight
	s.aio.mu.Unlock()
	s.stats.Inc(sim.CtrSwapAIOWrites)
	s.stats.Add(sim.CtrSwapAIOPages, int64(len(bufs)))
	s.stats.Max(sim.CtrSwapAIOInFlightMax, int64(inFlight))

	w.Submit(start-d.base, bufs, func(err error) {
		done(err)
		s.aio.mu.Lock()
		s.aio.inFlight--
		if s.aio.inFlight == 0 {
			s.aio.cond.Broadcast()
		}
		s.aio.mu.Unlock()
	})
	return nil
}

// DrainAsync blocks until every asynchronous cluster write submitted so
// far has completed (its done callback has returned). Used by shutdown
// paths that must guarantee no completion callback is still running.
func (s *Swap) DrainAsync() {
	s.aio.mu.Lock()
	for s.aio.inFlight > 0 {
		s.aio.cond.Wait()
	}
	s.aio.mu.Unlock()
}
