package swap

import (
	"sync"
	"sync/atomic"
	"testing"

	"uvm/internal/disk"
	"uvm/internal/sim"
)

// Property tests for the sharded allocator: random Alloc / AllocContig /
// FreeRange / device-kill sequences checked against a model that the
// implementation can never satisfy by accident. The invariants:
//
//  1. no slot is ever handed out twice while allocated (no double-alloc),
//  2. SlotsInUse and the live-slot counter track the model exactly
//     (no leak, no drift),
//  3. a contiguous run stays within one device,
//  4. once a device's death has been observed, no new allocation lands
//     on it (retirement from the scan — swap.go's Dead() check).
//
// The deterministic variant replays a fixed-seed op stream on one
// goroutine so a failure is a repeatable counterexample; the concurrent
// variant runs the same op mix from 8 workers under -race with a shared
// slot registry. FuzzSwapAllocFree drives the same model from an
// arbitrary byte stream so `go test -fuzz` can search for new
// counterexamples.

// propSwap builds the two-device topology the properties run on: a
// preferred device dev0 and a lower-priority spill device, each big
// enough to shard. Killing dev0 mid-stream forces the retirement path
// while the spill device keeps the allocator serviceable.
func propSwap() (s *Swap, stats *sim.Stats, dev0 *disk.Disk, devSlots int64) {
	devSlots = 4096
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	stats = sim.NewStats()
	dev0 = disk.New(clock, costs, stats, devSlots)
	s = New(clock, costs, stats, dev0)
	s.AddDevice(disk.New(clock, costs, stats, devSlots), 10)
	return s, stats, dev0, devSlots
}

// propModel is the reference bookkeeping a single-threaded op stream is
// checked against: which slots are allocated, as ranges and as a set.
type propModel struct {
	t     *testing.T
	s     *Swap
	stats *sim.Stats
	owned map[int64]int // start slot -> run length
	slots map[int64]bool
}

func newPropModel(t *testing.T, s *Swap, stats *sim.Stats) *propModel {
	return &propModel{t: t, s: s, stats: stats,
		owned: make(map[int64]int), slots: make(map[int64]bool)}
}

// alloc runs one AllocContig and folds a success into the model,
// checking the no-double-alloc, containment and dead-device properties.
func (m *propModel) alloc(n int, deadLo, deadHi int64) {
	m.t.Helper()
	start, err := m.s.AllocContig(n)
	if err != nil {
		return // full (or everything left is on the dead device) — legal
	}
	lo, hi := m.s.DeviceBounds(start)
	if start+int64(n) > hi {
		m.t.Fatalf("cluster [%d,%d) spans past its device end %d", start, start+int64(n), hi)
	}
	if deadHi > deadLo && start >= deadLo && start < deadHi {
		m.t.Fatalf("allocated slot %d on the dead device [%d,%d)", start, deadLo, deadHi)
	}
	_ = lo
	for i := int64(0); i < int64(n); i++ {
		if m.slots[start+i] {
			m.t.Fatalf("slot %d double-allocated (cluster [%d,%d))", start+i, start, start+int64(n))
		}
		m.slots[start+i] = true
	}
	m.owned[start] = n
}

// free releases a random owned range, model first.
func (m *propModel) free(pick uint64) {
	if len(m.owned) == 0 {
		return
	}
	// Map iteration order is randomised, but any owned range is a valid
	// pick — the model, not the schedule, carries the property.
	idx := int(pick % uint64(len(m.owned)))
	var start int64
	for st := range m.owned {
		start = st
		if idx == 0 {
			break
		}
		idx--
	}
	n := m.owned[start]
	delete(m.owned, start)
	for i := int64(0); i < int64(n); i++ {
		delete(m.slots, start+i)
	}
	m.s.FreeRange(start, n)
}

// check asserts the accounting invariants against the model.
func (m *propModel) check() {
	m.t.Helper()
	if got, want := m.s.SlotsInUse(), len(m.slots); got != want {
		m.t.Fatalf("SlotsInUse = %d, model says %d", got, want)
	}
	if got, want := m.stats.Get(sim.CtrSwapSlotsLive), int64(len(m.slots)); got != want {
		m.t.Fatalf("live-slot counter = %d, model says %d", got, want)
	}
}

// TestAllocatorPropertyDeterministic replays a fixed-seed op stream —
// single-slot allocs, cluster allocs up to the pageout maximum, frees,
// and one device kill at the midpoint — on one goroutine, checking the
// model invariants after every operation.
func TestAllocatorPropertyDeterministic(t *testing.T) {
	const ops = 4000
	s, stats, dev0, devSlots := propSwap()
	m := newPropModel(t, s, stats)
	rng := sim.NewRNG(42)
	deadLo, deadHi := int64(0), int64(0)
	for op := 0; op < ops; op++ {
		if op == ops/2 {
			dev0.Kill()
			deadLo, deadHi = 0, devSlots // dev0 spans [0, devSlots)
		}
		switch rng.Intn(4) {
		case 0:
			m.free(rng.Uint64())
		case 1:
			m.alloc(1, deadLo, deadHi)
		default:
			m.alloc(1+rng.Intn(64), deadLo, deadHi)
		}
		m.check()
	}
	for start, n := range m.owned {
		s.FreeRange(start, n)
	}
	if s.SlotsInUse() != 0 {
		t.Fatalf("slots leaked after final drain: %d", s.SlotsInUse())
	}
	if live := stats.Get(sim.CtrSwapSlotsLive); live != 0 {
		t.Fatalf("live-slot counter drifted: %d", live)
	}
	// The surviving device still serves the largest pageout cluster.
	if _, err := s.AllocContig(64); err != nil {
		t.Fatalf("allocator wedged after kill+drain: %v", err)
	}
}

// TestAllocatorPropertyConcurrent runs the same op mix from 8 workers
// (the async pagedaemon + direct-reclaim shape) with a shared registry
// that catches cross-worker double-allocation, while a mid-stream
// device kill exercises retirement under load. Run with -race.
//
// The dead-device property needs care under concurrency: an allocation
// already inside AllocContig when Kill lands may legitimately return a
// dead-device slot. The assertion therefore only applies when the kill
// flag was observed set *before* the allocation started.
func TestAllocatorPropertyConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 600
	)
	s, stats, dev0, devSlots := propSwap()

	var (
		regMu    sync.Mutex
		registry = make(map[int64]int) // slot -> owning worker
		killed   atomic.Bool
	)
	claim := func(w int, start int64, n int) {
		regMu.Lock()
		defer regMu.Unlock()
		for i := int64(0); i < int64(n); i++ {
			if prev, dup := registry[start+i]; dup {
				t.Errorf("slot %d handed to worker %d while worker %d holds it", start+i, w, prev)
			}
			registry[start+i] = w
		}
	}
	release := func(start int64, n int) {
		regMu.Lock()
		for i := int64(0); i < int64(n); i++ {
			delete(registry, start+i)
		}
		regMu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(w)*0x9e3779b97f4a7c15 + 1)
			type held struct {
				slot int64
				n    int
			}
			var mine []held
			for r := 0; r < rounds; r++ {
				if w == 0 && r == rounds/2 {
					killed.Store(true) // flag first: observers must see it before the kill takes effect
					dev0.Kill()
				}
				switch {
				case rng.Intn(3) == 0 && len(mine) > 0:
					i := rng.Intn(len(mine))
					h := mine[i]
					mine[i] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					release(h.slot, h.n) // registry first, so a re-alloc never races the delete
					s.FreeRange(h.slot, h.n)
				default:
					n := 1 + rng.Intn(64)
					if rng.Intn(2) == 0 {
						n = 1
					}
					deadBefore := killed.Load()
					start, err := s.AllocContig(n)
					if err != nil {
						continue
					}
					if deadBefore && start < devSlots {
						t.Errorf("worker %d allocated slot %d on the dead device after observing the kill", w, start)
					}
					if lo, hi := s.DeviceBounds(start); start < lo || start+int64(n) > hi {
						t.Errorf("cluster [%d,%d) escapes device [%d,%d)", start, start+int64(n), lo, hi)
					}
					claim(w, start, n)
					mine = append(mine, held{start, n})
				}
			}
			for _, h := range mine {
				release(h.slot, h.n)
				s.FreeRange(h.slot, h.n)
			}
		}(w)
	}
	wg.Wait()

	if len(registry) != 0 {
		t.Fatalf("registry not empty after drain: %d slots", len(registry))
	}
	if got := s.SlotsInUse(); got != 0 {
		t.Fatalf("slots leaked: %d still in use", got)
	}
	if live := stats.Get(sim.CtrSwapSlotsLive); live != 0 {
		t.Fatalf("live-slot counter drifted: %d", live)
	}
	if _, err := s.AllocContig(64); err != nil {
		t.Fatalf("allocator wedged after concurrent stress: %v", err)
	}
}

// FuzzSwapAllocFree interprets an arbitrary byte stream as an op
// sequence over the two-device allocator — two bits select the op, the
// rest of the byte sizes clusters or picks the range to free, one
// marker byte kills the preferred device — and checks the same model
// invariants. The seed corpus covers each op class and a kill; `go test
// -fuzz=FuzzSwapAllocFree` searches for counterexamples beyond it.
func FuzzSwapAllocFree(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x81, 0xC0, 0x00})       // one of each op class
	f.Add([]byte{0x7F, 0x7F, 0xFF, 0x01, 0xFF, 0x40}) // big clusters around a kill
	f.Add([]byte{0x41, 0x41, 0x00, 0x41, 0x00, 0x41}) // alloc/free churn
	f.Fuzz(func(t *testing.T, stream []byte) {
		s, stats, dev0, devSlots := propSwap()
		m := newPropModel(t, s, stats)
		deadLo, deadHi := int64(0), int64(0)
		for _, b := range stream {
			switch {
			case b == 0xFF: // kill marker
				dev0.Kill()
				deadLo, deadHi = 0, devSlots
			case b>>6 == 0: // free: low bits pick the range
				m.free(uint64(b))
			case b>>6 == 1: // single-slot alloc
				m.alloc(1, deadLo, deadHi)
			default: // cluster alloc, 1..64 slots from the low bits
				m.alloc(1+int(b&0x3F), deadLo, deadHi)
			}
			m.check()
		}
		for start, n := range m.owned {
			s.FreeRange(start, n)
		}
		if s.SlotsInUse() != 0 {
			t.Fatalf("slots leaked after drain: %d", s.SlotsInUse())
		}
	})
}
