package swap

import (
	"errors"
	"testing"

	"uvm/internal/disk"
	"uvm/internal/param"
	"uvm/internal/sim"
)

// Tests for multi-device swap (swapctl -a style priorities).

func multiSwap(t *testing.T, sizes []int64, prios []int) (*Swap, []*disk.Disk) {
	t.Helper()
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	stats := sim.NewStats()
	var disks []*disk.Disk
	d0 := disk.New(clock, costs, stats, sizes[0])
	disks = append(disks, d0)
	s := New(clock, costs, stats, d0) // priority 0
	_ = prios[0]
	for i := 1; i < len(sizes); i++ {
		d := disk.New(clock, costs, stats, sizes[i])
		s.AddDevice(d, prios[i])
		disks = append(disks, d)
	}
	return s, disks
}

func TestAddDeviceGrowsSlotSpace(t *testing.T) {
	s, _ := multiSwap(t, []int64{8, 16}, []int{0, 1})
	if s.Slots() != 24 {
		t.Fatalf("slots = %d, want 24", s.Slots())
	}
	if s.Devices() != 2 {
		t.Fatalf("devices = %d", s.Devices())
	}
}

func TestPriorityOrderPreferred(t *testing.T) {
	// Device 0 (priority 0) must fill before device 1 (priority 10).
	s, _ := multiSwap(t, []int64{4, 16}, []int{0, 10})
	var slots []int64
	for i := 0; i < 4; i++ {
		slot, err := s.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if slot >= 4 {
			t.Fatalf("allocation %d landed on the low-priority device (slot %d) while the preferred one had space", i, slot)
		}
		slots = append(slots, slot)
	}
	// Fifth allocation spills to device 1.
	spill, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if spill < 4 {
		t.Fatalf("spill allocation landed at %d, expected the second device", spill)
	}
	// Freeing the preferred device makes it win again.
	s.Free(slots[0])
	again, _ := s.Alloc()
	if again >= 4 {
		t.Fatalf("freed preferred slot not reused: got %d", again)
	}
}

func TestHigherPriorityDeviceAddedLater(t *testing.T) {
	// A later-added device with a *better* (lower) priority takes over.
	// (The first device always has priority 0, so use a negative one.)
	s, _ := multiSwap(t, []int64{8, 8}, []int{0, -1})
	slot, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if slot < 8 {
		t.Fatalf("allocation at %d: should prefer the later, higher-priority device", slot)
	}
}

func TestClusterNeverSpansDevices(t *testing.T) {
	s, _ := multiSwap(t, []int64{10, 32}, []int{0, 1})
	// Eat 4 slots of device 0, leaving 6 free there.
	if _, err := s.AllocContig(4); err != nil {
		t.Fatal(err)
	}
	// A 8-slot cluster cannot fit in device 0's remaining 6: it must land
	// entirely in device 1, not straddle the boundary.
	start, err := s.AllocContig(8)
	if err != nil {
		t.Fatal(err)
	}
	if start < 10 {
		t.Fatalf("cluster at %d would span the device boundary at 10", start)
	}
}

func TestClusterLargerThanAnyDevice(t *testing.T) {
	s, _ := multiSwap(t, []int64{8, 8}, []int{0, 1})
	// 16 slots exist but no device can hold 10 contiguously.
	if _, err := s.AllocContig(10); !errors.Is(err, ErrNoSwap) {
		t.Fatalf("impossible cluster: %v", err)
	}
}

func TestIORoutedToOwningDevice(t *testing.T) {
	s, disks := multiSwap(t, []int64{4, 4}, []int{0, 1})
	// Fill device 0 so the next allocation must use device 1.
	if _, err := s.AllocContig(4); err != nil {
		t.Fatal(err)
	}
	slot, err := s.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if slot < 4 {
		t.Fatalf("expected slot on device 1, got %d", slot)
	}
	out := make([]byte, param.PageSize)
	out[0] = 0xd5
	if err := s.WriteSlot(slot, out); err != nil {
		t.Fatal(err)
	}
	// The data is on device 1's disk at the translated block.
	raw := make([]byte, param.PageSize)
	if err := disks[1].ReadPages(slot-4, [][]byte{raw}); err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0xd5 {
		t.Fatalf("data not on the owning device: %#x", raw[0])
	}
	// Round-trip through the swap layer too.
	in := make([]byte, param.PageSize)
	if err := s.ReadSlot(slot, in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 0xd5 {
		t.Fatalf("swap-layer read wrong: %#x", in[0])
	}
}

func TestExhaustionAcrossDevices(t *testing.T) {
	s, _ := multiSwap(t, []int64{4, 4}, []int{0, 1})
	for i := 0; i < 8; i++ {
		if _, err := s.Alloc(); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := s.Alloc(); !errors.Is(err, ErrNoSwap) {
		t.Fatalf("exhaustion across devices: %v", err)
	}
}
