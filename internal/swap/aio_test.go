package swap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"uvm/internal/disk"
	"uvm/internal/param"
	"uvm/internal/sim"
)

func pageOf(b byte) []byte {
	buf := make([]byte, param.PageSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func TestWriteClusterAsyncRoundTrip(t *testing.T) {
	s, stats := newTestSwap(64)
	start, err := s.AllocContig(4)
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([][]byte, 4)
	for i := range bufs {
		bufs[i] = pageOf(byte(0x10 + i))
	}
	done := make(chan error, 1)
	if err := s.WriteClusterAsync(start, bufs, func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("completion: %v", err)
	}
	s.DrainAsync()
	if got := s.AIOInFlight(); got != 0 {
		t.Fatalf("in flight after drain = %d", got)
	}
	if got := stats.Get(sim.CtrSwapAIOWrites); got != 1 {
		t.Fatalf("aio writes = %d", got)
	}
	if got := stats.Get(sim.CtrSwapAIOPages); got != 4 {
		t.Fatalf("aio pages = %d", got)
	}
	// The data must be durably readable, slot by slot and as a cluster.
	rd := make([][]byte, 4)
	for i := range rd {
		rd[i] = make([]byte, param.PageSize)
	}
	if err := s.ReadCluster(start, rd); err != nil {
		t.Fatal(err)
	}
	for i := range rd {
		if rd[i][0] != byte(0x10+i) || rd[i][param.PageSize-1] != byte(0x10+i) {
			t.Fatalf("slot %d read back %#x", i, rd[i][0])
		}
	}
}

// TestWriteClusterAsyncWindow checks the per-device in-flight window: with
// the device's I/O gated shut, exactly `window` writes are admitted and
// the next submission blocks until a completion opens a slot.
func TestWriteClusterAsyncWindow(t *testing.T) {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	stats := sim.NewStats()
	dev := disk.New(clock, costs, stats, 1024)
	s := New(clock, costs, stats, dev)
	const window = 2
	s.SetAIOWindow(window)

	gate := make(chan struct{})
	dev.FailWrite = func(int64) error { <-gate; return nil }

	var completions atomic.Int32
	submit := func() {
		start, err := s.AllocContig(2)
		if err != nil {
			t.Error(err)
			return
		}
		bufs := [][]byte{pageOf(1), pageOf(2)}
		if err := s.WriteClusterAsync(start, bufs, func(error) { completions.Add(1) }); err != nil {
			t.Error(err)
		}
	}
	for i := 0; i < window; i++ {
		submit() // admitted immediately: the window has room
	}
	if got := s.AIOInFlight(); got != window {
		t.Fatalf("in flight = %d, want %d", got, window)
	}
	extraAdmitted := make(chan struct{})
	go func() {
		submit() // must block until a completion frees a window slot
		close(extraAdmitted)
	}()
	select {
	case <-extraAdmitted:
		t.Fatal("submission beyond the window was admitted while the device was gated")
	default:
	}
	close(gate) // let the writes finish
	<-extraAdmitted
	s.DrainAsync()
	if got := completions.Load(); got != window+1 {
		t.Fatalf("completions = %d, want %d", got, window+1)
	}
}

func TestWriteClusterAsyncReportsWriteError(t *testing.T) {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	stats := sim.NewStats()
	dev := disk.New(clock, costs, stats, 256)
	s := New(clock, costs, stats, dev)
	dev.FailWrite = func(int64) error { return fmt.Errorf("injected") }
	start, err := s.AllocContig(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	if err := s.WriteClusterAsync(start, [][]byte{pageOf(1), pageOf(2)}, func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("injected write error not delivered to the completion")
	}
	s.DrainAsync()
}

// TestReadClusterAcrossShards: shards partition the *allocator*, not the
// device, so a read run crossing a shard boundary inside one device is a
// single legal I/O.
func TestReadClusterAcrossShards(t *testing.T) {
	s, _ := newTestSwap(4096) // big enough to split into multiple shards
	if s.Shards() < 2 {
		t.Fatalf("fixture not sharded: %d", s.Shards())
	}
	d := s.devs.Load().devices[0]
	boundary := d.shardSize // first slot of the second shard
	// Write a recognisable pattern across the boundary, slot by slot.
	for i := int64(-2); i < 2; i++ {
		if err := s.WriteSlot(boundary+i, pageOf(byte(0x40+i))); err != nil {
			t.Fatal(err)
		}
	}
	rd := make([][]byte, 4)
	for i := range rd {
		rd[i] = make([]byte, param.PageSize)
	}
	if err := s.ReadCluster(boundary-2, rd); err != nil {
		t.Fatalf("read across shard boundary: %v", err)
	}
	for i := range rd {
		want := byte(0x40 + int64(i) - 2)
		if rd[i][0] != want {
			t.Fatalf("slot %d: got %#x want %#x", i, rd[i][0], want)
		}
	}
}

// TestReadClusterNeverSpansDevices: a read run that would cross into the
// next device is rejected, mirroring WriteCluster.
func TestReadClusterNeverSpansDevices(t *testing.T) {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	stats := sim.NewStats()
	s := New(clock, costs, stats, disk.New(clock, costs, stats, 8))
	s.AddDevice(disk.New(clock, costs, stats, 8), 1)
	rd := [][]byte{make([]byte, param.PageSize), make([]byte, param.PageSize)}
	if err := s.ReadCluster(7, rd); err == nil {
		t.Fatal("read cluster spanning devices not rejected")
	}
	lo, hi := s.DeviceBounds(7)
	if lo != 0 || hi != 8 {
		t.Fatalf("DeviceBounds(7) = [%d,%d)", lo, hi)
	}
	lo, hi = s.DeviceBounds(8)
	if lo != 8 || hi != 16 {
		t.Fatalf("DeviceBounds(8) = [%d,%d)", lo, hi)
	}
}

// TestAsyncWritesRaceReads drives concurrent async cluster writes,
// single-slot reads and cluster reads over one device under -race: the
// AIO engine must not corrupt data it has acknowledged.
func TestAsyncWritesRaceReads(t *testing.T) {
	s, _ := newTestSwap(4096)
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 40; iter++ {
				n := 2 + (iter % 3)
				start, err := s.AllocContig(n)
				if err != nil {
					t.Error(err)
					return
				}
				bufs := make([][]byte, n)
				for i := range bufs {
					bufs[i] = pageOf(byte(start + int64(i)))
				}
				done := make(chan error, 1)
				if err := s.WriteClusterAsync(start, bufs, func(err error) { done <- err }); err != nil {
					t.Error(err)
					return
				}
				if err := <-done; err != nil {
					t.Error(err)
					return
				}
				// Read the acknowledged cluster back both ways.
				rd := make([][]byte, n)
				for i := range rd {
					rd[i] = make([]byte, param.PageSize)
				}
				if err := s.ReadCluster(start, rd); err != nil {
					t.Error(err)
					return
				}
				for i := range rd {
					if rd[i][0] != byte(start+int64(i)) {
						t.Errorf("cluster read slot %d: got %#x", i, rd[i][0])
						return
					}
				}
				one := make([]byte, param.PageSize)
				if err := s.ReadSlot(start, one); err != nil {
					t.Error(err)
					return
				}
				if one[0] != byte(start) {
					t.Errorf("slot read: got %#x", one[0])
					return
				}
				s.FreeRange(start, n)
			}
		}(w)
	}
	wg.Wait()
	s.DrainAsync()
	if got := s.AIOInFlight(); got != 0 {
		t.Fatalf("in flight after drain = %d", got)
	}
}
