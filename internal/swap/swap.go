// Package swap implements the swap partition: a slot allocator over a
// simulated disk plus page-granular I/O.
//
// Two allocation modes exist because the two VM systems place pages on
// swap differently (paper §6). BSD VM assigns a page's swap location once,
// inside a fixed per-object swap block, so its pageouts land wherever each
// page's slot happens to be — one I/O per page. UVM treats anonymous
// memory's backing location as reassignable: the pagedaemon calls
// AllocContig to get a fresh run of slots for a whole dirty cluster, frees
// the pages' old slots, and writes the cluster with a single I/O.
package swap

import (
	"errors"
	"fmt"
	"sync"

	"uvm/internal/disk"
	"uvm/internal/sim"
)

// ErrNoSwap is returned when the partition is full. A real kernel
// deadlocks or kills processes at this point; the simulation surfaces it
// (this is how the BSD VM swap-leak test observes the leak).
var ErrNoSwap = errors.New("swap: out of swap space")

// NoSlot marks "no swap location assigned".
const NoSlot int64 = -1

// device is one configured swap device: a slice [base, base+size) of the
// global slot space backed by a disk.
type device struct {
	dev      *disk.Disk
	priority int // lower value = preferred, as in swapctl(8)
	base     int64
	size     int64
}

// Swap is the swap subsystem: one or more prioritised swap devices
// (swapctl -a style) behind a single global slot space.
type Swap struct {
	clock *sim.Clock
	costs *sim.Costs
	stats *sim.Stats

	mu      sync.Mutex
	devices []*device // sorted by priority, then configuration order
	inUse   []bool
	nInUse  int
	hint    int64 // next-fit start point
}

// New creates a swap subsystem with one device of priority 0 spanning dev.
func New(clock *sim.Clock, costs *sim.Costs, stats *sim.Stats, dev *disk.Disk) *Swap {
	s := &Swap{clock: clock, costs: costs, stats: stats}
	s.AddDevice(dev, 0)
	return s
}

// AddDevice configures an additional swap device (swapctl -a). Lower
// priority values are preferred; allocation spills to higher values when
// preferred devices are full. Slot numbers already handed out remain
// valid.
func (s *Swap) AddDevice(dev *disk.Disk, priority int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := &device{dev: dev, priority: priority, base: int64(len(s.inUse)), size: dev.Blocks()}
	s.devices = append(s.devices, d)
	s.inUse = append(s.inUse, make([]bool, dev.Blocks())...)
	s.stats.Inc("swap.devices")
}

// Devices returns the number of configured swap devices.
func (s *Swap) Devices() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.devices)
}

// deviceFor returns the device owning a global slot.
func (s *Swap) deviceFor(slot int64) *device {
	for _, d := range s.devices {
		if slot >= d.base && slot < d.base+d.size {
			return d
		}
	}
	panic(fmt.Sprintf("swap: slot %d outside every device", slot))
}

// Slots returns the total slot count across all devices.
func (s *Swap) Slots() int64 { return int64(len(s.inUse)) }

// SlotsInUse returns how many slots are currently allocated.
func (s *Swap) SlotsInUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nInUse
}

// Alloc reserves a single slot.
func (s *Swap) Alloc() (int64, error) {
	slots, err := s.AllocContig(1)
	if err != nil {
		return NoSlot, err
	}
	return slots, nil
}

// AllocContig reserves n contiguous slots and returns the first. The run
// never spans devices (a cluster must go out in one I/O to one disk);
// devices are tried in priority order, each with a next-fit scan.
// Contiguity is what lets UVM page a whole cluster out in one operation.
func (s *Swap) AllocContig(n int) (int64, error) {
	if n <= 0 {
		return NoSlot, fmt.Errorf("swap: bad cluster size %d", n)
	}
	s.clock.ChargeN(n, s.costs.SwapSlotAlloc)
	s.mu.Lock()
	defer s.mu.Unlock()

	if int64(s.nInUse)+int64(n) > int64(len(s.inUse)) {
		return NoSlot, ErrNoSwap
	}
	// Stable priority order: sort lazily each call (device count is tiny).
	ordered := make([]*device, len(s.devices))
	copy(ordered, s.devices)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].priority < ordered[j-1].priority; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	for _, d := range ordered {
		if slot, ok := s.allocWithinLocked(d, int64(n)); ok {
			return slot, nil
		}
	}
	return NoSlot, ErrNoSwap
}

// allocWithinLocked next-fit scans one device for a run of n free slots.
func (s *Swap) allocWithinLocked(d *device, n int64) (int64, bool) {
	if n > d.size {
		return NoSlot, false
	}
	start := d.base
	if s.hint >= d.base && s.hint < d.base+d.size {
		start = s.hint
	}
	end := d.base + d.size
	wrapped := false
	for {
		if start+n > end {
			if wrapped {
				return NoSlot, false
			}
			wrapped = true
			start = d.base
			continue
		}
		run := int64(0)
		for run < n && !s.inUse[start+run] {
			run++
		}
		if run == n {
			for i := int64(0); i < n; i++ {
				s.inUse[start+i] = true
			}
			s.nInUse += int(n)
			s.hint = start + n
			s.stats.Add(sim.CtrSwapSlotsLive, n)
			return start, true
		}
		start += run + 1
		if wrapped && start >= d.base+d.size {
			return NoSlot, false
		}
	}
}

// Free releases one slot.
func (s *Swap) Free(slot int64) { s.FreeRange(slot, 1) }

// FreeRange releases n consecutive slots starting at slot.
func (s *Swap) FreeRange(slot int64, n int) {
	if slot == NoSlot {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := int64(0); i < int64(n); i++ {
		idx := slot + i
		if idx < 0 || idx >= int64(len(s.inUse)) {
			panic(fmt.Sprintf("swap: freeing out-of-range slot %d", idx))
		}
		if !s.inUse[idx] {
			panic(fmt.Sprintf("swap: double free of slot %d", idx))
		}
		s.inUse[idx] = false
		s.nInUse--
	}
	s.stats.Add(sim.CtrSwapSlotsLive, -int64(n))
}

// ReadSlot pages a single slot into buf.
func (s *Swap) ReadSlot(slot int64, buf []byte) error {
	s.stats.Inc(sim.CtrSwapIOs)
	d := s.deviceFor(slot)
	return d.dev.ReadPages(slot-d.base, [][]byte{buf})
}

// WriteSlot pages buf out to a single slot.
func (s *Swap) WriteSlot(slot int64, buf []byte) error {
	s.stats.Inc(sim.CtrSwapIOs)
	d := s.deviceFor(slot)
	return d.dev.WritePages(slot-d.base, [][]byte{buf})
}

// WriteCluster pages a contiguous cluster out with a single I/O
// operation. The cluster always lies within one device (AllocContig
// guarantees it).
func (s *Swap) WriteCluster(start int64, bufs [][]byte) error {
	s.stats.Inc(sim.CtrSwapIOs)
	d := s.deviceFor(start)
	if start-d.base+int64(len(bufs)) > d.size {
		return fmt.Errorf("swap: cluster at %d spans devices", start)
	}
	return d.dev.WritePages(start-d.base, bufs)
}

// InUse reports whether a slot is allocated (test/debug helper).
func (s *Swap) InUse(slot int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return slot >= 0 && slot < int64(len(s.inUse)) && s.inUse[slot]
}
