// Package swap implements the swap partition: a slot allocator over one
// or more simulated disks plus page-granular I/O.
//
// Two allocation modes exist because the two VM systems place pages on
// swap differently (paper §6). BSD VM assigns a page's swap location once,
// inside a fixed per-object swap block, so its pageouts land wherever each
// page's slot happens to be — one I/O per page. UVM treats anonymous
// memory's backing location as reassignable: the pagedaemon calls
// AllocContig to get a fresh run of slots for a whole dirty cluster, frees
// the pages' old slots, and writes the cluster with a single I/O.
//
// # Concurrency
//
// The allocator is sharded so that it is never a serialisation point on
// the pageout path: each device's slot space is split into contiguous
// shards, each with its own mutex, free-slot bitmap and next-fit hint.
// Concurrent reclaim — the asynchronous pagedaemon plus any goroutines in
// the direct-reclaim fallback — lands on different shards via a
// round-robin cursor and proceeds without contention. The global in-use
// count is a lock-free atomic, so capacity checks and accounting never
// take a lock at all. Devices small enough for a single shard (everything
// under minShardSlots×2) behave exactly like the classic single-mutex
// next-fit allocator, which keeps small deterministic simulations
// bit-for-bit stable.
//
// A cluster never spans a shard (and therefore never spans a device): a
// cluster must go out in one I/O to one disk, and shards are sized far
// above the largest pageout cluster.
//
// # Asynchronous writes
//
// Cluster writes can also be submitted asynchronously (WriteClusterAsync,
// aio.go): each device admits a bounded in-flight window of writes whose
// completions are delivered by callback, which is how the pagedaemon
// overlaps pageout I/O with its next reclaim scan. ReadCluster is the
// read-side mirror of WriteCluster, used by clustered pagein.
package swap

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"uvm/internal/disk"
	"uvm/internal/sim"
)

// ErrNoSwap is returned when the partition is full. A real kernel
// deadlocks or kills processes at this point; the simulation surfaces it
// (this is how the BSD VM swap-leak test observes the leak).
var ErrNoSwap = errors.New("swap: out of swap space")

// NoSlot marks "no swap location assigned".
const NoSlot int64 = -1

const (
	// maxShardsPerDevice bounds the shard count: enough to spread
	// concurrent reclaim, few enough that a full-device scan stays cheap.
	maxShardsPerDevice = 8
	// minShardSlots is the smallest shard worth splitting for. It is far
	// above the largest pageout cluster (64 pages), so sharding never
	// makes a satisfiable AllocContig fail.
	minShardSlots = 1024
)

// shard is one contiguous slice of a device's slot space with its own
// lock, bitmap and next-fit hint.
type shard struct {
	base int64 // global slot number of this shard's first slot
	size int64

	//uvm:lock swap
	mu    sync.Mutex
	inUse []bool
	nFree int64
	hint  int64 // next-fit start point, relative to the shard
}

// alloc next-fit scans the shard for a run of n free slots and returns
// the global slot number of the first.
func (sh *shard) alloc(n int64) (int64, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n > sh.size || sh.nFree < n {
		return NoSlot, false
	}
	start := sh.hint
	if start+n > sh.size {
		start = 0
	}
	wrapped := false
	for {
		if start+n > sh.size {
			if wrapped {
				return NoSlot, false
			}
			wrapped = true
			start = 0
			continue
		}
		run := int64(0)
		for run < n && !sh.inUse[start+run] {
			run++
		}
		if run == n {
			for i := int64(0); i < n; i++ {
				sh.inUse[start+i] = true
			}
			sh.nFree -= n
			sh.hint = start + n
			return sh.base + start, true
		}
		start += run + 1
		if wrapped && start >= sh.size {
			return NoSlot, false
		}
	}
}

// freeRange releases n consecutive slots starting at offset off within
// the shard, under one lock acquisition.
func (sh *shard) freeRange(off, n int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := int64(0); i < n; i++ {
		if !sh.inUse[off+i] {
			panic(fmt.Sprintf("swap: double free of slot %d", sh.base+off+i))
		}
		sh.inUse[off+i] = false
	}
	sh.nFree += n
}

// device is one configured swap device: a slice [base, base+size) of the
// global slot space backed by a disk, split into shards.
type device struct {
	dev      *disk.Disk
	priority int // lower value = preferred, as in swapctl(8)
	base     int64
	size     int64

	shards    []*shard
	shardSize int64         // size of every shard but the last
	cursor    atomic.Uint64 // round-robin start shard for allocations

	// writer is the device's bounded-window asynchronous write engine
	// (see aio.go), created lazily with the Swap-wide configured window.
	writer *disk.AsyncWriter
}

// shardCount picks the number of shards for a device of the given size:
// the largest power of two up to maxShardsPerDevice that keeps every
// shard at least minShardSlots long.
func shardCount(size int64) int {
	n := 1
	for n < maxShardsPerDevice && size/int64(n*2) >= minShardSlots {
		n *= 2
	}
	return n
}

func newDevice(dev *disk.Disk, priority int, base int64) *device {
	size := dev.Blocks()
	d := &device{dev: dev, priority: priority, base: base, size: size}
	k := shardCount(size)
	d.shardSize = size / int64(k)
	for i := 0; i < k; i++ {
		lo := int64(i) * d.shardSize
		hi := lo + d.shardSize
		if i == k-1 {
			hi = size // last shard absorbs the remainder
		}
		d.shards = append(d.shards, &shard{
			base:  base + lo,
			size:  hi - lo,
			inUse: make([]bool, hi-lo),
			nFree: hi - lo,
		})
	}
	return d
}

// shardFor returns the shard owning a slot local offset off.
func (d *device) shardFor(off int64) *shard {
	idx := off / d.shardSize
	if idx >= int64(len(d.shards)) {
		idx = int64(len(d.shards)) - 1
	}
	return d.shards[idx]
}

// alloc finds a run of n slots somewhere on the device. Multi-shard
// devices rotate the starting shard so concurrent allocators spread out;
// single-shard devices keep the classic deterministic next-fit order.
func (d *device) alloc(n int64) (int64, bool) {
	k := len(d.shards)
	start := 0
	if k > 1 {
		start = int(d.cursor.Add(1)-1) % k
	}
	for i := 0; i < k; i++ {
		if slot, ok := d.shards[(start+i)%k].alloc(n); ok {
			return slot, true
		}
	}
	return NoSlot, false
}

// topo is an immutable snapshot of the configured devices. Allocation,
// free and I/O paths read it without locking; AddDevice publishes a new
// snapshot.
type topo struct {
	devices []*device // configuration order (ascending base)
	byPrio  []*device // stable-sorted by priority
}

// Swap is the swap subsystem: one or more prioritised swap devices
// (swapctl -a style) behind a single global slot space.
type Swap struct {
	clock *sim.Clock
	costs *sim.Costs
	stats *sim.Stats

	// mu serialises AddDevice only.
	//uvm:lock swapreg
	mu   sync.Mutex
	devs atomic.Pointer[topo]

	// ctrSlotsLive is the cached handle for the per-allocation live-slot
	// gauge, resolved once at construction.
	ctrSlotsLive sim.Counter

	nSlots atomic.Int64
	nInUse atomic.Int64 // lock-free in-use count across all shards

	aio aio // asynchronous cluster-write engine (see aio.go)
}

// New creates a swap subsystem with one device of priority 0 spanning dev.
func New(clock *sim.Clock, costs *sim.Costs, stats *sim.Stats, dev *disk.Disk) *Swap {
	s := &Swap{clock: clock, costs: costs, stats: stats}
	s.ctrSlotsLive = stats.Counter(sim.CtrSwapSlotsLive)
	s.devs.Store(&topo{})
	s.aio.init()
	s.AddDevice(dev, 0)
	return s
}

// AddDevice configures an additional swap device (swapctl -a). Lower
// priority values are preferred; allocation spills to higher values when
// preferred devices are full. Slot numbers already handed out remain
// valid.
func (s *Swap) AddDevice(dev *disk.Disk, priority int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.devs.Load()
	d := newDevice(dev, priority, s.nSlots.Load())

	t := &topo{
		devices: append(append([]*device(nil), old.devices...), d),
		byPrio:  append(append([]*device(nil), old.byPrio...), d),
	}
	// Stable insertion sort by priority (device count is tiny).
	for i := 1; i < len(t.byPrio); i++ {
		for j := i; j > 0 && t.byPrio[j].priority < t.byPrio[j-1].priority; j-- {
			t.byPrio[j], t.byPrio[j-1] = t.byPrio[j-1], t.byPrio[j]
		}
	}
	// Grow the slot space before publishing the topology: a slot can only
	// be handed out after the topo store, and by then every bounds check
	// (Free, InUse) already covers it. The reverse order would open a
	// window where a freshly allocated slot looks out-of-range.
	s.nSlots.Add(d.size)
	s.devs.Store(t)
	s.stats.Inc("swap.devices")
	s.stats.Add("swap.shards", int64(len(d.shards)))
}

// Devices returns the number of configured swap devices.
func (s *Swap) Devices() int { return len(s.devs.Load().devices) }

// Shards returns the total shard count across all devices (test/debug
// helper).
func (s *Swap) Shards() int {
	n := 0
	for _, d := range s.devs.Load().devices {
		n += len(d.shards)
	}
	return n
}

// deviceFor returns the device owning a global slot.
func (s *Swap) deviceFor(slot int64) *device {
	for _, d := range s.devs.Load().devices {
		if slot >= d.base && slot < d.base+d.size {
			return d
		}
	}
	panic(fmt.Sprintf("swap: slot %d outside every device", slot))
}

// Slots returns the total slot count across all devices.
func (s *Swap) Slots() int64 { return s.nSlots.Load() }

// SlotsInUse returns how many slots are currently allocated.
func (s *Swap) SlotsInUse() int { return int(s.nInUse.Load()) }

// Alloc reserves a single slot.
func (s *Swap) Alloc() (int64, error) {
	slots, err := s.AllocContig(1)
	if err != nil {
		return NoSlot, err
	}
	return slots, nil
}

// AllocContig reserves n contiguous slots and returns the first. The run
// never spans shards or devices (a cluster must go out in one I/O to one
// disk); devices are tried in priority order, shards round-robin within a
// device, each with a next-fit scan. Contiguity is what lets UVM page a
// whole cluster out in one operation.
//
// A device whose disk has died (disk.Disk.Dead) is retired from the
// scan: new allocations stop landing on it, so pageout falls over to the
// surviving devices instead of queueing I/O that can only fail. Slots
// already on the dead device stay allocated — their pagein errors are
// the faulting process' problem, not the allocator's.
func (s *Swap) AllocContig(n int) (int64, error) {
	if n <= 0 {
		return NoSlot, fmt.Errorf("swap: bad cluster size %d", n)
	}
	s.clock.ChargeN(n, s.costs.SwapSlotAlloc)
	if s.nInUse.Load()+int64(n) > s.nSlots.Load() {
		return NoSlot, ErrNoSwap
	}
	for _, d := range s.devs.Load().byPrio {
		if d.dev.Dead() {
			continue
		}
		if slot, ok := d.alloc(int64(n)); ok {
			s.nInUse.Add(int64(n))
			s.ctrSlotsLive.Add(int64(n))
			return slot, nil
		}
	}
	return NoSlot, ErrNoSwap
}

// Free releases one slot.
func (s *Swap) Free(slot int64) { s.FreeRange(slot, 1) }

// FreeRange releases n consecutive slots starting at slot. The range is
// freed one shard-resident run at a time, each under a single lock
// acquisition — a pageout cluster, which never spans a shard, frees
// atomically.
func (s *Swap) FreeRange(slot int64, n int) {
	if slot == NoSlot {
		return
	}
	if slot < 0 || slot+int64(n) > s.nSlots.Load() {
		panic(fmt.Sprintf("swap: freeing out-of-range slots [%d,%d)", slot, slot+int64(n)))
	}
	for left := int64(n); left > 0; {
		d := s.deviceFor(slot)
		sh := d.shardFor(slot - d.base)
		run := sh.base + sh.size - slot // slots of the range inside this shard
		if run > left {
			run = left
		}
		sh.freeRange(slot-sh.base, run)
		slot += run
		left -= run
	}
	s.nInUse.Add(-int64(n))
	s.stats.Add(sim.CtrSwapSlotsLive, -int64(n))
}

// ReadSlot pages a single slot into buf.
func (s *Swap) ReadSlot(slot int64, buf []byte) error {
	s.stats.Inc(sim.CtrSwapIOs)
	d := s.deviceFor(slot)
	return d.dev.ReadPages(slot-d.base, [][]byte{buf})
}

// ReadCluster pages len(bufs) contiguous slots starting at start in with a
// single I/O operation — the read-side mirror of WriteCluster, used by
// clustered pagein. The run must lie within one device; callers clamp
// their window with DeviceBounds first.
func (s *Swap) ReadCluster(start int64, bufs [][]byte) error {
	s.stats.Inc(sim.CtrSwapIOs)
	d := s.deviceFor(start)
	if start-d.base+int64(len(bufs)) > d.size {
		return fmt.Errorf("swap: read cluster at %d spans devices", start)
	}
	return d.dev.ReadPages(start-d.base, bufs)
}

// DeviceBounds returns the global slot range [lo, hi) of the device owning
// slot. Cluster I/O never crosses a device (one I/O goes to one disk), so
// pagein windows are clamped to these bounds.
func (s *Swap) DeviceBounds(slot int64) (lo, hi int64) {
	d := s.deviceFor(slot)
	return d.base, d.base + d.size
}

// WriteSlot pages buf out to a single slot.
func (s *Swap) WriteSlot(slot int64, buf []byte) error {
	s.stats.Inc(sim.CtrSwapIOs)
	d := s.deviceFor(slot)
	return d.dev.WritePages(slot-d.base, [][]byte{buf})
}

// WriteCluster pages a contiguous cluster out with a single I/O
// operation. The cluster always lies within one device (AllocContig
// guarantees it).
func (s *Swap) WriteCluster(start int64, bufs [][]byte) error {
	s.stats.Inc(sim.CtrSwapIOs)
	d := s.deviceFor(start)
	if start-d.base+int64(len(bufs)) > d.size {
		return fmt.Errorf("swap: cluster at %d spans devices", start)
	}
	return d.dev.WritePages(start-d.base, bufs)
}

// InUse reports whether a slot is allocated (test/debug helper).
func (s *Swap) InUse(slot int64) bool {
	if slot < 0 || slot >= s.nSlots.Load() {
		return false
	}
	d := s.deviceFor(slot)
	sh := d.shardFor(slot - d.base)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.inUse[slot-sh.base]
}
