package swap

import (
	"sync/atomic"
	"testing"

	"uvm/internal/sim"
)

// Live resize of the per-device async window through the swap layer:
// SetAIOWindow must reach writers that already exist (the control plane
// resizes mid-run), and in-flight cluster writes admitted under the old,
// larger window must be accepted and drained across the shrink.
func TestSetAIOWindowLiveShrink(t *testing.T) {
	s, stats := newTestSwap(256)
	s.SetAIOWindow(4)

	// Materialise the device writer, then hold its writes on the gate.
	dev := s.devs.Load().devices[0]
	w := s.ensureWriter(dev)
	if got := w.Window(); got != 4 {
		t.Fatalf("writer window = %d, want 4", got)
	}
	release := make(chan struct{})
	var held atomic.Int32
	heldFull := make(chan struct{})
	w.SetTestGate(func() {
		if held.Add(1) == 4 {
			close(heldFull)
		}
		<-release
	})

	done := make(chan error, 5)
	for i := 0; i < 4; i++ {
		start, err := s.AllocContig(2)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.WriteClusterAsync(start, [][]byte{pageOf(byte(i)), pageOf(byte(i))},
			func(err error) { done <- err }); err != nil {
			t.Fatal(err)
		}
	}
	<-heldFull

	// Shrink while four clusters are on the wire: the existing writer
	// must pick the bound up immediately.
	s.SetAIOWindow(1)
	if got := w.Window(); got != 1 {
		t.Fatalf("writer window after live shrink = %d, want 1", got)
	}
	if got := s.AIOInFlight(); got != 4 {
		t.Fatalf("aio in flight across shrink = %d, want 4", got)
	}

	close(release)
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("completion %d: %v", i, err)
		}
	}
	s.DrainAsync()
	if got := s.AIOInFlight(); got != 0 {
		t.Fatalf("aio in flight after drain = %d", got)
	}
	if got := stats.Get(sim.CtrSwapAIOWrites); got != 4 {
		t.Fatalf("aio writes = %d, want 4", got)
	}

	// The shrunken window still admits new work, one cluster at a time.
	start, err := s.AllocContig(2)
	if err != nil {
		t.Fatal(err)
	}
	w.SetTestGate(nil)
	if err := s.WriteClusterAsync(start, [][]byte{pageOf(0xaa), pageOf(0xbb)},
		func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("post-shrink completion: %v", err)
	}
	s.DrainAsync()
}
