// Package param defines the machine parameters shared by every layer of
// the simulated kernel: page geometry, virtual and physical address types,
// protection bits, inheritance codes and mapping advice.
//
// These mirror the definitions in <machine/param.h>, <uvm/uvm_param.h> and
// <sys/mman.h> of a 4.4BSD-derived kernel. The simulated machine is an
// i386-class 32-bit system with 4 KB pages, matching the platform the
// paper's measurements were taken on.
package param

import "fmt"

// Page geometry. PageSize is fixed at 4096 bytes; the machine-independent
// code never assumes any other value, but tests exercise the helpers
// against the constant so a future change is caught.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// VAddr is a virtual address within some address space.
type VAddr uint64

// PAddr is a physical address (frame base) in simulated RAM.
type PAddr uint64

// VSize is a size in bytes of a virtual range.
type VSize uint64

// PageOff is a page-aligned byte offset within a memory object.
type PageOff uint64

// Standard user address-space layout for simulated processes, loosely
// modeled on the i386 layout used by NetBSD 1.3/1.4.
const (
	UserTextBase  VAddr = 0x0000_1000 // text starts one page up (NULL guard)
	UserStackTop  VAddr = 0xbfbf_e000 // top of user stack
	UserMax       VAddr = 0xbfc0_0000 // end of user address space
	KernelBase    VAddr = 0xc000_0000 // kernel virtual address base
	KernelMax     VAddr = 0xffc0_0000 // end of kernel virtual address space
	MmapHintBase  VAddr = 0x4000_0000 // default hint for anonymous mmap
	SharedLibBase VAddr = 0x4800_0000 // base for mapped shared libraries
)

// Prot is a protection bit mask.
type Prot uint8

const (
	ProtNone  Prot = 0
	ProtRead  Prot = 1 << 0
	ProtWrite Prot = 1 << 1
	ProtExec  Prot = 1 << 2

	ProtRW  = ProtRead | ProtWrite
	ProtRX  = ProtRead | ProtExec
	ProtRWX = ProtRead | ProtWrite | ProtExec

	// ProtAll is the maximum protection any mapping may carry.
	ProtAll = ProtRWX
)

// Allows reports whether p grants every bit in want.
func (p Prot) Allows(want Prot) bool { return p&want == want }

// String renders the protection in the familiar "rwx" form.
func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Inherit controls what a child receives for a mapping at fork time,
// settable per mapping with the minherit system call.
type Inherit uint8

const (
	// InheritCopy gives the child a copy-on-write copy (the default for
	// private mappings in traditional Unix).
	InheritCopy Inherit = iota
	// InheritShare gives the child shared access to the same memory.
	InheritShare
	// InheritNone leaves the range unmapped in the child.
	InheritNone
)

func (i Inherit) String() string {
	switch i {
	case InheritCopy:
		return "copy"
	case InheritShare:
		return "share"
	case InheritNone:
		return "none"
	}
	return fmt.Sprintf("inherit(%d)", uint8(i))
}

// Advice is the madvise-style usage hint stored in a map entry. The fault
// handlers use it to size their lookahead window.
type Advice uint8

const (
	AdviceNormal Advice = iota
	AdviceRandom
	AdviceSequential
)

func (a Advice) String() string {
	switch a {
	case AdviceNormal:
		return "normal"
	case AdviceRandom:
		return "random"
	case AdviceSequential:
		return "sequential"
	}
	return fmt.Sprintf("advice(%d)", uint8(a))
}

// Lookahead returns the fault-time mapping window for the advice: how many
// resident neighbour pages ahead of and behind the faulting address the
// UVM fault routine should map in (paper §5.4: default four ahead, three
// behind).
func (a Advice) Lookahead() (ahead, behind int) {
	switch a {
	case AdviceNormal:
		return 4, 3
	case AdviceSequential:
		return 8, 0
	default: // AdviceRandom
		return 0, 0
	}
}

// Trunc rounds a virtual address down to a page boundary.
func Trunc(va VAddr) VAddr { return va &^ VAddr(PageMask) }

// Round rounds a virtual address up to a page boundary.
func Round(va VAddr) VAddr { return (va + VAddr(PageMask)) &^ VAddr(PageMask) }

// TruncSize rounds a size down to a whole number of pages.
func TruncSize(sz VSize) VSize { return sz &^ VSize(PageMask) }

// RoundSize rounds a size up to a whole number of pages.
func RoundSize(sz VSize) VSize { return (sz + VSize(PageMask)) &^ VSize(PageMask) }

// Pages returns the number of pages needed to hold sz bytes.
func Pages(sz VSize) int { return int(RoundSize(sz) >> PageShift) }

// PageAligned reports whether va sits on a page boundary.
func PageAligned(va VAddr) bool { return va&VAddr(PageMask) == 0 }

// OffToPage converts a byte offset within an object to a page index.
func OffToPage(off PageOff) int { return int(off >> PageShift) }

// PageToOff converts a page index within an object to a byte offset.
func PageToOff(idx int) PageOff { return PageOff(idx) << PageShift }
