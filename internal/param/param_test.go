package param

import (
	"testing"
	"testing/quick"
)

func TestPageGeometry(t *testing.T) {
	if PageSize != 4096 {
		t.Fatalf("PageSize = %d, want 4096", PageSize)
	}
	if 1<<PageShift != PageSize {
		t.Fatalf("PageShift %d inconsistent with PageSize %d", PageShift, PageSize)
	}
	if PageMask != PageSize-1 {
		t.Fatalf("PageMask = %#x, want %#x", PageMask, PageSize-1)
	}
}

func TestTruncRound(t *testing.T) {
	cases := []struct {
		va         VAddr
		trunc, rnd VAddr
	}{
		{0, 0, 0},
		{1, 0, PageSize},
		{PageSize - 1, 0, PageSize},
		{PageSize, PageSize, PageSize},
		{PageSize + 1, PageSize, 2 * PageSize},
		{0xbfbf_dfff, 0xbfbf_d000, 0xbfbf_e000},
	}
	for _, c := range cases {
		if got := Trunc(c.va); got != c.trunc {
			t.Errorf("Trunc(%#x) = %#x, want %#x", c.va, got, c.trunc)
		}
		if got := Round(c.va); got != c.rnd {
			t.Errorf("Round(%#x) = %#x, want %#x", c.va, got, c.rnd)
		}
	}
}

func TestTruncRoundProperties(t *testing.T) {
	prop := func(raw uint32) bool {
		va := VAddr(raw)
		tr, rd := Trunc(va), Round(va)
		if !PageAligned(tr) || !PageAligned(rd) {
			return false
		}
		if tr > va || rd < va {
			return false
		}
		if rd-tr != 0 && rd-tr != PageSize {
			return false
		}
		// Idempotence.
		return Trunc(tr) == tr && Round(rd) == rd
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSizeHelpers(t *testing.T) {
	if Pages(0) != 0 {
		t.Errorf("Pages(0) = %d", Pages(0))
	}
	if Pages(1) != 1 || Pages(PageSize) != 1 || Pages(PageSize+1) != 2 {
		t.Errorf("Pages boundary behaviour wrong: %d %d %d",
			Pages(1), Pages(PageSize), Pages(PageSize+1))
	}
	if RoundSize(3) != PageSize || TruncSize(PageSize+3) != PageSize {
		t.Errorf("size rounding wrong")
	}
}

func TestPageOffConversion(t *testing.T) {
	prop := func(raw uint16) bool {
		idx := int(raw)
		return OffToPage(PageToOff(idx)) == idx
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestProtAllows(t *testing.T) {
	if !ProtRW.Allows(ProtRead) || !ProtRW.Allows(ProtWrite) {
		t.Errorf("ProtRW should allow read and write")
	}
	if ProtRead.Allows(ProtWrite) {
		t.Errorf("read-only must not allow write")
	}
	if !ProtNone.Allows(ProtNone) {
		t.Errorf("none allows none")
	}
	if ProtNone.Allows(ProtRead) {
		t.Errorf("none must not allow read")
	}
}

func TestProtString(t *testing.T) {
	cases := map[Prot]string{
		ProtNone:             "---",
		ProtRead:             "r--",
		ProtWrite:            "-w-",
		ProtExec:             "--x",
		ProtRW:               "rw-",
		ProtRX:               "r-x",
		ProtRWX:              "rwx",
		ProtWrite | ProtExec: "-wx",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Prot(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestInheritAdviceStrings(t *testing.T) {
	if InheritCopy.String() != "copy" || InheritShare.String() != "share" || InheritNone.String() != "none" {
		t.Errorf("inherit strings wrong")
	}
	if AdviceNormal.String() != "normal" || AdviceRandom.String() != "random" || AdviceSequential.String() != "sequential" {
		t.Errorf("advice strings wrong")
	}
	if Inherit(9).String() == "" || Advice(9).String() == "" {
		t.Errorf("unknown values must still render")
	}
}

func TestAdviceLookahead(t *testing.T) {
	a, b := AdviceNormal.Lookahead()
	if a != 4 || b != 3 {
		t.Errorf("normal lookahead = (%d,%d), want (4,3) per paper §5.4", a, b)
	}
	a, b = AdviceRandom.Lookahead()
	if a != 0 || b != 0 {
		t.Errorf("random lookahead must be disabled, got (%d,%d)", a, b)
	}
	a, b = AdviceSequential.Lookahead()
	if a <= 4 || b != 0 {
		t.Errorf("sequential lookahead should be deeper and forward-only, got (%d,%d)", a, b)
	}
}
