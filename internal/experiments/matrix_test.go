package experiments

import (
	"strings"
	"testing"
)

// TestMatrixCells runs one quick cell per workload on the default
// profile plus a fault-injected reclaim cell, checking each produces a
// report and a clean Busy sweep. The full profile × workload sweep runs
// in CI's matrix smoke job; this keeps the runner itself honest under
// plain `go test`.
func TestMatrixCells(t *testing.T) {
	cells := RunMatrix(MatrixWorkloads(), []string{"hdd97"}, true, true)
	want := len(MatrixWorkloads()) + 1 // + the fault cell
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Err != nil {
			t.Errorf("cell %s failed: %v\nreport:\n%s", c.Name(), c.Err, c.Report)
		}
		if c.BusyLeaked != 0 {
			t.Errorf("cell %s leaked %d Busy pages", c.Name(), c.BusyLeaked)
		}
		if !strings.Contains(c.Report, "ok (busy sweep clean)") {
			t.Errorf("cell %s report missing success marker:\n%s", c.Name(), c.Report)
		}
	}
}

// TestMatrixProfilesDiffer checks the profiles actually change the
// machine: the same objwb cell must report different simulated
// throughput on hdd97 and ramdisk (the latter's I/O is nearly free).
func TestMatrixProfilesDiffer(t *testing.T) {
	hdd, _, err := ObjWBRunOn("hdd97", "async-cluster", "vnode", objWBConfigs()[2].Tune, 2)
	if err != nil {
		t.Fatalf("hdd97: %v", err)
	}
	ram, _, err := ObjWBRunOn("ramdisk", "async-cluster", "vnode", objWBConfigs()[2].Tune, 2)
	if err != nil {
		t.Fatalf("ramdisk: %v", err)
	}
	if ram.Sim >= hdd.Sim {
		t.Errorf("ramdisk sim time %v not below hdd97 %v", ram.Sim, hdd.Sim)
	}
}
