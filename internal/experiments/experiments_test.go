package experiments

import (
	"io"
	"strings"
	"testing"
	"time"
)

// The experiment tests verify the paper's qualitative claims — who wins,
// where the knees are — on trimmed parameter sweeps.

func TestTable1MatchesPaperRows(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.UVM >= r.BSD {
			t.Errorf("%s: UVM %d >= BSD %d", r.Operation, r.UVM, r.BSD)
		}
	}
	// The per-process rows are modelled mechanically and must be exact.
	if rows[0].BSD != 11 || rows[0].UVM != 6 {
		t.Errorf("cat row = %d/%d, want 11/6", rows[0].BSD, rows[0].UVM)
	}
	if rows[1].BSD != 21 || rows[1].UVM != 12 {
		t.Errorf("od row = %d/%d, want 21/12", rows[1].BSD, rows[1].UVM)
	}
	if rows[2].BSD != 50 || rows[2].UVM != 26 {
		t.Errorf("single-user row = %d/%d, want 50/26", rows[2].BSD, rows[2].UVM)
	}
	// Scenario rows: within 10% of the paper.
	for _, r := range rows[3:] {
		if !within(r.BSD, r.PaperBSD, 0.10) || !within(r.UVM, r.PaperUVM, 0.10) {
			t.Errorf("%s: %d/%d vs paper %d/%d (>10%% off)",
				r.Operation, r.BSD, r.UVM, r.PaperBSD, r.PaperUVM)
		}
	}
}

func within(got, want int, tol float64) bool {
	d := float64(got-want) / float64(want)
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.BSD != r.PaperBSD {
			t.Errorf("%s: BSD faults %d, paper %d", r.Command, r.BSD, r.PaperBSD)
		}
		if r.UVM != r.PaperUVM {
			t.Errorf("%s: UVM faults %d, paper %d", r.Command, r.UVM, r.PaperUVM)
		}
	}
}

func TestTable3Orderings(t *testing.T) {
	rows, err := Table3(100)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]T3Row{}
	for _, r := range rows {
		if r.UVM >= r.BSD {
			t.Errorf("%s: UVM %v >= BSD %v (paper: UVM wins every case)", r.Case, r.UVM, r.BSD)
		}
		byName[r.Case] = r
	}
	// The read/private anomaly: under BSD it costs much more than
	// read/shared (the needless shadow object); under UVM they are close.
	bAnom := float64(byName["read/private file"].BSD) / float64(byName["read/shared file"].BSD)
	uAnom := float64(byName["read/private file"].UVM) / float64(byName["read/shared file"].UVM)
	if bAnom < 1.2 {
		t.Errorf("BSD read/private should clearly exceed read/shared: ratio %.2f", bAnom)
	}
	if uAnom > 1.1 {
		t.Errorf("UVM read/private should track read/shared: ratio %.2f", uAnom)
	}
	// Zero-fill reads and writes are near-identical under UVM (49 vs 48).
	zf := byName["read/zero fill"].UVM - byName["write/zero fill"].UVM
	if zf < 0 {
		zf = -zf
	}
	if zf > byName["write/zero fill"].UVM/10 {
		t.Errorf("UVM zero-fill read/write should be close: %v vs %v",
			byName["read/zero fill"].UVM, byName["write/zero fill"].UVM)
	}
}

func TestFigure2Knee(t *testing.T) {
	points, err := Figure2([]int{50, 200})
	if err != nil {
		t.Fatal(err)
	}
	small, large := points[0], points[1]
	// Below the cache limit the systems are comparable.
	if small.BSD > 3*small.UVM {
		t.Errorf("below the limit BSD (%v) should be near UVM (%v)", small.BSD, small.UVM)
	}
	// Beyond it, BSD VM falls off the cliff; UVM scales linearly.
	if large.BSD < 50*large.UVM {
		t.Errorf("beyond the limit BSD (%v) should be disk-bound vs UVM (%v)", large.BSD, large.UVM)
	}
	if large.UVM > 10*small.UVM {
		t.Errorf("UVM should stay at memory speed: %v -> %v", small.UVM, large.UVM)
	}
}

func TestFigure5Crossover(t *testing.T) {
	points, err := Figure5([]int{16, 44})
	if err != nil {
		t.Fatal(err)
	}
	within, beyond := points[0], points[1]
	// Below RAM the curves coincide.
	r := float64(within.BSD) / float64(within.UVM)
	if r > 1.3 || r < 0.7 {
		t.Errorf("below RAM the systems should match: BSD %v UVM %v", within.BSD, within.UVM)
	}
	// Beyond RAM, BSD VM's unclustered pageout is several times slower.
	if beyond.BSD < 3*beyond.UVM {
		t.Errorf("beyond RAM BSD (%v) should be >3x UVM (%v)", beyond.BSD, beyond.UVM)
	}
}

func TestFigure6Orderings(t *testing.T) {
	points, err := Figure6([]int{0, 8}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.MB == 0 {
			continue
		}
		if p.UVMTouched >= p.BSDTouched {
			t.Errorf("%dMB: UVM touched %v >= BSD %v", p.MB, p.UVMTouched, p.BSDTouched)
		}
		if p.UVMPlain > p.BSDPlain {
			t.Errorf("%dMB: UVM plain %v > BSD %v", p.MB, p.UVMPlain, p.BSDPlain)
		}
		if p.BSDTouched < 5*p.BSDPlain {
			t.Errorf("%dMB: touched (%v) should dwarf untouched (%v)", p.MB, p.BSDTouched, p.BSDPlain)
		}
	}
	// Linear growth: the 8 MB touched point must dwarf the 0 MB one.
	if points[1].BSDTouched < 100*points[0].BSDTouched {
		t.Errorf("fork cost not growing with memory: %v -> %v",
			points[0].BSDTouched, points[1].BSDTouched)
	}
}

func TestDataMovementSavings(t *testing.T) {
	rows, err := DataMovement([]int{1, 256})
	if err != nil {
		t.Fatal(err)
	}
	one, big := rows[0], rows[1]
	// Paper: 26% saving at one page, 78% at 256. Accept a generous band
	// around each, but require monotone improvement and the right scale.
	if one.LoanSaving < 0.10 || one.LoanSaving > 0.45 {
		t.Errorf("1-page loan saving %.0f%%, paper says 26%%", one.LoanSaving*100)
	}
	if big.LoanSaving < 0.65 || big.LoanSaving > 0.90 {
		t.Errorf("256-page loan saving %.0f%%, paper says 78%%", big.LoanSaving*100)
	}
	if big.LoanSaving <= one.LoanSaving {
		t.Error("saving must grow with transfer size")
	}
	// Map entry passing cost is size-independent; transfer is per-page
	// but far below copy.
	if big.MEP > 2*one.MEP {
		t.Errorf("MEP should be ~size-independent: %v vs %v", one.MEP, big.MEP)
	}
	if big.TransferRcv > big.Copy/3 {
		t.Errorf("transfer (%v) should be far cheaper than copy (%v)", big.TransferRcv, big.Copy)
	}
}

func TestRCDirection(t *testing.T) {
	bsd, uv, err := RC()
	if err != nil {
		t.Fatal(err)
	}
	if uv >= bsd {
		t.Errorf("UVM rc time %v >= BSD %v; paper reports a 10%% improvement", uv, bsd)
	}
}

func TestAllRunnersExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("full runner sweep in short mode")
	}
	for _, r := range All(true) {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			var sb strings.Builder
			start := time.Now()
			if err := r.Run(&sb); err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if sb.Len() == 0 {
				t.Fatalf("%s: empty report", r.ID)
			}
			t.Logf("%s in %v", r.ID, time.Since(start))
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig5", true); !ok {
		t.Error("fig5 not found")
	}
	if _, ok := Lookup("nope", true); ok {
		t.Error("bogus id found")
	}
	var w io.Writer = io.Discard
	_ = w
}

func TestExperimentsDeterministic(t *testing.T) {
	// The whole point of the simulated clock: identical runs produce
	// byte-identical reports. Guard it for a representative experiment of
	// each kind (counts, times, paging).
	for _, id := range []string{"table1", "table3", "fig5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			r, ok := Lookup(id, true)
			if !ok {
				t.Fatal("missing runner")
			}
			var a, b strings.Builder
			if err := r.Run(&a); err != nil {
				t.Fatal(err)
			}
			if err := r.Run(&b); err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Fatalf("non-deterministic output:\n--- run1:\n%s\n--- run2:\n%s", a.String(), b.String())
			}
		})
	}
}
