package experiments

import (
	"fmt"
	"io"
	"time"

	"uvm/internal/param"
	"uvm/internal/vmapi"
)

// F6Point is one point of Figure 6: average fork-and-wait time with a
// given amount of touched anonymous memory in the parent, for the
// child-touches-data and child-exits-immediately variants.
type F6Point struct {
	MB                     int
	BSDTouched, UVMTouched time.Duration
	BSDPlain, UVMPlain     time.Duration
}

// Figure6 reproduces Figure 6: process fork-and-wait overhead. Each cycle
// forks a child which either writes every page of the inherited
// anonymous memory once (triggering a full copy-on-write storm) or exits
// untouched; cycles are averaged. The measured work is exactly the
// paper's: address-space creation, mapping copy + write-protection, COW
// faulting, and address-space teardown.
func Figure6(sizesMB []int, cycles int) ([]F6Point, error) {
	cfg := stdConfig()
	cfg.RAMPages = 64 << 20 >> 12 // parent + child copies must fit: isolate COW cost from paging
	var points []F6Point
	for _, mb := range sizesMB {
		var times [4]time.Duration
		i := 0
		for _, touch := range []bool{true, false} {
			bsd, uv := pair(cfg)
			for _, sys := range []vmapi.System{bsd, uv} {
				d, err := forkWait(sys, mb, cycles, touch)
				if err != nil {
					return nil, err
				}
				times[i] = d
				i++
			}
		}
		points = append(points, F6Point{mb, times[0], times[1], times[2], times[3]})
	}
	return points, nil
}

func forkWait(sys vmapi.System, mb, cycles int, childTouches bool) (time.Duration, error) {
	p, err := sys.NewProcess("parent")
	if err != nil {
		return 0, err
	}
	size := param.VSize(mb) << 20
	var va param.VAddr
	if mb > 0 {
		va, err = p.Mmap(0, size, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		if err != nil {
			return 0, err
		}
		if err := p.TouchRange(va, size, true); err != nil {
			return 0, err
		}
	}
	clock := sys.Machine().Clock
	t0 := clock.Now()
	for i := 0; i < cycles; i++ {
		child, err := p.Fork("child")
		if err != nil {
			return 0, err
		}
		if childTouches && mb > 0 {
			if err := child.TouchRange(va, size, true); err != nil {
				return 0, err
			}
		}
		child.Exit()
	}
	total := clock.Since(t0)
	p.Exit()
	return total / time.Duration(cycles), nil
}

// ReportFigure6 renders the series.
func ReportFigure6(w io.Writer, sizesMB []int, cycles int) error {
	points, err := Figure6(sizesMB, cycles)
	if err != nil {
		return err
	}
	header(w, fmt.Sprintf("Figure 6: fork-and-wait overhead (avg of %d cycles)", cycles))
	var hi float64
	for _, p := range points {
		if v := p.BSDTouched.Seconds(); v > hi {
			hi = v
		}
	}
	fmt.Fprintf(w, "%6s %16s %16s %16s %16s   %s\n",
		"MB", "BSD (touched)", "UVM (touched)", "BSD", "UVM", "linear time, touched variant (b=BSD, u=UVM)")
	for _, p := range points {
		fmt.Fprintf(w, "%6d %16s %16s %16s %16s   b %s\n%77s u %s\n", p.MB,
			p.BSDTouched.Round(time.Microsecond), p.UVMTouched.Round(time.Microsecond),
			p.BSDPlain.Round(time.Microsecond), p.UVMPlain.Round(time.Microsecond),
			linBar(p.BSDTouched.Seconds(), hi, 24), "", linBar(p.UVMTouched.Seconds(), hi, 24))
	}
	fmt.Fprintln(w, "(paper: all four linear in size; UVM below BSD VM in both variants, with the")
	fmt.Fprintln(w, " touched curves far above the untouched ones)")
	return nil
}
