// Package experiments regenerates every table and figure in the paper's
// evaluation: Table 1 (map entries), Table 2 (fault counts), Table 3
// (map-fault-unmap latency), Figure 2 (object cache vs file access),
// Figure 5 (anonymous allocation under paging), Figure 6 (fork+wait
// overhead), the §7 data movement measurements, and the §8 /etc/rc note.
//
// Each driver boots both VM systems on identical machines and reports the
// paper's metric side by side. Absolute simulated times are not expected
// to match the 1999 testbed; orderings, ratios and crossover points are.
package experiments

import (
	"fmt"
	"io"
	"math"

	"uvm/internal/bsdvm"
	"uvm/internal/sim"
	"uvm/internal/uvm"
	"uvm/internal/vfs"
	"uvm/internal/vmapi"
)

// vnodeAlias keeps experiment signatures compact.
type vnodeAlias = vfs.Vnode

// profile is the machine profile every experiment machine boots with.
// Empty — the paper's hdd97 testbed — unless SetProfile was called, so
// default runs stay byte-identical to the pre-profile code. Set once by
// the driver before experiments run; not safe to change concurrently
// with a running experiment.
var profile string

// SetProfile selects the machine profile for subsequent experiment runs
// (uvmbench -profile). Empty restores the default.
func SetProfile(name string) error {
	if _, err := sim.CostsForProfile(name); err != nil {
		return err
	}
	profile = name
	return nil
}

// CurrentProfile returns the profile experiments boot with, naming the
// default explicitly.
func CurrentProfile() string {
	if profile == "" {
		return sim.DefaultProfile
	}
	return profile
}

// stdConfig is the paper's testbed: 32 MB of RAM (§6).
func stdConfig() vmapi.MachineConfig {
	return vmapi.MachineConfig{
		RAMPages:  32 << 20 >> 12,
		SwapPages: 128 << 20 >> 12,
		FSPages:   256 << 20 >> 12,
		MaxVnodes: 2000,
		Profile:   profile,
	}
}

// bigMemConfig gives enough RAM that an experiment is never memory-bound
// (used by Figure 2, which isolates the cache policy).
func bigMemConfig() vmapi.MachineConfig {
	cfg := stdConfig()
	cfg.RAMPages = 96 << 20 >> 12
	return cfg
}

// uvmDeterministic boots UVM with inline reclaim. The paper experiments
// measure the simulated clock and must produce byte-identical reports on
// identical runs; an asynchronous pagedaemon cannot promise that, because
// how far its proactive reclaim runs ahead depends on goroutine
// scheduling. Inline reclaim is also what the 1999 system effectively
// did — UVM shipped under the pre-SMP big lock. The daemon's own effect
// is measured where it belongs: the Pressure and Scaling experiments.
func uvmDeterministic(m *vmapi.Machine) vmapi.System {
	cfg := uvm.DefaultConfig()
	cfg.InlineReclaim = true
	return uvm.BootConfig(m, cfg)
}

// pair boots both systems on fresh, identical machines.
func pair(cfg vmapi.MachineConfig) (bsd, uv vmapi.System) {
	return bsdvm.Boot(vmapi.NewMachine(cfg)), uvmDeterministic(vmapi.NewMachine(cfg))
}

// Runner is one experiment: it writes its report to w.
type Runner struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
}

// All returns every experiment in paper order. quick trims the parameter
// sweeps for use under `go test`.
func All(quick bool) []Runner {
	return []Runner{
		{"table1", "Table 1: allocated map entries", func(w io.Writer) error { return ReportTable1(w) }},
		{"table2", "Table 2: page fault counts", func(w io.Writer) error { return ReportTable2(w) }},
		{"table3", "Table 3: map-fault-unmap time", func(w io.Writer) error { return ReportTable3(w, iters(quick, 200, 2000)) }},
		{"fig2", "Figure 2: object cache effect on file access", func(w io.Writer) error {
			return ReportFigure2(w, figure2Sizes(quick))
		}},
		{"fig5", "Figure 5: anonymous memory allocation time", func(w io.Writer) error {
			return ReportFigure5(w, figure5Sizes(quick))
		}},
		{"fig6", "Figure 6: fork+wait overhead", func(w io.Writer) error {
			return ReportFigure6(w, figure6Sizes(quick), iters(quick, 5, 25))
		}},
		{"datamove", "§7: data movement mechanisms vs copying", func(w io.Writer) error {
			return ReportDataMovement(w)
		}},
		{"rc", "§8: /etc/rc-style script time", func(w io.Writer) error { return ReportRC(w) }},
		{"scaling", "Scaling: parallel fault throughput (beyond the paper)", func(w io.Writer) error {
			return ReportScaling(w, []NamedBooter{{"bsdvm", bsdvm.Boot}, {"uvm", uvm.Boot}})
		}},
		{"pressure", "Pressure: reclaim tail latency, inline vs pagedaemon (beyond the paper)", func(w io.Writer) error {
			return ReportPressure(w, pressureWorkers(quick), iters(quick, 600, 2500))
		}},
		{"reclaimbw", "ReclaimBW: pageout bandwidth, sync vs async vs parallel reclaim (beyond the paper)", func(w io.Writer) error {
			return ReportReclaimBW(w, iters(quick, 1500, 6000))
		}},
		{"objwb", "ObjWB: object writeback (msync) bandwidth, sync vs async vs clustered (beyond the paper)", func(w io.Writer) error {
			return ReportObjWB(w, iters(quick, 4, 16))
		}},
		{"traffic", "Traffic: multi-tenant Zipf workload, fault tail latency (beyond the paper)", func(w io.Writer) error {
			return ReportTraffic(w, quick, TrafficOverrides{ZipfS: -1})
		}},
		{"autotune", "Autotune: feedback controllers vs static sweeps (beyond the paper)", func(w io.Writer) error {
			return ReportAutotune(w, quick)
		}},
	}
}

func pressureWorkers(quick bool) []int {
	if quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8}
}

func iters(quick bool, q, full int) int {
	if quick {
		return q
	}
	return full
}

func figure2Sizes(quick bool) []int {
	if quick {
		return []int{25, 75, 150, 300}
	}
	return []int{25, 50, 75, 100, 125, 150, 200, 250, 300, 400, 500}
}

func figure5Sizes(quick bool) []int {
	if quick {
		return []int{8, 24, 40}
	}
	return []int{2, 6, 10, 14, 18, 22, 26, 30, 34, 38, 42, 46, 50}
}

func figure6Sizes(quick bool) []int {
	if quick {
		return []int{0, 8}
	}
	return []int{0, 1, 2, 4, 6, 8, 10, 12, 15}
}

// Lookup returns the runner with the given id.
func Lookup(id string, quick bool) (Runner, bool) {
	for _, r := range All(quick) {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "=")
	}
	fmt.Fprintln(w)
}

// linBar renders a linear bar for v on a scale reaching max, width
// characters wide (Figure 6's axes are linear).
func linBar(v, max float64, width int) string {
	if v <= 0 || max <= 0 {
		return ""
	}
	n := int(v / max * float64(width-1))
	out := make([]byte, n+1)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}

// logBar renders a logarithmic bar for v on a scale reaching max, width
// characters wide — enough to see the shape of a figure whose values span
// decades (as Figure 2's log-scale axis does).
func logBar(v, min, max float64, width int) string {
	if v <= 0 || max <= min {
		return ""
	}
	lv, lmin, lmax := math.Log(v), math.Log(min), math.Log(max)
	frac := (lv - lmin) / (lmax - lmin)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width-1)) + 1
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
