package experiments

import (
	"testing"

	"uvm/internal/uvm"
)

// TestObjWBRunsOnAllConfigs smoke-tests the driver: every configuration
// completes the dirty-msync rounds on both backends with real writeback.
func TestObjWBRunsOnAllConfigs(t *testing.T) {
	points, err := ObjWB(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(objWBConfigs()) {
		t.Fatalf("got %d points", len(points))
	}
	for _, pt := range points {
		if pt.Pageouts != 2*objWBRegionPages {
			t.Fatalf("%s/%s: wrote %d pages, want %d (msync must flush every dirty page exactly once per round)",
				pt.Backend, pt.Config, pt.Pageouts, 2*objWBRegionPages)
		}
		if pt.Sim <= 0 || pt.Wall <= 0 || pt.SimBW <= 0 {
			t.Fatalf("%s/%s: degenerate measurement: %+v", pt.Backend, pt.Config, pt)
		}
	}
}

// TestObjWBAsyncBeatsSyncSimBandwidth is the PR's headline claim for the
// object side: pushing msync's dirty pages through the asynchronous
// clustered window sustains strictly higher writeback bandwidth than the
// synchronous one-page-one-I/O baseline. Simulated bandwidth is a
// modelling property (the sync path charges every page's disk time to
// the caller's clock, the async path overlaps it), so the assertion
// holds on any host, single-core CI included.
func TestObjWBAsyncBeatsSyncSimBandwidth(t *testing.T) {
	for _, backend := range []string{"vnode", "aobj"} {
		syncPt, err := ObjWBRun("sync", backend, func(c *uvm.Config) {}, 4)
		if err != nil {
			t.Fatal(err)
		}
		asyncPt, err := ObjWBRun("async-cluster", backend, func(c *uvm.Config) {
			c.AsyncWriteback = true
			c.WritebackWindow = 4
			c.WritebackCluster = 16
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: sim bandwidth sync %.0f pg/s, async-cluster %.0f pg/s (disk-busy %v)",
			backend, syncPt.SimBW, asyncPt.SimBW, asyncPt.DiskBusy)
		if asyncPt.Clusters == 0 {
			t.Fatalf("%s: async run submitted no writeback clusters: %+v", backend, asyncPt)
		}
		if asyncPt.SimBW <= syncPt.SimBW {
			t.Errorf("%s: async clustered writeback bandwidth (%.0f pg/s) not above sync baseline (%.0f pg/s)",
				backend, asyncPt.SimBW, syncPt.SimBW)
		}
		// Clustering merges contiguous pages into one command, so the
		// async run must issue far fewer cluster I/Os than pages.
		if asyncPt.Clusters*4 > asyncPt.Pageouts {
			t.Errorf("%s: clustering ineffective: %d clusters for %d pages",
				backend, asyncPt.Clusters, asyncPt.Pageouts)
		}
	}
}
