package experiments

import (
	"fmt"
	"io"

	"uvm/internal/workload"
)

// T2Row is one row of Table 2: page fault counts for a command.
type T2Row struct {
	Command            string
	BSD, UVM           int64
	PaperBSD, PaperUVM int64
}

// Table2 reproduces Table 2: page fault counts for five commands. Each
// command's warm/cold page split is calibrated so BSD VM (one fault per
// page) lands on the paper's BSD column; UVM's column is then *produced*
// by its fault handler's resident-page lookahead (§5.4), not assumed.
func Table2() ([]T2Row, error) {
	paper := map[string][2]int64{
		"ls /":         {59, 33},
		"finger chuck": {128, 74},
		"cc hello.c":   {1086, 590},
		"man csh":      {114, 64},
		"newaliases":   {229, 127},
	}
	var rows []T2Row
	for _, cmd := range workload.PaperCommands() {
		bsd, uv := pair(stdConfig())
		bf, err := cmd.Run(bsd)
		if err != nil {
			return nil, err
		}
		uf, err := cmd.Run(uv)
		if err != nil {
			return nil, err
		}
		p := paper[cmd.Name]
		rows = append(rows, T2Row{cmd.Name, bf, uf, p[0], p[1]})
	}
	return rows, nil
}

// ReportTable2 renders the table.
func ReportTable2(w io.Writer) error {
	rows, err := Table2()
	if err != nil {
		return err
	}
	header(w, "Table 2: page fault counts")
	fmt.Fprintf(w, "%-16s %10s %10s   %s\n", "Command", "BSD VM", "UVM", "(paper: BSD/UVM)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10d %10d   (%d/%d)\n", r.Command, r.BSD, r.UVM, r.PaperBSD, r.PaperUVM)
	}
	return nil
}
