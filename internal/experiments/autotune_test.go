package experiments

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestPaperReportsByteIdenticalWithAutoTuneOff is the regression fence
// for the control plane: every paper experiment boots with AutoTune
// clear, so the reports must stay byte-identical to the goldens captured
// before the controllers landed. A diff here means the plane leaked into
// the deterministic path — an always-on tick, a counter recorded
// unconditionally in a path the paper times, a changed default — and the
// paper numbers can no longer be compared across revisions.
//
// Regenerate the goldens ONLY for an intentional, explained change to
// the experiments themselves, never to absorb control-plane drift.
func TestPaperReportsByteIdenticalWithAutoTuneOff(t *testing.T) {
	for _, id := range []string{"table1", "table3", "fig5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", id+".quick.golden"))
			if err != nil {
				t.Fatal(err)
			}
			r, ok := Lookup(id, true)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			var sb strings.Builder
			if err := r.Run(&sb); err != nil {
				t.Fatal(err)
			}
			if sb.String() != string(want) {
				t.Errorf("report drifted from the pre-autotune golden:\n--- golden:\n%s\n--- got:\n%s",
					want, sb.String())
			}
		})
	}
}

// TestAutotuneReclaimBWCompetitive checks the controller's simulated
// reclaim bandwidth against the static pageout-window sweep on both
// machine profiles. Two sources of slack: the controller starts shallow
// and pays real epochs of exploration, and the workload itself is
// bimodal — depending on how far the daemon's proactive reclaim runs
// ahead of demand, a run either never re-faults (cheap) or pays
// seek-bound re-faults (expensive), for statics and the controller
// alike. So the controller gets three attempts to reach 70% of the best
// static point, which separates "found the depth" from "stayed at the
// start" without failing on an unlucky attractor.
func TestAutotuneReclaimBWCompetitive(t *testing.T) {
	if testing.Short() {
		t.Skip("autotune sweep skipped in -short mode")
	}
	for _, prof := range []string{"hdd97", "nvme"} {
		prof := prof
		t.Run(prof, func(t *testing.T) {
			ok := false
			var auto, best AutotuneSetting
			for attempt := 0; attempt < 3 && !ok; attempt++ {
				statics, a, leaked, err := AutotuneReclaimBW(prof, 700)
				if err != nil {
					t.Fatal(err)
				}
				if leaked != 0 {
					t.Fatalf("%d Busy pages leaked across the sweep", leaked)
				}
				for _, s := range statics {
					if s.SimBW <= 0 {
						t.Fatalf("degenerate static point %+v", s)
					}
				}
				auto, best = a, BestSimBW(statics)
				ok = auto.SimBW >= 0.70*best.SimBW
			}
			t.Logf("%-10s sim %9.0f pg/s (best static %s %9.0f pg/s, ratio %.2f)",
				auto.Label, auto.SimBW, best.Label, best.SimBW, auto.SimBW/best.SimBW)
			if !ok {
				t.Errorf("autotuned sim BW %.0f pg/s stayed below 70%% of best static %s (%.0f pg/s) across attempts",
					auto.SimBW, best.Label, best.SimBW)
			}
		})
	}
}

// TestAutotuneObjWBCompetitive is the same bar for the writeback window
// on the object-writeback workload, one profile (the matrix covers the
// rest).
func TestAutotuneObjWBCompetitive(t *testing.T) {
	if testing.Short() {
		t.Skip("autotune sweep skipped in -short mode")
	}
	statics, auto, leaked, err := AutotuneObjWB("hdd97", 2)
	if err != nil {
		t.Fatal(err)
	}
	if leaked != 0 {
		t.Fatalf("%d Busy pages leaked across the sweep", leaked)
	}
	best := BestSimBW(statics)
	t.Logf("autotune %9.0f pg/s vs best static %s %9.0f pg/s",
		auto.SimBW, best.Label, best.SimBW)
	if auto.SimBW < 0.70*best.SimBW {
		t.Errorf("autotuned sim BW %.0f pg/s is below 70%% of best static %s (%.0f pg/s)",
			auto.SimBW, best.Label, best.SimBW)
	}
}

// TestAutotuneTrafficTail is the acceptance check the ISSUE names: on
// both machine profiles, the autotuned traffic run's fault-latency p99
// must come within 5% of the best static window sweep point (and may of
// course beat it). Wall-clock quantiles on a shared machine are noisy,
// so each profile gets up to three attempts; and like every wall-clock
// ordering in this package the assertion needs real cores — the runs and
// their leak sweeps execute everywhere.
func TestAutotuneTrafficTail(t *testing.T) {
	if testing.Short() {
		t.Skip("traffic experiment skipped in -short mode")
	}
	for _, prof := range []string{"hdd97", "nvme"} {
		prof := prof
		t.Run(prof, func(t *testing.T) {
			ok := false
			var auto, best AutotuneSetting
			for attempt := 0; attempt < 3 && !ok; attempt++ {
				statics, a, leaked, err := AutotuneTraffic(prof, true, 4)
				if err != nil {
					t.Fatal(err)
				}
				if leaked != 0 {
					t.Fatalf("%d Busy pages leaked across the sweep", leaked)
				}
				auto, best = a, BestP99(statics)
				if auto.P99 <= 0 || best.P99 <= 0 {
					t.Fatalf("degenerate quantiles: auto %+v best %+v", auto, best)
				}
				ok = float64(auto.P99) <= 1.05*float64(best.P99)
			}
			t.Logf("traffic p99 on %s: autotune %v, best static %s %v (ratio %.2f, GOMAXPROCS=%d)",
				prof, auto.P99, best.Label, best.P99,
				float64(auto.P99)/float64(best.P99), runtime.GOMAXPROCS(0))
			if runtime.GOMAXPROCS(0) < 4 {
				t.Skipf("GOMAXPROCS=%d: wall-clock tail ordering not observable without cores",
					runtime.GOMAXPROCS(0))
			}
			if !ok {
				t.Errorf("autotuned p99 %v exceeds 1.05x best static p99 %v on %s",
					auto.P99, best.P99, prof)
			}
		})
	}
}

// TestAutotuneMatrixCell runs the autotune cell of the machine-profile
// matrix end to end on one profile: it must succeed with a clean busy
// sweep and report the controller-vs-static comparison.
func TestAutotuneMatrixCell(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix cell skipped in -short mode")
	}
	c := runMatrixCell("autotune", "nvme", false, true)
	if c.Err != nil {
		t.Fatalf("autotune matrix cell failed: %v\nreport:\n%s", c.Err, c.Report)
	}
	if c.BusyLeaked != 0 {
		t.Fatalf("autotune matrix cell leaked %d Busy pages", c.BusyLeaked)
	}
	for _, want := range []string{"best static", "autotune"} {
		if !strings.Contains(c.Report, want) {
			t.Errorf("cell report missing %q:\n%s", want, c.Report)
		}
	}
}
