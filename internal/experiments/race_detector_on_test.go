//go:build race

package experiments

// raceDetectorOn reports whether this test binary was built with -race.
// Race instrumentation perturbs scheduling and slows every goroutine,
// which drowns the finer bandwidth orderings in noise; tests use this to
// keep only the assertions that survive instrumentation.
const raceDetectorOn = true
