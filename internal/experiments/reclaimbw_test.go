package experiments

import (
	"testing"

	"uvm/internal/uvm"
)

// TestReclaimBWRunsOnAllConfigs smoke-tests the driver: every pipeline
// configuration completes the overcommitted workload with real paging.
func TestReclaimBWRunsOnAllConfigs(t *testing.T) {
	points, err := ReclaimBW(900)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(reclaimBWConfigs()) {
		t.Fatalf("got %d points", len(points))
	}
	for _, pt := range points {
		if pt.Accesses != reclaimBWProducers*900 {
			t.Fatalf("%s: lost samples: %+v", pt.Config, pt)
		}
		if pt.Pageouts == 0 {
			t.Fatalf("%s: no paging happened — the workload no longer overcommits: %+v", pt.Config, pt)
		}
		if pt.Sim <= 0 || pt.Wall <= 0 || pt.SimBW <= 0 {
			t.Fatalf("%s: degenerate measurement: %+v", pt.Config, pt)
		}
	}
}

// TestReclaimBWAsyncBeatsSyncSimBandwidth is the PR's headline claim:
// overlapping cluster writes with the next reclaim scan sustains strictly
// higher pageout bandwidth than the synchronous single-daemon baseline.
// The assertion uses *simulated* bandwidth, which is a modelling
// property — the sync daemon charges every cluster's disk time to the
// machine clock, the async one overlaps it — and therefore holds on any
// host, single-core CI included (wall-clock effects of the worker shards
// are reported but, like the scaling experiment, need real cores).
func TestReclaimBWAsyncBeatsSyncSimBandwidth(t *testing.T) {
	syncPt, err := ReclaimBWRun("sync-1w", func(c *uvm.Config) {}, 1200)
	if err != nil {
		t.Fatal(err)
	}
	asyncPt, err := ReclaimBWRun("async-1w", func(c *uvm.Config) {
		c.AsyncPageout = true
		c.PageoutWindow = 4
	}, 1200)
	if err != nil {
		t.Fatal(err)
	}
	multiPt, err := ReclaimBWRun("async-4w", func(c *uvm.Config) {
		c.AsyncPageout = true
		c.PageoutWindow = 4
		c.ReclaimWorkers = 4
	}, 1200)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sim bandwidth: sync-1w %.0f pg/s, async-1w %.0f pg/s, async-4w %.0f pg/s",
		syncPt.SimBW, asyncPt.SimBW, multiPt.SimBW)
	if asyncPt.AsyncClusters == 0 {
		t.Fatalf("async run submitted no async clusters: %+v", asyncPt)
	}
	if asyncPt.SimBW <= syncPt.SimBW {
		t.Errorf("async pageout bandwidth (%.0f pg/s) not above sync baseline (%.0f pg/s)",
			asyncPt.SimBW, syncPt.SimBW)
	}
	if raceDetectorOn {
		// Race instrumentation slows allocators into the synchronous
		// direct-reclaim fallback, which charges disk time to the shared
		// clock and buries the multi-worker ordering in noise. The
		// async-vs-sync claim above still holds; the worker ordering is
		// asserted only on uninstrumented builds.
		t.Logf("race detector on: multi-worker ordering reported, not asserted")
		return
	}
	if multiPt.SimBW <= syncPt.SimBW {
		t.Errorf("multi-worker async bandwidth (%.0f pg/s) not above sync baseline (%.0f pg/s)",
			multiPt.SimBW, syncPt.SimBW)
	}
}
