package experiments

import (
	"runtime"
	"testing"

	"uvm/internal/bsdvm"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

// TestScalingUVMFaultThroughput runs the parallel-fault experiment on
// UVM and checks that throughput improves with goroutine count. True
// wall-clock scaling needs real cores: on a single-CPU host goroutines
// time-slice and no speedup is physically possible, so the ratio
// assertion only applies when GOMAXPROCS allows parallelism. The
// experiment itself (and its internal consistency checks) runs
// everywhere.
func TestScalingUVMFaultThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment skipped in -short mode")
	}
	// Wall-clock measurement on a shared machine is noisy: take the best
	// of a few attempts before judging the ratio.
	var single, parallel ScalingPoint
	ratio := 0.0
	for attempt := 0; attempt < 3 && ratio < 2.0; attempt++ {
		points, err := Scaling("uvm", uvm.Boot, []int{1, 8})
		if err != nil {
			t.Fatal(err)
		}
		single, parallel = points[0], points[1]
		if single.Faults != 1*scalingFaultsPerWorker || parallel.Faults != 8*scalingFaultsPerWorker {
			t.Fatalf("fault accounting wrong: %+v %+v", single, parallel)
		}
		if r := parallel.PerSecond / single.PerSecond; r > ratio {
			ratio = r
		}
	}
	t.Logf("uvm fault throughput: 1 goroutine %.0f/s, 8 goroutines %.0f/s (best %.2fx, GOMAXPROCS=%d)",
		single.PerSecond, parallel.PerSecond, ratio, runtime.GOMAXPROCS(0))

	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: wall-clock scaling not observable without cores", runtime.GOMAXPROCS(0))
	}
	if ratio < 2.0 {
		t.Errorf("uvm fault throughput at 8 goroutines only %.2fx of 1 goroutine, want >= 2x", ratio)
	}
}

// TestScalingPVContention checks that the sharded pv table removes the
// reverse-map serialisation point: at 8 goroutines, the contended share
// of pv bucket acquisitions stays small, and is no worse than what the
// same workload suffers on the single-mutex layout
// (pmap.MMU.SetPVShards(1) — the pre-sharding arrangement, which the
// contrast booter restores). Contention needs real parallelism to exist
// at all, so the comparative assertion only applies with enough cores.
func TestScalingPVContention(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment skipped in -short mode")
	}
	singleMutexBoot := func(m *vmapi.Machine) vmapi.System {
		m.MMU.SetPVShards(1)
		return uvm.Boot(m)
	}
	sharded, err := Scaling("uvm", uvm.Boot, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	unsharded, err := Scaling("uvm-pv1", singleMutexBoot, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	sp, up := sharded[0], unsharded[0]
	if sp.PVAcquires == 0 || up.PVAcquires == 0 {
		t.Fatalf("pv acquisition counters missing: sharded %+v single %+v", sp, up)
	}
	t.Logf("pv contention at 8 goroutines: sharded %.3f%% (%d/%d), single-mutex %.3f%% (%d/%d)",
		100*sp.PVContentionRatio(), sp.PVContended, sp.PVAcquires,
		100*up.PVContentionRatio(), up.PVContended, up.PVAcquires)
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: lock contention not observable without cores", runtime.GOMAXPROCS(0))
	}
	if r := sp.PVContentionRatio(); r > 0.10 {
		t.Errorf("sharded pv table contended on %.1f%% of acquisitions, want <= 10%%", 100*r)
	}
	if sp.PVContentionRatio() > up.PVContentionRatio() {
		t.Errorf("sharded pv contention (%.3f%%) exceeds single-mutex contention (%.3f%%)",
			100*sp.PVContentionRatio(), 100*up.PVContentionRatio())
	}
}

// TestScalingAllocContention checks the tentpole claim of the per-CPU
// free-page caches: at 8 goroutines, the contended share of
// allocation-path lock acquisitions with magazines on is no worse than
// the same workload on the single global pool (AllocCaches=0), and stays
// small in absolute terms. Allocator contention needs real parallelism
// to exist at all, so the comparative assertion only applies with enough
// cores; the runs and their accounting checks execute everywhere.
func TestScalingAllocContention(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment skipped in -short mode")
	}
	cached, err := ScalingAlloc("uvm", uvm.Boot, []int{8}, 8)
	if err != nil {
		t.Fatal(err)
	}
	single, err := ScalingAlloc("uvm-pool", uvm.Boot, []int{8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cp, sp := cached[0], single[0]
	if cp.AllocAcquires == 0 || sp.AllocAcquires == 0 {
		t.Fatalf("alloc acquisition counters missing: cached %+v single %+v", cp, sp)
	}
	if cp.AllocCaches != 8 || sp.AllocCaches != 0 {
		t.Fatalf("layouts mislabelled: cached %+v single %+v", cp, sp)
	}
	// Note the acquisition counts are similar between layouts — cached
	// allocation still takes one (magazine) lock per alloc, plus batched
	// refills. The point is *which* lock: private magazines barely
	// contend, the shared pool's shard locks do. That only shows in the
	// contended share, which needs real cores to exist at all.
	t.Logf("alloc contention at 8 goroutines: cached %.3f%% (%d/%d), single-pool %.3f%% (%d/%d)",
		100*cp.AllocContentionRatio(), cp.AllocContended, cp.AllocAcquires,
		100*sp.AllocContentionRatio(), sp.AllocContended, sp.AllocAcquires)
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: lock contention not observable without cores", runtime.GOMAXPROCS(0))
	}
	if r := cp.AllocContentionRatio(); r > 0.10 {
		t.Errorf("cached allocator contended on %.1f%% of acquisitions, want <= 10%%", 100*r)
	}
	if cp.AllocContentionRatio() > sp.AllocContentionRatio() {
		t.Errorf("cached alloc contention (%.3f%%) exceeds single-pool contention (%.3f%%)",
			100*cp.AllocContentionRatio(), 100*sp.AllocContentionRatio())
	}
}

// TestScalingRunsOnBothSystems smoke-tests the experiment driver end to
// end at small scale: both systems complete the workload and report
// plausible numbers.
func TestScalingRunsOnBothSystems(t *testing.T) {
	for _, nb := range []NamedBooter{{"bsdvm", bsdvm.Boot}, {"uvm", uvm.Boot}} {
		points, err := Scaling(nb.Name, nb.Boot, []int{1, 2})
		if err != nil {
			t.Fatalf("%s: %v", nb.Name, err)
		}
		for _, pt := range points {
			if pt.PerSecond <= 0 || pt.Wall <= 0 {
				t.Fatalf("%s: degenerate point %+v", nb.Name, pt)
			}
		}
	}
}
