package experiments

import (
	"runtime"
	"testing"

	"uvm/internal/bsdvm"
	"uvm/internal/uvm"
)

// TestScalingUVMFaultThroughput runs the parallel-fault experiment on
// UVM and checks that throughput improves with goroutine count. True
// wall-clock scaling needs real cores: on a single-CPU host goroutines
// time-slice and no speedup is physically possible, so the ratio
// assertion only applies when GOMAXPROCS allows parallelism. The
// experiment itself (and its internal consistency checks) runs
// everywhere.
func TestScalingUVMFaultThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiment skipped in -short mode")
	}
	// Wall-clock measurement on a shared machine is noisy: take the best
	// of a few attempts before judging the ratio.
	var single, parallel ScalingPoint
	ratio := 0.0
	for attempt := 0; attempt < 3 && ratio < 2.0; attempt++ {
		points, err := Scaling("uvm", uvm.Boot, []int{1, 8})
		if err != nil {
			t.Fatal(err)
		}
		single, parallel = points[0], points[1]
		if single.Faults != 1*scalingFaultsPerWorker || parallel.Faults != 8*scalingFaultsPerWorker {
			t.Fatalf("fault accounting wrong: %+v %+v", single, parallel)
		}
		if r := parallel.PerSecond / single.PerSecond; r > ratio {
			ratio = r
		}
	}
	t.Logf("uvm fault throughput: 1 goroutine %.0f/s, 8 goroutines %.0f/s (best %.2fx, GOMAXPROCS=%d)",
		single.PerSecond, parallel.PerSecond, ratio, runtime.GOMAXPROCS(0))

	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: wall-clock scaling not observable without cores", runtime.GOMAXPROCS(0))
	}
	if ratio < 2.0 {
		t.Errorf("uvm fault throughput at 8 goroutines only %.2fx of 1 goroutine, want >= 2x", ratio)
	}
}

// TestScalingRunsOnBothSystems smoke-tests the experiment driver end to
// end at small scale: both systems complete the workload and report
// plausible numbers.
func TestScalingRunsOnBothSystems(t *testing.T) {
	for _, nb := range []NamedBooter{{"bsdvm", bsdvm.Boot}, {"uvm", uvm.Boot}} {
		points, err := Scaling(nb.Name, nb.Boot, []int{1, 2})
		if err != nil {
			t.Fatalf("%s: %v", nb.Name, err)
		}
		for _, pt := range points {
			if pt.PerSecond <= 0 || pt.Wall <= 0 {
				t.Fatalf("%s: degenerate point %+v", nb.Name, pt)
			}
		}
	}
}
