package experiments

import (
	"fmt"
	"io"
	"time"

	"uvm/internal/param"
	"uvm/internal/vmapi"
)

// F5Point is one point of Figure 5: the time to allocate and touch a
// block of anonymous memory on a 32 MB machine.
type F5Point struct {
	MB       int
	BSD, UVM time.Duration
}

// Figure5 reproduces Figure 5: anonymous memory allocation time under BSD
// VM and UVM on a 32 MB machine. Beyond physical memory the pagedaemon
// must run; BSD VM pages out one page per I/O to fixed swap-block slots,
// UVM reassigns slots and pages out 64-page clusters with single I/Os.
func Figure5(sizesMB []int) ([]F5Point, error) {
	var points []F5Point
	for _, mb := range sizesMB {
		bsd, uv := pair(stdConfig())
		var times [2]time.Duration
		for i, sys := range []vmapi.System{bsd, uv} {
			p, err := sys.NewProcess("allocator")
			if err != nil {
				return nil, err
			}
			size := param.VSize(mb) << 20
			clock := sys.Machine().Clock
			t0 := clock.Now()
			va, err := p.Mmap(0, size, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				return nil, err
			}
			if err := p.TouchRange(va, size, true); err != nil {
				return nil, err
			}
			times[i] = clock.Since(t0)
			p.Exit()
		}
		points = append(points, F5Point{mb, times[0], times[1]})
	}
	return points, nil
}

// ReportFigure5 renders the series.
func ReportFigure5(w io.Writer, sizesMB []int) error {
	points, err := Figure5(sizesMB)
	if err != nil {
		return err
	}
	header(w, "Figure 5: anonymous memory allocation time (32 MB RAM)")
	lo, hi := points[0].UVM.Seconds(), points[0].UVM.Seconds()
	for _, p := range points {
		for _, v := range []float64{p.BSD.Seconds(), p.UVM.Seconds()} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	fmt.Fprintf(w, "%8s %14s %14s %10s   %s\n", "MB", "BSD VM", "UVM", "BSD/UVM", "log-scale time (B=BSD, U=UVM)")
	for _, p := range points {
		ratio := float64(p.BSD) / float64(p.UVM)
		fmt.Fprintf(w, "%8d %14s %14s %9.1fx   B %s\n%52s U %s\n",
			p.MB, p.BSD.Round(time.Millisecond), p.UVM.Round(time.Millisecond), ratio,
			logBar(p.BSD.Seconds(), lo, hi, 26), "", logBar(p.UVM.Seconds(), lo, hi, 26))
	}
	fmt.Fprintln(w, "(paper: identical below 32 MB; beyond it BSD VM's per-page pageout I/O makes")
	fmt.Fprintln(w, " its curve several times steeper than UVM's clustered pageout)")
	return nil
}
