package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"uvm/internal/disk"
	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

// ReclaimBW measures sustained pageout bandwidth and fault latency under
// heavy overcommit, contrasting the reclaim I/O pipeline's stages:
//
//   - sync-1w: the PR-2 baseline — one pagedaemon that blocks on every
//     cluster write; reclaim bandwidth is bounded by one synchronous I/O
//     stream.
//   - async-1w: asynchronous cluster pageout — the daemon submits each
//     cluster into the per-device in-flight window and overlaps the next
//     inactive-queue scan with the writes; completions free the pages.
//   - async-4w: async pageout plus four parallel reclaim workers, each
//     scanning a disjoint range of the sharded page queues.
//   - async-4w+pgin: the full pipeline, adding clustered pagein — a
//     swap-backed fault drags adjacent allocated slots in with one I/O.
//
// Two bandwidth figures are reported. Simulated bandwidth (pageouts per
// simulated second) isolates the modelling claim: a synchronous daemon
// charges every cluster's positioning + transfer time to the machine's
// one virtual clock, while overlapped writes charge nothing to the
// scanning thread — so async reclaim sustains strictly more pageout per
// simulated second. Wall bandwidth (pageouts per wall-clock second)
// additionally shows the host-parallelism effect of the worker shards,
// which needs real cores to be visible (like the scaling experiment).

// ReclaimBWPoint is one configuration's measurement.
type ReclaimBWPoint struct {
	Config        string
	Accesses      int
	Pageouts      int64
	AsyncClusters int64
	PageinRides   int64 // extra pages brought in by clustered pagein
	Wall          time.Duration
	Sim           time.Duration
	WallBW        float64 // pageouts per wall second
	SimBW         float64 // pageouts per simulated second
	P50, P99      time.Duration
	IOErrors      int // accesses that failed under an injected fault plan
}

const (
	// reclaimBWRAMPages keeps the machine small enough that the sweeps
	// overcommit it several times, so reclaim runs for the whole
	// experiment.
	reclaimBWRAMPages = 1024 // 4 MB
	// reclaimBWRegionPages is each producer's private region (2 MB): four
	// producers demand 8 MB of 4 MB RAM.
	reclaimBWRegionPages = 512
	reclaimBWProducers   = 4
)

// reclaimBWConfig names one tuning of the reclaim pipeline.
type reclaimBWConfig struct {
	Name string
	Tune func(*uvm.Config)
}

// reclaimBWConfigs returns the pipeline stages the experiment contrasts.
func reclaimBWConfigs() []reclaimBWConfig {
	return []reclaimBWConfig{
		{"sync-1w", func(c *uvm.Config) {}},
		{"async-1w", func(c *uvm.Config) {
			c.AsyncPageout = true
			c.PageoutWindow = 4
		}},
		{"async-4w", func(c *uvm.Config) {
			c.AsyncPageout = true
			c.PageoutWindow = 4
			c.ReclaimWorkers = 4
		}},
		{"async-4w+pgin", func(c *uvm.Config) {
			c.AsyncPageout = true
			c.PageoutWindow = 4
			c.ReclaimWorkers = 4
			c.PageinCluster = 8
		}},
	}
}

// ReclaimBWRun measures one configuration: producers cycle write faults
// over private regions that together overcommit RAM, so every allocation
// rides on reclaim; per-access wall latency and the machine's pageout
// counters are collected.
func ReclaimBWRun(cfgName string, tune func(*uvm.Config), accessesPerProducer int) (ReclaimBWPoint, error) {
	pt, _, err := ReclaimBWRunOn(profile, nil, cfgName, tune, accessesPerProducer)
	return pt, err
}

// ReclaimBWRunOn is ReclaimBWRun on a named machine profile, optionally
// with a fault plan installed on the swap disk. With a plan, access
// errors don't abort the run: an injected fault surfacing as a fault
// error is the behaviour under test, so failed accesses are counted in
// IOErrors and the producers keep going. Returns the measurement plus
// the number of Busy pages leaked (swept after Shutdown; always 0
// unless an error path lost a claim — the matrix fails cells on it).
func ReclaimBWRunOn(prof string, swapPlan *disk.FaultPlan, cfgName string,
	tune func(*uvm.Config), accessesPerProducer int) (ReclaimBWPoint, int, error) {
	mach := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:      reclaimBWRAMPages,
		SwapPages:     65536,
		FSPages:       1024,
		MaxVnodes:     16,
		Profile:       prof,
		SwapFaultPlan: swapPlan,
	})
	cfg := uvm.DefaultConfig()
	tune(&cfg)
	sys := uvm.BootConfig(mach, cfg)
	defer sys.Shutdown()

	// Set up every producer's process and region before any accesses run:
	// the regions all stay mapped for the whole measurement, so the
	// combined demand overcommits RAM regardless of how the host
	// schedules the producers (a producer that finished and exited early
	// would quietly relieve the pressure).
	type producer struct {
		p  vmapi.Process
		va param.VAddr
	}
	producers := make([]producer, reclaimBWProducers)
	for w := range producers {
		p, err := sys.NewProcess(fmt.Sprintf("bw%d", w))
		if err != nil {
			return ReclaimBWPoint{}, 0, err
		}
		defer p.Exit()
		va, err := p.Mmap(0, reclaimBWRegionPages*param.PageSize, param.ProtRW,
			vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		if err != nil {
			return ReclaimBWPoint{}, 0, err
		}
		producers[w] = producer{p, va}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		all      []time.Duration
		ioErrs   int
		firstErr error
	)
	//uvm:wallclock real elapsed time is the reported host-throughput metric
	wallStart := time.Now()
	simStart := mach.Clock.Now()
	for _, pr := range producers {
		wg.Add(1)
		go func(pr producer) {
			defer wg.Done()
			lat := make([]time.Duration, 0, accessesPerProducer)
			errs := 0
			var verr error
			for i := 0; i < accessesPerProducer && verr == nil; i++ {
				addr := pr.va + param.VAddr(i%reclaimBWRegionPages)*param.PageSize
				//uvm:wallclock host-latency histogram measures real elapsed time
				t0 := time.Now()
				if err := pr.p.Access(addr, true); err != nil {
					if swapPlan == nil {
						verr = err
					} else {
						// Injected faults surface here by design: count
						// and keep going — the cell is probing whether
						// the system stays consistent, not whether the
						// access succeeds.
						errs++
					}
				}
				//uvm:wallclock host-latency histogram measures real elapsed time
				lat = append(lat, time.Since(t0))
			}
			mu.Lock()
			if verr != nil && firstErr == nil {
				firstErr = verr
			}
			ioErrs += errs
			all = append(all, lat...)
			mu.Unlock()
		}(pr)
	}
	wg.Wait()
	//uvm:wallclock real elapsed time is the reported host-throughput metric
	wall := time.Since(wallStart)
	if firstErr != nil {
		return ReclaimBWPoint{}, 0, firstErr
	}
	sys.Shutdown() // drain in-flight pageout before reading counters
	leaked := len(mach.Mem.BusyPages())
	simT := mach.Clock.Now() - simStart

	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		return all[int(q*float64(len(all)-1))]
	}
	pt := ReclaimBWPoint{
		Config:        cfgName,
		Accesses:      len(all),
		Pageouts:      mach.Stats.Get(sim.CtrPageOuts),
		AsyncClusters: mach.Stats.Get(sim.CtrPdAsyncClusters),
		PageinRides:   mach.Stats.Get(sim.CtrPageinClustered),
		Wall:          wall,
		Sim:           simT,
		P50:           pct(0.50),
		P99:           pct(0.99),
		IOErrors:      ioErrs,
	}
	if s := wall.Seconds(); s > 0 {
		pt.WallBW = float64(pt.Pageouts) / s
	}
	if s := simT.Seconds(); s > 0 {
		pt.SimBW = float64(pt.Pageouts) / s
	}
	return pt, leaked, nil
}

// ReclaimBW runs every pipeline configuration.
func ReclaimBW(accessesPerProducer int) ([]ReclaimBWPoint, error) {
	var points []ReclaimBWPoint
	for _, c := range reclaimBWConfigs() {
		pt, err := ReclaimBWRun(c.Name, c.Tune, accessesPerProducer)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

// ReportReclaimBW renders the bandwidth table.
func ReportReclaimBW(w io.Writer, accessesPerProducer int) error {
	header(w, "ReclaimBW: pageout bandwidth, sync vs async vs parallel reclaim")
	fmt.Fprintf(w, "GOMAXPROCS=%d NumCPU=%d  RAM=%d pages, %d producers x %d-page regions\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), reclaimBWRAMPages,
		reclaimBWProducers, reclaimBWRegionPages)
	points, err := ReclaimBW(accessesPerProducer)
	if err != nil {
		return err
	}
	for _, pt := range points {
		fmt.Fprintf(w, "%-14s %7d pageouts  sim %9.0f pg/s  wall %9.0f pg/s  fault p50 %9s p99 %9s  (async clusters %d, pagein rides %d)\n",
			pt.Config, pt.Pageouts, pt.SimBW, pt.WallBW, pt.P50, pt.P99,
			pt.AsyncClusters, pt.PageinRides)
	}
	fmt.Fprintln(w, "(sync-1w charges every cluster write to the scanning thread's clock; the")
	fmt.Fprintln(w, " async configs overlap those writes with the next scan, so their simulated")
	fmt.Fprintln(w, " bandwidth is strictly higher. Worker and wall-clock effects need real cores.)")
	return nil
}
