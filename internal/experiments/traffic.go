package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"uvm/internal/bsdvm"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
	"uvm/internal/workload"
)

// Traffic is the million-user workload experiment (ROADMAP: "a
// million-user workload"): the multi-tenant Zipf traffic driver from
// internal/workload run against both VM systems, sweeping worker
// goroutine counts like Scaling, across machine profiles. The metric is
// the fault latency histogram — p50/p99/p999/max of every timed page
// access, wall clock — plus the reclaim-interference column: how many
// faults or allocations collided with reclaim I/O in flight. bsdvm
// serialises everything on the big lock, so at multi-worker counts its
// tail stretches; uvm takes the same pressure through per-object locks
// and the async pipelines, so its p99 stays at or below bsdvm's (the
// acceptance assertion in traffic_test.go). Like every wall-clock
// experiment, the numbers move with host load; the orderings are the
// reproducible part.

// TrafficPoint is one (system, profile, workers) traffic measurement.
type TrafficPoint struct {
	System  string
	Profile string
	Workers int
	Ops     int64
	Faults  int64
	// Fault-latency quantiles over every timed page access (wall clock).
	P50, P99, P999, Max time.Duration
	// Interference is the reclaim-interference column: see
	// workload.ReclaimInterference.
	Interference int64
	Wall         time.Duration
	Sim          time.Duration
}

// TrafficWorkers returns the goroutine counts the experiment sweeps.
func TrafficWorkers(quick bool) []int {
	if quick {
		return []int{1, 4}
	}
	return []int{1, 4, 8}
}

// TrafficProfiles returns the machine profiles the experiment covers: a
// SetProfile choice wins; otherwise the 1997 testbed and the modern
// nvme point (the two ends the ROADMAP cares about).
func TrafficProfiles() []string {
	if profile != "" {
		return []string{profile}
	}
	return []string{"hdd97", "nvme"}
}

// TrafficConfigFor returns the run shape: the default heavy
// configuration, or its trimmed quick variant under `go test`/-quick.
func TrafficConfigFor(quick bool) workload.TrafficConfig {
	if quick {
		return workload.QuickTrafficConfig()
	}
	return workload.DefaultTrafficConfig()
}

// trafficMachineConfig sizes the machine so the corpus is four times
// RAM (the driver's pressure invariant) regardless of profile: the
// profile chooses the cost table, the workload chooses the sizes. The
// vnode table sits below the dataset (vnode recycling runs) but above
// bsdvm's ~100 pinned cache objects plus the workers' concurrent opens.
func trafficMachineConfig(prof string, cfg workload.TrafficConfig) vmapi.MachineConfig {
	ram := cfg.DatasetPages() / 4
	if ram < 256 {
		ram = 256
	}
	vnodes := cfg.DatasetFiles / 4
	if vnodes < 128 {
		vnodes = 128
	}
	if vnodes > cfg.DatasetFiles {
		vnodes = cfg.DatasetFiles + 128
	}
	return vmapi.MachineConfig{
		RAMPages:  ram,
		SwapPages: int64(4*ram + cfg.Tenants*cfg.AnonPages),
		FSPages:   int64(cfg.DatasetPages() + 2048),
		MaxVnodes: vnodes,
		Profile:   prof,
	}
}

// trafficUVMBoot boots uvm with the full I/O pipeline — async clustered
// pageout, parallel reclaim workers, clustered pagein, async clustered
// object writeback — which is the configuration every prior experiment
// showed winning, and the one the interference column instruments.
func trafficUVMBoot(m *vmapi.Machine) vmapi.System {
	cfg := uvm.DefaultConfig()
	cfg.AsyncPageout = true
	cfg.PageoutWindow = 4
	cfg.ReclaimWorkers = 4
	cfg.PageinCluster = 8
	cfg.AsyncWriteback = true
	cfg.WritebackWindow = 4
	cfg.WritebackCluster = 16
	return uvm.BootConfig(m, cfg)
}

// TrafficBooters returns the two contestants in report order.
func TrafficBooters() []NamedBooter {
	return []NamedBooter{{"bsdvm", bsdvm.Boot}, {"uvm", trafficUVMBoot}}
}

// TrafficRunOn runs one traffic cell: boot nb on a fresh prof machine,
// create the dataset, drive cfg with the given worker count, shut down.
// Returns the measurement plus the number of Busy pages leaked (swept
// after Shutdown; must be 0).
func TrafficRunOn(prof string, nb NamedBooter, cfg workload.TrafficConfig, workers int) (TrafficPoint, int, error) {
	mach := vmapi.NewMachine(trafficMachineConfig(prof, cfg))
	sys := nb.Boot(mach)
	defer sys.Shutdown()
	if err := workload.CreateTrafficDataset(sys, cfg); err != nil {
		return TrafficPoint{}, 0, err
	}
	res, err := workload.RunTraffic(sys, cfg, workers)
	if err != nil {
		return TrafficPoint{}, 0, err
	}
	sys.Shutdown() // drain pipelines before the sweep
	leaked := len(mach.Mem.BusyPages())
	return TrafficPoint{
		System:       nb.Name,
		Profile:      prof,
		Workers:      workers,
		Ops:          res.Ops,
		Faults:       res.Faults,
		P50:          res.Hist.P50(),
		P99:          res.Hist.P99(),
		P999:         res.Hist.P999(),
		Max:          res.Hist.Max(),
		Interference: res.Interference,
		Wall:         res.Wall,
		Sim:          res.Sim,
	}, leaked, nil
}

// Traffic sweeps both systems over the worker counts on one profile.
func Traffic(prof string, cfg workload.TrafficConfig, workers []int) ([]TrafficPoint, error) {
	var points []TrafficPoint
	for _, nb := range TrafficBooters() {
		for _, n := range workers {
			pt, leaked, err := TrafficRunOn(prof, nb, cfg, n)
			if err != nil {
				return nil, fmt.Errorf("traffic %s/%s/%dw: %w", prof, nb.Name, n, err)
			}
			if leaked > 0 {
				return nil, fmt.Errorf("traffic %s/%s/%dw: %d Busy pages leaked", prof, nb.Name, n, leaked)
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// TrafficOverrides carries the uvmbench -traffic knobs; zero fields
// keep the configuration's value.
type TrafficOverrides struct {
	Tenants      int     // -tenants: simulated tenant processes
	DatasetPages int     // -dataset-pages: corpus size in pages (file count scales, file size fixed)
	ZipfS        float64 // -zipf: popularity exponent (negative means unset)
	ChurnEvery   int     // -churn: fork/exit churn period in requests
	OpsPerWorker int     // -ops: run duration in requests per worker
}

// Apply folds the set overrides into cfg.
func (o TrafficOverrides) Apply(cfg *workload.TrafficConfig) {
	if o.Tenants > 0 {
		cfg.Tenants = o.Tenants
	}
	if o.DatasetPages > 0 {
		files := o.DatasetPages / cfg.FilePages
		if files < 1 {
			files = 1
		}
		cfg.DatasetFiles = files
	}
	if o.ZipfS >= 0 {
		cfg.ZipfS = o.ZipfS
	}
	if o.ChurnEvery > 0 {
		cfg.ChurnEvery = o.ChurnEvery
	}
	if o.OpsPerWorker > 0 {
		cfg.OpsPerWorker = o.OpsPerWorker
	}
}

// ReportTraffic renders the traffic table: for each profile, both
// systems across the worker sweep, fault-latency quantiles and the
// reclaim-interference column side by side.
func ReportTraffic(w io.Writer, quick bool, over TrafficOverrides) error {
	header(w, "Traffic: multi-tenant Zipf workload, fault tail latency (wall clock)")
	cfg := TrafficConfigFor(quick)
	over.Apply(&cfg)
	if err := cfg.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "GOMAXPROCS=%d NumCPU=%d  tenants=%d dataset=%d pages (%d files x %d) zipf=%.2f anon-mix=%d%% churn=1/%d ops/worker=%d\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), cfg.Tenants, cfg.DatasetPages(),
		cfg.DatasetFiles, cfg.FilePages, cfg.ZipfS, cfg.AnonMixPercent,
		cfg.ChurnEvery, cfg.OpsPerWorker)
	for _, prof := range TrafficProfiles() {
		mcfg := trafficMachineConfig(prof, cfg)
		fmt.Fprintf(w, "-- profile %s: RAM %d pages, corpus %d pages, %d vnodes\n",
			prof, mcfg.RAMPages, cfg.DatasetPages(), mcfg.MaxVnodes)
		points, err := Traffic(prof, cfg, TrafficWorkers(quick))
		if err != nil {
			return err
		}
		for _, pt := range points {
			fmt.Fprintf(w, "%-6s %2d workers: %7d ops %8d faults  p50 %9s p99 %9s p999 %9s max %9s  reclaim-interference %d\n",
				pt.System, pt.Workers, pt.Ops, pt.Faults,
				pt.P50, pt.P99, pt.P999, pt.Max, pt.Interference)
		}
	}
	fmt.Fprintln(w, "(bsdvm's column is 0 by construction: its reclaim interference is served out")
	fmt.Fprintln(w, " inside the big lock and therefore shows up in its latency quantiles instead.)")
	return nil
}
