package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPaperReportsByteIdenticalWithCachesOff is the regression fence for
// the per-CPU free-page caches: with AllocCaches=0 (the default every
// paper experiment runs with) the allocator must take the exact
// single-pool code path, so the paper reports stay byte-identical to the
// goldens captured before the magazine code landed. A diff here means
// the caches leaked into the deterministic path — an ordering change in
// Alloc/Free, a stray counter in the shared path, anything — and the
// paper numbers can no longer be compared across revisions.
//
// The goldens are the quick-variant reports (the same variants CI runs);
// regenerate them ONLY for an intentional, explained change to the
// experiments themselves, never to absorb allocator drift.
func TestPaperReportsByteIdenticalWithCachesOff(t *testing.T) {
	for _, id := range []string{"table1", "table3", "fig5"} {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", id+".quick.golden"))
			if err != nil {
				t.Fatal(err)
			}
			r, ok := Lookup(id, true)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			var sb strings.Builder
			if err := r.Run(&sb); err != nil {
				t.Fatal(err)
			}
			if sb.String() != string(want) {
				t.Errorf("report drifted from the pre-caches golden:\n--- golden:\n%s\n--- got:\n%s",
					want, sb.String())
			}
		})
	}
}
