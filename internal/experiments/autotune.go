package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

// Autotune contrasts the feedback control plane (internal/control, wired
// through Config.AutoTune) with hand-picked static settings on the three
// I/O-bound workloads the earlier experiments tuned by sweep: reclaim
// bandwidth (pageout window), object writeback bandwidth (writeback
// window), and the multi-tenant traffic tail (the full pipeline). Each
// comparison runs a static sweep, then one run that starts from a
// deliberately modest configuration and lets the controllers move the
// knobs live. The claim under test is the ROADMAP's: the controllers
// should land at or near the best static point on *both* machine
// profiles without being told which profile they are on.
//
// Simulated-bandwidth comparisons isolate the modelling claim and are
// only scheduling-noisy through where controller epochs land; the
// traffic comparison is wall clock and needs real cores, like every
// wall-clock assertion in this package.

// AutotuneSetting is one labeled measurement in a sweep-vs-controller
// comparison: SimBW for the bandwidth workloads, P99 for traffic.
type AutotuneSetting struct {
	Label string
	SimBW float64
	P99   time.Duration
}

// autotuneWindows is the static sweep the controller has to compete
// with: the narrow, the hand-tuned, and the deep end of the window
// range.
func autotuneWindows() []int { return []int{1, 4, 16} }

// BestSimBW returns the highest simulated bandwidth in the sweep.
func BestSimBW(statics []AutotuneSetting) AutotuneSetting {
	best := statics[0]
	for _, s := range statics[1:] {
		if s.SimBW > best.SimBW {
			best = s
		}
	}
	return best
}

// BestP99 returns the lowest p99 in the sweep.
func BestP99(statics []AutotuneSetting) AutotuneSetting {
	best := statics[0]
	for _, s := range statics[1:] {
		if s.P99 < best.P99 {
			best = s
		}
	}
	return best
}

// AutotuneReclaimBW runs the reclaim-bandwidth workload on prof across
// the static pageout-window sweep, then under AutoTune starting from a
// shallow window. Returns the sweep, the autotuned point, and the total
// Busy pages leaked across all runs (must be 0).
func AutotuneReclaimBW(prof string, accesses int) ([]AutotuneSetting, AutotuneSetting, int, error) {
	leaked := 0
	base := func(window int) func(*uvm.Config) {
		return func(c *uvm.Config) {
			c.AsyncPageout = true
			c.PageoutWindow = window
			c.ReclaimWorkers = 4
			c.PageinCluster = 8
		}
	}
	var statics []AutotuneSetting
	for _, w := range autotuneWindows() {
		pt, l, err := ReclaimBWRunOn(prof, nil, fmt.Sprintf("static-w%d", w), base(w), accesses)
		leaked += l
		if err != nil {
			return nil, AutotuneSetting{}, leaked, err
		}
		statics = append(statics, AutotuneSetting{pt.Config, pt.SimBW, pt.P99})
	}
	tune := func(c *uvm.Config) {
		base(2)(c) // modest start: the controller has to find the depth
		c.AutoTune = true
	}
	pt, l, err := ReclaimBWRunOn(prof, nil, "autotune", tune, accesses)
	leaked += l
	if err != nil {
		return nil, AutotuneSetting{}, leaked, err
	}
	return statics, AutotuneSetting{pt.Config, pt.SimBW, pt.P99}, leaked, nil
}

// AutotuneObjWB runs the object-writeback workload (vnode backend,
// clustered) on prof across the static writeback-window sweep, then
// under AutoTune from a shallow window.
func AutotuneObjWB(prof string, rounds int) ([]AutotuneSetting, AutotuneSetting, int, error) {
	leaked := 0
	base := func(window int) func(*uvm.Config) {
		return func(c *uvm.Config) {
			c.AsyncWriteback = true
			c.WritebackWindow = window
			c.WritebackCluster = 16
		}
	}
	var statics []AutotuneSetting
	for _, w := range autotuneWindows() {
		pt, l, err := ObjWBRunOn(prof, fmt.Sprintf("static-w%d", w), "vnode", base(w), rounds)
		leaked += l
		if err != nil {
			return nil, AutotuneSetting{}, leaked, err
		}
		statics = append(statics, AutotuneSetting{pt.Config, pt.SimBW, 0})
	}
	tune := func(c *uvm.Config) {
		base(2)(c)
		c.AutoTune = true
	}
	pt, l, err := ObjWBRunOn(prof, "autotune", "vnode", tune, rounds)
	leaked += l
	if err != nil {
		return nil, AutotuneSetting{}, leaked, err
	}
	return statics, AutotuneSetting{pt.Config, pt.SimBW, 0}, leaked, nil
}

// trafficWindowBoot is trafficUVMBoot with both async windows set to
// window — the axis the traffic sweep varies.
func trafficWindowBoot(window int) func(*vmapi.Machine) vmapi.System {
	return func(m *vmapi.Machine) vmapi.System {
		cfg := uvm.DefaultConfig()
		cfg.AsyncPageout = true
		cfg.PageoutWindow = window
		cfg.ReclaimWorkers = 4
		cfg.PageinCluster = 8
		cfg.AsyncWriteback = true
		cfg.WritebackWindow = window
		cfg.WritebackCluster = 16
		return uvm.BootConfig(m, cfg)
	}
}

// TrafficAutotuneBoot boots the traffic pipeline from a modest static
// start with the control plane on — the autotuned contestant in the
// traffic comparison.
func TrafficAutotuneBoot(m *vmapi.Machine) vmapi.System {
	cfg := uvm.DefaultConfig()
	cfg.AsyncPageout = true
	cfg.PageoutWindow = 2
	cfg.ReclaimWorkers = 4
	cfg.PageinCluster = 4
	cfg.AsyncWriteback = true
	cfg.WritebackWindow = 2
	cfg.WritebackCluster = 16
	cfg.AutoTune = true
	return uvm.BootConfig(m, cfg)
}

// AutotuneTraffic runs the traffic workload at one contended worker
// count on prof: the static window sweep, then the autotuned boot. The
// metric is the wall-clock fault-latency p99.
func AutotuneTraffic(prof string, quick bool, workers int) ([]AutotuneSetting, AutotuneSetting, int, error) {
	cfg := TrafficConfigFor(quick)
	leaked := 0
	var statics []AutotuneSetting
	for _, w := range autotuneWindows() {
		nb := NamedBooter{fmt.Sprintf("static-w%d", w), trafficWindowBoot(w)}
		pt, l, err := TrafficRunOn(prof, nb, cfg, workers)
		leaked += l
		if err != nil {
			return nil, AutotuneSetting{}, leaked, err
		}
		statics = append(statics, AutotuneSetting{nb.Name, 0, pt.P99})
	}
	pt, l, err := TrafficRunOn(prof, NamedBooter{"autotune", TrafficAutotuneBoot}, cfg, workers)
	leaked += l
	if err != nil {
		return nil, AutotuneSetting{}, leaked, err
	}
	return statics, AutotuneSetting{"autotune", 0, pt.P99}, leaked, nil
}

// ReportAutotune renders the controller-vs-static comparison for every
// profile the traffic experiment covers (hdd97 and nvme by default; a
// SetProfile choice wins).
func ReportAutotune(w io.Writer, quick bool) error {
	header(w, "Autotune: feedback controllers vs static sweeps")
	fmt.Fprintf(w, "GOMAXPROCS=%d NumCPU=%d  (controllers start from shallow windows; ratios >= ~1 mean the\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Fprintln(w, " control plane found the profile's depth on its own)")
	for _, prof := range TrafficProfiles() {
		fmt.Fprintf(w, "-- profile %s\n", prof)

		statics, auto, leaked, err := AutotuneReclaimBW(prof, iters(quick, 700, 1500))
		if err != nil {
			return err
		}
		if leaked > 0 {
			return fmt.Errorf("autotune reclaimbw %s: %d Busy pages leaked", prof, leaked)
		}
		for _, s := range statics {
			fmt.Fprintf(w, "reclaimbw %-10s sim %9.0f pg/s\n", s.Label, s.SimBW)
		}
		best := BestSimBW(statics)
		fmt.Fprintf(w, "reclaimbw %-10s sim %9.0f pg/s  (best static %s: ratio %.2f)\n",
			auto.Label, auto.SimBW, best.Label, auto.SimBW/best.SimBW)

		statics, auto, leaked, err = AutotuneObjWB(prof, iters(quick, 2, 6))
		if err != nil {
			return err
		}
		if leaked > 0 {
			return fmt.Errorf("autotune objwb %s: %d Busy pages leaked", prof, leaked)
		}
		for _, s := range statics {
			fmt.Fprintf(w, "objwb     %-10s sim %9.0f pg/s\n", s.Label, s.SimBW)
		}
		best = BestSimBW(statics)
		fmt.Fprintf(w, "objwb     %-10s sim %9.0f pg/s  (best static %s: ratio %.2f)\n",
			auto.Label, auto.SimBW, best.Label, auto.SimBW/best.SimBW)

		statics, auto, leaked, err = AutotuneTraffic(prof, true, 4)
		if err != nil {
			return err
		}
		if leaked > 0 {
			return fmt.Errorf("autotune traffic %s: %d Busy pages leaked", prof, leaked)
		}
		for _, s := range statics {
			fmt.Fprintf(w, "traffic   %-10s p99 %9s\n", s.Label, s.P99)
		}
		bp := BestP99(statics)
		fmt.Fprintf(w, "traffic   %-10s p99 %9s  (best static %s: ratio %.2f)\n",
			auto.Label, auto.P99, bp.Label, float64(auto.P99)/float64(bp.P99))
	}
	fmt.Fprintln(w, "(the traffic rows are wall clock: orderings need real cores, like Scaling.)")
	return nil
}

// matrixAutotune is the matrix's autotune cell: the compact
// controller-vs-best-static reclaim-bandwidth comparison on one
// profile, leak-checked like every cell.
func matrixAutotune(prof string, quick bool, w io.Writer) (int, error) {
	statics, auto, leaked, err := AutotuneReclaimBW(prof, iters(quick, 700, 1500))
	if err != nil {
		return leaked, err
	}
	best := BestSimBW(statics)
	fmt.Fprintf(w, "autotune reclaimbw: best static %s sim %9.0f pg/s, autotune sim %9.0f pg/s (ratio %.2f)\n",
		best.Label, best.SimBW, auto.SimBW, auto.SimBW/best.SimBW)
	return leaked, nil
}
