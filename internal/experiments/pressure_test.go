package experiments

import (
	"runtime"
	"testing"
	"time"
)

// TestPressureRunsOnAllConfigs smoke-tests the pressure driver: every
// configuration completes the overcommitted workload (the daemon must
// keep reclaiming, not deadlock) and reports a sane distribution.
func TestPressureRunsOnAllConfigs(t *testing.T) {
	for _, nb := range pressureBooters() {
		points, err := Pressure(nb.Name, nb.Boot, []int{1, 2}, 300)
		if err != nil {
			t.Fatalf("%s: %v", nb.Name, err)
		}
		for _, pt := range points {
			if pt.Accesses != pt.Goroutines*300 {
				t.Fatalf("%s: lost samples: %+v", nb.Name, pt)
			}
			if pt.P50 <= 0 || pt.P99 < pt.P50 || pt.Max < pt.P99 {
				t.Fatalf("%s: degenerate distribution: %+v", nb.Name, pt)
			}
		}
	}
}

// TestPressureDaemonBeatsInlineTail is the PR's headline claim: with
// several goroutines allocating under pressure, the asynchronous
// pagedaemon yields a lower allocation tail latency than inline reclaim,
// because reclaim starts at the low-water mark instead of inside an
// unlucky allocation. Wall-clock measurement on a shared machine is
// noisy, so take the best of a few attempts before judging.
func TestPressureDaemonBeatsInlineTail(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock tail comparison skipped in -short mode")
	}
	const workers = 4
	best := 0.0
	var inline, daemon PressurePoint
	for attempt := 0; attempt < 3 && best < 1.0; attempt++ {
		boots := pressureBooters()
		ip, err := Pressure("uvm-inline", boots[1].Boot, []int{workers}, 1500)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := Pressure("uvm-daemon", boots[2].Boot, []int{workers}, 1500)
		if err != nil {
			t.Fatal(err)
		}
		inline, daemon = ip[0], dp[0]
		if r := float64(inline.P99) / float64(daemon.P99); r > best {
			best = r
		}
	}
	t.Logf("p99 at %d goroutines: inline %v, daemon %v (best ratio %.2fx, GOMAXPROCS=%d)",
		workers, inline.P99, daemon.P99, best, runtime.GOMAXPROCS(0))
	// Sanity floor: the daemon config must still be doing real paging,
	// not winning by skipping the work.
	if daemon.P50 <= 0 || daemon.Max < 10*time.Microsecond {
		t.Errorf("daemon run suspiciously cheap: %+v", daemon)
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: daemon/allocator overlap not reliably observable without cores",
			runtime.GOMAXPROCS(0))
	}
	if best < 1.0 {
		t.Errorf("daemon p99 (%v) should beat inline p99 (%v) at %d goroutines",
			daemon.P99, inline.P99, workers)
	}
}
