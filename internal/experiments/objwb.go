package experiments

import (
	"fmt"
	"io"
	"time"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

// ObjWB measures object writeback (msync) bandwidth, contrasting the
// stages of the object writeback pipeline on both backends:
//
//   - sync: the baseline — Msync puts one page per I/O, synchronously,
//     in ascending index order; every page pays the disk's positioning
//     and transfer time on the caller's clock.
//   - async-w4: the writeback engine with clustering disabled (1-page
//     clusters through a 4-deep in-flight window): the same I/Os, but
//     overlapped — the caller pays only collection and the in-memory
//     copies, and waits for the completions.
//   - async-cluster: the full pipeline — dirty pages leave as
//     contiguous-index clusters (up to 16 pages per I/O) through the
//     window, so both the per-page positioning cost and the I/O count
//     collapse.
//
// Each configuration runs the same workload on each backend: dirty every
// page of a region (vnode: a shared file mapping flushed to the file;
// aobj: a shared anonymous mapping flushed to swap), Msync, repeat. The
// simulated bandwidth (pages written back per simulated second) isolates
// the modelling claim — async overlap and clustering sustain strictly
// more writeback per simulated second; wall bandwidth shows the host
// effect.

// ObjWBPoint is one (configuration, backend) measurement.
type ObjWBPoint struct {
	Config   string
	Backend  string // "vnode" or "aobj"
	Msyncs   int
	Pageouts int64
	Clusters int64 // writeback cluster I/Os (async configs)
	Wall     time.Duration
	Sim      time.Duration
	DiskBusy time.Duration // device-busy time of the overlapped writes
	WallBW   float64       // pageouts per wall second
	SimBW    float64       // pageouts per simulated second
}

const (
	// objWBRegionPages is the mapped region each round dirties and
	// flushes (1 MB).
	objWBRegionPages = 256
	// objWBRAMPages keeps the whole region resident: the experiment
	// measures writeback, not reclaim.
	objWBRAMPages = 2048
)

// objWBConfig names one tuning of the writeback pipeline.
type objWBConfig struct {
	Name string
	Tune func(*uvm.Config)
}

// objWBConfigs returns the pipeline stages the experiment contrasts.
func objWBConfigs() []objWBConfig {
	return []objWBConfig{
		{"sync", func(c *uvm.Config) {}},
		{"async-w4", func(c *uvm.Config) {
			c.AsyncWriteback = true
			c.WritebackWindow = 4
			c.WritebackCluster = 1
		}},
		{"async-cluster", func(c *uvm.Config) {
			c.AsyncWriteback = true
			c.WritebackWindow = 4
			c.WritebackCluster = 16
		}},
	}
}

// ObjWBRun measures one configuration on one backend: rounds of
// dirty-everything then Msync over a region that stays resident.
func ObjWBRun(cfgName, backend string, tune func(*uvm.Config), rounds int) (ObjWBPoint, error) {
	pt, _, err := ObjWBRunOn(profile, cfgName, backend, tune, rounds)
	return pt, err
}

// ObjWBRunOn is ObjWBRun on a named machine profile. Returns the
// measurement plus the number of Busy pages leaked (swept after
// Shutdown; always 0 unless a writeback error path lost a claim).
func ObjWBRunOn(prof, cfgName, backend string, tune func(*uvm.Config), rounds int) (ObjWBPoint, int, error) {
	mach := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:  objWBRAMPages,
		SwapPages: 65536,
		FSPages:   4096,
		MaxVnodes: 16,
		Profile:   prof,
	})
	cfg := uvm.DefaultConfig()
	tune(&cfg)
	sys := uvm.BootConfig(mach, cfg)
	defer sys.Shutdown()

	p, err := sys.NewProcess("wb")
	if err != nil {
		return ObjWBPoint{}, 0, err
	}
	defer p.Exit()

	var va param.VAddr
	switch backend {
	case "vnode":
		if err := mach.FS.Create("/objwb", objWBRegionPages*param.PageSize, nil); err != nil {
			return ObjWBPoint{}, 0, err
		}
		vn, err := mach.FS.Open("/objwb")
		if err != nil {
			return ObjWBPoint{}, 0, err
		}
		defer vn.Unref()
		va, err = p.Mmap(0, objWBRegionPages*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
		if err != nil {
			return ObjWBPoint{}, 0, err
		}
	case "aobj":
		va, err = p.Mmap(0, objWBRegionPages*param.PageSize, param.ProtRW,
			vmapi.MapAnon|vmapi.MapShared, nil, 0)
		if err != nil {
			return ObjWBPoint{}, 0, err
		}
	default:
		return ObjWBPoint{}, 0, fmt.Errorf("objwb: unknown backend %q", backend)
	}

	//uvm:wallclock real elapsed time is the reported host-throughput metric
	wallStart := time.Now()
	simStart := mach.Clock.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < objWBRegionPages; i++ {
			if err := p.Access(va+param.VAddr(i)*param.PageSize, true); err != nil {
				return ObjWBPoint{}, 0, err
			}
		}
		if err := p.Msync(va, objWBRegionPages*param.PageSize); err != nil {
			return ObjWBPoint{}, 0, err
		}
	}
	//uvm:wallclock real elapsed time is the reported host-throughput metric
	wall := time.Since(wallStart)
	simT := mach.Clock.Now() - simStart
	sys.Shutdown()
	leaked := len(mach.Mem.BusyPages())

	pt := ObjWBPoint{
		Config:   cfgName,
		Backend:  backend,
		Msyncs:   rounds,
		Pageouts: mach.Stats.Get(sim.CtrPageOuts),
		Clusters: mach.Stats.Get(sim.CtrObjWbClusters),
		Wall:     wall,
		Sim:      simT,
		DiskBusy: time.Duration(mach.Stats.Get(sim.CtrDiskDeferredNs)),
	}
	if s := wall.Seconds(); s > 0 {
		pt.WallBW = float64(pt.Pageouts) / s
	}
	if s := simT.Seconds(); s > 0 {
		pt.SimBW = float64(pt.Pageouts) / s
	}
	return pt, leaked, nil
}

// ObjWB runs every pipeline configuration on both backends.
func ObjWB(rounds int) ([]ObjWBPoint, error) {
	var points []ObjWBPoint
	for _, backend := range []string{"vnode", "aobj"} {
		for _, c := range objWBConfigs() {
			pt, err := ObjWBRun(c.Name, backend, c.Tune, rounds)
			if err != nil {
				return nil, err
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// ReportObjWB renders the writeback bandwidth table.
func ReportObjWB(w io.Writer, rounds int) error {
	header(w, "ObjWB: object writeback (msync) bandwidth, sync vs async vs clustered")
	fmt.Fprintf(w, "%d rounds x %d-page region per config; vnode pages flush to the file, aobj pages to swap\n",
		rounds, objWBRegionPages)
	points, err := ObjWB(rounds)
	if err != nil {
		return err
	}
	for _, pt := range points {
		fmt.Fprintf(w, "%-6s %-14s %7d pageouts  sim %10.0f pg/s  wall %10.0f pg/s  disk-busy %9s  (%d wb clusters)\n",
			pt.Backend, pt.Config, pt.Pageouts, pt.SimBW, pt.WallBW, pt.DiskBusy, pt.Clusters)
	}
	fmt.Fprintln(w, "(sync puts one page per I/O on the caller's clock; async-w4 overlaps the same")
	fmt.Fprintln(w, " I/Os in a bounded window, so simulated bandwidth jumps; async-cluster also")
	fmt.Fprintln(w, " merges contiguous pages into one command, so the device-busy time of the")
	fmt.Fprintln(w, " overlapped writes collapses too.)")
	return nil
}
