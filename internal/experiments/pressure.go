package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"uvm/internal/bsdvm"
	"uvm/internal/param"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

// Pressure measures allocation tail latency under sustained memory
// pressure — the experiment that motivates the asynchronous pagedaemon.
// N goroutines, each with a private anonymous region, together demand
// several times physical memory, so every allocation rides on reclaim.
//
// With inline reclaim (the pre-daemon design, and what BSD VM still
// does), an allocating goroutine that finds the free list empty runs a
// whole reclaim batch itself — clustering, swap-slot allocation, pageout
// I/O — so an unlucky access pays for dozens of pageouts and the tail
// (p99/max) stretches far beyond the median. With the asynchronous
// daemon, the low-water kick starts reclaim before exhaustion and a
// blocked allocator only waits for the round in flight, so the tail
// tightens — visibly so once there are enough goroutines that the
// daemon's round amortises over many waiters (≥4 on a multicore host).

// PressurePoint is one (system, goroutines) sample: the distribution of
// wall-clock page-touch latencies under pressure.
type PressurePoint struct {
	System     string
	Goroutines int
	Accesses   int
	P50        time.Duration
	P99        time.Duration
	Max        time.Duration
}

const (
	// pressureRAMPages keeps the machine small enough that the workload
	// overcommits it several times over.
	pressureRAMPages = 1024 // 4 MB
	// pressureRegionPages is each worker's private region: 2 MB, so two
	// workers already exceed RAM.
	pressureRegionPages = 512
)

// Pressure runs the tail-latency experiment on one booter for each
// goroutine count. Each worker cycles through its region touching pages
// for writing; each touch's wall-clock latency is recorded.
func Pressure(name string, boot vmapi.Booter, workers []int, accessesPerWorker int) ([]PressurePoint, error) {
	points := make([]PressurePoint, 0, len(workers))
	for _, n := range workers {
		pt, err := pressureRun(name, boot, n, accessesPerWorker)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

func pressureRun(name string, boot vmapi.Booter, workers, accesses int) (PressurePoint, error) {
	mach := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:  pressureRAMPages,
		SwapPages: 65536,
		FSPages:   1024,
		MaxVnodes: 16,
	})
	sys := boot(mach)
	defer sys.Shutdown()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		all      []time.Duration
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := sys.NewProcess(fmt.Sprintf("press%d", w))
			if err == nil {
				defer p.Exit()
			}
			lat := make([]time.Duration, 0, accesses)
			var verr error
			if err == nil {
				const length = pressureRegionPages * param.PageSize
				var va param.VAddr
				va, verr = p.Mmap(0, length, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
				for i := 0; i < accesses && verr == nil; i++ {
					addr := va + param.VAddr(i%pressureRegionPages)*param.PageSize
					//uvm:wallclock host-latency histogram measures real elapsed time
					t0 := time.Now()
					verr = p.Access(addr, true)
					//uvm:wallclock host-latency histogram measures real elapsed time
					lat = append(lat, time.Since(t0))
				}
			} else {
				verr = err
			}
			mu.Lock()
			if verr != nil && firstErr == nil {
				firstErr = verr
			}
			all = append(all, lat...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return PressurePoint{}, firstErr
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(q * float64(len(all)-1))
		return all[i]
	}
	return PressurePoint{
		System:     name,
		Goroutines: workers,
		Accesses:   len(all),
		P50:        pct(0.50),
		P99:        pct(0.99),
		Max:        all[len(all)-1],
	}, nil
}

// pressureBooters returns the three configurations the experiment
// contrasts: the big-lock baseline, UVM with the pre-daemon inline
// reclaim, and UVM with the asynchronous pagedaemon.
func pressureBooters() []NamedBooter {
	return []NamedBooter{
		{"bsdvm", bsdvm.Boot},
		{"uvm-inline", uvmDeterministic},
		{"uvm-daemon", uvm.Boot},
	}
}

// ReportPressure renders tail latency for every system at each goroutine
// count.
func ReportPressure(w io.Writer, workers []int, accessesPerWorker int) error {
	header(w, "Pressure: allocation tail latency under reclaim (wall clock)")
	fmt.Fprintf(w, "GOMAXPROCS=%d NumCPU=%d  RAM=%d pages, each goroutine cycles %d pages\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU(), pressureRAMPages, pressureRegionPages)
	for _, nb := range pressureBooters() {
		points, err := Pressure(nb.Name, nb.Boot, workers, accessesPerWorker)
		if err != nil {
			return err
		}
		for _, pt := range points {
			fmt.Fprintf(w, "%-11s %2d goroutines: p50 %9s  p99 %9s  max %9s  (%d accesses)\n",
				pt.System, pt.Goroutines, pt.P50, pt.P99, pt.Max, pt.Accesses)
		}
	}
	fmt.Fprintln(w, "(uvm-daemon's low-water wakeup reclaims ahead of allocators; with enough")
	fmt.Fprintln(w, " goroutines its p99 drops below uvm-inline, which pays whole reclaim")
	fmt.Fprintln(w, " batches inside unlucky allocations)")
	return nil
}
