package experiments

import (
	"fmt"
	"io"
	"time"

	"uvm/internal/vmapi"
	"uvm/internal/workload"
)

// F2Point is one point of Figure 2: the time for an Apache-style server
// to read its working set of 64 KB files, as a function of set size.
type F2Point struct {
	Files    int
	BSD, UVM time.Duration
}

// Figure2 reproduces Figure 2. A server mmaps and touches every byte of N
// 64 KB files; the measured pass runs after a priming pass, so a system
// that caches the file pages serves from memory. BSD VM's 100-object
// cache evicts beyond 100 files even though memory is free; UVM keeps
// pages attached to cached vnodes, so the whole set stays resident.
func Figure2(sizes []int) ([]F2Point, error) {
	const filePages = 16 // 64 KB files
	var points []F2Point
	for _, n := range sizes {
		bsd, uv := pair(bigMemConfig())
		var times [2]time.Duration
		for i, sys := range []vmapi.System{bsd, uv} {
			srv, err := workload.NewFileServer(sys, n, filePages)
			if err != nil {
				return nil, err
			}
			if _, err := srv.ServeAll(); err != nil { // priming pass
				return nil, err
			}
			d, err := srv.ServeAll() // measured pass
			if err != nil {
				return nil, err
			}
			times[i] = d
			srv.Close()
		}
		points = append(points, F2Point{n, times[0], times[1]})
	}
	return points, nil
}

// logRange2 finds the min/max seconds across both series for bar scaling.
func logRange2(points []F2Point) (lo, hi float64) {
	lo, hi = points[0].UVM.Seconds(), points[0].UVM.Seconds()
	for _, p := range points {
		for _, v := range []float64{p.BSD.Seconds(), p.UVM.Seconds()} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

// ReportFigure2 renders the series.
func ReportFigure2(w io.Writer, sizes []int) error {
	points, err := Figure2(sizes)
	if err != nil {
		return err
	}
	header(w, "Figure 2: BSD VM object cache effect on file access (64 KB files)")
	lo, hi := logRange2(points)
	fmt.Fprintf(w, "%8s %14s %14s %10s   %s\n", "files", "BSD VM", "UVM", "BSD/UVM", "log-scale time (B=BSD, U=UVM)")
	for _, p := range points {
		ratio := float64(p.BSD) / float64(p.UVM)
		fmt.Fprintf(w, "%8d %14s %14s %9.1fx   B %s\n%52s U %s\n",
			p.Files, p.BSD.Round(time.Microsecond), p.UVM.Round(time.Microsecond), ratio,
			logBar(p.BSD.Seconds(), lo, hi, 26), "", logBar(p.UVM.Seconds(), lo, hi, 26))
	}
	fmt.Fprintln(w, "(paper: both flat below ~100 files; BSD VM climbs to disk speed beyond the")
	fmt.Fprintln(w, " 100-object cache limit while UVM stays at memory speed)")
	return nil
}
