package experiments

import (
	"fmt"
	"io"

	"uvm/internal/vmapi"
	"uvm/internal/workload"
)

// T1Row is one row of Table 1: allocated map entries for an operation.
type T1Row struct {
	Operation string
	BSD, UVM  int
	// PaperBSD/PaperUVM are the values printed in the paper, for the
	// side-by-side report.
	PaperBSD, PaperUVM int
}

// Table1 reproduces Table 1: the number of allocated map entries on the
// i386 for common operations. The cat/od rows count the entries one exec
// adds (process map + per-process kernel map entries); the scenario rows
// count the system-wide totals (boot rows) or the workload's processes
// (X11 row), matching the paper's presentation.
func Table1() ([]T1Row, error) {
	var rows []T1Row

	execDelta := func(img *workload.Image) (int, int, error) {
		bsd, uv := pair(stdConfig())
		b0 := bsd.TotalMapEntries()
		if _, err := workload.Exec(bsd, img); err != nil {
			return 0, 0, err
		}
		u0 := uv.TotalMapEntries()
		if _, err := workload.Exec(uv, img); err != nil {
			return 0, 0, err
		}
		return bsd.TotalMapEntries() - b0, uv.TotalMapEntries() - u0, nil
	}

	b, u, err := execDelta(workload.CatImage())
	if err != nil {
		return nil, err
	}
	rows = append(rows, T1Row{"cat (static link)", b, u, 11, 6})

	b, u, err = execDelta(workload.OdImage())
	if err != nil {
		return nil, err
	}
	rows = append(rows, T1Row{"od (dynamic link)", b, u, 21, 12})

	// Single-user boot: total entries in the booted system.
	bsd, uv := pair(stdConfig())
	if _, err := workload.SingleUserBoot(bsd); err != nil {
		return nil, err
	}
	if _, err := workload.SingleUserBoot(uv); err != nil {
		return nil, err
	}
	rows = append(rows, T1Row{"single-user boot", bsd.TotalMapEntries(), uv.TotalMapEntries(), 50, 26})

	// Multi-user boot (no logins).
	bsd, uv = pair(stdConfig())
	if _, err := workload.MultiUserBoot(bsd); err != nil {
		return nil, err
	}
	if _, err := workload.MultiUserBoot(uv); err != nil {
		return nil, err
	}
	rows = append(rows, T1Row{"multi-user boot (no logins)", bsd.TotalMapEntries(), uv.TotalMapEntries(), 400, 242})

	// Starting X11 (9 processes): the entries of those processes.
	bsd, uv = pair(stdConfig())
	bp, err := workload.StartX11(bsd)
	if err != nil {
		return nil, err
	}
	up, err := workload.StartX11(uv)
	if err != nil {
		return nil, err
	}
	rows = append(rows, T1Row{
		"starting X11 (9 processes)",
		workload.EntriesFor(bp) + perProcKernel(bsd, len(bp)),
		workload.EntriesFor(up) + perProcKernel(uv, len(up)),
		275, 186,
	})
	return rows, nil
}

// perProcKernel counts the kernel map entries attributable to n processes
// (BSD VM: two per process for the user structure and kernel stack; UVM:
// zero).
func perProcKernel(sys vmapi.System, n int) int {
	if sys.Name() == "bsdvm" {
		return 2 * n
	}
	return 0
}

// ReportTable1 renders the table.
func ReportTable1(w io.Writer) error {
	rows, err := Table1()
	if err != nil {
		return err
	}
	header(w, "Table 1: number of allocated map entries (i386)")
	fmt.Fprintf(w, "%-30s %12s %12s   %s\n", "Operation", "BSD VM", "UVM", "(paper: BSD/UVM)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-30s %12d %12d   (%d/%d)\n",
			r.Operation, r.BSD, r.UVM, r.PaperBSD, r.PaperUVM)
	}
	return nil
}
