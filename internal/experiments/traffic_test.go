package experiments

import (
	"runtime"
	"strings"
	"testing"
)

// TestTrafficUVMTailAtOrBelowBSD is the traffic experiment's acceptance
// check: on the default configuration shape, uvm's fault-latency p99 at
// a contended worker count stays at or below bsdvm's. The quantiles are
// wall clock, so like every wall-clock assertion in this package the
// comparison needs real cores — under GOMAXPROCS=1 the workers
// time-slice, the big lock never queues anyone, and the ordering is
// noise. The run itself (and its leak sweep) executes everywhere.
func TestTrafficUVMTailAtOrBelowBSD(t *testing.T) {
	if testing.Short() {
		t.Skip("traffic experiment skipped in -short mode")
	}
	cfg := TrafficConfigFor(true)
	const workers = 4
	booters := TrafficBooters()
	var bsd, uv TrafficPoint
	ok := false
	// Wall-clock quantiles on a shared machine are noisy: best of three
	// attempts before judging the tail ordering.
	for attempt := 0; attempt < 3 && !ok; attempt++ {
		for i, nb := range booters {
			pt, leaked, err := TrafficRunOn("hdd97", nb, cfg, workers)
			if err != nil {
				t.Fatalf("%s: %v", nb.Name, err)
			}
			if leaked != 0 {
				t.Fatalf("%s: %d Busy pages leaked after Shutdown", nb.Name, leaked)
			}
			if pt.Ops != int64(workers)*int64(cfg.OpsPerWorker) || pt.Faults == 0 || pt.P99 <= 0 {
				t.Fatalf("%s: degenerate point %+v", nb.Name, pt)
			}
			if i == 0 {
				bsd = pt
			} else {
				uv = pt
			}
		}
		if bsd.Interference != 0 {
			t.Errorf("bsdvm reported reclaim interference %d, want 0 by construction", bsd.Interference)
		}
		if uv.Interference < 0 {
			t.Errorf("uvm reported negative reclaim interference %d", uv.Interference)
		}
		ok = uv.P99 <= bsd.P99
	}
	t.Logf("traffic p99 at %d workers: bsdvm %v, uvm %v (interference bsdvm %d / uvm %d, GOMAXPROCS=%d)",
		workers, bsd.P99, uv.P99, bsd.Interference, uv.Interference, runtime.GOMAXPROCS(0))

	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: big-lock queueing not observable without cores", runtime.GOMAXPROCS(0))
	}
	if !ok {
		t.Errorf("uvm p99 %v exceeds bsdvm p99 %v at %d workers", uv.P99, bsd.P99, workers)
	}
}

// TestTrafficMatrixCell runs the traffic cell of the machine-profile
// matrix end to end on one profile: it must succeed with a clean busy
// sweep and report both systems.
func TestTrafficMatrixCell(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix cell skipped in -short mode")
	}
	c := runMatrixCell("traffic", "nvme", false, true)
	if c.Err != nil {
		t.Fatalf("traffic matrix cell failed: %v\nreport:\n%s", c.Err, c.Report)
	}
	if c.BusyLeaked != 0 {
		t.Fatalf("traffic matrix cell leaked %d Busy pages", c.BusyLeaked)
	}
	for _, want := range []string{"traffic bsdvm", "traffic uvm", "reclaim-interference"} {
		if !strings.Contains(c.Report, want) {
			t.Errorf("cell report missing %q:\n%s", want, c.Report)
		}
	}
}

// TestTrafficOverridesApply pins the knob plumbing used by uvmbench
// -traffic: set fields replace config values, zero/negative fields keep
// them, and -dataset-pages rescales the file count at fixed file size.
func TestTrafficOverridesApply(t *testing.T) {
	cfg := TrafficConfigFor(true)
	base := cfg
	TrafficOverrides{ZipfS: -1}.Apply(&cfg)
	if cfg != base {
		t.Fatalf("no-op overrides changed config: %+v != %+v", cfg, base)
	}
	over := TrafficOverrides{Tenants: 7, DatasetPages: base.FilePages * 13, ZipfS: 0, ChurnEvery: 5, OpsPerWorker: 9}
	over.Apply(&cfg)
	if cfg.Tenants != 7 || cfg.DatasetFiles != 13 || cfg.ZipfS != 0 || cfg.ChurnEvery != 5 || cfg.OpsPerWorker != 9 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("overridden config invalid: %v", err)
	}
}
