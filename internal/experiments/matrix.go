package experiments

import (
	"bytes"
	"fmt"
	"io"

	"uvm/internal/bsdvm"
	"uvm/internal/disk"
	"uvm/internal/sim"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
	"uvm/internal/workload"
)

// The machine-profile matrix: the same workloads run across every named
// machine profile, optionally under an injected fault schedule, one
// report per cell. The paper measured one machine (hdd97); the matrix is
// how every conclusion built on top of it — clustering wins, overlap
// wins, pipeline error handling — gets re-checked when the disk model is
// swapped for a modern one, and how the fault plans are exercised
// systematically rather than ad hoc per test.
//
// Every cell ends with a consistency sweep: after Shutdown the machine
// must have zero Busy pages. A leaked Busy page means some error path
// kept a claim it should have released, and the cell fails even if the
// workload itself reported success.

// MatrixCell is one (workload, profile, fault-schedule) run of the
// matrix: its report text, its end-of-run Busy-page sweep, and its
// outcome.
type MatrixCell struct {
	Workload   string
	Profile    string
	Faults     bool   // ran with the injected fault schedule on swap
	Report     string // per-cell report (archived by CI)
	BusyLeaked int    // Busy pages found after Shutdown; must be 0
	Err        error
}

// Name returns the cell's report-file-friendly identifier.
func (c MatrixCell) Name() string {
	name := c.Workload + "-" + c.Profile
	if c.Faults {
		name += "-faults"
	}
	return name
}

// MatrixWorkloads returns the matrix's workload names in canonical
// order: the boot/exec scenario from internal/workload, the reclaim
// bandwidth cell, the object writeback cell, the multi-tenant traffic
// cell, the allocator-layout cell (per-CPU caches vs single pool), and
// the autotune cell (feedback controllers vs best static setting).
func MatrixWorkloads() []string {
	return []string{"scenario", "reclaim", "objwb", "traffic", "alloc", "autotune"}
}

// MatrixFaultPlan returns the fault schedule the matrix's fault cells
// install on the swap disk: a torn cluster write, then transient write
// and read errors, all count-limited so the system has to absorb each
// class and then recover. Fresh per cell — plans hold per-device trigger
// state.
func MatrixFaultPlan() *disk.FaultPlan {
	return disk.NewFaultPlan(
		disk.FaultRule{Kind: disk.FaultTornWrite, Block: disk.BlockAny, AfterOps: 8, Count: 3, TornPages: 2},
		disk.FaultRule{Kind: disk.FaultWriteError, Block: disk.BlockAny, AfterOps: 15, Count: 2},
		disk.FaultRule{Kind: disk.FaultReadError, Block: disk.BlockAny, AfterOps: 10, Count: 3},
	)
}

// RunMatrix runs every workload × profile cell and, with withFaults, one
// fault-injected reclaim cell per profile. Cells run sequentially (each
// boots its own machine); a failing cell doesn't stop the rest.
func RunMatrix(workloads, profiles []string, withFaults, quick bool) []MatrixCell {
	var cells []MatrixCell
	for _, wl := range workloads {
		for _, prof := range profiles {
			cells = append(cells, runMatrixCell(wl, prof, false, quick))
		}
	}
	if withFaults {
		for _, prof := range profiles {
			cells = append(cells, runMatrixCell("reclaim", prof, true, quick))
		}
	}
	return cells
}

func runMatrixCell(wl, prof string, faults, quick bool) (c MatrixCell) {
	c = MatrixCell{Workload: wl, Profile: prof, Faults: faults}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "matrix cell %s: workload=%s profile=%s faults=%v\n",
		c.Name(), wl, prof, faults)
	defer func() {
		if r := recover(); r != nil {
			c.Err = fmt.Errorf("matrix: cell %s panicked: %v", c.Name(), r)
		}
		if c.Err != nil {
			fmt.Fprintf(&buf, "FAILED: %v\n", c.Err)
		} else {
			fmt.Fprintf(&buf, "ok (busy sweep clean)\n")
		}
		c.Report = buf.String()
	}()

	var leaked int
	var err error
	switch wl {
	case "scenario":
		leaked, err = matrixScenario(prof, &buf)
	case "reclaim":
		leaked, err = matrixReclaim(prof, faults, quick, &buf)
	case "objwb":
		leaked, err = matrixObjWB(prof, quick, &buf)
	case "traffic":
		leaked, err = matrixTraffic(prof, quick, &buf)
	case "alloc":
		leaked, err = matrixAlloc(prof, &buf)
	case "autotune":
		leaked, err = matrixAutotune(prof, quick, &buf)
	default:
		err = fmt.Errorf("matrix: unknown workload %q (valid: %v)", wl, MatrixWorkloads())
	}
	c.BusyLeaked = leaked
	if err == nil && leaked > 0 {
		err = fmt.Errorf("matrix: cell %s leaked %d Busy pages", c.Name(), leaked)
	}
	c.Err = err
	return c
}

// matrixScenario boots both VM systems on the profile's machine preset
// and runs the multi-user boot scenario — the Table 1 structural
// workload — reporting each system's map-entry census and simulated
// time.
func matrixScenario(prof string, w io.Writer) (int, error) {
	cfg, err := vmapi.ProfileConfig(prof)
	if err != nil {
		return 0, err
	}
	leaked := 0
	for _, boot := range []NamedBooter{{"bsdvm", bsdvm.Boot}, {"uvm", uvm.Boot}} {
		mach := vmapi.NewMachine(cfg)
		sys := boot.Boot(mach)
		procs, err := workload.MultiUserBoot(sys)
		if err != nil {
			sys.Shutdown()
			return leaked, err
		}
		fmt.Fprintf(w, "%-6s multi-user boot: %d procs, kernel entries %d, total entries %d, sim time %v\n",
			boot.Name, len(procs), sys.KernelMapEntries(), sys.TotalMapEntries(), mach.Clock.Now())
		for _, p := range procs {
			p.Exit()
		}
		sys.Shutdown()
		leaked += len(mach.Mem.BusyPages())
	}
	return leaked, nil
}

// matrixReclaim runs the full reclaim pipeline (async clustered pageout,
// parallel workers, clustered pagein) under overcommit — optionally with
// the injected fault schedule on the swap disk, in which case failed
// accesses are counted rather than fatal and the cell additionally
// reports how often each fault rule fired.
func matrixReclaim(prof string, faults, quick bool, w io.Writer) (int, error) {
	var plan *disk.FaultPlan
	if faults {
		plan = MatrixFaultPlan()
	}
	tune := func(c *uvm.Config) {
		c.AsyncPageout = true
		c.PageoutWindow = 4
		c.ReclaimWorkers = 4
		c.PageinCluster = 8
	}
	// Each producer must touch more pages than its share of RAM or the
	// cell never pages out: 4 producers × 700 accesses over 512-page
	// regions demands 2048 pages of the 1024-page machine.
	accesses := iters(quick, 700, 1500)
	pt, leaked, err := ReclaimBWRunOn(prof, plan, "async-4w+pgin", tune, accesses)
	if err != nil {
		return leaked, err
	}
	fmt.Fprintf(w, "reclaim async-4w+pgin: %d accesses, %d pageouts, sim %9.0f pg/s (async clusters %d, pagein rides %d, io errors %d)\n",
		pt.Accesses, pt.Pageouts, pt.SimBW, pt.AsyncClusters, pt.PageinRides, pt.IOErrors)
	if plan != nil {
		for i, kind := range []disk.FaultKind{disk.FaultTornWrite, disk.FaultWriteError, disk.FaultReadError} {
			fmt.Fprintf(w, "fault rule %-11s fired %d times\n", kind, plan.Fired(i))
		}
	}
	return leaked, nil
}

// matrixObjWB runs the clustered asynchronous object-writeback pipeline
// (msync rounds over a shared file mapping) on the profile.
func matrixObjWB(prof string, quick bool, w io.Writer) (int, error) {
	tune := func(c *uvm.Config) {
		c.AsyncWriteback = true
		c.WritebackWindow = 4
		c.WritebackCluster = 16
	}
	rounds := iters(quick, 2, 6)
	pt, leaked, err := ObjWBRunOn(prof, "async-cluster", "vnode", tune, rounds)
	if err != nil {
		return leaked, err
	}
	fmt.Fprintf(w, "objwb vnode async-cluster: %d msyncs, %d pageouts, sim %10.0f pg/s, disk-busy %v (%d wb clusters)\n",
		pt.Msyncs, pt.Pageouts, pt.SimBW, pt.DiskBusy, pt.Clusters)
	return leaked, nil
}

// matrixTraffic runs the multi-tenant Zipf traffic driver — quick
// shape, one mid-range worker count — on both systems, reporting each
// system's fault-latency quantiles and reclaim-interference count.
func matrixTraffic(prof string, quick bool, w io.Writer) (int, error) {
	cfg := TrafficConfigFor(true) // matrix cells always use the quick shape
	if !quick {
		cfg.OpsPerWorker *= 4
	}
	leaked := 0
	for _, nb := range TrafficBooters() {
		pt, l, err := TrafficRunOn(prof, nb, cfg, 4)
		leaked += l
		if err != nil {
			return leaked, err
		}
		fmt.Fprintf(w, "traffic %-6s 4 workers: %d ops %d faults  p50 %s p99 %s p999 %s  reclaim-interference %d\n",
			nb.Name, pt.Ops, pt.Faults, pt.P50, pt.P99, pt.P999, pt.Interference)
	}
	return leaked, nil
}

// matrixAlloc contrasts the two allocator layouts under the parallel
// fault workload at 8 goroutines: per-CPU free-page caches (8 magazines)
// vs the single global pool (AllocCaches=0). Wall-clock throughput is
// host-dependent, but the contended share of allocation-path lock
// acquisitions is the structural story: the magazines take it toward
// zero, the single pool concentrates every fault on the same shard
// locks. (The workload is already quick-sized; no quick variant.)
func matrixAlloc(prof string, w io.Writer) (int, error) {
	leaked := 0
	for _, layout := range []struct {
		name   string
		caches int
	}{{"cached-8", 8}, {"single-pool", 0}} {
		pt, l, err := scalingRunOn(prof, "uvm", uvm.Boot, 8, layout.caches)
		leaked += l
		if err != nil {
			return leaked, err
		}
		fmt.Fprintf(w, "alloc %-11s 8 goroutines: %9.0f faults/s  alloc-contention %5.2f%% (%d/%d)\n",
			layout.name, pt.PerSecond,
			100*pt.AllocContentionRatio(), pt.AllocContended, pt.AllocAcquires)
	}
	return leaked, nil
}

// ReportMatrix runs the full matrix and renders the summary table;
// per-cell reports go through emit (cell name → report text), which
// drivers use to archive one file per cell. Returns an error if any cell
// failed.
func ReportMatrix(w io.Writer, profiles []string, withFaults, quick bool,
	emit func(name, report string) error) error {
	if len(profiles) == 0 {
		profiles = sim.Profiles()
	}
	header(w, "Matrix: workload × machine profile (+ fault schedules)")
	cells := RunMatrix(MatrixWorkloads(), profiles, withFaults, quick)
	failed := 0
	for _, c := range cells {
		status := "ok"
		if c.Err != nil {
			status = "FAIL: " + c.Err.Error()
			failed++
		}
		fmt.Fprintf(w, "%-24s busy-leaked=%d  %s\n", c.Name(), c.BusyLeaked, status)
		if emit != nil {
			if err := emit(c.Name(), c.Report); err != nil {
				return err
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("matrix: %d of %d cells failed", failed, len(cells))
	}
	return nil
}
