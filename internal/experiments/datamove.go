package experiments

import (
	"fmt"
	"io"
	"time"

	"uvm/internal/param"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

// DMRow is one row of the §7 data movement comparison: sending n pages to
// the networking subsystem by copying versus by page loanout, plus the
// map-entry-passing cost for the same range.
type DMRow struct {
	Pages       int
	Copy        time.Duration
	Loan        time.Duration
	LoanSaving  float64 // fraction saved vs copy (paper: 26% @ 1 page, 78% @ 256)
	MEP         time.Duration
	TransferRcv time.Duration
}

// syscallOverhead models the fixed cost of entering the kernel and
// traversing the socket layer down to the driver — identical for both
// transmission paths. Calibrated from 1999-era in-kernel TCP send-path
// measurements on similar hardware.
const syscallOverhead = 11 * time.Microsecond

// DataMovement measures the §7 mechanisms on a single UVM instance: for
// each transfer size, the time to hand the data to the kernel by bulk
// copy versus by page loanout; the time to pass the range to another
// process via map entry passing; and the receiver-side cost of page
// transfer.
func DataMovement(sizes []int) ([]DMRow, error) {
	var rows []DMRow
	for _, n := range sizes {
		mach := vmapi.NewMachine(stdConfig())
		sys := uvm.BootConfig(mach, uvm.DefaultConfig())
		senderI, err := sys.NewProcess("sender")
		if err != nil {
			return nil, err
		}
		sender := senderI.(*uvm.Process)
		size := param.VSize(n) * param.PageSize
		va, err := sender.Mmap(0, size, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		if err != nil {
			return nil, err
		}
		if err := sender.TouchRange(va, size, true); err != nil {
			return nil, err
		}

		// --- copy path: the kernel allocates mbuf pages and copies the
		// user data into them (traditional socket send).
		clock, costs := mach.Clock, mach.Costs
		t0 := clock.Now()
		clock.Advance(syscallOverhead)
		kpages, err := sys.AllocKernelPages(n, nil)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			// copyin of one page from the (resident) user buffer.
			clock.Advance(costs.PmapExtract)
			clock.Advance(costs.PageCopy)
		}
		copyCost := clock.Since(t0)
		for _, pg := range kpages { // driver frees the mbufs after transmit
			pg.WireCount.Store(0)
			mach.Mem.Free(pg)
		}

		// --- loan path: the same send with page loanout.
		t1 := clock.Now()
		clock.Advance(syscallOverhead)
		loaned, err := sender.Loanout(va, n)
		if err != nil {
			return nil, err
		}
		sender.LoanReturn(loaned) // transmit complete
		loanCost := clock.Since(t1)

		// --- map entry passing of the same range to a peer.
		peer, err := sys.NewProcess("peer")
		if err != nil {
			return nil, err
		}
		t2 := clock.Now()
		clock.Advance(syscallOverhead)
		tok, err := sender.Export(va, size, uvm.ExportShare)
		if err != nil {
			return nil, err
		}
		if _, err := peer.(*uvm.Process).Import(tok); err != nil {
			return nil, err
		}
		mepCost := clock.Since(t2)

		// --- page transfer: receiver-side insertion of loaned pages.
		recv, err := sys.NewProcess("recv")
		if err != nil {
			return nil, err
		}
		loaned2, err := sender.Loanout(va, n)
		if err != nil {
			return nil, err
		}
		t3 := clock.Now()
		clock.Advance(syscallOverhead)
		if _, err := recv.(*uvm.Process).Transfer(loaned2, param.ProtRW); err != nil {
			return nil, err
		}
		xferCost := clock.Since(t3)

		rows = append(rows, DMRow{
			Pages:       n,
			Copy:        copyCost,
			Loan:        loanCost,
			LoanSaving:  1 - float64(loanCost)/float64(copyCost),
			MEP:         mepCost,
			TransferRcv: xferCost,
		})
	}
	return rows, nil
}

// ReportDataMovement renders the comparison.
func ReportDataMovement(w io.Writer) error {
	rows, err := DataMovement([]int{1, 4, 16, 64, 256})
	if err != nil {
		return err
	}
	header(w, "§7: VM-based data movement vs data copying")
	fmt.Fprintf(w, "%7s %12s %12s %10s %12s %12s\n",
		"pages", "copy", "loanout", "saving", "map-entry", "transfer")
	for _, r := range rows {
		fmt.Fprintf(w, "%7d %12s %12s %9.0f%% %12s %12s\n",
			r.Pages,
			r.Copy.Round(10*time.Nanosecond), r.Loan.Round(10*time.Nanosecond),
			r.LoanSaving*100,
			r.MEP.Round(10*time.Nanosecond), r.TransferRcv.Round(10*time.Nanosecond))
	}
	fmt.Fprintln(w, "(paper: single-page loanout took 26% less time than copying; a 256-page")
	fmt.Fprintln(w, " loanout took 78% less)")
	return nil
}
