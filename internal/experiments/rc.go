package experiments

import (
	"fmt"
	"io"
	"time"

	"uvm/internal/param"
	"uvm/internal/vmapi"
	"uvm/internal/workload"
)

// RC reproduces the §8 anecdote: the running time of an /etc/rc-style
// boot script (a sequence of short command executions — fork, exec,
// touch the working set, exit) dropped about ten percent when NetBSD/VAX
// switched to UVM. The script below execs a mix of small static and
// dynamic commands, each of which also reads a config file and sysctls.
func RC() (bsd, uv time.Duration, err error) {
	images := func() []*workload.Image {
		sh := workload.CatImage()
		sh.Name = "sh"
		echo := workload.CatImage()
		echo.Name = "echo"
		ifconfig := workload.OdImage()
		ifconfig.Name = "ifconfig"
		return []*workload.Image{sh, echo, ifconfig}
	}
	run := func(sys vmapi.System) (time.Duration, error) {
		clock := sys.Machine().Clock
		if err := workload.BootKernel(sys); err != nil {
			return 0, err
		}
		imgs := images()
		// An rc script reruns the same few binaries; their pages are in
		// the file cache after the first run. Warm them outside the
		// measurement so both systems start from the same cache state.
		for _, img := range imgs {
			p, err := workload.Exec(sys, img)
			if err != nil {
				return 0, err
			}
			if err := p.TouchRange(param.UserTextBase, 8*param.PageSize, false); err != nil {
				return 0, err
			}
			p.Exit()
		}
		t0 := clock.Now()
		for i := 0; i < 30; i++ {
			img := imgs[i%len(imgs)]
			p, err := workload.Exec(sys, img)
			if err != nil {
				return 0, err
			}
			// The command runs: it walks its (cached) text and works in
			// some scratch memory, then exits.
			text := param.VSize(8) * param.PageSize
			if err := p.TouchRange(param.UserTextBase, text, false); err != nil {
				return 0, err
			}
			scratch, err := p.Mmap(0, 8*param.PageSize, param.ProtRW,
				vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				return 0, err
			}
			if err := p.TouchRange(scratch, 8*param.PageSize, true); err != nil {
				return 0, err
			}
			p.Exit()
		}
		return clock.Since(t0), nil
	}
	bsdSys, uvSys := pair(stdConfig())
	if bsd, err = run(bsdSys); err != nil {
		return
	}
	uv, err = run(uvSys)
	return
}

// ReportRC renders the comparison.
func ReportRC(w io.Writer) error {
	bsd, uv, err := RC()
	if err != nil {
		return err
	}
	header(w, "§8: /etc/rc-style script time")
	saving := 100 * (1 - float64(uv)/float64(bsd))
	fmt.Fprintf(w, "BSD VM: %12s\nUVM:    %12s\nUVM saves %.0f%%\n",
		bsd.Round(time.Microsecond), uv.Round(time.Microsecond), saving)
	fmt.Fprintln(w, "(paper: /etc/rc ran ten percent faster under UVM on the VAX)")
	return nil
}
