package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
)

// Scaling measures multicore fault throughput — the experiment the paper
// could not run (UVM shipped under the pre-SMP BSD big lock) but whose
// locking structure this reproduction extends to exploit. N goroutines,
// each with its own process and its own anonymous region, take write
// faults as fast as they can; the metric is wall-clock faults per second
// across the whole machine.
//
// Under internal/bsdvm every fault serialises on the system big lock, so
// adding goroutines cannot help. Under internal/uvm the fault path takes
// only its own process' map lock (shared), per-amap/anon locks and
// sharded page-queue locks, so disjoint processes fault in parallel and
// throughput rises with goroutine count — when the host actually has
// cores to run them (wall-clock scaling is bounded by GOMAXPROCS).

// ScalingPoint is one (goroutines, throughput) sample for one system.
type ScalingPoint struct {
	System     string
	Goroutines int
	Faults     int64         // faults taken during the measurement
	Wall       time.Duration // wall-clock elapsed
	PerSecond  float64       // Faults / Wall

	// pv-lock traffic on the pmap reverse map during the run: how often a
	// bucket lock was taken, and how often the taker had to wait. With
	// the sharded pv table the contended share stays near zero as
	// goroutines are added; a single-mutex table (pmap.MMU.SetPVShards(1))
	// is where the contention shows.
	PVAcquires  int64
	PVContended int64

	// Allocator-lock traffic during the run (phys.alloc.* counters): how
	// often an allocation-path lock — magazine or queue shard — was
	// taken, and how often the taker had to wait. With per-CPU caches
	// (AllocCaches > 0) each goroutine mostly takes only its own
	// magazine's lock; with the single global pool (AllocCaches = 0)
	// every fault contends for the same queue-shard locks.
	AllocCaches    int
	AllocAcquires  int64
	AllocContended int64
}

// PVContentionRatio returns the contended share of pv bucket lock
// acquisitions (0 when the run took none).
func (p ScalingPoint) PVContentionRatio() float64 {
	if p.PVAcquires == 0 {
		return 0
	}
	return float64(p.PVContended) / float64(p.PVAcquires)
}

// AllocContentionRatio returns the contended share of allocation-path
// lock acquisitions (0 when the run took none).
func (p ScalingPoint) AllocContentionRatio() float64 {
	if p.AllocAcquires == 0 {
		return 0
	}
	return float64(p.AllocContended) / float64(p.AllocAcquires)
}

// scalingFaultsPerWorker bounds each worker's share of work so the
// experiment finishes quickly even at one goroutine.
const scalingFaultsPerWorker = 3000

// scalingRegionPages is each worker's mapping size; workers munmap and
// remap the region once it is fully touched, so every Access is a real
// fault, never a pmap fast-path hit.
const scalingRegionPages = 64

// scalingDefaultCaches is the magazine count Scaling runs with: sized
// for the experiment's largest worker count, so each of the up-to-8
// faulting goroutines usually hashes to its own magazine.
const scalingDefaultCaches = 8

// Scaling runs the fault-throughput experiment for each goroutine count
// on the given booter, with the per-CPU free-page caches on (the
// configuration the scaling story is about). Every run boots a fresh
// machine so clock and queue state never leak between points. Use
// ScalingAlloc to pick the allocator layout explicitly — in particular
// allocCaches=0 for the single-pool contrast.
func Scaling(name string, boot vmapi.Booter, workers []int) ([]ScalingPoint, error) {
	return ScalingAlloc(name, boot, workers, scalingDefaultCaches)
}

// ScalingAlloc is Scaling with an explicit allocator layout: allocCaches
// per-CPU free-page magazines, 0 meaning the single global pool.
func ScalingAlloc(name string, boot vmapi.Booter, workers []int, allocCaches int) ([]ScalingPoint, error) {
	points := make([]ScalingPoint, 0, len(workers))
	for _, n := range workers {
		pt, err := scalingRun(name, boot, n, allocCaches)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

func scalingRun(name string, boot vmapi.Booter, workers, allocCaches int) (ScalingPoint, error) {
	pt, _, err := scalingRunOn(profile, name, boot, workers, allocCaches)
	return pt, err
}

// scalingRunOn is the profile-explicit run body (the matrix's alloc cell
// passes its own profile; everything else uses the global). It also
// reports the post-shutdown Busy-page sweep for matrix cells.
func scalingRunOn(prof, name string, boot vmapi.Booter, workers, allocCaches int) (ScalingPoint, int, error) {
	// RAM sized so all workers fault without ever waking the pagedaemon:
	// the experiment isolates fault-path locking, not reclaim.
	mach := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:    workers*scalingRegionPages*4 + 4096,
		SwapPages:   16384,
		FSPages:     1024,
		MaxVnodes:   16,
		Profile:     prof,
		AllocCaches: allocCaches,
	})
	sys := boot(mach)

	procs := make([]vmapi.Process, workers)
	for i := range procs {
		p, err := sys.NewProcess(fmt.Sprintf("scale%d", i))
		if err != nil {
			return ScalingPoint{}, 0, err
		}
		procs[i] = p
	}

	var (
		wg       sync.WaitGroup
		firstErr error
		errOnce  sync.Once
	)
	//uvm:wallclock real elapsed time is the reported host-throughput metric
	start := time.Now()
	for i := range procs {
		wg.Add(1)
		go func(p vmapi.Process) {
			defer wg.Done()
			const length = scalingRegionPages * param.PageSize
			faults := 0
			for faults < scalingFaultsPerWorker {
				va, err := p.Mmap(0, length, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				for pg := 0; pg < scalingRegionPages && faults < scalingFaultsPerWorker; pg++ {
					if err := p.Access(va+param.VAddr(pg)*param.PageSize, true); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					faults++
				}
				if err := p.Munmap(va, length); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(procs[i])
	}
	wg.Wait()
	//uvm:wallclock real elapsed time is the reported host-throughput metric
	wall := time.Since(start)
	if firstErr != nil {
		sys.Shutdown()
		return ScalingPoint{}, len(mach.Mem.BusyPages()), firstErr
	}
	for _, p := range procs {
		p.Exit()
	}
	sys.Shutdown()

	total := int64(workers) * scalingFaultsPerWorker
	leaked := len(mach.Mem.BusyPages())
	return ScalingPoint{
		System:         name,
		Goroutines:     workers,
		Faults:         total,
		Wall:           wall,
		PerSecond:      float64(total) / wall.Seconds(),
		PVAcquires:     mach.Stats.Get(sim.CtrPVAcquires),
		PVContended:    mach.Stats.Get(sim.CtrPVContended),
		AllocCaches:    allocCaches,
		AllocAcquires:  mach.Stats.Get(sim.CtrAllocAcquires),
		AllocContended: mach.Stats.Get(sim.CtrAllocContended),
	}, leaked, nil
}

// ReportScaling renders the experiment for both systems at 1/2/4/8
// goroutines.
func ReportScaling(w io.Writer, boots []NamedBooter) error {
	header(w, "Scaling: parallel fault throughput (wall clock)")
	fmt.Fprintf(w, "GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	workers := []int{1, 2, 4, 8}
	for _, nb := range boots {
		points, err := Scaling(nb.Name, nb.Boot, workers)
		if err != nil {
			return err
		}
		base := points[0].PerSecond
		for _, pt := range points {
			fmt.Fprintf(w, "%-6s %2d goroutines: %9.0f faults/s  (%.2fx)  pv-contention %5.2f%% (%d/%d)  alloc-contention %5.2f%% (%d/%d, %d caches)\n",
				pt.System, pt.Goroutines, pt.PerSecond, pt.PerSecond/base,
				100*pt.PVContentionRatio(), pt.PVContended, pt.PVAcquires,
				100*pt.AllocContentionRatio(), pt.AllocContended, pt.AllocAcquires, pt.AllocCaches)
		}
	}
	return nil
}

// NamedBooter pairs a booter with its report name.
type NamedBooter struct {
	Name string
	Boot vmapi.Booter
}
