package experiments

import (
	"fmt"
	"io"
	"time"

	"uvm/internal/param"
	"uvm/internal/vmapi"
)

// T3Row is one row of Table 3: single-page map-fault-unmap latency.
type T3Row struct {
	Case               string
	BSD, UVM           time.Duration
	PaperBSD, PaperUVM time.Duration
}

type t3case struct {
	name  string
	write bool
	flags vmapi.MapFlags
	pBSD  time.Duration
	pUVM  time.Duration
}

// Table3 reproduces Table 3: the time to memory map one page, fault it
// in, and unmap it, for six mapping/fault combinations (averaged over
// iters cycles against a warm file object).
func Table3(iters int) ([]T3Row, error) {
	cases := []t3case{
		{"read/shared file", false, vmapi.MapShared, 24 * time.Microsecond, 21 * time.Microsecond},
		{"read/private file", false, vmapi.MapPrivate, 48 * time.Microsecond, 22 * time.Microsecond},
		{"write/shared file", true, vmapi.MapShared, 113 * time.Microsecond, 100 * time.Microsecond},
		{"write/private file", true, vmapi.MapPrivate, 80 * time.Microsecond, 67 * time.Microsecond},
		{"read/zero fill", false, vmapi.MapAnon | vmapi.MapPrivate, 60 * time.Microsecond, 49 * time.Microsecond},
		{"write/zero fill", true, vmapi.MapAnon | vmapi.MapPrivate, 60 * time.Microsecond, 48 * time.Microsecond},
	}
	var rows []T3Row
	for _, c := range cases {
		bsd, uv := pair(stdConfig())
		bt, err := mapFaultUnmap(bsd, c, iters)
		if err != nil {
			return nil, err
		}
		ut, err := mapFaultUnmap(uv, c, iters)
		if err != nil {
			return nil, err
		}
		rows = append(rows, T3Row{c.name, bt, ut, c.pBSD, c.pUVM})
	}
	return rows, nil
}

func mapFaultUnmap(sys vmapi.System, c t3case, iters int) (time.Duration, error) {
	mach := sys.Machine()
	p, err := sys.NewProcess("bench")
	if err != nil {
		return 0, err
	}
	var vn *vfsVnode
	if c.flags&vmapi.MapAnon == 0 {
		if err := mach.FS.Create("/bench.dat", param.PageSize, func(_ int, b []byte) { b[0] = 1 }); err != nil {
			return 0, err
		}
		v, err := mach.FS.Open("/bench.dat")
		if err != nil {
			return 0, err
		}
		vn = v
		// Warm the file page so the steady-state fault is memory-speed,
		// as in the paper's averaged measurement.
		va, err := p.Mmap(0, param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
		if err != nil {
			return 0, err
		}
		if err := p.Access(va, false); err != nil {
			return 0, err
		}
		if err := p.Munmap(va, param.PageSize); err != nil {
			return 0, err
		}
	}

	prot := param.ProtRead
	if c.write {
		prot = param.ProtRW
	}
	t0 := mach.Clock.Now()
	for i := 0; i < iters; i++ {
		va, err := p.Mmap(0, param.PageSize, prot, c.flags, vn, 0)
		if err != nil {
			return 0, err
		}
		if err := p.Access(va, c.write); err != nil {
			return 0, err
		}
		if err := p.Munmap(va, param.PageSize); err != nil {
			return 0, err
		}
	}
	total := mach.Clock.Since(t0)
	p.Exit()
	if vn != nil {
		vn.Unref()
	}
	return total / time.Duration(iters), nil
}

// vfsVnode aliases the vnode type to keep the signature readable.
type vfsVnode = vnodeAlias

// ReportTable3 renders the table.
func ReportTable3(w io.Writer, iters int) error {
	rows, err := Table3(iters)
	if err != nil {
		return err
	}
	header(w, "Table 3: single page map-fault-unmap time")
	fmt.Fprintf(w, "%-22s %12s %12s   %s\n", "Fault/mapping", "BSD VM", "UVM", "(paper µs: BSD/UVM)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %12s %12s   (%d/%d)\n",
			r.Case, r.BSD.Round(10*time.Nanosecond), r.UVM.Round(10*time.Nanosecond),
			r.PaperBSD.Microseconds(), r.PaperUVM.Microseconds())
	}
	return nil
}
