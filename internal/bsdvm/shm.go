package bsdvm

import (
	"uvm/internal/param"
	"uvm/internal/vmapi"
)

// System V shared memory under BSD VM: a stand-alone anonymous vm_object
// mapped shared by each attachment.

type shmSegment struct {
	sys    *System
	obj    *object
	npages int
}

// NewShmSegment implements vmapi.System.
func (s *System) NewShmSegment(npages int) (vmapi.ShmSegment, error) {
	if npages <= 0 {
		return nil, vmapi.ErrInvalid
	}
	s.big.Lock()
	defer s.big.Unlock()
	return &shmSegment{sys: s, obj: s.newObject(npages, true), npages: npages}, nil
}

// Pages implements vmapi.ShmSegment.
func (seg *shmSegment) Pages() int { return seg.npages }

// Attach implements vmapi.ShmSegment.
func (seg *shmSegment) Attach(pi vmapi.Process, prot param.Prot) (param.VAddr, error) {
	p, ok := pi.(*process)
	if !ok || p.sys != seg.sys {
		return 0, vmapi.ErrInvalid
	}
	if p.exited {
		return 0, vmapi.ErrExited
	}
	s := seg.sys
	s.big.Lock()
	defer s.big.Unlock()
	if seg.obj == nil {
		return 0, vmapi.ErrInvalid
	}
	m := p.m
	m.lock()
	defer m.unlock()
	length := param.VSize(seg.npages) * param.PageSize
	va, err := m.findSpace(param.MmapHintBase, length)
	if err != nil {
		return 0, err
	}
	e := s.allocEntry(m)
	e.start, e.end = va, va+param.VAddr(length)
	e.obj = seg.obj
	seg.obj.refs++
	e.prot = param.ProtRW // two-step: default first...
	e.maxProt = param.ProtRWX
	e.inherit = param.InheritShare
	m.insert(e)
	s.mach.Stats.Inc("bsdvm.shm.attach")
	if prot != param.ProtRW {
		// ...then the second pass for non-default protections.
		m.unlock()
		err := m.protect(va, va+param.VAddr(length), prot)
		m.lock()
		if err != nil {
			return 0, err
		}
	}
	return va, nil
}

// Release implements vmapi.ShmSegment.
func (seg *shmSegment) Release() {
	if seg.obj == nil {
		return
	}
	s := seg.sys
	s.big.Lock()
	defer s.big.Unlock()
	s.deallocate(seg.obj)
	seg.obj = nil
}
