package bsdvm

import (
	"fmt"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/vfs"
)

func errf(format string, args ...any) error { return fmt.Errorf("bsdvm: "+format, args...) }

// object is a vm_object: a stand-alone memory object under VM-system
// control, holding resident pages and — for copy-on-write — a link to the
// object it shadows.
type object struct {
	id   int
	refs int

	sizePg int
	pages  map[int]*phys.Page // page index within object -> resident page

	// Shadow chain: this object's page i corresponds to shadow's page
	// i + shadowOff.
	shadow    *object
	shadowOff int

	pager *vmPager
	vnode *vfs.Vnode
	anon  bool // anonymous (zero-fill or shadow) object

	// canPersist marks objects worth keeping in the VM object cache when
	// unreferenced (vnode-backed objects).
	canPersist bool
	cached     bool
	cacheSeq   int64
}

func (o *object) String() string {
	kind := "anon"
	if o.vnode != nil {
		kind = "vnode:" + o.vnode.Name()
	}
	return fmt.Sprintf("obj%d(%s refs=%d pages=%d shadow=%v)",
		o.id, kind, o.refs, len(o.pages), o.shadow != nil)
}

// newObject allocates a vm_object. Every allocation is charged; this is
// one of the structures UVM eliminates for file mappings.
func (s *System) newObject(sizePg int, anon bool) *object {
	s.mach.Clock.Advance(s.mach.Costs.ObjectAlloc)
	s.mach.Stats.Inc("bsdvm.object.alloc")
	s.mach.Stats.Inc("bsdvm.object.live")
	s.nextObjID++
	return &object{
		id:     s.nextObjID,
		refs:   1,
		sizePg: sizePg,
		pages:  make(map[int]*phys.Page),
		anon:   anon,
	}
}

// vnodeObject finds or creates the memory object for a file. BSD VM
// allocates the object, a vm_pager, a vn_pager private structure, and a
// pager hash table entry — all separate from the vnode (§6, Figure 4).
func (s *System) vnodeObject(vn *vfs.Vnode) *object {
	// The lookup goes through the pager hash table.
	s.mach.Clock.Advance(s.mach.Costs.HashLookup)
	if o, ok := vn.VMObj.(*object); ok && o != nil {
		if o.cached {
			s.cache.remove(s, o)
			o.refs = 1
		} else {
			o.refs++
		}
		return o
	}
	o := s.newObject(vn.NumPages(), false)
	o.vnode = vn
	o.canPersist = true
	vn.Ref() // the object holds a reference on its vnode
	vn.VMObj = o
	o.pager = s.newVnodePager(vn)
	s.hashInsert(o.pager, o)
	return o
}

// shadowEntry gives e its own shadow object in front of its current
// backing object (vm_object_shadow), clearing needs-copy. BSD VM performs
// this on the first fault of any kind — even a read fault, where it is
// unnecessary (the Table 3 read/private anomaly).
func (s *System) shadowEntry(e *entry) {
	sh := s.newObject(e.pages(), true)
	sh.shadow = e.obj // entry's reference moves to the shadow
	sh.shadowOff = param.OffToPage(e.off)
	e.obj = sh
	e.off = 0
	e.needsCopy = false
	s.mach.Stats.Inc("bsdvm.shadow.alloc")
}

// deallocate drops one reference; at zero the object is cached (persisting
// vnode objects) or terminated. Dropping a shadow reference is one of the
// collapse trigger points (§5.3).
func (s *System) deallocate(o *object) {
	if o.refs <= 0 {
		panic("bsdvm: object refcount underflow: " + o.String())
	}
	o.refs--
	if o.refs > 0 {
		// A dropped reference may make a chain collapsible.
		if o.shadow != nil {
			s.collapse(o)
		}
		return
	}
	if o.canPersist && !s.cfg.DisableObjCache {
		// Dirty pages of the (shared) file mapping are pushed through the
		// buffer cache before the object goes inactive.
		s.flushDirty(o)
		s.cache.enter(s, o)
		return
	}
	s.terminate(o)
}

// terminate frees the object: all resident pages, swap space, pager
// structures, the vnode reference, and the shadow reference.
func (s *System) terminate(o *object) {
	// Flush modified file pages back before the pages die.
	s.flushDirty(o)
	//uvm:maporder-ok frees interchangeable frames; no cost depends on free order
	for idx, pg := range o.pages {
		s.freeObjectPage(o, idx, pg)
	}
	if o.pager != nil {
		s.destroyPager(o.pager)
		o.pager = nil
	}
	if o.vnode != nil {
		o.vnode.VMObj = nil
		o.vnode.Unref()
		o.vnode = nil
	}
	s.mach.Clock.Advance(s.mach.Costs.ObjectFree)
	s.mach.Stats.Add("bsdvm.object.live", -1)
	if o.shadow != nil {
		sh := o.shadow
		o.shadow = nil
		s.deallocate(sh)
	}
}

// flushDirty pushes an object's modified file pages to the buffer cache
// (asynchronous write-back: the caller pays the copy, not the disk).
func (s *System) flushDirty(o *object) {
	if o.vnode == nil || o.anon {
		return
	}
	//uvm:maporder-ok deferred writes charge fixed per-page time and never move the disk head
	for idx, pg := range o.pages {
		if pg.Dirty.Load() {
			_ = o.vnode.WritePageAsync(idx, pg.Data)
			pg.Dirty.Store(false)
		}
	}
}

// freeObjectPage removes one resident page from o and frees the frame.
func (s *System) freeObjectPage(o *object, idx int, pg *phys.Page) {
	s.mach.MMU.PageProtect(pg, param.ProtNone)
	delete(o.pages, idx)
	s.mach.Mem.Dequeue(pg)
	if pg.WireCount.Load() > 0 {
		pg.WireCount.Store(0) // teardown of wired placeholder pages
	}
	s.mach.Mem.Free(pg)
}

// hasSwap reports whether the object has assigned swap for page idx.
func (o *object) hasSwap(idx int) bool {
	return o.pager != nil && o.pager.swp != nil && o.pager.swp.hasSlot(idx)
}

// contributes reports whether o holds any page or swap data in the window
// [off, off+n) — used by the collapse bypass test.
func (o *object) contributes(off, n int) bool {
	//uvm:maporder-ok boolean any-match; order-independent
	for idx := range o.pages {
		if idx >= off && idx < off+n {
			return true
		}
	}
	if o.pager != nil && o.pager.swp != nil {
		//uvm:maporder-ok boolean any-match; order-independent
		for idx := range o.pager.swp.slots {
			if idx >= off && idx < off+n {
				return true
			}
		}
	}
	return false
}

// collapse attempts to shorten o's shadow chain (vm_object_collapse). Two
// moves exist: merging a singly-referenced shadow into o, and bypassing a
// shadow that contributes nothing to o's window. The scan itself costs
// time — work BSD VM performs on every copy fault, reference drop and
// first pageout, and which UVM never needs (§5.3).
func (s *System) collapse(o *object) {
	if s.cfg.DisableCollapse {
		return
	}
	for {
		s.mach.Clock.Advance(s.mach.Costs.CollapseScan)
		s.ctrCollapseScan.Inc()

		sh := o.shadow
		if sh == nil || !sh.anon || sh.pager != nil && sh.pager.vn != nil {
			return
		}
		if sh.refs == 1 {
			// Merge: pull sh's pages and swap up into o where o has no
			// data of its own; anything o already covers is redundant and
			// dies here.
			//uvm:maporder-ok each page moves or dies independently at its own index; order-independent
			for idx, pg := range sh.pages {
				top := idx - o.shadowOff
				if top >= 0 && top < o.sizePg && o.pages[top] == nil && !o.hasSwap(top) {
					delete(sh.pages, idx)
					pg.SetOwner(o, param.PageToOff(top))
					o.pages[top] = pg
				} else {
					s.freeObjectPage(sh, idx, pg)
					s.ctrCollapseRedund.Inc()
				}
			}
			if sh.pager != nil && sh.pager.swp != nil {
				//uvm:maporder-ok each slot adopts into a fixed destination index; order-independent
				for idx, slot := range sh.pager.swp.slots {
					top := idx - o.shadowOff
					if top >= 0 && top < o.sizePg && o.pages[top] == nil && !o.hasSwap(top) {
						s.ensureSwapPager(o)
						o.pager.swp.adopt(top, slot, sh.pager.swp)
						delete(sh.pager.swp.slots, idx)
					}
					// Slots left behind are freed by destroyPager below.
				}
			}
			if sh.pager != nil {
				s.destroyPager(sh.pager)
				sh.pager = nil
			}
			o.shadow = sh.shadow // inherit sh's reference on its shadow
			o.shadowOff += sh.shadowOff
			sh.shadow = nil
			s.mach.Clock.Advance(s.mach.Costs.ObjectFree)
			s.ctrObjectLive.Add(-1)
			s.ctrCollapseMerged.Inc()
			continue
		}
		// Bypass: if sh holds nothing o's window needs, o can point
		// directly at sh's shadow.
		if sh.shadow != nil && !sh.contributes(o.shadowOff, o.sizePg) {
			sh.shadow.refs++
			newOff := o.shadowOff + sh.shadowOff
			o.shadow = sh.shadow
			o.shadowOff = newOff
			s.ctrCollapseBypassed.Inc()
			s.deallocate(sh)
			continue
		}
		return
	}
}

// chainStats walks e's object chain and reports its shape: the number of
// objects, total resident pages, and how many of those pages are
// reachable through the entry (a page is shadowed — unreachable — if some
// object above it in the chain also has that index). The difference is
// the redundant memory the paper's swap-leak discussion concerns.
func chainStats(e *entry) (objects, totalPages, reachablePages int) {
	seen := make(map[int]bool) // indexes (in top-object coordinates) already satisfied
	off := 0
	for o := e.obj; o != nil; o = o.shadow {
		objects++
		//uvm:maporder-ok counting with a seen-set; totals are order-independent
		for idx := range o.pages {
			top := idx - off
			totalPages++
			if top >= 0 && !seen[top] {
				seen[top] = true
				reachablePages++
			}
		}
		off += o.shadowOff
	}
	return
}
