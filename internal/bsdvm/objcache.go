package bsdvm

// objCache is BSD VM's private cache of unreferenced memory objects — the
// second caching layer (beside the vnode cache) that the paper's §4
// criticises. It is limited to cfg.ObjCacheLimit objects (one hundred in
// 4.4BSD); while an object sits in the cache it continues to hold a
// reference on its vnode, pinning the vnode active and preventing the
// vnode LRU from choosing it for recycling.
type objCache struct {
	limit int
	seq   int64
	objs  map[*object]struct{}
}

// enter places a newly unreferenced object in the cache, evicting the
// least recently cached object if the cache is full — "even if memory is
// available" (§4), which is the Figure 2 cliff.
func (c *objCache) enter(s *System, o *object) {
	if c.objs == nil {
		c.objs = make(map[*object]struct{})
	}
	c.seq++
	o.cached = true
	o.cacheSeq = c.seq
	c.objs[o] = struct{}{}
	s.mach.Stats.Max("bsdvm.objcache.peak", int64(len(c.objs)))
	for len(c.objs) > c.limit {
		victim := c.lru()
		c.remove(s, victim)
		s.ctrCacheEvictions.Inc()
		s.terminate(victim)
	}
}

// lru returns the least recently cached object.
func (c *objCache) lru() *object {
	var victim *object
	//uvm:maporder-ok strict minimum over unique cacheSeq values; order-independent
	for o := range c.objs {
		if victim == nil || o.cacheSeq < victim.cacheSeq {
			victim = o
		}
	}
	return victim
}

// remove takes an object out of the cache (on reuse or eviction).
func (c *objCache) remove(s *System, o *object) {
	delete(c.objs, o)
	o.cached = false
}

// size returns the number of cached objects.
func (c *objCache) size() int { return len(c.objs) }
