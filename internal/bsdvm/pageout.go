package bsdvm

import (
	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/vmapi"
)

// reclaim is the BSD VM pagedaemon: scan the inactive queue and free
// pages, writing each dirty page to backing store with its own I/O
// operation. No clustering, no slot reassignment — every dirty anonymous
// page goes to whatever fixed slot its object's swap block dictates
// (contrast with UVM's pagedaemon, §6 / Figure 5).
func (s *System) reclaim(target int) error {
	freed := 0
	for pass := 0; pass < 4 && freed < target; pass++ {
		if s.mach.Mem.InactivePages() < target*2 {
			s.mach.Mem.RefillInactive(target * 2)
		}
		s.mach.Mem.ScanInactive(target*4, func(pg *phys.Page) bool {
			if freed >= target {
				return false
			}
			o, ok := pg.Owner().(*object)
			if !ok {
				return true
			}
			if pg.Referenced.Load() {
				s.mach.Mem.Activate(pg)
				return true
			}
			// Pull the page out of every address space before touching it.
			s.mach.MMU.PageProtect(pg, param.ProtNone)
			if pg.Dirty.Load() {
				if err := s.pageout(o, pg); err != nil {
					// Could not clean (e.g. out of swap): put it back and
					// keep scanning.
					s.mach.Mem.Activate(pg)
					return true
				}
			}
			delete(o.pages, param.OffToPage(pg.Off()))
			s.mach.Mem.Dequeue(pg)
			s.mach.Mem.Free(pg)
			freed++
			return true
		})
	}
	if freed == 0 {
		// A fruitless scan is not a deadlock while free frames sit parked
		// in per-CPU allocation magazines (phys caches enabled): reap
		// them into the global pool so the retry can reach them.
		if s.mach.Mem.ReapCaches() == 0 {
			return vmapi.ErrDeadlock
		}
		return nil
	}
	s.mach.Stats.Add("bsdvm.pagedaemon.freed", int64(freed))
	return nil
}
