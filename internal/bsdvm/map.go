package bsdvm

import (
	"time"

	"uvm/internal/param"
	"uvm/internal/pmap"
	"uvm/internal/vmapi"
)

// entry is a vm_map_entry: one record of a mapping in a map.
type entry struct {
	prev, next *entry

	start, end param.VAddr
	obj        *object       // backing memory object (nil for placeholder entries)
	off        param.PageOff // offset of start within obj

	prot, maxProt param.Prot
	inherit       param.Inherit
	advice        param.Advice
	wired         int

	// cow marks a copy-on-write mapping; needsCopy defers the shadow
	// object allocation until the first fault (§5.1).
	cow, needsCopy bool

	// placeholder entries record kernel bookkeeping (i386 page-table
	// wirings) rather than user mappings; they never satisfy faults.
	placeholder bool
}

func (e *entry) pages() int { return int((e.end - e.start) >> param.PageShift) }

// pageIndex returns the object page index backing va within this entry.
func (e *entry) pageIndex(va param.VAddr) int {
	return param.OffToPage(e.off) + int((param.Trunc(va)-e.start)>>param.PageShift)
}

// vmMap is a vm_map: a sorted doubly-linked list of entries describing one
// address space (a process' or the kernel's).
type vmMap struct {
	sys    *System
	name   string
	kernel bool

	min, max param.VAddr
	// allocMax caps findSpace allocations; map entries beyond it (up to
	// max) are reserved for bookkeeping placeholders.
	allocMax param.VAddr
	head     *entry
	tail     *entry
	n        int

	pmap *pmap.Pmap

	lockedAt time.Duration // clock mark while the simulated map lock is held
}

func (s *System) newMap(name string, min, max param.VAddr, kernel bool) *vmMap {
	return &vmMap{
		sys:      s,
		name:     name,
		kernel:   kernel,
		min:      min,
		max:      max,
		allocMax: max,
		pmap:     s.mach.MMU.NewPmap(name),
	}
}

// lock and unlock charge the simulated map-lock cost and account the hold
// time (the metric the two-phase-unmap comparison uses).
func (m *vmMap) lock() {
	m.sys.mach.Clock.Advance(m.sys.mach.Costs.LockAcquire)
	m.lockedAt = m.sys.mach.Clock.Now()
}

func (m *vmMap) unlock() {
	held := m.sys.mach.Clock.Since(m.lockedAt)
	m.sys.mach.Stats.Add("bsdvm.map.lockheld_ns", int64(held))
	m.sys.mach.Stats.Max("bsdvm.map.lockheld_max_ns", int64(held))
}

// allocEntry allocates a map entry; kernel map entries come from a fixed
// pool whose exhaustion is fatal (§3.2).
func (s *System) allocEntry(m *vmMap) *entry {
	if m.kernel {
		if s.kentryUse >= s.cfg.KernelEntryPool {
			panic("bsdvm: kernel map entry pool exhausted — system panic")
		}
		s.kentryUse++
	}
	s.mach.Clock.Advance(s.mach.Costs.MapEntryAlloc)
	s.mach.Stats.Inc("bsdvm.mapentry.alloc")
	s.mach.Stats.Inc("bsdvm.mapentry.live")
	return &entry{inherit: param.InheritCopy, advice: param.AdviceNormal}
}

func (s *System) freeEntry(m *vmMap, e *entry) {
	if m.kernel {
		s.kentryUse--
	}
	s.mach.Clock.Advance(s.mach.Costs.MapEntryFree)
	s.mach.Stats.Add("bsdvm.mapentry.live", -1)
}

// insert links e into the sorted entry list. Caller holds the map lock.
func (m *vmMap) insert(e *entry) {
	var after *entry
	for cur := m.head; cur != nil; cur = cur.next {
		if cur.start >= e.end {
			break
		}
		if cur.end > e.start {
			panic("bsdvm: overlapping map entries: " + m.name)
		}
		after = cur
	}
	if after == nil {
		e.next = m.head
		e.prev = nil
		if m.head != nil {
			m.head.prev = e
		} else {
			m.tail = e
		}
		m.head = e
	} else {
		e.prev = after
		e.next = after.next
		after.next = e
		if e.next != nil {
			e.next.prev = e
		} else {
			m.tail = e
		}
	}
	m.n++
}

// unlink removes e from the list. Caller holds the map lock.
func (m *vmMap) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
	m.n--
}

// lookup finds the entry containing va, charging the per-entry scan cost
// the real list walk pays. Caller holds the map lock.
func (m *vmMap) lookup(va param.VAddr) *entry {
	for cur := m.head; cur != nil; cur = cur.next {
		m.sys.mach.Clock.Advance(m.sys.mach.Costs.MapLookupEntry)
		if va >= cur.start && va < cur.end {
			return cur
		}
		if cur.start > va {
			return nil
		}
	}
	return nil
}

// findSpace locates a free range of the given length, first-fit from hint
// (or the map floor). Caller holds the map lock.
func (m *vmMap) findSpace(hint param.VAddr, length param.VSize) (param.VAddr, error) {
	if length == 0 {
		return 0, vmapi.ErrInvalid
	}
	start := m.min
	if hint > start {
		start = param.Trunc(hint)
	}
	for cur := m.head; cur != nil; cur = cur.next {
		m.sys.mach.Clock.Advance(m.sys.mach.Costs.MapLookupEntry)
		if cur.end <= start {
			continue
		}
		if cur.start >= start && param.VSize(cur.start-start) >= length {
			return start, nil
		}
		if cur.end > start {
			start = cur.end
		}
	}
	if start+param.VAddr(length) > m.allocMax || start+param.VAddr(length) < start {
		return 0, vmapi.ErrNoSpace
	}
	return start, nil
}

// clipStart splits e so that it begins exactly at va, allocating a new
// entry for the head portion. Caller holds the map lock; va must lie
// strictly inside e.
func (m *vmMap) clipStart(e *entry, va param.VAddr) {
	if va <= e.start || va >= e.end {
		return
	}
	headE := m.sys.allocEntry(m)
	*headE = *e
	headE.prev, headE.next = nil, nil
	headE.end = va

	e.off += param.PageOff(va - e.start)
	e.start = va
	if e.obj != nil {
		// The split range now holds two references to the object.
		e.obj.refs++
	}

	// Link headE immediately before e.
	headE.prev = e.prev
	headE.next = e
	if e.prev != nil {
		e.prev.next = headE
	} else {
		m.head = headE
	}
	e.prev = headE
	m.n++
}

// clipEnd splits e so that it ends exactly at va, allocating a new entry
// for the tail portion. Caller holds the map lock.
func (m *vmMap) clipEnd(e *entry, va param.VAddr) {
	if va <= e.start || va >= e.end {
		return
	}
	tailE := m.sys.allocEntry(m)
	*tailE = *e
	tailE.prev, tailE.next = nil, nil
	tailE.start = va
	tailE.off = e.off + param.PageOff(va-e.start)

	e.end = va
	if e.obj != nil {
		e.obj.refs++
	}

	tailE.next = e.next
	tailE.prev = e
	if e.next != nil {
		e.next.prev = tailE
	} else {
		m.tail = tailE
	}
	e.next = tailE
	m.n++
}

// entriesIn collects the entries overlapping [start, end), clipping the
// boundary entries so the result covers exactly the requested range.
// Caller holds the map lock.
func (m *vmMap) entriesIn(start, end param.VAddr) []*entry {
	var out []*entry
	for cur := m.head; cur != nil; cur = cur.next {
		m.sys.mach.Clock.Advance(m.sys.mach.Costs.MapLookupEntry)
		if cur.end <= start {
			continue
		}
		if cur.start >= end {
			break
		}
		if cur.start < start {
			m.clipStart(cur, start)
		}
		if cur.end > end {
			m.clipEnd(cur, end)
		}
		out = append(out, cur)
	}
	return out
}

// unmapRange is BSD VM's single-phase unmap: with the map locked, entries
// are unlinked, their pmap translations removed, AND their object
// references dropped — including any pageout I/O object teardown triggers.
// The paper's §3.1 point is precisely that this last step does not need
// the lock but holds it anyway. Caller holds the map lock.
func (m *vmMap) unmapRange(start, end param.VAddr) {
	removed := m.entriesIn(start, end)
	for _, e := range removed {
		m.unlink(e)
		m.pmap.Remove(e.start, e.end)
		if e.obj != nil {
			// Reference dropped under the map lock (single phase).
			m.sys.deallocate(e.obj)
		}
		m.sys.freeEntry(m, e)
	}
}

// protect is the second step of BSD VM's two-step mapping, and the
// implementation of mprotect: relock, re-find, clip, modify.
func (m *vmMap) protect(start, end param.VAddr, prot param.Prot) error {
	m.lock()
	defer m.unlock()
	entries := m.entriesIn(start, end)
	if len(entries) == 0 {
		return vmapi.ErrFault
	}
	for _, e := range entries {
		if !e.maxProt.Allows(prot) {
			return vmapi.ErrInvalid
		}
		e.prot = prot
		m.pmap.Protect(e.start, e.end, prot)
	}
	return nil
}

// checkIntegrity verifies the sorted, non-overlapping, in-bounds invariant
// (tests call this after every mutation sequence).
func (m *vmMap) checkIntegrity() error {
	count := 0
	var prev *entry
	for cur := m.head; cur != nil; cur = cur.next {
		count++
		if cur.start >= cur.end {
			return errf("entry %x-%x empty or inverted", cur.start, cur.end)
		}
		if cur.start < m.min || cur.end > m.max {
			return errf("entry %x-%x outside map %x-%x", cur.start, cur.end, m.min, m.max)
		}
		if prev != nil && prev.end > cur.start {
			return errf("entries overlap: %x-%x then %x-%x", prev.start, prev.end, cur.start, cur.end)
		}
		if cur.prev != prev {
			return errf("broken prev link at %x", cur.start)
		}
		prev = cur
	}
	if m.tail != prev {
		return errf("tail mismatch")
	}
	if count != m.n {
		return errf("entry count %d != n %d", count, m.n)
	}
	return nil
}
