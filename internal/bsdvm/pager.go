package bsdvm

import (
	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/vfs"
	"uvm/internal/vmapi"
)

// swapBlockPages is the fixed clustering of the BSD VM swap pager: swap
// is allocated in blocks of contiguous slots covering aligned groups of
// object pages (§5.3: "pages are clustered together into swap blocks...
// each allocated swap block contains a pointer to a location on backing
// store"). A page's slot within its block is fixed once the block exists —
// BSD VM cannot reassign pageout locations, which is why its pageout
// cannot cluster scattered dirty pages (§6).
const swapBlockPages = 16

// vmPager is the separately allocated pager structure of BSD VM, pointing
// at pager operations and a pager-private structure (vn_pager or the swap
// pager state). UVM eliminates this allocation entirely.
type vmPager struct {
	vn  *vfs.Vnode // vnode pager private data
	swp *swapPager // swap pager private data
}

// swapPager tracks an anonymous object's swap blocks. Ownership is
// explicit: a pager frees the blocks it allocated itself minus any
// slots ceded to a collapse adopter, plus the slots it adopted from
// collapsed shadows (those are owned one slot at a time — the rest of
// the donor's block stayed with the donor).
type swapPager struct {
	sys     *System
	blocks  map[int]int64  // block index -> first slot of blocks this pager allocated
	slots   map[int]int64  // page index -> assigned slot
	adopted map[int64]bool // slots taken over from collapsed shadows, owned individually
	ceded   map[int64]bool // slots inside our blocks whose ownership moved to an adopter
}

// newVnodePager allocates the vm_pager + vn_pager pair for a file.
func (s *System) newVnodePager(vn *vfs.Vnode) *vmPager {
	s.mach.Clock.Advance(s.mach.Costs.PagerAlloc)
	s.mach.Stats.Inc("bsdvm.pager.alloc")
	return &vmPager{vn: vn}
}

// ensureSwapPager lazily creates an anonymous object's swap pager on first
// pageout.
func (s *System) ensureSwapPager(o *object) {
	if o.pager != nil {
		return
	}
	s.mach.Clock.Advance(s.mach.Costs.PagerAlloc)
	s.mach.Stats.Inc("bsdvm.pager.alloc")
	o.pager = &vmPager{swp: &swapPager{
		sys:     s,
		blocks:  make(map[int]int64),
		slots:   make(map[int]int64),
		adopted: make(map[int64]bool),
		ceded:   make(map[int64]bool),
	}}
	s.hashInsert(o.pager, o)
}

// hashInsert and hashLookup model the pager hash table that maps pager
// structures to the objects they back; every probe is charged.
func (s *System) hashInsert(p *vmPager, o *object) {
	s.mach.Clock.Advance(s.mach.Costs.HashLookup)
	s.pagerHash[p] = o
}

func (s *System) hashRemove(p *vmPager) {
	s.mach.Clock.Advance(s.mach.Costs.HashLookup)
	delete(s.pagerHash, p)
}

// destroyPager releases pager structures and any swap space they hold:
// the pager's own blocks (minus ceded slots, which an adopter now owns)
// and its individually adopted slots.
func (s *System) destroyPager(p *vmPager) {
	if p.swp != nil {
		//uvm:maporder-ok swap frees clear bitmap bits; next-fit allocation sees only the free set
		for _, start := range p.swp.blocks {
			if len(p.swp.ceded) == 0 {
				s.mach.Swap.FreeRange(start, swapBlockPages)
				continue
			}
			for i := int64(0); i < swapBlockPages; i++ {
				if !p.swp.ceded[start+i] {
					s.mach.Swap.Free(start + i)
				}
			}
		}
		//uvm:maporder-ok swap frees clear bitmap bits; next-fit allocation sees only the free set
		for slot := range p.swp.adopted {
			s.mach.Swap.Free(slot)
		}
		p.swp.blocks = nil
		p.swp.slots = nil
		p.swp.adopted = nil
		p.swp.ceded = nil
	}
	s.hashRemove(p)
}

// hasSlot reports whether page idx has swap data.
func (sp *swapPager) hasSlot(idx int) bool {
	_, ok := sp.slots[idx]
	return ok
}

// slotFor returns page idx's swap slot, allocating the covering block on
// first use. The slot is fixed: idx always maps to the same position in
// its block.
func (sp *swapPager) slotFor(idx int) (int64, error) {
	if slot, ok := sp.slots[idx]; ok {
		return slot, nil
	}
	blk := idx / swapBlockPages
	start, ok := sp.blocks[blk]
	if !ok {
		var err error
		start, err = sp.sys.mach.Swap.AllocContig(swapBlockPages)
		if err != nil {
			return 0, err
		}
		sp.blocks[blk] = start
	}
	slot := start + int64(idx%swapBlockPages)
	sp.slots[idx] = slot
	return slot, nil
}

// adopt takes over one slot moved up from a collapsing shadow. The slot
// keeps its disk location; ownership moves with it, one slot at a time
// — the donor cedes exactly this slot (the rest of its block stays the
// donor's and dies with it), and the adopter will free it individually.
// Block-granular transfer is wrong twice over: the donor's destroy
// would free the whole block out from under the adopted slots, and the
// adopter cannot even name the donor's block start when the shadow
// offset is not block-aligned.
func (sp *swapPager) adopt(idx int, slot int64, donor *swapPager) {
	sp.slots[idx] = slot
	sp.adopted[slot] = true
	if donor.adopted[slot] {
		// The donor itself adopted this slot from a deeper shadow; the
		// individual ownership just moves up another level.
		delete(donor.adopted, slot)
	} else {
		donor.ceded[slot] = true
	}
}

// pagerHas reports whether o's pager holds data for page idx.
func (s *System) pagerHas(o *object, idx int) bool {
	if o.pager == nil {
		return false
	}
	if o.pager.vn != nil {
		return idx >= 0 && idx < o.pager.vn.NumPages()
	}
	if o.pager.swp != nil {
		return o.pager.swp.hasSlot(idx)
	}
	return false
}

// pagein brings page idx of o in from backing store — one page per I/O,
// the BSD VM way. In BSD VM the faulting code allocates the page and then
// asks the pager to fill it (the pager never allocates; contrast with
// UVM's pager-allocates API, §6).
func (s *System) pagein(o *object, idx int) (*phys.Page, error) {
	pg, err := s.allocPage(o, idx, false)
	if err != nil {
		return nil, err
	}
	pg.Busy.Store(true)
	if o.pager.vn != nil {
		err = o.pager.vn.ReadPage(idx, pg.Data)
	} else {
		slot := o.pager.swp.slots[idx]
		err = s.mach.Swap.ReadSlot(slot, pg.Data)
	}
	pg.Busy.Store(false)
	if err != nil {
		delete(o.pages, idx)
		s.mach.Mem.Free(pg)
		return nil, err
	}
	pg.Dirty.Store(o.anon) // anon data only lives on swap until written back again
	// The page is resident in o now, so it must live on the paging
	// queues regardless of what the fault maps: when the fault copies
	// this page up (COW) it activates only the copy, and a frame left
	// off-queue is invisible to the pagedaemon forever — enough churn
	// strands all of RAM that way and allocation deadlocks spuriously.
	s.mach.Mem.Activate(pg)
	s.mach.Stats.Inc(sim.CtrPageIns)
	return pg, nil
}

// pageout writes one dirty page to backing store — one page, one I/O
// (§1.1: "I/O operations in BSD VM are performed one page at a time").
func (s *System) pageout(o *object, pg *phys.Page) error {
	idx := param.OffToPage(pg.Off())
	pg.Busy.Store(true)
	defer func() { pg.Busy.Store(false) }()
	if o.vnode != nil && !o.anon {
		if err := o.vnode.WritePage(idx, pg.Data); err != nil {
			return err
		}
	} else {
		s.ensureSwapPager(o)
		slot, err := o.pager.swp.slotFor(idx)
		if err != nil {
			return err
		}
		if err := s.mach.Swap.WriteSlot(slot, pg.Data); err != nil {
			return err
		}
	}
	pg.Dirty.Store(false)
	s.mach.Stats.Inc(sim.CtrPageOuts)
	return nil
}

// allocPage allocates a frame for page idx of o, running the pagedaemon on
// memory shortage.
func (s *System) allocPage(o *object, idx int, zero bool) (*phys.Page, error) {
	for attempt := 0; ; attempt++ {
		pg, err := s.mach.Mem.Alloc(o, param.PageToOff(idx), zero)
		if err == nil {
			o.pages[idx] = pg
			return pg, nil
		}
		if attempt >= 3 {
			return nil, vmapi.ErrDeadlock
		}
		if rerr := s.reclaim(s.cfg.ReclaimBatch); rerr != nil {
			return nil, rerr
		}
	}
}
