package bsdvm

import (
	"errors"
	"fmt"
	"testing"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vfs"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// testMachine boots a small machine suitable for unit tests.
func testMachine(ramPages int) *vmapi.Machine {
	return vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:  ramPages,
		SwapPages: int64(ramPages) * 4,
		FSPages:   4096,
		MaxVnodes: 50,
	})
}

func bootTest(t *testing.T, ramPages int) (*System, *vmapi.Machine) {
	t.Helper()
	m := testMachine(ramPages)
	s := BootConfig(m, DefaultConfig())
	testutil.SweepOnCleanup(t, s)
	return s, m
}

func newProc(t *testing.T, s *System, name string) *process {
	t.Helper()
	p, err := s.NewProcess(name)
	if err != nil {
		t.Fatal(err)
	}
	return p.(*process)
}

func mkfile(t *testing.T, m *vmapi.Machine, name string, pages int, fill byte) *vfs.Vnode {
	t.Helper()
	err := m.FS.Create(name, pages*param.PageSize, func(idx int, buf []byte) {
		for i := range buf {
			buf[i] = fill + byte(idx)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	vn, err := m.FS.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	return vn
}

func checkMaps(t *testing.T, ps ...*process) {
	t.Helper()
	for _, p := range ps {
		if err := p.m.checkIntegrity(); err != nil {
			t.Fatalf("map integrity (%s): %v", p.name, err)
		}
	}
}

// --- basic mapping and access ---

func TestAnonZeroFill(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, param.PageSize)
	if err := p.ReadBytes(va+2*param.PageSize, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("zero-fill byte %d = %#x", i, b)
		}
	}
	// Write and read back.
	if err := p.WriteBytes(va, []byte("hello, vm")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9)
	if err := p.ReadBytes(va, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello, vm" {
		t.Fatalf("read back %q", got)
	}
	checkMaps(t, p)
}

func TestFileMappingReadsFileData(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/data", 3, 0x10)
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, 3*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for idx := 0; idx < 3; idx++ {
		if err := p.ReadBytes(va+param.VAddr(idx)*param.PageSize, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0x10+byte(idx) {
			t.Fatalf("page %d = %#x", idx, buf[0])
		}
	}
	vn.Unref()
}

func TestFileMappingAtOffset(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/off", 4, 0x20)
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, 2*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 2*param.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := p.ReadBytes(va, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x22 {
		t.Fatalf("offset mapping read %#x, want 0x22", buf[0])
	}
	vn.Unref()
}

func TestProtectionFault(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/ro", 1, 1)
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Access(va, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Access(va, true); !errors.Is(err, vmapi.ErrFault) {
		t.Fatalf("write to read-only mapping: %v", err)
	}
	vn.Unref()
}

func TestUnmappedAccessFaults(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	if err := p.Access(0x7000_0000, false); !errors.Is(err, vmapi.ErrFault) {
		t.Fatalf("unmapped access: %v", err)
	}
}

func TestMunmap(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := p.TouchRange(va, 4*param.PageSize, true); err != nil {
		t.Fatal(err)
	}
	// Unmap the middle two pages: the entry is clipped.
	before := p.MapEntryCount()
	if err := p.Munmap(va+param.PageSize, 2*param.PageSize); err != nil {
		t.Fatal(err)
	}
	if p.MapEntryCount() != before+1 { // one entry became two
		t.Fatalf("entries after hole punch = %d, want %d", p.MapEntryCount(), before+1)
	}
	if err := p.Access(va+param.PageSize, false); !errors.Is(err, vmapi.ErrFault) {
		t.Fatalf("access to unmapped hole: %v", err)
	}
	if err := p.Access(va, false); err != nil {
		t.Fatalf("surviving head page: %v", err)
	}
	if err := p.Access(va+3*param.PageSize, false); err != nil {
		t.Fatalf("surviving tail page: %v", err)
	}
	checkMaps(t, p)
}

func TestMmapFixedReplaces(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0x4000_0000, 2*param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate|vmapi.MapFixed, nil, 0)
	if va != 0x4000_0000 {
		t.Fatalf("fixed mapping at %#x", va)
	}
	p.WriteBytes(va, []byte{0xaa})
	// Map over it.
	if _, err := p.Mmap(va, 2*param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate|vmapi.MapFixed, nil, 0); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	p.ReadBytes(va, b)
	if b[0] != 0 {
		t.Fatalf("replacement mapping sees old data %#x", b[0])
	}
	checkMaps(t, p)
}

func TestMmapValidation(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/v", 1, 1)
	defer vn.Unref()
	p := newProc(t, s, "p")
	cases := []struct {
		flags vmapi.MapFlags
		vn    *vfs.Vnode
		len   param.VSize
	}{
		{vmapi.MapAnon | vmapi.MapPrivate, vn, param.PageSize}, // anon with vnode
		{vmapi.MapPrivate, nil, param.PageSize},                // file without vnode
		{vmapi.MapPrivate | vmapi.MapShared, vn, param.PageSize},
		{vmapi.MapAnon | vmapi.MapPrivate, nil, 0}, // zero length
	}
	for i, c := range cases {
		if _, err := p.Mmap(0, c.len, param.ProtRW, c.flags, c.vn, 0); !errors.Is(err, vmapi.ErrInvalid) {
			t.Errorf("case %d: err = %v, want ErrInvalid", i, err)
		}
	}
}

// --- two-step mapping behaviour ---

func TestTwoStepMappingCosts(t *testing.T) {
	// A read-only mapping must cost measurably more than a read-write one
	// under BSD VM, because it takes the extra protect pass.
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/2step", 1, 1)
	defer vn.Unref()
	p := newProc(t, s, "p")

	// Warm the vm_object/pager allocation so both measurements take the
	// established-object path.
	if _, err := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0); err != nil {
		t.Fatal(err)
	}

	t0 := m.Clock.Now()
	if _, err := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0); err != nil {
		t.Fatal(err)
	}
	rwCost := m.Clock.Since(t0)

	t1 := m.Clock.Now()
	if _, err := p.Mmap(0, param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0); err != nil {
		t.Fatal(err)
	}
	roCost := m.Clock.Since(t1)
	if roCost <= rwCost {
		t.Fatalf("read-only mapping (%v) should cost more than default read-write (%v): two-step", roCost, rwCost)
	}
}

// --- copy-on-write and shadow chains ---

func TestPrivateFileCOW(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/cow", 3, 0x40)
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, 3*param.PageSize, param.ProtRW, vmapi.MapPrivate, vn, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Write the middle page.
	if err := p.WriteBytes(va+param.PageSize, []byte{0xff}); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 2)
	p.ReadBytes(va+param.PageSize, b)
	if b[0] != 0xff || b[1] != 0x41 {
		t.Fatalf("private write not visible correctly: %#x %#x", b[0], b[1])
	}
	// The file itself is untouched.
	fb := make([]byte, param.PageSize)
	if err := vn.ReadPage(1, fb); err != nil {
		t.Fatal(err)
	}
	if fb[0] != 0x41 {
		t.Fatalf("private write leaked to the file: %#x", fb[0])
	}
	// A shadow object was allocated.
	if m.Stats.Get("bsdvm.shadow.alloc") == 0 {
		t.Fatal("no shadow object allocated for COW write")
	}
	vn.Unref()
}

func TestReadFaultOnPrivateAllocatesShadow(t *testing.T) {
	// The Table 3 anomaly: BSD VM allocates a shadow object even on a
	// read fault of a private mapping.
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/anomaly", 1, 1)
	defer vn.Unref()
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapPrivate, vn, 0)
	before := m.Stats.Get("bsdvm.shadow.alloc")
	if err := p.Access(va, false); err != nil { // read only
		t.Fatal(err)
	}
	if m.Stats.Get("bsdvm.shadow.alloc") != before+1 {
		t.Fatal("read fault on private mapping should (wastefully) allocate a shadow object")
	}
}

func TestForkCOWIsolation(t *testing.T) {
	s, _ := bootTest(t, 512)
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	parent.WriteBytes(va, []byte("parent data"))

	childI, err := parent.Fork("child")
	if err != nil {
		t.Fatal(err)
	}
	child := childI.(*process)

	// Child sees the parent's data.
	b := make([]byte, 11)
	if err := child.ReadBytes(va, b); err != nil {
		t.Fatal(err)
	}
	if string(b) != "parent data" {
		t.Fatalf("child read %q", b)
	}
	// Child writes; parent must not see it.
	child.WriteBytes(va, []byte("child data!"))
	parent.ReadBytes(va, b)
	if string(b) != "parent data" {
		t.Fatalf("child write leaked to parent: %q", b)
	}
	// Parent writes; child keeps its copy.
	parent.WriteBytes(va, []byte("parent two!"))
	child.ReadBytes(va, b)
	if string(b) != "child data!" {
		t.Fatalf("parent write leaked to child: %q", b)
	}
	checkMaps(t, parent, child)
}

func TestForkShareInheritance(t *testing.T) {
	s, _ := bootTest(t, 256)
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := parent.Minherit(va, param.PageSize, param.InheritShare); err != nil {
		t.Fatal(err)
	}
	child, _ := parent.Fork("child")
	parent.WriteBytes(va, []byte{0x77})
	b := make([]byte, 1)
	child.ReadBytes(va, b)
	if b[0] != 0x77 {
		t.Fatalf("shared inheritance: child sees %#x", b[0])
	}
	child.WriteBytes(va, []byte{0x88})
	parent.ReadBytes(va, b)
	if b[0] != 0x88 {
		t.Fatalf("shared inheritance: parent sees %#x", b[0])
	}
}

func TestForkNoneInheritance(t *testing.T) {
	s, _ := bootTest(t, 256)
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	parent.Minherit(va, param.PageSize, param.InheritNone)
	child, _ := parent.Fork("child")
	if err := child.Access(va, false); !errors.Is(err, vmapi.ErrFault) {
		t.Fatalf("none-inherited range mapped in child: %v", err)
	}
}

func TestShadowChainGrowth(t *testing.T) {
	// Figure 3's third column: fork + write faults grow the chain.
	s, m := bootTest(t, 512)
	vn := mkfile(t, m, "/chain", 3, 0x30)
	defer vn.Unref()
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, 3*param.PageSize, param.ProtRW, vmapi.MapPrivate, vn, 0)

	// First write fault: shadow 1.
	parent.WriteBytes(va+param.PageSize, []byte{1})
	parent.sys.big.Lock()
	e := parent.m.lookup(va)
	objs1, _, _ := chainStats(e)
	parent.sys.big.Unlock()
	if objs1 != 2 { // shadow1 -> file object
		t.Fatalf("after first write: %d chain objects, want 2", objs1)
	}

	childI, _ := parent.Fork("child")
	child := childI.(*process)
	// Parent writes middle again -> shadow 2 on the parent side.
	parent.WriteBytes(va+param.PageSize, []byte{2})
	// Child writes right page -> shadow 3 on the child side.
	child.WriteBytes(va+2*param.PageSize, []byte{3})

	parent.sys.big.Lock()
	pObjs, _, _ := chainStats(parent.m.lookup(va))
	cObjs, _, _ := chainStats(child.m.lookup(va))
	parent.sys.big.Unlock()
	// Collapse may shorten chains opportunistically, but both must still
	// be chains (>= 2 objects) and isolation must hold.
	if pObjs < 2 || cObjs < 2 {
		t.Fatalf("chains too short: parent=%d child=%d", pObjs, cObjs)
	}

	b := make([]byte, 1)
	parent.ReadBytes(va+param.PageSize, b)
	if b[0] != 2 {
		t.Fatalf("parent middle = %d", b[0])
	}
	child.ReadBytes(va+param.PageSize, b)
	if b[0] != 1 {
		t.Fatalf("child middle = %d, want pre-fork value 1", b[0])
	}
	child.ReadBytes(va+2*param.PageSize, b)
	if b[0] != 3 {
		t.Fatalf("child right = %d", b[0])
	}
	parent.ReadBytes(va+2*param.PageSize, b)
	if b[0] != 0x32 {
		t.Fatalf("parent right = %#x, want file data 0x32", b[0])
	}
}

func TestCollapseReclaimsRedundantPages(t *testing.T) {
	s, m := bootTest(t, 512)
	parent := newProc(t, s, "parent")
	const pages = 8
	va, _ := parent.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	parent.TouchRange(va, pages*param.PageSize, true)

	// Fork/exit churn with parent rewrites: chains form and become
	// collapsible when the child exits.
	for i := 0; i < 5; i++ {
		child, err := parent.Fork(fmt.Sprintf("c%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := parent.TouchRange(va, pages*param.PageSize, true); err != nil {
			t.Fatal(err)
		}
		child.Exit()
	}
	if m.Stats.Get("bsdvm.collapse.merged") == 0 {
		t.Fatal("no chain collapse happened")
	}
	// With collapse running, the chain stays bounded.
	s.big.Lock()
	objs, total, reachable := chainStats(parent.m.lookup(va))
	s.big.Unlock()
	if objs > 3 {
		t.Fatalf("chain grew to %d objects despite collapse", objs)
	}
	if total-reachable > pages {
		t.Fatalf("too many redundant pages survive collapse: %d", total-reachable)
	}
	checkMaps(t, parent)
}

func TestSwapLeakWithoutCollapse(t *testing.T) {
	// §5.3: without collapse, chains retain inaccessible pages and swap
	// fills with redundant data — the swap memory leak deadlock.
	run := func(disableCollapse bool) (slotsInUse int, deadlocked bool) {
		m := testMachine(96) // small RAM forces pageout
		cfg := DefaultConfig()
		cfg.DisableCollapse = disableCollapse
		s := BootConfig(m, cfg)
		testutil.SweepOnCleanup(t, s)
		p, _ := s.NewProcess("leaker")
		const pages = 24
		va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
			return m.Swap.SlotsInUse(), true
		}
		for i := 0; i < 12; i++ {
			child, err := p.Fork(fmt.Sprintf("c%d", i))
			if err != nil {
				return m.Swap.SlotsInUse(), true
			}
			if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
				return m.Swap.SlotsInUse(), true
			}
			child.Exit()
		}
		return m.Swap.SlotsInUse(), false
	}
	leakSlots, leakDead := run(true)
	okSlots, okDead := run(false)
	if okDead {
		t.Fatal("collapse-enabled run deadlocked")
	}
	if !leakDead && leakSlots <= okSlots*2 {
		t.Fatalf("no leak visible: collapse-off swap=%d, collapse-on swap=%d", leakSlots, okSlots)
	}
}

// --- object cache ---

func TestObjectCacheKeepsPagesResident(t *testing.T) {
	s, m := bootTest(t, 512)
	vn := mkfile(t, m, "/cached", 4, 0x11)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	p.TouchRange(va, 4*param.PageSize, false)
	p.Munmap(va, 4*param.PageSize)
	vn.Unref()
	if s.ObjCacheSize() != 1 {
		t.Fatalf("object cache size = %d after unmap", s.ObjCacheSize())
	}

	// Remap: no disk reads needed, pages persisted.
	vn2, _ := m.FS.Open("/cached")
	reads := m.Stats.Get(sim.CtrDiskReads)
	va2, _ := p.Mmap(0, 4*param.PageSize, param.ProtRead, vmapi.MapShared, vn2, 0)
	if err := p.TouchRange(va2, 4*param.PageSize, false); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats.Get(sim.CtrDiskReads); got != reads {
		t.Fatalf("remap of cached object read the disk %d times", got-reads)
	}
	vn2.Unref()
}

func TestObjectCacheLimitEviction(t *testing.T) {
	// Beyond the cache limit, objects are discarded even though memory is
	// available — the Figure 2 behaviour.
	m := testMachine(2048)
	cfg := DefaultConfig()
	cfg.ObjCacheLimit = 5
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)
	p, _ := s.NewProcess("websrv")

	touch := func(name string) {
		vn, err := m.FS.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		va, err := p.Mmap(0, param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.TouchRange(va, param.PageSize, false); err != nil {
			t.Fatal(err)
		}
		p.Munmap(va, param.PageSize)
		vn.Unref()
	}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("/f%d", i)
		m.FS.Create(name, param.PageSize, func(_ int, b []byte) { b[0] = byte(i) })
		touch(name)
	}
	if s.ObjCacheSize() != 5 {
		t.Fatalf("cache size = %d, want limit 5", s.ObjCacheSize())
	}
	if m.Stats.Get("bsdvm.objcache.evictions") != 5 {
		t.Fatalf("evictions = %d", m.Stats.Get("bsdvm.objcache.evictions"))
	}

	// Touching an evicted file re-reads the disk; a cached one does not.
	reads := m.Stats.Get(sim.CtrDiskReads)
	touch("/f0") // long evicted
	if m.Stats.Get(sim.CtrDiskReads) == reads {
		t.Fatal("evicted object's pages still resident?")
	}
	reads = m.Stats.Get(sim.CtrDiskReads)
	touch("/f9") // recent; still cached (f9 was re-cached after /f0 touch)
	if m.Stats.Get(sim.CtrDiskReads) != reads {
		t.Fatal("cached object hit the disk")
	}
}

// --- paging ---

func TestPageoutAndPageinRoundTrip(t *testing.T) {
	// Allocate twice RAM, touch with identifiable data, then read it all
	// back: every page must survive the trip through swap.
	s, m := bootTest(t, 64) // 256 KB RAM
	p := newProc(t, s, "pig")
	const pages = 128
	va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(i), byte(i >> 4)}); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}
	if m.Stats.Get(sim.CtrPageOuts) == 0 {
		t.Fatal("no pageout happened with allocation 2x RAM")
	}
	b := make([]byte, 2)
	for i := 0; i < pages; i++ {
		if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, b); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		if b[0] != byte(i) || b[1] != byte(i>>4) {
			t.Fatalf("page %d corrupted through swap: %#x %#x", i, b[0], b[1])
		}
	}
	if m.Stats.Get(sim.CtrPageIns) == 0 {
		t.Fatal("no pageins on read-back")
	}
}

func TestWiredPagesSurvivePressure(t *testing.T) {
	s, _ := bootTest(t, 64)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.TouchRange(va, 4*param.PageSize, true)
	if err := p.Mlock(va, 4*param.PageSize); err != nil {
		t.Fatal(err)
	}
	// Apply pressure.
	hog := newProc(t, s, "hog")
	hva, _ := hog.Mmap(0, 100*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := hog.TouchRange(hva, 100*param.PageSize, true); err != nil {
		t.Fatal(err)
	}
	// The wired pages must still be resident (no fault on access).
	for i := 0; i < 4; i++ {
		if _, ok := p.pm.Lookup(va + param.VAddr(i)*param.PageSize); !ok {
			t.Fatalf("wired page %d was evicted", i)
		}
	}
}

// --- wiring & fragmentation (Table 1 mechanics) ---

func TestMlockFragmentsEntry(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	// Fault one page first so the page-table placeholder entry exists
	// before the baseline is taken.
	p.Access(va, true)
	base := p.MapEntryCount()
	if err := p.Mlock(va+2*param.PageSize, 2*param.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := p.MapEntryCount(); got != base+2 {
		t.Fatalf("entries after interior mlock = %d, want %d (entry split in three)", got, base+2)
	}
	// Unlock does NOT repair the fragmentation.
	p.Munlock(va+2*param.PageSize, 2*param.PageSize)
	if got := p.MapEntryCount(); got != base+2 {
		t.Fatalf("fragmentation repaired unexpectedly: %d", got)
	}
	checkMaps(t, p)
}

func TestSysctlFragmentsMapPermanently(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	base := p.MapEntryCount()
	if err := p.Sysctl(va+3*param.PageSize, param.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := p.MapEntryCount(); got <= base {
		t.Fatalf("sysctl did not fragment the BSD map: %d entries", got)
	}
	checkMaps(t, p)
}

func TestUserStructureUsesKernelEntries(t *testing.T) {
	s, _ := bootTest(t, 256)
	before := s.KernelMapEntries()
	p := newProc(t, s, "p")
	after := s.KernelMapEntries()
	if after-before != 2 {
		t.Fatalf("process creation added %d kernel entries, want 2 (user structure + kernel stack)", after-before)
	}
	p.Exit()
	if got := s.KernelMapEntries(); got != before {
		t.Fatalf("exit left %d kernel entries, want %d", got, before)
	}
}

func TestPageTablePlaceholderEntries(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	// Map and touch pages in two distinct 4 MB regions.
	va1, _ := p.Mmap(0x0000_2000, param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate|vmapi.MapFixed, nil, 0)
	va2, _ := p.Mmap(0x4000_0000, param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate|vmapi.MapFixed, nil, 0)
	base := p.MapEntryCount()
	p.Access(va1, true)
	if got := p.MapEntryCount(); got != base+1 {
		t.Fatalf("first PT region: %d entries, want %d", got, base+1)
	}
	p.Access(va2, true)
	if got := p.MapEntryCount(); got != base+2 {
		t.Fatalf("second PT region: %d entries, want %d", got, base+2)
	}
	checkMaps(t, p)
}

// --- lifecycle ---

func TestExitFreesEverything(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/exit", 2, 1)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 2*param.PageSize, param.ProtRW, vmapi.MapPrivate, vn, 0)
	p.TouchRange(va, 2*param.PageSize, true)
	av, _ := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.TouchRange(av, 8*param.PageSize, true)
	vn.Unref()

	free := m.Mem.FreePages()
	p.Exit()
	if !p.Exited() {
		t.Fatal("not marked exited")
	}
	if got := m.Mem.FreePages(); got <= free {
		t.Fatalf("exit freed no pages: %d -> %d", free, got)
	}
	if err := p.Access(va, false); !errors.Is(err, vmapi.ErrExited) {
		t.Fatalf("access after exit: %v", err)
	}
	if _, err := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0); !errors.Is(err, vmapi.ErrExited) {
		t.Fatalf("mmap after exit: %v", err)
	}
	// Anonymous memory with no other references leaves no swap behind.
	if got := m.Swap.SlotsInUse(); got != 0 {
		t.Fatalf("exit leaked %d swap slots", got)
	}
}

func TestMsyncWritesBack(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/sync", 1, 0)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	p.WriteBytes(va, []byte{0xcd})
	if err := p.Msync(va, param.PageSize); err != nil {
		t.Fatal(err)
	}
	fb := make([]byte, param.PageSize)
	vn.ReadPage(0, fb)
	if fb[0] != 0xcd {
		t.Fatalf("msync did not reach the file: %#x", fb[0])
	}
	vn.Unref()
}

func TestSharedFileWriteVisibleAcrossProcesses(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/shm", 1, 0)
	p1 := newProc(t, s, "p1")
	p2 := newProc(t, s, "p2")
	va1, _ := p1.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	va2, _ := p2.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	p1.WriteBytes(va1, []byte{0x42})
	b := make([]byte, 1)
	p2.ReadBytes(va2, b)
	if b[0] != 0x42 {
		t.Fatalf("shared file write not visible: %#x", b[0])
	}
	vn.Unref()
}

// --- randomized map integrity ---

func TestMapIntegrityUnderRandomOps(t *testing.T) {
	s, _ := bootTest(t, 512)
	p := newProc(t, s, "fuzz")
	rng := sim.NewRNG(20260612)
	var regions []struct {
		va param.VAddr
		sz param.VSize
	}
	for step := 0; step < 300; step++ {
		switch rng.Intn(6) {
		case 0, 1:
			sz := param.VSize(1+rng.Intn(8)) * param.PageSize
			va, err := p.Mmap(0, sz, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err == nil {
				regions = append(regions, struct {
					va param.VAddr
					sz param.VSize
				}{va, sz})
			}
		case 2:
			if len(regions) > 0 {
				r := regions[rng.Intn(len(regions))]
				off := param.VSize(rng.Intn(int(r.sz/param.PageSize))) * param.PageSize
				p.Access(r.va+param.VAddr(off), rng.Bool(1, 2))
			}
		case 3:
			if len(regions) > 0 {
				i := rng.Intn(len(regions))
				r := regions[i]
				p.Munmap(r.va, r.sz)
				regions = append(regions[:i], regions[i+1:]...)
			}
		case 4:
			if len(regions) > 0 {
				r := regions[rng.Intn(len(regions))]
				p.Mprotect(r.va, r.sz/2+param.PageSize, param.ProtRead)
				p.Mprotect(r.va, r.sz, param.ProtRW)
			}
		case 5:
			if len(regions) > 0 {
				r := regions[rng.Intn(len(regions))]
				p.Mlock(r.va, param.PageSize)
				p.Munlock(r.va, param.PageSize)
			}
		}
		s.big.Lock()
		err := p.m.checkIntegrity()
		s.big.Unlock()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}
