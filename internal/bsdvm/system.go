// Package bsdvm implements the 4.4BSD virtual memory system — the
// Mach-derived baseline the paper replaces. It is built faithfully enough
// to exhibit every behaviour the paper criticises:
//
//   - copy-on-write via shadow object chains, with the collapse operation
//     run after copy faults and reference drops (§5.1, §5.3);
//   - the swap memory leak: inaccessible redundant pages survive inside
//     chains and pin swap space (§5.3) — demonstrable by disabling
//     collapse, and present in attenuated form even with it;
//   - two-step memory mapping: entries are inserted with default
//     attributes and a second lock/lookup pass changes them (§3.1);
//   - the unmap operation that holds the map lock while object references
//     are dropped, including any resulting I/O (§3.1);
//   - separately allocated pager structures (vm_pager + vn_pager) and the
//     pager hash table (§6);
//   - a private 100-entry cache of unreferenced memory objects that holds
//     vnode references and fights the vnode LRU (§4, Figure 2);
//   - one-page-at-a-time pageout with fixed per-object swap blocks (§6,
//     Figure 5);
//   - map entry fragmentation from all five wiring paths: user structure,
//     sysctl, physio, mlock, and i386 page-table pages (§3.2, Table 1).
//
// Concurrency note: the simulation serialises each System's operations
// behind one Go mutex (like a pre-SMP kernel). The fine-grained locking
// costs of the real systems are *charged* to the simulated clock at the
// points the real code would take its map and object locks, so lock-cost
// comparisons (one-step vs two-step mapping, one- vs two-phase unmap)
// remain meaningful.
package bsdvm

import (
	"sync"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
)

// Config tunes the baseline system. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// ObjCacheLimit is the maximum number of unreferenced memory objects
	// cached by the VM system (the hundred-object limit of §4).
	ObjCacheLimit int
	// DisableCollapse turns off the object-chain collapse operation. Used
	// by the swap-leak demonstration; never set in normal comparisons.
	DisableCollapse bool
	// DisableObjCache turns off the VM object cache entirely (ablation).
	DisableObjCache bool
	// ReclaimBatch is how many pages one pagedaemon activation tries to
	// free.
	ReclaimBatch int
	// KernelEntryPool is the fixed number of kernel map entries available;
	// exhaustion panics, as the paper notes ("if this pool is exhausted
	// the system will panic").
	KernelEntryPool int
}

// DefaultConfig mirrors 4.4BSD defaults.
func DefaultConfig() Config {
	return Config{
		ObjCacheLimit:   100,
		ReclaimBatch:    32,
		KernelEntryPool: 4000,
	}
}

// System is a booted BSD VM instance.
type System struct {
	mach *vmapi.Machine
	cfg  Config

	// big is the "kernel lock": serialises public entry points.
	//uvm:lock system
	big sync.Mutex

	kmap      *vmMap
	kentryUse int

	pagerHash map[*vmPager]*object // the pager -> object hash table (§6)
	cache     objCache
	nextObjID int
	procs     map[*process]struct{}

	// Cached counter handles for the loop-hot paths (chain walks,
	// collapse scans, cache evictions), resolved once at boot.
	ctrChainWalk        sim.Counter
	ctrCacheEvictions   sim.Counter
	ctrCollapseScan     sim.Counter
	ctrCollapseRedund   sim.Counter
	ctrCollapseMerged   sim.Counter
	ctrCollapseBypassed sim.Counter
	ctrObjectLive       sim.Counter
}

// Boot boots BSD VM on machine m with default configuration.
func Boot(m *vmapi.Machine) vmapi.System { return BootConfig(m, DefaultConfig()) }

// BootConfig boots with an explicit configuration.
func BootConfig(m *vmapi.Machine, cfg Config) *System {
	s := &System{
		mach:      m,
		cfg:       cfg,
		pagerHash: make(map[*vmPager]*object),
		procs:     make(map[*process]struct{}),
	}
	s.ctrChainWalk = m.Stats.Counter(sim.CtrChainWalk)
	s.ctrCacheEvictions = m.Stats.Counter("bsdvm.objcache.evictions")
	s.ctrCollapseScan = m.Stats.Counter("bsdvm.collapse.scan")
	s.ctrCollapseRedund = m.Stats.Counter("bsdvm.collapse.redundant_pages")
	s.ctrCollapseMerged = m.Stats.Counter("bsdvm.collapse.merged")
	s.ctrCollapseBypassed = m.Stats.Counter("bsdvm.collapse.bypassed")
	s.ctrObjectLive = m.Stats.Counter("bsdvm.object.live")
	s.cache.limit = cfg.ObjCacheLimit
	s.kmap = s.newMap("kernel", param.KernelBase, param.KernelMax, true)

	// The kernel's own text, data and bss segments: three wired entries
	// present on both systems.
	for _, seg := range []struct {
		pages int
		prot  param.Prot
	}{{300, param.ProtRX}, {80, param.ProtRW}, {120, param.ProtRW}} {
		if _, err := s.kernelAllocLocked(seg.pages, seg.prot); err != nil {
			panic("bsdvm: kernel boot allocation failed: " + err.Error())
		}
	}
	return s
}

// Name implements vmapi.System.
func (s *System) Name() string { return "bsdvm" }

// Machine implements vmapi.System.
func (s *System) Machine() *vmapi.Machine { return s.mach }

// Shutdown implements vmapi.System. The big-lock baseline starts no
// kernel threads — its pagedaemon runs inline in allocating goroutines,
// faithful to the paper-era system — so there is nothing to stop.
func (s *System) Shutdown() {}

// KernelAlloc implements vmapi.System: each boot-time wired allocation
// consumes a fresh kernel map entry — BSD VM never coalesces.
func (s *System) KernelAlloc(npages int, prot param.Prot) (param.VAddr, error) {
	s.big.Lock()
	defer s.big.Unlock()
	return s.kernelAllocLocked(npages, prot)
}

func (s *System) kernelAllocLocked(npages int, prot param.Prot) (param.VAddr, error) {
	s.kmap.lock()
	defer s.kmap.unlock()
	va, err := s.kmap.findSpace(0, param.VSize(npages)*param.PageSize)
	if err != nil {
		return 0, err
	}
	e := s.allocEntry(s.kmap)
	e.start, e.end = va, va+param.VAddr(npages)*param.PageSize
	e.prot, e.maxProt = prot, param.ProtRWX
	e.wired = 1
	s.kmap.insert(e)
	return va, nil
}

// KernelMapEntries implements vmapi.System.
func (s *System) KernelMapEntries() int {
	s.big.Lock()
	defer s.big.Unlock()
	return s.kmap.n
}

// TotalMapEntries implements vmapi.System.
func (s *System) TotalMapEntries() int {
	s.big.Lock()
	defer s.big.Unlock()
	total := s.kmap.n
	//uvm:maporder-ok summing counts; order-independent
	for p := range s.procs {
		if p.vforked {
			continue // shares its parent's map; counting it would double
		}
		total += p.m.n
	}
	return total
}

// ObjCacheSize reports the number of objects in the VM object cache
// (test/experiment helper).
func (s *System) ObjCacheSize() int {
	s.big.Lock()
	defer s.big.Unlock()
	return s.cache.size()
}
