package bsdvm

import (
	"errors"
	"testing"

	"uvm/internal/param"
	"uvm/internal/vmapi"
)

func TestVforkSharesAddressSpace(t *testing.T) {
	s, _ := bootTest(t, 256)
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	parent.WriteBytes(va, []byte{1})

	child, err := parent.Vfork("child")
	if err != nil {
		t.Fatal(err)
	}
	child.WriteBytes(va, []byte{2})
	b := make([]byte, 1)
	parent.ReadBytes(va, b)
	if b[0] != 2 {
		t.Fatalf("vfork child write not visible: %d", b[0])
	}
	child.Exit()
	if err := parent.Access(va, true); err != nil {
		t.Fatalf("parent space damaged: %v", err)
	}
	checkMaps(t, parent)
}

func TestVforkStillConsumesKernelEntries(t *testing.T) {
	// Even vfork allocates the user structure under BSD VM: the two
	// kernel map entries are per-process, not per-address-space.
	s, _ := bootTest(t, 256)
	parent := newProc(t, s, "parent")
	before := s.KernelMapEntries()
	child, err := parent.Vfork("child")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.KernelMapEntries(); got != before+2 {
		t.Fatalf("vfork added %d kernel entries, want 2", got-before)
	}
	child.Exit()
	if got := s.KernelMapEntries(); got != before {
		t.Fatalf("vfork exit leaked kernel entries: %d vs %d", got, before)
	}
}

func TestVforkCheaperThanFork(t *testing.T) {
	s, m := bootTest(t, 4096)
	parent := newProc(t, s, "parent")
	const pages = 512
	va, _ := parent.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	parent.TouchRange(va, pages*param.PageSize, true)

	t0 := m.Clock.Now()
	vc, _ := parent.Vfork("vc")
	vforkCost := m.Clock.Since(t0)
	vc.Exit()

	t1 := m.Clock.Now()
	fc, _ := parent.Fork("fc")
	forkCost := m.Clock.Since(t1)
	fc.Exit()

	if vforkCost*5 > forkCost {
		t.Fatalf("vfork (%v) should be far cheaper than fork (%v)", vforkCost, forkCost)
	}
}

func TestNestedVforkRejected(t *testing.T) {
	s, _ := bootTest(t, 256)
	parent := newProc(t, s, "parent")
	child, _ := parent.Vfork("child")
	if _, err := child.Vfork("grandchild"); !errors.Is(err, vmapi.ErrInvalid) {
		t.Fatalf("nested vfork: %v", err)
	}
	child.Exit()
}
