package bsdvm

import (
	"errors"
	"testing"

	"uvm/internal/param"
	"uvm/internal/vfs"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// Additional coverage for BSD VM internals: collapse/bypass corners, the
// swap pager's block behaviour, configuration knobs, and map edge cases.

func TestCollapseBypass(t *testing.T) {
	// Build a chain where the middle shadow contributes nothing to the
	// top object's window: parent writes page A pre-fork; after two forks
	// and selective writes the bypass path gets exercised.
	s, m := bootTest(t, 512)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.TouchRange(va, 4*param.PageSize, true)

	// Two generations of fork + parent writes build multi-level chains
	// with shared middles.
	c1, _ := p.Fork("c1")
	p.TouchRange(va, 4*param.PageSize, true)
	c2, _ := p.Fork("c2")
	p.TouchRange(va, 4*param.PageSize, true)

	// Children still read their snapshots correctly.
	b := make([]byte, 1)
	if err := c1.ReadBytes(va, b); err != nil {
		t.Fatal(err)
	}
	if err := c2.ReadBytes(va, b); err != nil {
		t.Fatal(err)
	}
	c1.Exit()
	c2.Exit()
	// After the children die, further parent activity collapses the
	// chain back to something short.
	p.TouchRange(va, 4*param.PageSize, true)
	s.big.Lock()
	objs, _, _ := chainStats(p.m.lookup(va))
	s.big.Unlock()
	if objs > 3 {
		t.Fatalf("chain not collapsed after children exited: %d objects", objs)
	}
	if m.Stats.Get("bsdvm.collapse.merged")+m.Stats.Get("bsdvm.collapse.bypassed") == 0 {
		t.Fatal("no collapse activity at all")
	}
}

func TestSwapPagerBlockGranularity(t *testing.T) {
	// BSD VM allocates swap in fixed blocks: paging one page out reserves
	// a whole block of contiguous slots (§5.3's space behaviour).
	s, m := bootTest(t, 32)
	p := newProc(t, s, "p")
	const pages = 64
	va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
		t.Fatal(err)
	}
	slots := m.Swap.SlotsInUse()
	outs := m.Stats.Get("vm.pageouts")
	if outs == 0 {
		t.Fatal("no pageout")
	}
	if slots%swapBlockPages != 0 {
		t.Fatalf("swap held in %d slots, not a multiple of the %d-slot block", slots, swapBlockPages)
	}
	if int64(slots) < outs {
		t.Fatalf("slots (%d) < pages paged (%d)?", slots, outs)
	}
}

func TestDisableObjCache(t *testing.T) {
	m := testMachine(512)
	cfg := DefaultConfig()
	cfg.DisableObjCache = true
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)
	vn := mkfile(t, m, "/nc", 2, 1)
	p, _ := s.NewProcess("p")
	va, _ := p.Mmap(0, 2*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	p.TouchRange(va, 2*param.PageSize, false)
	p.Munmap(va, 2*param.PageSize)
	if s.ObjCacheSize() != 0 {
		t.Fatal("object cached despite DisableObjCache")
	}
	// Remapping re-reads the disk (no cache).
	reads := m.Stats.Get("disk.reads")
	va2, _ := p.Mmap(0, 2*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	p.TouchRange(va2, 2*param.PageSize, false)
	if m.Stats.Get("disk.reads") == reads {
		t.Fatal("pages survived with the cache disabled")
	}
	vn.Unref()
}

func TestKernelEntryPoolExhaustionPanics(t *testing.T) {
	// §3.2: "if this pool is exhausted the system will panic".
	m := testMachine(256)
	cfg := DefaultConfig()
	cfg.KernelEntryPool = 6 // 3 boot segments + a little
	defer func() {
		if recover() == nil {
			t.Error("expected kernel entry pool panic")
		}
	}()
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)
	for i := 0; i < 10; i++ {
		if _, err := s.KernelAlloc(1, param.ProtRW); err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

func TestMprotectRespectsMaxProt(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	s.big.Lock()
	e := p.m.lookup(va)
	e.maxProt = param.ProtRead | param.ProtWrite
	s.big.Unlock()
	if err := p.Mprotect(va, param.PageSize, param.ProtRWX); !errors.Is(err, vmapi.ErrInvalid) {
		t.Fatalf("protection beyond maxProt allowed: %v", err)
	}
}

func TestMadviseStored(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := p.Madvise(va, 4*param.PageSize, param.AdviceSequential); err != nil {
		t.Fatal(err)
	}
	s.big.Lock()
	adv := p.m.lookup(va).advice
	s.big.Unlock()
	if adv != param.AdviceSequential {
		t.Fatalf("advice = %v", adv)
	}
}

func TestAddressSpaceExhaustion(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	// A mapping bigger than the whole user address space must fail
	// cleanly.
	if _, err := p.Mmap(0, param.VSize(param.UserMax), param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate, nil, 0); !errors.Is(err, vmapi.ErrNoSpace) {
		t.Fatalf("oversized mapping: %v", err)
	}
}

func TestFixedMappingBeyondUserSpaceRejected(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	if _, err := p.Mmap(param.UserMax, param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate|vmapi.MapFixed, nil, 0); !errors.Is(err, vmapi.ErrInvalid) {
		t.Fatalf("fixed mapping into the PT region: %v", err)
	}
}

func TestChainStatsAccounting(t *testing.T) {
	s, _ := bootTest(t, 512)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 3*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.TouchRange(va, 3*param.PageSize, true)

	s.big.Lock()
	objs, total, reachable := chainStats(p.m.lookup(va))
	s.big.Unlock()
	if objs != 1 || total != 3 || reachable != 3 {
		t.Fatalf("flat object stats: objs=%d total=%d reachable=%d", objs, total, reachable)
	}

	// Fork and overwrite one page: the chain holds 4 pages, 3 reachable
	// from the parent entry.
	c, _ := p.Fork("c")
	p.WriteBytes(va, []byte{9})
	s.big.Lock()
	objs, total, reachable = chainStats(p.m.lookup(va))
	s.big.Unlock()
	if objs != 2 {
		t.Fatalf("objs = %d after fork+write", objs)
	}
	if total != 4 || reachable != 3 {
		t.Fatalf("total=%d reachable=%d, want 4/3", total, reachable)
	}
	c.Exit()
}

func TestMsyncOnlyFileMappings(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.WriteBytes(va, []byte{1})
	// msync over anonymous memory is a no-op, not an error.
	if err := p.Msync(va, param.PageSize); err != nil {
		t.Fatal(err)
	}
}

func TestObjectCacheReuseAfterEviction(t *testing.T) {
	// An evicted object must be recreatable: full lifecycle through the
	// cache twice.
	m := testMachine(512)
	cfg := DefaultConfig()
	cfg.ObjCacheLimit = 1
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)
	p, _ := s.NewProcess("p")
	vnA := mkfile(t, m, "/a", 1, 0xA0)
	vnB := mkfile(t, m, "/b", 1, 0xB0)

	cycle := func(vn *vfs.Vnode, want byte) {
		va, err := p.Mmap(0, param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 1)
		if err := p.ReadBytes(va, b); err != nil {
			t.Fatal(err)
		}
		if b[0] != want {
			t.Fatalf("read %#x want %#x", b[0], want)
		}
		p.Munmap(va, param.PageSize)
	}
	cycle(vnA, 0xA0)
	cycle(vnB, 0xB0) // evicts A's object
	cycle(vnA, 0xA0) // recreates A's object
	cycle(vnB, 0xB0)
	vnA.Unref()
	vnB.Unref()
}

// TestCollapseSwapOwnership is the regression test for the collapse
// swap double-free: when a merge adopts a shadow's swap slots, slot
// ownership must move with them — the donor's destroyPager must not
// free adopted slots and the adopter must free exactly what it took.
// Fork/exit churn over a region twice RAM (the traffic driver's
// pattern, shrunk) pages shadow chains out and collapses them over and
// over; the buggy block-granular transfer panics with "double free of
// slot" in here. After every process exits, no swap may stay in use.
func TestCollapseSwapOwnership(t *testing.T) {
	m := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:  64,
		SwapPages: 4096, // room for every generation's shadow-chain blocks
		FSPages:   1024,
		MaxVnodes: 50,
	})
	s := BootConfig(m, DefaultConfig())
	testutil.SweepOnCleanup(t, s)
	p := newProc(t, s, "p")
	const pages = 96 // 1.5x RAM: every generation reclaims and pages out
	va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
		t.Fatal(err)
	}
	touch := func(q vmapi.Process) {
		t.Helper()
		if err := q.TouchRange(va, pages*param.PageSize, true); err != nil {
			t.Fatal(err)
		}
	}
	for gen := 0; gen < 6; gen++ {
		// Three generations deep: the middle process's chain both adopts
		// slots from below (when the grandchild dies) and donates them up
		// (when it dies itself) — ownership must survive the relay.
		c, err := p.Fork("c")
		if err != nil {
			t.Fatal(err)
		}
		touch(c)
		g, err := c.Fork("g")
		if err != nil {
			t.Fatal(err)
		}
		touch(g)
		touch(c)
		g.Exit()
		touch(c) // collapse: c's chain adopts g's leavings
		c.Exit()
		touch(p) // collapse: p's chain adopts from c, including relayed slots
	}
	if m.Stats.Get("bsdvm.collapse.merged") == 0 {
		t.Fatal("churn produced no collapse merges; the test lost its target")
	}
	p.Exit()
	if n := m.Swap.SlotsInUse(); n != 0 {
		t.Fatalf("%d swap slots still in use after every process exited", n)
	}
}
