package bsdvm

import (
	"sort"

	"uvm/internal/param"
	"uvm/internal/pmap"
	"uvm/internal/vfs"
	"uvm/internal/vmapi"
)

// ptRegionBase is where i386 page-table placeholder entries are recorded
// in a BSD VM process map (§3.2: under BSD the wired state of page-table
// memory is stored in the user process' map as well as the pmap).
const ptRegionBase = param.UserMax

// ptRegionSize bounds the placeholder area.
const ptRegionSize = param.VAddr(64 << 20)

// process is a BSD VM process: a vmspace (map + pmap) plus the kernel-side
// allocations the VM system makes on its behalf.
type process struct {
	sys  *System
	name string

	m  *vmMap
	pm *pmap.Pmap

	exited bool
	// vforked marks a child sharing its parent's address space: teardown
	// at exit releases only the per-process kernel state.
	vforked bool

	// ustruct: the kernel map ranges wired for the user structure and
	// kernel stack — two kernel map entries per process (§3.2).
	ustruct []struct {
		va    param.VAddr
		pages int
	}

	// i386 page-table placeholder entries currently in the map.
	ptEntries []*entry
	nextPT    param.VAddr
	ptFreeVAs []param.VAddr
}

// NewProcess implements vmapi.System.
func (s *System) NewProcess(name string) (vmapi.Process, error) {
	s.big.Lock()
	defer s.big.Unlock()
	return s.newProcessLocked(name)
}

func (s *System) newProcessLocked(name string) (*process, error) {
	p := &process{sys: s, name: name}
	p.m = s.newMap(name, param.UserTextBase, ptRegionBase+ptRegionSize, false)
	p.m.allocMax = param.UserMax
	p.pm = p.m.pmap
	p.nextPT = ptRegionBase

	// i386 page-table wiring is recorded in the process map under BSD VM.
	p.pm.OnPTAlloc = func() { p.addPTEntry() }
	p.pm.OnPTFree = func() { p.removePTEntry() }

	// The user structure and kernel stack: wired kernel memory, one
	// kernel map entry each. Claiming and clearing the pages costs the
	// same as under UVM; the map entries are the BSD-specific part.
	s.mach.Clock.ChargeN(4, s.mach.Costs.PageAlloc)
	s.mach.Clock.ChargeN(4, s.mach.Costs.PageZero)
	for _, pages := range []int{2, 2} {
		va, err := s.kernelAllocLocked(pages, param.ProtRW)
		if err != nil {
			return nil, err
		}
		p.ustruct = append(p.ustruct, struct {
			va    param.VAddr
			pages int
		}{va, pages})
	}
	s.procs[p] = struct{}{}
	s.mach.Stats.Inc("bsdvm.proc.created")
	return p, nil
}

func (p *process) addPTEntry() {
	var va param.VAddr
	if n := len(p.ptFreeVAs); n > 0 {
		va = p.ptFreeVAs[n-1]
		p.ptFreeVAs = p.ptFreeVAs[:n-1]
	} else {
		va = p.nextPT
		p.nextPT += param.PageSize
	}
	e := p.sys.allocEntry(p.m)
	e.start, e.end = va, va+param.PageSize
	e.prot, e.maxProt = param.ProtRW, param.ProtRW
	e.wired = 1
	e.placeholder = true
	p.m.insert(e)
	p.ptEntries = append(p.ptEntries, e)
}

func (p *process) removePTEntry() {
	n := len(p.ptEntries)
	if n == 0 {
		return
	}
	e := p.ptEntries[n-1]
	p.ptEntries = p.ptEntries[:n-1]
	p.m.unlink(e)
	p.ptFreeVAs = append(p.ptFreeVAs, e.start)
	p.sys.freeEntry(p.m, e)
}

// Name implements vmapi.Process.
func (p *process) Name() string { return p.name }

// Exited implements vmapi.Process.
func (p *process) Exited() bool { return p.exited }

// MapEntryCount implements vmapi.Process.
func (p *process) MapEntryCount() int {
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	return p.m.n
}

// ResidentPages implements vmapi.Process.
func (p *process) ResidentPages() int { return p.pm.ResidentCount() }

// Mincore implements vmapi.Process: per-page residency of the range.
func (p *process) Mincore(addr param.VAddr, length param.VSize) ([]bool, error) {
	if p.exited {
		return nil, vmapi.ErrExited
	}
	if length == 0 {
		return nil, vmapi.ErrInvalid
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	start := param.Trunc(addr)
	end := param.Round(addr + param.VAddr(length))
	out := make([]bool, 0, (end-start)>>param.PageShift)
	for va := start; va < end; va += param.PageSize {
		_, ok := p.pm.Lookup(va)
		out = append(out, ok)
	}
	return out, nil
}

// Mmap implements vmapi.Process using BSD VM's two-step process: the
// mapping is first established with the system's *default* attributes
// (read-write protection), then — if the caller wanted anything else — the
// map is relocked, the entry found again and clipped, and the attribute
// changed (§3.1). Between the steps the mapping is briefly live at
// read-write: the security window the paper describes.
func (p *process) Mmap(addr param.VAddr, length param.VSize, prot param.Prot,
	flags vmapi.MapFlags, vn *vfs.Vnode, off param.PageOff) (param.VAddr, error) {

	if p.exited {
		return 0, vmapi.ErrExited
	}
	if length == 0 || !flags.Valid() || !param.PageAligned(param.VAddr(off)) {
		return 0, vmapi.ErrInvalid
	}
	if flags&vmapi.MapAnon != 0 && vn != nil {
		return 0, vmapi.ErrInvalid
	}
	if flags&vmapi.MapAnon == 0 && vn == nil {
		return 0, vmapi.ErrInvalid
	}
	length = param.RoundSize(length)

	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()

	// ---- Step 1: establish the mapping with default attributes. ----
	m := p.m
	m.lock()
	var va param.VAddr
	if flags&vmapi.MapFixed != 0 {
		if !param.PageAligned(addr) || addr+param.VAddr(length) > m.allocMax {
			m.unlock()
			return 0, vmapi.ErrInvalid
		}
		m.unmapRange(addr, addr+param.VAddr(length))
		va = addr
	} else {
		var err error
		va, err = m.findSpace(addr, length)
		if err != nil {
			m.unlock()
			return 0, err
		}
	}

	var obj *object
	private := flags&vmapi.MapPrivate != 0
	if flags&vmapi.MapAnon != 0 {
		// BSD VM allocates the anonymous object eagerly (§5.1).
		obj = s.newObject(param.Pages(length), true)
	} else {
		obj = s.vnodeObject(vn)
	}

	e := s.allocEntry(m)
	e.start, e.end = va, va+param.VAddr(length)
	e.obj = obj
	e.off = off
	e.prot = param.ProtRW // the default protection, not the requested one
	e.maxProt = param.ProtRWX
	if private {
		e.inherit = param.InheritCopy
	} else {
		e.inherit = param.InheritShare
	}
	if private && vn != nil {
		e.cow, e.needsCopy = true, true
	}
	m.insert(e)
	m.unlock()

	// ---- Step 2: fix up non-default attributes with a second pass. ----
	if prot != param.ProtRW {
		if err := m.protect(va, va+param.VAddr(length), prot); err != nil {
			return 0, err
		}
	}
	return va, nil
}

// Munmap implements vmapi.Process. BSD VM's unmap is single-phase: the
// map stays locked while entries are removed AND while the object
// references are dropped, including any I/O that teardown triggers (§3.1).
func (p *process) Munmap(addr param.VAddr, length param.VSize) error {
	if p.exited {
		return vmapi.ErrExited
	}
	if !param.PageAligned(addr) || length == 0 {
		return vmapi.ErrInvalid
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	m := p.m
	m.lock()
	m.unmapRange(addr, addr+param.VAddr(param.RoundSize(length)))
	m.unlock()
	return nil
}

// Mprotect implements vmapi.Process. The range is clipped to page
// boundaries before entries are split (clipping at a raw, unaligned
// address would corrupt an entry's object geometry); same rule as UVM.
func (p *process) Mprotect(addr param.VAddr, length param.VSize, prot param.Prot) error {
	if p.exited {
		return vmapi.ErrExited
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	start, end := param.Trunc(addr), param.Round(addr+param.VAddr(length))
	if length == 0 {
		end = start
	}
	return p.m.protect(start, end, prot)
}

// Minherit implements vmapi.Process. The range is clipped to page
// boundaries so the inheritance covers exactly the pages it names and
// never bleeds onto the rest of a large entry; same rule as UVM.
func (p *process) Minherit(addr param.VAddr, length param.VSize, inh param.Inherit) error {
	if p.exited {
		return vmapi.ErrExited
	}
	if length == 0 {
		return nil
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	m := p.m
	m.lock()
	defer m.unlock()
	for _, e := range m.entriesIn(param.Trunc(addr), param.Round(addr+param.VAddr(length))) {
		e.inherit = inh
	}
	return nil
}

// Madvise implements vmapi.Process. (BSD VM stores the advice but its
// fault handler does not use it — no lookahead.)
func (p *process) Madvise(addr param.VAddr, length param.VSize, adv param.Advice) error {
	if p.exited {
		return vmapi.ErrExited
	}
	if length == 0 {
		return nil
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	m := p.m
	m.lock()
	defer m.unlock()
	for _, e := range m.entriesIn(param.Trunc(addr), param.Round(addr+param.VAddr(length))) {
		e.advice = adv
	}
	return nil
}

// Msync implements vmapi.Process: modified pages of file mappings in the
// range are written back — one page, one I/O.
func (p *process) Msync(addr param.VAddr, length param.VSize) error {
	if p.exited {
		return vmapi.ErrExited
	}
	if length == 0 {
		return nil
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	m := p.m
	m.lock()
	defer m.unlock()
	// Page-rounded range, same rule as UVM: the flush covers exactly the
	// pages [Trunc(addr), Round(addr+length)) touches.
	start, end := param.Trunc(addr), param.Round(addr+param.VAddr(length))
	for cur := m.head; cur != nil; cur = cur.next {
		if cur.end <= start || cur.start >= end || cur.obj == nil || cur.obj.vnode == nil {
			continue
		}
		// Flush only the object pages the requested range maps.
		lo, hi := cur.start, cur.end
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
		loIdx, hiIdx := cur.pageIndex(lo), cur.pageIndex(hi-1)
		// Snapshot and sort the resident indices: the write order decides
		// the disk head's path, and Go map iteration order would make it
		// (and so the simulated time) differ run to run.
		idxs := make([]int, 0, len(cur.obj.pages))
		//uvm:maporder-ok indices are sorted below
		for idx := range cur.obj.pages {
			if idx >= loIdx && idx <= hiIdx {
				idxs = append(idxs, idx)
			}
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			pg := cur.obj.pages[idx]
			if !pg.Dirty.Load() {
				continue
			}
			if err := cur.obj.vnode.WritePage(idx, pg.Data); err != nil {
				return err
			}
			pg.Dirty.Store(false)
		}
	}
	return nil
}

// wireRange wires [addr, end) the BSD VM way: the range's entries are
// clipped (fragmenting the map — permanently), their wired counts raised,
// and the pages faulted in and wired.
func (p *process) wireRange(addr, end param.VAddr) error {
	m := p.m
	m.lock()
	entries := m.entriesIn(addr, end)
	if len(entries) == 0 {
		m.unlock()
		return vmapi.ErrFault
	}
	for _, e := range entries {
		e.wired++
	}
	m.unlock()

	for va := addr; va < end; va += param.PageSize {
		if _, ok := p.pm.Lookup(va); !ok {
			if err := p.sys.fault(p, va, param.ProtRead); err != nil {
				return err
			}
		}
		pte, _ := p.pm.Lookup(va)
		if pte.Page != nil {
			pte.Page.WireCount.Add(1)
			p.sys.mach.Mem.Dequeue(pte.Page)
		}
		p.pm.ChangeWiring(va, true)
	}
	return nil
}

// unwireRange reverses wireRange — but the entry fragmentation it caused
// is never repaired.
func (p *process) unwireRange(addr, end param.VAddr) {
	m := p.m
	m.lock()
	for _, e := range m.entriesIn(addr, end) {
		if e.wired > 0 {
			e.wired--
		}
	}
	m.unlock()
	for va := addr; va < end; va += param.PageSize {
		if pte, ok := p.pm.Lookup(va); ok && pte.Page != nil && pte.Page.WireCount.Load() > 0 {
			pte.Page.WireCount.Add(-1)
			if pte.Page.WireCount.Load() == 0 {
				p.sys.mach.Mem.Activate(pte.Page)
			}
		}
		p.pm.ChangeWiring(va, false)
	}
}

// Mlock implements vmapi.Process.
func (p *process) Mlock(addr param.VAddr, length param.VSize) error {
	if p.exited {
		return vmapi.ErrExited
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	return p.wireRange(param.Trunc(addr), param.Round(addr+param.VAddr(length)))
}

// Munlock implements vmapi.Process.
func (p *process) Munlock(addr param.VAddr, length param.VSize) error {
	if p.exited {
		return vmapi.ErrExited
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	p.unwireRange(param.Trunc(addr), param.Round(addr+param.VAddr(length)))
	return nil
}

// Sysctl implements vmapi.Process: BSD wires the user's buffer *in the
// process map* for the duration of the call (§3.2), fragmenting it.
func (p *process) Sysctl(addr param.VAddr, length param.VSize) error {
	if p.exited {
		return vmapi.ErrExited
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	start, end := param.Trunc(addr), param.Round(addr+param.VAddr(length))
	if err := p.wireRange(start, end); err != nil {
		return err
	}
	// The kernel copies the result out to the wired buffer.
	p.sys.mach.Clock.ChargeN(param.Pages(param.VSize(end-start)), p.sys.mach.Costs.PageTouch)
	p.unwireRange(start, end)
	return nil
}

// Physio implements vmapi.Process: raw device I/O into a user buffer,
// which BSD likewise wires through the process map.
func (p *process) Physio(addr param.VAddr, length param.VSize) error {
	if p.exited {
		return vmapi.ErrExited
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	start, end := param.Trunc(addr), param.Round(addr+param.VAddr(length))
	if err := p.wireRange(start, end); err != nil {
		return err
	}
	npages := param.Pages(param.VSize(end - start))
	p.sys.mach.Clock.Advance(p.sys.mach.Costs.DiskOp)
	p.sys.mach.Clock.ChargeN(npages, p.sys.mach.Costs.DiskPageIO)
	p.unwireRange(start, end)
	return nil
}

// Fork implements vmapi.Process: the child's address space is built from
// the parent's entries per their inheritance attributes. Copy-inherited
// ranges get needs-copy set in both processes and the parent's resident
// pages write-protected (§5.1, Figure 3).
func (p *process) Fork(name string) (vmapi.Process, error) {
	if p.exited {
		return nil, vmapi.ErrExited
	}
	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()

	child, err := s.newProcessLocked(name)
	if err != nil {
		return nil, err
	}
	pm, cm := p.m, child.m
	pm.lock()
	cm.lock()
	for e := pm.head; e != nil; e = e.next {
		if e.placeholder {
			continue
		}
		switch e.inherit {
		case param.InheritNone:
			continue
		case param.InheritShare:
			ce := s.allocEntry(cm)
			*ce = *e
			ce.prev, ce.next = nil, nil
			ce.wired = 0
			if ce.obj != nil {
				ce.obj.refs++
			}
			cm.insert(ce)
		case param.InheritCopy:
			ce := s.allocEntry(cm)
			*ce = *e
			ce.prev, ce.next = nil, nil
			ce.wired = 0
			if e.obj != nil {
				e.obj.refs++
				e.cow, e.needsCopy = true, true
				ce.cow, ce.needsCopy = true, true
				// Write-protect the parent's resident pages so its next
				// store faults (the per-page fork overhead both systems
				// pay, §5.3).
				p.pm.Protect(e.start, e.end, e.prot&^param.ProtWrite)
			}
			cm.insert(ce)
		}
	}
	cm.unlock()
	pm.unlock()
	s.mach.Stats.Inc("bsdvm.forks")
	return child, nil
}

// Vfork implements vmapi.Process: the child shares the parent's map and
// pmap outright; only the user structure and kernel stack are new.
func (p *process) Vfork(name string) (vmapi.Process, error) {
	if p.exited {
		return nil, vmapi.ErrExited
	}
	if p.vforked {
		return nil, vmapi.ErrInvalid
	}
	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()
	child, err := s.newProcessLocked(name)
	if err != nil {
		return nil, err
	}
	child.m = p.m
	child.pm = p.pm
	child.vforked = true
	s.mach.Stats.Inc("bsdvm.vforks")
	return child, nil
}

// Exit implements vmapi.Process: the whole address space is torn down —
// with the map lock held throughout, BSD style.
func (p *process) Exit() {
	if p.exited {
		return
	}
	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()

	if !p.vforked {
		m := p.m
		m.lock()
		m.unmapRange(param.UserTextBase, param.UserMax)
		m.unlock()

		// Tear down remaining translations; page-table placeholder
		// entries unwind through the pmap hooks.
		p.pm.RemoveAll()
		for len(p.ptEntries) > 0 {
			p.removePTEntry()
		}
	}

	// Release the user structure and kernel stack.
	s.kmap.lock()
	for _, u := range p.ustruct {
		s.kmap.unmapRange(u.va, u.va+param.VAddr(u.pages)*param.PageSize)
	}
	s.kmap.unlock()
	p.ustruct = nil

	delete(s.procs, p)
	p.exited = true
	s.mach.Stats.Inc("bsdvm.proc.exited")
}

// Access implements vmapi.Process: one CPU load or store. A valid
// translation with sufficient protection is a TLB-speed touch; anything
// else is a page fault.
func (p *process) Access(addr param.VAddr, write bool) error {
	if p.exited {
		return vmapi.ErrExited
	}
	access := param.ProtRead
	if write {
		access = param.ProtWrite
	}
	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()
	if pte, ok := p.pm.Extract(addr); ok && pte.Prot.Allows(access) {
		s.mach.Clock.Advance(s.mach.Costs.PageTouch)
		pte.Page.Referenced.Store(true)
		if write {
			pte.Page.Dirty.Store(true)
		}
		return nil
	}
	return s.fault(p, addr, access)
}

// TouchRange implements vmapi.Process.
func (p *process) TouchRange(addr param.VAddr, length param.VSize, write bool) error {
	end := addr + param.VAddr(param.RoundSize(length))
	for va := param.Trunc(addr); va < end; va += param.PageSize {
		if err := p.Access(va, write); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes implements vmapi.Process.
func (p *process) ReadBytes(addr param.VAddr, buf []byte) error {
	return p.copyBytes(addr, buf, false)
}

// WriteBytes implements vmapi.Process.
func (p *process) WriteBytes(addr param.VAddr, data []byte) error {
	return p.copyBytes(addr, data, true)
}

func (p *process) copyBytes(addr param.VAddr, buf []byte, write bool) error {
	done := 0
	for done < len(buf) {
		va := addr + param.VAddr(done)
		pageOff := int(va & param.PageMask)
		n := param.PageSize - pageOff
		if n > len(buf)-done {
			n = len(buf) - done
		}
		if err := p.Access(va, write); err != nil {
			return err
		}
		pte, ok := p.pm.Lookup(va)
		if !ok || pte.Page == nil {
			return vmapi.ErrFault
		}
		if write {
			copy(pte.Page.Data[pageOff:pageOff+n], buf[done:done+n])
		} else {
			copy(buf[done:done+n], pte.Page.Data[pageOff:pageOff+n])
		}
		done += n
	}
	return nil
}
