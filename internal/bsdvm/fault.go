package bsdvm

import (
	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
)

// fault resolves a page fault at va in process p (vm_fault). The
// signature BSD VM behaviours:
//
//   - the mapping's object chain is walked top-down, one charged search
//     per level, until the page is found or the chain ends;
//   - a needs-copy entry gets its shadow object allocated on the *first
//     fault of any kind* — even a read fault where none is needed yet
//     (the Table 3 read/private anomaly);
//   - a write fault that finds the page in a backing object copies it up
//     into the first object (never reassigns it, even when the backing
//     page is unreachable afterwards — the §5.3 inefficiency);
//   - an object collapse is attempted after every copy-on-write fault;
//   - exactly one page is mapped per fault: no lookahead (Table 2).
//
// Caller holds the big lock; the map lock is taken here.
func (s *System) fault(p *process, va param.VAddr, access param.Prot) error {
	s.mach.Clock.Advance(s.mach.Costs.FaultTrap)
	s.mach.Stats.Inc(sim.CtrFaults)
	if access.Allows(param.ProtWrite) {
		s.mach.Stats.Inc(sim.CtrFaultsWrite)
	} else {
		s.mach.Stats.Inc(sim.CtrFaultsRead)
	}

	m := p.m
	m.lock()
	defer m.unlock()

	e := m.lookup(va)
	if e == nil || e.placeholder || e.obj == nil {
		return vmapi.ErrFault
	}
	if !e.prot.Allows(access) {
		return vmapi.ErrFault
	}
	write := access.Allows(param.ProtWrite)

	// Clear needs-copy by allocating a shadow object — BSD VM does this
	// on read faults too.
	if e.needsCopy {
		s.shadowEntry(e)
	}

	firstObj := e.obj
	firstIdx := e.pageIndex(va)

	// Walk the shadow chain looking for the data.
	var (
		pg       *phys.Page
		foundObj *object
	)
	obj, idx := firstObj, firstIdx
	for {
		// Each object in the chain is individually locked and searched
		// (§5.3: "each object in the chain has its own set of I/O
		// operations, its own lock...").
		s.mach.Clock.Advance(s.mach.Costs.LockAcquire)
		s.mach.Clock.Advance(s.mach.Costs.ChainSearch)
		s.ctrChainWalk.Inc()
		if q, ok := obj.pages[idx]; ok {
			pg, foundObj = q, obj
			break
		}
		if s.pagerHas(obj, idx) {
			q, err := s.pagein(obj, idx)
			if err != nil {
				return err
			}
			pg, foundObj = q, obj
			break
		}
		if obj.shadow == nil {
			// Chain exhausted: zero-fill in the first object.
			q, err := s.allocPage(firstObj, firstIdx, true)
			if err != nil {
				return err
			}
			q.Dirty.Store(true) // anonymous content exists only in RAM now
			pg, foundObj = q, firstObj
			break
		}
		idx += obj.shadowOff
		obj = obj.shadow
	}

	prot := e.prot
	switch {
	case foundObj == firstObj:
		if write {
			pg.Dirty.Store(true)
		}
	case write && e.cow:
		// Copy the page up into the first object. BSD VM pays the page
		// allocation and copy even when the source page just became
		// unreachable (§5.3); afterwards it attempts a collapse.
		np, err := s.allocPage(firstObj, firstIdx, false)
		if err != nil {
			return err
		}
		s.mach.Mem.CopyData(np, pg)
		np.Dirty.Store(true)
		pg, foundObj = np, firstObj
		s.collapse(firstObj)
	case e.cow:
		// Read fault on data in a backing object: map it read-only so a
		// later write faults again.
		prot &^= param.ProtWrite
	case write:
		pg.Dirty.Store(true)
	}

	// Mach-style re-validation: before mapping the page the fault code
	// re-looks-up the map to confirm nothing changed while objects were
	// (potentially) unlocked for I/O — one of the operations the paper
	// notes BSD performs "multiple times at different layers" (§1.1).
	if m.lookup(va) != e {
		return vmapi.ErrFault
	}

	pg.Referenced.Store(true)
	p.pm.Enter(param.Trunc(va), pg, prot, e.wired > 0)
	if pg.WireCount.Load() == 0 {
		s.mach.Mem.Activate(pg)
	}
	return nil
}
