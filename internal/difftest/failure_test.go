package difftest

import (
	"errors"
	"fmt"
	"testing"

	"uvm/internal/bsdvm"
	"uvm/internal/param"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

// Failure injection: disk I/O errors and resource exhaustion must surface
// as errors — never as corruption, panics, or hangs — in both systems.

func boots() map[string]vmapi.Booter {
	return map[string]vmapi.Booter{"bsdvm": bsdvm.Boot, "uvm": uvm.Boot}
}

func TestPageinIOErrorSurfaces(t *testing.T) {
	for name, boot := range boots() {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			mach := vmapi.NewMachine(vmapi.MachineConfig{
				RAMPages: 256, SwapPages: 1024, FSPages: 1024, MaxVnodes: 16,
			})
			sys := boot(mach)
			mach.FS.Create("/bad.bin", 4*param.PageSize, func(idx int, b []byte) { b[0] = byte(idx) })
			vn, _ := mach.FS.Open("/bad.bin")
			defer vn.Unref()

			boom := errors.New("read error: bad sector")
			badBlock := int64(-1)
			mach.FSDisk.FailRead = func(block int64) error {
				if badBlock == -1 {
					badBlock = block + 2 // poison the third page of the file
				}
				if block == badBlock {
					return boom
				}
				return nil
			}

			p, _ := sys.NewProcess("reader")
			va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
			// Healthy pages read fine.
			if err := p.Access(va, false); err != nil {
				t.Fatalf("healthy page: %v", err)
			}
			// The poisoned page surfaces the I/O error from the fault.
			if err := p.Access(va+2*param.PageSize, false); !errors.Is(err, boom) {
				t.Fatalf("poisoned page: %v, want injected error", err)
			}
			// The system survives: other pages still work afterwards.
			if err := p.Access(va+3*param.PageSize, false); err != nil {
				t.Fatalf("page after poison: %v", err)
			}
			// The poisoned page can be retried (still failing, not wedged).
			if err := p.Access(va+2*param.PageSize, false); !errors.Is(err, boom) {
				t.Fatalf("retry: %v", err)
			}
		})
	}
}

func TestSwapExhaustion(t *testing.T) {
	for name, boot := range boots() {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			// RAM 64 pages, swap 64 slots: ~128 dirty anonymous pages fit
			// at most; far more must eventually fail with a deadlock
			// error rather than hang or corrupt.
			mach := vmapi.NewMachine(vmapi.MachineConfig{
				RAMPages: 64, SwapPages: 64, FSPages: 256, MaxVnodes: 16,
			})
			sys := boot(mach)
			p, _ := sys.NewProcess("glutton")
			const pages = 512
			va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			var failed error
			touched := 0
			for i := 0; i < pages; i++ {
				if err := p.Access(va+param.VAddr(i)*param.PageSize, true); err != nil {
					failed = err
					break
				}
				touched++
			}
			if failed == nil {
				t.Fatalf("touched %d pages with RAM+swap for ~128: no failure?", touched)
			}
			if !errors.Is(failed, vmapi.ErrDeadlock) {
				t.Fatalf("failure was %v, want ErrDeadlock", failed)
			}
			if touched < 100 {
				t.Fatalf("failed after only %d pages; RAM+swap should carry ~128", touched)
			}
			// Recently touched (resident) data is still readable; older
			// pages may need a pagein the exhausted system cannot satisfy,
			// which is the real thrashing-deadlock behaviour.
			b := make([]byte, 1)
			if err := p.ReadBytes(va+param.VAddr(touched-1)*param.PageSize, b); err != nil {
				t.Fatalf("resident data unreadable after exhaustion: %v", err)
			}
			// Releasing memory recovers the system.
			p.Exit()
			if got := mach.Swap.SlotsInUse(); got != 0 {
				t.Fatalf("swap not released after exit: %d", got)
			}
			p2, _ := sys.NewProcess("next")
			va2, _ := p2.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err := p2.TouchRange(va2, 8*param.PageSize, true); err != nil {
				t.Fatalf("system did not recover: %v", err)
			}
		})
	}
}

func TestPageoutWriteErrorKeepsData(t *testing.T) {
	for name, boot := range boots() {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			mach := vmapi.NewMachine(vmapi.MachineConfig{
				RAMPages: 64, SwapPages: 1024, FSPages: 256, MaxVnodes: 16,
			})
			sys := boot(mach)
			// All swap writes fail: the pagedaemon cannot clean anything,
			// but resident data must stay intact and the failure must be
			// a clean error.
			boom := errors.New("write error: swap device gone")
			mach.SwapDisk.FailWrite = func(int64) error { return boom }

			p, _ := sys.NewProcess("writer")
			const pages = 128
			va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			written := 0
			for i := 0; i < pages; i++ {
				if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(i)}); err != nil {
					break
				}
				written++
			}
			if written < 40 {
				t.Fatalf("only %d pages written before failure; RAM alone holds ~64", written)
			}
			// Everything that was written must read back exactly.
			b := make([]byte, 1)
			for i := 0; i < written; i++ {
				if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, b); err != nil {
					t.Fatalf("page %d unreadable: %v", i, err)
				}
				if b[0] != byte(i) {
					t.Fatalf("page %d corrupted after swap failure: %#x", i, b[0])
				}
			}
		})
	}
}

func TestFaultErrorClassesMatch(t *testing.T) {
	// Error classes for the common misuse cases must be identical across
	// systems (complements the randomized differential test).
	cases := []struct {
		name string
		run  func(p vmapi.Process) error
	}{
		{"wild-read", func(p vmapi.Process) error { return p.Access(0x6666_0000, false) }},
		{"wild-write", func(p vmapi.Process) error { return p.Access(0x6666_0000, true) }},
		{"unaligned-munmap", func(p vmapi.Process) error { return p.Munmap(0x1001, param.PageSize) }},
		{"zero-len-mmap", func(p vmapi.Process) error {
			_, err := p.Mmap(0, 0, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			return err
		}},
		{"mlock-unmapped", func(p vmapi.Process) error { return p.Mlock(0x6666_0000, param.PageSize) }},
		{"sysctl-unmapped", func(p vmapi.Process) error { return p.Sysctl(0x6666_0000, param.PageSize) }},
	}
	for _, c := range cases {
		classes := map[string]string{}
		for name, boot := range boots() {
			sys := boot(vmapi.NewMachine(vmapi.MachineConfig{
				RAMPages: 64, SwapPages: 64, FSPages: 64, MaxVnodes: 8,
			}))
			p, _ := sys.NewProcess("p")
			classes[name] = errClass(c.run(p))
		}
		if classes["bsdvm"] != classes["uvm"] {
			t.Errorf("%s: error classes diverge: %v", c.name, classes)
		}
	}
}

var _ = fmt.Sprintf // keep fmt for the failure messages above
