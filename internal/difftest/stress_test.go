package difftest

import (
	"fmt"
	"sync"
	"testing"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

// Race-targeted stress tests for the fine-grained locking in
// internal/uvm. Where concurrency_test.go drives the common vmapi
// surface on both systems, these tests aim at the UVM-only paths the
// big-lock removal opened up — concurrent faults, loanouts, transfers
// and pageout — and verify final memory *contents*, not just absence of
// errors. Run with -race.

// TestConcurrentFaultLoanTransferDisjoint runs N goroutines, each owning
// a disjoint process, through a mixed fault/loan/transfer workload, and
// verifies every byte each goroutine wrote is intact at the end.
func TestConcurrentFaultLoanTransferDisjoint(t *testing.T) {
	mach := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages: 8192, SwapPages: 32768, FSPages: 4096, MaxVnodes: 64,
	})
	sys := uvm.BootConfig(mach, uvm.DefaultConfig())

	const (
		workers = 8
		pages   = 24
		rounds  = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(w)*7919 + 17)
			p, err := sys.NewProcess(fmt.Sprintf("stress%d", w))
			if err != nil {
				errs <- err
				return
			}
			up := p.(*uvm.Process)
			va, err := up.Mmap(0, pages*param.PageSize, param.ProtRW,
				vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				errs <- err
				return
			}
			// shadow mirrors what this goroutine believes its memory holds.
			shadow := make([]byte, pages)
			for r := 0; r < rounds; r++ {
				pg := rng.Intn(pages)
				addr := va + param.VAddr(pg)*param.PageSize
				switch rng.Intn(5) {
				case 0, 1: // plain write fault
					v := byte(rng.Intn(256))
					if err := up.WriteBytes(addr, []byte{v}); err != nil {
						errs <- fmt.Errorf("w%d write: %w", w, err)
						return
					}
					shadow[pg] = v
				case 2: // loanout + return: contents must be stable meanwhile
					loan, err := up.Loanout(addr, 1)
					if err != nil {
						errs <- fmt.Errorf("w%d loanout: %w", w, err)
						return
					}
					if got := loan[0].Data[0]; got != shadow[pg] {
						errs <- fmt.Errorf("w%d loaned page byte = %#x, want %#x", w, got, shadow[pg])
						return
					}
					up.LoanReturn(loan)
				case 3: // kernel-page transfer into our space
					v := byte(rng.Intn(256))
					kp, err := sys.AllocKernelPages(1, func(_ int, buf []byte) { buf[0] = v })
					if err != nil {
						errs <- fmt.Errorf("w%d alloc kernel: %w", w, err)
						return
					}
					tva, err := up.Transfer(kp, param.ProtRW)
					if err != nil {
						errs <- fmt.Errorf("w%d transfer: %w", w, err)
						return
					}
					b := make([]byte, 1)
					if err := up.ReadBytes(tva, b); err != nil {
						errs <- fmt.Errorf("w%d read transferred: %w", w, err)
						return
					}
					if b[0] != v {
						errs <- fmt.Errorf("w%d transferred byte = %#x, want %#x", w, b[0], v)
						return
					}
					if err := up.Munmap(tva, param.PageSize); err != nil {
						errs <- fmt.Errorf("w%d unmap transferred: %w", w, err)
						return
					}
				case 4: // fork + child COW write must not disturb the parent
					ci, err := up.Fork(fmt.Sprintf("stress%dc", w))
					if err != nil {
						errs <- fmt.Errorf("w%d fork: %w", w, err)
						return
					}
					if err := ci.(*uvm.Process).WriteBytes(addr, []byte{0xFF}); err != nil {
						errs <- fmt.Errorf("w%d child write: %w", w, err)
						return
					}
					ci.Exit()
				}
			}
			// Final verification: every page matches the shadow.
			b := make([]byte, 1)
			for pg := 0; pg < pages; pg++ {
				if err := up.ReadBytes(va+param.VAddr(pg)*param.PageSize, b); err != nil {
					errs <- fmt.Errorf("w%d final read %d: %w", w, pg, err)
					return
				}
				if b[0] != shadow[pg] {
					errs <- fmt.Errorf("w%d page %d = %#x, want %#x", w, pg, b[0], shadow[pg])
					return
				}
			}
			up.Exit()
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := mach.Swap.SlotsInUse(); got != 0 {
		t.Errorf("swap leak after stress: %d slots", got)
	}
}

// TestLoanoutVersusPagedaemon races Loanout/LoanReturn against heavy
// memory pressure: a hog process forces continuous pageout while loaner
// goroutines loan their pages out and verify the loaned contents. The
// pagedaemon must never evict a loaned page, and loans must never see
// stale or freed frames.
func TestLoanoutVersusPagedaemon(t *testing.T) {
	mach := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages: 1024, SwapPages: 32768, FSPages: 1024, MaxVnodes: 16,
	})
	sys := uvm.BootConfig(mach, uvm.DefaultConfig())

	const (
		loaners    = 4
		loanPages  = 8
		iterations = 40
	)
	var loanWG, hogWG sync.WaitGroup
	errs := make(chan error, loaners+1)

	// The hog: repeatedly touches twice RAM of anonymous memory, keeping
	// the pagedaemon busy evicting.
	stop := make(chan struct{})
	hogWG.Add(1)
	go func() {
		defer hogWG.Done()
		hog, err := sys.NewProcess("hog")
		if err != nil {
			errs <- err
			return
		}
		defer hog.Exit()
		const hogPages = 2048
		va, err := hog.Mmap(0, hogPages*param.PageSize, param.ProtRW,
			vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		if err != nil {
			errs <- err
			return
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := hog.TouchRange(va, hogPages*param.PageSize, true); err != nil {
				errs <- fmt.Errorf("hog: %w", err)
				return
			}
		}
	}()

	for w := 0; w < loaners; w++ {
		loanWG.Add(1)
		go func(w int) {
			defer loanWG.Done()
			p, err := sys.NewProcess(fmt.Sprintf("loaner%d", w))
			if err != nil {
				errs <- err
				return
			}
			up := p.(*uvm.Process)
			defer up.Exit()
			va, err := up.Mmap(0, loanPages*param.PageSize, param.ProtRW,
				vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < loanPages; i++ {
				if err := up.WriteBytes(va+param.VAddr(i)*param.PageSize,
					[]byte{byte(0x40 + w), byte(i)}); err != nil {
					errs <- err
					return
				}
			}
			for it := 0; it < iterations; it++ {
				loan, err := up.Loanout(va, loanPages)
				if err != nil {
					errs <- fmt.Errorf("loaner%d it%d: %w", w, it, err)
					return
				}
				// While on loan, the pagedaemon must leave the frames
				// alone: the borrower's view stays byte-stable.
				for i, pg := range loan {
					if pg.Data[0] != byte(0x40+w) || pg.Data[1] != byte(i) {
						errs <- fmt.Errorf("loaner%d it%d page %d: borrowed view corrupted: %#x %#x",
							w, it, i, pg.Data[0], pg.Data[1])
						return
					}
				}
				// Owner writes one loaned page: COW must give the owner a
				// private copy without disturbing the borrower.
				victim := it % loanPages
				if err := up.WriteBytes(va+param.VAddr(victim)*param.PageSize,
					[]byte{byte(0x40 + w), byte(victim)}); err != nil {
					errs <- fmt.Errorf("loaner%d it%d cow write: %w", w, it, err)
					return
				}
				for i, pg := range loan {
					if pg.Data[0] != byte(0x40+w) || pg.Data[1] != byte(i) {
						errs <- fmt.Errorf("loaner%d it%d page %d: borrower disturbed by owner write",
							w, it, i)
						return
					}
				}
				up.LoanReturn(loan)
			}
		}(w)
	}

	// Wait for the loaners, then stop the hog.
	loanWG.Wait()
	close(stop)
	hogWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
