package difftest

import (
	"testing"

	"uvm/internal/param"
	"uvm/internal/vmapi"
)

// API-surface tests run identically against both systems.

func TestMincore(t *testing.T) {
	for name, boot := range boots() {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			sys := boot(vmapi.NewMachine(vmapi.MachineConfig{
				RAMPages: 256, SwapPages: 512, FSPages: 256, MaxVnodes: 8,
			}))
			p, _ := sys.NewProcess("p")
			va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)

			res, err := p.Mincore(va, 4*param.PageSize)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range res {
				if r {
					t.Errorf("page %d resident before any touch", i)
				}
			}
			// Touch pages 1 and 3.
			p.Access(va+param.PageSize, true)
			p.Access(va+3*param.PageSize, true)
			res, _ = p.Mincore(va, 4*param.PageSize)
			want := []bool{false, true, false, true}
			for i := range want {
				// Lookahead may map more than touched under UVM; a page we
				// touched must be resident, untouched ones may be either
				// (UVM's lookahead only maps *resident* pages, and these
				// were never created, so they stay false on both systems).
				if want[i] && !res[i] {
					t.Errorf("page %d: resident=%v want %v", i, res[i], want[i])
				}
			}
			if _, err := p.Mincore(va, 0); err == nil {
				t.Error("zero-length mincore accepted")
			}
		})
	}
}

func TestMsyncRangeLimited(t *testing.T) {
	// Regression for range-limited msync: only dirty pages inside the
	// range are written back.
	for name, boot := range boots() {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			mach := vmapi.NewMachine(vmapi.MachineConfig{
				RAMPages: 256, SwapPages: 512, FSPages: 256, MaxVnodes: 8,
			})
			sys := boot(mach)
			mach.FS.Create("/rng", 4*param.PageSize, nil)
			vn, _ := mach.FS.Open("/rng")
			defer vn.Unref()
			p, _ := sys.NewProcess("p")
			va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
			p.WriteBytes(va, []byte{0x11})                  // page 0 dirty
			p.WriteBytes(va+3*param.PageSize, []byte{0x33}) // page 3 dirty

			// Sync only page 0.
			if err := p.Msync(va, param.PageSize); err != nil {
				t.Fatal(err)
			}
			raw := make([]byte, param.PageSize)
			vn.ReadPage(0, raw)
			if raw[0] != 0x11 {
				t.Fatalf("synced page not on disk: %#x", raw[0])
			}
			vn.ReadPage(3, raw)
			if raw[0] == 0x33 {
				t.Fatal("msync wrote back a page outside the requested range")
			}
			// Now sync the rest.
			if err := p.Msync(va+3*param.PageSize, param.PageSize); err != nil {
				t.Fatal(err)
			}
			vn.ReadPage(3, raw)
			if raw[0] != 0x33 {
				t.Fatalf("second msync missed: %#x", raw[0])
			}
		})
	}
}

func TestVforkSemanticsMatch(t *testing.T) {
	for name, boot := range boots() {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			sys := boot(vmapi.NewMachine(vmapi.MachineConfig{
				RAMPages: 256, SwapPages: 512, FSPages: 256, MaxVnodes: 8,
			}))
			p, _ := sys.NewProcess("p")
			va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			p.WriteBytes(va, []byte{1})
			c, err := p.Vfork("c")
			if err != nil {
				t.Fatal(err)
			}
			c.WriteBytes(va, []byte{2})
			b := make([]byte, 1)
			p.ReadBytes(va, b)
			if b[0] != 2 {
				t.Fatalf("vfork not shared: %d", b[0])
			}
			c.Exit()
			p.ReadBytes(va, b)
			if b[0] != 2 {
				t.Fatalf("data lost at vfork exit: %d", b[0])
			}
		})
	}
}

func TestSecondSwapDeviceSpillover(t *testing.T) {
	// swapctl -a: adding a second swap device under pressure lets the
	// workload proceed past the first device's capacity, on both systems.
	for name, boot := range boots() {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			mach := vmapi.NewMachine(vmapi.MachineConfig{
				RAMPages: 64, SwapPages: 64, FSPages: 256, MaxVnodes: 8,
			})
			sys := boot(mach)
			// A second, larger swap device at lower priority.
			mach.Swap.AddDevice(mach.FSDisk, 10) // reuse a spare disk as swap
			p, _ := sys.NewProcess("pig")
			const pages = 160 // needs RAM + both devices
			va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			for i := 0; i < pages; i++ {
				if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(i)}); err != nil {
					t.Fatalf("page %d with two swap devices: %v", i, err)
				}
			}
			b := make([]byte, 1)
			for i := 0; i < pages; i++ {
				if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, b); err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if b[0] != byte(i) {
					t.Fatalf("page %d corrupted across swap devices: %#x", i, b[0])
				}
			}
			if mach.Swap.Devices() != 2 {
				t.Fatal("device count wrong")
			}
		})
	}
}
