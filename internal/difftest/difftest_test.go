// Package difftest runs identical randomized workloads against both VM
// systems and checks that every *user-visible* outcome — data read
// through mappings, fault/no-fault behaviour, error returns — is
// identical. The two systems differ (by design) in structure counts and
// costs; they must never differ in semantics. This is the strongest
// correctness net in the repository: any divergence in COW, inheritance,
// protection or paging behaviour between the implementations surfaces
// here.
package difftest

import (
	"errors"
	"fmt"
	"testing"

	"uvm/internal/bsdvm"
	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/uvm"
	"uvm/internal/vfs"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// world is one system under differential test plus its live handles.
type world struct {
	sys    vmapi.System
	procs  []vmapi.Process
	vnodes []*vfs.Vnode
}

func newWorld(boot vmapi.Booter, files int) (*world, error) {
	mach := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:  1024,
		SwapPages: 8192,
		FSPages:   8192,
		MaxVnodes: 64,
	})
	w := &world{sys: boot(mach)}
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("/data/f%d", i)
		err := mach.FS.Create(name, (2+i%4)*param.PageSize, func(idx int, buf []byte) {
			for j := range buf {
				buf[j] = byte(i*13 + idx*7)
			}
		})
		if err != nil {
			return nil, err
		}
		vn, err := mach.FS.Open(name)
		if err != nil {
			return nil, err
		}
		w.vnodes = append(w.vnodes, vn)
	}
	p, err := w.sys.NewProcess("p0")
	if err != nil {
		return nil, err
	}
	w.procs = append(w.procs, p)
	return w, nil
}

// region tracks a mapping made identically in both worlds.
type region struct {
	proc int
	va   param.VAddr
	sz   param.VSize
	prot param.Prot
}

// errClass folds errors into comparable classes.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, vmapi.ErrFault):
		return "fault"
	case errors.Is(err, vmapi.ErrInvalid):
		return "invalid"
	case errors.Is(err, vmapi.ErrNoSpace):
		return "nospace"
	case errors.Is(err, vmapi.ErrExited):
		return "exited"
	default:
		return "other:" + err.Error()
	}
}

func TestDifferentialRandomWorkload(t *testing.T) {
	const steps = 1200
	for _, s := range []uint64{1999, 4242, 777777} {
		s := s
		t.Run(fmt.Sprintf("seed%d", s), func(t *testing.T) { runDiff(t, s, steps) })
	}
}

func runDiff(t *testing.T, seed uint64, steps int) {
	bw, err := newWorld(bsdvm.Boot, 6)
	if err != nil {
		t.Fatal(err)
	}
	uw, err := newWorld(uvm.Boot, 6)
	if err != nil {
		t.Fatal(err)
	}
	testutil.SweepOnCleanup(t, bw.sys)
	testutil.SweepOnCleanup(t, uw.sys)
	rng := sim.NewRNG(seed)
	var regions []region

	both := func(desc string, f func(*world) (string, string)) {
		t.Helper()
		bRes, bData := f(bw)
		uRes, uData := f(uw)
		if bRes != uRes {
			t.Fatalf("%s: result diverged: bsdvm=%q uvm=%q", desc, bRes, uRes)
		}
		if bData != uData {
			t.Fatalf("%s: data diverged:\n bsdvm=%q\n uvm=%q", desc, bData, uData)
		}
	}

	for step := 0; step < steps; step++ {
		if t.Failed() {
			return
		}
		op := rng.Intn(12)
		switch op {
		case 0, 1: // anonymous mmap
			pages := 1 + rng.Intn(6)
			pi := rng.Intn(len(bw.procs))
			var got param.VAddr
			both(fmt.Sprintf("step %d: anon mmap", step), func(w *world) (string, string) {
				va, err := w.procs[pi].Mmap(0, param.VSize(pages)*param.PageSize,
					param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
				got = va
				return errClass(err), fmt.Sprint(va)
			})
			regions = append(regions, region{pi, got, param.VSize(pages) * param.PageSize, param.ProtRW})
		case 2: // file mmap (private or shared)
			if len(bw.vnodes) == 0 {
				continue
			}
			fi := rng.Intn(len(bw.vnodes))
			pi := rng.Intn(len(bw.procs))
			flags := vmapi.MapPrivate
			if rng.Bool(1, 2) {
				flags = vmapi.MapShared
			}
			var got param.VAddr
			both(fmt.Sprintf("step %d: file mmap", step), func(w *world) (string, string) {
				va, err := w.procs[pi].Mmap(0, 2*param.PageSize, param.ProtRW, flags, w.vnodes[fi], 0)
				got = va
				return errClass(err), fmt.Sprint(va)
			})
			regions = append(regions, region{pi, got, 2 * param.PageSize, param.ProtRW})
		case 3, 4, 5: // read or write somewhere
			if len(regions) == 0 {
				continue
			}
			r := regions[rng.Intn(len(regions))]
			if r.proc >= len(bw.procs) {
				continue
			}
			off := param.VAddr(rng.Intn(int(r.sz)))
			write := rng.Bool(1, 2)
			val := byte(rng.Intn(256))
			both(fmt.Sprintf("step %d: access", step), func(w *world) (string, string) {
				p := w.procs[r.proc]
				if write {
					err := p.WriteBytes(r.va+off, []byte{val})
					return errClass(err), ""
				}
				b := make([]byte, 3)
				err := p.ReadBytes(r.va+off, b)
				if err != nil {
					return errClass(err), ""
				}
				return "ok", fmt.Sprint(b)
			})
		case 6: // munmap part of a region
			if len(regions) == 0 {
				continue
			}
			i := rng.Intn(len(regions))
			r := regions[i]
			both(fmt.Sprintf("step %d: munmap", step), func(w *world) (string, string) {
				err := w.procs[r.proc].Munmap(r.va, r.sz)
				return errClass(err), ""
			})
			regions = append(regions[:i], regions[i+1:]...)
		case 7: // mprotect cycle
			if len(regions) == 0 {
				continue
			}
			r := regions[rng.Intn(len(regions))]
			both(fmt.Sprintf("step %d: mprotect", step), func(w *world) (string, string) {
				p := w.procs[r.proc]
				e1 := p.Mprotect(r.va, r.sz, param.ProtRead)
				// A write through the read-only mapping must fault in both.
				e2 := p.Access(r.va, true)
				e3 := p.Mprotect(r.va, r.sz, param.ProtRW)
				return errClass(e1) + "/" + errClass(e2) + "/" + errClass(e3), ""
			})
		case 8: // fork
			if len(bw.procs) >= 6 {
				continue
			}
			pi := rng.Intn(len(bw.procs))
			name := fmt.Sprintf("p%d", step)
			ok := true
			both(fmt.Sprintf("step %d: fork", step), func(w *world) (string, string) {
				c, err := w.procs[pi].Fork(name)
				if err != nil {
					ok = false
					return errClass(err), ""
				}
				w.procs = append(w.procs, c)
				return "ok", ""
			})
			_ = ok
		case 9: // exit a non-root process
			if len(bw.procs) <= 1 {
				continue
			}
			i := 1 + rng.Intn(len(bw.procs)-1)
			both(fmt.Sprintf("step %d: exit", step), func(w *world) (string, string) {
				w.procs[i].Exit()
				w.procs = append(w.procs[:i], w.procs[i+1:]...)
				return "ok", ""
			})
			// Regions belonging to removed/reindexed procs are dropped to
			// keep indices aligned (identically for both worlds).
			var keep []region
			for _, r := range regions {
				if r.proc < i {
					keep = append(keep, r)
				}
			}
			regions = keep
		case 10: // minherit + fork semantics
			if len(regions) == 0 || len(bw.procs) >= 6 {
				continue
			}
			r := regions[rng.Intn(len(regions))]
			inh := []param.Inherit{param.InheritCopy, param.InheritShare, param.InheritNone}[rng.Intn(3)]
			both(fmt.Sprintf("step %d: minherit %v", step, inh), func(w *world) (string, string) {
				err := w.procs[r.proc].Minherit(r.va, r.sz, inh)
				return errClass(err), ""
			})
		case 11: // unmapped access faults identically
			both(fmt.Sprintf("step %d: wild access", step), func(w *world) (string, string) {
				err := w.procs[0].Access(0x7f00_0000+param.VAddr(rng.Intn(100))*param.PageSize, rng.Bool(1, 2))
				return errClass(err), ""
			})
		}
	}

	// Final sweep: every mapped byte must read identically.
	for _, r := range regions {
		if r.proc >= len(bw.procs) {
			continue
		}
		buf := make([]byte, 16)
		both("final sweep", func(w *world) (string, string) {
			err := w.procs[r.proc].ReadBytes(r.va, buf)
			return errClass(err), fmt.Sprint(buf)
		})
	}
}

func TestDifferentialUnderMemoryPressure(t *testing.T) {
	// Same comparison with RAM small enough that both systems page
	// constantly: swap round-trips must preserve identical data.
	mk := func(boot vmapi.Booter) (vmapi.System, vmapi.Process) {
		mach := vmapi.NewMachine(vmapi.MachineConfig{
			RAMPages: 96, SwapPages: 2048, FSPages: 1024, MaxVnodes: 16,
		})
		sys := boot(mach)
		p, err := sys.NewProcess("pig")
		if err != nil {
			t.Fatal(err)
		}
		return sys, p
	}
	_, bp := mk(bsdvm.Boot)
	_, up := mk(uvm.Boot)

	const pages = 256
	bva, err := bp.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	uva, err := up.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(20250612)
	// Random writes across 1 MB on a 384 KB machine.
	for i := 0; i < 2000; i++ {
		pg := rng.Intn(pages)
		val := []byte{byte(pg), byte(i)}
		if err := bp.WriteBytes(bva+param.VAddr(pg)*param.PageSize, val); err != nil {
			t.Fatalf("bsd write %d: %v", i, err)
		}
		if err := up.WriteBytes(uva+param.VAddr(pg)*param.PageSize, val); err != nil {
			t.Fatalf("uvm write %d: %v", i, err)
		}
	}
	bb, ub := make([]byte, 2), make([]byte, 2)
	for pg := 0; pg < pages; pg++ {
		if err := bp.ReadBytes(bva+param.VAddr(pg)*param.PageSize, bb); err != nil {
			t.Fatalf("bsd read %d: %v", pg, err)
		}
		if err := up.ReadBytes(uva+param.VAddr(pg)*param.PageSize, ub); err != nil {
			t.Fatalf("uvm read %d: %v", pg, err)
		}
		if bb[0] != ub[0] || bb[1] != ub[1] {
			t.Fatalf("page %d diverged through swap: bsd=%v uvm=%v", pg, bb, ub)
		}
	}
}
