package difftest

import (
	"testing"

	"uvm/internal/param"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// Range-clipping difftests: Madvise, Minherit and Mprotect must apply to
// exactly the pages the (page-rounded) range touches — never bleeding
// onto the rest of a large entry, and never corrupting entry geometry
// when the caller passes an unaligned address — and both systems must
// agree.

// clipMachine boots one system on a small standard machine.
func clipMachine(boot vmapi.Booter) (vmapi.System, *vmapi.Machine) {
	mach := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages: 256, SwapPages: 512, FSPages: 256, MaxVnodes: 8,
	})
	return boot(mach), mach
}

// TestMinheritClipsToRange: InheritNone applied (with an unaligned
// address) to the middle pages of a 16-page entry must leave the outer
// pages inherited. Both systems must produce the same child image and
// the same entry split.
func TestMinheritClipsToRange(t *testing.T) {
	// entries is the entry-count *delta* of the split: absolute counts
	// differ by design (BSD VM keeps page-table placeholder entries in
	// the process map — a Table 1 difference).
	type result struct {
		entries   int
		childData [16]byte
		childErrs [16]bool
	}
	results := map[string]result{}
	for name, boot := range boots() {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			sys, _ := clipMachine(boot)
			defer testutil.ShutdownSweep(t, sys)
			p, err := sys.NewProcess("parent")
			if err != nil {
				t.Fatal(err)
			}
			va, err := p.Mmap(0, 16*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{0x40 + byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			// Unaligned address inside page 4, length covering through
			// page 7: pages 4..7 — and only they — become InheritNone.
			before := p.MapEntryCount()
			if err := p.Minherit(va+4*param.PageSize+123, 3*param.PageSize+100, param.InheritNone); err != nil {
				t.Fatal(err)
			}
			child, err := p.Fork("child")
			if err != nil {
				t.Fatal(err)
			}
			var r result
			r.entries = p.MapEntryCount() - before
			buf := make([]byte, 1)
			for i := 0; i < 16; i++ {
				err := child.ReadBytes(va+param.VAddr(i)*param.PageSize, buf)
				r.childErrs[i] = err != nil
				if err == nil {
					r.childData[i] = buf[0]
				}
				wantHole := i >= 4 && i <= 7
				if wantHole != r.childErrs[i] {
					t.Errorf("page %d: child access err=%v, want hole=%v", i, err, wantHole)
				}
				if !wantHole && err == nil && buf[0] != 0x40+byte(i) {
					t.Errorf("page %d: child read %#x, want %#x", i, buf[0], 0x40+byte(i))
				}
			}
			// Parent must still see everything.
			for i := 0; i < 16; i++ {
				if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, buf); err != nil {
					t.Errorf("parent page %d unreadable after clip: %v", i, err)
				}
			}
			results[name] = r
		})
	}
	if len(results) == 2 && results["bsdvm"] != results["uvm"] {
		t.Errorf("systems diverged: bsdvm %+v vs uvm %+v", results["bsdvm"], results["uvm"])
	}
}

// TestMadviseClipsToRange: advice on a sub-range of a large entry splits
// the entry at page boundaries (three entries afterwards) and both
// systems agree on the split; the mapping stays fully usable, including
// across the clip boundaries.
func TestMadviseClipsToRange(t *testing.T) {
	entryCounts := map[string]int{}
	for name, boot := range boots() {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			sys, _ := clipMachine(boot)
			defer testutil.ShutdownSweep(t, sys)
			p, err := sys.NewProcess("p")
			if err != nil {
				t.Fatal(err)
			}
			va, err := p.Mmap(0, 16*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			before := p.MapEntryCount()
			// Unaligned address in page 5, end inside page 10: pages 5..10.
			if err := p.Madvise(va+5*param.PageSize+7, 5*param.PageSize+1, param.AdviceSequential); err != nil {
				t.Fatal(err)
			}
			after := p.MapEntryCount()
			if after != before+2 {
				t.Errorf("madvise split %d->%d entries, want a 3-way split (+2)", before, after)
			}
			entryCounts[name] = after - before
			// Every page — clipped and not — still faults and round-trips.
			for i := 0; i < 16; i++ {
				addr := va + param.VAddr(i)*param.PageSize
				if err := p.WriteBytes(addr, []byte{byte(i)}); err != nil {
					t.Fatalf("page %d unusable after clip: %v", i, err)
				}
			}
			buf := make([]byte, 1)
			for i := 0; i < 16; i++ {
				if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, buf); err != nil || buf[0] != byte(i) {
					t.Fatalf("page %d lost after clip: %v %#x", i, err, buf[0])
				}
			}
		})
	}
	if len(entryCounts) == 2 && entryCounts["bsdvm"] != entryCounts["uvm"] {
		t.Errorf("entry splits diverged: bsdvm %d vs uvm %d", entryCounts["bsdvm"], entryCounts["uvm"])
	}
}

// TestMprotectClipsToRange: an unaligned mprotect covers exactly the
// pages its rounded range touches — the neighbouring pages keep their
// protection — and both systems agree.
func TestMprotectClipsToRange(t *testing.T) {
	for name, boot := range boots() {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			sys, _ := clipMachine(boot)
			defer testutil.ShutdownSweep(t, sys)
			p, err := sys.NewProcess("p")
			if err != nil {
				t.Fatal(err)
			}
			va, err := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			// Unaligned: covers pages 2..4 after rounding.
			if err := p.Mprotect(va+2*param.PageSize+55, 2*param.PageSize+10, param.ProtRead); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 8; i++ {
				err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{0x80 + byte(i)})
				wantDenied := i >= 2 && i <= 4
				if wantDenied != (err != nil) {
					t.Errorf("page %d: write err=%v, want denied=%v", i, err, wantDenied)
				}
			}
		})
	}
}
