package difftest

import (
	"fmt"
	"sync"
	"testing"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
)

// Concurrency: both systems serialise kernel entry behind a big lock
// (like a pre-SMP BSD kernel), but the public API must be safe to drive
// from many goroutines at once — no data races (run with -race), no lost
// updates, and per-goroutine data integrity.

func TestConcurrentProcesses(t *testing.T) {
	for name, boot := range boots() {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			mach := vmapi.NewMachine(vmapi.MachineConfig{
				RAMPages: 4096, SwapPages: 16384, FSPages: 4096, MaxVnodes: 64,
			})
			sys := boot(mach)
			const workers = 8
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := sim.NewRNG(uint64(w) + 1)
					p, err := sys.NewProcess(fmt.Sprintf("w%d", w))
					if err != nil {
						errs <- err
						return
					}
					va, err := p.Mmap(0, 16*param.PageSize, param.ProtRW,
						vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
					if err != nil {
						errs <- err
						return
					}
					// Each worker writes its own tag and must always read
					// it back, whatever the others do.
					for i := 0; i < 200; i++ {
						pg := rng.Intn(16)
						addr := va + param.VAddr(pg)*param.PageSize
						if err := p.WriteBytes(addr, []byte{byte(w), byte(pg)}); err != nil {
							errs <- fmt.Errorf("w%d write: %w", w, err)
							return
						}
						b := make([]byte, 2)
						if err := p.ReadBytes(addr, b); err != nil {
							errs <- fmt.Errorf("w%d read: %w", w, err)
							return
						}
						if b[0] != byte(w) || b[1] != byte(pg) {
							errs <- fmt.Errorf("w%d: cross-process corruption: %v", w, b)
							return
						}
						if i%50 == 0 {
							c, err := p.Fork(fmt.Sprintf("w%dc%d", w, i))
							if err != nil {
								errs <- err
								return
							}
							c.Exit()
						}
					}
					p.Exit()
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if got := mach.Swap.SlotsInUse(); got != 0 {
				t.Errorf("swap leak after concurrent run: %d", got)
			}
		})
	}
}

func TestConcurrentSharedFile(t *testing.T) {
	// Many processes hammer one shared file mapping; last-writer-wins per
	// byte is unverifiable under concurrency, but every read must return
	// a byte some writer wrote (never garbage), and the system must not
	// race internally.
	for name, boot := range boots() {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			mach := vmapi.NewMachine(vmapi.MachineConfig{
				RAMPages: 1024, SwapPages: 4096, FSPages: 1024, MaxVnodes: 32,
			})
			sys := boot(mach)
			mach.FS.Create("/shared", 4*param.PageSize, nil)

			const workers = 6
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					vn, err := mach.FS.Open("/shared")
					if err != nil {
						errs <- err
						return
					}
					defer vn.Unref()
					p, err := sys.NewProcess(fmt.Sprintf("s%d", w))
					if err != nil {
						errs <- err
						return
					}
					defer p.Exit()
					va, err := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
					if err != nil {
						errs <- err
						return
					}
					for i := 0; i < 100; i++ {
						if err := p.WriteBytes(va+param.VAddr(i%4)*param.PageSize, []byte{0xA0 | byte(w)}); err != nil {
							errs <- err
							return
						}
						b := make([]byte, 1)
						if err := p.ReadBytes(va+param.VAddr(i%4)*param.PageSize, b); err != nil {
							errs <- err
							return
						}
						if b[0]&0xF0 != 0xA0 && b[0] != 0 {
							errs <- fmt.Errorf("garbage byte %#x", b[0])
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}
