// Package histogram provides a lock-free, fixed-bucket latency
// histogram for hot paths that record one duration per operation from
// many goroutines — the traffic driver times every page fault through
// one of these.
//
// The layout is log-linear (the HdrHistogram idea, shrunk to what the
// simulation needs): values below subCount nanoseconds get their own
// bucket; above that, each power-of-two range is split into subCount
// linear sub-buckets, so the worst-case quantile error is 1/subCount
// (~6%) at every magnitude. The bucket count is fixed at construction —
// no allocation, no resizing, no locks on the record path — so Record
// is a single atomic add on an array cell plus one on the total, safe
// from any number of goroutines.
//
// Recording is lock-free but not snapshot-consistent: a Quantile taken
// while writers are still recording sees some prefix of their updates.
// The intended protocol is the one the traffic driver uses — each
// worker records into its own shard and the shards are Merged after the
// workers join — which also keeps the hot cells out of false sharing.
package histogram

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

const (
	// subBits sets the linear resolution within each power-of-two range:
	// 2^subBits sub-buckets, so quantiles are exact to ~1/2^subBits.
	subBits  = 4
	subCount = 1 << subBits

	// maxExp is the largest power-of-two range with its own sub-buckets.
	// With subBits=4 the top bucket's upper bound is (2*subCount<<maxExp)-1
	// nanoseconds ≈ 39 hours; anything larger clamps into the last bucket.
	maxExp = 42

	// NumBuckets is the fixed bucket count of every Hist.
	NumBuckets = (maxExp + 2) * subCount
)

// Hist is one histogram: a fixed array of atomic bucket counters plus a
// total count and an exact running maximum. The zero value is NOT ready
// to use — call New (the struct is large and must not be copied once
// recording has started).
type Hist struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	max     atomic.Int64
}

// New returns an empty histogram.
func New() *Hist { return &Hist{} }

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 - subBits // ≥ 0 here
	if exp > maxExp {
		return NumBuckets - 1
	}
	sub := int(v >> uint(exp)) // in [subCount, 2*subCount)
	return (exp+1)*subCount + (sub - subCount)
}

// bucketUpper returns the largest nanosecond value bucket idx holds —
// the value quantiles report for ranks landing in the bucket.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	exp := idx/subCount - 1
	sub := int64(idx%subCount + subCount)
	return ((sub + 1) << uint(exp)) - 1
}

// Record adds one observation. Negative durations clamp to zero (the
// wall clock can step backwards under NTP; a latency cannot).
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return h.count.Load() }

// Max returns the largest recorded value exactly (not bucket-rounded);
// zero if nothing was recorded.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Merge folds o's observations into h. The usual pattern is one shard
// per worker goroutine, merged after the workers join; merging a shard
// that is still being recorded into yields a prefix, not corruption.
func (h *Hist) Merge(o *Hist) {
	total := int64(0)
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
			total += n
		}
	}
	h.count.Add(total)
	for {
		cur, om := h.max.Load(), o.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound of
// the bucket holding the ⌈q·count⌉-th smallest observation (so
// Quantile(0) is the first observation's bucket and Quantile(1) the
// last's). Zero if nothing was recorded.
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return time.Duration(bucketUpper(i))
		}
	}
	return h.Max() // writers raced the walk: report the max we saw
}

// P50 is Quantile(0.50).
func (h *Hist) P50() time.Duration { return h.Quantile(0.50) }

// P99 is Quantile(0.99).
func (h *Hist) P99() time.Duration { return h.Quantile(0.99) }

// P999 is Quantile(0.999).
func (h *Hist) P999() time.Duration { return h.Quantile(0.999) }

// String renders the summary line reports print.
func (h *Hist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d p50=%v p99=%v p999=%v max=%v",
		h.Count(), h.P50(), h.P99(), h.P999(), h.Max())
	return b.String()
}
