package histogram

import (
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log-linear bucket map: values below
// subCount get exact buckets, each power-of-two range above splits into
// subCount sub-buckets, and every value maps into a bucket whose bounds
// contain it.
func TestBucketBoundaries(t *testing.T) {
	// The linear range is exact: value v lives in bucket v with upper
	// bound v.
	for v := int64(0); v < subCount; v++ {
		if idx := bucketIndex(v); idx != int(v) {
			t.Errorf("bucketIndex(%d) = %d, want %d", v, idx, v)
		}
		if up := bucketUpper(int(v)); up != v {
			t.Errorf("bucketUpper(%d) = %d, want %d", v, up, v)
		}
	}
	// The first sub-bucketed ranges stay exact while the value still fits
	// in subBits+1 bits ([16,31] has 16 sub-buckets of width 1).
	for v := int64(subCount); v < 2*subCount; v++ {
		if up := bucketUpper(bucketIndex(v)); up != v {
			t.Errorf("value %d rounds to %d, want exact", v, up)
		}
	}
	// Beyond that, a value's bucket upper bound is ≥ the value and within
	// a 1/subCount relative error.
	for _, v := range []int64{32, 33, 100, 1000, 12345, 1 << 20, 1<<30 + 7, 1 << 40} {
		idx := bucketIndex(v)
		up := bucketUpper(idx)
		if up < v {
			t.Errorf("bucketUpper(bucketIndex(%d)) = %d < value", v, up)
		}
		if float64(up-v) > float64(v)/subCount {
			t.Errorf("value %d rounds to %d: error beyond 1/%d", v, up, subCount)
		}
		// Buckets are ordered: the previous bucket's bound is below v.
		if idx > 0 && bucketUpper(idx-1) >= v {
			t.Errorf("value %d not in bucket %d: previous bound %d", v, idx, bucketUpper(idx-1))
		}
	}
	// Values beyond the top range clamp into the last bucket instead of
	// indexing out of bounds.
	if idx := bucketIndex(1 << 62); idx != NumBuckets-1 {
		t.Errorf("huge value bucket = %d, want %d", idx, NumBuckets-1)
	}
}

// TestExactQuantiles checks quantiles on a known input set that lies
// entirely in the exact (linear) range: 16 observations of 0..15 ns.
func TestExactQuantiles(t *testing.T) {
	h := New()
	for v := 0; v < 16; v++ {
		h.Record(time.Duration(v))
	}
	if h.Count() != 16 {
		t.Fatalf("count = %d, want 16", h.Count())
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 0},      // first observation
		{0.5, 7},    // 8th smallest of 16
		{0.25, 3},   // 4th smallest
		{0.99, 15},  // rank 16
		{0.999, 15}, // rank 16
		{1, 15},     // last observation
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if h.Max() != 15 {
		t.Errorf("Max = %v, want 15ns", h.Max())
	}
}

// TestQuantilesSkewed checks the tail on a skewed distribution: 998
// fast observations and two slow ones; p99 stays fast, p999 (rank 999
// of 1000) and max see the outliers.
func TestQuantilesSkewed(t *testing.T) {
	h := New()
	for i := 0; i < 998; i++ {
		h.Record(10)
	}
	h.Record(time.Millisecond)
	h.Record(time.Millisecond)
	if got := h.P50(); got != 10 {
		t.Errorf("p50 = %v, want 10ns", got)
	}
	if got := h.P99(); got != 10 {
		t.Errorf("p99 = %v, want 10ns", got)
	}
	if got := h.P999(); got < time.Millisecond {
		t.Errorf("p999 = %v, want ≥ 1ms (the outlier's bucket)", got)
	}
	if h.Max() != time.Millisecond {
		t.Errorf("max = %v, want exactly 1ms", h.Max())
	}
}

// TestEmptyHist pins the zero-observation behaviour.
func TestEmptyHist(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.P50() != 0 || h.P999() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram not all-zero: %s", h)
	}
}

// TestMergeShards checks that per-worker shards merged into one
// histogram report exactly what a single histogram fed all the
// observations would: counts add, buckets add, the max propagates.
func TestMergeShards(t *testing.T) {
	shards := []*Hist{New(), New(), New()}
	whole := New()
	v := time.Duration(1)
	for i := 0; i < 300; i++ {
		shards[i%3].Record(v)
		whole.Record(v)
		v = (v*7 + 3) % 100_000 // deterministic spread over several ranges
	}
	merged := New()
	for _, sh := range shards {
		merged.Merge(sh)
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d != whole count %d", merged.Count(), whole.Count())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
			t.Errorf("Quantile(%v): merged %v != whole %v", q, m, w)
		}
	}
	if merged.Max() != whole.Max() {
		t.Errorf("merged max %v != whole max %v", merged.Max(), whole.Max())
	}
}

// TestHistConcurrentRecord is the -race stress: 8 goroutines hammer one
// histogram (the shared-sink pattern) while 8 more record into private
// shards that are merged after the join. Totals must come out exact.
func TestHistConcurrentRecord(t *testing.T) {
	const (
		workers = 8
		perW    = 20_000
	)
	shared := New()
	shards := make([]*Hist, workers)
	for i := range shards {
		shards[i] = New()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := time.Duration(w + 1)
			for i := 0; i < perW; i++ {
				shared.Record(v)
				shards[w].Record(v)
				v = (v*13 + 7) % 1_000_000
			}
		}(w)
	}
	wg.Wait()
	if shared.Count() != workers*perW {
		t.Errorf("shared count = %d, want %d", shared.Count(), workers*perW)
	}
	merged := New()
	for _, sh := range shards {
		merged.Merge(sh)
	}
	if merged.Count() != workers*perW {
		t.Errorf("merged count = %d, want %d", merged.Count(), workers*perW)
	}
	// Identical observation streams: the shared sink and the merged
	// shards must agree bucket-for-bucket, so every quantile matches.
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if s, m := shared.Quantile(q), merged.Quantile(q); s != m {
			t.Errorf("Quantile(%v): shared %v != merged %v", q, s, m)
		}
	}
}
