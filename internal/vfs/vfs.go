// Package vfs is the simulated vnode layer: files laid out on the
// simulated disk, an in-kernel vnode table, and — crucially for Figure 2 —
// the vnode cache with LRU recycling.
//
// In 4.4BSD, unreferenced vnodes persist on a free list in the hope of
// being reused; when the kernel needs a vnode and the table is at
// `desiredvnodes`, the least recently used unreferenced vnode is recycled.
// The two VM systems interact with this cache very differently (paper §4):
//
//   - BSD VM keeps its own, separate, 100-entry cache of unreferenced
//     memory objects, and each cached object holds a *reference* on its
//     vnode — pinning the vnode active and distorting the vnode LRU.
//   - UVM has no second cache. Its memory object is embedded in the vnode,
//     file pages stay attached while the vnode persists, and when the
//     vnode layer recycles a vnode it calls the VM hook (OnRecycle) to
//     terminate the embedded object.
package vfs

import (
	"errors"
	"fmt"
	"sync"

	"uvm/internal/disk"
	"uvm/internal/param"
	"uvm/internal/sim"
)

// Errors returned by the vnode layer.
var (
	ErrNotFound  = errors.New("vfs: no such file")
	ErrExists    = errors.New("vfs: file exists")
	ErrTooMany   = errors.New("vfs: out of vnodes") // ENFILE
	ErrBadOffset = errors.New("vfs: offset beyond end of file")
)

// file is the on-disk identity (the "inode"): it survives vnode recycling.
type file struct {
	name   string
	size   int   // bytes
	start  int64 // first disk block of the contiguous extent
	npages int
}

// Vnode is an in-core file handle. VMObj is the hook where a VM system
// hangs its memory-object state: UVM embeds its uvm_object here (one
// allocation, no hash table); BSD VM stores a back pointer to its
// separately-allocated vm_object.
type Vnode struct {
	fs *FS
	f  *file

	refs int
	lru  int64 // sequence number of last deref, for LRU ordering

	// VMObj and OnRecycle belong to the VM system that memory-mapped this
	// file. OnRecycle is invoked when the vnode layer recycles the vnode;
	// the VM must drop pages and forget the object.
	VMObj     any
	OnRecycle func(*Vnode)
}

// GetVMObj returns the VM object hung on this vnode, if any. Guarded by
// the filesystem lock: vnode recycling clears the hook concurrently with
// VM systems consulting it.
func (v *Vnode) GetVMObj() any {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	return v.VMObj
}

// SetVMObj installs (or clears, with nils) the VM object and recycle
// hook under the filesystem lock.
func (v *Vnode) SetVMObj(obj any, onRecycle func(*Vnode)) {
	v.fs.mu.Lock()
	v.VMObj = obj
	v.OnRecycle = onRecycle
	v.fs.mu.Unlock()
}

// Name returns the file's path name.
func (v *Vnode) Name() string { return v.f.name }

// Size returns the file size in bytes.
func (v *Vnode) Size() int { return v.f.size }

// NumPages returns the file size in pages.
func (v *Vnode) NumPages() int { return v.f.npages }

// Refs returns the current use count (test/debug).
func (v *Vnode) Refs() int {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	return v.refs
}

// String formats the vnode's identity and state for logs and errors.
func (v *Vnode) String() string {
	return fmt.Sprintf("vnode(%s size=%d refs=%d)", v.f.name, v.f.size, v.refs)
}

// ReadPage reads page idx of the file from disk into buf.
func (v *Vnode) ReadPage(idx int, buf []byte) error {
	if idx < 0 || idx >= v.f.npages {
		return ErrBadOffset
	}
	return v.fs.dev.ReadPages(v.f.start+int64(idx), [][]byte{buf})
}

// ReadPages reads n consecutive pages starting at idx in a single I/O.
func (v *Vnode) ReadPages(idx int, bufs [][]byte) error {
	if idx < 0 || idx+len(bufs) > v.f.npages {
		return ErrBadOffset
	}
	return v.fs.dev.ReadPages(v.f.start+int64(idx), bufs)
}

// WritePage writes page idx of the file back to disk synchronously.
func (v *Vnode) WritePage(idx int, buf []byte) error {
	if idx < 0 || idx >= v.f.npages {
		return ErrBadOffset
	}
	return v.fs.dev.WritePages(v.f.start+int64(idx), [][]byte{buf})
}

// ReadPageAsync reads page idx as an asynchronous read-ahead: the data
// arrives without the caller waiting for the disk (the I/O overlaps the
// caller's execution).
func (v *Vnode) ReadPageAsync(idx int, buf []byte) error {
	if idx < 0 || idx >= v.f.npages {
		return ErrBadOffset
	}
	return v.fs.dev.ReadPagesDeferred(v.f.start+int64(idx), [][]byte{buf})
}

// WritePageAsync queues page idx for write-back through the buffer cache:
// the caller pays only the in-memory copy; the disk write happens "later"
// (the data is durable immediately in the simulation, but no disk time is
// charged to the caller — matching a bdwrite of a dirty mapped page).
func (v *Vnode) WritePageAsync(idx int, buf []byte) error {
	if idx < 0 || idx >= v.f.npages {
		return ErrBadOffset
	}
	v.fs.clock.Advance(v.fs.costs.PageCopy)
	v.fs.stats.Inc("vfs.asyncwrites")
	return v.fs.dev.WritePagesDeferred(v.f.start+int64(idx), [][]byte{buf})
}

// WriteClusterAsync queues len(bufs) consecutive pages starting at idx
// for asynchronous write-back through the filesystem's bounded in-flight
// write window (the same disk.AsyncWriter engine that backs swap's async
// cluster pageout). The submitter pays only the in-memory copies and
// blocks only while the window is full; done is invoked exactly once,
// from another goroutine, with the write's result, and the caller must
// treat the buffers as owned by the I/O until then. This is the vnode
// backend of UVM's object writeback pipeline (msync, vnode recycling).
func (v *Vnode) WriteClusterAsync(idx int, bufs [][]byte, done func(error)) error {
	if idx < 0 || idx+len(bufs) > v.f.npages {
		return ErrBadOffset
	}
	v.fs.clock.ChargeN(len(bufs), v.fs.costs.PageCopy)
	v.fs.stats.Inc("vfs.aio.writes")
	v.fs.stats.Add("vfs.aio.pages", int64(len(bufs)))
	v.fs.writer().Submit(v.f.start+int64(idx), bufs, done)
	return nil
}

// Ref takes an additional use reference (vref).
func (v *Vnode) Ref() {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	if v.refs <= 0 {
		panic("vfs: Ref on inactive vnode (use Open)")
	}
	v.refs++
}

// Unref drops a use reference (vrele). At zero the vnode moves to the free
// list, its pages — if a VM system left any attached — intact, awaiting
// either reuse or recycling.
func (v *Vnode) Unref() {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	if v.refs <= 0 {
		panic("vfs: Unref underflow on " + v.f.name)
	}
	v.refs--
	if v.refs == 0 {
		v.fs.lruSeq++
		v.lru = v.fs.lruSeq
	}
}

// FS is the simulated filesystem + vnode cache.
type FS struct {
	clock *sim.Clock
	costs *sim.Costs
	stats *sim.Stats
	dev   *disk.Disk

	//uvm:lock vfs
	mu        sync.Mutex
	files     map[string]*file
	vnodes    map[string]*Vnode // in-core vnodes, active or free
	maxVnodes int
	lruSeq    int64

	// Asynchronous write-back state: one bounded-window writer for the
	// filesystem disk (created lazily with awWindow), shared by every
	// vnode's WriteClusterAsync.
	//uvm:lock vfsaw
	awMu     sync.Mutex
	aw       *disk.AsyncWriter
	awWindow int
}

// writer returns the filesystem's async writer, creating it with the
// configured window on first use.
func (fs *FS) writer() *disk.AsyncWriter {
	fs.awMu.Lock()
	defer fs.awMu.Unlock()
	if fs.aw == nil {
		fs.aw = disk.NewAsyncWriter(fs.dev, fs.awWindow)
	}
	return fs.aw
}

// SetWriteWindow sets the in-flight window for asynchronous vnode write
// clusters; n <= 0 keeps disk.DefaultAIOWindow. The change is live: an
// already-created writer is resized immediately — writes admitted under
// an old, larger window complete and drain normally, new submissions
// wait for the in-flight count to fall under the new bound. Safe to call
// at any time, concurrently with WriteClusterAsync (the control plane
// resizes the window from observed completion latency).
func (fs *FS) SetWriteWindow(n int) {
	fs.awMu.Lock()
	fs.awWindow = n
	aw := fs.aw
	fs.awMu.Unlock()
	if aw != nil {
		aw.SetWindow(n)
	}
}

// WriteWindow returns the current in-flight window for asynchronous
// vnode write clusters (test/debug helper).
func (fs *FS) WriteWindow() int {
	fs.awMu.Lock()
	aw, win := fs.aw, fs.awWindow
	fs.awMu.Unlock()
	if aw != nil {
		return aw.Window()
	}
	if win <= 0 {
		return disk.DefaultAIOWindow
	}
	return win
}

// DrainWrites blocks until every asynchronous vnode cluster write
// submitted so far has completed (its done callback has returned).
func (fs *FS) DrainWrites() {
	fs.awMu.Lock()
	aw := fs.aw
	fs.awMu.Unlock()
	if aw != nil {
		aw.Drain()
	}
}

// WritesInFlight returns the number of asynchronous vnode cluster writes
// submitted but not yet completed (test/debug helper).
func (fs *FS) WritesInFlight() int {
	fs.awMu.Lock()
	aw := fs.aw
	fs.awMu.Unlock()
	if aw == nil {
		return 0
	}
	return aw.InFlight()
}

// NewFS creates a filesystem on dev with an in-core table of maxVnodes
// vnodes (the kernel's `desiredvnodes`).
func NewFS(clock *sim.Clock, costs *sim.Costs, stats *sim.Stats, dev *disk.Disk, maxVnodes int) *FS {
	if maxVnodes < 1 {
		panic("vfs: need at least one vnode")
	}
	return &FS{
		clock: clock, costs: costs, stats: stats, dev: dev,
		files:     make(map[string]*file),
		vnodes:    make(map[string]*Vnode),
		maxVnodes: maxVnodes,
	}
}

// MaxVnodes returns the vnode table capacity.
func (fs *FS) MaxVnodes() int { return fs.maxVnodes }

// Create makes a file of the given size. fill, if non-nil, provides the
// initial content of each page; the data is written through to disk.
func (fs *FS) Create(name string, size int, fill func(pageIdx int, buf []byte)) error {
	fs.mu.Lock()
	if _, ok := fs.files[name]; ok {
		fs.mu.Unlock()
		return ErrExists
	}
	fs.mu.Unlock()

	npages := param.Pages(param.VSize(size))
	if npages == 0 {
		npages = 1 // zero-length files still own a block for simplicity
	}
	start, err := fs.dev.Alloc(int64(npages))
	if err != nil {
		return err
	}
	if fill != nil {
		bufs := make([][]byte, npages)
		arena := make([]byte, npages*param.PageSize)
		for i := range bufs {
			bufs[i] = arena[i*param.PageSize : (i+1)*param.PageSize]
			fill(i, bufs[i])
		}
		if err := fs.dev.WritePages(start, bufs); err != nil {
			return err
		}
	}
	fs.mu.Lock()
	fs.files[name] = &file{name: name, size: size, start: start, npages: npages}
	fs.mu.Unlock()
	return nil
}

// Open looks a file up and returns a referenced vnode, allocating or
// reusing an in-core vnode (namei + vget). If the table is full, the least
// recently used unreferenced vnode is recycled — invoking its VM hook.
func (fs *FS) Open(name string) (*Vnode, error) {
	fs.clock.Advance(fs.costs.NameLookup)
	fs.mu.Lock()

	f, ok := fs.files[name]
	if !ok {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if v, ok := fs.vnodes[name]; ok {
		// Cache hit: possibly reactivating a free-list vnode, with any VM
		// pages still attached — this is the path that makes UVM fast in
		// Figure 2.
		v.refs++
		fs.mu.Unlock()
		return v, nil
	}

	// Need a new vnode; recycle if the table is full.
	if len(fs.vnodes) >= fs.maxVnodes {
		victim := fs.lruVictimLocked()
		if victim == nil {
			fs.mu.Unlock()
			return nil, ErrTooMany
		}
		fs.recycleLocked(victim)
	}
	fs.clock.Advance(fs.costs.VnodeAlloc)
	v := &Vnode{fs: fs, f: f, refs: 1}
	fs.vnodes[name] = v
	fs.mu.Unlock()
	return v, nil
}

// lruVictimLocked picks the least recently used unreferenced vnode.
func (fs *FS) lruVictimLocked() *Vnode {
	var victim *Vnode
	//uvm:maporder-ok strict minimum over unique LRU sequence numbers; order-independent
	for _, v := range fs.vnodes {
		if v.refs > 0 {
			continue
		}
		if victim == nil || v.lru < victim.lru {
			victim = v
		}
	}
	return victim
}

// recycleLocked destroys an unreferenced vnode, calling the VM hook so any
// embedded memory object is terminated first. Caller holds fs.mu; the hook
// is called without it (it may call back into the vnode layer).
func (fs *FS) recycleLocked(v *Vnode) {
	delete(fs.vnodes, v.f.name)
	fs.stats.Inc("vfs.recycles")
	if v.OnRecycle != nil {
		hook := v.OnRecycle
		v.OnRecycle = nil
		fs.mu.Unlock()
		hook(v)
		fs.mu.Lock()
	}
	v.VMObj = nil
}

// VnodesInCore returns how many vnodes are in the table (active + free).
func (fs *FS) VnodesInCore() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.vnodes)
}

// FreeVnodes returns how many in-core vnodes are unreferenced.
func (fs *FS) FreeVnodes() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := 0
	//uvm:maporder-ok counting only; the sum is order-independent
	for _, v := range fs.vnodes {
		if v.refs == 0 {
			n++
		}
	}
	return n
}

// Files returns the number of files that exist.
func (fs *FS) Files() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.files)
}
