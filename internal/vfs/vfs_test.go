package vfs

import (
	"errors"
	"fmt"
	"testing"

	"uvm/internal/disk"
	"uvm/internal/param"
	"uvm/internal/sim"
)

func newTestFS(maxVnodes int) (*FS, *sim.Stats) {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	stats := sim.NewStats()
	dev := disk.New(clock, costs, stats, 4096)
	return NewFS(clock, costs, stats, dev, maxVnodes), stats
}

func TestCreateOpenRead(t *testing.T) {
	fs, _ := newTestFS(10)
	err := fs.Create("/etc/passwd", 3*param.PageSize, func(idx int, buf []byte) {
		for i := range buf {
			buf[i] = byte(idx + 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := fs.Open("/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 3*param.PageSize || v.NumPages() != 3 || v.Name() != "/etc/passwd" {
		t.Fatalf("metadata wrong: %v", v)
	}
	buf := make([]byte, param.PageSize)
	for idx := 0; idx < 3; idx++ {
		if err := v.ReadPage(idx, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(idx+1) || buf[param.PageSize-1] != byte(idx+1) {
			t.Fatalf("page %d content wrong: %#x", idx, buf[0])
		}
	}
	v.Unref()
}

func TestCreateDuplicate(t *testing.T) {
	fs, _ := newTestFS(4)
	if err := fs.Create("/a", 100, nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/a", 100, nil); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestOpenMissing(t *testing.T) {
	fs, _ := newTestFS(4)
	if _, err := fs.Open("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing file: %v", err)
	}
}

func TestRefCounting(t *testing.T) {
	fs, _ := newTestFS(4)
	fs.Create("/f", param.PageSize, nil)
	v, _ := fs.Open("/f")
	if v.Refs() != 1 {
		t.Fatalf("refs = %d", v.Refs())
	}
	v.Ref()
	if v.Refs() != 2 {
		t.Fatalf("refs = %d", v.Refs())
	}
	v.Unref()
	v.Unref()
	if v.Refs() != 0 {
		t.Fatalf("refs = %d", v.Refs())
	}
	if fs.FreeVnodes() != 1 {
		t.Fatalf("free vnodes = %d", fs.FreeVnodes())
	}
	// Reopening reactivates the same vnode.
	v2, _ := fs.Open("/f")
	if v2 != v {
		t.Fatal("reopen allocated a new vnode while cached")
	}
	v2.Unref()
}

func TestUnrefUnderflowPanics(t *testing.T) {
	fs, _ := newTestFS(4)
	fs.Create("/f", 1, nil)
	v, _ := fs.Open("/f")
	v.Unref()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	v.Unref()
}

func TestRefOnInactivePanics(t *testing.T) {
	fs, _ := newTestFS(4)
	fs.Create("/f", 1, nil)
	v, _ := fs.Open("/f")
	v.Unref()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	v.Ref()
}

func TestLRURecycling(t *testing.T) {
	fs, stats := newTestFS(3)
	for i := 0; i < 5; i++ {
		fs.Create(fmt.Sprintf("/f%d", i), param.PageSize, nil)
	}
	// Open and release f0, f1, f2 in order: LRU is f0.
	var vns []*Vnode
	for i := 0; i < 3; i++ {
		v, err := fs.Open(fmt.Sprintf("/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		vns = append(vns, v)
	}
	for _, v := range vns {
		v.Unref()
	}
	recycled := ""
	vns[0].OnRecycle = func(v *Vnode) { recycled = v.Name() }

	// Opening f3 must recycle f0 (the LRU victim).
	v3, err := fs.Open("/f3")
	if err != nil {
		t.Fatal(err)
	}
	if recycled != "/f0" {
		t.Fatalf("recycled %q, want /f0", recycled)
	}
	if stats.Get("vfs.recycles") != 1 {
		t.Fatalf("recycle counter = %d", stats.Get("vfs.recycles"))
	}
	if fs.VnodesInCore() != 3 {
		t.Fatalf("in-core vnodes = %d", fs.VnodesInCore())
	}
	v3.Unref()

	// f0 can be opened again afterwards; it gets a fresh vnode.
	v0, err := fs.Open("/f0")
	if err != nil {
		t.Fatal(err)
	}
	if v0 == vns[0] {
		t.Fatal("recycled vnode identity reused")
	}
	v0.Unref()
}

func TestActiveVnodesPinned(t *testing.T) {
	// Referenced vnodes must never be recycled: with all vnodes active the
	// table is full and Open fails (ENFILE).
	fs, _ := newTestFS(2)
	fs.Create("/a", 1, nil)
	fs.Create("/b", 1, nil)
	fs.Create("/c", 1, nil)
	va, _ := fs.Open("/a")
	vb, _ := fs.Open("/b")
	if _, err := fs.Open("/c"); !errors.Is(err, ErrTooMany) {
		t.Fatalf("expected ENFILE, got %v", err)
	}
	va.Unref()
	// Now /a is recyclable.
	vc, err := fs.Open("/c")
	if err != nil {
		t.Fatal(err)
	}
	vc.Unref()
	vb.Unref()
}

// TestVMCacheRefPinsVnode models BSD VM's behaviour: the VM object cache
// holds a vnode reference, so the vnode LRU is forced to pick a worse
// victim (paper §4).
func TestVMCacheRefPinsVnode(t *testing.T) {
	fs, _ := newTestFS(2)
	fs.Create("/hot", 1, nil)
	fs.Create("/cold", 1, nil)
	fs.Create("/new", 1, nil)

	hot, _ := fs.Open("/hot")
	// BSD VM's object cache keeps a ref even after the user is done.
	hot.Ref()
	hot.Unref() // user close; cache ref remains

	cold, _ := fs.Open("/cold")
	cold.Unref()

	// /hot was used longest ago but is pinned by the cache ref, so /cold
	// gets recycled instead — the "non-optimal vnode" the paper describes.
	recycledCold := false
	cold.OnRecycle = func(*Vnode) { recycledCold = true }
	vn, err := fs.Open("/new")
	if err != nil {
		t.Fatal(err)
	}
	if !recycledCold {
		t.Fatal("pinned vnode was recycled instead of the cold one")
	}
	vn.Unref()
	hot.Unref()
}

func TestReadPagesMultipage(t *testing.T) {
	fs, stats := newTestFS(4)
	fs.Create("/big", 8*param.PageSize, func(idx int, buf []byte) { buf[0] = byte(idx) })
	v, _ := fs.Open("/big")
	defer v.Unref()

	bufs := make([][]byte, 4)
	for i := range bufs {
		bufs[i] = make([]byte, param.PageSize)
	}
	before := stats.Get(sim.CtrDiskReads)
	if err := v.ReadPages(2, bufs); err != nil {
		t.Fatal(err)
	}
	if stats.Get(sim.CtrDiskReads)-before != 1 {
		t.Fatal("multi-page read issued more than one I/O")
	}
	for i, buf := range bufs {
		if buf[0] != byte(i+2) {
			t.Fatalf("page %d content = %#x", i, buf[0])
		}
	}
	if err := v.ReadPages(6, bufs); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("overlong read: %v", err)
	}
}

func TestWritePageRoundTrip(t *testing.T) {
	fs, _ := newTestFS(4)
	fs.Create("/w", 2*param.PageSize, nil)
	v, _ := fs.Open("/w")
	defer v.Unref()
	out := make([]byte, param.PageSize)
	out[17] = 0x5a
	if err := v.WritePage(1, out); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, param.PageSize)
	if err := v.ReadPage(1, in); err != nil {
		t.Fatal(err)
	}
	if in[17] != 0x5a {
		t.Fatal("write-back not visible")
	}
	if err := v.WritePage(5, out); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("out-of-file write: %v", err)
	}
}

func TestZeroLengthFile(t *testing.T) {
	fs, _ := newTestFS(4)
	if err := fs.Create("/empty", 0, nil); err != nil {
		t.Fatal(err)
	}
	v, err := fs.Open("/empty")
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 0 {
		t.Fatalf("size = %d", v.Size())
	}
	v.Unref()
}

func TestManyFilesDistinctExtents(t *testing.T) {
	fs, _ := newTestFS(100)
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("/d/f%02d", i)
		if err := fs.Create(name, param.PageSize, func(_ int, buf []byte) { buf[0] = byte(i) }); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, param.PageSize)
	for i := 0; i < 20; i++ {
		v, err := fs.Open(fmt.Sprintf("/d/f%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := v.ReadPage(0, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("file %d extent collision: %#x", i, buf[0])
		}
		v.Unref()
	}
	if fs.Files() != 20 {
		t.Fatalf("files = %d", fs.Files())
	}
}
