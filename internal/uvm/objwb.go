package uvm

import (
	"sort"
	"sync"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/swap"
	"uvm/internal/vfs"
)

// Object writeback pipeline.
//
// PR 3 made the pagedaemon's anonymous pageout asynchronous; this file
// does the same for the *object* side of the house — the paths that
// clean dirty uobject pages without evicting them (Msync, vnode
// recycling, last-unmap write-back) and the pagedaemon's vnode put path.
// Before, each of those wrote one page per I/O, synchronously, while
// holding the object mutex: exactly the serial-I/O bottleneck the
// paper's pager/aiodone design exists to remove.
//
// The flow mirrors how pageout ownership travels with the I/O today:
//
//  1. Collect. Under o.mu, the dirty in-range page indices are
//     snapshotted and sorted (Go map iteration order is random; the
//     flush order decides the disk head's path and so must be
//     byte-deterministic), each page is marked Busy — claiming it for
//     this flush — and its writable mappings are narrowed so a store
//     during the flight faults and sleeps instead of scribbling on a
//     frame the I/O owns.
//  2. Flush. o.mu is released and the pages leave as contiguous-index
//     clusters through the backend's bounded in-flight window — vnode
//     pages to the file through vfs (disk.AsyncWriter), aobj pages to a
//     freshly reassigned contiguous run of swap slots through
//     swap.WriteClusterAsync.
//  3. Complete. Each cluster's completion callback — on an I/O
//     goroutine, holding no locks — clears Dirty then Busy, wakes every
//     path sleeping on a busy page, and signals the submitter's batch.
//     Callers that need msync semantics wait on the batch; callers that
//     only want the data on its way (last-unmap) fire and forget.
//
// Busy pages observed under o.mu always belong to such a flush: every
// other Busy setter (pager get, pagedaemon clustering) holds the
// object/anon lock for the whole busy window. waitObjPageIdle exploits
// that — it sleeps on the system-wide writeback condvar, which exactly
// those completions broadcast.

// maxPageIdx is the whole-object upper bound for index-range flushes.
const maxPageIdx = int(^uint(0) >> 1)

// wbItem is one collected page of a writeback flush.
type wbItem struct {
	idx int
	pg  *phys.Page
}

// wbBatch tracks one caller's outstanding writeback clusters so msync
// and recycle can wait for their own I/O (and only their own).
type wbBatch struct {
	//uvm:lock wbcond
	mu       sync.Mutex
	cond     *sync.Cond
	inFlight int
	pages    int
	err      error
}

func newWbBatch() *wbBatch {
	b := &wbBatch{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// add records one submitted cluster (called before the submission so a
// concurrent wait cannot return early).
func (b *wbBatch) add() {
	b.mu.Lock()
	b.inFlight++
	b.mu.Unlock()
}

// done records one completed cluster: pages successfully written and the
// write's error, if any.
func (b *wbBatch) done(pages int, err error) {
	b.mu.Lock()
	b.inFlight--
	b.pages += pages
	if err != nil && b.err == nil {
		b.err = err
	}
	if b.inFlight == 0 {
		b.cond.Broadcast()
	}
	b.mu.Unlock()
}

// wait blocks until every cluster added so far has completed, returning
// the pages written and the first error.
func (b *wbBatch) wait() (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.inFlight > 0 {
		b.cond.Wait()
	}
	return b.pages, b.err
}

// wakeObjWaiters broadcasts the writeback condvar: some flush completion
// just cleared Busy bits. Safe from completion context (leaf mutex).
func (s *System) wakeObjWaiters() {
	s.wbMu.Lock()
	s.wbGen++
	s.wbCond.Broadcast()
	s.wbMu.Unlock()
}

// waitObjPageIdle sleeps until pg — observed Busy in o's page map — is
// no longer busy, or until the next writeback completion (whichever is
// first). Caller holds o.mu; the lock is dropped while sleeping and
// re-held on return, so the caller must re-look its page up and
// re-decide. A page that is Busy while its object mutex is free is
// always mid-writeback-flush, so the flush completion's broadcast is
// guaranteed to arrive.
func (s *System) waitObjPageIdle(o *uobject, pg *phys.Page) {
	s.mach.Stats.Inc(sim.CtrObjWbWaits)
	s.wbMu.Lock()
	gen := s.wbGen
	o.mu.Unlock()
	for s.wbGen == gen && pg.Busy.Load() {
		s.wbCond.Wait()
	}
	s.wbMu.Unlock()
	o.mu.Lock()
}

// collectDirtyLocked gathers the dirty, idle pages of o with index in
// [loIdx, hiIdx] in ascending index order, marking each Busy (claiming
// it for this flush) and narrowing its writable mappings so a store
// during the flight faults and waits for the completion. With waitBusy,
// pages already claimed by another flush are waited out and re-examined
// (msync semantics: the data must be clean when we return); without it
// they are skipped (fire-and-forget paths). Caller holds o.mu, which is
// dropped and re-taken around waits.
func (s *System) collectDirtyLocked(o *uobject, loIdx, hiIdx int, waitBusy bool) []wbItem {
	var items []wbItem
	for _, idx := range sortedPageIdxs(o, loIdx, hiIdx) {
		pg, ok := o.pages[idx]
		for ok && pg.Busy.Load() && waitBusy {
			s.waitObjPageIdle(o, pg)
			pg, ok = o.pages[idx]
		}
		if !ok || pg.Busy.Load() || !pg.Dirty.Load() {
			continue
		}
		pg.Busy.Store(true)
		// Stores must fault (and then sleep on Busy) while the I/O owns
		// the frame's contents; reads stay mapped.
		s.mach.MMU.PageProtect(pg, param.ProtRX)
		items = append(items, wbItem{idx: idx, pg: pg})
	}
	return items
}

// wbClusters splits the (index-sorted) items into contiguous-index runs
// of at most max pages — each run leaves in one I/O.
func wbClusters(items []wbItem, max int) [][]wbItem {
	var out [][]wbItem
	for len(items) > 0 {
		n := 1
		for n < len(items) && n < max && items[n].idx == items[n-1].idx+1 {
			n++
		}
		out = append(out, items[:n])
		items = items[n:]
	}
	return out
}

// wbClusterMax returns the largest writeback cluster the pipeline
// assembles.
func (s *System) wbClusterMax() int {
	if s.cfg.WritebackCluster > 0 {
		return s.cfg.WritebackCluster
	}
	return s.cfg.MaxCluster
}

// submitWbLocked pushes the collected items into the per-backend bounded
// in-flight window as contiguous-index clusters: vnode pages to the
// file, aobj pages to freshly reassigned contiguous swap slots. Caller
// holds o.mu (needed for the aobj slot reassignment); submissions block
// only while the backend's window is full, whose completions never take
// o.mu, so waiting here cannot deadlock. batch may be nil for
// fire-and-forget callers.
func (s *System) submitWbLocked(o *uobject, items []wbItem, batch *wbBatch) {
	for _, cl := range wbClusters(items, s.wbClusterMax()) {
		if o.vnode != nil {
			// A mapping past EOF zero-fills, so a dirty page can sit
			// beyond the file: it has nowhere to go (same ErrBadOffset
			// the synchronous put raised) and must not poison the
			// in-range pages sharing its contiguous run.
			if n := o.vnode.NumPages(); cl[len(cl)-1].idx >= n {
				cut := 0
				for cut < len(cl) && cl[cut].idx < n {
					cut++
				}
				tail := make([]*phys.Page, 0, len(cl)-cut)
				for _, it := range cl[cut:] {
					tail = append(tail, it.pg)
				}
				s.failWbPages(tail, vfs.ErrBadOffset, batch)
				if cl = cl[:cut]; len(cl) == 0 {
					continue
				}
			}
		}
		pages := make([]*phys.Page, len(cl))
		bufs := make([][]byte, len(cl))
		for i, it := range cl {
			pages[i] = it.pg
			bufs[i] = it.pg.Data
		}
		s.ctrObjWbClusters.Inc()
		s.ctrObjWbPages.Add(int64(len(cl)))
		if batch != nil {
			batch.add()
		}
		done := func(err error) { s.wbWriteDone(pages, err, batch) }
		if o.vnode != nil {
			if err := o.vnode.WriteClusterAsync(cl[0].idx, bufs, done); err != nil {
				s.wbWriteDone(pages, err, batch)
			}
			continue
		}
		// aobj: give the cluster a contiguous run of swap slots (freeing
		// any old scattered ones) so it leaves in one I/O; fall back to
		// per-page slots when swap is too fragmented for a run.
		if start, err := s.mach.Swap.AllocContig(len(cl)); err == nil {
			for i, it := range cl {
				s.reassignSlot(it.pg, start+int64(i))
			}
			if err := s.mach.Swap.WriteClusterAsync(start, bufs, done); err != nil {
				s.wbWriteDone(pages, err, batch)
			}
			continue
		}
		s.submitWbSinglesLocked(o, cl, batch)
	}
}

// submitWbSinglesLocked is the fragmented-swap fallback: each aobj page
// goes to its own slot (existing or freshly allocated) with its own
// asynchronous write. Caller holds o.mu.
func (s *System) submitWbSinglesLocked(o *uobject, cl []wbItem, batch *wbBatch) {
	for _, it := range cl {
		slot := s.currentSlot(it.pg)
		if slot == swap.NoSlot {
			var err error
			slot, err = s.mach.Swap.Alloc()
			if err != nil {
				// Swap exhausted: the page stays dirty and resident.
				s.failWbPages([]*phys.Page{it.pg}, err, batch)
				continue
			}
			s.setSlot(it.pg, slot)
		}
		pages := []*phys.Page{it.pg}
		if batch != nil {
			batch.add()
		}
		if err := s.mach.Swap.WriteClusterAsync(slot, [][]byte{it.pg.Data},
			func(err error) { s.wbWriteDone(pages, err, batch) }); err != nil {
			s.wbWriteDone(pages, err, batch)
		}
	}
}

// failWbPages reports a cluster that could not even be submitted: the
// pages give their Busy claim back (still dirty) and the batch records
// the error.
func (s *System) failWbPages(pages []*phys.Page, err error, batch *wbBatch) {
	s.mach.Stats.Inc(sim.CtrObjWbErrors)
	for _, pg := range pages {
		pg.Busy.Store(false)
	}
	s.wakeObjWaiters()
	if batch != nil {
		batch.add()
		batch.done(0, err)
	}
}

// wbWriteDone is the completion of one writeback cluster. It runs on an
// I/O goroutine holding no locks; per the lock order it may only touch
// page state, the stats and the writeback condvar. The pages stay
// resident and attached — writeback cleans, it does not evict. On
// failure the pages stay dirty (an aobj page's freshly assigned slot
// then holds whatever the failed write left, which is harmless: a dirty
// page is rewritten before its slot is trusted).
//
//uvm:completion
func (s *System) wbWriteDone(pages []*phys.Page, err error, batch *wbBatch) {
	if gate := s.wbGate; gate != nil {
		gate()
	}
	written := 0
	if err != nil {
		s.mach.Stats.Inc(sim.CtrObjWbErrors)
		for _, pg := range pages {
			pg.Busy.Store(false)
		}
	} else {
		for _, pg := range pages {
			pg.Dirty.Store(false)
			pg.Busy.Store(false)
		}
		written = len(pages)
		s.mach.Stats.Add(sim.CtrPageOuts, int64(written))
	}
	s.wakeObjWaiters()
	if batch != nil {
		batch.done(written, err)
	}
	s.tunerTick()
}

// flushObjectRange cleans the dirty pages of o with index in
// [loIdx, hiIdx] and waits until they are on backing store, returning
// the number of pages written. With cfg.AsyncWriteback the pages leave
// as contiguous-index clusters through the backend's bounded in-flight
// window while this goroutine merely waits on the completions; otherwise
// each page is put synchronously, in ascending index order (the
// deterministic baseline, and the ablation the objwb experiment
// measures).
func (s *System) flushObjectRange(o *uobject, loIdx, hiIdx int) (int, error) {
	if !s.cfg.AsyncWriteback {
		return s.flushObjectRangeSync(o, loIdx, hiIdx)
	}
	o.mu.Lock()
	items := s.collectDirtyLocked(o, loIdx, hiIdx, true)
	if len(items) == 0 {
		o.mu.Unlock()
		return 0, nil
	}
	batch := newWbBatch()
	s.submitWbLocked(o, items, batch)
	o.mu.Unlock()
	if gate := s.msyncGate; gate != nil {
		gate()
	}
	return batch.wait()
}

// flushObjectRangeSync is the synchronous flush: one put per dirty page,
// under o.mu, in ascending index order. Determinism note: the put order
// decides the disk head's path, so the indices are snapshotted and
// sorted rather than iterated straight off the Go map (whose order is
// random run to run).
func (s *System) flushObjectRangeSync(o *uobject, loIdx, hiIdx int) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	n := 0
	for _, idx := range sortedPageIdxs(o, loIdx, hiIdx) {
		pg, ok := o.pages[idx]
		for ok && pg.Busy.Load() {
			s.waitObjPageIdle(o, pg)
			pg, ok = o.pages[idx]
		}
		if !ok || !pg.Dirty.Load() {
			continue
		}
		if err := o.ops.put(o, pg); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// waitObjIdleLocked waits until no page of o is claimed by an in-flight
// flush. Teardown paths (vnode recycling) call it before freeing frames:
// a frame still riding a writeback belongs to the I/O. Caller holds
// o.mu, which is dropped and re-taken around waits.
func (s *System) waitObjIdleLocked(o *uobject) {
	for {
		var busy *phys.Page
		//uvm:maporder-ok waits on any busy page and loops until none remain; order-independent
		for _, pg := range o.pages {
			if pg.Busy.Load() {
				busy = pg
				break
			}
		}
		if busy == nil {
			return
		}
		s.waitObjPageIdle(o, busy)
	}
}

// sortedPageIdxs returns o's resident page indices in [loIdx, hiIdx] in
// ascending order — the deterministic iteration order for flush and
// teardown sweeps (Go map order is random, and sweep order decides the
// disk head's path). Caller holds o.mu.
func sortedPageIdxs(o *uobject, loIdx, hiIdx int) []int {
	idxs := make([]int, 0, len(o.pages))
	//uvm:maporder-ok indices are sorted below
	for idx := range o.pages {
		if idx >= loIdx && idx <= hiIdx {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	return idxs
}
