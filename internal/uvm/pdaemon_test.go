package uvm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// Tests for the asynchronous pagedaemon: wakeup of blocked allocators,
// graceful shutdown while allocators are blocked, the inline-reclaim
// ablation, and a -race stress of daemon vs. direct reclaim.

// gateDaemon installs the test gate before any allocation has happened,
// returning a release function. While gated, the daemon accepts doorbell
// rings but completes no reclaim round.
func gateDaemon(s *System) (release func()) {
	ch := make(chan struct{})
	s.pd.gate = func() { <-ch }
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func waitersOf(s *System) int {
	s.pd.mu.Lock()
	defer s.pd.mu.Unlock()
	return s.pd.waiters
}

// TestBlockedAllocatorsWokenAfterReclaim holds the daemon in its gate
// while several goroutines overcommit a tiny machine, verifies they
// actually block at the empty free list, then releases the daemon and
// checks that every allocator is woken and completes.
func TestBlockedAllocatorsWokenAfterReclaim(t *testing.T) {
	s, m := bootTest(t, 64)
	defer testutil.ShutdownSweep(t, s)
	release := gateDaemon(s)
	defer release()

	// The workers' regions stay mapped (no Exit) until the test is over:
	// a finished worker must keep its pages resident so the combined
	// demand really overcommits RAM and later workers have to block.
	const workers, pages = 4, 48 // 192 pages demanded of 64
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			p, err := s.NewProcess(fmt.Sprintf("w%d", w))
			if err != nil {
				errs <- err
				return
			}
			va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW,
				vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				errs <- err
				return
			}
			errs <- p.TouchRange(va, pages*param.PageSize, true)
		}(w)
	}

	// With the daemon gated, the workers must exhaust RAM and pile up as
	// waiters on the condition variable.
	deadline := time.Now().Add(5 * time.Second)
	for waitersOf(s) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no allocator ever blocked on the pagedaemon")
		}
		time.Sleep(100 * time.Microsecond)
	}

	release()
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker failed after daemon wakeup: %v", err)
		}
	}
	if m.Stats.Get(sim.CtrPdBlocked) == 0 {
		t.Error("no allocator recorded as blocked")
	}
	if m.Stats.Get(sim.CtrPdFreed) == 0 {
		t.Error("daemon freed nothing")
	}
	if m.Stats.Get(sim.CtrPdRounds) == 0 {
		t.Error("no reclaim rounds ran")
	}
}

// TestShutdownWhileBlocked verifies the graceful teardown path: an
// allocator blocked on the daemon must be released promptly by
// Shutdown — falling back to direct reclaim, not hanging — and the
// system must stay usable afterwards.
func TestShutdownWhileBlocked(t *testing.T) {
	s, _ := bootTest(t, 64)
	release := gateDaemon(s)
	defer release()

	p := newProc(t, s, "blocked")
	const pages = 128
	va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.TouchRange(va, pages*param.PageSize, true) }()

	deadline := time.Now().Add(5 * time.Second)
	for waitersOf(s) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("allocator never blocked")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Shutdown with the daemon wedged in its gate: the blocked allocator
	// must unwedge immediately (direct reclaim succeeds here — swap has
	// room), long before the daemon goroutine itself can exit.
	shutdownDone := make(chan struct{})
	go func() { s.Shutdown(); close(shutdownDone) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("blocked allocator failed after shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("allocator still blocked after Shutdown")
	}

	release() // let the daemon goroutine observe shutdown and exit
	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not join the daemon goroutine")
	}

	// The system survives shutdown: reclaim now runs inline.
	q := newProc(t, s, "after")
	qva, _ := q.Mmap(0, 96*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := q.TouchRange(qva, 96*param.PageSize, true); err != nil {
		t.Fatalf("post-shutdown allocation failed: %v", err)
	}
	s.Shutdown() // idempotent
}

// TestInlineReclaimAblation checks the cfg.InlineReclaim escape hatch:
// no daemon goroutine, no blocking, same workload outcome.
func TestInlineReclaimAblation(t *testing.T) {
	m := testMachine(64)
	cfg := DefaultConfig()
	cfg.InlineReclaim = true
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)
	if s.pd != nil {
		t.Fatal("InlineReclaim booted a pagedaemon")
	}
	p, _ := s.NewProcess("pig")
	const pages = 200
	va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	for i := 0; i < pages; i++ {
		if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(i)}); err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
	}
	b := make([]byte, 1)
	for i := 0; i < pages; i++ {
		if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, b); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if b[0] != byte(i) {
			t.Fatalf("page %d corrupted through swap: %#x", i, b[0])
		}
	}
	if m.Stats.Get(sim.CtrPdRounds) != 0 || m.Stats.Get(sim.CtrPdBlocked) != 0 {
		t.Error("inline mode recorded daemon activity")
	}
	if m.Stats.Get(sim.CtrPdFreed) == 0 {
		t.Error("no reclaim happened at all")
	}
	s.Shutdown() // must be a no-op without a daemon
}

// TestDaemonAndDirectReclaimConcurrently drives heavy overcommit from
// many goroutines with a small reclaim batch, so daemon rounds and
// direct-reclaim fallbacks overlap. Run with -race; data integrity is
// verified per worker.
func TestDaemonAndDirectReclaimConcurrently(t *testing.T) {
	m := testMachine(96)
	cfg := DefaultConfig()
	cfg.ReclaimBatch = 16
	cfg.MaxCluster = 8
	s := BootConfig(m, cfg)
	defer testutil.ShutdownSweep(t, s)

	const workers, pages = 8, 64
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := s.NewProcess(fmt.Sprintf("w%d", w))
			if err != nil {
				errs <- err
				return
			}
			defer p.Exit()
			va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW,
				vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < pages; i++ {
				if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(w), byte(i)}); err != nil {
					errs <- fmt.Errorf("w%d write %d: %w", w, i, err)
					return
				}
			}
			b := make([]byte, 2)
			for i := 0; i < pages; i++ {
				if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, b); err != nil {
					errs <- fmt.Errorf("w%d read %d: %w", w, i, err)
					return
				}
				if b[0] != byte(w) || b[1] != byte(i) {
					errs <- fmt.Errorf("w%d page %d corrupted: %x %x", w, i, b[0], b[1])
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestLowWaterAutoSizing pins the automatic watermark formula.
func TestLowWaterAutoSizing(t *testing.T) {
	cases := []struct {
		ram, explicit, want int
	}{
		{64, 0, 16},        // tiny machine: clamped to total/4
		{8192, 0, 128},     // the 32 MB paper machine: 2×MaxCluster
		{1 << 16, 0, 1024}, // big machine: total/64 dominates
		{8192, 99, 99},     // explicit override wins
	}
	for _, c := range cases {
		m := testMachine(c.ram)
		cfg := DefaultConfig()
		cfg.LowWater = c.explicit
		s := BootConfig(m, cfg)
		testutil.SweepOnCleanup(t, s)
		if s.pd.lowMark() != c.want {
			t.Errorf("ram=%d explicit=%d: low=%d, want %d", c.ram, c.explicit, s.pd.lowMark(), c.want)
		}
		s.Shutdown()
	}
}
