package uvm

import (
	"errors"
	"testing"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
)

// --- page loanout (§7) ---

func TestLoanoutSharesPagesZeroCopy(t *testing.T) {
	s, m := bootTest(t, 256)
	p := newProc(t, s, "sender")
	va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.WriteBytes(va, []byte("loan me"))

	copies := m.Stats.Get(sim.CtrPagesCopied)
	pages, err := p.Loanout(va, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 4 {
		t.Fatalf("loaned %d pages", len(pages))
	}
	if m.Stats.Get(sim.CtrPagesCopied) != copies {
		t.Fatal("loanout copied data")
	}
	// The kernel sees the process' bytes directly.
	if string(pages[0].Data[:7]) != "loan me" {
		t.Fatalf("kernel view = %q", pages[0].Data[:7])
	}
	for _, pg := range pages {
		if !pg.Loaned() {
			t.Fatal("page not marked loaned")
		}
	}
	p.LoanReturn(pages)
	for _, pg := range pages {
		if pg.Loaned() {
			t.Fatal("loan not returned")
		}
	}
}

func TestLoanPreservesCOWOnOwnerWrite(t *testing.T) {
	// The owner writing a loaned page must not change the borrower's
	// view (§7: "gracefully preserves copy-on-write in the presence of
	// page faults").
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "sender")
	va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.WriteBytes(va, []byte{0xaa})

	pages, err := p.Loanout(va, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Owner writes during the loan: COW must kick in.
	if err := p.WriteBytes(va, []byte{0xbb}); err != nil {
		t.Fatal(err)
	}
	if pages[0].Data[0] != 0xaa {
		t.Fatalf("borrower's view changed to %#x", pages[0].Data[0])
	}
	b := make([]byte, 1)
	p.ReadBytes(va, b)
	if b[0] != 0xbb {
		t.Fatalf("owner's write lost: %#x", b[0])
	}
	p.LoanReturn(pages)
}

func TestLoanedPagesSurvivePageout(t *testing.T) {
	s, _ := bootTest(t, 64)
	p := newProc(t, s, "sender")
	va, _ := p.Mmap(0, 2*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.WriteBytes(va, []byte{0x5e})
	pages, err := p.Loanout(va, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy pressure: the pagedaemon must skip loaned pages.
	hog := newProc(t, s, "hog")
	hva, _ := hog.Mmap(0, 120*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := hog.TouchRange(hva, 120*param.PageSize, true); err != nil {
		t.Fatal(err)
	}
	if pages[0].Data[0] != 0x5e {
		t.Fatalf("loaned page disturbed by pageout: %#x", pages[0].Data[0])
	}
	p.LoanReturn(pages)
}

func TestLoanSurvivesOwnerExit(t *testing.T) {
	s, m := bootTest(t, 256)
	p := newProc(t, s, "sender")
	va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.WriteBytes(va, []byte{0x77})
	pages, err := p.Loanout(va, 1)
	if err != nil {
		t.Fatal(err)
	}
	free := m.Mem.FreePages()
	p.Exit()
	// The frame is orphaned, not freed: the borrower still reads it.
	if pages[0].Data[0] != 0x77 {
		t.Fatalf("orphaned loan corrupted: %#x", pages[0].Data[0])
	}
	if pages[0].Owner() != nil {
		t.Fatal("owner not cleared at exit")
	}
	// Returning the loan finally frees the frame.
	p.LoanReturn(pages)
	if got := m.Mem.FreePages(); got <= free {
		t.Fatal("orphaned frame never freed")
	}
}

func TestLoanoutOfFileMapping(t *testing.T) {
	// §7: "the loaned page can come from a memory-mapped file".
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/loanfile", 2, 0x10)
	defer vn.Unref()
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 2*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	pages, err := p.Loanout(va, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pages[0].Data[0] != 0x10 || pages[1].Data[0] != 0x11 {
		t.Fatalf("loaned file pages wrong: %#x %#x", pages[0].Data[0], pages[1].Data[0])
	}
	// Writing the shared mapping during the loan gives the object a fresh
	// page; the borrowers keep the old bytes.
	if err := p.WriteBytes(va, []byte{0xee}); err != nil {
		t.Fatal(err)
	}
	if pages[0].Data[0] != 0x10 {
		t.Fatalf("borrower saw shared-file write: %#x", pages[0].Data[0])
	}
	b := make([]byte, 1)
	p.ReadBytes(va, b)
	if b[0] != 0xee {
		t.Fatalf("owner write lost: %#x", b[0])
	}
	p.LoanReturn(pages)
}

func TestLoanoutValidation(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	if _, err := p.Loanout(0x1001, 1); !errors.Is(err, vmapi.ErrInvalid) {
		t.Fatalf("unaligned loan: %v", err)
	}
	if _, err := p.Loanout(0x1000, 0); !errors.Is(err, vmapi.ErrInvalid) {
		t.Fatalf("zero-page loan: %v", err)
	}
	if _, err := p.Loanout(0x7000_0000, 1); !errors.Is(err, vmapi.ErrFault) {
		t.Fatalf("loan of unmapped range: %v", err)
	}
}

// --- page transfer (§7) ---

func TestTransferKernelPages(t *testing.T) {
	s, m := bootTest(t, 256)
	pages, err := s.AllocKernelPages(3, func(idx int, buf []byte) { buf[0] = 0xc0 + byte(idx) })
	if err != nil {
		t.Fatal(err)
	}
	p := newProc(t, s, "recv")
	copies := m.Stats.Get(sim.CtrPagesCopied)
	va, err := p.Transfer(pages, param.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.Get(sim.CtrPagesCopied) != copies {
		t.Fatal("transfer copied data")
	}
	b := make([]byte, 1)
	for i := 0; i < 3; i++ {
		if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, b); err != nil {
			t.Fatal(err)
		}
		if b[0] != 0xc0+byte(i) {
			t.Fatalf("page %d = %#x", i, b[0])
		}
	}
	// Transferred memory is ordinary anonymous memory: writable, COW on
	// fork, freed at exit.
	if err := p.WriteBytes(va, []byte{0x11}); err != nil {
		t.Fatal(err)
	}
	p.Exit()
	if got := m.Stats.Get("uvm.anon.live"); got != 0 {
		t.Fatalf("transferred anons leaked: %d", got)
	}
}

func TestLoanThenTransferPipeline(t *testing.T) {
	// The IPC pipeline the paper sketches: sender loans pages, receiver
	// gets them transferred — zero copies; a write on either side
	// resolves through COW.
	s, m := bootTest(t, 256)
	sender := newProc(t, s, "sender")
	va, _ := sender.Mmap(0, 2*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	sender.WriteBytes(va, []byte("ipc message"))

	loaned, err := sender.Loanout(va, 2)
	if err != nil {
		t.Fatal(err)
	}
	recv := newProc(t, s, "recv")
	copies := m.Stats.Get(sim.CtrPagesCopied)
	rva, err := recv.Transfer(loaned, param.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.Get(sim.CtrPagesCopied) != copies {
		t.Fatal("pipeline copied data")
	}
	b := make([]byte, 11)
	if err := recv.ReadBytes(rva, b); err != nil {
		t.Fatal(err)
	}
	if string(b) != "ipc message" {
		t.Fatalf("receiver read %q", b)
	}
	// Receiver writes: COW (the sender keeps its bytes).
	recv.WriteBytes(rva, []byte("REWRITTEN!!"))
	sender.ReadBytes(va, b)
	if string(b) != "ipc message" {
		t.Fatalf("receiver write leaked to sender: %q", b)
	}
	// Sender writes: COW the other way.
	sender.WriteBytes(va+param.PageSize, []byte{0x9a})
	b2 := make([]byte, 1)
	recv.ReadBytes(rva+param.PageSize, b2)
	if b2[0] != 0 {
		t.Fatalf("sender write leaked to receiver: %#x", b2[0])
	}
	checkMaps(t, sender, recv)
}

// --- map entry passing (§7) ---

func TestMapEntryPassingShare(t *testing.T) {
	s, _ := bootTest(t, 256)
	a := newProc(t, s, "a")
	b := newProc(t, s, "b")
	va, _ := a.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	a.WriteBytes(va, []byte("shared range"))

	tok, err := a.Export(va, 4*param.PageSize, ExportShare)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := b.Import(tok)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 12)
	b.ReadBytes(vb, buf)
	if string(buf) != "shared range" {
		t.Fatalf("imported read %q", buf)
	}
	// Stores are mutually visible.
	b.WriteBytes(vb, []byte("B WAS HERE!!"))
	a.ReadBytes(va, buf)
	if string(buf) != "B WAS HERE!!" {
		t.Fatalf("share semantics broken: %q", buf)
	}
	checkMaps(t, a, b)
}

func TestMapEntryPassingCopy(t *testing.T) {
	s, _ := bootTest(t, 256)
	a := newProc(t, s, "a")
	b := newProc(t, s, "b")
	va, _ := a.Mmap(0, 2*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	a.WriteBytes(va, []byte("copy range"))

	tok, err := a.Export(va, 2*param.PageSize, ExportCopy)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := b.Import(tok)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	b.ReadBytes(vb, buf)
	if string(buf) != "copy range" {
		t.Fatalf("imported read %q", buf)
	}
	b.WriteBytes(vb, []byte("b-private!"))
	a.ReadBytes(va, buf)
	if string(buf) != "copy range" {
		t.Fatalf("copy semantics broken (b leaked to a): %q", buf)
	}
	a.WriteBytes(va, []byte("a-private!"))
	b.ReadBytes(vb, buf)
	if string(buf) != "b-private!" {
		t.Fatalf("copy semantics broken (a leaked to b): %q", buf)
	}
	checkMaps(t, a, b)
}

func TestMapEntryPassingDonate(t *testing.T) {
	// "Map entry passing can be used as a replacement for pipes when
	// transferring large-sized data."
	s, _ := bootTest(t, 256)
	a := newProc(t, s, "a")
	b := newProc(t, s, "b")
	va, _ := a.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	a.WriteBytes(va, []byte("moving out"))

	tok, err := a.Export(va, 8*param.PageSize, ExportDonate)
	if err != nil {
		t.Fatal(err)
	}
	// Gone from the donor.
	if err := a.Access(va, false); !errors.Is(err, vmapi.ErrFault) {
		t.Fatalf("donated range still mapped in donor: %v", err)
	}
	vb, err := b.Import(tok)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	b.ReadBytes(vb, buf)
	if string(buf) != "moving out" {
		t.Fatalf("donated data lost: %q", buf)
	}
	checkMaps(t, a, b)
}

func TestMapEntryPassingCheaperThanCopyPerPage(t *testing.T) {
	// §7: per-page cost of map entry passing is lower than loanout or
	// data copying for large ranges.
	s, m := bootTest(t, 1024)
	a := newProc(t, s, "a")
	b := newProc(t, s, "b")
	const pages = 256
	va, _ := a.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	a.TouchRange(va, pages*param.PageSize, true)

	t0 := m.Clock.Now()
	tok, err := a.Export(va, pages*param.PageSize, ExportShare)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Import(tok); err != nil {
		t.Fatal(err)
	}
	mepCost := m.Clock.Since(t0)

	// Compare against copying the data through a pipe-style double copy.
	t1 := m.Clock.Now()
	buf := make([]byte, pages*param.PageSize)
	if err := a.ReadBytes(va, buf); err != nil {
		t.Fatal(err)
	}
	vb2, _ := b.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := b.WriteBytes(vb2, buf); err != nil {
		t.Fatal(err)
	}
	copyCost := m.Clock.Since(t1)

	if mepCost*10 > copyCost {
		t.Fatalf("map entry passing (%v) should be >10x cheaper than copying (%v) at %d pages",
			mepCost, copyCost, pages)
	}
}

func TestTokenReleaseAndSingleUse(t *testing.T) {
	s, m := bootTest(t, 256)
	a := newProc(t, s, "a")
	b := newProc(t, s, "b")
	va, _ := a.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	a.WriteBytes(va, []byte{1})

	tok, _ := a.Export(va, param.PageSize, ExportShare)
	tok.Release()
	if _, err := b.Import(tok); !errors.Is(err, vmapi.ErrInvalid) {
		t.Fatalf("released token imported: %v", err)
	}

	tok2, _ := a.Export(va, param.PageSize, ExportShare)
	if _, err := b.Import(tok2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Import(tok2); !errors.Is(err, vmapi.ErrInvalid) {
		t.Fatalf("token reused: %v", err)
	}
	// Donate + release must not leak the anons.
	tok3, _ := a.Export(va, param.PageSize, ExportDonate)
	tok3.Release()
	a.Exit()
	b.Exit()
	if got := m.Stats.Get("uvm.anon.live"); got != 0 {
		t.Fatalf("anon leak through tokens: %d", got)
	}
}
