package uvm

import (
	"fmt"
	"sync"
	"testing"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// Tests for the reclaim I/O pipeline: asynchronous cluster pageout
// (completion callbacks racing faults and Shutdown), parallel reclaim
// workers racing allocators, and clustered pagein.

// bootPipeline boots a System on a small machine with the given pipeline
// tuning applied on top of the defaults.
func bootPipeline(t *testing.T, ramPages int, tune func(*Config)) (*System, *vmapi.Machine) {
	t.Helper()
	m := testMachine(ramPages)
	cfg := DefaultConfig()
	if tune != nil {
		tune(&cfg)
	}
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)
	return s, m
}

// sweepPattern writes one recognisable byte per page across a region and
// then reads every page back, verifying the round trip through pageout
// and pagein.
func sweepPattern(t *testing.T, p *Process, va param.VAddr, pages int) {
	t.Helper()
	for i := 0; i < pages; i++ {
		if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}
	buf := make([]byte, 2)
	for i := 0; i < pages; i++ {
		if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, buf); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		if buf[0] != byte(i) || buf[1] != byte(i>>8) {
			t.Fatalf("page %d corrupted: got %#x %#x", i, buf[0], buf[1])
		}
	}
}

// TestAsyncPageoutRoundTrip overcommits a small machine with async
// cluster pageout enabled and verifies every page survives the trip out
// and back — pageout completions run on swap I/O goroutines while the
// workload keeps faulting.
func TestAsyncPageoutRoundTrip(t *testing.T) {
	s, m := bootPipeline(t, 128, func(c *Config) {
		c.AsyncPageout = true
		c.PageoutWindow = 4
	})
	p := newProc(t, s, "sweep")
	const pages = 512 // 4x RAM
	va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sweepPattern(t, p, va, pages)
	s.Shutdown() // drains in-flight completions before we read counters
	if m.Stats.Get(sim.CtrPdAsyncClusters) == 0 {
		t.Errorf("no async clusters submitted; counters:\n%s", m.Stats.String())
	}
	if got := m.Stats.Get(sim.CtrPdAsyncErrors); got != 0 {
		t.Errorf("async write errors: %d", got)
	}
	if m.Swap.AIOInFlight() != 0 {
		t.Error("async writes still in flight after Shutdown")
	}
}

// TestAsyncCompletionRacesShutdown repeatedly tears a system down while
// async pageout completions are in flight and allocators are mid-fault:
// Shutdown must release blocked allocators, drain the in-flight window,
// and leave the system usable (direct reclaim) — no hang, no race, no
// double free.
func TestAsyncCompletionRacesShutdown(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		m := testMachine(96)
		cfg := DefaultConfig()
		cfg.AsyncPageout = true
		cfg.PageoutWindow = 2
		s := BootConfig(m, cfg)
		testutil.SweepOnCleanup(t, s)

		const workers, pages = 3, 96
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				p, err := s.NewProcess(fmt.Sprintf("w%d", w))
				if err != nil {
					errs <- err
					return
				}
				va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW,
					vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
				if err != nil {
					errs <- err
					return
				}
				errs <- p.TouchRange(va, pages*param.PageSize, true)
			}(w)
		}
		// Shut down mid-workload: completions, workers and Shutdown race.
		s.Shutdown()
		wg.Wait()
		close(errs)
		for err := range errs {
			if err != nil {
				t.Fatalf("iter %d: worker failed across shutdown: %v", iter, err)
			}
		}
		if m.Swap.AIOInFlight() != 0 {
			t.Fatalf("iter %d: async writes survived Shutdown", iter)
		}
	}
}

// TestReclaimWorkersRaceAllocators runs the parallel-worker daemon
// against concurrently allocating and unmapping processes under -race:
// workers scan disjoint queue-shard ranges while allocators fault, so
// every TryLock/re-verify path in the scan gets exercised.
func TestReclaimWorkersRaceAllocators(t *testing.T) {
	m := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:  128,
		SwapPages: 8192,
		FSPages:   1024,
		MaxVnodes: 16,
	})
	cfg := DefaultConfig()
	cfg.AsyncPageout = true
	cfg.ReclaimWorkers = 4
	cfg.PageoutWindow = 2
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)

	// Regions stay mapped (no Munmap) so the combined demand — 4×320
	// pages against 128 of RAM — keeps the daemon's workers reclaiming
	// for the whole run, racing the allocators' faults.
	const workers, pages, sweeps = 4, 320, 2
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p, err := s.NewProcess(fmt.Sprintf("alloc%d", w))
			if err != nil {
				t.Error(err)
				return
			}
			va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW,
				vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for sweep := 0; sweep < sweeps; sweep++ {
				if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
					t.Errorf("worker %d sweep %d: %v", w, sweep, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Shutdown()
	if m.Stats.Get(sim.CtrPdWorkerRounds) == 0 {
		t.Errorf("parallel reclaim workers never dispatched; counters:\n%s", m.Stats.String())
	}
	t.Logf("worker rounds=%d async clusters=%d freed=%d direct=%d",
		m.Stats.Get(sim.CtrPdWorkerRounds),
		m.Stats.Get(sim.CtrPdAsyncClusters),
		m.Stats.Get(sim.CtrPdFreed),
		m.Stats.Get(sim.CtrPdDirect))
}

// TestPageinClusterReadsNeighbours drives a deterministic single-thread
// sweep that pages a region out in contiguous clusters, then re-faults
// it with clustered pagein enabled: neighbour pages must come back with
// the faulting page in shared I/Os, and every byte must be intact.
func TestPageinClusterReadsNeighbours(t *testing.T) {
	s, m := bootPipeline(t, 128, func(c *Config) {
		c.InlineReclaim = true // deterministic: reclaim inline, pageout sync
		c.PageinCluster = 8
	})
	p := newProc(t, s, "sweep")
	const pages = 256
	va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sweepPattern(t, p, va, pages)
	if m.Stats.Get(sim.CtrPageinClusters) == 0 {
		t.Errorf("no clustered pageins; counters:\n%s", m.Stats.String())
	}
	if m.Stats.Get(sim.CtrPageinClustered) == 0 {
		t.Error("clustered pageins brought in no extra pages")
	}
	// Clustering must *reduce* pagein I/Os: the extra pages rode along.
	ios := m.Stats.Get(sim.CtrSwapIOs)
	t.Logf("swap IOs=%d pagein clusters=%d extra pages=%d",
		ios, m.Stats.Get(sim.CtrPageinClusters), m.Stats.Get(sim.CtrPageinClustered))
}

// TestPageinClusterMatchesSingleSlotData cross-checks clustered pagein
// against the single-slot baseline: identical workloads on identical
// machines must surface identical bytes, clustering being purely an I/O
// batching change.
func TestPageinClusterMatchesSingleSlotData(t *testing.T) {
	run := func(window int) *System {
		m := testMachine(128)
		cfg := DefaultConfig()
		cfg.InlineReclaim = true
		cfg.PageinCluster = window
		s := BootConfig(m, cfg)
		testutil.SweepOnCleanup(t, s)
		p := newProc(t, s, "sweep")
		const pages = 192
		va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		sweepPattern(t, p, va, pages)
		return s
	}
	run(0) // single-slot baseline; sweepPattern asserts the data
	run(8) // clustered; sweepPattern asserts the data
}
