package uvm

import (
	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
)

// Page transfer (§7): pages from the I/O system, the IPC system or other
// processes are inserted into a process' address space, where they become
// ordinary anonymous memory — "indistinguishable from anonymous memory
// allocated by traditional means".
//
// Two kinds of source page are accepted:
//
//   - owner-less wired pages (from AllocKernelPages or a device): the
//     receiving anon takes ownership outright;
//   - loaned pages (from another process' Loanout): the anon inherits the
//     loan reference, giving the receiver a copy-on-write view with no
//     data copy; a later write by either side resolves through the normal
//     COW machinery.
//
// When the transfer mechanism chooses the placement address itself (addr
// hint 0), it inserts the pages without fragmenting existing entries —
// a fresh entry in a free range.

// Transfer inserts the pages into p's address space as anonymous memory
// and returns the chosen virtual address.
func (p *Process) Transfer(pages []*phys.Page, prot param.Prot) (param.VAddr, error) {
	if p.exited.Load() {
		return 0, vmapi.ErrExited
	}
	if len(pages) == 0 {
		return 0, vmapi.ErrInvalid
	}
	s := p.sys

	m := p.m
	m.lock()
	// Re-check under the map lock (see Mmap): an insert racing Exit's
	// teardown would leak the entry and its anons forever.
	if p.exited.Load() {
		m.unlock()
		return 0, vmapi.ErrExited
	}
	length := param.VSize(len(pages)) * param.PageSize
	va, err := m.findSpace(param.MmapHintBase, length)
	if err != nil {
		m.unlock()
		return 0, err
	}
	e := s.allocEntry(m)
	e.start, e.end = va, va+param.VAddr(length)
	e.prot, e.maxProt = prot, param.ProtRWX
	e.inherit = param.InheritCopy
	e.cow = true
	e.amap = s.newAmap(len(pages))

	for i, pg := range pages {
		a := s.newAnon()
		a.page = pg
		if pg.LoanCount.Load() > 0 {
			// The page arrives on loan: the anon inherits the loan
			// reference held by the caller.
			a.loaned = true
		} else {
			// Free-standing kernel page: the anon takes ownership.
			pg.SetOwner(a, 0)
			pg.WireCount.Store(0)
			pg.Dirty.Store(true) // anonymous now; must reach swap if evicted
			s.mach.Mem.Activate(pg)
		}
		e.amap.impl.set(i, a)
	}
	m.insert(e)
	m.unlock()
	s.mach.Stats.Add(sim.CtrTransfers, int64(len(pages)))
	return va, nil
}
