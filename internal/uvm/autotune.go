package uvm

import (
	"sync"
	"sync/atomic"
	"time"

	"uvm/internal/control"
	"uvm/internal/phys"
	"uvm/internal/sim"
)

// This file wires the internal/control feedback plane into a booted
// System (cfg.AutoTune / vmapi.MachineConfig.AutoTune): five controllers
// steering the knobs that PRs 2–5 left static, plus a syncer-style
// periodic flusher that trickles dirty object pages through the object
// writeback engine so msync storms and reclaim rounds find less backlog.
//
//   - pageout / writeback window (AIMD): deepen the async write windows
//     while per-completion deferred-write latency stays flat; halve on
//     inflation. Applied live via Swap.SetAIOWindow / FS.SetWriteWindow.
//   - pagein cluster (banded): widen while the speculative neighbours a
//     cluster drags in actually get used; shrink when they miss.
//   - lookahead (banded): add read-ahead pages over the advice baseline
//     while the batched pmap entries pay off.
//   - watermarks (banded): raise the pagedaemon's low mark while
//     allocators stall in waitForFree; decay it after sustained calm.
//
// Everything observes lock-free counters and applies through atomics or
// leaf-level setters, so the plane adds no lock-order edges (see the
// Entry contract in internal/control). Ticks come from the fault/touch
// entry point and the pageout/writeback completion paths; epochs are
// simulated time, so an idle machine steps no controllers.
//
// AutoTune runs are intentionally not byte-deterministic: controller
// decisions depend on where goroutine interleaving lands counter values
// at each epoch edge. Everything stays within control's validated
// bounds; the paper experiments keep the flag off.

// Syncer counters ("control.syncer.*", alongside the plane's own
// control.* counters).
const (
	ctrSyncerPasses = "control.syncer.passes"
	ctrSyncerPages  = "control.syncer.pages"
)

// autotuneEpoch is the minimum simulated time between controller steps.
const autotuneEpoch = time.Millisecond

// syncerEvery is the simulated interval between syncer passes (a few
// controller epochs, mirroring the classic 30-second syncer's relation
// to scheduler ticks).
const syncerEvery = 4 * time.Millisecond

type autotuner struct {
	s     *System
	plane *control.Plane
	set   *control.Set

	lastSync atomic.Int64 // sim ns of the last syncer kick
	syncKick chan struct{}
	stopCh   chan struct{}
	syncDone chan struct{}
	stopOnce sync.Once
}

// startAutotune builds the controller set from the booted configuration
// and starts the plane and syncer. Called from BootConfig after the
// pagedaemon is up; a starting configuration outside control's bounds is
// clamped into them (the static value was legal for the mechanisms, but
// the controllers only roam the validated range).
func (s *System) startAutotune() {
	ram := s.mach.Mem.TotalPages()
	clampInt := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	low := clampInt(s.pd.lowMark(), 1, ram/8)
	start := control.Tuning{
		PageoutWindow:   clampInt(s.mach.Swap.AIOWindow(), control.MinWindow, control.MaxWindow),
		WritebackWindow: clampInt(s.mach.FS.WriteWindow(), control.MinWindow, control.MaxWindow),
		PageinCluster:   clampInt(s.pageinWindow(), 1, control.MaxPageinCluster),
		LookaheadBoost:  0,
		LowWater:        low,
		HighWater:       2 * low,
	}
	set, err := control.NewStandardSet(start, ram)
	if err != nil {
		// Unreachable after clamping; a machine too small to validate any
		// tuning (ram/8 < 1) simply runs untuned.
		return
	}
	if low != s.pd.lowMark() {
		// The controller's floor is capped tighter than the boot sizing
		// (ram/8 vs lowWater's ram/4); align the live marks with the
		// controller's starting point so the set's Tuning always describes
		// the machine.
		s.pd.setWatermarks(low, 2*low)
	}
	t := &autotuner{
		s:        s,
		set:      set,
		plane:    control.NewPlane(s.mach.Clock.Now, autotuneEpoch, s.mach.Stats),
		syncKick: make(chan struct{}, 1),
		stopCh:   make(chan struct{}),
		syncDone: make(chan struct{}),
	}
	t.register()
	s.tuner = t
	go t.syncer()
}

// register binds the five standard controllers to their samplers and
// appliers.
func (t *autotuner) register() {
	s := t.s
	t.plane.Register(control.Entry{
		Controller: t.set.Pageout,
		Sample:     t.latencySampler(),
		Apply:      func(v int) { s.mach.Swap.SetAIOWindow(v) },
	})
	t.plane.Register(control.Entry{
		Controller: t.set.Writeback,
		Sample:     t.latencySampler(),
		Apply:      func(v int) { s.mach.FS.SetWriteWindow(v) },
	})
	t.plane.Register(control.Entry{
		Controller: t.set.Pagein,
		Sample:     t.pageinSampler(),
		Apply:      func(v int) { s.pageinClusterA.Store(int32(v)) },
	})
	t.plane.Register(control.Entry{
		Controller: t.set.Lookahead,
		Sample:     t.lookaheadSampler(),
		Apply:      func(v int) { s.lookaheadA.Store(int32(v - 1)) },
	})
	t.plane.Register(control.Entry{
		Controller: t.set.Watermark,
		Sample:     t.watermarkSampler(),
		Apply:      func(v int) { s.pd.setWatermarks(v, 2*v) },
	})
}

// latencySampler observes the per-completion device-busy latency of the
// deferred (overlapped) writes both async engines issue. Each caller
// gets its own delta tracker, so the pageout and writeback controllers
// sample the same counters independently. Closure state is guarded by
// the plane lock (samplers only run inside Tick).
func (t *autotuner) latencySampler() func() control.Sample {
	st := t.s.mach.Stats
	var lastNs, lastOps int64
	return func() control.Sample {
		ns, ops := st.Get(sim.CtrDiskDeferredNs), st.Get(sim.CtrDiskWritesDeferred)
		dNs, dOps := ns-lastNs, ops-lastOps
		lastNs, lastOps = ns, ops
		if dOps <= 0 {
			return control.Sample{}
		}
		return control.Sample{Metric: float64(dNs) / float64(dOps), Weight: float64(dOps)}
	}
}

// pageinSampler observes clustered-pagein payoff: the fraction of the
// speculative neighbour slots (window−1 per cluster I/O) that were
// actually filled. At width 1 clustering is off and yields no evidence
// of its own, so the sampler probes upward while pagein traffic exists
// at all — the next epochs' real payoff then confirms or reverts.
func (t *autotuner) pageinSampler() func() control.Sample {
	st := t.s.mach.Stats
	var lastCl, lastEx, lastF int64
	return func() control.Sample {
		cl := st.Get(sim.CtrPageinClusters) + st.Get(sim.CtrAobjPageinClusters)
		ex := st.Get(sim.CtrPageinClustered) + st.Get(sim.CtrAobjPageinClustered)
		f := st.Get(sim.CtrFaults)
		dCl, dEx, dF := cl-lastCl, ex-lastEx, f-lastF
		lastCl, lastEx, lastF = cl, ex, f
		w := t.s.pageinWindow()
		if w <= 1 {
			// Probe weight is fault traffic, not pageins: the single-page
			// swap-in path doesn't count as a pagein, so a pagein-weighted
			// probe could never reopen a window that closed.
			return control.Sample{Metric: 1, Weight: float64(dF)}
		}
		if dCl <= 0 {
			return control.Sample{}
		}
		return control.Sample{
			Metric: float64(dEx) / (float64(dCl) * float64(w-1)),
			Weight: float64(dCl),
		}
	}
}

// lookaheadSampler observes the batched fault-ahead payoff: average
// translations entered per EnterBatch, normalised by the window the
// batch could have covered (the Normal advice baseline of 4 ahead + 3
// behind, plus the current boost).
func (t *autotuner) lookaheadSampler() func() control.Sample {
	st := t.s.mach.Stats
	var lastB, lastP int64
	return func() control.Sample {
		b, p := st.Get(sim.CtrPVBatches), st.Get(sim.CtrPVBatchPages)
		dB, dP := b-lastB, p-lastP
		lastB, lastP = b, p
		if dB <= 0 {
			return control.Sample{}
		}
		window := float64(7 + t.s.lookaheadBoost())
		return control.Sample{Metric: float64(dP) / float64(dB) / window, Weight: float64(dB)}
	}
}

// watermarkSampler observes allocation-stall pressure: allocators that
// blocked in waitForFree this epoch, plus their wakeup-to-satisfy
// latency normalised by the epoch. Weight is always 1 so the controller
// sees calm epochs too — that is what lets a raised floor decay.
func (t *autotuner) watermarkSampler() func() control.Sample {
	st := t.s.mach.Stats
	var lastBl, lastNs int64
	return func() control.Sample {
		bl, ns := st.Get(sim.CtrPdBlocked), st.Get(sim.CtrPdWaitNs)
		dBl, dNs := bl-lastBl, ns-lastNs
		lastBl, lastNs = bl, ns
		return control.Sample{
			Metric: float64(dBl) + float64(dNs)/float64(autotuneEpoch),
			Weight: 1,
		}
	}
}

// tick advances the plane (epoch-gated, cheap when it isn't time) and
// paces the syncer on the same simulated clock.
func (t *autotuner) tick() {
	t.plane.Tick()
	now := int64(t.s.mach.Clock.Now())
	last := t.lastSync.Load()
	if now-last >= int64(syncerEvery) && t.lastSync.CompareAndSwap(last, now) {
		select {
		case t.syncKick <- struct{}{}:
		default:
		}
	}
}

// stop shuts the syncer down and waits for it. Idempotent; the plane
// itself needs no teardown (it only runs inside tick calls).
func (t *autotuner) stop() {
	t.stopOnce.Do(func() { close(t.stopCh) })
	<-t.syncDone
}

// syncer is the periodic flusher goroutine: each pass trickles a few
// objects' dirty pages through the object writeback engine, so dirty
// data drains continuously instead of piling up for msync or reclaim.
// Paced by tick (simulated time) rather than wall time, so an idle
// machine runs no passes and tests stay fast.
func (t *autotuner) syncer() {
	defer close(t.syncDone)
	for {
		select {
		case <-t.stopCh:
			return
		case <-t.syncKick:
			t.trickleSync()
		}
	}
}

// trickleSyncObjects caps how many objects one syncer pass flushes: a
// trickle, not a sweep — the engine's windows still bound the I/O, this
// bounds how much of the frame table one pass can claim Busy.
const trickleSyncObjects = 4

// trickleSync finds up to trickleSyncObjects vnode-backed objects with
// dirty resident pages and pushes those pages through the writeback
// engine, fire-and-forget. Vnode objects only: aobj pages are anonymous,
// and flushing them here would burn swap slots the pagedaemon is about
// to reassign for clustering anyway. The frame sweep is lock-free and
// racy by design; everything is re-verified under the object lock
// (TryLock — the syncer is a janitor and never contends) before any page
// is claimed.
func (t *autotuner) trickleSync() {
	s := t.s
	var objs []*uobject
	seen := make(map[*uobject]bool)
	s.mach.Mem.ForEachFrame(func(pg *phys.Page) bool {
		if !pg.Dirty.Load() || pg.Busy.Load() {
			return true
		}
		o, ok := pg.Owner().(*uobject)
		if !ok || o.vnode == nil || o.aobjSlots != nil {
			return true
		}
		if !seen[o] {
			seen[o] = true
			objs = append(objs, o)
		}
		return len(objs) < trickleSyncObjects
	})
	pages := 0
	for _, o := range objs {
		if !o.mu.TryLock() {
			continue
		}
		hi := o.vnode.NumPages() - 1
		if items := s.collectDirtyLocked(o, 0, hi, false); len(items) > 0 {
			s.submitWbLocked(o, items, nil)
			pages += len(items)
		}
		o.mu.Unlock()
	}
	if pages > 0 {
		s.mach.Stats.Add(ctrSyncerPages, int64(pages))
	}
	s.mach.Stats.Inc(ctrSyncerPasses)
}
