package uvm

import (
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/swap"
)

// Clustered pagein: the read-side mirror of the paper's clustered
// pageout. The pagedaemon reassigns a whole dirty cluster — typically
// VA-adjacent anons of one amap — into one contiguous run of swap slots
// and writes it with a single I/O. That layout is exactly what makes the
// reverse trip cheap: when one of those anons faults back in, its VA
// neighbours very likely sit in the adjacent slots, so one positioning
// cost can drag the whole neighbourhood back instead of paying a full
// seek per page as the faults arrive one by one.
//
// There is no slot→anon reverse map, and we do not want one; the amap
// already is the locality map. pageinCluster therefore walks the faulting
// anon's VA neighbours in its amap, keeps those whose swap slots extend
// the faulting slot into a contiguous same-device run, and issues one
// swap.ReadCluster for the run. Neighbours are acquired with TryLock only
// (anon locks are peers in the lock order; blocking could deadlock with a
// concurrent fault walking the other way), so a busy neighbour simply
// drops out of the window. Pages brought in for neighbours are activated
// but not mapped: the fault-time lookahead maps resident neighbours for
// free, and a later fault finds them resident.

// pageinCluster brings a's data in from swap, reading up to
// cfg.PageinCluster adjacent allocated slots in one I/O when the
// faulting anon's VA neighbours occupy them. Called with am.mu and a.mu
// held, a.page == nil and a.swslot valid; on success a.page is resident,
// exactly like anonPageinLocked (the single-slot path it falls back to
// whenever no neighbour is adjacent or resources run short).
func (s *System) pageinCluster(am *amap, a *anon, slot int) error {
	window := s.cfg.PageinCluster
	base := a.swslot
	devLo, devHi := s.mach.Swap.DeviceBounds(base)

	// Collect willing VA neighbours: swapped out, unloaned, slot within
	// the window on the same device, lock available right now.
	bySlot := map[int64]*anon{base: a}
	var extras []*anon
	for d := 1 - window; d < window; d++ {
		if d == 0 {
			continue
		}
		b := am.impl.get(slot + d)
		if b == nil || b == a {
			continue
		}
		if !b.mu.TryLock() {
			continue
		}
		if b.page != nil || b.loaned || b.swslot == swap.NoSlot ||
			b.swslot < devLo || b.swslot >= devHi ||
			b.swslot <= base-int64(window) || b.swslot >= base+int64(window) ||
			bySlot[b.swslot] != nil {
			b.mu.Unlock()
			continue
		}
		bySlot[b.swslot] = b
		extras = append(extras, b)
	}

	// Grow the faulting slot into the largest contiguous run the
	// candidates cover, capped at the window.
	lo, hi := base, base
	for hi-lo < int64(window)-1 {
		grew := false
		if lo > devLo && bySlot[lo-1] != nil {
			lo--
			grew = true
		}
		if hi-lo < int64(window)-1 && bySlot[hi+1] != nil {
			hi++
			grew = true
		}
		if !grew {
			break
		}
	}
	releaseOutside := func() {
		for _, b := range extras {
			if b.swslot < lo || b.swslot > hi {
				b.mu.Unlock()
			}
		}
	}
	releaseOutside()
	if lo == hi {
		return s.anonPageinLocked(a) // nothing adjacent: plain single-slot pagein
	}
	run := make([]*anon, 0, hi-lo+1)
	for sl := lo; sl <= hi; sl++ {
		run = append(run, bySlot[sl])
	}

	// Allocate the frames, then read the whole run with one I/O. Any
	// failure rolls the neighbours back and degrades to the single-slot
	// path for the faulting anon — clustering is an optimisation, never a
	// new way to fail a fault.
	abort := func(pages []*phys.Page) {
		for _, pg := range pages {
			if pg != nil {
				pg.Busy.Store(false)
				s.mach.Mem.Free(pg)
			}
		}
		for _, b := range run {
			if b != a {
				b.mu.Unlock()
			}
		}
	}
	pages := make([]*phys.Page, len(run))
	bufs := make([][]byte, len(run))
	for i, b := range run {
		pg, err := s.allocPage(b, 0, false)
		if err != nil {
			abort(pages)
			return s.anonPageinLocked(a)
		}
		pg.Busy.Store(true)
		pages[i] = pg
		bufs[i] = pg.Data
	}
	if err := s.mach.Swap.ReadCluster(lo, bufs); err != nil {
		abort(pages)
		return s.anonPageinLocked(a)
	}
	for i, b := range run {
		pg := pages[i]
		pg.Busy.Store(false)
		// The swap copy remains valid until the page is dirtied again;
		// keep the slot so a clean eviction is free.
		pg.Dirty.Store(false)
		b.page = pg
		if b != a {
			s.mach.Mem.Activate(pg)
			b.mu.Unlock()
		}
	}
	s.mach.Stats.Inc(sim.CtrPageinClusters)
	s.mach.Stats.Add(sim.CtrPageinClustered, int64(len(run)-1))
	s.mach.Stats.Add("uvm.anon.pagein", int64(len(run)))
	return nil
}
