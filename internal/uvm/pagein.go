package uvm

import (
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/swap"
)

// Clustered pagein: the read-side mirror of the paper's clustered
// pageout. The pagedaemon reassigns a whole dirty cluster — typically
// VA-adjacent anons of one amap — into one contiguous run of swap slots
// and writes it with a single I/O. That layout is exactly what makes the
// reverse trip cheap: when one of those anons faults back in, its VA
// neighbours very likely sit in the adjacent slots, so one positioning
// cost can drag the whole neighbourhood back instead of paying a full
// seek per page as the faults arrive one by one.
//
// There is no slot→anon reverse map, and we do not want one; the amap
// already is the locality map. pageinCluster therefore walks the faulting
// anon's VA neighbours in its amap, keeps those whose swap slots extend
// the faulting slot into a contiguous same-device run, and issues one
// swap.ReadCluster for the run. Neighbours are acquired with TryLock only
// (anon locks are peers in the lock order; blocking could deadlock with a
// concurrent fault walking the other way), so a busy neighbour simply
// drops out of the window. Pages brought in for neighbours are activated
// but not mapped: the fault-time lookahead maps resident neighbours for
// free, and a later fault finds them resident.

// pageinCluster brings a's data in from swap, reading up to
// cfg.PageinCluster adjacent allocated slots in one I/O when the
// faulting anon's VA neighbours occupy them. Called with am.mu and a.mu
// held, a.page == nil and a.swslot valid; on success a.page is resident,
// exactly like anonPageinLocked (the single-slot path it falls back to
// whenever no neighbour is adjacent or resources run short).
func (s *System) pageinCluster(am *amap, a *anon, slot int) error {
	window := s.pageinWindow()
	base := a.swslot
	devLo, devHi := s.mach.Swap.DeviceBounds(base)

	// Collect willing VA neighbours: swapped out, unloaned, slot within
	// the window on the same device, lock available right now.
	bySlot := map[int64]*anon{base: a}
	var extras []*anon
	for d := 1 - window; d < window; d++ {
		if d == 0 {
			continue
		}
		b := am.impl.get(slot + d)
		if b == nil || b == a {
			continue
		}
		if !b.mu.TryLock() {
			continue
		}
		if b.page != nil || b.loaned || b.swslot == swap.NoSlot ||
			b.swslot < devLo || b.swslot >= devHi ||
			b.swslot <= base-int64(window) || b.swslot >= base+int64(window) ||
			bySlot[b.swslot] != nil {
			b.mu.Unlock()
			continue
		}
		bySlot[b.swslot] = b
		extras = append(extras, b)
	}

	// Grow the faulting slot into the largest contiguous run the
	// candidates cover, capped at the window.
	lo, hi := base, base
	for hi-lo < int64(window)-1 {
		grew := false
		if lo > devLo && bySlot[lo-1] != nil {
			lo--
			grew = true
		}
		if hi-lo < int64(window)-1 && bySlot[hi+1] != nil {
			hi++
			grew = true
		}
		if !grew {
			break
		}
	}
	releaseOutside := func() {
		for _, b := range extras {
			if b.swslot < lo || b.swslot > hi {
				b.mu.Unlock()
			}
		}
	}
	releaseOutside()
	if lo == hi {
		return s.anonPageinLocked(a) // nothing adjacent: plain single-slot pagein
	}
	run := make([]*anon, 0, hi-lo+1)
	for sl := lo; sl <= hi; sl++ {
		run = append(run, bySlot[sl])
	}

	// Allocate the frames, then read the whole run with one I/O. Any
	// failure rolls the neighbours back and degrades to the single-slot
	// path for the faulting anon — clustering is an optimisation, never a
	// new way to fail a fault.
	abort := func(pages []*phys.Page) {
		for _, pg := range pages {
			if pg != nil {
				pg.Busy.Store(false)
				s.mach.Mem.Free(pg)
			}
		}
		for _, b := range run {
			if b != a {
				b.mu.Unlock()
			}
		}
	}
	pages := make([]*phys.Page, len(run))
	bufs := make([][]byte, len(run))
	for i, b := range run {
		pg, err := s.allocPage(b, 0, false)
		if err != nil {
			abort(pages)
			return s.anonPageinLocked(a)
		}
		pg.Busy.Store(true)
		pages[i] = pg
		bufs[i] = pg.Data
	}
	if err := s.mach.Swap.ReadCluster(lo, bufs); err != nil {
		abort(pages)
		return s.anonPageinLocked(a)
	}
	for i, b := range run {
		pg := pages[i]
		pg.Busy.Store(false)
		// The swap copy remains valid until the page is dirtied again;
		// keep the slot so a clean eviction is free.
		pg.Dirty.Store(false)
		b.page = pg
		if b != a {
			s.mach.Mem.Activate(pg)
			b.mu.Unlock()
		}
	}
	s.mach.Stats.Inc(sim.CtrPageinClusters)
	s.mach.Stats.Add(sim.CtrPageinClustered, int64(len(run)-1))
	s.mach.Stats.Add("uvm.anon.pagein", int64(len(run)))
	return nil
}

// aobjPageinCluster is the aobj mirror of pageinCluster: on an aobj
// fault whose data lives in swap, neighbouring page *indices* of the
// same object whose slots extend the faulting slot into a contiguous
// same-device run are read with the one I/O. The adjacency information
// is already in aobjSlots — after the pagedaemon clusters an aobj's
// dirty pages out, index-adjacent pages usually occupy adjacent slots,
// which is exactly the layout that makes the return trip cheap.
//
// Called from aobjPager.get with o.mu held, pg the (not yet inserted)
// frame allocated for idx, and slot the re-read o.aobjSlots[idx].
// Neighbour frame allocation drops o.mu (allocObjPageLocked), so every
// candidate — and idx itself — is re-verified under the re-taken lock
// before the read. Returns (page, false, nil) on success with
// o.pages[idx] resident; (nil, true, nil) when idx's own slot state
// shifted while the lock was down (caller re-reads and retries);
// (nil, false, nil) when no neighbour is willing (caller falls back to
// the single-slot read). Clustering is an optimisation, never a new way
// to fail a fault: read errors roll the neighbours back and report
// nothing.
func (s *System) aobjPageinCluster(o *uobject, idx int, slot int64, pg *phys.Page) (*phys.Page, bool, error) {
	window := s.pageinWindow()
	devLo, devHi := s.mach.Swap.DeviceBounds(slot)

	// Candidate neighbours: non-resident indices of the window whose
	// slots lie within the window of ours on the same device.
	candidate := func(nIdx int) (int64, bool) {
		nSlot, ok := o.aobjSlots[nIdx]
		if !ok {
			return 0, false
		}
		if _, resident := o.pages[nIdx]; resident {
			return 0, false
		}
		if nSlot < devLo || nSlot >= devHi ||
			nSlot <= slot-int64(window) || nSlot >= slot+int64(window) {
			return 0, false
		}
		return nSlot, true
	}
	bySlot := map[int64]int{slot: idx}
	for d := 1 - window; d < window; d++ {
		nIdx := idx + d
		if d == 0 || nIdx < 0 || nIdx >= o.sizePg {
			continue
		}
		if nSlot, ok := candidate(nIdx); ok {
			if _, dup := bySlot[nSlot]; !dup {
				bySlot[nSlot] = nIdx
			}
		}
	}
	growRun := func() (int64, int64) {
		lo, hi := slot, slot
		for hi-lo < int64(window)-1 {
			grew := false
			if lo > devLo {
				if _, ok := bySlot[lo-1]; ok {
					lo--
					grew = true
				}
			}
			if hi-lo < int64(window)-1 {
				if _, ok := bySlot[hi+1]; ok {
					hi++
					grew = true
				}
			}
			if !grew {
				break
			}
		}
		return lo, hi
	}
	lo, hi := growRun()
	if lo == hi {
		return nil, false, nil // nothing adjacent
	}

	// Allocate the neighbour frames. Each allocation drops o.mu, so a
	// candidate can be invalidated mid-loop; re-verify the whole set
	// afterwards and shrink the run to what survived.
	frames := map[int64]*phys.Page{slot: pg}
	freeFrames := func(except int64) {
		//uvm:maporder-ok frees interchangeable frames; no cost depends on free order
		for sl, f := range frames {
			if sl != except && f != pg {
				s.mach.Mem.Free(f)
			}
		}
	}
	for sl := lo; sl <= hi; sl++ {
		if sl == slot {
			continue
		}
		nIdx := bySlot[sl]
		npg, raced, err := s.allocObjPageLocked(o, nIdx, false)
		if err != nil || raced {
			// Out of memory, or the neighbour became resident: it simply
			// drops out of the window.
			delete(bySlot, sl)
			continue
		}
		frames[sl] = npg
	}
	// o.mu went down: if idx itself changed hands, unwind completely.
	if existing, resident := o.pages[idx]; resident {
		freeFrames(slot)
		s.mach.Mem.Free(pg)
		return existing, false, nil
	}
	if cur, ok := o.aobjSlots[idx]; !ok || cur != slot {
		freeFrames(slot)
		return nil, true, nil // caller re-reads the slot and retries
	}
	for sl := lo; sl <= hi; sl++ {
		if sl == slot {
			continue
		}
		f, have := frames[sl]
		if !have {
			continue
		}
		if nSlot, ok := candidate(bySlot[sl]); !ok || nSlot != sl {
			s.mach.Mem.Free(f)
			delete(frames, sl)
			delete(bySlot, sl)
		}
	}
	lo, hi = growRun()
	// Frames outside the (possibly shrunk) run go back.
	//uvm:maporder-ok frees interchangeable frames; no cost depends on free order
	for sl, f := range frames {
		if sl < lo || sl > hi {
			s.mach.Mem.Free(f)
			delete(frames, sl)
		}
	}
	if lo == hi {
		return nil, false, nil
	}

	// One I/O for the whole run, under o.mu like the single-slot read.
	run := make([]*phys.Page, 0, hi-lo+1)
	bufs := make([][]byte, 0, hi-lo+1)
	for sl := lo; sl <= hi; sl++ {
		f := frames[sl]
		f.Busy.Store(true)
		run = append(run, f)
		bufs = append(bufs, f.Data)
	}
	if err := s.mach.Swap.ReadCluster(lo, bufs); err != nil {
		for _, f := range run {
			f.Busy.Store(false)
			if f != pg {
				s.mach.Mem.Free(f)
			}
		}
		return nil, false, nil // degrade to the single-slot path
	}
	for sl := lo; sl <= hi; sl++ {
		f := frames[sl]
		f.Busy.Store(false)
		// The swap copy remains valid until the page is dirtied again;
		// keep the slot so a clean eviction is free.
		f.Dirty.Store(false)
		o.pages[bySlot[sl]] = f
		if f != pg {
			s.mach.Mem.Activate(f)
		}
	}
	s.mach.Stats.Add(sim.CtrPageIns, int64(len(run)))
	s.mach.Stats.Inc(sim.CtrAobjPageinClusters)
	s.mach.Stats.Add(sim.CtrAobjPageinClustered, int64(len(run)-1))
	return pg, false, nil
}
