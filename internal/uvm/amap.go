package uvm

import (
	"fmt"
	"sync"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/swap"
)

// anon describes a single page of anonymous memory (§5.2): a reference
// count and the current location of the data — a resident page, a swap
// slot, or both (a clean resident page whose copy is still valid on swap).
//
// An anon with a single reference is writable in place; an anon referenced
// by more than one amap is copy-on-write.
//
// mu guards every field. It sits below the amap lock and above the page
// identity lock in the package lock order; the fault path holds it from
// resolution through pmap entry so the pagedaemon (which TryLocks it)
// can never yank the page out from under a fault in progress.
type anon struct {
	//uvm:lock anon
	mu     sync.Mutex
	refs   int
	page   *phys.Page
	swslot int64
	// loaned marks an anon whose page is *borrowed* via page loanout /
	// page transfer (§7) rather than owned: the page's true owner is
	// another anon or object (or nobody, if the owner has since died).
	loaned bool
}

// String renders the anon's refcount and data location for debug output.
func (a *anon) String() string {
	loc := "none"
	if a.page != nil {
		loc = "resident"
	} else if a.swslot != swap.NoSlot {
		loc = fmt.Sprintf("swap:%d", a.swslot)
	}
	return fmt.Sprintf("anon(refs=%d %s)", a.refs, loc)
}

func (s *System) newAnon() *anon {
	s.mach.Clock.Advance(s.mach.Costs.AnonAlloc)
	s.mach.Stats.Inc("uvm.anon.alloc")
	s.mach.Stats.Inc("uvm.anon.live")
	return &anon{refs: 1, swslot: swap.NoSlot}
}

// anonRef adds a reference (a new amap slot pointing at the anon).
func (s *System) anonRef(a *anon) {
	a.mu.Lock()
	a.refs++
	a.mu.Unlock()
}

// anonUnref drops one reference; the last drop frees the page and swap
// slot. This reference counting is what makes the collapse operation —
// and the swap leak it fights — unnecessary in UVM (§5.3).
func (s *System) anonUnref(a *anon) {
	a.mu.Lock()
	if a.refs <= 0 {
		panic("uvm: anon refcount underflow")
	}
	a.refs--
	if a.refs > 0 {
		a.mu.Unlock()
		return
	}
	pg := a.page
	a.page = nil
	loanedView := a.loaned
	slot := a.swslot
	a.swslot = swap.NoSlot
	a.mu.Unlock()

	if pg != nil {
		s.dropAnonPage(pg, loanedView)
	}
	if slot != swap.NoSlot {
		s.mach.Swap.Free(slot)
	}
	s.mach.Clock.Advance(s.mach.Costs.AnonFree)
	s.mach.Stats.Add("uvm.anon.live", -1)
}

// dropAnonPage releases a dying anon's hold on pg. The keep-or-free
// decision races with concurrent loan returns, so it is made atomically
// under the page identity lock.
func (s *System) dropAnonPage(pg *phys.Page, loanedView bool) {
	freeIt := false
	pg.WithIdentity(func(owner any) {
		switch {
		case loanedView:
			// This anon merely borrowed the page: drop the loan; free the
			// frame only if the true owner is already gone and we were
			// the last borrower.
			if pg.LoanCount.Add(-1) == 0 && owner == nil {
				freeIt = true
			}
		case pg.LoanCount.Load() > 0:
			// Dying owner of a loaned-out page: orphan the frame. The
			// borrowers keep the data; the last of them frees it. If the
			// last loan was returned while we were deciding, the frame is
			// already unreachable and we free it ourselves.
			pg.Orphan()
			s.mach.MMU.PageProtect(pg, param.ProtNone)
			s.mach.Mem.Dequeue(pg)
			if pg.LoanCount.Load() == 0 {
				freeIt = true
			}
		default:
			s.mach.MMU.PageProtect(pg, param.ProtNone)
			s.mach.Mem.Dequeue(pg)
			if pg.WireCount.Load() > 0 {
				pg.WireCount.Store(0)
			}
			freeIt = true
		}
	})
	if freeIt {
		s.mach.MMU.PageProtect(pg, param.ProtNone)
		s.mach.Mem.Dequeue(pg)
		s.mach.Mem.Free(pg)
	}
}

// anonPageinLocked brings a swapped-out anon's data back into a fresh
// page. Caller holds a.mu.
func (s *System) anonPageinLocked(a *anon) error {
	if a.page != nil {
		return nil
	}
	pg, err := s.allocPage(a, 0, false)
	if err != nil {
		return err
	}
	pg.Busy.Store(true)
	err = s.mach.Swap.ReadSlot(a.swslot, pg.Data)
	pg.Busy.Store(false)
	if err != nil {
		s.mach.Mem.Free(pg)
		return err
	}
	// The swap copy remains valid until the page is dirtied again; keep
	// the slot so a clean eviction is free.
	pg.Dirty.Store(false)
	a.page = pg
	s.mach.Stats.Inc("uvm.anon.pagein")
	return nil
}

// amapImpl is the amap storage interface. The paper (§5.2) notes UVM
// deliberately separates the amap interface from its implementation so the
// latter can be swapped (array now, hybrid hash/array later); this
// interface is that seam.
type amapImpl interface {
	get(slot int) *anon
	set(slot int, a *anon)
	nslots() int
	// foreach visits every non-nil slot; return false to stop.
	foreach(fn func(slot int, a *anon) bool)
}

// arrayAmap is the array-based implementation UVM currently uses (§5.3:
// "an array-based implementation whose space cost varies with the number
// of virtual pages covered").
type arrayAmap struct {
	anons []*anon
}

func (aa *arrayAmap) get(slot int) *anon {
	if slot < 0 || slot >= len(aa.anons) {
		return nil
	}
	return aa.anons[slot]
}

func (aa *arrayAmap) set(slot int, a *anon) {
	if slot < 0 || slot >= len(aa.anons) {
		panic(fmt.Sprintf("uvm: amap slot %d out of range [0,%d)", slot, len(aa.anons)))
	}
	aa.anons[slot] = a
}

func (aa *arrayAmap) nslots() int { return len(aa.anons) }

func (aa *arrayAmap) foreach(fn func(int, *anon) bool) {
	for i, a := range aa.anons {
		if a != nil && !fn(i, a) {
			return
		}
	}
}

// amap is an anonymous memory map: a set of anons covering a range of
// virtual pages (§5.2). refs counts the map entries referencing it. mu
// guards refs and the impl contents; it nests below map and object locks
// and above anon locks.
type amap struct {
	//uvm:lock amap
	mu   sync.Mutex
	impl amapImpl
	refs int
}

func (s *System) newAmap(nslots int) *amap {
	s.mach.Clock.Advance(s.mach.Costs.AmapAlloc)
	// The array implementation pays per-slot initialisation up front; the
	// hybrid's hash form only pays for the header until slots populate
	// (the §5.3 space/time trade).
	if s.cfg.AmapImpl == AmapArray || nslots <= hybridThresholdSlots {
		s.mach.Clock.ChargeN(nslots, s.mach.Costs.AmapPerSlot)
	}
	s.mach.Stats.Inc("uvm.amap.alloc")
	s.mach.Stats.Inc("uvm.amap.live")
	return &amap{impl: s.newAmapImpl(nslots), refs: 1}
}

// amapRef adds a map-entry reference.
func (s *System) amapRef(am *amap) {
	am.mu.Lock()
	am.refs++
	am.mu.Unlock()
}

// amapUnref drops one map-entry reference; the last drop releases every
// anon.
//
// Granularity note: references are per-amap, not per-slot-range (real
// UVM's amap_unref takes a range). When a clip splits an entry, both
// halves share the amap; unmapping one half keeps the whole amap — and
// its anons — alive until the sibling goes too. The waste is transient
// and bounded by the original mapping's size, and full teardown (exit,
// complete munmap) always frees everything, which the leak tests verify.
func (s *System) amapUnref(am *amap) {
	am.mu.Lock()
	if am.refs <= 0 {
		panic("uvm: amap refcount underflow")
	}
	am.refs--
	if am.refs > 0 {
		am.mu.Unlock()
		return
	}
	am.impl.foreach(func(slot int, a *anon) bool {
		s.anonUnref(a)
		am.impl.set(slot, nil)
		return true
	})
	am.mu.Unlock()
	s.mach.Stats.Add("uvm.amap.live", -1)
}

// amapCopy clears an entry's needs-copy flag (§5.2, Figure 3):
//
//   - no amap yet: allocate an empty one sized to the entry;
//   - sole reference to the amap: nothing to copy — just clear the flag
//     (the "child" case in Figure 3);
//   - shared amap: allocate a new amap and copy the anon *pointers* for
//     the entry's slice, bumping each anon's reference count. No page data
//     moves; that is deferred to the per-anon copy-on-write fault.
//
// Caller holds the entry's map lock exclusively — amapCopy mutates the
// entry itself.
func (s *System) amapCopy(e *entry) {
	defer func() { e.needsCopy = false }()
	if e.amap == nil {
		e.amap = s.newAmap(e.pages())
		e.amapOff = 0
		return
	}
	am := e.amap
	am.mu.Lock()
	if am.refs == 1 {
		am.mu.Unlock()
		return
	}
	n := e.pages()
	na := s.newAmap(n) // private until published below
	for i := 0; i < n; i++ {
		if a := am.impl.get(e.amapOff + i); a != nil {
			s.anonRef(a)
			na.impl.set(i, a)
		}
	}
	am.mu.Unlock()
	s.amapUnref(am)
	e.amap = na
	e.amapOff = 0
}
