package uvm

import (
	"sync"

	"uvm/internal/param"
	"uvm/internal/vmapi"
)

// System V shared memory support (§5: anonymous memory is used "for
// System V shared memory"). A segment is an aobj; attachments are shared
// mappings of it. The uvm_object reference count keeps the segment (and
// its swap) alive until the last attachment and the creation reference
// are gone.

type shmSegment struct {
	sys    *System
	npages int

	// mu guards obj against a concurrent Attach/Release; held across the
	// target map lock in Attach.
	//uvm:lock shmseg
	mu  sync.Mutex
	obj *uobject
}

// NewShmSegment implements vmapi.System.
func (s *System) NewShmSegment(npages int) (vmapi.ShmSegment, error) {
	if npages <= 0 {
		return nil, vmapi.ErrInvalid
	}
	return &shmSegment{sys: s, obj: s.newAObj(npages), npages: npages}, nil
}

// Pages implements vmapi.ShmSegment.
func (seg *shmSegment) Pages() int { return seg.npages }

// Attach implements vmapi.ShmSegment.
func (seg *shmSegment) Attach(pi vmapi.Process, prot param.Prot) (param.VAddr, error) {
	p, ok := pi.(*Process)
	if !ok || p.sys != seg.sys {
		return 0, vmapi.ErrInvalid
	}
	if p.exited.Load() {
		return 0, vmapi.ErrExited
	}
	s := seg.sys
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if seg.obj == nil {
		return 0, vmapi.ErrInvalid
	}
	m := p.m
	m.lock()
	defer m.unlock()
	// Re-check under the map lock (see Mmap): an attach racing Exit's
	// teardown would leak the entry and its object reference.
	if p.exited.Load() {
		return 0, vmapi.ErrExited
	}
	length := param.VSize(seg.npages) * param.PageSize
	va, err := m.findSpace(param.MmapHintBase, length)
	if err != nil {
		return 0, err
	}
	e := s.allocEntry(m)
	e.start, e.end = va, va+param.VAddr(length)
	e.obj = seg.obj
	s.objRef(seg.obj)
	e.prot, e.maxProt = prot, param.ProtRWX
	e.inherit = param.InheritShare
	m.insert(e)
	s.mach.Stats.Inc("uvm.shm.attach")
	return va, nil
}

// Release implements vmapi.ShmSegment.
func (seg *shmSegment) Release() {
	seg.mu.Lock()
	obj := seg.obj
	seg.obj = nil
	seg.mu.Unlock()
	if obj == nil {
		return
	}
	seg.sys.objUnref(obj)
}
