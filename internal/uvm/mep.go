package uvm

import (
	"uvm/internal/param"
	"uvm/internal/vmapi"
)

// Map entry passing (§7): processes (and the kernel) exchange whole
// chunks of virtual address space by moving the high-level mapping
// structures, not pages. The per-page cost is therefore near zero — lower
// than loanout or transfer — at the price of possible map entry
// fragmentation when used on small ranges, and of being unusable for
// DMA-style kernel consumers.

// CopyMode selects the semantics of an exported range.
type CopyMode int

const (
	// ExportShare gives the importer shared access: stores are mutually
	// visible.
	ExportShare CopyMode = iota
	// ExportCopy gives the importer a copy-on-write copy.
	ExportCopy
	// ExportDonate moves the range: it disappears from the exporter.
	ExportDonate
)

// MapToken carries exported mappings between processes. It holds
// references on the underlying amaps and objects until imported or
// released. Single use.
type MapToken struct {
	sys    *System
	pieces []tokenPiece
	used   bool
}

type tokenPiece struct {
	length param.VSize

	amap    *amap
	amapOff int
	obj     *uobject
	off     param.PageOff

	prot, maxProt  param.Prot
	advice         param.Advice
	cow, needsCopy bool
}

// TotalSize returns the address-space size the token carries.
func (t *MapToken) TotalSize() param.VSize {
	var sum param.VSize
	for _, pc := range t.pieces {
		sum += pc.length
	}
	return sum
}

// Export packages [addr, addr+length) of p's address space into a token.
func (p *Process) Export(addr param.VAddr, length param.VSize, mode CopyMode) (*MapToken, error) {
	if p.exited.Load() {
		return nil, vmapi.ErrExited
	}
	if !param.PageAligned(addr) || length == 0 {
		return nil, vmapi.ErrInvalid
	}
	s := p.sys

	m := p.m
	m.lock()
	end := addr + param.VAddr(param.RoundSize(length))
	entries := m.entriesIn(addr, end)
	if len(entries) == 0 {
		m.unlock()
		return nil, vmapi.ErrFault
	}
	tok := &MapToken{sys: s}
	var donated []*entry
	for _, e := range entries {
		// Sharing (or COW-exporting) a needs-copy entry requires a real
		// amap so both sides reference the same anons (§5.4).
		if e.needsCopy && mode != ExportDonate {
			s.amapCopy(e)
		}
		pc := tokenPiece{
			length:    param.VSize(e.end - e.start),
			amap:      e.amap,
			amapOff:   e.amapOff,
			obj:       e.obj,
			off:       e.off,
			prot:      e.prot,
			maxProt:   e.maxProt,
			advice:    e.advice,
			cow:       e.cow,
			needsCopy: e.needsCopy,
		}
		switch mode {
		case ExportShare:
			if e.amap != nil {
				s.amapRef(e.amap)
			}
			if e.obj != nil {
				s.objRef(e.obj)
			}
		case ExportCopy:
			// Both sides go copy-on-write over the shared amap — the
			// "copy-on-write area becoming shared with another process"
			// situation the paper notes map entry passing must handle.
			pc.cow, pc.needsCopy = true, true
			if e.cow {
				e.needsCopy = true
				p.pm.Protect(e.start, e.end, e.prot&^param.ProtWrite)
			}
			if e.amap != nil {
				s.amapRef(e.amap)
			}
			if e.obj != nil {
				s.objRef(e.obj)
			}
		case ExportDonate:
			// The references move into the token.
			m.unlink(e)
			m.pmap.Remove(e.start, e.end)
			donated = append(donated, e)
		default:
			m.unlock()
			return nil, vmapi.ErrInvalid
		}
		tok.pieces = append(tok.pieces, pc)
	}
	m.unlock()
	for _, e := range donated {
		s.freeEntry(m, e)
	}
	s.mach.Stats.Inc("uvm.mep.exports")
	return tok, nil
}

// Import maps a token's contents into p's address space at a
// kernel-chosen address and consumes the token.
func (p *Process) Import(tok *MapToken) (param.VAddr, error) {
	if p.exited.Load() {
		return 0, vmapi.ErrExited
	}
	if tok == nil || tok.used || tok.sys != p.sys {
		return 0, vmapi.ErrInvalid
	}
	s := p.sys

	m := p.m
	m.lock()
	// Re-check under the map lock (see Mmap): imports racing Exit's
	// teardown would leak the token's mappings.
	if p.exited.Load() {
		m.unlock()
		return 0, vmapi.ErrExited
	}
	base, err := m.findSpace(param.MmapHintBase, tok.TotalSize())
	if err != nil {
		m.unlock()
		return 0, err
	}
	va := base
	for _, pc := range tok.pieces {
		e := s.allocEntry(m)
		e.start, e.end = va, va+param.VAddr(pc.length)
		e.amap, e.amapOff = pc.amap, pc.amapOff
		e.obj, e.off = pc.obj, pc.off
		e.prot, e.maxProt = pc.prot, pc.maxProt
		e.advice = pc.advice
		e.inherit = param.InheritCopy
		e.cow, e.needsCopy = pc.cow, pc.needsCopy
		m.insert(e)
		va = e.end
	}
	m.unlock()
	tok.used = true
	tok.pieces = nil
	s.mach.Stats.Inc("uvm.mep.imports")
	return base, nil
}

// Release drops an unimported token's references.
func (t *MapToken) Release() {
	if t.used {
		return
	}
	t.used = true
	s := t.sys
	for _, pc := range t.pieces {
		if pc.amap != nil {
			s.amapUnref(pc.amap)
		}
		if pc.obj != nil {
			s.objUnref(pc.obj)
		}
	}
	t.pieces = nil
}
