// Package uvm implements UVM, the paper's contribution: a virtual memory
// system with two-level (amap + object) copy-on-write instead of shadow
// object chains, memory objects embedded in their data sources, a
// general-purpose fault handler with resident-page lookahead, single-call
// mapping, two-phase unmap, wiring without map fragmentation, aggressive
// clustered anonymous pageout with swap-slot reassignment, and three
// VM-based data movement mechanisms (page loanout, page transfer, map
// entry passing).
//
// It boots on the same vmapi.Machine substrate as internal/bsdvm — same
// pmap layer, same cost table, same disks — so every measured difference
// between the two packages is a design difference the paper describes.
//
// # Locking
//
// Unlike internal/bsdvm, which serialises every kernel entry behind one
// big lock (a pre-SMP BSD kernel), this package uses fine-grained
// locking so independent processes fault, loan, transfer and page out
// concurrently:
//
//   - each vmMap carries a sync.RWMutex: mutating operations (mmap,
//     munmap, fork, mprotect, wiring, map entry passing) take it
//     exclusively; the fault path takes it shared, upgrading to
//     exclusive only when it must mutate the entry itself (clearing
//     needs-copy / allocating the amap);
//   - each amap, anon and uobject carries its own mutex guarding its
//     reference count and contents;
//   - page state bits are atomics and page identity (owner) has a
//     per-page mutex (see internal/phys), so loan teardown and the
//     pagedaemon can make atomic keep-or-free decisions about frames
//     whose owner is changing;
//   - the page queues in internal/phys are sharded with per-shard locks;
//   - the stat counters in internal/sim are lock-free atomics.
//
// The lock ordering is:
//
//	map -> object -> amap -> anon -> page identity -> leaf
//
// where "leaf" covers the pmap/MMU locks, the phys queue shards, the
// sharded swap allocator, vfs and disk — none of which acquire VM-layer
// locks. Two map locks nest only parent-before-child during fork (the
// child is not yet visible to any other goroutine).
//
// Within the pmap leaf there is one further level: a pmap's own mutex
// nests above the MMU's sharded reverse-map (pv) bucket locks, at most
// one bucket is held at a time (batch operations visit buckets in
// ascending index, one after another), and bucket locks are strict
// leaves — nothing is acquired under them (see the locking note in
// internal/pmap). The batched fault-ahead path (lookahead) resolves its
// whole advice window under one amap lock acquisition — candidate anons
// are TryLocked, busy neighbours drop out — plus at most one object
// acquisition taken lazily when a candidate lacks an anon; with the
// amap held that object acquisition is out of order, which is safe
// because it is TryLock-only and so can never form a blocking cycle.
// The collected owner locks are held across a single Pmap.EnterBatch,
// so reclaim's TryLock-and-skip protocol keeps those pages live until
// they are mapped.
//
// The phys leaf likewise has internal structure when the per-CPU
// free-page caches are enabled (phys.Mem.SetAllocCaches): a magazine
// lock sits above the page-queue shard locks — refill, drain and reap
// take shard locks while holding one magazine — and sibling magazines
// are only ever TryLocked (the pool-dry steal path), so magazines can
// never form a blocking cycle among themselves. Nothing in phys
// acquires VM-layer locks, so the phys-internal ordering is invisible
// to the map -> object -> amap -> anon hierarchy above; completion
// callbacks and reclaim may free or allocate pages (touching magazines
// and shards) under the same rules as before.
//
// # Pageout
//
// Reclaim runs in a dedicated pagedaemon goroutine (see pdaemon.go),
// woken by phys.Mem's low-water callback; allocators that find the free
// list empty block on the daemon's condition variable instead of
// reclaiming inline, and retry once a reclaim round completes. Reclaim —
// whether in the daemon, a reclaim worker, or the direct-reclaim
// fallback — acquires anon/object locks only with TryLock and skips
// pages whose owner is busy, so it can run concurrently with any
// allocation path — even one that already holds map, amap, anon or
// object locks — without deadlocking; pages clustered for pageout keep
// their owner locked until the I/O completes, which is what makes a
// concurrent fault on a page mid-pageout block and then cleanly page
// back in. System.Shutdown stops the daemon gracefully, releasing any
// blocked allocators, and drains in-flight pageout I/O.
//
// With cfg.AsyncPageout the cluster I/O itself is overlapped: the
// daemon submits the write with swap.WriteClusterAsync and scans on;
// ownership of the cluster's locked anons/objects travels with the
// in-flight I/O and the *completion callback* — running on a swap I/O
// goroutine — detaches and frees the pages, releases those locks, and
// wakes blocked allocators. Completion callbacks therefore inherit the
// lock order mid-chain: they hold (but never acquire) anon/object
// locks, and may only take locks strictly below them — page identity
// and leaf locks (phys queue shards, the swap allocator, the daemon's
// own condvar mutex). A completion callback must never lock a map or an
// amap, and never blocks on a TryLock-only path, so it cannot deadlock
// against faults, reclaim workers, or Shutdown. With cfg.ReclaimWorkers
// > 1 the daemon dispatches that many workers per round over disjoint
// page-queue shard ranges; the daemon itself remains the only
// watermark/round coordinator.
//
// # Object writeback
//
// The object writeback pipeline (objwb.go, cfg.AsyncWriteback) extends
// the same completion discipline to the paths that clean object pages
// without evicting them — Msync, vnode recycling, last-unmap flushes —
// and to the pagedaemon's vnode put path. Dirty pages are collected and
// marked Busy under the object lock, their writable mappings narrowed,
// and the lock released; the pages then leave as contiguous-offset
// clusters through a per-backend bounded in-flight window (vnode pages
// via the vfs async writer, aobj pages via swap.WriteClusterAsync). A
// fault or file write that hits a busy page sleeps on the system
// writeback condvar; the cluster's completion clears Dirty/Busy, wakes
// those waiters, and signals the submitter's batch. Writeback
// completions run on I/O goroutines holding no VM locks and may only
// touch page state, the stats and that condvar — never a map, object or
// amap lock — so they cannot deadlock against faults or reclaim. The
// reclaim flavour (vnodePageoutAsync) instead inherits its object lock
// from the scan, exactly like swap pageout completions.
package uvm

import (
	"sync"
	"sync/atomic"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
)

// Config tunes UVM. Use DefaultConfig as the baseline.
type Config struct {
	// ReclaimBatch is the pagedaemon's per-activation free target.
	ReclaimBatch int
	// MaxCluster is the largest anonymous pageout cluster the pagedaemon
	// assembles (64 pages = 256 KB, UVM's default).
	MaxCluster int
	// DisableClustering forces one-page-at-a-time anonymous pageout
	// (ablation for Figure 5).
	DisableClustering bool
	// DisableLookahead turns off fault-time neighbour mapping (ablation
	// for Table 2).
	DisableLookahead bool
	// KernelEntryPool bounds kernel map entries, as in BSD VM.
	KernelEntryPool int
	// AmapImpl selects the anonymous-map storage strategy: the array
	// implementation UVM ships with, or the hash/array hybrid the paper
	// suggests for large sparse amaps (§5.3).
	AmapImpl AmapImplKind
	// AsyncPagein enables the paper's §10 future-work feature: on a
	// fault, schedule non-resident neighbour pages for pagein so nearby
	// future faults find them resident.
	AsyncPagein bool
	// LowWater is the free-page threshold (in pages) at which the
	// asynchronous pagedaemon is woken. 0 sizes it automatically from
	// the machine: max(2×MaxCluster, total/64), capped at total/4.
	LowWater int
	// InlineReclaim disables the asynchronous pagedaemon: allocating
	// goroutines reclaim inline, as both systems did before the daemon
	// existed (ablation for the memory-pressure experiment). Implies
	// synchronous pageout regardless of AsyncPageout.
	InlineReclaim bool
	// AsyncPageout overlaps pageout I/O with the next reclaim scan: the
	// pagedaemon submits dirty clusters with swap.WriteClusterAsync and
	// keeps scanning; the completion callback releases the cluster's
	// pages and owners. Daemon rounds only — direct reclaim in an
	// allocating goroutine stays synchronous, because that goroutine
	// needs a page now.
	AsyncPageout bool
	// PageoutWindow bounds in-flight asynchronous cluster writes per
	// swap device (backpressure on the daemon's scan). 0 means
	// swap.DefaultAIOWindow.
	PageoutWindow int
	// ReclaimWorkers is the number of parallel reclaim workers the
	// daemon dispatches per round, each scanning a disjoint range of the
	// sharded page queues. 0 or 1 keeps the classic single scan, whose
	// operation order is byte-deterministic on single-threaded runs.
	ReclaimWorkers int
	// PageinCluster is the largest clustered-pagein window, in pages: on
	// a swap-backed anon fault, up to this many adjacent allocated slots
	// are read with one I/O (the read-side mirror of clustered pageout).
	// It also sizes the aobj clustered-pagein window: an aobj fault drags
	// in neighbour pages whose swap slots adjoin the faulting one. 0 or 1
	// disables clustering and pages in one slot at a time.
	PageinCluster int
	// AsyncWriteback routes the object writeback paths — Msync, vnode
	// recycling, last-unmap write-back — through the asynchronous
	// clustered engine (objwb.go): dirty pages are collected under the
	// object lock, marked busy, and flushed as contiguous-offset clusters
	// through a per-backend bounded in-flight window (vnode pages to the
	// file, aobj pages to swap) while the submitter merely waits on the
	// completions. Off, those paths put one page per I/O, synchronously,
	// which keeps single-threaded runs byte-deterministic.
	AsyncWriteback bool
	// WritebackWindow bounds in-flight asynchronous object writeback
	// clusters on the filesystem disk (the vnode backend's window; the
	// aobj backend shares the swap device window, see PageoutWindow).
	// 0 means disk.DefaultAIOWindow. Only meaningful with AsyncWriteback.
	WritebackWindow int
	// WritebackCluster caps pages per object writeback I/O. 0 means
	// MaxCluster.
	WritebackCluster int
	// AutoTune engages the feedback control plane (internal/control,
	// autotune.go): the pageout/writeback windows, pagein cluster,
	// lookahead and pagedaemon watermarks become live settings steered by
	// observed completion latency, hit rates and allocation stalls, and a
	// periodic syncer trickles dirty object pages through the writeback
	// engine. Requires the asynchronous pagedaemon (no effect with
	// InlineReclaim). Off — the default — every knob stays exactly at its
	// configured static value and runs remain byte-deterministic;
	// vmapi.MachineConfig.AutoTune also sets this at boot.
	AutoTune bool
}

// DefaultConfig returns UVM's standard tuning.
func DefaultConfig() Config {
	return Config{
		ReclaimBatch:    64,
		MaxCluster:      64,
		KernelEntryPool: 4000,
	}
}

// System is a booted UVM instance.
type System struct {
	mach *vmapi.Machine
	cfg  Config

	// pd is the asynchronous pagedaemon (nil with cfg.InlineReclaim).
	pd *pagedaemon

	// tuner is the feedback control plane (nil unless AutoTune; see
	// autotune.go). The knobs it steers live here as atomics — always
	// initialised from cfg, so with the tuner off every read returns the
	// static configured value and behaviour is unchanged.
	tuner          *autotuner
	pageinClusterA atomic.Int32
	lookaheadA     atomic.Int32 // extra read-ahead pages over the advice baseline

	kmap      *vmMap
	kentryUse atomic.Int32

	// Cached counter handles for per-page loop paths, resolved once at
	// boot so the hot loops skip the string-keyed Stats lookup (the
	// counterhandle analyzer enforces this idiom).
	ctrPageIns        sim.Counter
	ctrPageOuts       sim.Counter
	ctrAsyncPageinPgs sim.Counter
	ctrObjWbClusters  sim.Counter
	ctrObjWbPages     sim.Counter
	ctrPdRounds       sim.Counter
	ctrPdDirect       sim.Counter
	ctrPdWorkerRounds sim.Counter
	ctrUbcReads       sim.Counter
	ctrUbcWrites      sim.Counter

	// vnObjMu serialises vnode<->uvm_object identity: the create-or-ref
	// decision in vnodeObject must be atomic across concurrent mappers
	// of the same file.
	//uvm:lock vnobj
	vnObjMu sync.Mutex

	//uvm:lock system
	procMu sync.Mutex
	procs  map[*Process]struct{}

	// lookaheadGate, when non-nil, runs between lookahead's candidate
	// collection and the batched pmap entry, with the candidates' owner
	// locks held. Test hook: the lookahead-vs-reclaim race test uses it
	// to run a reclaim pass inside the batching window.
	lookaheadGate func()

	// msyncGate, when non-nil, runs after an asynchronous flush has
	// submitted its clusters (object lock released, pages busy, I/O in
	// flight) and before the submitter waits on the batch. Test hook for
	// the msync race tests. Must be set before the flush starts.
	msyncGate func()
	// wbGate, when non-nil, runs at the start of every object writeback
	// completion, on the I/O goroutine. Test hook: the msync race tests
	// use it to hold completions while concurrent faults and reclaim
	// passes probe the busy pages.
	wbGate func()

	// Writeback waiter state: paths that find an object page busy (a
	// flush owns its contents) sleep here; wbGen is bumped and the
	// condvar broadcast by every flush completion (see objwb.go).
	//uvm:lock wbcond
	wbMu   sync.Mutex
	wbCond *sync.Cond
	wbGen  uint64
}

// Boot boots UVM on machine m with default configuration.
func Boot(m *vmapi.Machine) vmapi.System { return BootConfig(m, DefaultConfig()) }

// BootConfig boots with an explicit configuration.
func BootConfig(m *vmapi.Machine, cfg Config) *System {
	s := &System{
		mach:  m,
		cfg:   cfg,
		procs: make(map[*Process]struct{}),
	}
	s.ctrPageIns = m.Stats.Counter(sim.CtrPageIns)
	s.ctrPageOuts = m.Stats.Counter(sim.CtrPageOuts)
	s.ctrAsyncPageinPgs = m.Stats.Counter("uvm.asyncpagein.pages")
	s.ctrObjWbClusters = m.Stats.Counter(sim.CtrObjWbClusters)
	s.ctrObjWbPages = m.Stats.Counter(sim.CtrObjWbPages)
	s.ctrPdRounds = m.Stats.Counter(sim.CtrPdRounds)
	s.ctrPdDirect = m.Stats.Counter(sim.CtrPdDirect)
	s.ctrPdWorkerRounds = m.Stats.Counter(sim.CtrPdWorkerRounds)
	s.ctrUbcReads = m.Stats.Counter("uvm.ubc.reads")
	s.ctrUbcWrites = m.Stats.Counter("uvm.ubc.writes")
	s.wbCond = sync.NewCond(&s.wbMu)
	s.pageinClusterA.Store(int32(cfg.PageinCluster))
	if cfg.AsyncWriteback && cfg.WritebackWindow > 0 {
		m.FS.SetWriteWindow(cfg.WritebackWindow)
	}
	s.kmap = s.newMap("kernel", param.KernelBase, param.KernelMax, true)

	// Kernel text, data, bss — always-wired segments. Because they are
	// always wired, UVM does not track per-range wiring in the kernel map
	// (§3.2); adjacent boot allocations merge.
	for _, seg := range []struct {
		pages int
		prot  param.Prot
	}{{300, param.ProtRX}, {80, param.ProtRW}, {120, param.ProtRW}} {
		if _, err := s.kernelAlloc(seg.pages, seg.prot); err != nil {
			panic("uvm: kernel boot allocation failed: " + err.Error())
		}
	}

	if !cfg.InlineReclaim {
		if cfg.PageoutWindow > 0 {
			m.Swap.SetAIOWindow(cfg.PageoutWindow)
		}
		s.pd = newPagedaemon(s, s.lowWater())
		m.Mem.SetLowWater(s.pd.lowMark(), s.pd.kick)
		go s.pd.run()
		if cfg.AutoTune || m.AutoTune {
			s.startAutotune()
		}
	}
	return s
}

// pageinWindow reads the live clustered-pagein window (cfg.PageinCluster
// unless the control plane has moved it).
func (s *System) pageinWindow() int { return int(s.pageinClusterA.Load()) }

// lookaheadBoost reads the control plane's extra read-ahead pages (0
// unless autotuning).
func (s *System) lookaheadBoost() int { return int(s.lookaheadA.Load()) }

// tunerTick gives the control plane a chance to advance an epoch. Called
// from completion paths and the fault entry with no VM locks held; a
// single nil check when autotuning is off.
func (s *System) tunerTick() {
	if t := s.tuner; t != nil {
		t.tick()
	}
}

// lowWater sizes the pagedaemon's wake threshold for this machine.
func (s *System) lowWater() int {
	if s.cfg.LowWater > 0 {
		return s.cfg.LowWater
	}
	total := s.mach.Mem.TotalPages()
	low := 2 * s.cfg.MaxCluster
	if low < total/64 {
		low = total / 64
	}
	if low > total/4 {
		low = total / 4
	}
	if low < 1 {
		low = 1
	}
	return low
}

// Shutdown implements vmapi.System: it stops the pagedaemon goroutine,
// releasing any allocators blocked on it, waits for it to exit, and then
// drains any asynchronous pageout writes still in flight so no completion
// callback touches VM structures after Shutdown returns. The system
// remains usable — reclaim falls back to running inline in allocating
// goroutines — so shutdown order is forgiving. Idempotent.
func (s *System) Shutdown() {
	if s.tuner != nil {
		// Stop the syncer before the drains below: it submits new
		// writeback I/O, so it must be quiescent before Drain's "nothing
		// in flight" means anything.
		s.tuner.stop()
	}
	if s.pd != nil {
		s.pd.stop()
		s.mach.Swap.DrainAsync()
	}
	// Fire-and-forget object writebacks (last-unmap flushes) may still be
	// on the wire; drain both backends so no completion callback touches
	// VM structures after Shutdown returns. (Msync and recycle wait for
	// their own batches, so only unwaited submissions are left here.)
	s.mach.FS.DrainWrites()
	s.mach.Swap.DrainAsync()
}

// Name implements vmapi.System.
func (s *System) Name() string { return "uvm" }

// Machine implements vmapi.System.
func (s *System) Machine() *vmapi.Machine { return s.mach }

// KernelAlloc implements vmapi.System: wired kernel allocations coalesce
// with their neighbour when attributes match, so boot-time subsystem
// allocations do not each consume a map entry.
func (s *System) KernelAlloc(npages int, prot param.Prot) (param.VAddr, error) {
	return s.kernelAlloc(npages, prot)
}

func (s *System) kernelAlloc(npages int, prot param.Prot) (param.VAddr, error) {
	s.kmap.lock()
	defer s.kmap.unlock()
	va, err := s.kmap.findSpace(0, param.VSize(npages)*param.PageSize)
	if err != nil {
		return 0, err
	}
	e := s.allocEntry(s.kmap)
	e.start, e.end = va, va+param.VAddr(npages)*param.PageSize
	e.prot, e.maxProt = prot, param.ProtRWX
	e.wired = 1
	s.kmap.insertOrMerge(e)
	return va, nil
}

// KernelMapEntries implements vmapi.System.
func (s *System) KernelMapEntries() int {
	s.kmap.mu.RLock()
	defer s.kmap.mu.RUnlock()
	return s.kmap.n
}

// TotalMapEntries implements vmapi.System.
func (s *System) TotalMapEntries() int {
	s.procMu.Lock()
	defer s.procMu.Unlock()
	s.kmap.mu.RLock()
	total := s.kmap.n
	s.kmap.mu.RUnlock()
	//uvm:maporder-ok summing counts; order-independent
	for p := range s.procs {
		if p.vforked {
			continue // shares its parent's map; counting it would double
		}
		p.m.mu.RLock()
		total += p.m.n
		p.m.mu.RUnlock()
	}
	return total
}

// addProc registers a fully initialised process.
func (s *System) addProc(p *Process) {
	s.procMu.Lock()
	s.procs[p] = struct{}{}
	s.procMu.Unlock()
	s.mach.Stats.Inc("uvm.proc.created")
}

func (s *System) dropProc(p *Process) {
	s.procMu.Lock()
	delete(s.procs, p)
	s.procMu.Unlock()
	s.mach.Stats.Inc("uvm.proc.exited")
}
