package uvm

import (
	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
)

// Page loanout (§7): a process lets shared, copy-on-write copies of its
// pages be used by other processes, the I/O system, or the IPC system —
// without a data copy and without fragmenting or disrupting the map
// structures.
//
// A loaned page is made read-only in every address space; the loan is
// recorded in the page's loan count. Copy-on-write is gracefully
// preserved: if the owner writes a loaned anon page, the fault routine
// gives the owner a fresh private copy (faultAnon); if a shared object
// page on loan is written, the object receives a fresh copy and the
// loaned frame is orphaned to its borrowers (breakObjLoan). The
// pagedaemon skips loaned pages, so pageout cannot yank a loan either.
//
// Concurrency: the loan count is taken under the page owner's lock (so a
// loan cannot race a pageout or teardown of the same page), and the
// keep-or-free decision when loans drop is made under the page identity
// lock (so the last borrower and a dying owner cannot double-free the
// frame).

// Loanout loans npages pages starting at addr, faulting them resident
// first if needed. The returned pages are held by "the kernel" (the
// caller) until LoanReturn, or until they are handed onward with
// Transfer.
func (p *Process) Loanout(addr param.VAddr, npages int) ([]*phys.Page, error) {
	if p.exited.Load() {
		return nil, vmapi.ErrExited
	}
	if npages <= 0 || !param.PageAligned(addr) {
		return nil, vmapi.ErrInvalid
	}
	s := p.sys

	pages := make([]*phys.Page, 0, npages)
	for i := 0; i < npages; i++ {
		va := addr + param.VAddr(i)*param.PageSize
		loaned := false
		for attempt := 0; attempt < 16 && !loaned; attempt++ {
			pte, ok := p.pm.Lookup(va)
			if !ok || pte.Page == nil {
				if err := s.fault(p, va, param.ProtRead); err != nil {
					s.unloan(pages)
					return nil, err
				}
				continue
			}
			pg := pte.Page
			release, ok := s.lockPageOwner(pg)
			if !ok {
				continue
			}
			if pte2, still := p.pm.Lookup(va); !still || pte2.Page != pg {
				release() // evicted or replaced between lookup and lock
				continue
			}
			pg.LoanCount.Add(1)
			// All mappings become read-only so any write faults and the COW
			// machinery keeps the borrowers' view stable.
			s.mach.MMU.PageProtect(pg, param.ProtRead)
			// The borrower (kernel I/O path) maps the page into its own
			// address space.
			s.mach.Clock.Advance(s.mach.Costs.PmapEnter)
			release()
			pages = append(pages, pg)
			loaned = true
		}
		if !loaned {
			s.unloan(pages)
			return nil, vmapi.ErrFault
		}
	}
	s.mach.Stats.Add(sim.CtrLoanouts, int64(len(pages)))
	return pages, nil
}

// LoanReturn ends a loan obtained from Loanout (for pages that were not
// handed onward with Transfer). Orphaned frames whose last loan drops are
// freed.
func (p *Process) LoanReturn(pages []*phys.Page) {
	p.sys.unloan(pages)
}

func (s *System) unloan(pages []*phys.Page) {
	for _, pg := range pages {
		if pg.LoanCount.Load() <= 0 {
			panic("uvm: loan count underflow")
		}
		// The borrower tears down its kernel mapping of the page.
		s.mach.Clock.Advance(s.mach.Costs.PmapRemove)
		freeIt := false
		pg.WithIdentity(func(owner any) {
			if pg.LoanCount.Add(-1) == 0 && owner == nil {
				freeIt = true
			}
		})
		if freeIt {
			s.mach.MMU.PageProtect(pg, param.ProtNone)
			s.mach.Mem.Dequeue(pg)
			s.mach.Mem.Free(pg)
		}
	}
}

// breakObjLoan replaces a loaned object page with a fresh copy owned by
// the object, orphaning the loaned frame to its borrowers. Caller holds
// o.mu; the lock is dropped around the allocation (see
// allocObjPageLocked) and retry=true is returned if the page changed
// while it was released.
func (s *System) breakObjLoan(o *uobject, idx int, pg *phys.Page) (*phys.Page, bool, error) {
	o.mu.Unlock()
	np, err := s.allocPage(o, param.PageToOff(idx), false)
	o.mu.Lock()
	if err != nil {
		return nil, false, err
	}
	if cur, ok := o.pages[idx]; !ok || cur != pg || !pg.Loaned() {
		s.mach.Mem.Free(np)
		return nil, true, nil
	}
	s.mach.Mem.CopyData(np, pg)
	np.Dirty.Store(pg.Dirty.Load())
	// Detach the loaned frame from the object; it now belongs to nobody
	// and survives only for its borrowers. If the last loan was returned
	// while we were copying, the orphan is already unreachable — free it.
	s.mach.MMU.PageProtect(pg, param.ProtNone)
	s.mach.Mem.Dequeue(pg)
	freeIt := false
	pg.WithIdentity(func(any) {
		pg.Orphan()
		freeIt = pg.LoanCount.Load() == 0
	})
	if freeIt {
		s.mach.Mem.Free(pg)
	}
	o.pages[idx] = np
	s.mach.Mem.Activate(np)
	s.mach.Stats.Inc("uvm.loan.broken")
	return np, false, nil
}

// AllocKernelPages allocates n free-standing, owner-less pages filled by
// fill — modelling data produced by the kernel or arriving from a device
// (the source side of a page transfer). The pages are wired until
// transferred or freed.
func (s *System) AllocKernelPages(n int, fill func(idx int, buf []byte)) ([]*phys.Page, error) {
	pages := make([]*phys.Page, 0, n)
	for i := 0; i < n; i++ {
		pg, err := s.allocPage(nil, 0, fill == nil)
		if err != nil {
			for _, q := range pages {
				q.WireCount.Store(0)
				s.mach.Mem.Free(q)
			}
			return nil, err
		}
		pg.WireCount.Store(1)
		if fill != nil {
			fill(i, pg.Data)
		}
		pages = append(pages, pg)
	}
	return pages, nil
}
