package uvm

import (
	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
)

// Page loanout (§7): a process lets shared, copy-on-write copies of its
// pages be used by other processes, the I/O system, or the IPC system —
// without a data copy and without fragmenting or disrupting the map
// structures.
//
// A loaned page is made read-only in every address space; the loan is
// recorded in the page's loan count. Copy-on-write is gracefully
// preserved: if the owner writes a loaned anon page, the fault routine
// gives the owner a fresh private copy (faultAnon); if a shared object
// page on loan is written, the object receives a fresh copy and the
// loaned frame is orphaned to its borrowers (breakObjLoan). The
// pagedaemon skips loaned pages, so pageout cannot yank a loan either.

// Loanout loans npages pages starting at addr, faulting them resident
// first if needed. The returned pages are held by "the kernel" (the
// caller) until LoanReturn, or until they are handed onward with
// Transfer.
func (p *Process) Loanout(addr param.VAddr, npages int) ([]*phys.Page, error) {
	if p.exited {
		return nil, vmapi.ErrExited
	}
	if npages <= 0 || !param.PageAligned(addr) {
		return nil, vmapi.ErrInvalid
	}
	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()

	pages := make([]*phys.Page, 0, npages)
	for i := 0; i < npages; i++ {
		va := addr + param.VAddr(i)*param.PageSize
		if _, ok := p.pm.Lookup(va); !ok {
			if err := s.fault(p, va, param.ProtRead); err != nil {
				s.unloanLocked(pages)
				return nil, err
			}
		}
		pte, ok := p.pm.Lookup(va)
		if !ok || pte.Page == nil {
			s.unloanLocked(pages)
			return nil, vmapi.ErrFault
		}
		pg := pte.Page
		pg.LoanCount++
		// All mappings become read-only so any write faults and the COW
		// machinery keeps the borrowers' view stable.
		s.mach.MMU.PageProtect(pg, param.ProtRead)
		// The borrower (kernel I/O path) maps the page into its own
		// address space.
		s.mach.Clock.Advance(s.mach.Costs.PmapEnter)
		pages = append(pages, pg)
	}
	s.mach.Stats.Add(sim.CtrLoanouts, int64(len(pages)))
	return pages, nil
}

// LoanReturn ends a loan obtained from Loanout (for pages that were not
// handed onward with Transfer). Orphaned frames whose last loan drops are
// freed.
func (p *Process) LoanReturn(pages []*phys.Page) {
	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()
	s.unloanLocked(pages)
}

func (s *System) unloanLocked(pages []*phys.Page) {
	for _, pg := range pages {
		if pg.LoanCount <= 0 {
			panic("uvm: loan count underflow")
		}
		// The borrower tears down its kernel mapping of the page.
		s.mach.Clock.Advance(s.mach.Costs.PmapRemove)
		pg.LoanCount--
		if pg.LoanCount == 0 && pg.Owner == nil {
			s.mach.MMU.PageProtect(pg, param.ProtNone)
			s.mach.Mem.Dequeue(pg)
			s.mach.Mem.Free(pg)
		}
	}
}

// breakObjLoan replaces a loaned object page with a fresh copy owned by
// the object, orphaning the loaned frame to its borrowers.
func (s *System) breakObjLoan(o *uobject, idx int, pg *phys.Page) (*phys.Page, error) {
	np, err := s.allocPage(o, param.PageToOff(idx), false)
	if err != nil {
		return nil, err
	}
	s.mach.Mem.CopyData(np, pg)
	np.Dirty = pg.Dirty
	// Detach the loaned frame from the object; it now belongs to nobody
	// and survives only for its borrowers.
	s.mach.MMU.PageProtect(pg, param.ProtNone)
	s.mach.Mem.Dequeue(pg)
	pg.Owner = nil
	o.pages[idx] = np
	s.mach.Mem.Activate(np)
	s.mach.Stats.Inc("uvm.loan.broken")
	return np, nil
}

// AllocKernelPages allocates n free-standing, owner-less pages filled by
// fill — modelling data produced by the kernel or arriving from a device
// (the source side of a page transfer). The pages are wired until
// transferred or freed.
func (s *System) AllocKernelPages(n int, fill func(idx int, buf []byte)) ([]*phys.Page, error) {
	s.big.Lock()
	defer s.big.Unlock()
	pages := make([]*phys.Page, 0, n)
	for i := 0; i < n; i++ {
		pg, err := s.allocPage(nil, 0, fill == nil)
		if err != nil {
			for _, q := range pages {
				q.WireCount = 0
				s.mach.Mem.Free(q)
			}
			return nil, err
		}
		pg.WireCount = 1
		if fill != nil {
			fill(i, pg.Data)
		}
		pages = append(pages, pg)
	}
	return pages, nil
}
