package uvm

import (
	"uvm/internal/param"
	"uvm/internal/vmapi"
)

// This file implements the five wiring paths of §3.2. Four of them store
// the wired state outside the map structure:
//
//  1. kernel text/data/bss — always wired, nothing to record (system.go);
//  2. the user structure — wired state lives in the proc structure
//     (Process.uareaWired);
//  3. sysctl — wired state lives on the kernel stack (kstackWires);
//  4. physio — likewise;
//  5. mlock — the only case that must record wiring in the process map,
//     because there is no other place to store it.
//
// Only path 5 fragments map entries under UVM; under BSD VM paths 2-5 all
// disturb maps (plus the i386 page-table path).

// wirePagesNoMap faults the range resident and wires the pages via the
// pmap and page structures only — the map is never touched. Each page is
// wired under its owner's lock after re-verifying the mapping, so a
// concurrent pageout between the fault and the wire retries cleanly.
func (p *Process) wirePagesNoMap(start, end param.VAddr) error {
	s := p.sys
	for va := start; va < end; va += param.PageSize {
		wired := false
		for attempt := 0; attempt < 16 && !wired; attempt++ {
			pte, ok := p.pm.Lookup(va)
			if !ok || pte.Page == nil {
				if err := s.fault(p, va, param.ProtRead); err != nil {
					return err
				}
				continue
			}
			pg := pte.Page
			release, ok := s.lockPageOwner(pg)
			if !ok {
				continue
			}
			if pte2, still := p.pm.Lookup(va); !still || pte2.Page != pg {
				release()
				continue
			}
			pg.WireCount.Add(1)
			s.mach.Mem.Dequeue(pg)
			release()
			p.pm.ChangeWiring(va, true)
			wired = true
		}
		if !wired {
			return vmapi.ErrFault
		}
	}
	return nil
}

// unwirePagesNoMap reverses wirePagesNoMap.
func (p *Process) unwirePagesNoMap(start, end param.VAddr) {
	s := p.sys
	for va := start; va < end; va += param.PageSize {
		if pte, ok := p.pm.Lookup(va); ok && pte.Page != nil {
			pg := pte.Page
			if release, ok := s.lockPageOwner(pg); ok {
				if pg.WireCount.Load() > 0 && pg.WireCount.Add(-1) == 0 {
					s.mach.Mem.Activate(pg)
				}
				release()
			}
		}
		p.pm.ChangeWiring(va, false)
	}
}

// Sysctl implements vmapi.Process: the user buffer is wired for the
// duration of the call, with the wired state recorded on the process'
// kernel stack — the map is untouched and no entry fragmentation occurs
// (§3.2).
func (p *Process) Sysctl(addr param.VAddr, length param.VSize) error {
	if p.exited.Load() {
		return vmapi.ErrExited
	}
	s := p.sys
	start, end := param.Trunc(addr), param.Round(addr+param.VAddr(length))
	if err := p.wirePagesNoMap(start, end); err != nil {
		return err
	}
	p.pushKstackWire(start, end)

	// The kernel copies the result out to the wired buffer.
	s.mach.Clock.ChargeN(param.Pages(param.VSize(end-start)), s.mach.Costs.PageTouch)

	p.popKstackWire()
	p.unwirePagesNoMap(start, end)
	return nil
}

// Physio implements vmapi.Process: raw device I/O with the buffer wired
// through the kernel stack record, not the map (§3.2).
func (p *Process) Physio(addr param.VAddr, length param.VSize) error {
	if p.exited.Load() {
		return vmapi.ErrExited
	}
	s := p.sys
	start, end := param.Trunc(addr), param.Round(addr+param.VAddr(length))
	if err := p.wirePagesNoMap(start, end); err != nil {
		return err
	}
	p.pushKstackWire(start, end)

	npages := param.Pages(param.VSize(end - start))
	s.mach.Clock.Advance(s.mach.Costs.DiskOp)
	s.mach.Clock.ChargeN(npages, s.mach.Costs.DiskPageIO)

	p.popKstackWire()
	p.unwirePagesNoMap(start, end)
	return nil
}

func (p *Process) pushKstackWire(start, end param.VAddr) {
	p.wireMu.Lock()
	p.kstackWires = append(p.kstackWires, struct{ start, end param.VAddr }{start, end})
	p.wireMu.Unlock()
}

func (p *Process) popKstackWire() {
	p.wireMu.Lock()
	p.kstackWires = p.kstackWires[:len(p.kstackWires)-1]
	p.wireMu.Unlock()
}

// Mlock implements vmapi.Process: the one wiring path where the wired
// state must live in the map (so it survives arbitrary later syscalls),
// and therefore the one path that fragments UVM map entries too.
func (p *Process) Mlock(addr param.VAddr, length param.VSize) error {
	if p.exited.Load() {
		return vmapi.ErrExited
	}
	start, end := param.Trunc(addr), param.Round(addr+param.VAddr(length))

	m := p.m
	m.lock()
	entries := m.entriesIn(start, end)
	if len(entries) == 0 {
		m.unlock()
		return vmapi.ErrFault
	}
	for _, e := range entries {
		e.wired++
	}
	m.unlock()

	return p.wirePagesNoMap(start, end)
}

// Munlock implements vmapi.Process.
func (p *Process) Munlock(addr param.VAddr, length param.VSize) error {
	if p.exited.Load() {
		return vmapi.ErrExited
	}
	start, end := param.Trunc(addr), param.Round(addr+param.VAddr(length))

	m := p.m
	m.lock()
	for _, e := range m.entriesIn(start, end) {
		if e.wired > 0 {
			e.wired--
		}
	}
	m.unlock()

	p.unwirePagesNoMap(start, end)
	return nil
}
