package uvm

import (
	"fmt"
	"sync"
	"time"

	"uvm/internal/param"
	"uvm/internal/pmap"
	"uvm/internal/vmapi"
)

func errf(format string, args ...any) error { return fmt.Errorf("uvm: "+format, args...) }

// entry is a uvm map entry: a mapping of an (amap, object) pair into a
// range of virtual addresses. Either layer pointer may be nil — a shared
// file mapping usually has a nil amap, a zero-fill mapping a nil object
// (§5.2).
type entry struct {
	prev, next *entry

	start, end param.VAddr

	// Upper (anonymous) layer.
	amap    *amap
	amapOff int // slot within amap corresponding to start

	// Lower (backing object) layer.
	obj *uobject
	off param.PageOff // offset within obj corresponding to start

	prot, maxProt param.Prot
	inherit       param.Inherit
	advice        param.Advice
	wired         int

	// cow marks copy-on-write semantics; needsCopy defers amap
	// creation/copying until the first write fault (§5.2).
	cow, needsCopy bool
}

func (e *entry) pages() int { return int((e.end - e.start) >> param.PageShift) }

// slotOf returns the amap slot for va within this entry.
func (e *entry) slotOf(va param.VAddr) int {
	return e.amapOff + int((param.Trunc(va)-e.start)>>param.PageShift)
}

// objIndex returns the backing-object page index for va.
func (e *entry) objIndex(va param.VAddr) int {
	return param.OffToPage(e.off) + int((param.Trunc(va)-e.start)>>param.PageShift)
}

// vmMap is a uvm_map. The RWMutex is the top of the package lock order:
// mutating operations take it exclusively, the fault path takes it
// shared (upgrading only to clear needs-copy or allocate the amap), so
// faults on different pages of one process proceed concurrently with
// each other and with every other process.
type vmMap struct {
	sys    *System
	name   string
	kernel bool

	//uvm:lock map
	mu sync.RWMutex

	min, max param.VAddr
	allocMax param.VAddr
	head     *entry
	tail     *entry
	n        int

	pmap *pmap.Pmap

	lockedAt time.Duration // write-lock hold tracking (stats)
}

func (s *System) newMap(name string, min, max param.VAddr, kernel bool) *vmMap {
	return &vmMap{
		sys:      s,
		name:     name,
		kernel:   kernel,
		min:      min,
		max:      max,
		allocMax: max,
		pmap:     s.mach.MMU.NewPmap(name),
	}
}

// lock takes the map exclusively, charging the acquisition cost.
func (m *vmMap) lock() {
	m.sys.mach.Clock.Advance(m.sys.mach.Costs.LockAcquire)
	m.mu.Lock()
	m.lockedAt = m.sys.mach.Clock.Now()
}

// lockNoCharge is the read->write upgrade path of the fault handler: the
// acquisition cost was already charged when the read lock was taken.
func (m *vmMap) lockNoCharge() {
	m.mu.Lock()
	m.lockedAt = m.sys.mach.Clock.Now()
}

func (m *vmMap) unlock() {
	held := m.sys.mach.Clock.Since(m.lockedAt)
	m.sys.mach.Stats.Add("uvm.map.lockheld_ns", int64(held))
	m.sys.mach.Stats.Max("uvm.map.lockheld_max_ns", int64(held))
	m.mu.Unlock()
}

// rlock takes the map shared (the fault path), charging the same
// acquisition cost as an exclusive lock so simulated times do not depend
// on the locking granularity.
func (m *vmMap) rlock() {
	m.sys.mach.Clock.Advance(m.sys.mach.Costs.LockAcquire)
	m.mu.RLock()
}

func (m *vmMap) runlock() { m.mu.RUnlock() }

func (s *System) allocEntry(m *vmMap) *entry {
	if m.kernel {
		if int(s.kentryUse.Add(1)) > s.cfg.KernelEntryPool {
			panic("uvm: kernel map entry pool exhausted")
		}
	}
	s.mach.Clock.Advance(s.mach.Costs.MapEntryAlloc)
	s.mach.Stats.Inc("uvm.mapentry.alloc")
	s.mach.Stats.Inc("uvm.mapentry.live")
	return &entry{inherit: param.InheritCopy, advice: param.AdviceNormal}
}

func (s *System) freeEntry(m *vmMap, e *entry) {
	if m.kernel {
		s.kentryUse.Add(-1)
	}
	s.mach.Clock.Advance(s.mach.Costs.MapEntryFree)
	s.mach.Stats.Add("uvm.mapentry.live", -1)
}

func (m *vmMap) insert(e *entry) {
	var after *entry
	for cur := m.head; cur != nil; cur = cur.next {
		if cur.start >= e.end {
			break
		}
		if cur.end > e.start {
			panic("uvm: overlapping map entries: " + m.name)
		}
		after = cur
	}
	if after == nil {
		e.next = m.head
		e.prev = nil
		if m.head != nil {
			m.head.prev = e
		} else {
			m.tail = e
		}
		m.head = e
	} else {
		e.prev = after
		e.next = after.next
		after.next = e
		if e.next != nil {
			e.next.prev = e
		} else {
			m.tail = e
		}
	}
	m.n++
}

// insertOrMerge inserts e, first trying to coalesce it into a compatible
// adjacent entry — UVM merges simple entries (no amap yet, same object
// relationship and attributes) instead of accumulating them, which keeps
// kernel maps small (Table 1's boot rows).
func (m *vmMap) insertOrMerge(e *entry) *entry {
	if prev := m.predecessor(e.start); prev != nil && m.canMerge(prev, e) {
		prev.end = e.end
		m.sys.freeEntry(m, e)
		m.sys.mach.Stats.Inc("uvm.map.merges")
		return prev
	}
	m.insert(e)
	return e
}

// predecessor returns the entry ending exactly at va, if any.
func (m *vmMap) predecessor(va param.VAddr) *entry {
	for cur := m.head; cur != nil; cur = cur.next {
		if cur.end == va {
			return cur
		}
		if cur.start > va {
			return nil
		}
	}
	return nil
}

// canMerge reports whether b can be folded into a (a immediately precedes
// b). Only simple anonymous entries with identical attributes merge.
func (m *vmMap) canMerge(a, b *entry) bool {
	return a.end == b.start &&
		a.amap == nil && b.amap == nil &&
		a.obj == nil && b.obj == nil &&
		a.prot == b.prot && a.maxProt == b.maxProt &&
		a.inherit == b.inherit && a.advice == b.advice &&
		a.wired == b.wired &&
		a.cow == b.cow && a.needsCopy == b.needsCopy
}

func (m *vmMap) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		m.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		m.tail = e.prev
	}
	e.prev, e.next = nil, nil
	m.n--
}

func (m *vmMap) lookup(va param.VAddr) *entry {
	for cur := m.head; cur != nil; cur = cur.next {
		m.sys.mach.Clock.Advance(m.sys.mach.Costs.MapLookupEntry)
		if va >= cur.start && va < cur.end {
			return cur
		}
		if cur.start > va {
			return nil
		}
	}
	return nil
}

// lookupQuiet is lookup without the cost charge, for the fault handler's
// re-lookup after a read->write lock upgrade (the walk was already paid
// for under the read lock).
func (m *vmMap) lookupQuiet(va param.VAddr) *entry {
	for cur := m.head; cur != nil; cur = cur.next {
		if va >= cur.start && va < cur.end {
			return cur
		}
		if cur.start > va {
			return nil
		}
	}
	return nil
}

func (m *vmMap) findSpace(hint param.VAddr, length param.VSize) (param.VAddr, error) {
	if length == 0 {
		return 0, vmapi.ErrInvalid
	}
	start := m.min
	if hint > start {
		start = param.Trunc(hint)
	}
	for cur := m.head; cur != nil; cur = cur.next {
		m.sys.mach.Clock.Advance(m.sys.mach.Costs.MapLookupEntry)
		if cur.end <= start {
			continue
		}
		if cur.start >= start && param.VSize(cur.start-start) >= length {
			return start, nil
		}
		if cur.end > start {
			start = cur.end
		}
	}
	if start+param.VAddr(length) > m.allocMax || start+param.VAddr(length) < start {
		return 0, vmapi.ErrNoSpace
	}
	return start, nil
}

// clipStart splits e at va (va strictly inside e), allocating a new entry
// for the head part. Both halves share the amap (reference counted) and
// the object.
func (m *vmMap) clipStart(e *entry, va param.VAddr) {
	if va <= e.start || va >= e.end {
		return
	}
	headE := m.sys.allocEntry(m)
	*headE = *e
	headE.prev, headE.next = nil, nil
	headE.end = va

	delta := int((va - e.start) >> param.PageShift)
	e.start = va
	e.off += param.PageOff(delta) << param.PageShift
	e.amapOff += delta
	if e.obj != nil {
		m.sys.objRef(e.obj)
	}
	if e.amap != nil {
		m.sys.amapRef(e.amap)
	}

	headE.prev = e.prev
	headE.next = e
	if e.prev != nil {
		e.prev.next = headE
	} else {
		m.head = headE
	}
	e.prev = headE
	m.n++
}

func (m *vmMap) clipEnd(e *entry, va param.VAddr) {
	if va <= e.start || va >= e.end {
		return
	}
	tailE := m.sys.allocEntry(m)
	*tailE = *e
	tailE.prev, tailE.next = nil, nil
	delta := int((va - e.start) >> param.PageShift)
	tailE.start = va
	tailE.off = e.off + param.PageOff(delta)<<param.PageShift
	tailE.amapOff = e.amapOff + delta

	e.end = va
	if e.obj != nil {
		m.sys.objRef(e.obj)
	}
	if e.amap != nil {
		m.sys.amapRef(e.amap)
	}

	tailE.next = e.next
	tailE.prev = e
	if e.next != nil {
		e.next.prev = tailE
	} else {
		m.tail = tailE
	}
	e.next = tailE
	m.n++
}

func (m *vmMap) entriesIn(start, end param.VAddr) []*entry {
	var out []*entry
	for cur := m.head; cur != nil; cur = cur.next {
		m.sys.mach.Clock.Advance(m.sys.mach.Costs.MapLookupEntry)
		if cur.end <= start {
			continue
		}
		if cur.start >= end {
			break
		}
		if cur.start < start {
			m.clipStart(cur, start)
		}
		if cur.end > end {
			m.clipEnd(cur, end)
		}
		out = append(out, cur)
	}
	return out
}

// unmapPhase1 is the first half of UVM's two-phase unmap (§3.1): with the
// map locked, unlink the entries and tear down their translations. The
// removed entries are returned for phase 2.
func (m *vmMap) unmapPhase1(start, end param.VAddr) []*entry {
	removed := m.entriesIn(start, end)
	for _, e := range removed {
		m.unlink(e)
		// Batched teardown: the pmap mutex and each pv bucket are taken
		// once per entry's window instead of once per page.
		m.pmap.RemoveBatch(e.start, e.end)
	}
	return removed
}

// unmapPhase2 runs *after* the map lock is released: amap and object
// references are dropped — including any I/O that teardown triggers —
// without blocking other users of the map.
func (s *System) unmapPhase2(m *vmMap, removed []*entry) {
	for _, e := range removed {
		if e.amap != nil {
			s.amapUnref(e.amap)
			e.amap = nil
		}
		if e.obj != nil {
			s.objUnref(e.obj)
			e.obj = nil
		}
		s.freeEntry(m, e)
	}
}

func (m *vmMap) protect(start, end param.VAddr, prot param.Prot) error {
	m.lock()
	defer m.unlock()
	entries := m.entriesIn(start, end)
	if len(entries) == 0 {
		return vmapi.ErrFault
	}
	for _, e := range entries {
		if !e.maxProt.Allows(prot) {
			return vmapi.ErrInvalid
		}
		e.prot = prot
		m.pmap.Protect(e.start, e.end, prot)
	}
	return nil
}

func (m *vmMap) checkIntegrity() error {
	count := 0
	var prev *entry
	for cur := m.head; cur != nil; cur = cur.next {
		count++
		if cur.start >= cur.end {
			return errf("entry %x-%x empty or inverted", cur.start, cur.end)
		}
		if cur.start < m.min || cur.end > m.max {
			return errf("entry %x-%x outside map %x-%x", cur.start, cur.end, m.min, m.max)
		}
		if prev != nil && prev.end > cur.start {
			return errf("entries overlap: %x-%x then %x-%x", prev.start, prev.end, cur.start, cur.end)
		}
		if cur.prev != prev {
			return errf("broken prev link at %x", cur.start)
		}
		if cur.amap != nil && cur.amapOff+cur.pages() > cur.amap.impl.nslots() {
			return errf("entry %x-%x overruns its amap", cur.start, cur.end)
		}
		prev = cur
	}
	if m.tail != prev {
		return errf("tail mismatch")
	}
	if count != m.n {
		return errf("entry count %d != n %d", count, m.n)
	}
	return nil
}
