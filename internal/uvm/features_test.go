package uvm

import (
	"errors"
	"testing"
	"testing/quick"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// --- vfork (§5.3 footnote) ---

func TestVforkSharesAddressSpace(t *testing.T) {
	s, _ := bootTest(t, 256)
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	parent.WriteBytes(va, []byte{1})

	childI, err := parent.Vfork("child")
	if err != nil {
		t.Fatal(err)
	}
	child := childI.(*Process)
	// No COW: the child writes straight into the parent's memory.
	child.WriteBytes(va, []byte{2})
	b := make([]byte, 1)
	parent.ReadBytes(va, b)
	if b[0] != 2 {
		t.Fatalf("vfork child write not visible to parent: %d", b[0])
	}
	// Child exit leaves the shared space intact.
	child.Exit()
	if err := parent.Access(va, true); err != nil {
		t.Fatalf("parent space damaged by vfork child exit: %v", err)
	}
	checkMaps(t, parent)
}

func TestVforkCostIndependentOfMemory(t *testing.T) {
	s, m := bootTest(t, 8192)
	parent := newProc(t, s, "parent")
	const pages = 1024 // 4 MB
	va, _ := parent.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	parent.TouchRange(va, pages*param.PageSize, true)

	t0 := m.Clock.Now()
	vc, err := parent.Vfork("vchild")
	if err != nil {
		t.Fatal(err)
	}
	vforkCost := m.Clock.Since(t0)
	vc.Exit()

	t1 := m.Clock.Now()
	fc, err := parent.Fork("fchild")
	if err != nil {
		t.Fatal(err)
	}
	forkCost := m.Clock.Since(t1)
	fc.Exit()

	// Fork pays per-entry copies and per-page write-protection; vfork
	// pays neither.
	if vforkCost*10 > forkCost {
		t.Fatalf("vfork (%v) should be >10x cheaper than fork (%v) with 4MB resident",
			vforkCost, forkCost)
	}
}

func TestVforkOfVforkRejected(t *testing.T) {
	s, _ := bootTest(t, 256)
	parent := newProc(t, s, "parent")
	child, err := parent.Vfork("child")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.(*Process).Vfork("grandchild"); !errors.Is(err, vmapi.ErrInvalid) {
		t.Fatalf("nested vfork: %v", err)
	}
	child.Exit()
}

// --- hybrid amap (§5.3 suggestion) ---

func TestHybridAmapSemanticsMatchArray(t *testing.T) {
	// Property: any sequence of set/get operations behaves identically on
	// the array and hybrid implementations.
	type op struct {
		Slot  uint16
		Clear bool
	}
	prop := func(nRaw uint8, ops []op) bool {
		n := int(nRaw)%2000 + 1
		arr := &arrayAmap{anons: make([]*anon, n)}
		hyb := newHybridImpl(n)
		anons := map[uint16]*anon{}
		for _, o := range ops {
			slot := int(o.Slot) % n
			var a *anon
			if !o.Clear {
				a = anons[o.Slot]
				if a == nil {
					a = &anon{refs: 1}
					anons[o.Slot] = a
				}
			}
			arr.set(slot, a)
			hyb.set(slot, a)
		}
		if arr.nslots() != hyb.nslots() {
			return false
		}
		for i := 0; i < n; i++ {
			if arr.get(i) != hyb.get(i) {
				return false
			}
		}
		// foreach must agree on population and order.
		var aSlots, hSlots []int
		arr.foreach(func(s int, _ *anon) bool { aSlots = append(aSlots, s); return true })
		hyb.foreach(func(s int, _ *anon) bool { hSlots = append(hSlots, s); return true })
		if len(aSlots) != len(hSlots) {
			return false
		}
		for i := range aSlots {
			if aSlots[i] != hSlots[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHybridAmapDensifies(t *testing.T) {
	hy := newHybridImpl(1024)
	if _, ok := hy.impl.(*hashAmap); !ok {
		t.Fatal("large amap should start as hash")
	}
	a := &anon{refs: 1}
	for i := 0; i < 300; i++ { // >1/4 of 1024
		hy.set(i, a)
	}
	if _, ok := hy.impl.(*arrayAmap); !ok {
		t.Fatal("dense hybrid amap should have converted to array")
	}
	for i := 0; i < 300; i++ {
		if hy.get(i) != a {
			t.Fatalf("slot %d lost across densification", i)
		}
	}
	if hy.get(500) != nil {
		t.Fatal("phantom slot after densification")
	}
}

func TestHybridAmapSmallUsesArray(t *testing.T) {
	hy := newHybridImpl(16)
	if _, ok := hy.impl.(*arrayAmap); !ok {
		t.Fatal("small amap should be an array")
	}
}

func TestSystemWithHybridAmaps(t *testing.T) {
	// Full COW behaviour must be identical under the hybrid
	// implementation: rerun the Figure 3 data checks.
	m := testMachine(2048)
	cfg := DefaultConfig()
	cfg.AmapImpl = AmapHybrid
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)
	parent, _ := s.NewProcess("parent")
	// A large sparse mapping: only 3 of 4096 pages ever touched.
	va, _ := parent.Mmap(0, 4096*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	parent.WriteBytes(va, []byte{1})
	parent.WriteBytes(va+2048*param.PageSize, []byte{2})
	parent.WriteBytes(va+4095*param.PageSize, []byte{3})

	child, _ := parent.Fork("child")
	child.WriteBytes(va+2048*param.PageSize, []byte{9})
	b := make([]byte, 1)
	parent.ReadBytes(va+2048*param.PageSize, b)
	if b[0] != 2 {
		t.Fatalf("hybrid amap COW leak: %d", b[0])
	}
	child.ReadBytes(va, b)
	if b[0] != 1 {
		t.Fatalf("hybrid amap inheritance broken: %d", b[0])
	}
	child.Exit()
	parent.(*Process).Exit()
	if got := m.Stats.Get("uvm.anon.live"); got != 0 {
		t.Fatalf("anon leak with hybrid amaps: %d", got)
	}
}

func TestHybridAmapCheaperForSparse(t *testing.T) {
	// The §5.3 claim: array amaps charge per-slot initialisation; the
	// hybrid's hash form doesn't. Compare the first-fault cost on a large
	// sparse mapping.
	run := func(kind AmapImplKind) int64 {
		m := testMachine(2048)
		cfg := DefaultConfig()
		cfg.AmapImpl = kind
		s := BootConfig(m, cfg)
		testutil.SweepOnCleanup(t, s)
		p, _ := s.NewProcess("sparse")
		va, _ := p.Mmap(0, 8192*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		t0 := m.Clock.Now()
		p.Access(va, true) // first fault allocates the amap
		return int64(m.Clock.Since(t0))
	}
	arrayCost := run(AmapArray)
	hybridCost := run(AmapHybrid)
	if hybridCost >= arrayCost {
		t.Fatalf("hybrid first fault (%d ns) should beat array (%d ns) on an 8192-slot amap",
			hybridCost, arrayCost)
	}
}

// --- async pagein (§10 future work) ---

func TestAsyncPageinReducesColdFaultTime(t *testing.T) {
	run := func(async bool) (faults int64, elapsed int64) {
		m := testMachine(2048)
		cfg := DefaultConfig()
		cfg.AsyncPagein = async
		s := BootConfig(m, cfg)
		testutil.SweepOnCleanup(t, s)
		m.FS.Create("/cold.bin", 64*param.PageSize, func(idx int, b []byte) { b[0] = byte(idx) })
		vn, _ := m.FS.Open("/cold.bin")
		defer vn.Unref()
		p, _ := s.NewProcess("reader")
		va, _ := p.Mmap(0, 64*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
		f0 := m.Stats.Get(sim.CtrFaults)
		t0 := m.Clock.Now()
		if err := p.TouchRange(va, 64*param.PageSize, false); err != nil {
			panic(err)
		}
		return m.Stats.Get(sim.CtrFaults) - f0, int64(m.Clock.Since(t0))
	}
	syncFaults, syncTime := run(false)
	asyncFaults, asyncTime := run(true)
	if asyncFaults >= syncFaults {
		t.Fatalf("async pagein did not reduce faults: %d vs %d", asyncFaults, syncFaults)
	}
	if asyncTime*2 > syncTime {
		t.Fatalf("async pagein should overlap most disk waits: %d vs %d ns", asyncTime, syncTime)
	}
}

func TestAsyncPageinDataCorrect(t *testing.T) {
	m := testMachine(2048)
	cfg := DefaultConfig()
	cfg.AsyncPagein = true
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)
	m.FS.Create("/verify.bin", 32*param.PageSize, func(idx int, b []byte) { b[0] = byte(0x80 + idx) })
	vn, _ := m.FS.Open("/verify.bin")
	defer vn.Unref()
	p, _ := s.NewProcess("reader")
	va, _ := p.Mmap(0, 32*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	b := make([]byte, 1)
	for i := 0; i < 32; i++ {
		if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, b); err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(0x80+i) {
			t.Fatalf("page %d = %#x via async pagein", i, b[0])
		}
	}
}
