package uvm

import (
	"errors"
	"sync/atomic"
	"testing"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/vmapi"
)

// TestAObjPageinRacesFreeRange is the regression test for the
// free-during-pagein race: aobjPager.get used to capture the page's swap
// slot and then let allocObjPageLocked drop o.mu around the frame
// allocation. In that window a concurrent holder of o.mu can reassign
// the slot — freeing the old one with FreeRange — so the captured slot
// is stale and the pagein reads freed (or by then reallocated) disk
// blocks.
//
// The window is a few hundred nanoseconds when memory is free, so a
// blind stress loop never lands in it (and on a single-CPU host never
// can). The test instead constructs the interleaving deterministically:
//
//  1. the free list is drained to zero with the pagedaemon held in its
//     test gate, so get's allocation must block in waitForFree — with
//     o.mu dropped;
//  2. a reassigner goroutine, parked on o.mu, then gets the lock, moves
//     the backing copy to a fresh slot, frees the old one with
//     FreeRange, and only then opens the daemon's gate;
//  3. the daemon reclaims, the blocked allocation resumes, and get
//     re-acquires o.mu.
//
// The gate ordering guarantees the reassignment happens inside get's
// window on any GOMAXPROCS. The fixed get re-reads aobjSlots[idx] under
// the re-acquired lock and returns the right data; the unfixed one reads
// the freed slot.
func TestAObjPageinRacesFreeRange(t *testing.T) {
	s, m := bootTest(t, 96)
	// Togglable daemon gate: closed = the daemon parks before its next
	// reclaim round. Installed before any allocation, like gateDaemon.
	var gate atomic.Value // chan struct{}; receiving proceeds when closed
	openGate := func() chan struct{} {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	gate.Store(openGate())
	s.pd.gate = func() { <-gate.Load().(chan struct{}) }

	o := s.newAObj(1)

	// Victim region: 2x RAM of evictable anon pages for the daemon to
	// reclaim while the test's pagein waits for a frame.
	victim := newProc(t, s, "victim")
	const victimPages = 192
	vva, err := victim.Mmap(0, victimPages*param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	type grabOwner struct{}
	var grabbed []*phys.Page
	fill := func(slot int64) []byte {
		buf := make([]byte, param.PageSize)
		for i := range buf {
			buf[i] = byte(slot)
		}
		return buf
	}
	// Seed: content lives on swap only.
	slot, err := m.Swap.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Swap.WriteSlot(slot, fill(slot)); err != nil {
		t.Fatal(err)
	}
	o.aobjSlots[0] = slot

	for iter := 0; iter < 4; iter++ {
		// Stock the queues with evictable pages (gate open), then close
		// the gate and drain the free list to zero: the next allocation
		// must block on the parked daemon.
		if err := victim.TouchRange(vva, victimPages*param.PageSize, true); err != nil {
			t.Fatal(err)
		}
		gate.Store(make(chan struct{}))
		for {
			pg, err := m.Mem.Alloc(&grabOwner{}, 0, false)
			if errors.Is(err, phys.ErrNoMemory) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			grabbed = append(grabbed, pg)
		}

		o.mu.Lock()
		done := make(chan struct{})
		go func() {
			// Reassigner: acquires o.mu the moment get drops it (get
			// itself is stuck in waitForFree until we open the gate, so
			// this cannot run late), moves the backing copy to a fresh
			// slot and frees the old one — what pageout reassignment
			// does — then lets the daemon run.
			defer close(done)
			o.mu.Lock()
			defer o.mu.Unlock()
			defer func() { close(gate.Load().(chan struct{})) }()
			if _, resident := o.pages[0]; resident {
				t.Error("page resident before the gated pagein ran")
				return
			}
			old := o.aobjSlots[0]
			ns, err := m.Swap.Alloc()
			if err != nil {
				t.Error(err)
				return
			}
			if err := m.Swap.WriteSlot(ns, fill(ns)); err != nil {
				t.Error(err)
				return
			}
			o.aobjSlots[0] = ns
			m.Swap.FreeRange(old, 1)
		}()

		pg, err := o.ops.get(o, 0)
		if err != nil {
			o.mu.Unlock()
			t.Fatalf("iter %d: pagein: %v", iter, err)
		}
		<-done
		cur := o.aobjSlots[0]
		if pg.Data[0] != byte(cur) || pg.Data[param.PageSize-1] != byte(cur) {
			t.Fatalf("iter %d: stale pagein: object points at slot %d (pattern %#x) but page holds %#x",
				iter, cur, byte(cur), pg.Data[0])
		}
		// Evict and release the drained frames for the next iteration.
		delete(o.pages, 0)
		pg.Dirty.Store(false)
		s.mach.Mem.Dequeue(pg)
		s.mach.Mem.Free(pg)
		o.mu.Unlock()
		for _, g := range grabbed {
			m.Mem.Free(g)
		}
		grabbed = grabbed[:0]
	}
}
