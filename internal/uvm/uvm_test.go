package uvm

import (
	"errors"
	"fmt"
	"testing"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vfs"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

func testMachine(ramPages int) *vmapi.Machine {
	return vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:  ramPages,
		SwapPages: int64(ramPages) * 4,
		FSPages:   4096,
		MaxVnodes: 50,
	})
}

func bootTest(t *testing.T, ramPages int) (*System, *vmapi.Machine) {
	t.Helper()
	m := testMachine(ramPages)
	s := BootConfig(m, DefaultConfig())
	testutil.SweepOnCleanup(t, s)
	return s, m
}

func newProc(t *testing.T, s *System, name string) *Process {
	t.Helper()
	p, err := s.NewProcess(name)
	if err != nil {
		t.Fatal(err)
	}
	return p.(*Process)
}

func mkfile(t *testing.T, m *vmapi.Machine, name string, pages int, fill byte) *vfs.Vnode {
	t.Helper()
	err := m.FS.Create(name, pages*param.PageSize, func(idx int, buf []byte) {
		for i := range buf {
			buf[i] = fill + byte(idx)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	vn, err := m.FS.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	return vn
}

func checkMaps(t *testing.T, ps ...*Process) {
	t.Helper()
	for _, p := range ps {
		if err := p.m.checkIntegrity(); err != nil {
			t.Fatalf("map integrity (%s): %v", p.name, err)
		}
	}
}

// --- basics ---

func TestAnonZeroFill(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, param.PageSize)
	if err := p.ReadBytes(va+2*param.PageSize, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("zero-fill byte %d = %#x", i, b)
		}
	}
	if err := p.WriteBytes(va, []byte("hello, uvm")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	p.ReadBytes(va, got)
	if string(got) != "hello, uvm" {
		t.Fatalf("read back %q", got)
	}
	checkMaps(t, p)
}

func TestZeroFillMappingHasNullObject(t *testing.T) {
	// §5.2: "a zero-fill mapping has a null object pointer"; the amap is
	// allocated lazily on first fault.
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.m.mu.Lock()
	e := p.m.lookup(va)
	if e.obj != nil {
		t.Fatal("zero-fill mapping has an object")
	}
	if e.amap != nil {
		t.Fatal("amap allocated before first fault (needs-copy not deferred)")
	}
	p.m.mu.Unlock()
	p.Access(va, true)
	p.m.mu.Lock()
	if e.amap == nil {
		t.Fatal("no amap after write fault")
	}
	if e.needsCopy {
		t.Fatal("needs-copy not cleared by write fault")
	}
	p.m.mu.Unlock()
}

func TestSharedFileMappingHasNullAmap(t *testing.T) {
	// §5.2: "a shared mapping usually has a null amap pointer".
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/f", 1, 1)
	defer vn.Unref()
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	p.Access(va, true)
	p.m.mu.Lock()
	e := p.m.lookup(va)
	if e.amap != nil {
		t.Fatal("shared file mapping grew an amap")
	}
	if e.obj == nil {
		t.Fatal("shared file mapping lost its object")
	}
	p.m.mu.Unlock()
}

func TestFileMappingReadsFileData(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/data", 3, 0x10)
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, 3*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	for idx := 0; idx < 3; idx++ {
		if err := p.ReadBytes(va+param.VAddr(idx)*param.PageSize, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0x10+byte(idx) {
			t.Fatalf("page %d = %#x", idx, buf[0])
		}
	}
	vn.Unref()
}

func TestSingleStepMappingProtection(t *testing.T) {
	// UVM establishes non-default protections in one step: a read-only
	// mapping must never be writable, and its cost must not exceed the
	// equivalent read-write mapping by a relock/lookup pass.
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/1step", 1, 1)
	defer vn.Unref()
	p := newProc(t, s, "p")

	// Warm the object.
	p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)

	t0 := m.Clock.Now()
	if _, err := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0); err != nil {
		t.Fatal(err)
	}
	rwCost := m.Clock.Since(t0)

	t1 := m.Clock.Now()
	va, err := p.Mmap(0, param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	if err != nil {
		t.Fatal(err)
	}
	roCost := m.Clock.Since(t1)

	// Allow a tiny delta for the longer entry-list walk, but nothing like
	// the BSD second pass (lock + lookup + clip).
	if roCost > rwCost+rwCost/2 {
		t.Fatalf("read-only mapping cost %v vs read-write %v: smells like two-step", roCost, rwCost)
	}
	if err := p.Access(va, true); !errors.Is(err, vmapi.ErrFault) {
		t.Fatalf("write through read-only mapping: %v", err)
	}
}

func TestMunmapTwoPhase(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.TouchRange(va, 4*param.PageSize, true)
	if err := p.Munmap(va+param.PageSize, 2*param.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := p.Access(va+param.PageSize, false); !errors.Is(err, vmapi.ErrFault) {
		t.Fatalf("hole still mapped: %v", err)
	}
	if err := p.Access(va, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Access(va+3*param.PageSize, false); err != nil {
		t.Fatal(err)
	}
	checkMaps(t, p)
}

// --- COW / amap semantics ---

func TestPrivateFileCOW(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/cow", 3, 0x40)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 3*param.PageSize, param.ProtRW, vmapi.MapPrivate, vn, 0)
	if err := p.WriteBytes(va+param.PageSize, []byte{0xff}); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 2)
	p.ReadBytes(va+param.PageSize, b)
	if b[0] != 0xff || b[1] != 0x41 {
		t.Fatalf("private write wrong: %#x %#x", b[0], b[1])
	}
	fb := make([]byte, param.PageSize)
	vn.ReadPage(1, fb)
	if fb[0] != 0x41 {
		t.Fatalf("private write leaked to file: %#x", fb[0])
	}
	vn.Unref()
	_ = s
}

func TestReadFaultOnPrivateAllocatesNothing(t *testing.T) {
	// Contrast with BSD VM's Table 3 anomaly: a UVM read fault on a
	// private mapping allocates neither amap nor anon.
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/cheap", 1, 1)
	defer vn.Unref()
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapPrivate, vn, 0)
	amaps, anons := m.Stats.Get("uvm.amap.alloc"), m.Stats.Get("uvm.anon.alloc")
	if err := p.Access(va, false); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Get("uvm.amap.alloc") != amaps || m.Stats.Get("uvm.anon.alloc") != anons {
		t.Fatal("read fault on private mapping allocated anonymous-memory structures")
	}
	p.m.mu.Lock()
	if e := p.m.lookup(va); !e.needsCopy {
		t.Fatal("needs-copy cleared by a read fault")
	}
	p.m.mu.Unlock()
}

func TestForkCOWIsolation(t *testing.T) {
	s, _ := bootTest(t, 512)
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	parent.WriteBytes(va, []byte("parent data"))

	childI, err := parent.Fork("child")
	if err != nil {
		t.Fatal(err)
	}
	child := childI.(*Process)

	b := make([]byte, 11)
	child.ReadBytes(va, b)
	if string(b) != "parent data" {
		t.Fatalf("child read %q", b)
	}
	child.WriteBytes(va, []byte("child data!"))
	parent.ReadBytes(va, b)
	if string(b) != "parent data" {
		t.Fatalf("child write leaked to parent: %q", b)
	}
	parent.WriteBytes(va, []byte("parent two!"))
	child.ReadBytes(va, b)
	if string(b) != "child data!" {
		t.Fatalf("parent write leaked to child: %q", b)
	}
	checkMaps(t, parent, child)
}

func TestFigure3Sequence(t *testing.T) {
	// Walk the exact UVM sequence of Figure 3: establish, write-fault,
	// fork + write-faults; check amap/anon shapes at each step.
	s, m := bootTest(t, 512)
	vn := mkfile(t, m, "/fig3", 3, 0x60)
	defer vn.Unref()
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, 3*param.PageSize, param.ProtRW, vmapi.MapPrivate, vn, 0)

	// Establish: needs-copy, no amap.
	parent.m.mu.Lock()
	pe := parent.m.lookup(va)
	if !pe.needsCopy || pe.amap != nil {
		t.Fatal("establish state wrong")
	}
	parent.m.mu.Unlock()

	// Write middle page: amap 1 with anon 1 in the middle slot.
	parent.WriteBytes(va+param.PageSize, []byte{1})
	parent.m.mu.Lock()
	if pe.amap == nil || pe.amap.impl.get(pe.amapOff+1) == nil {
		t.Fatal("write fault did not install anon in middle slot")
	}
	anon1 := pe.amap.impl.get(pe.amapOff + 1)
	if anon1.refs != 1 {
		t.Fatalf("anon1 refs = %d", anon1.refs)
	}
	if pe.amap.impl.get(pe.amapOff) != nil || pe.amap.impl.get(pe.amapOff+2) != nil {
		t.Fatal("untouched slots must stay empty")
	}
	parent.m.mu.Unlock()

	// Fork: both needs-copy, amap shared.
	childI, _ := parent.Fork("child")
	child := childI.(*Process)
	parent.m.mu.Lock()
	ce := child.m.lookup(va)
	if !pe.needsCopy || !ce.needsCopy {
		t.Fatal("needs-copy not set in both after fork")
	}
	if ce.amap != pe.amap || pe.amap.refs != 2 {
		t.Fatalf("amap not shared at fork (refs=%d)", pe.amap.refs)
	}
	parent.m.mu.Unlock()

	// Parent writes middle: amap 2 allocated for the parent, anon1 stays
	// in the original amap, data copied to a fresh anon.
	parent.WriteBytes(va+param.PageSize, []byte{2})
	parent.m.mu.Lock()
	if pe.amap == ce.amap {
		t.Fatal("parent did not get its own amap")
	}
	if ce.amap.impl.get(ce.amapOff+1) != anon1 {
		t.Fatal("anon1 left the original amap")
	}
	if anon1.refs != 1 {
		t.Fatalf("anon1 refs after parent copy = %d, want 1", anon1.refs)
	}
	pAnon := pe.amap.impl.get(pe.amapOff + 1)
	if pAnon == anon1 || pAnon == nil {
		t.Fatal("parent's middle anon wrong")
	}
	parent.m.mu.Unlock()

	// Child writes right page: child holds the only reference to the
	// original amap, so needs-copy clears WITHOUT a new amap (Figure 3's
	// final panel) and anon 3 lands in it.
	amapsBefore := m.Stats.Get("uvm.amap.alloc")
	child.WriteBytes(va+2*param.PageSize, []byte{3})
	parent.m.mu.Lock()
	if m.Stats.Get("uvm.amap.alloc") != amapsBefore {
		t.Fatal("child allocated a new amap despite sole reference")
	}
	if ce.needsCopy {
		t.Fatal("child needs-copy not cleared")
	}
	if ce.amap.impl.get(ce.amapOff+2) == nil {
		t.Fatal("anon 3 missing")
	}
	parent.m.mu.Unlock()

	// Data checks mirror the figure.
	b := make([]byte, 1)
	parent.ReadBytes(va+param.PageSize, b)
	if b[0] != 2 {
		t.Fatalf("parent middle = %d", b[0])
	}
	child.ReadBytes(va+param.PageSize, b)
	if b[0] != 1 {
		t.Fatalf("child middle = %d", b[0])
	}
	child.ReadBytes(va+2*param.PageSize, b)
	if b[0] != 3 {
		t.Fatalf("child right = %d", b[0])
	}
}

func TestSoleOwnerWritesInPlace(t *testing.T) {
	// §5.3: when the child (sole reference) writes, UVM writes the anon's
	// page directly — no page allocation, no copy.
	s, m := bootTest(t, 512)
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	parent.WriteBytes(va, []byte{1})
	child, _ := parent.Fork("child")
	child.(*Process).WriteBytes(va, []byte{2}) // COW copy here (anon refs 2)

	copies := m.Stats.Get(sim.CtrPagesCopied)
	// Parent now holds sole reference to its anon after its own COW? No:
	// parent's anon still shared? After child's write the child dropped
	// its ref to anon1, so the parent is sole owner again.
	parent.WriteBytes(va, []byte{3})
	if got := m.Stats.Get(sim.CtrPagesCopied); got != copies {
		t.Fatalf("sole-owner write copied a page (%d new copies)", got-copies)
	}
	b := make([]byte, 1)
	parent.ReadBytes(va, b)
	if b[0] != 3 {
		t.Fatalf("parent = %d", b[0])
	}
	child.(*Process).ReadBytes(va, b)
	if b[0] != 2 {
		t.Fatalf("child = %d", b[0])
	}
}

func TestMinheritShare(t *testing.T) {
	s, _ := bootTest(t, 256)
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	parent.WriteBytes(va, []byte{1})
	if err := parent.Minherit(va, param.PageSize, param.InheritShare); err != nil {
		t.Fatal(err)
	}
	child, _ := parent.Fork("child")
	// Child shares the parent's (formerly COW) anonymous memory (§5.4's
	// "child sharing a copy-on-write mapping with its parent").
	parent.WriteBytes(va, []byte{7})
	b := make([]byte, 1)
	child.(*Process).ReadBytes(va, b)
	if b[0] != 7 {
		t.Fatalf("share-inherited write not visible: %d", b[0])
	}
	child.(*Process).WriteBytes(va, []byte{9})
	parent.ReadBytes(va, b)
	if b[0] != 9 {
		t.Fatalf("share-inherited child write not visible: %d", b[0])
	}
}

func TestMinheritNone(t *testing.T) {
	s, _ := bootTest(t, 256)
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	parent.Minherit(va, param.PageSize, param.InheritNone)
	child, _ := parent.Fork("child")
	if err := child.(*Process).Access(va, false); !errors.Is(err, vmapi.ErrFault) {
		t.Fatalf("none-inherited range mapped: %v", err)
	}
}

func TestSharedAnonAobj(t *testing.T) {
	// MAP_ANON|MAP_SHARED is backed by an aobj and survives fork sharing.
	s, _ := bootTest(t, 256)
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, 2*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapShared, nil, 0)
	parent.WriteBytes(va, []byte{0x11})
	child, _ := parent.Fork("child")
	b := make([]byte, 1)
	child.(*Process).ReadBytes(va, b)
	if b[0] != 0x11 {
		t.Fatalf("aobj data not shared: %d", b[0])
	}
	child.(*Process).WriteBytes(va, []byte{0x22})
	parent.ReadBytes(va, b)
	if b[0] != 0x22 {
		t.Fatalf("aobj write not shared: %d", b[0])
	}
}

// --- no swap leaks, ever ---

func TestNoSwapLeakUnderForkChurn(t *testing.T) {
	// The scenario that leaks swap under BSD VM without collapse: UVM's
	// reference counts free everything with no collapse machinery (§5.3).
	m := testMachine(96)
	s := BootConfig(m, DefaultConfig())
	testutil.SweepOnCleanup(t, s)
	p, _ := s.NewProcess("churn")
	const pages = 24
	va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
		t.Fatal(err)
	}
	peak := 0
	for i := 0; i < 12; i++ {
		child, err := p.Fork(fmt.Sprintf("c%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
			t.Fatal(err)
		}
		child.Exit()
		if got := m.Swap.SlotsInUse(); got > peak {
			peak = got
		}
	}
	// Reachable anonymous data is at most `pages` for the parent; allow
	// in-flight copies but nothing resembling linear growth (12 churns x
	// 24 pages would exceed 250 if leaking).
	if peak > pages*3 {
		t.Fatalf("swap high-water %d slots for %d live pages: leak", peak, pages)
	}
	p.Exit()
	if got := m.Swap.SlotsInUse(); got != 0 {
		t.Fatalf("swap not empty after exit: %d", got)
	}
}

// --- paging ---

func TestPageoutPageinRoundTrip(t *testing.T) {
	s, m := bootTest(t, 64)
	p := newProc(t, s, "pig")
	const pages = 128
	va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	for i := 0; i < pages; i++ {
		if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(i), byte(i >> 4)}); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}
	if m.Stats.Get(sim.CtrPageOuts) == 0 {
		t.Fatal("no pageout under pressure")
	}
	b := make([]byte, 2)
	for i := 0; i < pages; i++ {
		if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, b); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		if b[0] != byte(i) || b[1] != byte(i>>4) {
			t.Fatalf("page %d corrupted through swap: %x %x", i, b[0], b[1])
		}
	}
	_ = s
}

func TestClusteredPageoutIsFewIOs(t *testing.T) {
	// The §6 claim: UVM's pagedaemon reassigns slots and pages out in
	// large clusters — so swap I/O operations << pages paged out.
	s, m := bootTest(t, 64)
	p := newProc(t, s, "pig")
	const pages = 256
	va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
		t.Fatal(err)
	}
	outs := m.Stats.Get(sim.CtrPageOuts)
	ios := m.Stats.Get(sim.CtrSwapIOs)
	if outs == 0 {
		t.Fatal("no pageouts")
	}
	if ios*8 > outs {
		t.Fatalf("pageout not clustered: %d I/Os for %d pages", ios, outs)
	}
	if m.Stats.Get("uvm.pdaemon.clusters") == 0 {
		t.Fatal("no clusters formed")
	}
	_ = s
}

func TestClusteringAblation(t *testing.T) {
	// With clustering disabled the same workload must issue roughly one
	// I/O per page — and take much longer on the simulated clock.
	run := func(disable bool) (ios, outs int64, elapsed int64) {
		m := testMachine(64)
		cfg := DefaultConfig()
		cfg.DisableClustering = disable
		s := BootConfig(m, cfg)
		testutil.SweepOnCleanup(t, s)
		p, _ := s.NewProcess("pig")
		const pages = 256
		va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		t0 := m.Clock.Now()
		if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
			panic(err)
		}
		return m.Stats.Get(sim.CtrSwapIOs), m.Stats.Get(sim.CtrPageOuts), int64(m.Clock.Since(t0))
	}
	iosOn, outsOn, timeOn := run(false)
	iosOff, outsOff, timeOff := run(true)
	if outsOn == 0 || outsOff == 0 {
		t.Fatal("no pageout in one of the runs")
	}
	if iosOff < outsOff {
		t.Fatalf("unclustered run: %d I/Os < %d pageouts?", iosOff, outsOff)
	}
	if iosOn*4 > iosOff {
		t.Fatalf("clustering saved too little: %d vs %d I/Os", iosOn, iosOff)
	}
	if timeOn*2 > timeOff {
		t.Fatalf("clustered time %d should be far below unclustered %d", timeOn, timeOff)
	}
}

// --- lookahead (Table 2 mechanism) ---

func TestFaultLookaheadMapsNeighbours(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/text", 16, 0)
	defer vn.Unref()

	// Warm the object's pages via one process.
	warm := newProc(t, s, "warm")
	wva, _ := warm.Mmap(0, 16*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	warm.TouchRange(wva, 16*param.PageSize, false)

	// A second process touching sequentially should fault far fewer than
	// 16 times: each fault maps up to 4 ahead + 3 behind resident pages.
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 16*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	faults0 := m.Stats.Get(sim.CtrFaults)
	p.TouchRange(va, 16*param.PageSize, false)
	faults := m.Stats.Get(sim.CtrFaults) - faults0
	if faults > 5 {
		t.Fatalf("%d faults for 16 resident pages; lookahead broken", faults)
	}
	if m.Stats.Get("uvm.lookahead.mapped") == 0 {
		t.Fatal("no neighbours mapped")
	}
}

func TestLookaheadRespectsAdvice(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/rand", 16, 0)
	defer vn.Unref()
	warm := newProc(t, s, "warm")
	wva, _ := warm.Mmap(0, 16*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	warm.TouchRange(wva, 16*param.PageSize, false)

	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 16*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	p.Madvise(va, 16*param.PageSize, param.AdviceRandom)
	faults0 := m.Stats.Get(sim.CtrFaults)
	p.TouchRange(va, 16*param.PageSize, false)
	faults := m.Stats.Get(sim.CtrFaults) - faults0
	if faults != 16 {
		t.Fatalf("random advice should disable lookahead: %d faults", faults)
	}
}

func TestLookaheadDoesNotPageIn(t *testing.T) {
	// "This mechanism only works for resident pages": cold pages must not
	// be read from disk by lookahead.
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/cold", 16, 0)
	defer vn.Unref()
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 16*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	reads0 := m.Stats.Get(sim.CtrDiskReads)
	p.Access(va, false)
	if got := m.Stats.Get(sim.CtrDiskReads) - reads0; got != 1 {
		t.Fatalf("one cold fault caused %d disk reads; lookahead must not page in", got)
	}
	_ = s
}

// --- wiring (§3.2) ---

func TestSysctlDoesNotFragmentMap(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.Access(va, true)
	base := p.MapEntryCount()
	if err := p.Sysctl(va+3*param.PageSize, param.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := p.MapEntryCount(); got != base {
		t.Fatalf("sysctl changed UVM map entries: %d -> %d", base, got)
	}
	checkMaps(t, p)
}

func TestPhysioDoesNotFragmentMap(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.Access(va, true)
	base := p.MapEntryCount()
	if err := p.Physio(va+2*param.PageSize, 2*param.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := p.MapEntryCount(); got != base {
		t.Fatalf("physio changed UVM map entries: %d -> %d", base, got)
	}
}

func TestMlockStillFragments(t *testing.T) {
	// mlock is the one path where even UVM must store wiring in the map.
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.Access(va, true)
	base := p.MapEntryCount()
	if err := p.Mlock(va+2*param.PageSize, 2*param.PageSize); err != nil {
		t.Fatal(err)
	}
	if got := p.MapEntryCount(); got != base+2 {
		t.Fatalf("mlock entries = %d, want %d", got, base+2)
	}
	checkMaps(t, p)
}

func TestUserStructureUsesNoKernelEntries(t *testing.T) {
	s, _ := bootTest(t, 256)
	before := s.KernelMapEntries()
	p := newProc(t, s, "p")
	if got := s.KernelMapEntries(); got != before {
		t.Fatalf("process creation consumed %d kernel entries, want 0", got-before)
	}
	if p.uareaWired == 0 {
		t.Fatal("uarea wiring not recorded in proc structure")
	}
	p.Exit()
}

func TestPTPagesTrackedInPmapOnly(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va1, _ := p.Mmap(0x0000_2000, param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate|vmapi.MapFixed, nil, 0)
	va2, _ := p.Mmap(0x4000_0000, param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate|vmapi.MapFixed, nil, 0)
	base := p.MapEntryCount()
	p.Access(va1, true)
	p.Access(va2, true)
	if got := p.MapEntryCount(); got != base {
		t.Fatalf("PT allocation changed map entries under UVM: %d -> %d", base, got)
	}
	if p.PTPages() != 2 {
		t.Fatalf("pmap PT pages = %d, want 2", p.PTPages())
	}
}

func TestKernelAllocCoalesces(t *testing.T) {
	s, _ := bootTest(t, 256)
	before := s.KernelMapEntries()
	for i := 0; i < 10; i++ {
		if _, err := s.KernelAlloc(4, param.ProtRW); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.KernelMapEntries(); got != before {
		t.Fatalf("10 adjacent kernel allocations added %d entries, want 0 (merge)", got-before)
	}
}

func TestWiredPagesSurvivePressure(t *testing.T) {
	s, _ := bootTest(t, 64)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.TouchRange(va, 4*param.PageSize, true)
	if err := p.Mlock(va, 4*param.PageSize); err != nil {
		t.Fatal(err)
	}
	hog := newProc(t, s, "hog")
	hva, _ := hog.Mmap(0, 100*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := hog.TouchRange(hva, 100*param.PageSize, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, ok := p.pm.Lookup(va + param.VAddr(i)*param.PageSize); !ok {
			t.Fatalf("wired page %d evicted", i)
		}
	}
}

// --- vnode-embedded objects & the single cache (§4) ---

func TestVnodeObjectPersistsAcrossUnmap(t *testing.T) {
	s, m := bootTest(t, 512)
	vn := mkfile(t, m, "/persist", 4, 0x33)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	p.TouchRange(va, 4*param.PageSize, false)
	p.Munmap(va, 4*param.PageSize)
	vn.Unref() // vnode now unreferenced, on the FS free list, pages attached

	// Reopen + remap: zero disk reads.
	vn2, _ := m.FS.Open("/persist")
	reads := m.Stats.Get(sim.CtrDiskReads)
	va2, _ := p.Mmap(0, 4*param.PageSize, param.ProtRead, vmapi.MapShared, vn2, 0)
	if err := p.TouchRange(va2, 4*param.PageSize, false); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats.Get(sim.CtrDiskReads); got != reads {
		t.Fatalf("remap after vnode-cache hit read disk %d times", got-reads)
	}
	vn2.Unref()
	_ = s
}

func TestVnodeRecycleTerminatesObject(t *testing.T) {
	// When the vnode cache recycles a vnode, the hook must free the VM
	// pages; reopening then reads from disk.
	m := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages: 512, SwapPages: 512, FSPages: 4096, MaxVnodes: 3,
	})
	s := BootConfig(m, DefaultConfig())
	testutil.SweepOnCleanup(t, s)
	p, _ := s.NewProcess("p")

	use := func(name string) {
		vn, err := m.FS.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		va, _ := p.Mmap(0, param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
		if err := p.(*Process).TouchRange(va, param.PageSize, false); err != nil {
			t.Fatal(err)
		}
		p.Munmap(va, param.PageSize)
		vn.Unref()
	}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("/r%d", i)
		m.FS.Create(name, param.PageSize, func(_ int, b []byte) { b[0] = byte(i) })
		use(name)
	}
	if m.Stats.Get("uvm.uobj.vnode.recycled") == 0 {
		t.Fatal("no vnode recycle reached the VM hook")
	}
	free := m.Mem.FreePages()
	if free == 0 {
		t.Fatal("no free pages at all?")
	}
	// /r0 was recycled; touching it again must hit the disk.
	reads := m.Stats.Get(sim.CtrDiskReads)
	use("/r0")
	if m.Stats.Get(sim.CtrDiskReads) == reads {
		t.Fatal("recycled file's pages still resident")
	}
}

// --- device pager ---

func TestDevicePager(t *testing.T) {
	s, _ := bootTest(t, 256)
	rom, err := s.newDeviceObject(2, func(idx int, buf []byte) { buf[0] = 0xd0 + byte(idx) })
	if err != nil {
		t.Fatal(err)
	}
	p := newProc(t, s, "p")
	p.m.lock()
	va, _ := p.m.findSpace(0, 2*param.PageSize)
	e := s.allocEntry(p.m)
	e.start, e.end = va, va+2*param.PageSize
	e.obj = rom
	e.prot, e.maxProt = param.ProtRead, param.ProtRX
	p.m.insert(e)
	p.m.unlock()

	b := make([]byte, 1)
	for i := 0; i < 2; i++ {
		if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, b); err != nil {
			t.Fatal(err)
		}
		if b[0] != 0xd0+byte(i) {
			t.Fatalf("ROM page %d = %#x", i, b[0])
		}
	}
	// ROM pages are wired: pressure cannot evict them.
	hog := newProc(t, s, "hog")
	hva, _ := hog.Mmap(0, 200*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	hog.TouchRange(hva, 200*param.PageSize, true)
	if err := p.Access(va, false); err != nil {
		t.Fatal("ROM page unavailable after pressure")
	}
}

// --- lifecycle ---

func TestExitFreesEverything(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/exit", 2, 1)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 2*param.PageSize, param.ProtRW, vmapi.MapPrivate, vn, 0)
	p.TouchRange(va, 2*param.PageSize, true)
	av, _ := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.TouchRange(av, 8*param.PageSize, true)
	vn.Unref()

	anons := m.Stats.Get("uvm.anon.live")
	if anons == 0 {
		t.Fatal("no live anons before exit")
	}
	p.Exit()
	if got := m.Stats.Get("uvm.anon.live"); got != 0 {
		t.Fatalf("%d anons leaked at exit", got)
	}
	if got := m.Stats.Get("uvm.amap.live"); got != 0 {
		t.Fatalf("%d amaps leaked at exit", got)
	}
	if got := m.Swap.SlotsInUse(); got != 0 {
		t.Fatalf("%d swap slots leaked at exit", got)
	}
	if err := p.Access(va, false); !errors.Is(err, vmapi.ErrExited) {
		t.Fatalf("access after exit: %v", err)
	}
}

func TestMsyncWritesBack(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/sync", 1, 0)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	p.WriteBytes(va, []byte{0xcd})
	if err := p.Msync(va, param.PageSize); err != nil {
		t.Fatal(err)
	}
	fb := make([]byte, param.PageSize)
	vn.ReadPage(0, fb)
	if fb[0] != 0xcd {
		t.Fatalf("msync missed the file: %#x", fb[0])
	}
	vn.Unref()
	_ = s
}

// --- randomized integrity + leak property ---

func TestMapIntegrityAndLeaksUnderRandomOps(t *testing.T) {
	s, m := bootTest(t, 512)
	p := newProc(t, s, "fuzz")
	rng := sim.NewRNG(19990606)
	var regions []struct {
		va param.VAddr
		sz param.VSize
	}
	for step := 0; step < 300; step++ {
		switch rng.Intn(7) {
		case 0, 1:
			sz := param.VSize(1+rng.Intn(8)) * param.PageSize
			if va, err := p.Mmap(0, sz, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0); err == nil {
				regions = append(regions, struct {
					va param.VAddr
					sz param.VSize
				}{va, sz})
			}
		case 2:
			if len(regions) > 0 {
				r := regions[rng.Intn(len(regions))]
				off := param.VSize(rng.Intn(int(r.sz/param.PageSize))) * param.PageSize
				p.Access(r.va+param.VAddr(off), rng.Bool(1, 2))
			}
		case 3:
			if len(regions) > 0 {
				i := rng.Intn(len(regions))
				r := regions[i]
				p.Munmap(r.va, r.sz)
				regions = append(regions[:i], regions[i+1:]...)
			}
		case 4:
			if len(regions) > 0 {
				r := regions[rng.Intn(len(regions))]
				p.Mprotect(r.va, r.sz, param.ProtRead)
				p.Mprotect(r.va, r.sz, param.ProtRW)
			}
		case 5:
			if len(regions) > 0 {
				r := regions[rng.Intn(len(regions))]
				p.Mlock(r.va, param.PageSize)
				p.Munlock(r.va, param.PageSize)
			}
		case 6:
			if len(regions) > 0 {
				r := regions[rng.Intn(len(regions))]
				p.Sysctl(r.va, param.PageSize)
			}
		}
		p.m.mu.Lock()
		err := p.m.checkIntegrity()
		p.m.mu.Unlock()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	p.Exit()
	if got := m.Stats.Get("uvm.anon.live"); got != 0 {
		t.Fatalf("anon leak after fuzz: %d", got)
	}
	if got := m.Swap.SlotsInUse(); got != 0 {
		t.Fatalf("swap leak after fuzz: %d", got)
	}
}
