package uvm

import (
	"testing"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
)

func TestUBCReadMatchesFile(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/ubc", 3, 0x50)
	defer vn.Unref()

	buf := make([]byte, 10)
	n, err := s.FileRead(vn, param.PageSize+4, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("read %d bytes", n)
	}
	for i, b := range buf {
		if b != 0x51 { // page 1 fill
			t.Fatalf("byte %d = %#x", i, b)
		}
	}
}

func TestUBCShortReadAtEOF(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/short", 1, 1)
	defer vn.Unref()
	buf := make([]byte, 100)
	n, err := s.FileRead(vn, param.PageSize-20, buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("read %d bytes at EOF boundary, want 20", n)
	}
	if n2, _ := s.FileRead(vn, param.PageSize+5, buf); n2 != 0 {
		t.Fatalf("read past EOF returned %d", n2)
	}
}

func TestUBCWriteVisibleThroughMapping(t *testing.T) {
	// The whole point of UBC: write(2) and mmap are one cache.
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/coherent", 2, 0)
	defer vn.Unref()
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 2*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	// Touch through the mapping first, so the page is resident.
	if err := p.Access(va, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FileWrite(vn, 3, []byte("UBC!")); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 4)
	if err := p.ReadBytes(va+3, b); err != nil {
		t.Fatal(err)
	}
	if string(b) != "UBC!" {
		t.Fatalf("write(2) not visible through mapping: %q", b)
	}
}

func TestUBCMappingWriteVisibleThroughRead(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/coherent2", 1, 0)
	defer vn.Unref()
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	if err := p.WriteBytes(va+100, []byte("via-mmap")); err != nil {
		t.Fatal(err)
	}
	// No msync needed: read(2) sees the store immediately.
	buf := make([]byte, 8)
	if _, err := s.FileRead(vn, 100, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "via-mmap" {
		t.Fatalf("mmap store not visible through read(2): %q", buf)
	}
}

func TestUBCSingleCacheNoDoubleIO(t *testing.T) {
	// Reading a file via read(2) then mapping it must not re-read the
	// disk: one cache, one copy.
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/once", 4, 7)
	defer vn.Unref()
	buf := make([]byte, 4*param.PageSize)
	if _, err := s.FileRead(vn, 0, buf); err != nil {
		t.Fatal(err)
	}
	reads := m.Stats.Get(sim.CtrDiskReads)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	if err := p.TouchRange(va, 4*param.PageSize, false); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats.Get(sim.CtrDiskReads); got != reads {
		t.Fatalf("mapping after read(2) hit the disk %d times: double caching", got-reads)
	}
}

func TestUBCWriteReachesDiskViaFlush(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/flush", 1, 0)
	if _, err := s.FileWrite(vn, 0, []byte{0xbe}); err != nil {
		t.Fatal(err)
	}
	// Drop the last reference: the detach path flushes dirty pages.
	vn.Unref()
	_ = m
	// Reopen and read the raw file page.
	vn2, _ := m.FS.Open("/flush")
	defer vn2.Unref()
	raw := make([]byte, param.PageSize)
	if err := vn2.ReadPage(0, raw); err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0xbe {
		t.Fatalf("UBC write never reached the disk: %#x", raw[0])
	}
}

func TestUBCInvalidArgs(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/inv", 1, 0)
	defer vn.Unref()
	if _, err := s.FileRead(vn, -1, make([]byte, 4)); err != vmapi.ErrInvalid {
		t.Fatalf("negative offset: %v", err)
	}
}
