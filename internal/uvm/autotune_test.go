package uvm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"uvm/internal/control"
	"uvm/internal/param"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// Tests for the control-plane wiring: live watermark resizing against
// condvar-blocked allocators, live pageout-window resizing against an
// active reclaim pipeline, the syncer's dirty-page trickle, and an
// end-to-end AutoTune boot smoke test. Run under -race in CI.

// TestWatermarkResizeWhileAllocatorsBlocked retargets the watermarks at
// the worst possible moment — allocators condvar-blocked in waitForFree,
// daemon held in its gate — and verifies no wakeup is lost: every
// blocked allocator completes once the daemon runs. This is the race the
// generation-counter protocol has to win; watermark values play no part
// in the sleep/wake handshake.
func TestWatermarkResizeWhileAllocatorsBlocked(t *testing.T) {
	s, _ := bootTest(t, 64)
	release := gateDaemon(s)
	defer release()

	const workers, pages = 4, 48
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			p, err := s.NewProcess(fmt.Sprintf("w%d", w))
			if err != nil {
				errs <- err
				return
			}
			va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW,
				vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				errs <- err
				return
			}
			errs <- p.TouchRange(va, pages*param.PageSize, true)
		}(w)
	}

	deadline := time.Now().Add(5 * time.Second)
	for waitersOf(s) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no allocator ever blocked on the pagedaemon")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Resize under the blocked allocators — both directions, ending on a
	// raised floor so the daemon reclaims toward different targets than
	// it was booted with.
	oldLow := s.pd.lowMark()
	s.pd.setWatermarks(oldLow*2, oldLow*4)
	s.pd.setWatermarks(1, 2)
	s.pd.setWatermarks(oldLow*2, oldLow*4)
	if got := s.pd.lowMark(); got != oldLow*2 {
		t.Fatalf("lowMark after resize = %d, want %d", got, oldLow*2)
	}
	if got := s.pd.highMark(); got != oldLow*4 {
		t.Fatalf("highMark after resize = %d, want %d", got, oldLow*4)
	}
	// Degenerate settings must be refused, not installed.
	s.pd.setWatermarks(0, 10)
	s.pd.setWatermarks(8, 8)
	if got := s.pd.lowMark(); got != oldLow*2 {
		t.Fatalf("degenerate resize was installed: lowMark = %d", got)
	}

	release()
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker failed after watermark resize: %v", err)
		}
	}
}

// TestPageoutWindowLiveResizeDuringReclaim runs the full async reclaim
// pipeline against a goroutine that resizes the swap AIO window across
// its whole range mid-flight. Clusters admitted under the old, larger
// window must drain normally across every shrink; the shutdown sweep
// (registered by the boot helper) then proves no page leaked a Busy
// claim.
func TestPageoutWindowLiveResizeDuringReclaim(t *testing.T) {
	s, m := bootPipeline(t, 128, func(c *Config) {
		c.AsyncPageout = true
		c.PageoutWindow = 4
		c.ReclaimWorkers = 2
		c.PageinCluster = 4
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Swap.SetAIOWindow(n%8 + 1)
			n++
		}
	}()

	p := newProc(t, s, "p")
	const pages = 512 // 4× RAM: continuous pageout and pagein traffic
	va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sweepPattern(t, p, va, pages)
	close(stop)
	wg.Wait()
	if got := m.Swap.AIOWindow(); got < 1 || got > 8 {
		t.Fatalf("final AIO window = %d, outside the resizer's range", got)
	}
}

// TestSyncerTricklesDirtyObjectPages drives one syncer pass by hand over
// dirtied shared file mappings: the dirty pages must leave through the
// writeback engine (clean afterwards, data on the file) without being
// evicted, and pages past EOF or on aobj backends must be left alone.
func TestSyncerTricklesDirtyObjectPages(t *testing.T) {
	s, m := bootWb(t, 256, func(c *Config) {
		c.AsyncWriteback = true
		c.AutoTune = true
	})
	if s.tuner == nil {
		t.Fatal("AutoTune boot did not start the tuner")
	}

	vn := mkfile(t, m, "/sync", 8, 0x20)
	defer vn.Unref()
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	if err != nil {
		t.Fatal(err)
	}
	dirtyPages(t, p, va, 0, 1, 2, 6)

	s.tuner.trickleSync()
	m.FS.DrainWrites()

	o := vn.GetVMObj().(*uobject)
	o.mu.Lock()
	for _, idx := range []int{0, 1, 2, 6} {
		pg, ok := o.pages[idx]
		if !ok {
			t.Fatalf("page %d was evicted by the syncer (writeback cleans, it must not evict)", idx)
		}
		if pg.Dirty.Load() {
			t.Errorf("page %d still dirty after syncer pass + drain", idx)
		}
		if pg.Busy.Load() {
			t.Errorf("page %d still busy after drain", idx)
		}
	}
	o.mu.Unlock()

	if got := m.Stats.Get(ctrSyncerPasses); got < 1 {
		t.Fatalf("%s = %d, want >= 1", ctrSyncerPasses, got)
	}
	if got := m.Stats.Get(ctrSyncerPages); got < 4 {
		t.Fatalf("%s = %d, want >= 4", ctrSyncerPages, got)
	}

	// The flushed bytes must actually be on the file.
	buf := make([]byte, 1)
	if err := vn.ReadPage(0, make([]byte, param.PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := p.ReadBytes(va, buf); err != nil || buf[0] != 0xD0 {
		t.Fatalf("mapped data corrupted by syncer: %v %#x", err, buf[0])
	}
}

// TestAutotuneBootSmoke boots the whole control plane through
// vmapi.MachineConfig.AutoTune, runs a paging workload that crosses
// several controller epochs, and verifies the plane actually stepped,
// every emitted setting still validates, and shutdown is clean (Busy
// sweep via the cleanup hook).
func TestAutotuneBootSmoke(t *testing.T) {
	m := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:  128,
		SwapPages: 1024,
		FSPages:   4096,
		MaxVnodes: 50,
		AutoTune:  true,
	})
	cfg := DefaultConfig()
	cfg.AsyncPageout = true
	cfg.AsyncWriteback = true
	cfg.PageoutWindow = 2
	cfg.PageinCluster = 4
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)
	if s.tuner == nil {
		t.Fatal("MachineConfig.AutoTune did not start the tuner")
	}

	p := newProc(t, s, "p")
	const pages = 512
	va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sweepPattern(t, p, va, pages) // 4× RAM of paging: many ms of sim time

	if got := m.Stats.Get(control.CtrSteps); got == 0 {
		t.Fatalf("control plane never stepped (sim clock %v)", m.Clock.Now())
	}
	tun := s.tuner.set.Tuning()
	if err := tun.Validate(m.Mem.TotalPages()); err != nil {
		t.Fatalf("live tuning does not validate: %v (%+v)", err, tun)
	}
	// The applied knobs must agree with the controller set.
	if got := m.Swap.AIOWindow(); got != tun.PageoutWindow {
		t.Errorf("swap window = %d, controller says %d", got, tun.PageoutWindow)
	}
	if got := s.pageinWindow(); got != tun.PageinCluster {
		t.Errorf("pagein window = %d, controller says %d", got, tun.PageinCluster)
	}
	if got := s.pd.lowMark(); got != tun.LowWater {
		t.Errorf("low watermark = %d, controller says %d", got, tun.LowWater)
	}

	s.Shutdown() // idempotent; cleanup sweeps again
	if busy := m.Mem.BusyPages(); len(busy) != 0 {
		t.Fatalf("%d Busy pages after AutoTune shutdown", len(busy))
	}
}
