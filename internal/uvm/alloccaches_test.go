package uvm

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// Tests for the per-CPU free-page caches under the full VM stack: racing
// allocators against the pagedaemon's watermark protocol, and the
// daemon's magazine reap rescuing a blocked allocator when the page
// queues have nothing left to give.

func bootCachesTest(t *testing.T, ramPages, caches int) (*System, *vmapi.Machine) {
	t.Helper()
	m := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:    ramPages,
		SwapPages:   int64(ramPages) * 4,
		FSPages:     4096,
		MaxVnodes:   50,
		AllocCaches: caches,
	})
	s := BootConfig(m, DefaultConfig())
	testutil.SweepOnCleanup(t, s)
	return s, m
}

// TestAllocCachesRacingAllocatorsVsPagedaemon overcommits a caches-on
// machine from 8 goroutines at once — 3x RAM of anonymous pages, touched
// twice — so allocation traffic runs through the magazines while the
// pagedaemon is continuously woken by the low-water doorbell and evicts
// to swap. Every fault must complete: the magazines may never hide
// frames from the watermark protocol or wedge a waiter. Runs in the
// explicit -race CI step.
func TestAllocCachesRacingAllocatorsVsPagedaemon(t *testing.T) {
	const (
		workers     = 8
		ramPages    = 256
		pagesPer    = 96 // workers * pagesPer = 3x RAM
		touchRounds = 2
	)
	s, m := bootCachesTest(t, ramPages, workers)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := newProc(t, s, "racer")
			va, err := p.Mmap(0, pagesPer*param.PageSize, param.ProtRW,
				vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < touchRounds; r++ {
				if err := p.TouchRange(va, pagesPer*param.PageSize, true); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("racing allocator failed: %v", err)
	}

	st := m.Stats
	if st.Get(sim.CtrAllocHits) == 0 {
		t.Error("no magazine hits: the cached allocation path never ran")
	}
	if st.Get(sim.CtrPdWakeups) == 0 {
		t.Error("pagedaemon never woken: the overcommit did not cross the low watermark")
	}
	if st.Get(sim.CtrPageOuts) == 0 {
		t.Error("nothing paged out despite 3x RAM of dirty anon pages")
	}
	t.Logf("alloc acquires=%d contended=%d hits=%d refills=%d drains=%d steals=%d reaps=%d pd-wakeups=%d",
		st.Get(sim.CtrAllocAcquires), st.Get(sim.CtrAllocContended),
		st.Get(sim.CtrAllocHits), st.Get(sim.CtrAllocRefills),
		st.Get(sim.CtrAllocDrains), st.Get(sim.CtrAllocSteals),
		st.Get(sim.CtrAllocReaps), st.Get(sim.CtrPdWakeups))
}

// TestAllocCachesDaemonReapRescuesWaiter constructs, deterministically,
// the one situation where frames parked in magazines could wedge the
// system: the global pool and every magazine are empty, an allocator is
// blocked in waitForFree, and the only free frames then appear in a
// magazine the blocked goroutine cannot reach (parked there by a freeing
// goroutine, fewer than the low watermark, with nothing evictable on the
// page queues). The daemon's round frees nothing from the queues — before
// this PR's reap fallback it would declare a stall and the waiter would
// fall into direct reclaim and ErrDeadlock. With the fallback, the round
// reaps the magazines into the pool, broadcasts, and the waiter's retry
// succeeds.
func TestAllocCachesDaemonReapRescuesWaiter(t *testing.T) {
	const (
		ramPages = 128
		caches   = 4
		parked   = 8 // frames freed into a magazine: below pd.low (32 here)
	)
	s, m := bootCachesTest(t, ramPages, caches)

	// Togglable daemon gate, installed before any allocation: closed =
	// the daemon parks before its next reclaim round.
	var gate atomic.Value // chan struct{}; receiving proceeds when closed
	openGate := func() chan struct{} {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	gate.Store(openGate())
	s.pd.gate = func() { <-gate.Load().(chan struct{}) }
	if parked >= s.pd.lowMark() {
		t.Fatalf("test sizing broken: parked=%d must stay below pd.low=%d", parked, s.pd.lowMark())
	}

	// Drain the machine completely: pool and magazines all empty. The
	// grabbed frames are raw (never enqueued), so the page queues hold
	// nothing the daemon could evict.
	type grabOwner struct{}
	gate.Store(make(chan struct{}))
	var grabbed []*phys.Page
	for {
		pg, err := m.Mem.Alloc(&grabOwner{}, 0, false)
		if err != nil {
			break
		}
		grabbed = append(grabbed, pg)
	}
	if len(grabbed) != ramPages {
		t.Fatalf("grabbed %d frames, want all %d", len(grabbed), ramPages)
	}

	// Block an allocator: Alloc fails (nothing free anywhere), so it
	// registers as a waiter and sleeps on the daemon's condvar.
	got := make(chan *phys.Page, 1)
	fail := make(chan error, 1)
	go func() {
		pg, err := s.allocPage(&grabOwner{}, 0, false)
		if err != nil {
			fail <- err
			return
		}
		got <- pg
	}()
	deadline := time.Now().Add(10 * time.Second)
	for waitersOf(s) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("allocator never registered as a pagedaemon waiter")
		}
		runtime.Gosched()
	}

	// Park a handful of frames in a magazine — NOT the pool. freeCnt
	// rises (the watermark never lies) but stays below pd.low, and the
	// blocked goroutine cannot retry until a round completes.
	reapsBefore := m.Stats.Get(sim.CtrAllocReaps)
	for i := 0; i < parked; i++ {
		m.Mem.FreeCPU(2, grabbed[len(grabbed)-1-i])
	}
	grabbed = grabbed[:len(grabbed)-parked]
	if free, cached := m.Mem.FreePages(), m.Mem.CachedFreePages(); free != parked || cached != parked {
		t.Fatalf("parked frames miscounted: FreePages=%d CachedFreePages=%d, want %d in magazines only",
			free, cached, parked)
	}

	// Open the gate: the round scans empty queues, frees nothing, reaps
	// the magazines, and broadcasts. The waiter's retry must succeed.
	close(gate.Load().(chan struct{}))
	select {
	case pg := <-got:
		grabbed = append(grabbed, pg)
	case err := <-fail:
		t.Fatalf("blocked allocator failed instead of being rescued by the magazine reap: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("blocked allocator still waiting after the daemon round")
	}
	if reaps := m.Stats.Get(sim.CtrAllocReaps); reaps == reapsBefore {
		t.Errorf("phys.alloc.reaps did not advance: the rescue did not come from the magazine reap")
	}

	for _, pg := range grabbed {
		m.Mem.Free(pg)
	}
}
