package uvm

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// Tests for the object writeback pipeline (objwb.go): msync correctness
// (dirty-clear, range limits, aobj-to-swap), determinism of the flush
// order, the clustered async engine on both backends, gate-orchestrated
// msync-vs-fault and msync-vs-reclaim races, and the pagedaemon's
// async vnode put path.

// bootWb boots a System with the writeback pipeline tuned by tune.
func bootWb(t *testing.T, ramPages int, tune func(*Config)) (*System, *vmapi.Machine) {
	t.Helper()
	m := testMachine(ramPages)
	cfg := DefaultConfig()
	if tune != nil {
		tune(&cfg)
	}
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)
	return s, m
}

// dirtyPages write-faults the given pages of a mapping.
func dirtyPages(t *testing.T, p *Process, va param.VAddr, idxs ...int) {
	t.Helper()
	for _, i := range idxs {
		if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{0xD0 + byte(i)}); err != nil {
			t.Fatalf("dirty page %d: %v", i, err)
		}
	}
}

// TestMsyncSecondPassWritesNothing is the dirty-clear regression test:
// a successful Msync must leave the flushed pages clean, so a second
// Msync over an untouched range performs zero writes. Asserted through
// the pager counters (vm.pageouts) and the raw disk write counters, in
// both the synchronous and the asynchronous pipeline.
func TestMsyncSecondPassWritesNothing(t *testing.T) {
	for _, mode := range []struct {
		name string
		tune func(*Config)
	}{
		{"sync", nil},
		{"async", func(c *Config) { c.AsyncWriteback = true }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s, m := bootWb(t, 256, mode.tune)
			vn := mkfile(t, m, "/wb", 8, 0x11)
			defer vn.Unref()
			p := newProc(t, s, "p")
			va, err := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
			if err != nil {
				t.Fatal(err)
			}
			dirtyPages(t, p, va, 0, 1, 2, 5)
			if err := p.Msync(va, 8*param.PageSize); err != nil {
				t.Fatal(err)
			}
			if got := m.Stats.Get(sim.CtrPageOuts); got != 4 {
				t.Fatalf("first msync wrote %d pages, want 4", got)
			}
			outs := m.Stats.Get(sim.CtrPageOuts)
			writes := m.Stats.Get(sim.CtrDiskWrites) + m.Stats.Get("disk.writes.deferred")
			if err := p.Msync(va, 8*param.PageSize); err != nil {
				t.Fatal(err)
			}
			if got := m.Stats.Get(sim.CtrPageOuts) - outs; got != 0 {
				t.Errorf("second msync over untouched range wrote %d pages, want 0", got)
			}
			if got := m.Stats.Get(sim.CtrDiskWrites) + m.Stats.Get("disk.writes.deferred") - writes; got != 0 {
				t.Errorf("second msync issued %d disk writes, want 0", got)
			}
			// Redirtying one page makes exactly that page flushable again.
			dirtyPages(t, p, va, 2)
			if err := p.Msync(va, 8*param.PageSize); err != nil {
				t.Fatal(err)
			}
			if got := m.Stats.Get(sim.CtrPageOuts) - outs; got != 1 {
				t.Errorf("msync after redirty wrote %d pages, want 1", got)
			}
		})
	}
}

// TestMsyncAobjFlushesToSwap covers the new aobj backend: msync of a
// shared anonymous mapping pushes the dirty pages to swap (clustered,
// with AsyncWriteback), leaves them resident and clean, and the data
// survives a later eviction/pagein round trip from those slots.
func TestMsyncAobjFlushesToSwap(t *testing.T) {
	for _, mode := range []struct {
		name string
		tune func(*Config)
	}{
		{"sync", nil},
		{"async", func(c *Config) { c.AsyncWriteback = true; c.WritebackCluster = 8 }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s, m := bootWb(t, 256, mode.tune)
			p := newProc(t, s, "p")
			const pages = 8
			va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapShared, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < pages; i++ {
				if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{0xA0 + byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			slotsBefore := m.Stats.Get(sim.CtrSwapSlotsLive)
			if err := p.Msync(va, pages*param.PageSize); err != nil {
				t.Fatal(err)
			}
			if got := m.Stats.Get(sim.CtrPageOuts); got != pages {
				t.Fatalf("aobj msync wrote %d pages, want %d", got, pages)
			}
			if got := m.Stats.Get(sim.CtrSwapSlotsLive) - slotsBefore; got != pages {
				t.Fatalf("aobj msync allocated %d swap slots, want %d", got, pages)
			}
			// Still resident (msync cleans, it does not evict), and intact.
			res, err := p.Mincore(va, pages*param.PageSize)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range res {
				if !r {
					t.Fatalf("page %d evicted by msync", i)
				}
			}
			buf := make([]byte, 1)
			for i := 0; i < pages; i++ {
				if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, buf); err != nil {
					t.Fatal(err)
				}
				if buf[0] != 0xA0+byte(i) {
					t.Fatalf("page %d corrupted after msync: %#x", i, buf[0])
				}
			}
		})
	}
}

// TestMsyncDeterministicOrder pins the flush order: two identical
// single-threaded runs must spend identical simulated time and identical
// disk seeks, which fails if the writeback order follows Go map
// iteration (the original Msync iterated o.pages directly).
func TestMsyncDeterministicOrder(t *testing.T) {
	run := func() (time.Duration, int64) {
		m := testMachine(512)
		cfg := DefaultConfig()
		cfg.InlineReclaim = true
		s := BootConfig(m, cfg)
		defer testutil.ShutdownSweep(t, s)
		err := m.FS.Create("/det", 64*param.PageSize, nil)
		if err != nil {
			t.Fatal(err)
		}
		vn, err := m.FS.Open("/det")
		if err != nil {
			t.Fatal(err)
		}
		defer vn.Unref()
		p, err := s.NewProcess("p")
		if err != nil {
			t.Fatal(err)
		}
		va, err := p.Mmap(0, 64*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Dirty a scattered, non-monotonic set of pages.
		for _, i := range []int{63, 3, 17, 4, 41, 5, 29, 30, 2, 55} {
			if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Msync(va, 64*param.PageSize); err != nil {
			t.Fatal(err)
		}
		return m.Clock.Now(), m.Stats.Get(sim.CtrDiskSeeks)
	}
	t1, s1 := run()
	for i := 0; i < 5; i++ {
		t2, s2 := run()
		if t1 != t2 || s1 != s2 {
			t.Fatalf("msync not deterministic: run0 %v/%d seeks, run%d %v/%d seeks", t1, s1, i+1, t2, s2)
		}
	}
}

// TestMsyncClustersContiguousRuns checks the async engine's clustering:
// 16 contiguous dirty pages leave in ceil(16/8)=2 cluster I/Os, and a
// hole in the dirty range splits the run.
func TestMsyncClustersContiguousRuns(t *testing.T) {
	s, m := bootWb(t, 256, func(c *Config) {
		c.AsyncWriteback = true
		c.WritebackCluster = 8
	})
	vn := mkfile(t, m, "/cl", 32, 0)
	defer vn.Unref()
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, 32*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		dirtyPages(t, p, va, i)
	}
	dirtyPages(t, p, va, 20, 21, 25)
	if err := p.Msync(va, 32*param.PageSize); err != nil {
		t.Fatal(err)
	}
	// Runs: [0..7] [8..15] [20,21] [25] = 4 clusters, 19 pages.
	if got := m.Stats.Get(sim.CtrObjWbClusters); got != 4 {
		t.Errorf("writeback clusters = %d, want 4", got)
	}
	if got := m.Stats.Get(sim.CtrObjWbPages); got != 19 {
		t.Errorf("writeback pages = %d, want 19", got)
	}
	// Everything really reached the file.
	raw := make([]byte, param.PageSize)
	for _, i := range []int{0, 7, 15, 20, 25} {
		if err := vn.ReadPage(i, raw); err != nil {
			t.Fatal(err)
		}
		if raw[0] != 0xD0+byte(i) {
			t.Errorf("page %d not on disk after msync: %#x", i, raw[0])
		}
	}
}

// TestMsyncVsConcurrentFaultRace drives the ownership rule
// deterministically: a write fault that hits a page mid-flush must sleep
// until the completion, then redirty the page. The wbGate holds every
// completion until the concurrent writer has provably blocked on the
// busy page (uvm.objwb.waits rises).
func TestMsyncVsConcurrentFaultRace(t *testing.T) {
	s, m := bootWb(t, 256, func(c *Config) {
		c.AsyncWriteback = true
		c.WritebackCluster = 8
	})
	vn := mkfile(t, m, "/race", 4, 0)
	defer vn.Unref()
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{0xAA}, param.PageSize)
	if err := p.WriteBytes(va, old); err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	s.wbGate = func() { <-release }
	defer func() { s.wbGate = nil }()

	writerDone := make(chan error, 1)
	s.msyncGate = func() {
		// Clusters submitted, completions held at the gate: the page is
		// busy and write-protected. A concurrent store must block.
		go func() {
			writerDone <- p.WriteBytes(va, []byte{0xBB})
		}()
		deadline := time.Now().Add(5 * time.Second)
		for m.Stats.Get(sim.CtrObjWbWaits) == 0 {
			if time.Now().After(deadline) {
				t.Error("concurrent writer never blocked on the busy page")
				break
			}
			time.Sleep(time.Millisecond)
		}
		select {
		case err := <-writerDone:
			t.Errorf("writer finished while the flush owned the page (err=%v)", err)
		default:
		}
		close(release) // let the completion run; the writer wakes after it
	}
	defer func() { s.msyncGate = nil }()

	if err := p.Msync(va, param.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := <-writerDone; err != nil {
		t.Fatalf("blocked writer failed: %v", err)
	}

	// The flush wrote the pre-store data; the store landed after and
	// redirtied the page.
	raw := make([]byte, param.PageSize)
	if err := vn.ReadPage(0, raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, old) {
		t.Fatalf("disk holds neither the flushed snapshot: %#x", raw[0])
	}
	got := make([]byte, 1)
	if err := p.ReadBytes(va, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xBB {
		t.Fatalf("store lost: memory holds %#x, want 0xBB", got[0])
	}
	s.msyncGate, s.wbGate = nil, nil
	if err := p.Msync(va, param.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := vn.ReadPage(0, raw); err != nil {
		t.Fatal(err)
	}
	if raw[0] != 0xBB {
		t.Fatalf("second msync did not flush the redirtied page: %#x", raw[0])
	}
}

// TestMsyncVsPagedaemonRace: a reclaim pass that runs while msync's
// clusters are in flight must TryLock/busy-skip the flushed pages — they
// are neither freed nor double-written — and the msync still completes
// with intact data on disk.
func TestMsyncVsPagedaemonRace(t *testing.T) {
	s, m := bootWb(t, 256, func(c *Config) {
		c.AsyncWriteback = true
		c.WritebackCluster = 8
	})
	vn := mkfile(t, m, "/pdrace", 8, 0)
	defer vn.Unref()
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		dirtyPages(t, p, va, i)
	}

	release := make(chan struct{})
	s.wbGate = func() { <-release }
	defer func() { s.wbGate = nil }()
	s.msyncGate = func() {
		// Pages busy, completions held: run a reclaim pass over
		// everything. It must skip every busy page.
		s.reclaimCount(64)
		close(release)
	}
	defer func() { s.msyncGate = nil }()

	if err := p.Msync(va, 8*param.PageSize); err != nil {
		t.Fatal(err)
	}
	s.msyncGate, s.wbGate = nil, nil

	// The flushed pages survived the reclaim pass resident...
	res, err := p.Mincore(va, 8*param.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r {
			t.Errorf("page %d freed by reclaim while riding the msync flush", i)
		}
	}
	// ...and the flush reached the file intact.
	raw := make([]byte, param.PageSize)
	for i := 0; i < 8; i++ {
		if err := vn.ReadPage(i, raw); err != nil {
			t.Fatal(err)
		}
		if raw[0] != 0xD0+byte(i) {
			t.Errorf("page %d corrupted across the race window: %#x", i, raw[0])
		}
	}
}

// TestVnodeRecycleClusteredWriteback forces vnode recycling with dirty
// mapped pages under the async pipeline: the recycle hook flushes them
// as clusters, waits for the completions, and the data is on disk when
// the vnode is gone.
func TestVnodeRecycleClusteredWriteback(t *testing.T) {
	s, m := bootWb(t, 512, func(c *Config) {
		c.AsyncWriteback = true
		c.WritebackCluster = 8
	})
	vn := mkfile(t, m, "/recycle", 8, 0)
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		dirtyPages(t, p, va, i)
	}
	// Unmap (last-unmap detach fires its fire-and-forget flush) and drop
	// the vnode, then exhaust the vnode table so /recycle is recycled.
	if err := p.Munmap(va, 8*param.PageSize); err != nil {
		t.Fatal(err)
	}
	vn.Unref()
	recycles := m.Stats.Get("vfs.recycles")
	for i := 0; m.Stats.Get("vfs.recycles") == recycles; i++ {
		name := fmt.Sprintf("/filler%d", i)
		if err := m.FS.Create(name, param.PageSize, nil); err != nil {
			t.Fatal(err)
		}
		fv, err := m.FS.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		fv.Unref()
		if i > 2*m.FS.MaxVnodes() {
			t.Fatal("vnode table never recycled the test vnode")
		}
	}
	if got := m.Stats.Get(sim.CtrObjWbClusters); got == 0 {
		t.Error("no writeback clusters: detach/recycle did not use the pipeline")
	}
	// Reopen: the data must come back from the file, not from (freed)
	// memory.
	vn2, err := m.FS.Open("/recycle")
	if err != nil {
		t.Fatal(err)
	}
	defer vn2.Unref()
	raw := make([]byte, param.PageSize)
	for i := 0; i < 8; i++ {
		if err := vn2.ReadPage(i, raw); err != nil {
			t.Fatal(err)
		}
		if raw[0] != 0xD0+byte(i) {
			t.Errorf("page %d lost across recycle: %#x", i, raw[0])
		}
	}
}

// TestPdaemonVnodeAsyncPut covers the reclaim flavour of the pipeline:
// under memory pressure with AsyncPageout, dirty file pages leave
// through per-object async cluster flights (owner lock handed to the
// last completion) and every byte survives the round trip.
func TestPdaemonVnodeAsyncPut(t *testing.T) {
	s, m := bootWb(t, 128, func(c *Config) {
		c.AsyncPageout = true
		c.PageoutWindow = 4
	})
	vn := mkfile(t, m, "/big", 512, 0)
	defer vn.Unref()
	p := newProc(t, s, "p")
	va, err := p.Mmap(0, 512*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty 4x RAM of file pages, then read everything back.
	for i := 0; i < 512; i++ {
		if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}
	buf := make([]byte, 2)
	for i := 0; i < 512; i++ {
		if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, buf); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		if buf[0] != byte(i) || buf[1] != byte(i>>8) {
			t.Fatalf("page %d corrupted: %#x %#x", i, buf[0], buf[1])
		}
	}
	s.Shutdown()
	if got := m.Stats.Get(sim.CtrObjWbClusters); got == 0 {
		t.Errorf("no vnode writeback flights despite pressure; counters:\n%s", m.Stats.String())
	}
	if got := m.Stats.Get(sim.CtrObjWbErrors); got != 0 {
		t.Errorf("writeback errors: %d", got)
	}
}

// TestMsyncPastEOFPageFailsWithoutPoisoningRun: a mapping past EOF
// zero-fills, so a store can dirty a page with no home in the file.
// Msync must report the failure (as the synchronous put always did) —
// but the in-range dirty pages sharing its contiguous run must still
// reach the disk, and the system must not livelock retrying the run.
func TestMsyncPastEOFPageFailsWithoutPoisoningRun(t *testing.T) {
	for _, mode := range []struct {
		name string
		tune func(*Config)
	}{
		{"sync", nil},
		{"async", func(c *Config) { c.AsyncWriteback = true; c.WritebackCluster = 8 }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s, m := bootWb(t, 256, mode.tune)
			vn := mkfile(t, m, "/eof", 4, 0) // 4 file pages...
			defer vn.Unref()
			p := newProc(t, s, "p")
			// ...mapped over 6 pages: indices 4 and 5 zero-fill past EOF.
			va, err := p.Mmap(0, 6*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
			if err != nil {
				t.Fatal(err)
			}
			dirtyPages(t, p, va, 2, 3, 4)
			if err := p.Msync(va, 6*param.PageSize); err == nil {
				t.Fatal("msync of a dirty past-EOF page reported success")
			}
			// The in-range pages of the same contiguous run still landed.
			raw := make([]byte, param.PageSize)
			for _, i := range []int{2, 3} {
				if err := vn.ReadPage(i, raw); err != nil {
					t.Fatal(err)
				}
				if raw[0] != 0xD0+byte(i) {
					t.Errorf("in-range page %d not flushed past the EOF failure: %#x", i, raw[0])
				}
			}
			// The page itself stays dirty and usable.
			got := make([]byte, 1)
			if err := p.ReadBytes(va+4*param.PageSize, got); err != nil || got[0] != 0xD4 {
				t.Errorf("past-EOF page lost: err=%v data=%#x", err, got[0])
			}
		})
	}
}

// TestAobjPageinClusterRoundTrip evicts a shared-anonymous region and
// faults it back with clustering on: the data must be intact, the
// cluster counters must show neighbour rides, and two identical
// single-threaded runs must behave identically.
func TestAobjPageinClusterRoundTrip(t *testing.T) {
	run := func(cluster int) (string, int64, int64) {
		m := testMachine(64)
		cfg := DefaultConfig()
		cfg.InlineReclaim = true
		cfg.PageinCluster = cluster
		s := BootConfig(m, cfg)
		defer testutil.ShutdownSweep(t, s)
		p, err := s.NewProcess("p")
		if err != nil {
			t.Fatal(err)
		}
		const pages = 192 // 3x RAM: the sweep forces aobj pageout
		va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapShared, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pages; i++ {
			if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(i), byte(i >> 8)}); err != nil {
				t.Fatal(err)
			}
		}
		sum := ""
		buf := make([]byte, 2)
		for i := 0; i < pages; i++ {
			if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != byte(i) || buf[1] != byte(i>>8) {
				t.Fatalf("cluster=%d: page %d corrupted: %#x %#x", cluster, i, buf[0], buf[1])
			}
			sum += fmt.Sprintf("%x.", buf)
		}
		return sum, m.Stats.Get(sim.CtrAobjPageinClusters), m.Stats.Get(sim.CtrAobjPageinClustered)
	}

	sum1, clusters, rides := run(8)
	if clusters == 0 || rides == 0 {
		t.Errorf("aobj pagein never clustered: %d clusters, %d rides", clusters, rides)
	}
	// Determinism: identical runs, identical behaviour.
	sum2, clusters2, rides2 := run(8)
	if sum1 != sum2 || clusters != clusters2 || rides != rides2 {
		t.Errorf("aobj clustered pagein not deterministic: %d/%d vs %d/%d clusters/rides",
			clusters, rides, clusters2, rides2)
	}
	// And the unclustered ablation never rides.
	_, c0, r0 := run(0)
	if c0 != 0 || r0 != 0 {
		t.Errorf("clustering disabled but counters moved: %d/%d", c0, r0)
	}
}
