package uvm

import (
	"errors"
	"testing"

	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// Additional coverage for UVM internals: map entry passing with file
// objects, aobj paging, partial-munmap amap behaviour, cluster limits and
// map edge cases.

func TestExportFileBackedRange(t *testing.T) {
	// Map entry passing carries the (amap, object) pair, so a private
	// file mapping with modified pages exports correctly: the importer
	// sees the modifications (share) or a COW view (copy).
	s, m := bootTest(t, 512)
	vn := mkfile(t, m, "/exp", 3, 0x30)
	defer vn.Unref()
	a := newProc(t, s, "a")
	b := newProc(t, s, "b")
	va, _ := a.Mmap(0, 3*param.PageSize, param.ProtRW, vmapi.MapPrivate, vn, 0)
	a.WriteBytes(va+param.PageSize, []byte{0xEE}) // private modification

	tok, err := a.Export(va, 3*param.PageSize, ExportShare)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := b.Import(tok)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	// Unmodified page reads through to the file object.
	b.ReadBytes(vb, buf)
	if buf[0] != 0x30 {
		t.Fatalf("imported file page = %#x", buf[0])
	}
	// Modified page comes from the shared amap.
	b.ReadBytes(vb+param.PageSize, buf)
	if buf[0] != 0xEE {
		t.Fatalf("imported anon page = %#x", buf[0])
	}
	// Shared semantics: b's writes appear in a.
	b.WriteBytes(vb+2*param.PageSize, []byte{0x77})
	a.ReadBytes(va+2*param.PageSize, buf)
	if buf[0] != 0x77 {
		t.Fatalf("share-exported write not visible: %#x", buf[0])
	}
	checkMaps(t, a, b)
}

func TestExportUnmappedRange(t *testing.T) {
	s, _ := bootTest(t, 256)
	a := newProc(t, s, "a")
	if _, err := a.Export(0x5000_0000, param.PageSize, ExportShare); !errors.Is(err, vmapi.ErrFault) {
		t.Fatalf("export of nothing: %v", err)
	}
	if _, err := a.Export(0x1001, param.PageSize, ExportShare); !errors.Is(err, vmapi.ErrInvalid) {
		t.Fatalf("unaligned export: %v", err)
	}
}

func TestImportIntoWrongSystemRejected(t *testing.T) {
	s1, _ := bootTest(t, 256)
	s2, _ := bootTest(t, 256)
	a := newProc(t, s1, "a")
	foreign := newProc(t, s2, "x")
	va, _ := a.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	a.WriteBytes(va, []byte{1})
	tok, _ := a.Export(va, param.PageSize, ExportShare)
	if _, err := foreign.Import(tok); !errors.Is(err, vmapi.ErrInvalid) {
		t.Fatalf("cross-system import: %v", err)
	}
	tok.Release()
}

func TestAobjPagingRoundTrip(t *testing.T) {
	// Shared anonymous memory (aobj-backed) must survive pageout/pagein
	// like amap anons, including through the clustered path.
	s, m := bootTest(t, 64)
	p := newProc(t, s, "p")
	const pages = 128
	va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapShared, nil, 0)
	for i := 0; i < pages; i++ {
		if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(i ^ 0x5a)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if m.Stats.Get(sim.CtrPageOuts) == 0 {
		t.Fatal("no pageout")
	}
	b := make([]byte, 1)
	for i := 0; i < pages; i++ {
		if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, b); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if b[0] != byte(i^0x5a) {
			t.Fatalf("aobj page %d corrupted: %#x", i, b[0])
		}
	}
	// Exit releases the aobj's swap.
	p.Exit()
	if got := m.Swap.SlotsInUse(); got != 0 {
		t.Fatalf("aobj swap leak: %d", got)
	}
}

func TestPartialMunmapKeepsSiblingData(t *testing.T) {
	// Clipping shares the amap between the halves; unmapping one half
	// must leave the other half's anons intact.
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	for i := 0; i < 4; i++ {
		p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(10 + i)})
	}
	if err := p.Munmap(va, 2*param.PageSize); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	for i := 2; i < 4; i++ {
		if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, b); err != nil {
			t.Fatalf("surviving page %d: %v", i, err)
		}
		if b[0] != byte(10+i) {
			t.Fatalf("surviving page %d = %d", i, b[0])
		}
	}
	checkMaps(t, p)
}

func TestMaxClusterRespected(t *testing.T) {
	m := testMachine(64)
	cfg := DefaultConfig()
	cfg.MaxCluster = 8
	cfg.ReclaimBatch = 8
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)
	p, _ := s.NewProcess("p")
	const pages = 128
	va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
		t.Fatal(err)
	}
	clusters := m.Stats.Get("uvm.pdaemon.clusters")
	outs := m.Stats.Get(sim.CtrPageOuts)
	if clusters == 0 || outs == 0 {
		t.Fatal("no clustered pageout")
	}
	if outs/clusters > 8 {
		t.Fatalf("average cluster %d pages exceeds MaxCluster 8", outs/clusters)
	}
}

func TestMprotectRespectsMaxProt(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va, _ := p.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	p.m.mu.Lock()
	e := p.m.lookup(va)
	e.maxProt = param.ProtRW
	p.m.mu.Unlock()
	if err := p.Mprotect(va, param.PageSize, param.ProtRWX); !errors.Is(err, vmapi.ErrInvalid) {
		t.Fatalf("protection beyond maxProt allowed: %v", err)
	}
}

func TestAddressSpaceExhaustion(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	if _, err := p.Mmap(0, param.VSize(param.UserMax), param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate, nil, 0); !errors.Is(err, vmapi.ErrNoSpace) {
		t.Fatalf("oversized mapping: %v", err)
	}
}

func TestSequentialAdviceWidensLookahead(t *testing.T) {
	s, m := bootTest(t, 512)
	vn := mkfile(t, m, "/seq", 32, 0)
	defer vn.Unref()
	warm := newProc(t, s, "warm")
	wva, _ := warm.Mmap(0, 32*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	warm.TouchRange(wva, 32*param.PageSize, false)

	countFaults := func(adv param.Advice) int64 {
		p := newProc(t, s, "p")
		va, _ := p.Mmap(0, 32*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
		p.Madvise(va, 32*param.PageSize, adv)
		before := m.Stats.Get(sim.CtrFaults)
		p.TouchRange(va, 32*param.PageSize, false)
		faults := m.Stats.Get(sim.CtrFaults) - before
		p.Exit()
		return faults
	}
	normal := countFaults(param.AdviceNormal)
	seq := countFaults(param.AdviceSequential)
	if seq >= normal {
		t.Fatalf("sequential advice (%d faults) should beat normal (%d) on a forward sweep",
			seq, normal)
	}
}

func TestTransferEmptyRejected(t *testing.T) {
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	if _, err := p.Transfer(nil, param.ProtRW); !errors.Is(err, vmapi.ErrInvalid) {
		t.Fatalf("empty transfer: %v", err)
	}
}

func TestDonatedTokenReleaseFreesAnons(t *testing.T) {
	s, m := bootTest(t, 256)
	a := newProc(t, s, "a")
	va, _ := a.Mmap(0, 2*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	a.TouchRange(va, 2*param.PageSize, true)
	live := m.Stats.Get("uvm.anon.live")
	if live == 0 {
		t.Fatal("no anons")
	}
	tok, err := a.Export(va, 2*param.PageSize, ExportDonate)
	if err != nil {
		t.Fatal(err)
	}
	tok.Release()
	if got := m.Stats.Get("uvm.anon.live"); got != 0 {
		t.Fatalf("released donated token leaked %d anons", got)
	}
}

func TestForkOfSharedFileMapping(t *testing.T) {
	// MAP_SHARED file mappings inherit shared: child writes reach the
	// object (and thus the parent).
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/shared-fork", 1, 0)
	defer vn.Unref()
	parent := newProc(t, s, "parent")
	va, _ := parent.Mmap(0, param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	child, _ := parent.Fork("child")
	child.(*Process).WriteBytes(va, []byte{0x99})
	b := make([]byte, 1)
	parent.ReadBytes(va, b)
	if b[0] != 0x99 {
		t.Fatalf("shared file mapping not shared across fork: %#x", b[0])
	}
}

func TestReadBytesSpanningEntries(t *testing.T) {
	// A copy crossing two adjacent but separately-mapped regions works.
	s, _ := bootTest(t, 256)
	p := newProc(t, s, "p")
	va1, _ := p.Mmap(0x4000_0000, param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate|vmapi.MapFixed, nil, 0)
	_, err := p.Mmap(0x4000_0000+param.PageSize, param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate|vmapi.MapFixed, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 100)
	for i := range msg {
		msg[i] = byte(i)
	}
	start := va1 + param.PageSize - 50
	if err := p.WriteBytes(start, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	if err := p.ReadBytes(start, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d lost across entry boundary", i)
		}
	}
}
