package uvm

import (
	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/pmap"
	"uvm/internal/sim"
	"uvm/internal/swap"
	"uvm/internal/vmapi"
)

// fault is UVM's general-purpose page fault handler (§5.4): written from
// scratch because neither the SunOS style (everything in the segment
// driver) nor the BSD VM style (mostly object-chain management) fits the
// two-level amap/object scheme.
//
// The structure is exactly the paper's: look up the faulting entry, check
// the amap layer, then the object layer, and fail if neither has the
// data. A write fault on a multiply-referenced anon copies to a fresh
// anon; a write fault on a singly-referenced anon writes in place (the
// optimisation BSD VM's chains cannot express, §5.3). After resolving the
// fault, neighbouring *resident* pages are mapped in according to the
// entry's advice (four ahead, three behind by default) to absorb future
// faults (Table 2).
//
// Locking: the map is taken shared so faults in one process run
// concurrently; it is upgraded to exclusive only when the fault must
// mutate the entry itself (clear needs-copy / allocate the amap). The
// resolved page's owner (anon or object) stays locked from resolution
// through the pmap entry, so the pagedaemon — which TryLocks owners —
// can never free a page out from under a fault in progress.
func (s *System) fault(p *Process, va param.VAddr, access param.Prot) error {
	s.mach.Clock.Advance(s.mach.Costs.FaultTrap)
	s.mach.Stats.Inc(sim.CtrFaults)
	write := access.Allows(param.ProtWrite)
	if write {
		s.mach.Stats.Inc(sim.CtrFaultsWrite)
	} else {
		s.mach.Stats.Inc(sim.CtrFaultsRead)
	}

	m := p.m
	m.rlock()
	wlocked := false
	unlockMap := func() {
		if wlocked {
			m.unlock()
		} else {
			m.runlock()
		}
	}

	e := m.lookup(va)
	if e == nil || !e.prot.Allows(access) {
		unlockMap()
		return vmapi.ErrFault
	}

	// Clear needs-copy before a write can land (amap allocation/copy),
	// and materialise the amap on the first touch of a pure zero-fill
	// mapping. Both mutate the entry, so the shared lock is upgraded to
	// exclusive and the lookup redone. Read faults on needs-copy entries
	// with a lower layer leave needs-copy alone — the data can be mapped
	// read-only straight from the lower layers (contrast with BSD VM,
	// which allocates its shadow object even on read faults).
	if (write && e.needsCopy) || (e.amap == nil && e.obj == nil) {
		m.runlock()
		m.lockNoCharge()
		wlocked = true
		e = m.lookupQuiet(va)
		if e == nil || !e.prot.Allows(access) {
			unlockMap()
			return vmapi.ErrFault
		}
		if (write && e.needsCopy) || (e.amap == nil && e.obj == nil) {
			s.amapCopy(e)
		}
	}

	pg, prot, release, err := s.faultResolve(p, e, va, write)
	if err != nil {
		unlockMap()
		return err
	}
	// While needs-copy is set the amap is shared at the *amap* level
	// (anon reference counts don't see it), so nothing may be mapped
	// writable — the next write must fault and run amapCopy. Only read
	// faults can reach here with needs-copy still set.
	if e.needsCopy {
		prot &^= param.ProtWrite
	}

	pg.Referenced.Store(true)
	p.pm.Enter(param.Trunc(va), pg, prot, e.wired > 0)
	if pg.WireCount.Load() == 0 && !pg.Loaned() {
		s.mach.Mem.Activate(pg)
	}
	release()

	if !s.cfg.DisableLookahead {
		s.lookahead(p, e, va)
	}
	if s.cfg.AsyncPagein {
		s.asyncPagein(e, va)
	}
	unlockMap()
	return nil
}

// asyncPagein implements the paper's §10 future-work item: "modify UVM to
// asynchronously page in non-resident pages that appear to be useful".
// After a fault, the pages in the advice window that are backed by the
// object but not resident are brought in with read-ahead I/O that
// overlaps the faulting process' execution; the next fault then finds
// them resident and the lookahead machinery maps them for free.
func (s *System) asyncPagein(e *entry, faultVA param.VAddr) {
	o := e.obj
	if o == nil || o.vnode == nil {
		return
	}
	ahead, _ := e.advice.Lookahead()
	if ahead == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	base := param.Trunc(faultVA)
	for d := 1; d <= ahead; d++ {
		va := base + param.VAddr(d)*param.PageSize
		if va >= e.end {
			break
		}
		idx := e.objIndex(va)
		if _, resident := o.pages[idx]; resident {
			continue
		}
		if idx >= o.vnode.NumPages() {
			break
		}
		// Allocate the frame (CPU cost charged) and issue the overlapped
		// read.
		pg, raced, err := s.allocObjPageLocked(o, idx, false)
		if err != nil {
			return
		}
		if raced {
			continue // a concurrent fault brought the page in
		}
		if err := o.vnode.ReadPageAsync(idx, pg.Data); err != nil {
			s.mach.Mem.Free(pg)
			return
		}
		pg.Dirty.Store(false)
		o.pages[idx] = pg
		s.mach.Mem.Activate(pg)
		s.ctrAsyncPageinPgs.Inc()
	}
}

// faultResolve finds (or creates) the page for va and decides the
// hardware protection to map it with. On success the returned release
// func holds the page owner's lock until the caller has entered the
// mapping; the caller must invoke it exactly once.
func (s *System) faultResolve(p *Process, e *entry, va param.VAddr, write bool) (*phys.Page, param.Prot, func(), error) {
	for {
		// ---- Layer 1: the amap (anonymous) layer. ----
		if am := e.amap; am != nil {
			am.mu.Lock()
			if a := am.impl.get(e.slotOf(va)); a != nil {
				return s.faultAnon(e, am, a, e.slotOf(va), write)
			}
			am.mu.Unlock()
		}

		// ---- Layer 2: the backing object layer. ----
		if o := e.obj; o != nil {
			idx := e.objIndex(va)
			// A write on a copy-on-write entry will promote the object
			// page into a fresh anon. The anon and its frame are
			// allocated before the object lock is taken so a reclaim
			// triggered by the allocation can still evict o's pages.
			var (
				na *anon
				np *phys.Page
			)
			if write && e.cow {
				na = s.newAnon()
				var err error
				np, err = s.allocPage(na, 0, false)
				if err != nil {
					return nil, 0, nil, err
				}
				na.page = np
			}
			o.mu.Lock()
			pg, ok := o.pages[idx]
			// A busy page belongs to a writeback flush: its contents are
			// on the wire, so nothing may be mapped (a read fault would
			// map it with the entry's full protection, letting stores
			// sneak past the write-protect the flush installed) until the
			// completion clears Busy and wakes us. The lock is dropped
			// during the wait, so re-look the page up each time. The
			// check re-runs after a pager get too: get drops o.mu around
			// its allocation, and its raced path can hand back a page a
			// concurrent flush claimed in that window.
			for {
				if ok && pg.Busy.Load() {
					s.waitObjPageIdle(o, pg)
					pg, ok = o.pages[idx]
					continue
				}
				if ok {
					break
				}
				var err error
				pg, err = o.ops.get(o, idx) // pager allocates (§6)
				if err != nil {
					o.mu.Unlock()
					if na != nil {
						s.anonUnref(na)
					}
					return nil, 0, nil, err
				}
				ok = true
			}
			if write && e.cow {
				// Promote the object page into a fresh anon: the object page
				// itself is never modified by a private mapping.
				s.mach.Mem.CopyData(np, pg)
				np.Dirty.Store(true)
				am := e.amap
				am.mu.Lock()
				if am.impl.get(e.slotOf(va)) != nil {
					// Another fault promoted this slot first: discard our
					// copy and resolve through the amap layer instead.
					am.mu.Unlock()
					o.mu.Unlock()
					s.anonUnref(na)
					continue
				}
				am.impl.set(e.slotOf(va), na)
				na.mu.Lock() // hold the anon across the pmap entry
				am.mu.Unlock()
				o.mu.Unlock()
				return np, e.prot, func() { na.mu.Unlock() }, nil
			}
			if write {
				if pg.Loaned() {
					// Writing a shared object page that is out on loan: the
					// borrowers' view must not change. Replace the object's
					// page with a private copy and orphan the loaned frame.
					np2, retry, err := s.breakObjLoan(o, idx, pg)
					if err != nil {
						o.mu.Unlock()
						return nil, 0, nil, err
					}
					if retry {
						o.mu.Unlock()
						continue
					}
					pg = np2
				}
				pg.Dirty.Store(true)
				return pg, e.prot, func() { o.mu.Unlock() }, nil
			}
			prot := e.prot
			if e.cow {
				prot &^= param.ProtWrite // future writes must fault
			}
			return pg, prot, func() { o.mu.Unlock() }, nil
		}

		// ---- Layer 3: pure zero-fill (the amap was materialised before
		// resolve; the slot is empty). ----
		na := s.newAnon()
		np, err := s.allocPage(na, 0, true)
		if err != nil {
			return nil, 0, nil, err
		}
		np.Dirty.Store(true) // anonymous content lives only in RAM until paged
		na.page = np
		am := e.amap
		am.mu.Lock()
		if am.impl.get(e.slotOf(va)) != nil {
			// Lost a race with a concurrent fault on the same page: retry
			// and resolve through the existing anon.
			am.mu.Unlock()
			s.anonUnref(na)
			continue
		}
		am.impl.set(e.slotOf(va), na)
		na.mu.Lock()
		am.mu.Unlock()
		return np, e.prot, func() { na.mu.Unlock() }, nil
	}
}

// faultAnon resolves a fault that hit an anon in the amap layer. Called
// with am.mu held; on success the returned release func unlocks the
// resolved page's anon.
func (s *System) faultAnon(e *entry, am *amap, a *anon, slot int, write bool) (*phys.Page, param.Prot, func(), error) {
	a.mu.Lock()
	if a.page == nil {
		var err error
		if s.pageinWindow() > 1 && a.swslot != swap.NoSlot {
			// Clustered pagein: drag in VA neighbours whose swap slots
			// are adjacent to ours with the same I/O (see pagein.go).
			err = s.pageinCluster(am, a, slot)
		} else {
			err = s.anonPageinLocked(a)
		}
		if err != nil {
			a.mu.Unlock()
			am.mu.Unlock()
			return nil, 0, nil, err
		}
	}
	pg := a.page
	if !write {
		prot := e.prot
		if a.refs > 1 || pg.Loaned() {
			prot &^= param.ProtWrite
		}
		am.mu.Unlock()
		return pg, prot, func() { a.mu.Unlock() }, nil
	}
	if a.refs == 1 && !pg.Loaned() {
		// Sole owner: write in place. (BSD VM in the same situation
		// copies the page to the top shadow object — §5.3's "expensive
		// and unnecessary page allocation and data copy".)
		pg.Dirty.Store(true)
		// The swap copy (if any) is now stale.
		if a.swslot != swap.NoSlot {
			s.mach.Swap.Free(a.swslot)
			a.swslot = swap.NoSlot
		}
		am.mu.Unlock()
		return pg, e.prot, func() { a.mu.Unlock() }, nil
	}
	// Copy-on-write: copy the data to a newly allocated anon and drop the
	// reference to the original (§5.2). Also the loan-break path: writing
	// to a loaned page must not disturb the borrowers.
	na := s.newAnon()
	np, err := s.allocPage(na, 0, false)
	if err != nil {
		a.mu.Unlock()
		am.mu.Unlock()
		return nil, 0, nil, err
	}
	s.mach.Mem.CopyData(np, pg)
	np.Dirty.Store(true)
	na.page = np
	am.impl.set(slot, na)
	a.mu.Unlock()
	s.anonUnref(a)
	na.mu.Lock() // hold the fresh anon across the pmap entry
	am.mu.Unlock()
	s.mach.Stats.Inc("uvm.cow.copies")
	return np, e.prot, func() { na.mu.Unlock() }, nil
}

// lookahead maps in resident neighbour pages around a fault (§5.4). Only
// pages already resident are touched — "this mechanism only works for
// resident pages"; nothing is paged in.
//
// The window is resolved as a batch: one amap lock acquisition and at
// most one object lock acquisition cover every candidate (instead of
// re-acquiring per neighbour), and the translations enter the pmap
// through one Pmap.EnterBatch, which takes the pmap mutex and each pv
// bucket once for the whole window. Every collected page's owner (anon
// or object) stays locked from collection through the batch entry, so
// reclaim — which TryLocks owners — can never free a collected page
// before it is mapped.
//
// Lookahead is opportunistic — a neighbour it cannot have cheaply is a
// neighbour skipped — so owners are acquired with TryLock only: a busy
// anon (e.g. mid-pageout, its lock held across the async cluster I/O)
// drops out instead of stalling the window. The object lock is taken
// lazily, only when some candidate actually lacks an anon: an
// amap-covered window over a file mapping never touches the shared
// object mutex at all. When the amap is held the object acquisition is
// out of the map -> object -> amap -> anon order, which is safe
// precisely because it never blocks (TryLock; on failure the
// object-layer candidates are dropped).
//
// The window is clamped to the entry underflow-safely: VAddr is
// unsigned, so base - behind*PageSize is formed only when it cannot wrap
// below e.start (an entry mapped near address zero used to push the
// behind window through the wraparound, silently skipping in-range
// behind pages).
//
// A VA whose amap slot holds an anon belongs to the anon layer whether
// or not the anon is resident: a swapped-out anon's data shadows the
// object's copy, so the object page below it is never mapped (the
// per-page path used to fall through to the object layer here and could
// map stale file data under a swapped-out private copy).
func (s *System) lookahead(p *Process, e *entry, faultVA param.VAddr) {
	ahead, behind := e.advice.Lookahead()
	if ahead == 0 && behind == 0 {
		return
	}
	if boost := s.lookaheadBoost(); boost > 0 && ahead > 0 {
		// Control plane: widen the forward window past the advice
		// baseline while the batched-entry payoff holds up. Never applied
		// to Random-advice entries (ahead == 0) — their zero window is a
		// correctness choice, not a tuning.
		ahead += boost
	}
	base := param.Trunc(faultVA)
	lo := e.start
	if span := param.VAddr(behind) * param.PageSize; base-e.start > span {
		lo = base - span
	}
	hi := base + param.VAddr(ahead+1)*param.PageSize
	if hi > e.end {
		hi = e.end
	}

	// Candidate VAs: the window minus the faulting page and anything the
	// pmap already maps.
	var vas []param.VAddr
	for va := lo; va < hi; va += param.PageSize {
		if va == base {
			continue
		}
		if _, ok := p.pm.Lookup(va); ok {
			continue
		}
		vas = append(vas, va)
	}
	if len(vas) == 0 {
		return
	}

	batch := make([]pmap.BatchEntry, 0, len(vas))
	var lockedAnons []*anon
	o := e.obj
	objHeld := false
	if am := e.amap; am != nil {
		am.mu.Lock()
		for _, va := range vas {
			if a := am.impl.get(e.slotOf(va)); a != nil {
				// The anon owns this VA even when swapped out — never
				// fall through to the (possibly stale) object copy
				// beneath it. A busy anon just drops out of the window.
				if !a.mu.TryLock() {
					continue
				}
				if a.page == nil || a.page.WireCount.Load() > 0 {
					a.mu.Unlock()
					continue
				}
				prot := e.prot
				if e.needsCopy || a.refs > 1 || a.page.Loaned() {
					prot &^= param.ProtWrite
				}
				lockedAnons = append(lockedAnons, a)
				batch = append(batch, pmap.BatchEntry{VA: va, Page: a.page, Prot: prot, Wired: e.wired > 0})
				continue
			}
			if o == nil {
				continue
			}
			if !objHeld {
				// Lazy and out of lock order (the amap is held), so
				// TryLock only: failure drops the object-layer
				// candidates rather than risking a blocking cycle.
				if !o.mu.TryLock() {
					o = nil
					continue
				}
				objHeld = true // held through EnterBatch
			}
			if be, ok := s.lookaheadObjPage(e, o, va); ok {
				batch = append(batch, be)
			}
		}
		am.mu.Unlock()
	} else if o != nil {
		o.mu.Lock() // in order: nothing else is held
		objHeld = true
		for _, va := range vas {
			if be, ok := s.lookaheadObjPage(e, o, va); ok {
				batch = append(batch, be)
			}
		}
	}

	if gate := s.lookaheadGate; gate != nil {
		gate()
	}

	if len(batch) > 0 {
		for _, be := range batch {
			be.Page.Referenced.Store(true)
		}
		p.pm.EnterBatch(batch)
		for _, be := range batch {
			// Same guard as the main fault path: loaned pages stay off
			// the paging queues.
			if be.Page.WireCount.Load() == 0 && !be.Page.Loaned() {
				s.mach.Mem.Activate(be.Page)
			}
		}
		s.mach.Stats.Add("uvm.lookahead.mapped", int64(len(batch)))
	}
	for _, a := range lockedAnons {
		a.mu.Unlock()
	}
	if objHeld {
		o.mu.Unlock()
	}
}

// lookaheadObjPage finds the resident object page for one candidate VA
// of the lookahead window. Called with o.mu held; the caller keeps it
// held until after the batched pmap entry.
func (s *System) lookaheadObjPage(e *entry, o *uobject, va param.VAddr) (pmap.BatchEntry, bool) {
	op, ok := o.pages[e.objIndex(va)]
	if !ok || op.Busy.Load() || op.WireCount.Load() > 0 {
		return pmap.BatchEntry{}, false
	}
	prot := e.prot
	if e.needsCopy || e.cow {
		prot &^= param.ProtWrite
	}
	return pmap.BatchEntry{VA: va, Page: op, Prot: prot, Wired: e.wired > 0}, true
}
