package uvm

import (
	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/swap"
	"uvm/internal/vmapi"
)

// fault is UVM's general-purpose page fault handler (§5.4): written from
// scratch because neither the SunOS style (everything in the segment
// driver) nor the BSD VM style (mostly object-chain management) fits the
// two-level amap/object scheme.
//
// The structure is exactly the paper's: look up the faulting entry, check
// the amap layer, then the object layer, and fail if neither has the
// data. A write fault on a multiply-referenced anon copies to a fresh
// anon; a write fault on a singly-referenced anon writes in place (the
// optimisation BSD VM's chains cannot express, §5.3). After resolving the
// fault, neighbouring *resident* pages are mapped in according to the
// entry's advice (four ahead, three behind by default) to absorb future
// faults (Table 2).
func (s *System) fault(p *Process, va param.VAddr, access param.Prot) error {
	s.mach.Clock.Advance(s.mach.Costs.FaultTrap)
	s.mach.Stats.Inc(sim.CtrFaults)
	write := access.Allows(param.ProtWrite)
	if write {
		s.mach.Stats.Inc(sim.CtrFaultsWrite)
	} else {
		s.mach.Stats.Inc(sim.CtrFaultsRead)
	}

	m := p.m
	m.lock()
	defer m.unlock()

	e := m.lookup(va)
	if e == nil {
		return vmapi.ErrFault
	}
	if !e.prot.Allows(access) {
		return vmapi.ErrFault
	}

	// Clear needs-copy before a write can land (amap allocation/copy).
	// Read faults leave needs-copy alone — the data can be mapped
	// read-only straight from the lower layers (contrast with BSD VM,
	// which allocates its shadow object even on read faults).
	if write && e.needsCopy {
		s.amapCopy(e)
	}

	pg, prot, err := s.faultResolve(p, e, va, write)
	if err != nil {
		return err
	}
	// While needs-copy is set the amap is shared at the *amap* level
	// (anon reference counts don't see it), so nothing may be mapped
	// writable — the next write must fault and run amapCopy. Only read
	// faults can reach here with needs-copy still set.
	if e.needsCopy {
		prot &^= param.ProtWrite
	}

	pg.Referenced = true
	p.pm.Enter(param.Trunc(va), pg, prot, e.wired > 0)
	if pg.WireCount == 0 && !pg.Loaned() {
		s.mach.Mem.Activate(pg)
	}

	if !s.cfg.DisableLookahead {
		s.lookahead(p, e, va)
	}
	if s.cfg.AsyncPagein {
		s.asyncPagein(e, va)
	}
	return nil
}

// asyncPagein implements the paper's §10 future-work item: "modify UVM to
// asynchronously page in non-resident pages that appear to be useful".
// After a fault, the pages in the advice window that are backed by the
// object but not resident are brought in with read-ahead I/O that
// overlaps the faulting process' execution; the next fault then finds
// them resident and the lookahead machinery maps them for free.
func (s *System) asyncPagein(e *entry, faultVA param.VAddr) {
	if e.obj == nil || e.obj.vnode == nil {
		return
	}
	ahead, _ := e.advice.Lookahead()
	if ahead == 0 {
		return
	}
	base := param.Trunc(faultVA)
	for d := 1; d <= ahead; d++ {
		va := base + param.VAddr(d)*param.PageSize
		if va >= e.end {
			break
		}
		idx := e.objIndex(va)
		if _, resident := e.obj.pages[idx]; resident {
			continue
		}
		if idx >= e.obj.vnode.NumPages() {
			break
		}
		// Allocate the frame (CPU cost charged) and issue the overlapped
		// read.
		pg, err := s.allocPage(e.obj, param.PageToOff(idx), false)
		if err != nil {
			return
		}
		if err := e.obj.vnode.ReadPageAsync(idx, pg.Data); err != nil {
			s.mach.Mem.Free(pg)
			return
		}
		pg.Dirty = false
		e.obj.pages[idx] = pg
		s.mach.Mem.Activate(pg)
		s.mach.Stats.Inc("uvm.asyncpagein.pages")
	}
}

// faultResolve finds (or creates) the page for va and decides the
// hardware protection to map it with.
func (s *System) faultResolve(p *Process, e *entry, va param.VAddr, write bool) (*phys.Page, param.Prot, error) {
	// ---- Layer 1: the amap (anonymous) layer. ----
	if e.amap != nil {
		if a := e.amap.impl.get(e.slotOf(va)); a != nil {
			return s.faultAnon(e, a, e.slotOf(va), write)
		}
	}

	// ---- Layer 2: the backing object layer. ----
	if e.obj != nil {
		idx := e.objIndex(va)
		pg, ok := e.obj.pages[idx]
		if !ok {
			var err error
			pg, err = e.obj.ops.get(e.obj, idx) // pager allocates (§6)
			if err != nil {
				return nil, 0, err
			}
		}
		if write && e.cow {
			// Promote the object page into a fresh anon: the object page
			// itself is never modified by a private mapping.
			na := s.newAnon()
			np, err := s.allocPage(na, 0, false)
			if err != nil {
				return nil, 0, err
			}
			s.mach.Mem.CopyData(np, pg)
			np.Dirty = true
			na.page = np
			e.amap.impl.set(e.slotOf(va), na)
			return np, e.prot, nil
		}
		if write {
			if pg.Loaned() {
				// Writing a shared object page that is out on loan: the
				// borrowers' view must not change. Replace the object's
				// page with a private copy and orphan the loaned frame.
				np, err := s.breakObjLoan(e.obj, idx, pg)
				if err != nil {
					return nil, 0, err
				}
				pg = np
			}
			pg.Dirty = true
			return pg, e.prot, nil
		}
		prot := e.prot
		if e.cow {
			prot &^= param.ProtWrite // future writes must fault
		}
		return pg, prot, nil
	}

	// ---- Layer 3: pure zero-fill (null object). ----
	if e.amap == nil {
		// First touch of a zero-fill mapping by a read: the amap is
		// created now (deferred allocation runs out of places to defer).
		s.amapCopy(e)
	}
	na := s.newAnon()
	np, err := s.allocPage(na, 0, true)
	if err != nil {
		return nil, 0, err
	}
	np.Dirty = true // anonymous content lives only in RAM until paged
	na.page = np
	e.amap.impl.set(e.slotOf(va), na)
	return np, e.prot, nil
}

// faultAnon resolves a fault that hit an anon in the amap layer.
func (s *System) faultAnon(e *entry, a *anon, slot int, write bool) (*phys.Page, param.Prot, error) {
	if a.page == nil {
		if err := s.anonPagein(a); err != nil {
			return nil, 0, err
		}
	}
	pg := a.page
	if !write {
		prot := e.prot
		if a.refs > 1 || pg.Loaned() {
			prot &^= param.ProtWrite
		}
		return pg, prot, nil
	}
	if a.refs == 1 && !pg.Loaned() {
		// Sole owner: write in place. (BSD VM in the same situation
		// copies the page to the top shadow object — §5.3's "expensive
		// and unnecessary page allocation and data copy".)
		pg.Dirty = true
		// The swap copy (if any) is now stale.
		if a.swslot != swap.NoSlot {
			s.mach.Swap.Free(a.swslot)
			a.swslot = swap.NoSlot
		}
		return pg, e.prot, nil
	}
	// Copy-on-write: copy the data to a newly allocated anon and drop the
	// reference to the original (§5.2). Also the loan-break path: writing
	// to a loaned page must not disturb the borrowers.
	na := s.newAnon()
	np, err := s.allocPage(na, 0, false)
	if err != nil {
		return nil, 0, err
	}
	s.mach.Mem.CopyData(np, pg)
	np.Dirty = true
	na.page = np
	e.amap.impl.set(slot, na)
	s.anonUnref(a)
	s.mach.Stats.Inc("uvm.cow.copies")
	return np, e.prot, nil
}

// lookahead maps in resident neighbour pages around a fault (§5.4). Only
// pages already resident are touched — "this mechanism only works for
// resident pages"; nothing is paged in.
func (s *System) lookahead(p *Process, e *entry, faultVA param.VAddr) {
	ahead, behind := e.advice.Lookahead()
	base := param.Trunc(faultVA)
	for d := -behind; d <= ahead; d++ {
		if d == 0 {
			continue
		}
		va := base + param.VAddr(d)*param.PageSize
		if va < e.start || va >= e.end {
			continue
		}
		if _, ok := p.pm.Lookup(va); ok {
			continue
		}
		var (
			pg   *phys.Page
			prot = e.prot
		)
		if e.amap != nil {
			if a := e.amap.impl.get(e.slotOf(va)); a != nil && a.page != nil {
				pg = a.page
				if a.refs > 1 || pg.Loaned() {
					prot &^= param.ProtWrite
				}
			}
		}
		if pg == nil && e.obj != nil {
			if op, ok := e.obj.pages[e.objIndex(va)]; ok && !op.Busy {
				pg = op
				if e.cow {
					prot &^= param.ProtWrite
				}
			}
		}
		if pg == nil || pg.WireCount > 0 {
			continue
		}
		if e.needsCopy {
			prot &^= param.ProtWrite
		}
		pg.Referenced = true
		p.pm.Enter(va, pg, prot, e.wired > 0)
		s.mach.Mem.Activate(pg)
		s.mach.Stats.Inc("uvm.lookahead.mapped")
	}
}
