package uvm

import (
	"sync/atomic"
	"testing"
	"time"

	"uvm/internal/param"
	"uvm/internal/vmapi"
	"uvm/internal/workload"
)

// TestTrafficFaultCountsWritebackInterference pins down what the
// traffic driver's reclaim-interference column measures on the
// writeback side: a tenant faulting a page whose contents are on the
// wire (an asynchronous msync flush owns it, Busy set) must block in
// waitObjPageIdle until the completion — and that block is visible in
// workload.ReclaimInterference. The gates make the race deterministic:
// wbGate holds every flush completion, msyncGate runs once the clusters
// are submitted, so the tenant's fault provably lands while the I/O is
// in flight. Removing the fault path's busy-wait (fault.go's Busy loop)
// fails this test twice over — the fault completes while the flush owns
// the page, and the interference delta stays zero.
func TestTrafficFaultCountsWritebackInterference(t *testing.T) {
	s, m := bootWb(t, 256, func(c *Config) {
		c.AsyncWriteback = true
		c.WritebackCluster = 8
	})
	vn := mkfile(t, m, "/traffic-busy", 4, 0)
	defer vn.Unref()

	// Tenant 0 dirties the shared file page and will msync it.
	t0 := newProc(t, s, "tenant0")
	va, err := t0.Mmap(0, 4*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
	if err != nil {
		t.Fatal(err)
	}
	dirtyPages(t, t0, va, 0)

	// Tenant 1 maps the same file read-only before the flush — the
	// traffic driver's file-serve shape — but faults nothing yet.
	t1 := newProc(t, s, "tenant1")
	tva, err := t1.Mmap(0, 4*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
	if err != nil {
		t.Fatal(err)
	}

	base := workload.ReclaimInterference(m.Stats)
	release := make(chan struct{})
	s.wbGate = func() { <-release }
	defer func() { s.wbGate = nil }()

	var faultErr error
	var faultDone atomic.Bool
	doneCh := make(chan struct{})
	s.msyncGate = func() {
		// Clusters submitted, completions held at the gate: tenant 1's
		// read fault on the busy page must block, and the block must
		// count as interference.
		go func() {
			faultErr = t1.Access(tva, false)
			faultDone.Store(true)
			close(doneCh)
		}()
		deadline := time.Now().Add(5 * time.Second)
		for workload.ReclaimInterference(m.Stats) == base {
			if time.Now().After(deadline) {
				t.Error("tenant fault never blocked on the in-flight writeback (no interference counted)")
				break
			}
			time.Sleep(time.Millisecond)
		}
		if faultDone.Load() {
			t.Errorf("tenant fault completed while the flush owned the page (err=%v)", faultErr)
		}
		close(release) // deliver the completion; the tenant wakes after it
	}
	defer func() { s.msyncGate = nil }()

	if err := t0.Msync(va, param.PageSize); err != nil {
		t.Fatal(err)
	}
	<-doneCh
	if faultErr != nil {
		t.Fatalf("blocked tenant fault failed: %v", faultErr)
	}
	if d := workload.ReclaimInterference(m.Stats) - base; d < 1 {
		t.Errorf("reclaim-interference delta = %d, want >= 1", d)
	}
}
