package uvm

import (
	"testing"

	"uvm/internal/sim"
)

// TestCachedCounterHandlesFeedStats guards the wiring between the
// cached sim.Counter handles resolved at boot and the string-named
// stats the reports read: a typo in one of the names at the BootConfig
// resolution site would silently split a counter into two cells, with
// the hot paths bumping one and the reports reading the other.
func TestCachedCounterHandlesFeedStats(t *testing.T) {
	s, m := bootTest(t, 256)
	defer s.Shutdown()

	handles := []struct {
		name string
		ctr  sim.Counter
	}{
		{sim.CtrPageIns, s.ctrPageIns},
		{sim.CtrPageOuts, s.ctrPageOuts},
		{"uvm.asyncpagein.pages", s.ctrAsyncPageinPgs},
		{sim.CtrObjWbClusters, s.ctrObjWbClusters},
		{sim.CtrObjWbPages, s.ctrObjWbPages},
		{sim.CtrPdRounds, s.ctrPdRounds},
		{sim.CtrPdDirect, s.ctrPdDirect},
		{sim.CtrPdWorkerRounds, s.ctrPdWorkerRounds},
		{"uvm.ubc.reads", s.ctrUbcReads},
		{"uvm.ubc.writes", s.ctrUbcWrites},
	}
	for _, h := range handles {
		before := m.Stats.Get(h.name)
		h.ctr.Inc()
		if got := m.Stats.Get(h.name); got != before+1 {
			t.Errorf("counter handle for %q: stat moved %d -> %d, want +1", h.name, before, got)
		}
	}
}
