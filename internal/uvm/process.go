package uvm

import (
	"uvm/internal/param"
	"uvm/internal/pmap"
	"uvm/internal/vfs"
	"uvm/internal/vmapi"
)

// Process is a UVM process. It is exported (unlike bsdvm's) because the
// data movement mechanisms of §7 — Loanout, Transfer, Export/Import — are
// UVM-only extensions beyond the common vmapi.Process interface.
type Process struct {
	sys  *System
	name string

	m  *vmMap
	pm *pmap.Pmap

	exited bool
	// vforked marks a child sharing its parent's address space.
	vforked bool

	// uareaWired counts the pages of the user structure / kernel stack,
	// whose wired state lives here in the proc structure — NOT in the
	// kernel map (§3.2).
	uareaWired int

	// kstackWires records buffer ranges temporarily wired by sysctl and
	// physio; the record lives "on the kernel stack" (§3.2), never in the
	// map.
	kstackWires []struct {
		start, end param.VAddr
	}

	// ptPages counts i386 page-table pages; under UVM their wired state
	// is recorded only in the pmap (here mirrored as a counter), never as
	// map entries.
	ptPages int
}

// NewProcess implements vmapi.System.
func (s *System) NewProcess(name string) (vmapi.Process, error) {
	s.big.Lock()
	defer s.big.Unlock()
	return s.newProcessLocked(name)
}

func (s *System) newProcessLocked(name string) (*Process, error) {
	p := &Process{sys: s, name: name}
	p.m = s.newMap(name, param.UserTextBase, param.UserMax, false)
	p.pm = p.m.pmap

	// i386 page-table wiring: pmap-only bookkeeping (§3.2).
	p.pm.OnPTAlloc = func() { p.ptPages++ }
	p.pm.OnPTFree = func() {
		if p.ptPages > 0 {
			p.ptPages--
		}
	}

	// User structure + kernel stack: allocated from the pre-wired uarea
	// arena; the wired state is recorded in the proc structure, consuming
	// zero kernel map entries (§3.2). The arena pages still have to be
	// claimed and cleared — identical work on both systems.
	p.uareaWired = 4
	s.mach.Clock.ChargeN(p.uareaWired, s.mach.Costs.PageAlloc)
	s.mach.Clock.ChargeN(p.uareaWired, s.mach.Costs.PageZero)

	s.procs[p] = struct{}{}
	s.mach.Stats.Inc("uvm.proc.created")
	return p, nil
}

// Name implements vmapi.Process.
func (p *Process) Name() string { return p.name }

// Exited implements vmapi.Process.
func (p *Process) Exited() bool { return p.exited }

// MapEntryCount implements vmapi.Process.
func (p *Process) MapEntryCount() int {
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	return p.m.n
}

// ResidentPages implements vmapi.Process.
func (p *Process) ResidentPages() int { return p.pm.ResidentCount() }

// PTPages returns the page-table page count tracked in the pmap.
func (p *Process) PTPages() int { return p.pm.PTPages() }

// Mincore implements vmapi.Process: per-page residency of the range.
func (p *Process) Mincore(addr param.VAddr, length param.VSize) ([]bool, error) {
	if p.exited {
		return nil, vmapi.ErrExited
	}
	if length == 0 {
		return nil, vmapi.ErrInvalid
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	start := param.Trunc(addr)
	end := param.Round(addr + param.VAddr(length))
	out := make([]bool, 0, (end-start)>>param.PageShift)
	for va := start; va < end; va += param.PageSize {
		_, ok := p.pm.Lookup(va)
		out = append(out, ok)
	}
	return out, nil
}

// Mmap implements vmapi.Process — in one step. The entry is created with
// its final protection, inheritance and advice under a single lock
// acquisition; there is no window where the mapping exists with wrong
// attributes (§3.1).
func (p *Process) Mmap(addr param.VAddr, length param.VSize, prot param.Prot,
	flags vmapi.MapFlags, vn *vfs.Vnode, off param.PageOff) (param.VAddr, error) {

	if p.exited {
		return 0, vmapi.ErrExited
	}
	if length == 0 || !flags.Valid() || !param.PageAligned(param.VAddr(off)) {
		return 0, vmapi.ErrInvalid
	}
	if (flags&vmapi.MapAnon != 0) == (vn != nil) {
		return 0, vmapi.ErrInvalid
	}
	length = param.RoundSize(length)

	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()

	m := p.m
	m.lock()
	var removed []*entry
	var va param.VAddr
	if flags&vmapi.MapFixed != 0 {
		if !param.PageAligned(addr) || addr+param.VAddr(length) > m.allocMax {
			m.unlock()
			return 0, vmapi.ErrInvalid
		}
		removed = m.unmapPhase1(addr, addr+param.VAddr(length))
		va = addr
	} else {
		var err error
		va, err = m.findSpace(addr, length)
		if err != nil {
			m.unlock()
			return 0, err
		}
	}

	private := flags&vmapi.MapPrivate != 0
	e := s.allocEntry(m)
	e.start, e.end = va, va+param.VAddr(length)
	e.prot = prot // the requested protection, set in one step
	e.maxProt = param.ProtRWX
	e.off = off
	if private {
		e.inherit = param.InheritCopy
	} else {
		e.inherit = param.InheritShare
	}
	switch {
	case flags&vmapi.MapAnon != 0 && private:
		// Zero-fill: null object, amap allocated lazily (needs-copy).
		e.cow, e.needsCopy = true, true
	case flags&vmapi.MapAnon != 0:
		// Shared anonymous memory: an aobj backs it.
		e.obj = s.newAObj(param.Pages(length))
	case private:
		// Private file mapping: object below, amap (lazily) above.
		e.obj = s.vnodeObject(vn)
		e.cow, e.needsCopy = true, true
	default:
		// Shared file mapping: object only.
		e.obj = s.vnodeObject(vn)
	}
	m.insert(e)
	m.unlock()

	// Fixed-replacement teardown happens after the lock drops (phase 2).
	if len(removed) > 0 {
		s.unmapPhase2(m, removed)
	}
	return va, nil
}

// Munmap implements vmapi.Process with the two-phase structure of §3.1:
// entries leave the map under the lock; references — and any teardown
// I/O — are dropped after it is released.
func (p *Process) Munmap(addr param.VAddr, length param.VSize) error {
	if p.exited {
		return vmapi.ErrExited
	}
	if !param.PageAligned(addr) || length == 0 {
		return vmapi.ErrInvalid
	}
	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()
	m := p.m
	m.lock()
	removed := m.unmapPhase1(addr, addr+param.VAddr(param.RoundSize(length)))
	m.unlock()
	s.unmapPhase2(m, removed)
	return nil
}

// Mprotect implements vmapi.Process.
func (p *Process) Mprotect(addr param.VAddr, length param.VSize, prot param.Prot) error {
	if p.exited {
		return vmapi.ErrExited
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	return p.m.protect(addr, addr+param.VAddr(param.RoundSize(length)), prot)
}

// Minherit implements vmapi.Process (§5.4: BSD's minherit is one of the
// mechanisms UVM's amap design had to support beyond SunOS).
func (p *Process) Minherit(addr param.VAddr, length param.VSize, inh param.Inherit) error {
	if p.exited {
		return vmapi.ErrExited
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	m := p.m
	m.lock()
	defer m.unlock()
	for _, e := range m.entriesIn(addr, addr+param.VAddr(param.RoundSize(length))) {
		e.inherit = inh
	}
	return nil
}

// Madvise implements vmapi.Process; UVM's fault handler uses the advice to
// size its lookahead window (§5.4).
func (p *Process) Madvise(addr param.VAddr, length param.VSize, adv param.Advice) error {
	if p.exited {
		return vmapi.ErrExited
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	m := p.m
	m.lock()
	defer m.unlock()
	for _, e := range m.entriesIn(addr, addr+param.VAddr(param.RoundSize(length))) {
		e.advice = adv
	}
	return nil
}

// Msync implements vmapi.Process.
func (p *Process) Msync(addr param.VAddr, length param.VSize) error {
	if p.exited {
		return vmapi.ErrExited
	}
	p.sys.big.Lock()
	defer p.sys.big.Unlock()
	m := p.m
	m.lock()
	defer m.unlock()
	end := addr + param.VAddr(param.RoundSize(length))
	for cur := m.head; cur != nil; cur = cur.next {
		if cur.end <= addr || cur.start >= end || cur.obj == nil || cur.obj.vnode == nil {
			continue
		}
		// Flush only the object pages the requested range maps.
		lo, hi := cur.start, cur.end
		if addr > lo {
			lo = addr
		}
		if end < hi {
			hi = end
		}
		loIdx, hiIdx := cur.objIndex(lo), cur.objIndex(hi-1)
		for idx, pg := range cur.obj.pages {
			if idx < loIdx || idx > hiIdx || !pg.Dirty {
				continue
			}
			if err := cur.obj.ops.put(cur.obj, pg); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fork implements vmapi.Process per each entry's inheritance (§5.2,
// Figure 3): copy-inherited ranges share the amap under needs-copy in
// both processes, and the parent's resident pages are write-protected.
func (p *Process) Fork(name string) (vmapi.Process, error) {
	if p.exited {
		return nil, vmapi.ErrExited
	}
	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()

	child, err := s.newProcessLocked(name)
	if err != nil {
		return nil, err
	}
	pm, cm := p.m, child.m
	pm.lock()
	cm.lock()
	for e := pm.head; e != nil; e = e.next {
		switch e.inherit {
		case param.InheritNone:
			continue
		case param.InheritShare:
			// Sharing a needs-copy mapping requires materialising the
			// amap first so both processes genuinely share it (§5.4).
			if e.needsCopy {
				s.amapCopy(e)
			}
			ce := s.allocEntry(cm)
			*ce = *e
			ce.prev, ce.next = nil, nil
			ce.wired = 0
			if ce.amap != nil {
				ce.amap.refs++
			}
			if ce.obj != nil {
				ce.obj.refs++
			}
			cm.insert(ce)
		case param.InheritCopy:
			ce := s.allocEntry(cm)
			*ce = *e
			ce.prev, ce.next = nil, nil
			ce.wired = 0
			ce.cow, ce.needsCopy = true, true
			if ce.amap != nil {
				ce.amap.refs++
			}
			if ce.obj != nil {
				ce.obj.refs++
			}
			if e.cow {
				// The parent's own view also becomes needs-copy, and its
				// resident pages are write-protected so the next store
				// faults (the shared per-page fork cost, §5.3).
				e.needsCopy = true
				p.pm.Protect(e.start, e.end, e.prot&^param.ProtWrite)
			}
			cm.insert(ce)
		}
	}
	cm.unlock()
	pm.unlock()
	s.mach.Stats.Inc("uvm.forks")
	return child, nil
}

// Vfork implements vmapi.Process: the child shares the parent's map and
// pmap; only the uarea is new (the footnote-3 fast path).
func (p *Process) Vfork(name string) (vmapi.Process, error) {
	if p.exited {
		return nil, vmapi.ErrExited
	}
	if p.vforked {
		return nil, vmapi.ErrInvalid
	}
	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()
	child, err := s.newProcessLocked(name)
	if err != nil {
		return nil, err
	}
	child.m = p.m
	child.pm = p.pm
	child.vforked = true
	s.mach.Stats.Inc("uvm.vforks")
	return child, nil
}

// Exit implements vmapi.Process: two-phase teardown of the whole space.
func (p *Process) Exit() {
	if p.exited {
		return
	}
	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()

	if !p.vforked {
		m := p.m
		m.lock()
		removed := m.unmapPhase1(param.UserTextBase, param.UserMax)
		m.unlock()
		s.unmapPhase2(m, removed)

		p.pm.RemoveAll()
	}
	p.uareaWired = 0
	p.kstackWires = nil

	delete(s.procs, p)
	p.exited = true
	s.mach.Stats.Inc("uvm.proc.exited")
}

// Access implements vmapi.Process.
func (p *Process) Access(addr param.VAddr, write bool) error {
	if p.exited {
		return vmapi.ErrExited
	}
	access := param.ProtRead
	if write {
		access = param.ProtWrite
	}
	s := p.sys
	s.big.Lock()
	defer s.big.Unlock()
	if pte, ok := p.pm.Extract(addr); ok && pte.Prot.Allows(access) {
		s.mach.Clock.Advance(s.mach.Costs.PageTouch)
		pte.Page.Referenced = true
		if write {
			pte.Page.Dirty = true
		}
		return nil
	}
	return s.fault(p, addr, access)
}

// TouchRange implements vmapi.Process.
func (p *Process) TouchRange(addr param.VAddr, length param.VSize, write bool) error {
	end := addr + param.VAddr(param.RoundSize(length))
	for va := param.Trunc(addr); va < end; va += param.PageSize {
		if err := p.Access(va, write); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes implements vmapi.Process.
func (p *Process) ReadBytes(addr param.VAddr, buf []byte) error {
	return p.copyBytes(addr, buf, false)
}

// WriteBytes implements vmapi.Process.
func (p *Process) WriteBytes(addr param.VAddr, data []byte) error {
	return p.copyBytes(addr, data, true)
}

func (p *Process) copyBytes(addr param.VAddr, buf []byte, write bool) error {
	done := 0
	for done < len(buf) {
		va := addr + param.VAddr(done)
		pageOff := int(va & param.PageMask)
		n := param.PageSize - pageOff
		if n > len(buf)-done {
			n = len(buf) - done
		}
		if err := p.Access(va, write); err != nil {
			return err
		}
		pte, ok := p.pm.Lookup(va)
		if !ok || pte.Page == nil {
			return vmapi.ErrFault
		}
		if write {
			copy(pte.Page.Data[pageOff:pageOff+n], buf[done:done+n])
		} else {
			copy(buf[done:done+n], pte.Page.Data[pageOff:pageOff+n])
		}
		done += n
	}
	return nil
}
