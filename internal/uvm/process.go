package uvm

import (
	"sync"
	"sync/atomic"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/pmap"
	"uvm/internal/vfs"
	"uvm/internal/vmapi"
)

// Process is a UVM process. It is exported (unlike bsdvm's) because the
// data movement mechanisms of §7 — Loanout, Transfer, Export/Import — are
// UVM-only extensions beyond the common vmapi.Process interface.
type Process struct {
	sys  *System
	name string

	m  *vmMap
	pm *pmap.Pmap

	exited atomic.Bool
	// vforked marks a child sharing its parent's map; set before the
	// process is registered, immutable afterwards.
	vforked bool

	// uareaWired counts the pages of the user structure / kernel stack,
	// whose wired state lives here in the proc structure — NOT in the
	// kernel map (§3.2).
	uareaWired int

	// wireMu guards kstackWires: two kernel paths (sysctl, physio) may
	// wire buffers of the same process concurrently.
	//uvm:lock leaf
	wireMu sync.Mutex
	// kstackWires records buffer ranges temporarily wired by sysctl and
	// physio; the record lives "on the kernel stack" (§3.2), never in the
	// map.
	kstackWires []struct {
		start, end param.VAddr
	}

	// ptPages counts i386 page-table pages; under UVM their wired state
	// is recorded only in the pmap (here mirrored as a counter), never as
	// map entries.
	ptPages atomic.Int32
}

// NewProcess implements vmapi.System.
func (s *System) NewProcess(name string) (vmapi.Process, error) {
	p, err := s.newProc(name)
	if err != nil {
		return nil, err
	}
	s.addProc(p)
	return p, nil
}

// newProc creates (but does not register) a process.
func (s *System) newProc(name string) (*Process, error) {
	p := &Process{sys: s, name: name}
	p.m = s.newMap(name, param.UserTextBase, param.UserMax, false)
	p.pm = p.m.pmap

	// i386 page-table wiring: pmap-only bookkeeping (§3.2).
	p.pm.OnPTAlloc = func() { p.ptPages.Add(1) }
	p.pm.OnPTFree = func() {
		for {
			n := p.ptPages.Load()
			if n <= 0 {
				return
			}
			if p.ptPages.CompareAndSwap(n, n-1) {
				return
			}
		}
	}

	// User structure + kernel stack: allocated from the pre-wired uarea
	// arena; the wired state is recorded in the proc structure, consuming
	// zero kernel map entries (§3.2). The arena pages still have to be
	// claimed and cleared — identical work on both systems.
	p.uareaWired = 4
	s.mach.Clock.ChargeN(p.uareaWired, s.mach.Costs.PageAlloc)
	s.mach.Clock.ChargeN(p.uareaWired, s.mach.Costs.PageZero)
	return p, nil
}

// Name implements vmapi.Process.
func (p *Process) Name() string { return p.name }

// Exited implements vmapi.Process.
func (p *Process) Exited() bool { return p.exited.Load() }

// MapEntryCount implements vmapi.Process.
func (p *Process) MapEntryCount() int {
	p.m.mu.RLock()
	defer p.m.mu.RUnlock()
	return p.m.n
}

// ResidentPages implements vmapi.Process.
func (p *Process) ResidentPages() int { return p.pm.ResidentCount() }

// PTPages returns the page-table page count tracked in the pmap.
func (p *Process) PTPages() int { return p.pm.PTPages() }

// Mincore implements vmapi.Process: per-page residency of the range.
func (p *Process) Mincore(addr param.VAddr, length param.VSize) ([]bool, error) {
	if p.exited.Load() {
		return nil, vmapi.ErrExited
	}
	if length == 0 {
		return nil, vmapi.ErrInvalid
	}
	start := param.Trunc(addr)
	end := param.Round(addr + param.VAddr(length))
	out := make([]bool, 0, (end-start)>>param.PageShift)
	for va := start; va < end; va += param.PageSize {
		_, ok := p.pm.Lookup(va)
		out = append(out, ok)
	}
	return out, nil
}

// Mmap implements vmapi.Process — in one step. The entry is created with
// its final protection, inheritance and advice under a single lock
// acquisition; there is no window where the mapping exists with wrong
// attributes (§3.1).
func (p *Process) Mmap(addr param.VAddr, length param.VSize, prot param.Prot,
	flags vmapi.MapFlags, vn *vfs.Vnode, off param.PageOff) (param.VAddr, error) {

	if p.exited.Load() {
		return 0, vmapi.ErrExited
	}
	if length == 0 || !flags.Valid() || !param.PageAligned(param.VAddr(off)) {
		return 0, vmapi.ErrInvalid
	}
	if (flags&vmapi.MapAnon != 0) == (vn != nil) {
		return 0, vmapi.ErrInvalid
	}
	length = param.RoundSize(length)

	s := p.sys
	m := p.m
	m.lock()
	// Re-check under the map lock: a concurrent Exit may have torn the
	// space down after the entry check above, and an insert now would
	// never be unmapped.
	if p.exited.Load() {
		m.unlock()
		return 0, vmapi.ErrExited
	}
	var removed []*entry
	var va param.VAddr
	if flags&vmapi.MapFixed != 0 {
		if !param.PageAligned(addr) || addr+param.VAddr(length) > m.allocMax {
			m.unlock()
			return 0, vmapi.ErrInvalid
		}
		removed = m.unmapPhase1(addr, addr+param.VAddr(length))
		va = addr
	} else {
		var err error
		va, err = m.findSpace(addr, length)
		if err != nil {
			m.unlock()
			return 0, err
		}
	}

	private := flags&vmapi.MapPrivate != 0
	e := s.allocEntry(m)
	e.start, e.end = va, va+param.VAddr(length)
	e.prot = prot // the requested protection, set in one step
	e.maxProt = param.ProtRWX
	e.off = off
	if private {
		e.inherit = param.InheritCopy
	} else {
		e.inherit = param.InheritShare
	}
	switch {
	case flags&vmapi.MapAnon != 0 && private:
		// Zero-fill: null object, amap allocated lazily (needs-copy).
		e.cow, e.needsCopy = true, true
	case flags&vmapi.MapAnon != 0:
		// Shared anonymous memory: an aobj backs it.
		e.obj = s.newAObj(param.Pages(length))
	case private:
		// Private file mapping: object below, amap (lazily) above.
		e.obj = s.vnodeObject(vn)
		e.cow, e.needsCopy = true, true
	default:
		// Shared file mapping: object only.
		e.obj = s.vnodeObject(vn)
	}
	m.insert(e)
	m.unlock()

	// Fixed-replacement teardown happens after the lock drops (phase 2).
	if len(removed) > 0 {
		s.unmapPhase2(m, removed)
	}
	return va, nil
}

// Munmap implements vmapi.Process with the two-phase structure of §3.1:
// entries leave the map under the lock; references — and any teardown
// I/O — are dropped after it is released.
func (p *Process) Munmap(addr param.VAddr, length param.VSize) error {
	if p.exited.Load() {
		return vmapi.ErrExited
	}
	if !param.PageAligned(addr) || length == 0 {
		return vmapi.ErrInvalid
	}
	s := p.sys
	m := p.m
	m.lock()
	removed := m.unmapPhase1(addr, addr+param.VAddr(param.RoundSize(length)))
	m.unlock()
	s.unmapPhase2(m, removed)
	return nil
}

// Mprotect implements vmapi.Process. The range is clipped to page
// boundaries before entries are split (an entry clipped at a raw,
// unaligned address would corrupt its amap/object geometry).
func (p *Process) Mprotect(addr param.VAddr, length param.VSize, prot param.Prot) error {
	if p.exited.Load() {
		return vmapi.ErrExited
	}
	start, end := param.Trunc(addr), param.Round(addr+param.VAddr(length))
	if length == 0 {
		end = start
	}
	return p.m.protect(start, end, prot)
}

// Minherit implements vmapi.Process (§5.4: BSD's minherit is one of the
// mechanisms UVM's amap design had to support beyond SunOS). The range
// is clipped to page boundaries before the entries are split, so the
// inheritance applies to exactly the pages the range touches and never
// bleeds onto the rest of a large entry (clipping an entry at a raw,
// unaligned address would corrupt its amap/object geometry).
func (p *Process) Minherit(addr param.VAddr, length param.VSize, inh param.Inherit) error {
	if p.exited.Load() {
		return vmapi.ErrExited
	}
	if length == 0 {
		return nil
	}
	start, end := param.Trunc(addr), param.Round(addr+param.VAddr(length))
	m := p.m
	m.lock()
	defer m.unlock()
	for _, e := range m.entriesIn(start, end) {
		e.inherit = inh
	}
	return nil
}

// Madvise implements vmapi.Process; UVM's fault handler uses the advice to
// size its lookahead window (§5.4). Like Minherit, the range is clipped
// to page boundaries so the advice covers exactly the pages it names.
func (p *Process) Madvise(addr param.VAddr, length param.VSize, adv param.Advice) error {
	if p.exited.Load() {
		return vmapi.ErrExited
	}
	if length == 0 {
		return nil
	}
	start, end := param.Trunc(addr), param.Round(addr+param.VAddr(length))
	m := p.m
	m.lock()
	defer m.unlock()
	for _, e := range m.entriesIn(start, end) {
		e.advice = adv
	}
	return nil
}

// Msync implements vmapi.Process: dirty object pages of the range — file
// pages and shared-anonymous (aobj) pages alike — are written to backing
// store before it returns. The map lock is held only while the
// overlapping (object, index-range) spans are collected (each object
// referenced so it cannot die mid-flush); the flushes themselves run
// with the map unlocked, through the object writeback pipeline — with
// cfg.AsyncWriteback as contiguous-offset clusters overlapped in the
// per-backend in-flight window, otherwise one synchronous put per page
// in deterministic ascending-index order (see objwb.go for both).
func (p *Process) Msync(addr param.VAddr, length param.VSize) error {
	if p.exited.Load() {
		return vmapi.ErrExited
	}
	if length == 0 {
		return nil
	}
	s := p.sys
	m := p.m
	start, end := param.Trunc(addr), param.Round(addr+param.VAddr(length))

	type span struct {
		o            *uobject
		loIdx, hiIdx int
	}
	var spans []span
	m.lock()
	for cur := m.head; cur != nil; cur = cur.next {
		if cur.end <= start || cur.start >= end || cur.obj == nil {
			continue
		}
		o := cur.obj
		if o.vnode == nil && o.aobjSlots == nil {
			continue // no backing store to sync (device pager)
		}
		// Flush only the object pages the requested range maps.
		lo, hi := cur.start, cur.end
		if start > lo {
			lo = start
		}
		if end < hi {
			hi = end
		}
		s.objRef(o)
		spans = append(spans, span{o: o, loIdx: cur.objIndex(lo), hiIdx: cur.objIndex(hi - 1)})
	}
	m.unlock()

	var firstErr error
	for _, sp := range spans {
		if _, err := s.flushObjectRange(sp.o, sp.loIdx, sp.hiIdx); err != nil && firstErr == nil {
			firstErr = err
		}
		s.objUnref(sp.o)
	}
	return firstErr
}

// Fork implements vmapi.Process per each entry's inheritance (§5.2,
// Figure 3): copy-inherited ranges share the amap under needs-copy in
// both processes, and the parent's resident pages are write-protected.
func (p *Process) Fork(name string) (vmapi.Process, error) {
	if p.exited.Load() {
		return nil, vmapi.ErrExited
	}
	s := p.sys
	child, err := s.newProc(name)
	if err != nil {
		return nil, err
	}
	s.addProc(child)
	pm, cm := p.m, child.m
	pm.lock()
	cm.lock()
	for e := pm.head; e != nil; e = e.next {
		switch e.inherit {
		case param.InheritNone:
			continue
		case param.InheritShare:
			// Sharing a needs-copy mapping requires materialising the
			// amap first so both processes genuinely share it (§5.4).
			if e.needsCopy {
				s.amapCopy(e)
			}
			ce := s.allocEntry(cm)
			*ce = *e
			ce.prev, ce.next = nil, nil
			ce.wired = 0
			if ce.amap != nil {
				s.amapRef(ce.amap)
			}
			if ce.obj != nil {
				s.objRef(ce.obj)
			}
			cm.insert(ce)
		case param.InheritCopy:
			ce := s.allocEntry(cm)
			*ce = *e
			ce.prev, ce.next = nil, nil
			ce.wired = 0
			ce.cow, ce.needsCopy = true, true
			if ce.amap != nil {
				s.amapRef(ce.amap)
			}
			if ce.obj != nil {
				s.objRef(ce.obj)
			}
			if e.cow {
				// The parent's own view also becomes needs-copy, and its
				// resident pages are write-protected so the next store
				// faults (the shared per-page fork cost, §5.3).
				e.needsCopy = true
				p.pm.Protect(e.start, e.end, e.prot&^param.ProtWrite)
			}
			cm.insert(ce)
		}
	}
	cm.unlock()
	pm.unlock()
	s.mach.Stats.Inc("uvm.forks")
	return child, nil
}

// Vfork implements vmapi.Process: the child shares the parent's map and
// pmap; only the uarea is new (the footnote-3 fast path).
func (p *Process) Vfork(name string) (vmapi.Process, error) {
	if p.exited.Load() {
		return nil, vmapi.ErrExited
	}
	if p.vforked {
		return nil, vmapi.ErrInvalid
	}
	s := p.sys
	child, err := s.newProc(name)
	if err != nil {
		return nil, err
	}
	child.m = p.m
	child.pm = p.pm
	child.vforked = true
	s.addProc(child)
	s.mach.Stats.Inc("uvm.vforks")
	return child, nil
}

// Exit implements vmapi.Process: two-phase teardown of the whole space.
func (p *Process) Exit() {
	if !p.exited.CompareAndSwap(false, true) {
		return
	}
	s := p.sys

	if !p.vforked {
		m := p.m
		m.lock()
		removed := m.unmapPhase1(param.UserTextBase, param.UserMax)
		m.unlock()
		s.unmapPhase2(m, removed)

		p.pm.RemoveAll()
	}
	p.uareaWired = 0
	p.wireMu.Lock()
	p.kstackWires = nil
	p.wireMu.Unlock()

	s.dropProc(p)
}

// Access implements vmapi.Process.
func (p *Process) Access(addr param.VAddr, write bool) error {
	if p.exited.Load() {
		return vmapi.ErrExited
	}
	access := param.ProtRead
	if write {
		access = param.ProtWrite
	}
	s := p.sys
	s.tunerTick() // the fault/touch entry is the control plane's clock source
	if pte, ok := p.pm.Extract(addr); ok && pte.Prot.Allows(access) {
		s.mach.Clock.Advance(s.mach.Costs.PageTouch)
		pte.Page.Referenced.Store(true)
		if write {
			pte.Page.Dirty.Store(true)
		}
		return nil
	}
	return s.fault(p, addr, access)
}

// TouchRange implements vmapi.Process.
func (p *Process) TouchRange(addr param.VAddr, length param.VSize, write bool) error {
	end := addr + param.VAddr(param.RoundSize(length))
	for va := param.Trunc(addr); va < end; va += param.PageSize {
		if err := p.Access(va, write); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes implements vmapi.Process.
func (p *Process) ReadBytes(addr param.VAddr, buf []byte) error {
	return p.copyBytes(addr, buf, false)
}

// WriteBytes implements vmapi.Process.
func (p *Process) WriteBytes(addr param.VAddr, data []byte) error {
	return p.copyBytes(addr, data, true)
}

// copyBytes is the copyin/copyout path. Each page-sized chunk is copied
// under the page owner's lock, after re-verifying that the page is still
// mapped at the faulted address *with the needed protection* — the
// pagedaemon may evict the page between the fault and the copy, and a
// concurrent fork or loanout may write-protect it (a write must then
// refault so the COW machinery runs instead of scribbling on the now
// shared frame).
func (p *Process) copyBytes(addr param.VAddr, buf []byte, write bool) error {
	need := param.ProtRead
	if write {
		need = param.ProtWrite
	}
	done := 0
	for attempts := 0; done < len(buf); {
		va := addr + param.VAddr(done)
		pageOff := int(va & param.PageMask)
		n := param.PageSize - pageOff
		if n > len(buf)-done {
			n = len(buf) - done
		}
		if err := p.Access(va, write); err != nil {
			return err
		}
		pte, ok := p.pm.Lookup(va)
		if !ok || pte.Page == nil {
			return vmapi.ErrFault
		}
		pg := pte.Page
		copied := false
		release, ok := p.sys.lockPageOwner(pg)
		if ok {
			if pte2, still := p.pm.Lookup(va); still && pte2.Page == pg && pte2.Prot.Allows(need) {
				if write {
					copy(pg.Data[pageOff:pageOff+n], buf[done:done+n])
				} else {
					copy(buf[done:done+n], pg.Data[pageOff:pageOff+n])
				}
				copied = true
			}
			release()
		}
		if !copied {
			if attempts++; attempts > 16 {
				return vmapi.ErrFault
			}
			continue // page moved underneath us: refault and retry
		}
		attempts = 0
		done += n
	}
	return nil
}

// lockPageOwner locks whatever structure owns pg — an anon, a uobject,
// or (for ownerless loaned frames) the page identity itself — and
// returns a release func. It reports failure if ownership keeps changing
// underneath the acquisition (caller should refault and retry).
func (s *System) lockPageOwner(pg *phys.Page) (func(), bool) {
	for attempt := 0; attempt < 8; attempt++ {
		owner := pg.Owner()
		switch o := owner.(type) {
		case *anon:
			o.mu.Lock()
			if pg.Owner() == owner {
				return func() { o.mu.Unlock() }, true
			}
			o.mu.Unlock()
		case *uobject:
			o.mu.Lock()
			if pg.Owner() == owner {
				return func() { o.mu.Unlock() }, true
			}
			o.mu.Unlock()
		case nil:
			// Ownerless frame (orphaned loan, kernel page): serialise on
			// the page identity lock itself.
			verified := false
			pg.WithIdentity(func(cur any) { verified = cur == nil })
			if verified {
				return func() {}, true
			}
		default:
			return nil, false
		}
	}
	return nil, false
}
