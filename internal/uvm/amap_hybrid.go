package uvm

// Hybrid amap implementation. §5.3 notes that the array-based amap "is
// expensive for larger sparsely allocated amaps, but the cost could
// easily be reduced by using a hybrid amap implementation that uses both
// hash tables and arrays" — and §5.2 that the amap interface was
// deliberately separated from its implementation to allow exactly this
// change. This file is that change: small or dense amaps use the flat
// array; large sparse ones a bucketed hash, converting to the array form
// if they densify.

// hybridThresholdSlots is the size below which a flat array is always
// used (covers up to 512 KB mappings).
const hybridThresholdSlots = 128

// densifyNumerator/Denominator: convert hash -> array when more than 1/4
// of the slots are populated (the array is then at most 4x larger than
// the live entries and far faster).
const (
	densifyNumerator   = 1
	densifyDenominator = 4
)

// hashAmap stores sparse amaps as a slot->anon map.
type hashAmap struct {
	slots map[int]*anon
	n     int // nslots (virtual size)
}

func (ha *hashAmap) get(slot int) *anon {
	if slot < 0 || slot >= ha.n {
		return nil
	}
	return ha.slots[slot]
}

func (ha *hashAmap) set(slot int, a *anon) {
	if slot < 0 || slot >= ha.n {
		panic("uvm: hash amap slot out of range")
	}
	if a == nil {
		delete(ha.slots, slot)
		return
	}
	ha.slots[slot] = a
}

func (ha *hashAmap) nslots() int { return ha.n }

func (ha *hashAmap) foreach(fn func(int, *anon) bool) {
	// Deterministic iteration keeps the simulation reproducible.
	for slot := 0; slot < ha.n; slot++ {
		if a, ok := ha.slots[slot]; ok && !fn(slot, a) {
			return
		}
	}
}

func (ha *hashAmap) population() int { return len(ha.slots) }

// hybridAmap wraps the two storage strategies behind one amapImpl,
// switching representation as density changes.
type hybridAmap struct {
	impl amapImpl
}

func newHybridImpl(nslots int) *hybridAmap {
	if nslots <= hybridThresholdSlots {
		return &hybridAmap{impl: &arrayAmap{anons: make([]*anon, nslots)}}
	}
	return &hybridAmap{impl: &hashAmap{slots: make(map[int]*anon), n: nslots}}
}

func (hy *hybridAmap) get(slot int) *anon { return hy.impl.get(slot) }

func (hy *hybridAmap) set(slot int, a *anon) {
	hy.impl.set(slot, a)
	if ha, ok := hy.impl.(*hashAmap); ok && a != nil {
		if ha.population()*densifyDenominator > ha.n*densifyNumerator {
			hy.densify(ha)
		}
	}
}

func (hy *hybridAmap) densify(ha *hashAmap) {
	arr := &arrayAmap{anons: make([]*anon, ha.n)}
	//uvm:maporder-ok each anon lands at its own slot index; order-independent
	for slot, a := range ha.slots {
		arr.anons[slot] = a
	}
	hy.impl = arr
}

func (hy *hybridAmap) nslots() int { return hy.impl.nslots() }

func (hy *hybridAmap) foreach(fn func(int, *anon) bool) { hy.impl.foreach(fn) }

// AmapImplKind selects the amap implementation a System uses.
type AmapImplKind int

const (
	// AmapArray is UVM's current implementation (§5.3).
	AmapArray AmapImplKind = iota
	// AmapHybrid is the paper's suggested hash/array hybrid.
	AmapHybrid
)

// newAmapImpl builds storage for nslots slots per the system's config.
func (s *System) newAmapImpl(nslots int) amapImpl {
	if s.cfg.AmapImpl == AmapHybrid {
		return newHybridImpl(nslots)
	}
	return &arrayAmap{anons: make([]*anon, nslots)}
}
