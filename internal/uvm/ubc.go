package uvm

import (
	"uvm/internal/param"
	"uvm/internal/vfs"
	"uvm/internal/vmapi"
)

// UBC — the unified buffer cache. The paper's §10 lists "unifying the VM
// cache with the BSD buffer cache" as future work (NetBSD later shipped
// exactly this, built on UVM's pager machinery). This file implements it:
// the read(2)/write(2) style file I/O paths operate on the *same pages*
// as memory mappings, via the vnode's embedded uvm_object. There is one
// copy of file data in the system, and read/write and mmap views are
// always coherent — no double caching, no flush ordering bugs.

// FileRead copies up to len(buf) bytes from the file at byte offset off
// into buf, going through the vnode's uvm_object pages. Returns the
// number of bytes read (short at end of file).
func (s *System) FileRead(vn *vfs.Vnode, off int, buf []byte) (int, error) {
	return s.fileIO(vn, off, buf, false)
}

// FileWrite copies len(data) bytes into the file at byte offset off via
// the object pages. The pages are marked modified; they reach the disk
// through the ordinary pageout/flush paths. Writes beyond the current
// end of file are truncated (the simulated filesystem does not grow
// files).
func (s *System) FileWrite(vn *vfs.Vnode, off int, data []byte) (int, error) {
	return s.fileIO(vn, off, data, true)
}

func (s *System) fileIO(vn *vfs.Vnode, off int, buf []byte, write bool) (int, error) {
	if off < 0 {
		return 0, vmapi.ErrInvalid
	}

	// Route through the embedded object — the single cache. The object
	// lock serialises the page-level copies against concurrent faults,
	// pageout and other file I/O on the same file.
	o := s.vnodeObject(vn)
	defer s.objUnref(o)

	o.mu.Lock()
	defer o.mu.Unlock()

	done := 0
	for done < len(buf) {
		pos := off + done
		if pos >= vn.Size() {
			break
		}
		idx := pos >> param.PageShift
		pageOff := pos & param.PageMask
		n := param.PageSize - pageOff
		if n > len(buf)-done {
			n = len(buf) - done
		}
		if remain := vn.Size() - pos; n > remain {
			n = remain
		}

		pg, ok := o.pages[idx]
		// A busy page is mid-writeback-flush: a write must not scribble
		// on the frame while the I/O owns its contents. Reads are safe —
		// the data is stable until the flush completes. Re-checked after
		// a pager get, whose raced path (get drops o.mu around its
		// allocation) can return a page a concurrent flush claimed.
		for {
			if ok && write && pg.Busy.Load() {
				s.waitObjPageIdle(o, pg)
				pg, ok = o.pages[idx]
				continue
			}
			if ok {
				break
			}
			var err error
			pg, err = o.ops.get(o, idx)
			if err != nil {
				return done, err
			}
			ok = true
		}
		pg.Referenced.Store(true)
		// The user/kernel copy of this chunk.
		s.mach.Clock.Advance(s.mach.Costs.PageCopy)
		if write {
			copy(pg.Data[pageOff:pageOff+n], buf[done:done+n])
			pg.Dirty.Store(true)
			s.ctrUbcWrites.Inc()
		} else {
			copy(buf[done:done+n], pg.Data[pageOff:pageOff+n])
			s.ctrUbcReads.Inc()
		}
		if pg.WireCount.Load() == 0 && !pg.Loaned() {
			s.mach.Mem.Activate(pg)
		}
		done += n
	}
	return done, nil
}
