package uvm

import (
	"fmt"
	"sync"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/vfs"
)

// pagerOps is UVM's pager interface: a table of functions through which
// all access to a memory object's data is routed (§4, §6). The crucial API
// property is that get *allocates the page itself* — the fault routine
// never allocates pages for a pager, giving the pager full control over
// which page receives the data (§6).
//
// All three operations are called with the object's mutex held.
type pagerOps interface {
	// name identifies the pager in stats and debug output.
	name() string
	// get makes page idx of o resident and returns it, allocating the
	// page itself.
	get(o *uobject, idx int) (*phys.Page, error)
	// put writes a dirty page back to backing store.
	put(o *uobject, pg *phys.Page) error
	// detach is called when the object's last mapping reference drops.
	detach(o *uobject)
}

// uobject is a uvm_object. For files it is *embedded* in the vnode (the
// vnode layer stores it in Vnode.VMObj and allocates it together with the
// vnode) — no separate pager structure, no pager hash table (§6,
// Figure 4). For anonymous shared objects (aobj) it stands alone.
//
// mu guards refs, the resident-page map and the aobj swap-slot map. It
// nests below the map lock and above the amap/anon locks (the write
// fault that promotes an object page into a fresh anon holds both).
type uobject struct {
	//uvm:lock object
	mu     sync.Mutex
	ops    pagerOps
	refs   int
	sizePg int
	pages  map[int]*phys.Page

	vnode *vfs.Vnode // vnode-backed objects
	// aobj swap slots (uao_swhash equivalent): page idx -> slot.
	aobjSlots map[int]int64
}

// String renders the object's pager kind and population for debug output.
func (o *uobject) String() string {
	return fmt.Sprintf("uobj(%s refs=%d pages=%d)", o.ops.name(), o.refs, len(o.pages))
}

// objRef adds a mapping reference to an object.
func (s *System) objRef(o *uobject) {
	o.mu.Lock()
	o.refs++
	o.mu.Unlock()
}

// vnodeObject returns the uvm_object embedded in vn, creating it on first
// mapping. Unlike BSD VM there is no hash lookup and no separate
// structure allocations: the object lives inside the vnode. The
// create-or-revive decision is serialised by vnObjMu so concurrent
// mappers of the same file agree on one object.
func (s *System) vnodeObject(vn *vfs.Vnode) *uobject {
	s.vnObjMu.Lock()
	defer s.vnObjMu.Unlock()
	if o, ok := vn.GetVMObj().(*uobject); ok && o != nil {
		o.mu.Lock()
		o.refs++
		revived := o.refs == 1
		o.mu.Unlock()
		if revived {
			// First mapping reference since the object went inactive: the
			// VM re-references the vnode.
			vn.Ref()
		}
		return o
	}
	o := &uobject{
		ops:    &vnodePager{sys: s},
		refs:   1,
		sizePg: vn.NumPages(),
		pages:  make(map[int]*phys.Page),
		vnode:  vn,
	}
	vn.Ref()
	// The recycle hook: when the vnode layer recycles this vnode, UVM
	// terminates the embedded object (§4 — the single-cache design).
	vn.SetVMObj(o, func(v *vfs.Vnode) { s.vnodeRecycled(o) })
	s.mach.Stats.Inc("uvm.uobj.vnode.created")
	return o
}

// objUnref drops a mapping reference on an object. When a vnode object's
// last mapping goes away UVM does NOT free the pages and does NOT cache
// the object itself — it simply releases its vnode reference. The pages
// stay attached to the (now possibly inactive) vnode, and live exactly as
// long as the vnode cache keeps the vnode: one cache, managed by the vnode
// layer (§4).
func (s *System) objUnref(o *uobject) {
	o.mu.Lock()
	if o.refs <= 0 {
		o.mu.Unlock()
		panic("uvm: uobject refcount underflow: " + o.String())
	}
	o.refs--
	if o.refs > 0 {
		o.mu.Unlock()
		return
	}
	o.ops.detach(o)
	vn := o.vnode
	o.mu.Unlock()
	// The vnode reference is dropped outside the object lock: Unref can
	// trigger the recycle hook, which takes the object lock itself.
	if vn != nil {
		vn.Unref()
	}
}

// vnodeRecycled is the OnRecycle hook: write the modified pages back,
// free the object's pages and forget it; the vnode is going away. The
// vnode layer invokes the hook without holding the filesystem lock, so
// it is free to sleep on writeback I/O. With cfg.AsyncWriteback the
// dirty pages leave as contiguous clusters through the bounded in-flight
// window and the hook waits for the completions before freeing frames;
// otherwise each page is queued through the buffer cache in ascending
// index order (deterministic — the sweep order decides the head's path).
func (s *System) vnodeRecycled(o *uobject) {
	o.mu.Lock()
	if s.cfg.AsyncWriteback {
		if items := s.collectDirtyLocked(o, 0, maxPageIdx, true); len(items) > 0 {
			batch := newWbBatch()
			s.submitWbLocked(o, items, batch)
			o.mu.Unlock()
			batch.wait() // a failed write loses the page with its vnode, as before
			o.mu.Lock()
		}
	} else {
		for _, idx := range sortedPageIdxs(o, 0, maxPageIdx) {
			pg := o.pages[idx]
			if pg.Dirty.Load() {
				_ = o.vnode.WritePageAsync(idx, pg.Data)
				pg.Dirty.Store(false)
			}
		}
	}
	// A frame still riding a detach-time flush belongs to the I/O: wait
	// it out before freeing.
	s.waitObjIdleLocked(o)
	for _, idx := range sortedPageIdxs(o, 0, maxPageIdx) {
		s.freeObjectPage(o, idx, o.pages[idx])
	}
	o.mu.Unlock()
	s.mach.Stats.Inc("uvm.uobj.vnode.recycled")
}

// freeObjectPage drops one resident page from o. Caller holds o.mu.
func (s *System) freeObjectPage(o *uobject, idx int, pg *phys.Page) {
	s.mach.MMU.PageProtect(pg, param.ProtNone)
	delete(o.pages, idx)
	s.mach.Mem.Dequeue(pg)
	if pg.WireCount.Load() > 0 {
		pg.WireCount.Store(0)
	}
	s.mach.Mem.Free(pg)
}

// allocObjPageLocked allocates a frame for page idx of o while o.mu is
// held by the caller. The object lock is dropped around the allocation —
// otherwise a reclaim triggered by memory pressure could not evict any
// page belonging to o (the pagedaemon TryLocks owners), and a single
// object owning most of RAM would deadlock the system. After relocking,
// a concurrent fault may have made the page resident; in that case the
// fresh frame is returned to the allocator and the resident page is
// handed back with raced=true.
func (s *System) allocObjPageLocked(o *uobject, idx int, zero bool) (pg *phys.Page, raced bool, err error) {
	o.mu.Unlock()
	pg, err = s.allocPage(o, param.PageToOff(idx), zero)
	o.mu.Lock()
	if err != nil {
		return nil, false, err
	}
	if existing, ok := o.pages[idx]; ok {
		s.mach.Mem.Free(pg)
		return existing, true, nil
	}
	return pg, false, nil
}

// --- vnode pager ---

type vnodePager struct{ sys *System }

func (vp *vnodePager) name() string { return "vnode" }

func (vp *vnodePager) get(o *uobject, idx int) (*phys.Page, error) {
	pg, raced, err := vp.sys.allocObjPageLocked(o, idx, false)
	if err != nil {
		return nil, err
	}
	if raced {
		return pg, nil
	}
	pg.Busy.Store(true)
	if idx < o.vnode.NumPages() {
		err = o.vnode.ReadPage(idx, pg.Data)
	} else {
		vp.sys.mach.Mem.Zero(pg) // mapping past EOF zero-fills
	}
	pg.Busy.Store(false)
	if err != nil {
		vp.sys.mach.Mem.Free(pg)
		return nil, err
	}
	o.pages[idx] = pg
	pg.Dirty.Store(false)
	vp.sys.mach.Stats.Inc(sim.CtrPageIns)
	return pg, nil
}

func (vp *vnodePager) put(o *uobject, pg *phys.Page) error {
	idx := param.OffToPage(pg.Off())
	if err := o.vnode.WritePage(idx, pg.Data); err != nil {
		return err
	}
	pg.Dirty.Store(false)
	vp.sys.mach.Stats.Inc(sim.CtrPageOuts)
	return nil
}

func (vp *vnodePager) detach(o *uobject) {
	// Last mapping gone: push modified pages through the buffer cache
	// (asynchronously — the pages also stay resident). The pages stay
	// with the vnode; the vnode cache decides their fate. (The VM's
	// vnode reference is dropped by objUnref, outside the object lock.)
	//
	// With cfg.AsyncWriteback this is a fire-and-forget flush through
	// the clustered engine: nobody waits on the batch; the completions
	// clear dirty/busy, and recycle/Shutdown drain any stragglers. Pages
	// already claimed by another flush are skipped, not waited for —
	// detach is called with o.mu held and must not sleep.
	s := vp.sys
	if s.cfg.AsyncWriteback {
		if items := s.collectDirtyLocked(o, 0, maxPageIdx, false); len(items) > 0 {
			s.submitWbLocked(o, items, nil)
		}
		return
	}
	for _, idx := range sortedPageIdxs(o, 0, maxPageIdx) {
		pg := o.pages[idx]
		if pg.Dirty.Load() {
			_ = o.vnode.WritePageAsync(idx, pg.Data)
			pg.Dirty.Store(false)
		}
	}
}

// --- aobj pager (anonymous uvm objects: System V shm, shared anon) ---

type aobjPager struct{ sys *System }

func (ap *aobjPager) name() string { return "aobj" }

// newAObj creates an anonymous uvm_object of n pages.
func (s *System) newAObj(n int) *uobject {
	s.mach.Clock.Advance(s.mach.Costs.ObjectAlloc)
	s.mach.Stats.Inc("uvm.uobj.aobj.created")
	return &uobject{
		ops:       &aobjPager{sys: s},
		refs:      1,
		sizePg:    n,
		pages:     make(map[int]*phys.Page),
		aobjSlots: make(map[int]int64),
	}
}

func (ap *aobjPager) get(o *uobject, idx int) (*phys.Page, error) {
	_, hadSlot := o.aobjSlots[idx]
	pg, raced, err := ap.sys.allocObjPageLocked(o, idx, !hadSlot)
	if err != nil {
		return nil, err
	}
	if raced {
		return pg, nil
	}
	// allocObjPageLocked dropped o.mu around the allocation, so the slot
	// state observed above may be stale: a concurrent pageout can have
	// reassigned (or even created) the slot, and msync/teardown paths
	// can have freed it — the free-during-pagein race. Re-read it under
	// the re-acquired lock before deciding where the data comes from.
	// Clustered pagein re-opens the window (neighbour frame allocations
	// drop o.mu too), so the loop re-reads until the slot state holds
	// still; from the final re-read to the ReadSlot/ReadCluster the lock
	// is held continuously.
	for tries := 0; ; tries++ {
		slot, ok := o.aobjSlots[idx]
		if !ok {
			// No backing copy (first touch), or it vanished while the lock
			// was down: zero-fill. Anonymous content exists only in RAM, so
			// the page is born dirty.
			if hadSlot {
				ap.sys.mach.Mem.Zero(pg) // allocated un-zeroed for a read that is off
			}
			o.pages[idx] = pg
			pg.Dirty.Store(true)
			return pg, nil
		}
		if ap.sys.pageinWindow() > 1 && tries < 3 {
			// Try to drag slot-adjacent neighbour pages in with the same
			// I/O (the aobj mirror of anon clustered pagein; see
			// pagein.go). retry means the slot state shifted while the
			// neighbour frames were being allocated: re-read and redo.
			got, retry, err := ap.sys.aobjPageinCluster(o, idx, slot, pg)
			if err != nil {
				return nil, err
			}
			if retry {
				continue
			}
			if got != nil {
				return got, nil
			}
			// No willing neighbour: fall through to the single-slot read.
		}
		pg.Busy.Store(true)
		err = ap.sys.mach.Swap.ReadSlot(slot, pg.Data)
		pg.Busy.Store(false)
		if err != nil {
			ap.sys.mach.Mem.Free(pg)
			return nil, err
		}
		o.pages[idx] = pg
		pg.Dirty.Store(false)
		ap.sys.ctrPageIns.Inc()
		return pg, nil
	}
}

func (ap *aobjPager) put(o *uobject, pg *phys.Page) error {
	// Single-page put path (used outside the pagedaemon's clustering).
	idx := param.OffToPage(pg.Off())
	slot, ok := o.aobjSlots[idx]
	if !ok {
		var err error
		slot, err = ap.sys.mach.Swap.Alloc()
		if err != nil {
			return err
		}
		o.aobjSlots[idx] = slot
	}
	if err := ap.sys.mach.Swap.WriteSlot(slot, pg.Data); err != nil {
		return err
	}
	pg.Dirty.Store(false)
	ap.sys.mach.Stats.Inc(sim.CtrPageOuts)
	return nil
}

func (ap *aobjPager) detach(o *uobject) {
	// Anonymous objects die with their last reference: free pages and
	// swap.
	//uvm:maporder-ok frees interchangeable frames; no cost depends on free order
	for idx, pg := range o.pages {
		ap.sys.freeObjectPage(o, idx, pg)
	}
	//uvm:maporder-ok swap frees clear bitmap bits; next-fit allocation sees only the free set
	for _, slot := range o.aobjSlots {
		ap.sys.mach.Swap.Free(slot)
	}
	o.aobjSlots = make(map[int]int64)
	ap.sys.mach.Stats.Inc("uvm.uobj.aobj.destroyed")
}

// --- device pager ---

// devPager demonstrates the flexibility of the pager-allocates-pages API
// (§6's ROM example): the pager hands out pre-allocated, pager-owned
// frames rather than fresh ones; they are wired and never paged.
type devPager struct {
	sys    *System
	frames []*phys.Page
}

func (dp *devPager) name() string { return "device" }

// newDeviceObject creates an object backed by n device-owned frames
// (filled by fill, e.g. simulated ROM or frame-buffer contents).
func (s *System) newDeviceObject(n int, fill func(idx int, buf []byte)) (*uobject, error) {
	dp := &devPager{sys: s}
	o := &uobject{ops: dp, refs: 1, sizePg: n, pages: make(map[int]*phys.Page)}
	for i := 0; i < n; i++ {
		pg, err := s.allocPage(o, param.PageToOff(i), false)
		if err != nil {
			return nil, err
		}
		pg.WireCount.Store(1) // device memory never pages
		if fill != nil {
			fill(i, pg.Data)
		}
		dp.frames = append(dp.frames, pg)
	}
	s.mach.Stats.Inc("uvm.uobj.dev.created")
	return o, nil
}

func (dp *devPager) get(o *uobject, idx int) (*phys.Page, error) {
	if idx < 0 || idx >= len(dp.frames) {
		return nil, fmt.Errorf("uvm: device page %d out of range", idx)
	}
	pg := dp.frames[idx]
	o.pages[idx] = pg
	return pg, nil
}

func (dp *devPager) put(o *uobject, pg *phys.Page) error { return nil } // device memory is not paged

func (dp *devPager) detach(o *uobject) {
	for _, pg := range dp.frames {
		pg.WireCount.Store(0)
		dp.sys.mach.MMU.PageProtect(pg, param.ProtNone)
		dp.sys.mach.Mem.Dequeue(pg)
		dp.sys.mach.Mem.Free(pg)
	}
	o.pages = make(map[int]*phys.Page)
	dp.frames = nil
}
