package uvm

import (
	"fmt"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/vfs"
)

// pagerOps is UVM's pager interface: a table of functions through which
// all access to a memory object's data is routed (§4, §6). The crucial API
// property is that get *allocates the page itself* — the fault routine
// never allocates pages for a pager, giving the pager full control over
// which page receives the data (§6).
type pagerOps interface {
	// name identifies the pager in stats and debug output.
	name() string
	// get makes page idx of o resident and returns it, allocating the
	// page itself.
	get(o *uobject, idx int) (*phys.Page, error)
	// put writes a dirty page back to backing store.
	put(o *uobject, pg *phys.Page) error
	// detach is called when the object's last mapping reference drops.
	detach(o *uobject)
}

// uobject is a uvm_object. For files it is *embedded* in the vnode (the
// vnode layer stores it in Vnode.VMObj and allocates it together with the
// vnode) — no separate pager structure, no pager hash table (§6,
// Figure 4). For anonymous shared objects (aobj) it stands alone.
type uobject struct {
	ops    pagerOps
	refs   int
	sizePg int
	pages  map[int]*phys.Page

	vnode *vfs.Vnode // vnode-backed objects
	// aobj swap slots (uao_swhash equivalent): page idx -> slot.
	aobjSlots map[int]int64
}

func (o *uobject) String() string {
	return fmt.Sprintf("uobj(%s refs=%d pages=%d)", o.ops.name(), o.refs, len(o.pages))
}

// vnodeObject returns the uvm_object embedded in vn, creating it on first
// mapping. Unlike BSD VM there is no hash lookup and no separate
// structure allocations: the object lives inside the vnode.
func (s *System) vnodeObject(vn *vfs.Vnode) *uobject {
	if o, ok := vn.VMObj.(*uobject); ok && o != nil {
		o.refs++
		if o.refs == 1 {
			// First mapping reference since the object went inactive: the
			// VM re-references the vnode.
			vn.Ref()
		}
		return o
	}
	o := &uobject{
		ops:    &vnodePager{sys: s},
		refs:   1,
		sizePg: vn.NumPages(),
		pages:  make(map[int]*phys.Page),
		vnode:  vn,
	}
	vn.Ref()
	vn.VMObj = o
	// The recycle hook: when the vnode layer recycles this vnode, UVM
	// terminates the embedded object (§4 — the single-cache design).
	vn.OnRecycle = func(v *vfs.Vnode) { s.vnodeRecycled(o) }
	s.mach.Stats.Inc("uvm.uobj.vnode.created")
	return o
}

// objUnref drops a mapping reference on an object. When a vnode object's
// last mapping goes away UVM does NOT free the pages and does NOT cache
// the object itself — it simply releases its vnode reference. The pages
// stay attached to the (now possibly inactive) vnode, and live exactly as
// long as the vnode cache keeps the vnode: one cache, managed by the vnode
// layer (§4).
func (s *System) objUnref(o *uobject) {
	if o.refs <= 0 {
		panic("uvm: uobject refcount underflow: " + o.String())
	}
	o.refs--
	if o.refs > 0 {
		return
	}
	o.ops.detach(o)
}

// vnodeRecycled is the OnRecycle hook: free the object's pages and forget
// it; the vnode is going away.
func (s *System) vnodeRecycled(o *uobject) {
	s.big.Lock()
	defer s.big.Unlock()
	for idx, pg := range o.pages {
		if pg.Dirty {
			_ = o.vnode.WritePageAsync(idx, pg.Data)
			pg.Dirty = false
		}
		s.freeObjectPage(o, idx, pg)
	}
	s.mach.Stats.Inc("uvm.uobj.vnode.recycled")
}

// freeObjectPage drops one resident page from o.
func (s *System) freeObjectPage(o *uobject, idx int, pg *phys.Page) {
	s.mach.MMU.PageProtect(pg, param.ProtNone)
	delete(o.pages, idx)
	s.mach.Mem.Dequeue(pg)
	if pg.WireCount > 0 {
		pg.WireCount = 0
	}
	s.mach.Mem.Free(pg)
}

// --- vnode pager ---

type vnodePager struct{ sys *System }

func (vp *vnodePager) name() string { return "vnode" }

func (vp *vnodePager) get(o *uobject, idx int) (*phys.Page, error) {
	pg, err := vp.sys.allocPage(o, param.PageToOff(idx), false)
	if err != nil {
		return nil, err
	}
	pg.Busy = true
	if idx < o.vnode.NumPages() {
		err = o.vnode.ReadPage(idx, pg.Data)
	} else {
		vp.sys.mach.Mem.Zero(pg) // mapping past EOF zero-fills
	}
	pg.Busy = false
	if err != nil {
		vp.sys.mach.Mem.Free(pg)
		return nil, err
	}
	o.pages[idx] = pg
	pg.Dirty = false
	vp.sys.mach.Stats.Inc(sim.CtrPageIns)
	return pg, nil
}

func (vp *vnodePager) put(o *uobject, pg *phys.Page) error {
	idx := param.OffToPage(pg.Off)
	if err := o.vnode.WritePage(idx, pg.Data); err != nil {
		return err
	}
	pg.Dirty = false
	vp.sys.mach.Stats.Inc(sim.CtrPageOuts)
	return nil
}

func (vp *vnodePager) detach(o *uobject) {
	// Last mapping gone: push modified pages through the buffer cache
	// (asynchronously — the pages also stay resident), then drop the
	// VM's vnode reference. The pages stay with the vnode; the vnode
	// cache decides their fate.
	for idx, pg := range o.pages {
		if pg.Dirty {
			_ = o.vnode.WritePageAsync(idx, pg.Data)
			pg.Dirty = false
		}
	}
	o.vnode.Unref()
}

// --- aobj pager (anonymous uvm objects: System V shm, shared anon) ---

type aobjPager struct{ sys *System }

func (ap *aobjPager) name() string { return "aobj" }

// newAObj creates an anonymous uvm_object of n pages.
func (s *System) newAObj(n int) *uobject {
	s.mach.Clock.Advance(s.mach.Costs.ObjectAlloc)
	s.mach.Stats.Inc("uvm.uobj.aobj.created")
	return &uobject{
		ops:       &aobjPager{sys: s},
		refs:      1,
		sizePg:    n,
		pages:     make(map[int]*phys.Page),
		aobjSlots: make(map[int]int64),
	}
}

func (ap *aobjPager) get(o *uobject, idx int) (*phys.Page, error) {
	if slot, ok := o.aobjSlots[idx]; ok {
		pg, err := ap.sys.allocPage(o, param.PageToOff(idx), false)
		if err != nil {
			return nil, err
		}
		pg.Busy = true
		err = ap.sys.mach.Swap.ReadSlot(slot, pg.Data)
		pg.Busy = false
		if err != nil {
			ap.sys.mach.Mem.Free(pg)
			return nil, err
		}
		o.pages[idx] = pg
		pg.Dirty = false
		ap.sys.mach.Stats.Inc(sim.CtrPageIns)
		return pg, nil
	}
	// First touch: zero-fill. Anonymous content exists only in RAM, so
	// the page is born dirty.
	pg, err := ap.sys.allocPage(o, param.PageToOff(idx), true)
	if err != nil {
		return nil, err
	}
	o.pages[idx] = pg
	pg.Dirty = true
	return pg, nil
}

func (ap *aobjPager) put(o *uobject, pg *phys.Page) error {
	// Single-page put path (used outside the pagedaemon's clustering).
	idx := param.OffToPage(pg.Off)
	slot, ok := o.aobjSlots[idx]
	if !ok {
		var err error
		slot, err = ap.sys.mach.Swap.Alloc()
		if err != nil {
			return err
		}
		o.aobjSlots[idx] = slot
	}
	if err := ap.sys.mach.Swap.WriteSlot(slot, pg.Data); err != nil {
		return err
	}
	pg.Dirty = false
	ap.sys.mach.Stats.Inc(sim.CtrPageOuts)
	return nil
}

func (ap *aobjPager) detach(o *uobject) {
	// Anonymous objects die with their last reference: free pages and
	// swap.
	for idx, pg := range o.pages {
		ap.sys.freeObjectPage(o, idx, pg)
	}
	for _, slot := range o.aobjSlots {
		ap.sys.mach.Swap.Free(slot)
	}
	o.aobjSlots = make(map[int]int64)
	ap.sys.mach.Stats.Inc("uvm.uobj.aobj.destroyed")
}

// --- device pager ---

// devPager demonstrates the flexibility of the pager-allocates-pages API
// (§6's ROM example): the pager hands out pre-allocated, pager-owned
// frames rather than fresh ones; they are wired and never paged.
type devPager struct {
	sys    *System
	frames []*phys.Page
}

func (dp *devPager) name() string { return "device" }

// newDeviceObject creates an object backed by n device-owned frames
// (filled by fill, e.g. simulated ROM or frame-buffer contents).
func (s *System) newDeviceObject(n int, fill func(idx int, buf []byte)) (*uobject, error) {
	dp := &devPager{sys: s}
	o := &uobject{ops: dp, refs: 1, sizePg: n, pages: make(map[int]*phys.Page)}
	for i := 0; i < n; i++ {
		pg, err := s.allocPage(o, param.PageToOff(i), false)
		if err != nil {
			return nil, err
		}
		pg.WireCount = 1 // device memory never pages
		if fill != nil {
			fill(i, pg.Data)
		}
		dp.frames = append(dp.frames, pg)
	}
	s.mach.Stats.Inc("uvm.uobj.dev.created")
	return o, nil
}

func (dp *devPager) get(o *uobject, idx int) (*phys.Page, error) {
	if idx < 0 || idx >= len(dp.frames) {
		return nil, fmt.Errorf("uvm: device page %d out of range", idx)
	}
	pg := dp.frames[idx]
	o.pages[idx] = pg
	return pg, nil
}

func (dp *devPager) put(o *uobject, pg *phys.Page) error { return nil } // device memory is not paged

func (dp *devPager) detach(o *uobject) {
	for _, pg := range dp.frames {
		pg.WireCount = 0
		dp.sys.mach.MMU.PageProtect(pg, param.ProtNone)
		dp.sys.mach.Mem.Dequeue(pg)
		dp.sys.mach.Mem.Free(pg)
	}
	o.pages = make(map[int]*phys.Page)
	dp.frames = nil
}
