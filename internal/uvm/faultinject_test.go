package uvm

import (
	"errors"
	"testing"

	"uvm/internal/disk"
	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// Fault-injection regression suite: every async error path must leave
// the system consistent. A failed pagein errors the fault without
// poisoning cluster neighbours; a failed writeback completion leaves the
// pages dirty and resident so a second msync retries them; a swap device
// that dies mid-pageout unblocks allocators with an error and Shutdown
// still drains. Every test ends with a Busy sweep: a quiescent system
// holds no claimed frames.

// busySweep asserts that no page frame is left Busy — the invariant every
// error path must restore before giving up its claim.
func busySweep(t *testing.T, m *vmapi.Machine, when string) {
	t.Helper()
	if leaked := m.Mem.BusyPages(); len(leaked) != 0 {
		t.Fatalf("%s: %d pages leaked Busy", when, len(leaked))
	}
}

// TestPageinReadErrorFailsFaultCleanly pages a region out, then makes
// every swap read fail: the re-fault must surface the injected error (the
// clustered pagein degrades to single-slot, which also fails), release
// its frames, and leave no Busy claim. Once the plan is lifted, every
// byte of the region — including the cluster neighbours of the failed
// fault — must come back intact.
func TestPageinReadErrorFailsFaultCleanly(t *testing.T) {
	s, m := bootPipeline(t, 128, func(c *Config) {
		c.InlineReclaim = true // deterministic: reclaim inline, pageout sync
		c.PageinCluster = 8
	})
	p := newProc(t, s, "victim")
	const pages = 256 // 2x RAM: the tail of the sweep evicts the head
	va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}

	// Pick a page the sweep evicted.
	res, err := p.Mincore(va, pages*param.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	victim := -1
	for i, r := range res {
		if !r {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("nothing evicted: region does not overcommit RAM")
	}

	plan := disk.NewFaultPlan(disk.FaultRule{Kind: disk.FaultReadError, Block: disk.BlockAny})
	m.SwapDisk.SetFaultPlan(plan)
	freeBefore := m.Mem.FreePages()
	buf := make([]byte, 2)
	if err := p.ReadBytes(va+param.VAddr(victim)*param.PageSize, buf); !errors.Is(err, disk.ErrInjected) {
		t.Fatalf("fault over failing swap returned %v, want ErrInjected", err)
	}
	if plan.Fired(0) == 0 {
		t.Fatal("fault never reached the disk")
	}
	// The failed fault gave everything back: the frames it allocated and
	// every Busy claim (its own page and any cluster neighbours). Free
	// pages may rise (the allocation can trigger an inline reclaim batch)
	// but must never drop.
	if got := m.Mem.FreePages(); got < freeBefore {
		t.Errorf("failed fault leaked frames: %d free, was %d", got, freeBefore)
	}
	busySweep(t, m, "after failed fault")

	// Lift the plan: the data — neighbours of the failed cluster read
	// included — must be exactly what the sweep wrote.
	m.SwapDisk.SetFaultPlan(nil)
	for i := 0; i < pages; i++ {
		if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, buf); err != nil {
			t.Fatalf("read page %d after lifting plan: %v", i, err)
		}
		if buf[0] != byte(i) || buf[1] != byte(i>>8) {
			t.Fatalf("page %d corrupted by failed fault: got %#x %#x", i, buf[0], buf[1])
		}
	}
	if m.Stats.Get(sim.CtrPageinClusters) == 0 {
		t.Error("clustered pagein path never exercised")
	}
	busySweep(t, m, "after recovery")
}

// TestWritebackErrorKeepsPagesDirty fails the first writeback cluster of
// an msync on both backends: msync must report the error, the pages must
// stay resident and dirty (no Busy claim left behind), and a second
// msync must retry and flush exactly those pages.
func TestWritebackErrorKeepsPagesDirty(t *testing.T) {
	const dirty = 4
	cases := []struct {
		name string
		run  func(t *testing.T) (*Process, *vmapi.Machine, param.VAddr)
	}{
		{"vnode", func(t *testing.T) (*Process, *vmapi.Machine, param.VAddr) {
			s, m := bootPipeline(t, 256, func(c *Config) {
				c.AsyncWriteback = true
				c.WritebackCluster = 8 // the 4 dirty pages leave as one cluster
			})
			vn := mkfile(t, m, "/wberr", 8, 0x30)
			t.Cleanup(vn.Unref)
			p := newProc(t, s, "p")
			va, err := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapShared, vn, 0)
			if err != nil {
				t.Fatal(err)
			}
			m.FSDisk.SetFaultPlan(disk.NewFaultPlan(
				disk.FaultRule{Kind: disk.FaultWriteError, Block: disk.BlockAny, Count: 1}))
			return p, m, va
		}},
		{"aobj", func(t *testing.T) (*Process, *vmapi.Machine, param.VAddr) {
			s, m := bootPipeline(t, 256, func(c *Config) {
				c.AsyncWriteback = true
				c.WritebackCluster = 8
			})
			p := newProc(t, s, "p")
			va, err := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapShared, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			m.SwapDisk.SetFaultPlan(disk.NewFaultPlan(
				disk.FaultRule{Kind: disk.FaultWriteError, Block: disk.BlockAny, Count: 1}))
			return p, m, va
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, m, va := tc.run(t)
			for i := 0; i < dirty; i++ {
				if err := p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{0xC0 + byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Msync(va, 8*param.PageSize); !errors.Is(err, disk.ErrInjected) {
				t.Fatalf("msync over failing disk returned %v, want ErrInjected", err)
			}
			busySweep(t, m, "after failed msync")
			if got := m.Stats.Get(sim.CtrPageOuts); got != 0 {
				t.Fatalf("failed msync claims %d pages cleaned", got)
			}
			// Still resident: writeback cleans, failure must not evict.
			res, err := p.Mincore(va, dirty*param.PageSize)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range res {
				if !r {
					t.Fatalf("page %d evicted by the failed writeback", i)
				}
			}
			// Still dirty: the second msync retries exactly those pages.
			if err := p.Msync(va, 8*param.PageSize); err != nil {
				t.Fatalf("retry msync: %v", err)
			}
			if got := m.Stats.Get(sim.CtrPageOuts); got != dirty {
				t.Fatalf("retry flushed %d pages, want %d (pages lost their dirty bit)", got, dirty)
			}
			// Third pass: everything is clean now.
			if err := p.Msync(va, 8*param.PageSize); err != nil {
				t.Fatal(err)
			}
			if got := m.Stats.Get(sim.CtrPageOuts); got != dirty {
				t.Fatalf("third msync rewrote pages: %d total outs", got)
			}
			busySweep(t, m, "after retry")
		})
	}
}

// TestSwapDeviceDeathMidPageout kills the swap device under an
// overcommitted async-pageout workload. The workload must error out
// rather than hang (dead swap means the dirty working set genuinely
// cannot fit), the dead device must be retired from the contiguous
// allocator, and Shutdown must still drain the in-flight window and
// leave no Busy claim behind.
func TestSwapDeviceDeathMidPageout(t *testing.T) {
	m := testMachine(96)
	cfg := DefaultConfig()
	cfg.AsyncPageout = true
	cfg.PageoutWindow = 2
	s := BootConfig(m, cfg)
	testutil.SweepOnCleanup(t, s)
	// Let a couple of swap commands through, then die. At most
	// 2×MaxCluster pages escape before death, so a 512-page demand
	// against 96 pages of RAM is guaranteed to strand the workload.
	m.SwapDisk.SetFaultPlan(disk.NewFaultPlan(
		disk.FaultRule{Kind: disk.FaultDeviceDeath, Block: disk.BlockAny, AfterOps: 2}))

	p := newProc(t, s, "doomed")
	const pages = 512
	va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The touch must terminate with an error — the allocator unblocks and
	// reports (deadlock or the device error), it does not wait forever on
	// pageouts that can never complete.
	if err := p.TouchRange(va, pages*param.PageSize, true); err == nil {
		t.Fatal("overcommitted workload succeeded on a dead swap device")
	}
	if !m.SwapDisk.Dead() {
		t.Fatal("death rule never fired")
	}
	if got := m.Stats.Get("disk.deaths"); got != 1 {
		t.Errorf("death counter = %d, want 1", got)
	}
	// The dead device is retired: no new cluster runs are placed on it.
	if _, err := m.Swap.AllocContig(2); err == nil {
		t.Error("AllocContig still places runs on the dead device")
	}

	// Shutdown drains: failed completions count too.
	s.Shutdown()
	if m.Swap.AIOInFlight() != 0 {
		t.Error("async writes still in flight after Shutdown on a dead device")
	}
	busySweep(t, m, "after shutdown")
}
