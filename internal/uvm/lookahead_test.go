package uvm

// Tests for the batched fault-ahead path: the clamped advice window
// (including the unsigned-underflow boundary at the bottom of the
// address space), the anon-shadows-object rule, and the
// lookahead-vs-reclaim race across the batching window.

import (
	"bytes"
	"testing"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/vmapi"
)

// lookaheadRegion maps npages of private anonymous memory at start,
// makes every page resident (write faults), then tears all translations
// out of the pmap — leaving the anons resident — so one read fault can
// demonstrate exactly which neighbours lookahead maps. It returns the
// region base and the per-page frames.
func lookaheadRegion(t *testing.T, p *Process, m *vmapi.Machine,
	start param.VAddr, npages int, adv param.Advice) (param.VAddr, []*phys.Page) {
	t.Helper()
	va, err := p.Mmap(start, param.VSize(npages)*param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate|vmapi.MapFixed, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Madvise(va, param.VSize(npages)*param.PageSize, adv); err != nil {
		t.Fatal(err)
	}
	if err := p.TouchRange(va, param.VSize(npages)*param.PageSize, true); err != nil {
		t.Fatal(err)
	}
	pages := make([]*phys.Page, npages)
	for i := range pages {
		pte, ok := p.pm.Lookup(va + param.VAddr(i)*param.PageSize)
		if !ok {
			t.Fatalf("page %d not mapped after touch", i)
		}
		pages[i] = pte.Page
	}
	for _, pg := range pages {
		m.MMU.PageProtect(pg, param.ProtNone)
	}
	if p.pm.ResidentCount() != 0 {
		t.Fatalf("translations survived PageProtect: %d", p.pm.ResidentCount())
	}
	return va, pages
}

// TestLookaheadWindowBoundaries is the table-driven boundary test for
// the advice window: for a region of fully resident (but unmapped)
// pages, a single read fault must map exactly the clamped window —
// behind pages right down to the entry's first page, ahead pages right
// up to its last, nothing beyond, and nothing when the advice says
// random. The bottom-of-address-space rows pin the unsigned-underflow
// fix: with the entry at the lowest user page, base - behind*PageSize
// wraps through zero mid-window, and the behind pages between e.start
// and the fault must still be mapped.
func TestLookaheadWindowBoundaries(t *testing.T) {
	const mid = param.VAddr(0x4000_0000)
	cases := []struct {
		name      string
		start     param.VAddr
		npages    int
		adv       param.Advice
		faultPage int
		wantLo    int // first mapped page index (inclusive)
		wantHi    int // last mapped page index (inclusive)
	}{
		{"normal-middle", mid, 12, param.AdviceNormal, 6, 3, 10},
		{"normal-at-entry-start", mid, 12, param.AdviceNormal, 0, 0, 4},
		{"normal-one-page-in", mid, 12, param.AdviceNormal, 1, 0, 5},
		{"normal-at-entry-end", mid, 12, param.AdviceNormal, 11, 8, 11},
		{"normal-small-entry", mid, 3, param.AdviceNormal, 1, 0, 2},
		{"sequential-no-behind", mid, 12, param.AdviceSequential, 2, 2, 10},
		{"random-no-window", mid, 12, param.AdviceRandom, 6, 6, 6},
		// The lowest user pages: behind spans wrap below zero.
		{"underflow-lowest-page", param.UserTextBase, 6, param.AdviceNormal, 0, 0, 4},
		{"underflow-one-page-in", param.UserTextBase, 6, param.AdviceNormal, 1, 0, 5},
		{"underflow-two-pages-in", param.UserTextBase, 8, param.AdviceNormal, 2, 0, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, m := bootTest(t, 256)
			_ = s
			p := newProc(t, s, "bound")
			va, _ := lookaheadRegion(t, p, m, tc.start, tc.npages, tc.adv)
			if err := p.Access(va+param.VAddr(tc.faultPage)*param.PageSize, false); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tc.npages; i++ {
				_, mapped := p.pm.Lookup(va + param.VAddr(i)*param.PageSize)
				want := i >= tc.wantLo && i <= tc.wantHi
				if mapped != want {
					t.Errorf("page %d: mapped=%v, want %v (window [%d,%d])",
						i, mapped, want, tc.wantLo, tc.wantHi)
				}
			}
		})
	}
}

// TestLookaheadAnonShadowsObject is the regression test for the
// fall-through bug the batched rewrite fixed: on a private file mapping,
// a neighbour whose amap slot holds a *swapped-out* anon must not have
// the object's (stale) file page mapped in its place — the per-page path
// used to check "anon resident?" and then fall through to the object
// layer, silently exposing unmodified file data beneath a private copy.
func TestLookaheadAnonShadowsObject(t *testing.T) {
	s, m := bootTest(t, 256)
	vn := mkfile(t, m, "/shadow.bin", 8, 0x10)
	defer vn.Unref()
	p := newProc(t, s, "shadow")
	va, err := p.Mmap(0, 8*param.PageSize, param.ProtRW, vmapi.MapPrivate, vn, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Page 1: write → the file page is promoted into a private anon copy.
	private := bytes.Repeat([]byte{0xAB}, param.PageSize)
	if err := p.WriteBytes(va+param.PageSize, private); err != nil {
		t.Fatal(err)
	}
	// Page 0: plain read → mapped straight from the object.
	if err := p.Access(va, false); err != nil {
		t.Fatal(err)
	}

	// Page the private copy out to swap: its anon stays in the amap with
	// a.page == nil while the object's page 1 stays resident below it.
	pte1, ok := p.pm.Lookup(va + param.PageSize)
	if !ok {
		t.Fatal("page 1 not mapped after write")
	}
	anonPg := pte1.Page
	m.MMU.PageProtect(anonPg, param.ProtNone)
	anonPg.Referenced.Store(false)
	m.Mem.Deactivate(anonPg)
	if s.reclaimCount(1) == 0 {
		t.Fatal("could not page the private copy out")
	}

	// The object's page 1 must be resident for the shadow rule to be
	// exercised (the buggy fall-through needs something to find).
	p.m.rlock()
	e := p.m.lookupQuiet(va)
	o := e.obj
	idx := e.objIndex(va + param.PageSize)
	p.m.runlock()
	o.mu.Lock()
	if _, resident := o.pages[idx]; !resident {
		if _, err := o.ops.get(o, idx); err != nil {
			o.mu.Unlock()
			t.Fatal(err)
		}
	}
	o.mu.Unlock()

	// Unmap page 0 and re-fault it: lookahead's window covers page 1.
	pte0, _ := p.pm.Lookup(va)
	m.MMU.PageProtect(pte0.Page, param.ProtNone)
	if err := p.Access(va, false); err != nil {
		t.Fatal(err)
	}
	if pte, mapped := p.pm.Lookup(va + param.PageSize); mapped {
		if pte.Page != anonPg {
			t.Fatalf("lookahead mapped the object page beneath a swapped-out anon (PA=%#x)", pte.Page.PA)
		}
	}

	// Reading page 1 must return the private copy (paged back in), never
	// the file's original bytes.
	got := make([]byte, param.PageSize)
	if err := p.ReadBytes(va+param.PageSize, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, private) {
		t.Fatalf("private copy lost: read %#x..., want %#x...", got[0], private[0])
	}
}

// TestLookaheadVsReclaimRace covers the batched window deterministically:
// a reclaim pass runs *between* lookahead's candidate collection and its
// EnterBatch (via the lookaheadGate test hook, on the faulting
// goroutine — the same reclaimRange body a pagedaemon round dispatches).
// Because collection holds every candidate's owner lock across the
// window, reclaim's TryLock must skip the collected neighbour: the page
// is neither freed nor remapped stale, and the batch maps the live frame.
func TestLookaheadVsReclaimRace(t *testing.T) {
	s, m := bootTest(t, 256)
	p := newProc(t, s, "racer")
	const npages = 8
	va, err := p.Mmap(0, npages*param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.TouchRange(va, 2*param.PageSize, true); err != nil {
		t.Fatal(err)
	}
	pattern := bytes.Repeat([]byte{0x5A}, param.PageSize)
	if err := p.WriteBytes(va+param.PageSize, pattern); err != nil {
		t.Fatal(err)
	}
	pte0, _ := p.pm.Lookup(va)
	pte1, ok := p.pm.Lookup(va + param.PageSize)
	if !ok {
		t.Fatal("neighbour not mapped after touch")
	}
	neighbour := pte1.Page

	// Unmap both pages (anons stay resident) and make the neighbour the
	// most attractive reclaim victim: inactive, reference bit clear.
	m.MMU.PageProtect(pte0.Page, param.ProtNone)
	m.MMU.PageProtect(neighbour, param.ProtNone)
	neighbour.Referenced.Store(false)
	m.Mem.Deactivate(neighbour)

	gateRan := false
	s.lookaheadGate = func() {
		gateRan = true
		// The neighbour's anon is locked by lookahead right now; the
		// reclaim pass must TryLock-skip it rather than free the page.
		s.reclaimCount(npages)
	}
	defer func() { s.lookaheadGate = nil }()

	if err := p.Access(va, false); err != nil {
		t.Fatal(err)
	}
	s.lookaheadGate = nil
	if !gateRan {
		t.Fatal("lookahead gate never ran — no candidates were collected")
	}

	pte, mapped := p.pm.Lookup(va + param.PageSize)
	if !mapped {
		t.Fatal("collected neighbour not mapped: reclaim freed it inside the batching window")
	}
	if pte.Page != neighbour {
		t.Fatalf("stale batch entry: mapped PA=%#x, neighbour was PA=%#x", pte.Page.PA, neighbour.PA)
	}
	if owner, _ := neighbour.Owner().(*anon); owner == nil {
		t.Fatal("neighbour page lost its anon owner during the batching window")
	}
	got := make([]byte, param.PageSize)
	if err := p.ReadBytes(va+param.PageSize, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern) {
		t.Fatalf("neighbour data corrupted across the batching window: %#x...", got[0])
	}
}

// TestLookaheadSkipsNeighbourEvictedBeforeFault is the companion case:
// a neighbour whose page was reclaimed *before* the fault (anon in the
// amap, a.page == nil) is simply not a candidate — the batch must not
// map anything for it, and the next touch pages it back in from swap
// intact.
func TestLookaheadSkipsNeighbourEvictedBeforeFault(t *testing.T) {
	s, m := bootTest(t, 256)
	p := newProc(t, s, "evicted")
	va, err := p.Mmap(0, 8*param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	pattern := bytes.Repeat([]byte{0x77}, param.PageSize)
	if err := p.Access(va, true); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteBytes(va+param.PageSize, pattern); err != nil {
		t.Fatal(err)
	}
	pte0, _ := p.pm.Lookup(va)
	pte1, _ := p.pm.Lookup(va + param.PageSize)
	m.MMU.PageProtect(pte0.Page, param.ProtNone)
	m.MMU.PageProtect(pte1.Page, param.ProtNone)
	pte1.Page.Referenced.Store(false)
	m.Mem.Deactivate(pte1.Page)
	if s.reclaimCount(1) == 0 {
		t.Fatal("could not evict the neighbour")
	}

	if err := p.Access(va, false); err != nil {
		t.Fatal(err)
	}
	if _, mapped := p.pm.Lookup(va + param.PageSize); mapped {
		t.Fatal("lookahead mapped a non-resident neighbour")
	}
	got := make([]byte, param.PageSize)
	if err := p.ReadBytes(va+param.PageSize, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern) {
		t.Fatalf("swap round trip corrupted the neighbour: %#x...", got[0])
	}
}
