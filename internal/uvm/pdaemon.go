package uvm

import (
	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/swap"
	"uvm/internal/vmapi"
)

// allocPage allocates a page frame, waking the pagedaemon on shortage.
func (s *System) allocPage(owner any, off param.PageOff, zero bool) (*phys.Page, error) {
	for attempt := 0; ; attempt++ {
		pg, err := s.mach.Mem.Alloc(owner, off, zero)
		if err == nil {
			return pg, nil
		}
		if attempt >= 3 {
			return nil, vmapi.ErrDeadlock
		}
		if rerr := s.reclaim(s.cfg.ReclaimBatch); rerr != nil {
			return nil, rerr
		}
	}
}

// ownerSet tracks the anon/object locks the pagedaemon holds for pages
// it has clustered for pageout. Owners are acquired with TryLock only —
// reclaim runs inside allocation paths that may already hold map, amap,
// anon or object locks, and skipping a busy owner is always safe —
// so the pagedaemon can never deadlock against a fault in progress.
type ownerSet map[any]struct{}

func (os ownerSet) holds(owner any) bool { _, ok := os[owner]; return ok }

// tryAcquire locks owner unless it is already held by this set or
// unavailable. It reports whether the caller may proceed under the lock,
// and whether the lock was newly acquired (and must be released if the
// page is not clustered).
func (os ownerSet) tryAcquire(owner any) (proceed, acquired bool) {
	if os.holds(owner) {
		return true, false
	}
	switch o := owner.(type) {
	case *anon:
		if !o.mu.TryLock() {
			return false, false
		}
	case *uobject:
		if !o.mu.TryLock() {
			return false, false
		}
	default:
		return false, false
	}
	return true, true
}

func (os ownerSet) keep(owner any) { os[owner] = struct{}{} }

func releaseOwner(owner any) {
	switch o := owner.(type) {
	case *anon:
		o.mu.Unlock()
	case *uobject:
		o.mu.Unlock()
	}
}

func (os ownerSet) releaseAll() {
	for owner := range os {
		releaseOwner(owner)
		delete(os, owner)
	}
}

// reclaim is UVM's pagedaemon. Its signature improvement over BSD VM (§6)
// is aggressive clustering of anonymous memory: because anonymous pages
// have no permanent home on backing store, the daemon *reassigns* their
// swap locations so that all the dirty anonymous pages it has collected —
// whatever their offsets — occupy one contiguous run of slots and go out
// in a single large I/O.
//
// Concurrency: each candidate's owner is TryLocked and the page
// re-verified under the lock (it may have been freed, re-homed or
// re-referenced since the queue snapshot). Owners of clustered pages
// stay locked until the cluster I/O completes, so a concurrent fault on
// a page mid-pageout blocks on the anon and then pages back in from the
// freshly assigned slot.
func (s *System) reclaim(target int) error {
	freed := 0
	for pass := 0; pass < 4 && freed < target; pass++ {
		if s.mach.Mem.InactivePages() < target*2 {
			s.mach.Mem.RefillInactive(target * 2)
		}
		var cluster []*phys.Page
		held := make(ownerSet)
		s.mach.Mem.ScanInactive(target*4, func(pg *phys.Page) bool {
			if freed+len(cluster) >= target {
				return false
			}
			if pg.Referenced.Load() {
				// Second chance — but only if the page is still inactive;
				// it may have been freed (and even reallocated) since the
				// queue snapshot.
				s.mach.Mem.ActivateIfInactive(pg)
				return true
			}
			owner := pg.Owner()
			proceed, acquired := held.tryAcquire(owner)
			if !proceed {
				return true // owner busy (or gone): skip this page
			}
			release := func() {
				if acquired {
					releaseOwner(owner)
				}
			}
			// Re-verify under the owner lock: the frame must still belong
			// to this owner and still be evictable.
			if pg.Owner() != owner || pg.Busy.Load() || pg.Wired() || pg.Loaned() {
				release()
				return true
			}
			switch o := owner.(type) {
			case *anon:
				if o.page != pg {
					release()
					return true
				}
				s.mach.MMU.PageProtect(pg, param.ProtNone)
				if pg.Dirty.Load() {
					if len(cluster) < s.cfg.MaxCluster {
						pg.Busy.Store(true)
						s.mach.Mem.Dequeue(pg)
						cluster = append(cluster, pg)
						held.keep(owner)
					} else {
						release()
					}
					return true
				}
				// Clean anon page: the swap copy is current; just free.
				o.page = nil
				s.mach.Mem.Dequeue(pg)
				s.mach.Mem.Free(pg)
				freed++
				release()
			case *uobject:
				idx := param.OffToPage(pg.Off())
				if o.pages[idx] != pg {
					release()
					return true
				}
				s.mach.MMU.PageProtect(pg, param.ProtNone)
				if o.aobjSlots != nil {
					// Anonymous object pages cluster exactly like anons.
					if pg.Dirty.Load() {
						if len(cluster) < s.cfg.MaxCluster {
							pg.Busy.Store(true)
							s.mach.Mem.Dequeue(pg)
							cluster = append(cluster, pg)
							held.keep(owner)
						} else {
							release()
						}
						return true
					}
					delete(o.pages, idx)
					s.mach.Mem.Dequeue(pg)
					s.mach.Mem.Free(pg)
					freed++
					release()
					return true
				}
				// Vnode page: clean pages are free to drop; dirty ones are
				// written back through the pager.
				if pg.Dirty.Load() {
					if err := o.ops.put(o, pg); err != nil {
						s.mach.Mem.Activate(pg)
						release()
						return true
					}
				}
				delete(o.pages, idx)
				s.mach.Mem.Dequeue(pg)
				s.mach.Mem.Free(pg)
				freed++
				release()
			default:
				// Ownerless (orphaned loan) or foreign page: skip.
				release()
			}
			return true
		})

		if len(cluster) > 0 {
			n, err := s.clusterPageout(cluster)
			freed += n
			if err != nil {
				// Could not clean (e.g. swap exhausted): put the
				// unwritten pages back on the queues and stop trying.
				for _, pg := range cluster {
					if pg.Busy.Load() {
						pg.Busy.Store(false)
						s.mach.Mem.Activate(pg)
					}
				}
				held.releaseAll()
				break
			}
		}
		held.releaseAll()
	}
	if freed == 0 {
		return vmapi.ErrDeadlock
	}
	s.mach.Stats.Add("uvm.pdaemon.freed", int64(freed))
	return nil
}

// clusterPageout writes the collected dirty anonymous pages out. With
// clustering enabled, every page's swap location is (re)assigned into one
// contiguous run and the whole cluster leaves in one I/O operation; with
// the ablation flag set, each page goes to its own slot with its own I/O —
// which is precisely BSD VM's behaviour (Figure 5's two curves). The
// caller holds every cluster page's owner lock.
func (s *System) clusterPageout(cluster []*phys.Page) (int, error) {
	if s.cfg.DisableClustering || len(cluster) == 1 {
		return s.pageoutSingles(cluster)
	}
	start, err := s.mach.Swap.AllocContig(len(cluster))
	if err != nil {
		// Swap too fragmented for a contiguous run: fall back.
		return s.pageoutSingles(cluster)
	}
	bufs := make([][]byte, len(cluster))
	for i, pg := range cluster {
		s.reassignSlot(pg, start+int64(i))
		bufs[i] = pg.Data
	}
	if err := s.mach.Swap.WriteCluster(start, bufs); err != nil {
		return 0, err
	}
	for _, pg := range cluster {
		s.finishPageout(pg)
	}
	s.mach.Stats.Inc("uvm.pdaemon.clusters")
	s.mach.Stats.Add(sim.CtrPageOuts, int64(len(cluster)))
	return len(cluster), nil
}

// pageoutSingles is the unclustered path: one slot, one I/O, per page.
func (s *System) pageoutSingles(cluster []*phys.Page) (int, error) {
	done := 0
	for _, pg := range cluster {
		slot := s.currentSlot(pg)
		if slot == swap.NoSlot {
			var err error
			slot, err = s.mach.Swap.Alloc()
			if err != nil {
				return done, err
			}
			s.setSlot(pg, slot)
		}
		if err := s.mach.Swap.WriteSlot(slot, pg.Data); err != nil {
			return done, err
		}
		s.finishPageout(pg)
		s.mach.Stats.Inc(sim.CtrPageOuts)
		done++
	}
	return done, nil
}

func (s *System) currentSlot(pg *phys.Page) int64 {
	switch owner := pg.Owner().(type) {
	case *anon:
		return owner.swslot
	case *uobject:
		if slot, ok := owner.aobjSlots[param.OffToPage(pg.Off())]; ok {
			return slot
		}
	}
	return swap.NoSlot
}

func (s *System) setSlot(pg *phys.Page, slot int64) {
	switch owner := pg.Owner().(type) {
	case *anon:
		owner.swslot = slot
	case *uobject:
		owner.aobjSlots[param.OffToPage(pg.Off())] = slot
	}
}

// reassignSlot frees a page's old swap location (if any) and assigns the
// new one — the "dynamic reassignment of swap location at page-level
// granularity" of §5.3/§6.
func (s *System) reassignSlot(pg *phys.Page, slot int64) {
	if old := s.currentSlot(pg); old != swap.NoSlot {
		s.mach.Swap.Free(old)
		s.mach.Stats.Inc("uvm.pdaemon.reassigned")
	}
	s.setSlot(pg, slot)
}

// finishPageout detaches the now-clean page from its owner and frees it.
func (s *System) finishPageout(pg *phys.Page) {
	pg.Dirty.Store(false)
	pg.Busy.Store(false)
	switch owner := pg.Owner().(type) {
	case *anon:
		owner.page = nil
	case *uobject:
		delete(owner.pages, param.OffToPage(pg.Off()))
	}
	s.mach.Mem.Dequeue(pg)
	s.mach.Mem.Free(pg)
}
