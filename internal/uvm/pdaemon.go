package uvm

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/sim"
	"uvm/internal/swap"
	"uvm/internal/vmapi"
)

// Sentinel results of waiting on the pagedaemon; both send the allocator
// down the direct-reclaim fallback path.
var (
	errPdStalled  = errors.New("uvm: pagedaemon reclaim round freed nothing")
	errPdShutdown = errors.New("uvm: pagedaemon has shut down")
)

// pagedaemon is UVM's asynchronous pageout daemon: one goroutine per
// booted System that reclaims memory so allocating goroutines do not
// have to.
//
// Wakeup protocol:
//
//  1. phys.Mem calls kick (via the low-water callback) whenever an
//     allocation leaves fewer than `low` pages free. kick is a
//     non-blocking send on a 1-buffered doorbell channel, so it is safe
//     from any context and coalesces redundant wakeups.
//  2. An allocator that finds the free list empty registers as a waiter
//     and blocks on the condition variable in waitForFree; the daemon
//     broadcasts after every completed reclaim round.
//  3. The daemon reclaims toward the high watermark (2×low) per round
//     and re-kicks itself while it is making progress below the low
//     mark, so it normally runs ahead of allocators and they never block
//     at all.
//  4. A round that frees nothing and has no pageout I/O in flight does
//     not re-kick: the waiters are told (errPdStalled) and fall back to
//     reclaiming directly, which tolerates owners locked by the waiting
//     goroutine itself the same way the daemon does (TryLock + skip).
//     With async pageout a fruitless round that *does* have clusters on
//     the wire is not a stall: waiters keep sleeping until a completion
//     (asyncDone) frees the pages and bumps the generation.
//
// Rounds fan out to cfg.ReclaimWorkers parallel workers over disjoint
// queue-shard ranges (reclaimRound); the daemon remains the only
// watermark coordinator.
//
// Shutdown (System.Shutdown) marks the daemon, broadcasts so blocked
// allocators unwedge immediately, joins the goroutine, and then drains
// the async write window. The System stays usable afterwards —
// allocPage degrades to inline reclaim — so teardown ordering is
// forgiving.
type pagedaemon struct {
	s *System

	// Watermarks: wake the daemon when free pages drop below lowA; each
	// round reclaims toward highA. Atomics because the control plane may
	// retarget them live (setWatermarks) while the daemon, completions
	// and blocked allocators read them.
	lowA  atomic.Int64
	highA atomic.Int64

	wake chan struct{} // doorbell; buffered(1), rung by kick
	done chan struct{} // closed when the daemon goroutine exits

	//uvm:lock daemon
	mu       sync.Mutex
	cond     *sync.Cond // signalled after every completed round
	gen      uint64     // completed reclaim rounds + async completions
	genFreed int        // pages freed by the most recent round/completion
	waiters  int        // allocators currently blocked in waitForFree
	inflight int        // async pageout clusters submitted, not yet completed
	shutdown bool

	// gate, when non-nil, runs before each reclaim round. Test hook: it
	// lets the shutdown-while-blocked and wakeup tests hold the daemon
	// in a known state. Must be set before the first allocation.
	gate func()
}

func newPagedaemon(s *System, low int) *pagedaemon {
	pd := &pagedaemon{
		s:    s,
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	pd.lowA.Store(int64(low))
	pd.highA.Store(int64(2 * low))
	pd.cond = sync.NewCond(&pd.mu)
	return pd
}

// lowMark and highMark read the current watermarks.
func (pd *pagedaemon) lowMark() int  { return int(pd.lowA.Load()) }
func (pd *pagedaemon) highMark() int { return int(pd.highA.Load()) }

// setWatermarks retargets the daemon live: low is the new wake
// threshold, high the new per-round reclaim target (the control plane
// keeps high = 2×low, like the static boot sizing). The phys watermark
// callback is re-registered so allocations fire the doorbell at the new
// threshold, and the doorbell is rung once — raising the low mark may
// mean the machine is suddenly below it, and no allocation may come
// along to notice. Safe from any goroutine, including ones holding VM
// locks (it only stores atomics and rings the non-blocking doorbell);
// allocators blocked in waitForFree are unaffected — they wait on round
// generations, not watermark values, so no wakeup can be lost across a
// resize.
func (pd *pagedaemon) setWatermarks(low, high int) {
	if low < 1 || high <= low {
		return // controller bug; bounds are enforced upstream, keep safe
	}
	pd.lowA.Store(int64(low))
	pd.highA.Store(int64(high))
	pd.s.mach.Mem.SetLowWater(low, pd.kick)
	pd.kick()
}

// kick rings the daemon's doorbell. Non-blocking and lock-free, so it is
// safe from the phys.Mem low-water callback inside page allocation and
// from any goroutine holding VM locks.
func (pd *pagedaemon) kick() {
	select {
	case pd.wake <- struct{}{}:
		pd.s.mach.Stats.Inc(sim.CtrPdWakeups)
	default:
	}
}

func (pd *pagedaemon) stopping() bool {
	pd.mu.Lock()
	defer pd.mu.Unlock()
	return pd.shutdown
}

// run is the daemon goroutine: sleep on the doorbell, reclaim toward the
// high watermark, wake any blocked allocators, repeat.
func (pd *pagedaemon) run() {
	defer close(pd.done)
	for {
		<-pd.wake
		if pd.stopping() {
			return
		}
		if gate := pd.gate; gate != nil {
			gate()
			if pd.stopping() {
				return
			}
		}
		free := pd.s.mach.Mem.FreePages()
		if free >= pd.lowMark() {
			pd.mu.Lock()
			if pd.waiters == 0 {
				// Spurious wakeup: no one waiting and memory is fine.
				pd.mu.Unlock()
				continue
			}
			// Waiters raced a round that already refilled the free list
			// (their Alloc failed before it completed): report the round
			// without evicting anything more.
			pd.gen++
			pd.genFreed = free
			pd.cond.Broadcast()
			pd.mu.Unlock()
			continue
		}
		target := pd.highMark() - free
		if target < pd.s.cfg.ReclaimBatch {
			target = pd.s.cfg.ReclaimBatch
		}
		freed, submitted := pd.s.reclaimRound(target)
		if freed == 0 && submitted == 0 {
			// The queues gave nothing and no I/O is on the wire from this
			// round. Before declaring a stall, reap any frames parked in
			// idle per-CPU allocation magazines back into the global pool:
			// they already counted as free, but waiters' retries (and the
			// watermark's notion of reachable memory) need them in the
			// pool, not private to goroutines that stopped allocating.
			freed = pd.s.mach.Mem.ReapCaches()
		}
		pd.s.ctrPdRounds.Inc()

		pd.mu.Lock()
		pd.gen++
		pd.genFreed = freed
		pd.cond.Broadcast()
		pd.mu.Unlock()

		// Still under pressure and making progress — pages freed, or
		// clusters on the wire whose completions will free them: run
		// another round without waiting for the next allocation to ring
		// the doorbell. (A round that only submitted overlaps its I/O
		// with the next scan; if the next scan finds everything already
		// in flight it frees and submits nothing, stops re-kicking, and
		// the completions take over via asyncDone's kick.)
		if (freed > 0 || submitted > 0) && pd.s.mach.Mem.FreePages() < pd.lowMark() {
			pd.kick()
		}
		pd.s.tunerTick()
	}
}

// addInFlight records an asynchronous cluster submission; its matching
// asyncDone arrives from the completion callback.
func (pd *pagedaemon) addInFlight() {
	pd.mu.Lock()
	pd.inflight++
	pd.mu.Unlock()
}

// asyncDone is called from an async pageout completion callback: freed
// pages (0 if the write failed) have just been returned to the free
// list. It reports the completion as a generation so blocked allocators
// retry, and keeps the daemon running if memory is still short.
func (pd *pagedaemon) asyncDone(freed int) {
	pd.mu.Lock()
	pd.inflight--
	pd.gen++
	pd.genFreed = freed
	pd.cond.Broadcast()
	pd.mu.Unlock()
	if freed > 0 && pd.s.mach.Mem.FreePages() < pd.lowMark() {
		pd.kick()
	}
	pd.s.tunerTick()
}

// waitForFree blocks the calling allocator until the daemon completes a
// reclaim round or an async pageout completion frees pages (or until
// shutdown). nil means pages were freed and the allocation is worth
// retrying; errPdStalled/errPdShutdown mean the caller should reclaim
// directly. A round that freed nothing but has cluster writes in flight
// is not a stall — the allocator keeps waiting for the completion, like
// a kernel thread sleeping on pageout I/O.
func (pd *pagedaemon) waitForFree() error {
	pd.s.mach.Stats.Inc(sim.CtrPdBlocked)
	// Wakeup-to-satisfy latency: how long (simulated) this allocator was
	// stalled. The clock advances on other goroutines' work while we
	// sleep, so the delta is the paging work the stall waited out — the
	// signal the watermark controller sizes the low mark from.
	start := pd.s.mach.Clock.Now()
	defer func() {
		pd.s.mach.Stats.Add(sim.CtrPdWaitNs, int64(pd.s.mach.Clock.Since(start)))
	}()
	pd.mu.Lock()
	defer pd.mu.Unlock()
	if pd.shutdown {
		return errPdShutdown
	}
	pd.waiters++
	defer func() { pd.waiters-- }()
	pd.kick()
	for {
		start := pd.gen
		for pd.gen == start && !pd.shutdown {
			pd.cond.Wait()
		}
		switch {
		case pd.gen == start: // unblocked by shutdown, not by a round
			return errPdShutdown
		case pd.genFreed > 0:
			return nil
		case pd.inflight > 0:
			continue // pageout I/O on the wire: its completion will free pages
		}
		return errPdStalled
	}
}

// stop shuts the daemon down: blocked allocators are released
// immediately, then the goroutine is joined. Idempotent.
func (pd *pagedaemon) stop() {
	pd.mu.Lock()
	already := pd.shutdown
	pd.shutdown = true
	pd.cond.Broadcast()
	pd.mu.Unlock()
	if !already {
		// Ring the doorbell so a daemon asleep on it re-checks the flag.
		select {
		case pd.wake <- struct{}{}:
		default:
		}
	}
	<-pd.done
}

const (
	// directReclaimLimit bounds consecutive direct-reclaim fallbacks per
	// allocation, preserving the pre-daemon "4 attempts then deadlock"
	// semantics for inline mode.
	directReclaimLimit = 3
	// allocRetryLimit is a livelock backstop: an allocator that keeps
	// losing freshly reclaimed pages to other goroutines eventually
	// reports deadlock rather than spinning forever.
	allocRetryLimit = 1 << 16
)

// allocPage allocates a page frame. On shortage the allocating goroutine
// does not reclaim inline (unless cfg.InlineReclaim): it wakes the
// pagedaemon, blocks until a reclaim round completes, and retries.
// Direct reclaim remains as a fallback for when the daemon cannot make
// progress — for example when this goroutine itself holds the lock of
// the only owner with evictable pages — and after Shutdown.
func (s *System) allocPage(owner any, off param.PageOff, zero bool) (*phys.Page, error) {
	direct := 0
	for attempt := 0; attempt < allocRetryLimit; attempt++ {
		pg, err := s.mach.Mem.Alloc(owner, off, zero)
		if err == nil {
			return pg, nil
		}
		if s.pd != nil {
			if werr := s.pd.waitForFree(); werr == nil {
				continue // the daemon freed pages; retry the allocation
			}
			// The daemon stalled or is shutting down. Memory may still
			// have been freed since our failed attempt (by the round we
			// raced, or by frees elsewhere): retry before escalating.
			if pg, err := s.mach.Mem.Alloc(owner, off, zero); err == nil {
				return pg, nil
			}
		}
		// Inline mode, a stalled daemon, or shutdown: reclaim directly.
		if direct++; direct > directReclaimLimit {
			return nil, vmapi.ErrDeadlock
		}
		if s.pd != nil {
			s.ctrPdDirect.Inc()
		}
		if rerr := s.reclaim(s.cfg.ReclaimBatch); rerr != nil {
			return nil, rerr
		}
	}
	return nil, vmapi.ErrDeadlock
}

// ownerSet tracks the anon/object locks the pagedaemon holds for pages
// it has clustered for pageout. Owners are acquired with TryLock only —
// reclaim runs inside allocation paths that may already hold map, amap,
// anon or object locks, and skipping a busy owner is always safe —
// so the pagedaemon can never deadlock against a fault in progress.
type ownerSet map[any]struct{}

func (os ownerSet) holds(owner any) bool { _, ok := os[owner]; return ok }

// tryAcquire locks owner unless it is already held by this set or
// unavailable. It reports whether the caller may proceed under the lock,
// and whether the lock was newly acquired (and must be released if the
// page is not clustered).
func (os ownerSet) tryAcquire(owner any) (proceed, acquired bool) {
	if os.holds(owner) {
		return true, false
	}
	switch o := owner.(type) {
	case *anon:
		if !o.mu.TryLock() {
			return false, false
		}
	case *uobject:
		if !o.mu.TryLock() {
			return false, false
		}
	default:
		return false, false
	}
	return true, true
}

func (os ownerSet) keep(owner any) { os[owner] = struct{}{} }

func releaseOwner(owner any) {
	switch o := owner.(type) {
	case *anon:
		o.mu.Unlock()
	case *uobject:
		o.mu.Unlock()
	}
}

func (os ownerSet) releaseAll() {
	//uvm:maporder-ok unlock order of independent owner locks is immaterial
	for owner := range os {
		releaseOwner(owner)
		delete(os, owner)
	}
}

// reclaim is UVM's pagedaemon. Its signature improvement over BSD VM (§6)
// is aggressive clustering of anonymous memory: because anonymous pages
// have no permanent home on backing store, the daemon *reassigns* their
// swap locations so that all the dirty anonymous pages it has collected —
// whatever their offsets — occupy one contiguous run of slots and go out
// in a single large I/O.
//
// Concurrency: each candidate's owner is TryLocked and the page
// re-verified under the lock (it may have been freed, re-homed or
// re-referenced since the queue snapshot). Owners of clustered pages
// stay locked until the cluster I/O completes, so a concurrent fault on
// a page mid-pageout blocks on the anon and then pages back in from the
// freshly assigned slot. Multiple reclaimers (the daemon plus
// direct-reclaim fallbacks) may run at once: the TryLock/re-verify
// protocol makes them skip each other's pages.
//
// reclaim reports ErrDeadlock when nothing could be freed; reclaimCount
// is the count-returning variant used by the direct-reclaim fallback.
// Both are synchronous full-range scans: an allocating goroutine needs a
// page now, so its pageout never goes async.
func (s *System) reclaim(target int) error {
	if s.reclaimCount(target) == 0 {
		return vmapi.ErrDeadlock
	}
	return nil
}

func (s *System) reclaimCount(target int) int {
	freed, _ := s.reclaimRange(0, phys.NumQueueShards(), target, false)
	if freed == 0 {
		// A fruitless scan is not a stall while free frames sit parked in
		// per-CPU allocation magazines: reap them into the global pool so
		// the caller's retry can reach them from any goroutine. (The
		// frames were already counted free — the watermark never lied —
		// they were just private to idle magazines.)
		freed = s.mach.Mem.ReapCaches()
	}
	return freed
}

// reclaimRound is the daemon's per-round entry point. The daemon itself
// is the only coordinator — it sized the round's target from the
// watermarks — and this function fans the scan out to cfg.ReclaimWorkers
// workers over disjoint page-queue shard ranges (or runs the classic
// single full-range scan for 0/1 workers, which keeps single-threaded
// runs byte-deterministic). It returns the pages freed synchronously and
// the pages submitted as in-flight asynchronous cluster writes.
func (s *System) reclaimRound(target int) (freed, submitted int) {
	async := s.cfg.AsyncPageout
	nsh := phys.NumQueueShards()
	workers := s.cfg.ReclaimWorkers
	if workers > nsh {
		workers = nsh
	}
	if workers < 2 {
		return s.reclaimRange(0, nsh, target, async)
	}
	// Stock the inactive queue once up front, under the coordinator, so
	// workers start from a refilled queue instead of each aging pages.
	if s.mach.Mem.InactivePages() < target*2 {
		s.mach.Mem.RefillInactive(target * 2)
	}
	per := (target + workers - 1) / workers
	var (
		wg     sync.WaitGroup
		freedN atomic.Int64
		subN   atomic.Int64
	)
	for w := 0; w < workers; w++ {
		lo, hi := w*nsh/workers, (w+1)*nsh/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, sub := s.reclaimRange(lo, hi, per, async)
			freedN.Add(int64(f))
			subN.Add(int64(sub))
			s.ctrPdWorkerRounds.Inc()
		}()
	}
	wg.Wait()
	return int(freedN.Load()), int(subN.Load())
}

// reclaimRange runs the second-chance reclaim scan over queue shards
// [loShard, hiShard): up to four passes of collect-cluster-evict until
// target pages are freed (or submitted, when async pageout is on). It is
// the body every reclaim flavour shares — the single daemon, each
// parallel worker, and the direct-reclaim fallback differ only in their
// shard range, target and async flag.
func (s *System) reclaimRange(loShard, hiShard, target int, async bool) (freed, submitted int) {
	for pass := 0; pass < 4 && freed+submitted < target; pass++ {
		if s.mach.Mem.InactivePages() < target*2 {
			s.mach.Mem.RefillInactive(target * 2)
		}
		var cluster []*phys.Page
		// vnWb collects dirty vnode pages for the object writeback
		// pipeline (async rounds only): per-object, submitted as
		// contiguous-index cluster writes after the scan. vnWbOrder
		// remembers first-touch order so flights are submitted in the
		// deterministic order the queue scan discovered the objects —
		// submission order decides the async writer's disk-head path.
		var vnWb map[*uobject][]*phys.Page
		var vnWbOrder []*uobject
		vnAsync := async && s.pd != nil && !s.cfg.DisableClustering
		vnPages := 0
		held := make(ownerSet)
		s.mach.Mem.ScanInactiveRange(loShard, hiShard, target*4, func(pg *phys.Page) bool {
			if freed+submitted+len(cluster)+vnPages >= target {
				return false
			}
			if pg.Referenced.Load() {
				// Second chance — but only if the page is still inactive;
				// it may have been freed (and even reallocated) since the
				// queue snapshot.
				s.mach.Mem.ActivateIfInactive(pg)
				return true
			}
			owner := pg.Owner()
			proceed, acquired := held.tryAcquire(owner)
			if !proceed {
				return true // owner busy (or gone): skip this page
			}
			release := func() {
				if acquired {
					releaseOwner(owner)
				}
			}
			// Re-verify under the owner lock: the frame must still belong
			// to this owner and still be evictable.
			if pg.Owner() != owner || pg.Busy.Load() || pg.Wired() || pg.Loaned() {
				release()
				return true
			}
			switch o := owner.(type) {
			case *anon:
				if o.page != pg {
					release()
					return true
				}
				s.mach.MMU.PageProtect(pg, param.ProtNone)
				if pg.Dirty.Load() {
					if len(cluster) < s.cfg.MaxCluster {
						pg.Busy.Store(true)
						s.mach.Mem.Dequeue(pg)
						cluster = append(cluster, pg)
						held.keep(owner)
					} else {
						release()
					}
					return true
				}
				// Clean anon page: the swap copy is current; just free.
				o.page = nil
				s.mach.Mem.Dequeue(pg)
				s.mach.Mem.Free(pg)
				freed++
				release()
			case *uobject:
				idx := param.OffToPage(pg.Off())
				if o.pages[idx] != pg {
					release()
					return true
				}
				s.mach.MMU.PageProtect(pg, param.ProtNone)
				if o.aobjSlots != nil {
					// Anonymous object pages cluster exactly like anons.
					if pg.Dirty.Load() {
						if len(cluster) < s.cfg.MaxCluster {
							pg.Busy.Store(true)
							s.mach.Mem.Dequeue(pg)
							cluster = append(cluster, pg)
							held.keep(owner)
						} else {
							release()
						}
						return true
					}
					delete(o.pages, idx)
					s.mach.Mem.Dequeue(pg)
					s.mach.Mem.Free(pg)
					freed++
					release()
					return true
				}
				// Vnode page: clean pages are free to drop; dirty ones are
				// written back through the pager — asynchronously, batched
				// per object, when the round runs the writeback pipeline.
				// Dirty pages past EOF (zero-filled mappings beyond the
				// file) have nowhere to go and would poison their run, so
				// they stay on the synchronous path, which fails and
				// reactivates just that page.
				if pg.Dirty.Load() {
					if vnAsync && idx < o.vnode.NumPages() {
						pg.Busy.Store(true)
						s.mach.Mem.Dequeue(pg)
						if vnWb == nil {
							vnWb = make(map[*uobject][]*phys.Page)
						}
						if _, ok := vnWb[o]; !ok {
							vnWbOrder = append(vnWbOrder, o)
						}
						vnWb[o] = append(vnWb[o], pg)
						vnPages++
						held.keep(owner)
						return true
					}
					if err := o.ops.put(o, pg); err != nil {
						s.mach.Mem.Activate(pg)
						release()
						return true
					}
				}
				delete(o.pages, idx)
				s.mach.Mem.Dequeue(pg)
				s.mach.Mem.Free(pg)
				freed++
				release()
			default:
				// Ownerless (orphaned loan) or foreign page: skip.
				release()
			}
			return true
		})

		// Vnode writeback flights leave first: each object's lock — and
		// the duty to detach and free its pages — is handed to its
		// flight's last completion, so the object is removed from `held`
		// here (the anon cluster below hands over whatever remains).
		for _, o := range vnWbOrder {
			delete(held, o)
			submitted += s.submitVnodeFlight(o, vnWb[o])
		}

		if len(cluster) > 0 {
			asyncN := 0
			if async {
				asyncN = s.clusterPageoutAsync(cluster, held)
			}
			if asyncN > 0 {
				// The cluster, its held owners, and the duty to free the
				// pages all travel with the in-flight write; scan on with
				// a fresh owner set.
				submitted += asyncN
				held = make(ownerSet)
			} else {
				n, err := s.clusterPageout(cluster)
				freed += n
				if err != nil {
					// Could not clean (e.g. swap exhausted): put the
					// unwritten pages back on the queues and stop trying.
					for _, pg := range cluster {
						if pg.Busy.Load() {
							pg.Busy.Store(false)
							s.mach.Mem.Activate(pg)
						}
					}
					held.releaseAll()
					break
				}
			}
		}
		held.releaseAll()
	}
	if freed > 0 {
		s.mach.Stats.Add(sim.CtrPdFreed, int64(freed))
	}
	return freed, submitted
}

// clusterPageoutAsync submits the collected dirty cluster as an
// asynchronous write and returns how many pages are now in flight (0
// means the caller must fall back to the synchronous path: clustering
// disabled, a single page, or swap too fragmented for a contiguous run).
// On submission, ownership of `held` — every owner lock this pass
// acquired — transfers to the completion callback, which detaches and
// frees the pages, releases the owners, and wakes blocked allocators
// (see asyncPageoutDone). The submission blocks only while the target
// device's in-flight window is full, which is the backpressure that
// stops the scan from running arbitrarily far ahead of the disk.
func (s *System) clusterPageoutAsync(cluster []*phys.Page, held ownerSet) int {
	if s.pd == nil || s.cfg.DisableClustering || len(cluster) < 2 {
		return 0
	}
	start, err := s.mach.Swap.AllocContig(len(cluster))
	if err != nil {
		return 0 // fragmented: the sync path falls back to singles
	}
	bufs := make([][]byte, len(cluster))
	for i, pg := range cluster {
		s.reassignSlot(pg, start+int64(i))
		bufs[i] = pg.Data
	}
	pages := append([]*phys.Page(nil), cluster...)
	s.mach.Stats.Inc(sim.CtrPdAsyncClusters)
	s.mach.Stats.Add(sim.CtrPdAsyncPages, int64(len(pages)))
	s.pd.addInFlight()
	if err := s.mach.Swap.WriteClusterAsync(start, bufs, func(werr error) {
		s.asyncPageoutDone(pages, held, werr)
	}); err != nil {
		// Unreachable for an AllocContig run (it never spans a device),
		// but keep the bookkeeping honest: treat it as a failed write.
		s.asyncPageoutDone(pages, held, err)
	}
	return len(pages)
}

// asyncPageoutDone is the completion callback for an asynchronous
// cluster write. It runs on a swap I/O goroutine holding the cluster's
// owner locks (handed over at submission) and nothing else; per the lock
// order it may only touch page state, page queues, the swap allocator
// and the daemon's condvar. On success the now-clean pages are detached
// and freed; on failure they return to the active queue still dirty,
// their freshly assigned slots keeping whatever garbage the failed write
// left (harmless: a dirty page is rewritten before its slot is trusted).
//
//uvm:completion
func (s *System) asyncPageoutDone(pages []*phys.Page, owners ownerSet, err error) {
	freed := 0
	if err != nil {
		s.mach.Stats.Inc(sim.CtrPdAsyncErrors)
		for _, pg := range pages {
			if pg.Busy.Load() {
				pg.Busy.Store(false)
				s.mach.Mem.Activate(pg)
			}
		}
	} else {
		for _, pg := range pages {
			s.finishPageout(pg)
		}
		freed = len(pages)
		s.mach.Stats.Inc(sim.CtrPdClusters)
		s.mach.Stats.Add(sim.CtrPageOuts, int64(freed))
		s.mach.Stats.Add(sim.CtrPdFreed, int64(freed))
	}
	owners.releaseAll()
	s.pd.asyncDone(freed)
}

// clusterPageout writes the collected dirty anonymous pages out. With
// clustering enabled, every page's swap location is (re)assigned into one
// contiguous run and the whole cluster leaves in one I/O operation; with
// the ablation flag set, each page goes to its own slot with its own I/O —
// which is precisely BSD VM's behaviour (Figure 5's two curves). The
// caller holds every cluster page's owner lock.
func (s *System) clusterPageout(cluster []*phys.Page) (int, error) {
	if s.cfg.DisableClustering || len(cluster) == 1 {
		return s.pageoutSingles(cluster)
	}
	start, err := s.mach.Swap.AllocContig(len(cluster))
	if err != nil {
		// Swap too fragmented for a contiguous run: fall back.
		return s.pageoutSingles(cluster)
	}
	bufs := make([][]byte, len(cluster))
	for i, pg := range cluster {
		s.reassignSlot(pg, start+int64(i))
		bufs[i] = pg.Data
	}
	if err := s.mach.Swap.WriteCluster(start, bufs); err != nil {
		return 0, err
	}
	for _, pg := range cluster {
		s.finishPageout(pg)
	}
	s.mach.Stats.Inc(sim.CtrPdClusters)
	s.mach.Stats.Add(sim.CtrPageOuts, int64(len(cluster)))
	return len(cluster), nil
}

// pageoutSingles is the unclustered path: one slot, one I/O, per page.
func (s *System) pageoutSingles(cluster []*phys.Page) (int, error) {
	done := 0
	for _, pg := range cluster {
		slot := s.currentSlot(pg)
		if slot == swap.NoSlot {
			var err error
			slot, err = s.mach.Swap.Alloc()
			if err != nil {
				return done, err
			}
			s.setSlot(pg, slot)
		}
		if err := s.mach.Swap.WriteSlot(slot, pg.Data); err != nil {
			return done, err
		}
		s.finishPageout(pg)
		s.ctrPageOuts.Inc()
		done++
	}
	return done, nil
}

func (s *System) currentSlot(pg *phys.Page) int64 {
	switch owner := pg.Owner().(type) {
	case *anon:
		return owner.swslot
	case *uobject:
		if slot, ok := owner.aobjSlots[param.OffToPage(pg.Off())]; ok {
			return slot
		}
	}
	return swap.NoSlot
}

func (s *System) setSlot(pg *phys.Page, slot int64) {
	switch owner := pg.Owner().(type) {
	case *anon:
		owner.swslot = slot
	case *uobject:
		owner.aobjSlots[param.OffToPage(pg.Off())] = slot
	}
}

// reassignSlot frees a page's old swap location (if any) and assigns the
// new one — the "dynamic reassignment of swap location at page-level
// granularity" of §5.3/§6.
func (s *System) reassignSlot(pg *phys.Page, slot int64) {
	if old := s.currentSlot(pg); old != swap.NoSlot {
		s.mach.Swap.Free(old)
		s.mach.Stats.Inc(sim.CtrPdReassigned)
	}
	s.setSlot(pg, slot)
}

// vnFlight is one object's in-flight reclaim writeback: its dirty vnode
// pages, split into contiguous-index runs each submitted as one
// asynchronous cluster write. The flight owns the object's mutex (handed
// over by the scan, exactly like anon cluster pageout owners) until its
// LAST run completes: that completion detaches and frees the pages of
// every successful run, re-activates the pages of failed runs (still
// dirty), releases the object, and reports to the daemon.
type vnFlight struct {
	s *System
	o *uobject

	//uvm:lock flight
	mu      sync.Mutex
	pending int
	freed   []*phys.Page // pages of completed, successful runs
	failed  []*phys.Page // pages of failed runs
}

// submitVnodeFlight submits the reclaim writeback of o's collected dirty
// pages and returns how many pages are now in flight. Caller has handed
// o's lock to the flight; every page is Busy and dequeued.
func (s *System) submitVnodeFlight(o *uobject, pages []*phys.Page) int {
	sort.Slice(pages, func(i, j int) bool { return pages[i].Off() < pages[j].Off() })
	items := make([]wbItem, len(pages))
	for i, pg := range pages {
		items[i] = wbItem{idx: param.OffToPage(pg.Off()), pg: pg}
	}
	runs := wbClusters(items, s.wbClusterMax())
	fl := &vnFlight{s: s, o: o, pending: len(runs)}
	s.pd.addInFlight()
	for _, run := range runs {
		runPages := make([]*phys.Page, len(run))
		bufs := make([][]byte, len(run))
		for i, it := range run {
			runPages[i] = it.pg
			bufs[i] = it.pg.Data
		}
		s.ctrObjWbClusters.Inc()
		s.ctrObjWbPages.Add(int64(len(run)))
		if err := o.vnode.WriteClusterAsync(run[0].idx, bufs,
			func(err error) { fl.runDone(runPages, err) }); err != nil {
			// Unreachable for in-range pages, but keep the bookkeeping
			// honest: treat it as a failed write.
			fl.runDone(runPages, err)
		}
	}
	return len(pages)
}

// runDone is the completion of one flight run; the last one finishes the
// whole flight. It runs on a vfs I/O goroutine holding the flight's
// object lock (handed over at submission) — which is what makes the
// o.pages mutation in finishPageout safe — plus the flight's own mutex
// to serialise sibling runs' completions.
//
//uvm:completion
func (fl *vnFlight) runDone(pages []*phys.Page, err error) {
	s := fl.s
	fl.mu.Lock()
	if err != nil {
		s.mach.Stats.Inc(sim.CtrObjWbErrors)
		fl.failed = append(fl.failed, pages...)
	} else {
		fl.freed = append(fl.freed, pages...)
	}
	fl.pending--
	last := fl.pending == 0
	if !last {
		fl.mu.Unlock()
		return
	}
	for _, pg := range fl.freed {
		s.finishPageout(pg)
	}
	for _, pg := range fl.failed {
		pg.Busy.Store(false)
		s.mach.Mem.Activate(pg) // still dirty: a later round retries
	}
	freed := len(fl.freed)
	fl.mu.Unlock()
	s.mach.Stats.Add(sim.CtrPageOuts, int64(freed))
	s.mach.Stats.Add(sim.CtrPdFreed, int64(freed))
	releaseOwner(fl.o)
	s.pd.asyncDone(freed)
}

// finishPageout detaches the now-clean page from its owner and frees it.
func (s *System) finishPageout(pg *phys.Page) {
	pg.Dirty.Store(false)
	pg.Busy.Store(false)
	switch owner := pg.Owner().(type) {
	case *anon:
		owner.page = nil
	case *uobject:
		delete(owner.pages, param.OffToPage(pg.Off()))
	}
	s.mach.Mem.Dequeue(pg)
	s.mach.Mem.Free(pg)
}
