// Package sim provides the simulation substrate shared by every layer of
// the reproduced kernel: a virtual clock, a calibrated table of primitive
// operation costs, statistics counters, and a deterministic RNG.
//
// The paper's measurements (Tables 2-3, Figures 2, 5, 6) were taken on a
// 333 MHz Pentium-II with a late-1990s IDE disk. Absolute times are not
// reproducible outside that testbed, but the *shape* of every result —
// which system wins, by what factor, and where curves cross — is a
// function of how many primitive operations each VM design performs
// multiplied by the relative cost of those primitives. Both VM systems in
// this repository run against the same clock and the same cost table, so
// all measured differences are algorithmic.
package sim

import (
	"sync/atomic"
	"time"
)

// Clock is a virtual clock. Components charge time to it as they perform
// simulated work; experiments read it to produce "measured" durations.
// All methods are safe for concurrent use.
type Clock struct {
	now atomic.Int64 // virtual nanoseconds since boot
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d. Negative advances are ignored so a
// buggy cost computation can never move time backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now.Add(int64(d))
	}
}

// ChargeN advances the clock by n repetitions of a unit cost.
func (c *Clock) ChargeN(n int, unit time.Duration) {
	if n > 0 && unit > 0 {
		c.now.Add(int64(n) * int64(unit))
	}
}

// Since returns the virtual time elapsed since the mark t0.
func (c *Clock) Since(t0 time.Duration) time.Duration { return c.Now() - t0 }
