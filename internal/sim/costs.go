package sim

import (
	"fmt"
	"time"
)

// Costs is the calibrated table of primitive operation costs. One table is
// shared by both VM systems; a system only spends more total time than the
// other by performing more of these primitives, never by being charged a
// different rate for the same work.
//
// CPU-side costs are calibrated to a 333 MHz Pentium-II running kernel
// code (roughly 3 ns/cycle; structure allocation and locking costs follow
// the measurements reported for 4.4BSD-era kernels). Disk costs follow a
// late-1990s IDE disk: ~8 ms average positioning time and ~8 MB/s media
// rate (≈ 500 µs per 4 KB page transferred).
type Costs struct {
	// Locking and lookup.
	LockAcquire    time.Duration // acquire+release an uncontended kernel lock
	MapLookupEntry time.Duration // per map entry inspected during a lookup
	HashLookup     time.Duration // one pager-hash-table probe (BSD VM only path)

	// Structure management.
	MapEntryAlloc time.Duration // allocate+initialise a map entry
	MapEntryFree  time.Duration
	ObjectAlloc   time.Duration // allocate a vm_object / uvm aobj
	ObjectFree    time.Duration
	PagerAlloc    time.Duration // allocate a vm_pager + private data (BSD VM)
	AnonAlloc     time.Duration // allocate an anon (UVM)
	AnonFree      time.Duration
	AmapAlloc     time.Duration // allocate an amap header (UVM)
	AmapPerSlot   time.Duration // initialise one amap slot

	// Vnode layer.
	VnodeAlloc time.Duration // allocate+initialise a vnode
	NameLookup time.Duration // path -> vnode lookup (namei, cached)

	// Page-level work.
	PageAlloc time.Duration // grab a frame from the free list
	PageFree  time.Duration
	PageZero  time.Duration // zero 4 KB
	PageCopy  time.Duration // copy 4 KB
	PageTouch time.Duration // CPU access to one resident mapped page

	// pmap (MMU) operations, per page.
	PmapEnter   time.Duration
	PmapRemove  time.Duration
	PmapProtect time.Duration
	PmapExtract time.Duration

	// Fault handling.
	FaultTrap    time.Duration // hardware trap + dispatch into the handler
	ChainSearch  time.Duration // per object inspected in a shadow chain (BSD VM)
	CollapseScan time.Duration // one object-collapse attempt (BSD VM)

	// Backing store.
	SwapSlotAlloc time.Duration
	DiskSeek      time.Duration // head positioning for a discontiguous access
	DiskOp        time.Duration // fixed per-command cost (controller + rotational)
	DiskPageIO    time.Duration // media transfer of one 4 KB page
}

// DefaultCosts returns the calibrated cost table used by every experiment.
func DefaultCosts() *Costs {
	return &Costs{
		LockAcquire:    100 * time.Nanosecond,
		MapLookupEntry: 60 * time.Nanosecond,
		HashLookup:     250 * time.Nanosecond,

		MapEntryAlloc: 600 * time.Nanosecond,
		MapEntryFree:  250 * time.Nanosecond,
		ObjectAlloc:   900 * time.Nanosecond,
		ObjectFree:    400 * time.Nanosecond,
		PagerAlloc:    700 * time.Nanosecond,
		AnonAlloc:     300 * time.Nanosecond,
		AnonFree:      150 * time.Nanosecond,
		AmapAlloc:     500 * time.Nanosecond,
		AmapPerSlot:   15 * time.Nanosecond,

		VnodeAlloc: 800 * time.Nanosecond,
		NameLookup: 900 * time.Nanosecond,

		PageAlloc: 500 * time.Nanosecond,
		PageFree:  250 * time.Nanosecond,
		PageZero:  1500 * time.Nanosecond,
		PageCopy:  2200 * time.Nanosecond,
		PageTouch: 60 * time.Nanosecond,

		PmapEnter:   400 * time.Nanosecond,
		PmapRemove:  300 * time.Nanosecond,
		PmapProtect: 260 * time.Nanosecond,
		PmapExtract: 120 * time.Nanosecond,

		FaultTrap:    1800 * time.Nanosecond,
		ChainSearch:  350 * time.Nanosecond,
		CollapseScan: 900 * time.Nanosecond,

		SwapSlotAlloc: 180 * time.Nanosecond,
		DiskSeek:      6 * time.Millisecond,
		DiskOp:        2 * time.Millisecond,
		DiskPageIO:    500 * time.Microsecond,
	}
}

// Machine profiles. The paper's results were measured on exactly one
// machine — the 333 MHz / 32 MB testbed with a late-1990s IDE disk — so
// every clustering and overlap win is implicitly a claim about that
// disk's seek/transfer ratio. The named profiles below keep the CPU-side
// cost table fixed and swap only the disk model, which is what lets the
// experiment matrix ask "does this pipeline still pay off when seeks are
// nearly free?" without changing any other variable.
//
//   - hdd97: the calibrated default (DefaultCosts) — 6 ms positioning,
//     2 ms command overhead, 500 µs per 4 KB page (~8 MB/s media rate).
//     Seek/media ratio 12:1: clustering is everything.
//   - nvme: a modern flash device — 20 µs positioning, 10 µs command
//     overhead, 2 µs per page (~2 GB/s). Ratio 10:1 but three orders of
//     magnitude faster in absolute terms: windows drain almost
//     instantly, so overlap matters less and per-command overhead more.
//   - ramdisk: memory-backed storage — no positioning cost, 1 µs
//     command overhead, 300 ns per page (a 4 KB memcpy). I/O is nearly
//     free; what remains measurable is pure command count.

// Profiles returns the named machine profiles in canonical order. The
// empty name is accepted everywhere a profile name is and means
// DefaultProfile.
func Profiles() []string { return []string{"hdd97", "nvme", "ramdisk"} }

// DefaultProfile is the profile every experiment uses unless told
// otherwise: the paper's 1997-era disk.
const DefaultProfile = "hdd97"

// CostsForProfile returns the cost table for a named machine profile.
// The empty string and DefaultProfile both return DefaultCosts, so
// configurations that never mention profiles behave byte-identically to
// the pre-profile code. Unknown names are an error, listing the valid
// profiles.
func CostsForProfile(name string) (*Costs, error) {
	switch name {
	case "", DefaultProfile:
		return DefaultCosts(), nil
	case "nvme":
		c := DefaultCosts()
		c.DiskSeek = 20 * time.Microsecond
		c.DiskOp = 10 * time.Microsecond
		c.DiskPageIO = 2 * time.Microsecond
		return c, nil
	case "ramdisk":
		c := DefaultCosts()
		c.DiskSeek = 0
		c.DiskOp = 1 * time.Microsecond
		c.DiskPageIO = 300 * time.Nanosecond
		return c, nil
	}
	return nil, fmt.Errorf("sim: unknown machine profile %q (valid: %v)", name, Profiles())
}
