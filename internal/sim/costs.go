package sim

import "time"

// Costs is the calibrated table of primitive operation costs. One table is
// shared by both VM systems; a system only spends more total time than the
// other by performing more of these primitives, never by being charged a
// different rate for the same work.
//
// CPU-side costs are calibrated to a 333 MHz Pentium-II running kernel
// code (roughly 3 ns/cycle; structure allocation and locking costs follow
// the measurements reported for 4.4BSD-era kernels). Disk costs follow a
// late-1990s IDE disk: ~8 ms average positioning time and ~8 MB/s media
// rate (≈ 500 µs per 4 KB page transferred).
type Costs struct {
	// Locking and lookup.
	LockAcquire    time.Duration // acquire+release an uncontended kernel lock
	MapLookupEntry time.Duration // per map entry inspected during a lookup
	HashLookup     time.Duration // one pager-hash-table probe (BSD VM only path)

	// Structure management.
	MapEntryAlloc time.Duration // allocate+initialise a map entry
	MapEntryFree  time.Duration
	ObjectAlloc   time.Duration // allocate a vm_object / uvm aobj
	ObjectFree    time.Duration
	PagerAlloc    time.Duration // allocate a vm_pager + private data (BSD VM)
	AnonAlloc     time.Duration // allocate an anon (UVM)
	AnonFree      time.Duration
	AmapAlloc     time.Duration // allocate an amap header (UVM)
	AmapPerSlot   time.Duration // initialise one amap slot

	// Vnode layer.
	VnodeAlloc time.Duration // allocate+initialise a vnode
	NameLookup time.Duration // path -> vnode lookup (namei, cached)

	// Page-level work.
	PageAlloc time.Duration // grab a frame from the free list
	PageFree  time.Duration
	PageZero  time.Duration // zero 4 KB
	PageCopy  time.Duration // copy 4 KB
	PageTouch time.Duration // CPU access to one resident mapped page

	// pmap (MMU) operations, per page.
	PmapEnter   time.Duration
	PmapRemove  time.Duration
	PmapProtect time.Duration
	PmapExtract time.Duration

	// Fault handling.
	FaultTrap    time.Duration // hardware trap + dispatch into the handler
	ChainSearch  time.Duration // per object inspected in a shadow chain (BSD VM)
	CollapseScan time.Duration // one object-collapse attempt (BSD VM)

	// Backing store.
	SwapSlotAlloc time.Duration
	DiskSeek      time.Duration // head positioning for a discontiguous access
	DiskOp        time.Duration // fixed per-command cost (controller + rotational)
	DiskPageIO    time.Duration // media transfer of one 4 KB page
}

// DefaultCosts returns the calibrated cost table used by every experiment.
func DefaultCosts() *Costs {
	return &Costs{
		LockAcquire:    100 * time.Nanosecond,
		MapLookupEntry: 60 * time.Nanosecond,
		HashLookup:     250 * time.Nanosecond,

		MapEntryAlloc: 600 * time.Nanosecond,
		MapEntryFree:  250 * time.Nanosecond,
		ObjectAlloc:   900 * time.Nanosecond,
		ObjectFree:    400 * time.Nanosecond,
		PagerAlloc:    700 * time.Nanosecond,
		AnonAlloc:     300 * time.Nanosecond,
		AnonFree:      150 * time.Nanosecond,
		AmapAlloc:     500 * time.Nanosecond,
		AmapPerSlot:   15 * time.Nanosecond,

		VnodeAlloc: 800 * time.Nanosecond,
		NameLookup: 900 * time.Nanosecond,

		PageAlloc: 500 * time.Nanosecond,
		PageFree:  250 * time.Nanosecond,
		PageZero:  1500 * time.Nanosecond,
		PageCopy:  2200 * time.Nanosecond,
		PageTouch: 60 * time.Nanosecond,

		PmapEnter:   400 * time.Nanosecond,
		PmapRemove:  300 * time.Nanosecond,
		PmapProtect: 260 * time.Nanosecond,
		PmapExtract: 120 * time.Nanosecond,

		FaultTrap:    1800 * time.Nanosecond,
		ChainSearch:  350 * time.Nanosecond,
		CollapseScan: 900 * time.Nanosecond,

		SwapSlotAlloc: 180 * time.Nanosecond,
		DiskSeek:      6 * time.Millisecond,
		DiskOp:        2 * time.Millisecond,
		DiskPageIO:    500 * time.Microsecond,
	}
}
