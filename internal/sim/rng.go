package sim

// RNG is a small deterministic pseudo-random number generator
// (SplitMix64). Workload generators use it so every experiment run is
// exactly reproducible; it is not safe for concurrent use (each workload
// owns its own instance).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability num/den.
func (r *RNG) Bool(num, den int) bool {
	if den <= 0 {
		panic("sim: Bool with non-positive denominator")
	}
	return r.Intn(den) < num
}
