package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Stats is a set of named monotonic counters. Every subsystem records its
// activity here (faults taken, pages copied, disk operations issued, map
// entries allocated, ...) so experiments can report raw operation counts
// alongside simulated times.
//
// Counters are lock-free: each name maps to an atomically updated cell,
// so hot paths (the fault handler, the page allocator) can bump counters
// from many goroutines without serialising on a shared mutex. This is
// load-bearing for the fine-grained-locking fault path — a Stats mutex
// would reintroduce a global serialisation point.
type Stats struct {
	m sync.Map // string -> *int64, updated with atomics
}

// NewStats returns an empty counter set.
func NewStats() *Stats { return &Stats{} }

// cell returns the counter cell for name, creating it on first use.
func (s *Stats) cell(name string) *int64 {
	if v, ok := s.m.Load(name); ok {
		return v.(*int64)
	}
	v, _ := s.m.LoadOrStore(name, new(int64))
	return v.(*int64)
}

// Add increments counter name by delta (delta may be negative for
// level-style gauges such as "current map entries").
func (s *Stats) Add(name string, delta int64) {
	atomic.AddInt64(s.cell(name), delta)
}

// Inc increments counter name by one.
func (s *Stats) Inc(name string) { s.Add(name, 1) }

// Get returns the current value of the counter (zero if never touched).
func (s *Stats) Get(name string) int64 {
	if v, ok := s.m.Load(name); ok {
		return atomic.LoadInt64(v.(*int64))
	}
	return 0
}

// Max raises counter name to v if v is greater than the current value.
// Used for high-water marks.
func (s *Stats) Max(name string, v int64) {
	cv, ok := s.m.Load(name)
	if !ok {
		if v <= 0 {
			return // match map semantics: no key is created for a no-op Max
		}
		cv, _ = s.m.LoadOrStore(name, new(int64))
	}
	c := cv.(*int64)
	for {
		cur := atomic.LoadInt64(c)
		if v <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(c, cur, v) {
			return
		}
	}
}

// Counter is a cached handle to one counter cell, for hot paths that bump
// the same counter on every operation and cannot afford the name lookup.
// A handle taken before Stats.Reset keeps writing to the old (discarded)
// generation of the cell; like Reset itself, handles are meant to be
// taken once at subsystem construction, not interleaved with resets.
type Counter struct{ v *int64 }

// Counter returns a cached handle for name, creating the cell on first
// use.
func (s *Stats) Counter(name string) Counter { return Counter{v: s.cell(name)} }

// Inc increments the counter by one.
func (c Counter) Inc() { atomic.AddInt64(c.v, 1) }

// Add increments the counter by delta.
func (c Counter) Add(delta int64) { atomic.AddInt64(c.v, delta) }

// Snapshot returns a copy of all counters.
func (s *Stats) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	s.m.Range(func(k, v any) bool {
		out[k.(string)] = atomic.LoadInt64(v.(*int64))
		return true
	})
	return out
}

// Reset clears every counter. Counter cells handed out concurrently with
// a Reset may apply their update to the old generation; Reset is meant
// for test/experiment setup, not for use while workloads are running.
func (s *Stats) Reset() {
	s.m.Range(func(k, _ any) bool {
		s.m.Delete(k)
		return true
	})
}

// String renders the counters sorted by name, one per line.
func (s *Stats) String() string {
	snap := s.Snapshot()
	keys := make([]string, 0, len(snap))
	//uvm:maporder-ok keys are sorted below before formatting
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-32s %12d\n", k, snap[k])
	}
	return b.String()
}

// Well-known counter names shared across packages. Subsystems may also
// define their own ad-hoc names; these constants exist so the experiment
// drivers and tests do not depend on string literals scattered around.
const (
	CtrFaults          = "vm.faults"
	CtrFaultsRead      = "vm.faults.read"
	CtrFaultsWrite     = "vm.faults.write"
	CtrPageIns         = "vm.pageins"
	CtrPageOuts        = "vm.pageouts"
	CtrPagesCopied     = "vm.pages.copied"
	CtrPagesZeroed     = "vm.pages.zeroed"
	CtrMapEntriesLive  = "vm.mapentries.live"
	CtrMapEntriesTotal = "vm.mapentries.total"
	CtrObjectsLive     = "vm.objects.live"
	CtrAnonsLive       = "vm.anons.live"
	CtrAmapsLive       = "vm.amaps.live"
	CtrCollapses       = "bsdvm.collapses"
	CtrChainWalk       = "bsdvm.chainwalk"
	CtrDiskReads       = "disk.reads"
	CtrDiskWrites      = "disk.writes"
	CtrDiskSeeks       = "disk.seeks"
	CtrDiskPagesRead   = "disk.pages.read"
	CtrDiskPagesWrite  = "disk.pages.written"
	CtrDiskDeferredNs  = "disk.deferred_ns" // device-busy time of deferred (overlapped) I/O
	// CtrDiskWritesDeferred counts deferred (overlapped) write commands;
	// CtrDiskDeferredNs / CtrDiskWritesDeferred is the per-completion
	// device-busy latency the control plane steers window depth by.
	CtrDiskWritesDeferred = "disk.writes.deferred"
	CtrSwapSlotsLive      = "swap.slots.live"
	CtrSwapIOs            = "swap.ios"

	// Asynchronous swap I/O counters (internal/swap/aio.go).
	CtrSwapAIOWrites      = "swap.aio.writes"       // async cluster writes submitted
	CtrSwapAIOPages       = "swap.aio.pages"        // pages carried by async writes
	CtrSwapAIOInFlightMax = "swap.aio.inflight.max" // high-water in-flight writes
	CtrLoanouts           = "uvm.loanouts"
	CtrTransfers          = "uvm.transfers"

	// Asynchronous pagedaemon counters (internal/uvm/pdaemon.go).
	CtrPdFreed      = "uvm.pdaemon.freed"      // pages freed by reclaim
	CtrPdClusters   = "uvm.pdaemon.clusters"   // clustered pageout I/Os
	CtrPdReassigned = "uvm.pdaemon.reassigned" // swap slots reassigned
	CtrPdRounds     = "uvm.pdaemon.rounds"     // daemon reclaim rounds
	CtrPdWakeups    = "uvm.pdaemon.wakeups"    // doorbell rings delivered
	CtrPdBlocked    = "uvm.pdaemon.blocked"    // allocators that had to wait
	CtrPdDirect     = "uvm.pdaemon.direct"     // direct-reclaim fallbacks
	CtrPdWaitNs     = "uvm.pdaemon.wait_ns"    // simulated ns allocators spent blocked on free pages

	// Reclaim I/O pipeline counters (async pageout, parallel reclaim
	// workers, clustered pagein — internal/uvm/pdaemon.go, pagein.go).
	CtrPdAsyncClusters = "uvm.pdaemon.async.clusters" // clusters submitted asynchronously
	CtrPdAsyncPages    = "uvm.pdaemon.async.pages"    // pages riding async clusters
	CtrPdAsyncErrors   = "uvm.pdaemon.async.errors"   // async writes that failed
	CtrPdWorkerRounds  = "uvm.pdaemon.worker.rounds"  // per-worker reclaim passes
	CtrPageinClusters  = "uvm.pagein.clusters"        // clustered pagein I/Os
	CtrPageinClustered = "uvm.pagein.clustered"       // extra pages brought in by clustering

	// Sharded pmap reverse-map (pv) counters (internal/pmap). The
	// contended/acquires ratio is the fault path's pv-lock contention;
	// experiments.Scaling reports it at each goroutine count.
	CtrPVAcquires   = "pmap.pv.acquires"     // pv bucket lock acquisitions
	CtrPVContended  = "pmap.pv.contended"    // acquisitions that found the bucket held
	CtrPVBatches    = "pmap.pv.batch.enters" // Pmap.EnterBatch calls
	CtrPVBatchPages = "pmap.pv.batch.pages"  // translations entered via EnterBatch

	// Batched pmap teardown counters (Pmap.RemoveBatch, used by UVM's
	// two-phase unmap and address-space exit).
	CtrPVBatchRemoves     = "pmap.pv.batch.removes"     // Pmap.RemoveBatch calls
	CtrPVBatchRemovePages = "pmap.pv.batch.removepages" // translations removed via RemoveBatch

	// Object writeback pipeline counters (internal/uvm/objwb.go): msync,
	// aobj and vnode-recycle flushes pushed through the asynchronous
	// clustered write engine.
	CtrObjWbClusters = "uvm.objwb.clusters" // writeback cluster I/Os submitted
	CtrObjWbPages    = "uvm.objwb.pages"    // pages pushed through the pipeline
	CtrObjWbErrors   = "uvm.objwb.errors"   // writeback I/Os that failed
	CtrObjWbWaits    = "uvm.objwb.waits"    // paths that slept on a busy object page

	// Clustered aobj pagein counters (internal/uvm/pagein.go): aobj
	// faults that dragged slot-adjacent neighbour pages in with one I/O.
	CtrAobjPageinClusters  = "uvm.aobj.pagein.clusters"  // clustered aobj pagein I/Os
	CtrAobjPageinClustered = "uvm.aobj.pagein.clustered" // extra aobj pages per cluster ride

	// Page-allocator counters (internal/phys/alloccache.go). The
	// contended/acquires ratio is the fault path's allocation-lock
	// contention — on the global pool's queue shards in single-pool mode,
	// on the per-CPU magazines when free-page caches are enabled;
	// experiments.Scaling reports it at each goroutine count.
	CtrAllocAcquires  = "phys.alloc.acquires"  // alloc-path lock acquisitions (shard or magazine)
	CtrAllocContended = "phys.alloc.contended" // acquisitions that found the lock held
	CtrAllocHits      = "phys.alloc.hits"      // allocations served from a warm magazine
	CtrAllocRefills   = "phys.alloc.refills"   // magazine refills from the global pool
	CtrAllocDrains    = "phys.alloc.drains"    // over-full magazine drains to the global pool
	CtrAllocSteals    = "phys.alloc.steals"    // refills that raided sibling magazines (pool dry)
	CtrAllocReaps     = "phys.alloc.reaps"     // whole-magazine reaps back to the pool (reclaim)
)
