package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Stats is a set of named monotonic counters. Every subsystem records its
// activity here (faults taken, pages copied, disk operations issued, map
// entries allocated, ...) so experiments can report raw operation counts
// alongside simulated times. Safe for concurrent use.
type Stats struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewStats returns an empty counter set.
func NewStats() *Stats { return &Stats{m: make(map[string]int64)} }

// Add increments counter name by delta (delta may be negative for
// level-style gauges such as "current map entries").
func (s *Stats) Add(name string, delta int64) {
	s.mu.Lock()
	s.m[name] += delta
	s.mu.Unlock()
}

// Inc increments counter name by one.
func (s *Stats) Inc(name string) { s.Add(name, 1) }

// Get returns the current value of the counter (zero if never touched).
func (s *Stats) Get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

// Max raises counter name to v if v is greater than the current value.
// Used for high-water marks.
func (s *Stats) Max(name string, v int64) {
	s.mu.Lock()
	if v > s.m[name] {
		s.m[name] = v
	}
	s.mu.Unlock()
}

// Snapshot returns a copy of all counters.
func (s *Stats) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	return out
}

// Reset clears every counter.
func (s *Stats) Reset() {
	s.mu.Lock()
	s.m = make(map[string]int64)
	s.mu.Unlock()
}

// String renders the counters sorted by name, one per line.
func (s *Stats) String() string {
	snap := s.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-32s %12d\n", k, snap[k])
	}
	return b.String()
}

// Well-known counter names shared across packages. Subsystems may also
// define their own ad-hoc names; these constants exist so the experiment
// drivers and tests do not depend on string literals scattered around.
const (
	CtrFaults          = "vm.faults"
	CtrFaultsRead      = "vm.faults.read"
	CtrFaultsWrite     = "vm.faults.write"
	CtrPageIns         = "vm.pageins"
	CtrPageOuts        = "vm.pageouts"
	CtrPagesCopied     = "vm.pages.copied"
	CtrPagesZeroed     = "vm.pages.zeroed"
	CtrMapEntriesLive  = "vm.mapentries.live"
	CtrMapEntriesTotal = "vm.mapentries.total"
	CtrObjectsLive     = "vm.objects.live"
	CtrAnonsLive       = "vm.anons.live"
	CtrAmapsLive       = "vm.amaps.live"
	CtrCollapses       = "bsdvm.collapses"
	CtrChainWalk       = "bsdvm.chainwalk"
	CtrDiskReads       = "disk.reads"
	CtrDiskWrites      = "disk.writes"
	CtrDiskSeeks       = "disk.seeks"
	CtrDiskPagesRead   = "disk.pages.read"
	CtrDiskPagesWrite  = "disk.pages.written"
	CtrSwapSlotsLive   = "swap.slots.live"
	CtrSwapIOs         = "swap.ios"
	CtrLoanouts        = "uvm.loanouts"
	CtrTransfers       = "uvm.transfers"
)
